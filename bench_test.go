// Package repro's top-level benchmark harness: one benchmark per table
// and figure of the paper (regenerating it at reduced scale — run
// cmd/experiments for full-scale output), plus ablation benchmarks for
// the design choices called out in DESIGN.md.
//
// Accuracy-oriented benchmarks attach prediction-error metrics via
// b.ReportMetric (relerr = |predicted − measured| / measured), so
// `go test -bench=.` doubles as a compact accuracy dashboard.
package repro

import (
	"context"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/combinatorics"
	"repro/internal/cost"
	"repro/internal/costir"
	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/planner"
	"repro/internal/queryplan"
	"repro/internal/region"
	"repro/internal/sweep"
	"repro/internal/vmem"
	"repro/internal/workload"
)

func benchCfg() experiments.Config {
	return experiments.Config{Quick: true, MaxSize: 2 << 20, Seed: 42}
}

// benchExperiment runs one experiment generator per iteration.
func benchExperiment(b *testing.B, id string) {
	gen, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := gen(cfg)
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5a(b *testing.B)  { benchExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)  { benchExperiment(b, "fig5b") }
func BenchmarkFig6a(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { benchExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)  { benchExperiment(b, "fig6c") }
func BenchmarkFig6d(b *testing.B)  { benchExperiment(b, "fig6d") }

func BenchmarkFig7Quicksort(b *testing.B)    { benchExperiment(b, "fig7a") }
func BenchmarkFig7MergeJoin(b *testing.B)    { benchExperiment(b, "fig7b") }
func BenchmarkFig7HashJoin(b *testing.B)     { benchExperiment(b, "fig7c") }
func BenchmarkFig7Partition(b *testing.B)    { benchExperiment(b, "fig7d") }
func BenchmarkFig7PartHashJoin(b *testing.B) { benchExperiment(b, "fig7e") }

// BenchmarkCalibrator regenerates Table 3: a full simulated calibration
// run (capacity, line-size and latency sweeps) against the small test
// hierarchy.
func BenchmarkCalibrator(b *testing.B) {
	benchExperiment(b, "table3")
}

// BenchmarkModelEvaluation measures the cost of evaluating the model
// itself — the quantity a query optimizer pays per plan candidate.
func BenchmarkModelEvaluation(b *testing.B) {
	model := cost.MustNew(hardware.Origin2000())
	n := int64(1 << 20)
	u := region.New("U", n, 16)
	v := region.New("V", n, 16)
	w := region.New("W", n, 16)
	h := engine.HashRegionFor("H", n)
	p := engine.HashJoinPattern(u, v, h, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Evaluate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelEvaluationPartitioned evaluates the heaviest practical
// pattern: a 256-cluster partitioned hash join (513 sub-patterns).
func BenchmarkModelEvaluationPartitioned(b *testing.B) {
	model := cost.MustNew(hardware.Origin2000())
	n := int64(1 << 20)
	u := region.New("U", n, 16)
	v := region.New("V", n, 16)
	w := region.New("W", n, 16)
	p := engine.PartitionedHashJoinPattern(u, v, w, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Evaluate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures simulated accesses per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	h := hardware.Origin2000()
	mem := vmem.New(16 << 20)
	sim := cachesim.New(h)
	mem.SetObserver(sim)
	base := mem.Alloc(8<<20, 32)
	b.SetBytes(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem.Touch(base+vmem.Addr((int64(i)*8)%(8<<20)), 8)
	}
}

// BenchmarkDistinctExactVsClosed is the DESIGN.md ablation comparing the
// paper's exact Stirling-number expectation against the closed form the
// production model uses.
func BenchmarkDistinctExactVsClosed(b *testing.B) {
	b.Run("exact-stirling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			combinatorics.ExpectedDistinctExact(64, 48)
		}
	})
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			combinatorics.ExpectedDistinct(64, 48)
		}
	})
}

// measureConcRun executes a concurrent scan+r_acc workload on the
// simulator and returns the measured L1 misses.
func measureConcRun(p pattern.Pattern, h *hardware.Hierarchy) float64 {
	mem := vmem.New(1 << 24)
	sim := cachesim.New(h)
	line := h.Levels[0].LineSize
	for i, r := range p.Regions() {
		mem.Alloc(int64(i%7+1)*line, 1)
		driver.Materialize(mem, r, line)
	}
	mem.SetObserver(sim)
	driver.Run(mem, workload.NewRNG(3), p)
	return float64(sim.Stats(0).Misses())
}

// BenchmarkAblationCacheDivision compares the full model (Eq. 5.3 cache
// division among concurrent patterns) against a naive variant that
// evaluates each concurrent pattern with the whole cache to itself. The
// reported relerr metrics show the division step earns its keep.
func BenchmarkAblationCacheDivision(b *testing.B) {
	h := hardware.SmallTest()
	model := cost.MustNew(h)
	// 768 B each: either region fits the 1 kB L1 alone (only the first
	// sweep misses) but together they thrash it — the case where cache
	// division matters.
	a := region.New("A", 96, 8)
	c := region.New("B", 96, 8)
	pa := pattern.RSTrav{R: a, Repeats: 4, Dir: pattern.Uni}
	pb := pattern.RSTrav{R: c, Repeats: 4, Dir: pattern.Uni}
	conc := pattern.Conc{pa, pb}

	measured := measureConcRun(conc, h)
	full, _ := model.Evaluate(conc)
	ra, _ := model.Evaluate(pa)
	rb, _ := model.Evaluate(pb)
	naive := ra.PerLevel[0].Misses.Total() + rb.PerLevel[0].Misses.Total()
	b.ReportMetric(relErr(full.PerLevel[0].Misses.Total(), measured), "relerr-with-division")
	b.ReportMetric(relErr(naive, measured), "relerr-naive")
	for i := 0; i < b.N; i++ {
		if _, err := model.Evaluate(conc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStateCarryover compares the full model (Eq. 5.1/5.2
// cache-state carry-over across sequential execution) against a naive
// variant that evaluates every sub-pattern cold, on a repeated scan of a
// cache-resident region.
func BenchmarkAblationStateCarryover(b *testing.B) {
	h := hardware.SmallTest()
	model := cost.MustNew(h)
	r := region.New("U", 64, 8) // 512 B: fits every level
	p := pattern.Seq{pattern.STrav{R: r}, pattern.STrav{R: r}, pattern.STrav{R: r}}

	measured := measureConcRun(p, h)
	full, _ := model.Evaluate(p)
	single, _ := model.Evaluate(pattern.STrav{R: r})
	naive := 3 * single.PerLevel[0].Misses.Total()
	b.ReportMetric(relErr(full.PerLevel[0].Misses.Total(), measured), "relerr-with-state")
	b.ReportMetric(relErr(naive, measured), "relerr-naive")
	for i := 0; i < b.N; i++ {
		if _, err := model.Evaluate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func relErr(pred, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	d := pred - meas
	if d < 0 {
		d = -d
	}
	return d / meas
}

// BenchmarkEngineQuickSort measures the simulated engine itself (not the
// model): in-place quick-sort of a 1 MB relation under full observation.
func BenchmarkEngineQuickSort(b *testing.B) {
	h := hardware.Origin2000()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mem := vmem.New(4 << 20)
		sim := cachesim.New(h)
		t := engine.NewTable(mem, "U", 1<<17, 8, 32)
		workload.FillUniform(t, workload.NewRNG(uint64(i)+1))
		mem.SetObserver(sim)
		b.StartTimer()
		engine.QuickSort(t)
	}
}

// BenchmarkEngineHashJoin measures a simulated 1 MB hash join.
func BenchmarkEngineHashJoin(b *testing.B) {
	h := hardware.Origin2000()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mem := vmem.New(16 << 20)
		sim := cachesim.New(h)
		u := engine.NewTable(mem, "U", 1<<17, 8, 32)
		v := engine.NewTable(mem, "V", 1<<17, 8, 32)
		w := engine.NewTable(mem, "W", 1<<17, 8, 32)
		rng := workload.NewRNG(uint64(i) + 1)
		workload.FillPermutation(u, rng)
		workload.FillPermutation(v, rng)
		mem.SetObserver(sim)
		b.StartTimer()
		engine.HashJoin(mem, u, v, w)
	}
}

// BenchmarkEvaluate is the cost-IR headline benchmark: the legacy
// recursive tree walker (Model.EvaluateTree, kept as the reference
// oracle) against the compiled flat-IR evaluator
// (costir.Program.Evaluate) on representative compound patterns. The
// CI bench smoke job parses this benchmark's output into
// BENCH_eval.json (see cmd/benchjson); the acceptance bar is 0
// allocs/op and ≥5x throughput for the IR evaluator on the hash-join
// pattern.
func BenchmarkEvaluate(b *testing.B) {
	h := hardware.Origin2000()
	model := cost.MustNew(h)
	n := int64(1 << 20)
	u := region.New("U", n, 16)
	v := region.New("V", n, 16)
	w := region.New("W", n, 16)
	hr := engine.HashRegionFor("H", n)
	patterns := []struct {
		name string
		p    pattern.Pattern
	}{
		{"hashjoin", engine.HashJoinPattern(u, v, hr, w)},
		{"quicksort", engine.QuickSortPattern(u, 32<<10)},
		{"partitioned256", engine.PartitionedHashJoinPattern(u, v, w, 256)},
	}
	for _, tc := range patterns {
		b.Run("tree/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := model.EvaluateTree(tc.p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("ir/"+tc.name, func(b *testing.B) {
			prog, err := costir.Compile(tc.p)
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]costir.Misses, 0, len(h.Levels))
			prog.Evaluate(h, dst) // warm the scratch pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = prog.Evaluate(h, dst)
			}
		})
	}
}

// BenchmarkPlanSearch is the plan-space-search headline benchmark, all
// modes through planner.QueryPlansSearch (i.e. including lowering,
// compilation and the exact phase-2 re-cost). Three modes:
//
//   - exhaustive: the left-deep enumerator on the 4-relation chain, the
//     largest scenario it handles comfortably — the DP search must beat
//     it there.
//   - dpcold: the DP search with the process-global step-cost cache
//     emptied before every iteration — the first-query-after-boot cost,
//     dominated by cold IR evaluations of partitioned-hash-join
//     geometries.
//   - dp: the DP search warmed up before timing — the steady-state cost
//     a serving process pays per query, which is what the optimizer
//     latency bar (docs/optimizer.md) is stated against.
//
// The 7..12-relation scenarios are DP-only (the exhaustive path would
// trip the MaxPlans cap); their cold/warm pairs quantify what geometry
// interning buys. CI parses this benchmark into BENCH_plan.json via
// cmd/benchjson -checkplan.
func BenchmarkPlanSearch(b *testing.B) {
	pl, err := planner.New(hardware.Origin2000())
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		mode     string
		scenario string
		so       planner.SearchOptions
	}{
		{"exhaustive", "join4-chain", planner.SearchOptions{Strategy: planner.SearchExhaustive}},
		{"dp", "join4-chain", planner.SearchOptions{}},
		{"dpcold", "join7-star", planner.SearchOptions{}},
		{"dp", "join7-star", planner.SearchOptions{}},
		{"dpcold", "join8-chain", planner.SearchOptions{}},
		{"dp", "join8-chain", planner.SearchOptions{}},
		{"dpcold", "join10-star", planner.SearchOptions{}},
		{"dp", "join10-star", planner.SearchOptions{}},
		{"dpcold", "join12-chain", planner.SearchOptions{}},
		{"dp", "join12-chain", planner.SearchOptions{}},
	}
	for _, tc := range cases {
		sc, ok := queryplan.ScenarioByName(tc.scenario)
		if !ok {
			b.Fatalf("unknown scenario %s", tc.scenario)
		}
		search := func(b *testing.B) {
			plans, err := pl.QueryPlansSearch(sc.Query, tc.so)
			if err != nil {
				b.Fatal(err)
			}
			if len(plans) == 0 {
				b.Fatal("no plans")
			}
		}
		b.Run(tc.mode+"/"+tc.scenario, func(b *testing.B) {
			if tc.mode == "dp" {
				search(b) // warm the step cache: steady-state semantics
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tc.mode == "dpcold" {
					b.StopTimer()
					queryplan.ResetStepCache()
					b.StartTimer()
				}
				search(b)
			}
		})
	}
}

// BenchmarkSweepGrid is the grid-sweep headline benchmark: the full
// 8-operator × 3-size analytical validation grid on Origin2000, single
// worker so the comparison isolates the sweep machinery from
// parallelism. Three modes:
//
//   - loop: the original point-at-a-time pipeline (re-validate,
//     re-compile, re-analyze every cell) via ValidationConfig.PointLoop.
//   - sweep: the production sweep path end to end, including grid
//     preparation — what one `costmodel validate` run pays.
//   - sweepwarm: repeated Runs on one prepared grid — the steady state
//     a serving process or calibration search pays per grid, which must
//     allocate nothing (0 allocs/op).
//
// CI parses this benchmark into BENCH_eval.json via cmd/benchjson
// -checksweep; the acceptance bar is sweepwarm ≥5x over loop with 0
// allocs/op (one prepared grid amortizes across the runs that reuse
// it, so the steady state carries the committed contract; the cold
// sweep is recorded alongside for the one-shot CLI cost).
func BenchmarkSweepGrid(b *testing.B) {
	vcfg := experiments.ValidationConfig{
		Backend: experiments.BackendAnalytical,
		Workers: 1,
	}
	ctx := context.Background()
	run := func(b *testing.B, cfg experiments.ValidationConfig) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, err := experiments.RunValidation(ctx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(v.Operators) == 0 {
				b.Fatal("empty validation")
			}
		}
	}
	b.Run("loop", func(b *testing.B) {
		cfg := vcfg
		cfg.PointLoop = true
		run(b, cfg)
	})
	b.Run("sweep", func(b *testing.B) { run(b, vcfg) })
	b.Run("sweepwarm", func(b *testing.B) {
		pts, err := experiments.ValidationSweepPoints(vcfg)
		if err != nil {
			b.Fatal(err)
		}
		grid, err := sweep.Prepare(pts)
		if err != nil {
			b.Fatal(err)
		}
		s, err := grid.On(hardware.Origin2000())
		if err != nil {
			b.Fatal(err)
		}
		opts := sweep.Options{Workers: 1, Predict: true, Price: true}
		if _, err := s.Run(ctx, opts); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := s.Run(ctx, opts)
			if err != nil {
				b.Fatal(err)
			}
			if len(res) != grid.Len() {
				b.Fatal("short sweep")
			}
		}
	})
}

// BenchmarkCompile prices the compile step the IR path adds (paid once
// per distinct pattern; the planner and server intern programs).
func BenchmarkCompile(b *testing.B) {
	n := int64(1 << 20)
	u := region.New("U", n, 16)
	v := region.New("V", n, 16)
	w := region.New("W", n, 16)
	hr := engine.HashRegionFor("H", n)
	p := engine.HashJoinPattern(u, v, hr, w)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := costir.Compile(p); err != nil {
			b.Fatal(err)
		}
	}
}
