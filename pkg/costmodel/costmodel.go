// Package costmodel is the public API of this repository's reproduction
// of "Generic Database Cost Models for Hierarchical Memory Systems"
// (Manegold, Boncz and Kersten, VLDB 2002).
//
// The paper models a database algorithm's memory behaviour in three
// steps, and this package exposes one construct per step:
//
//   - Data regions (NewRegion): a data structure is just R.n items of
//     R.w bytes.
//   - Data access patterns (STrav, RAcc, ..., or ParsePattern for the
//     paper's Table 2 text language): how an algorithm walks its
//     regions, combined sequentially (Seq, ⊕) or concurrently (Conc, ⊙).
//   - A hardware hierarchy (Hierarchy, or a named profile from the
//     Registry): per cache/TLB level, capacity, line size,
//     associativity and miss latencies.
//
// A Model ties the three together: Evaluate predicts sequential and
// random misses per level (Eqs. 4.2–4.9 and the Section 5 combination
// rules), MemoryTimeNS scores them into T_mem (Eq. 3.1), TotalTimeNS
// adds CPU cost (Eq. 6.1), and Explain itemizes the prediction per
// pattern-tree node.
//
// On top of the model, NewPlanner exposes a miniature cost-based
// optimizer (join/aggregate/distinct algorithm choice, plus
// whole-query planning via Planner.QueryCandidates — see package
// repro/pkg/costmodel/scenario for the plan-level catalog and
// PricePlan/BestPlan), and package repro/pkg/costmodel/server serves
// batched evaluations and plan pricing over HTTP.
// Package repro/pkg/costmodel/calibrate discovers an unknown machine's
// hierarchy and registers it as a profile (the paper's Calibrator,
// Section 7), and repro/pkg/costmodel/validate sweeps every operator
// pattern against reference cache simulation to quantify the model's
// relative error on a given profile.
//
// The package is a facade: it re-exports (via type aliases) the stable
// surface of the repository's internal packages so that external
// callers never need an internal import. Everything reachable from here
// is covered by the repository's compatibility intent; internal/
// packages are not.
package costmodel

import (
	"repro/internal/cost"
	"repro/internal/costir"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

// Region is a data region R with R.n items of R.w bytes each — the
// paper's first abstraction (a table, a hash structure, a tree, ...).
type Region = region.Region

// NewRegion returns a region with the given name, item count and item
// width in bytes. It panics if n < 0 or w <= 0.
func NewRegion(name string, n, w int64) *Region { return region.New(name, n, w) }

// Pattern is a basic or compound data access pattern (Table 2).
type Pattern = pattern.Pattern

// Basic patterns and their parameter types, re-exported from the
// pattern package. See ParsePattern for the equivalent text syntax.
type (
	// STrav is a single sequential traversal s_trav(R[,u]).
	STrav = pattern.STrav
	// RSTrav is a repetitive sequential traversal rs_trav(r, d, R[,u]).
	RSTrav = pattern.RSTrav
	// RTrav is a single random traversal r_trav(R[,u]).
	RTrav = pattern.RTrav
	// RRTrav is a repetitive random traversal rr_trav(r, R[,u]).
	RRTrav = pattern.RRTrav
	// RAcc is r independent random accesses r_acc(r, R[,u]).
	RAcc = pattern.RAcc
	// Nest is the interleaved multi-cursor access nest(R, m, P, o).
	Nest = pattern.Nest
	// Seq combines patterns executed one after another (the paper's ⊕).
	Seq = pattern.Seq
	// Conc combines patterns executed concurrently (the paper's ⊙).
	Conc = pattern.Conc
	// Direction selects uni- or bi-directional repetitive traversals.
	Direction = pattern.Direction
	// Order selects how a nest's global cursor picks local cursors.
	Order = pattern.Order
	// InnerKind selects the local-cursor pattern of a nest.
	InnerKind = pattern.InnerKind
)

// Direction, Order and InnerKind constants, re-exported.
const (
	Uni         = pattern.Uni
	Bi          = pattern.Bi
	OrderRandom = pattern.OrderRandom
	OrderUni    = pattern.OrderUni
	OrderBi     = pattern.OrderBi
	InnerSTrav  = pattern.InnerSTrav
	InnerRTrav  = pattern.InnerRTrav
	InnerRAcc   = pattern.InnerRAcc
)

// ParsePattern parses a pattern expression in the paper's Table 2 text
// language, resolving region names through regions:
//
//	s_trav(U) (.) r_acc(1000000, H) (.) s_trav(W)
//	rs_trav(10, bi, U) (+) [s_trav(V) (.) s_trav(W)]
//	nest(X, 64, s_trav(X_j), rnd)
//
// (+) is sequential execution ⊕, (.) is concurrent execution ⊙; (.)
// binds tighter, brackets group. The returned pattern is validated.
func ParsePattern(input string, regions map[string]*Region) (Pattern, error) {
	return pattern.Parse(input, regions)
}

// ValidatePattern checks the structural invariants of a pattern tree:
// non-nil regions, positive repeat/count parameters, u ≤ R.w.
func ValidatePattern(p Pattern) error { return pattern.Validate(p) }

// Hardware surface: one Level per cache or TLB, assembled into a
// Hierarchy ordered from the CPU outwards (the paper's Table 1).
type (
	// Level describes one cache or TLB level.
	Level = hardware.Level
	// Hierarchy is a cascading sequence of levels plus the CPU clock.
	Hierarchy = hardware.Hierarchy
	// AccessKind discriminates sequential from random accesses.
	AccessKind = hardware.AccessKind
)

// AccessKind constants, re-exported.
const (
	Sequential = hardware.Sequential
	Random     = hardware.Random
)

// Cost surface: a Model predicts per-level Misses and memory time.
type (
	// Model predicts cache misses and access time on one Hierarchy.
	Model = cost.Model
	// Result is a prediction: misses per hierarchy level.
	Result = cost.Result
	// LevelResult holds one level's predicted misses.
	LevelResult = cost.LevelResult
	// Misses is the per-level pair (sequential, random) of expected misses.
	Misses = cost.Misses
	// Explanation is an itemized per-pattern-node cost breakdown.
	Explanation = cost.Explanation
	// ExplainNode is one pattern-tree node's contribution.
	ExplainNode = cost.ExplainNode
)

// NewModel creates a cost model for the hierarchy; the hierarchy must
// validate.
func NewModel(h *Hierarchy) (*Model, error) { return cost.New(h) }

// MustNewModel is NewModel, panicking on error (for tests and examples).
func MustNewModel(h *Hierarchy) *Model { return cost.MustNew(h) }

// CompiledPattern is a pattern compiled into the flat cost IR: an
// immutable program over a dense table of deduplicated regions, with an
// allocation-free evaluator safe for concurrent use. Compile once,
// evaluate many times — across hardware profiles, goroutines and
// requests:
//
//	prog, err := costmodel.Compile(p)
//	...
//	misses := prog.Evaluate(hier, nil)       // per-level (M^s, M^r)
//	tmem := prog.MemoryTimeNS(hier)          // T_mem, Eq. 3.1
//
// Model.Evaluate compiles internally per call; hot paths (optimizers
// scoring plan candidates, batch services) should hold a
// CompiledPattern instead. CompiledPattern.Canonical returns the
// pattern's canonical form — a deterministic string under which
// cost-equivalent patterns (⊕ associativity, ⊙ commutativity, resolved
// parameters, region identity by name/geometry/parent chain) coincide,
// suitable as a cache key.
type CompiledPattern = costir.Program

// Compile canonicalizes and compiles a pattern into the flat cost IR.
// The pattern must validate (see ValidatePattern).
func Compile(p Pattern) (*CompiledPattern, error) { return costir.Compile(p) }

// CanonicalPattern returns the canonical form of p without compiling
// the full program — the key Compile-result caches should intern on.
func CanonicalPattern(p Pattern) (string, error) { return costir.CanonicalKey(p) }
