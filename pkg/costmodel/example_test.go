package costmodel_test

import (
	"fmt"
	"log"
	"os"

	"repro/pkg/costmodel"
)

// Parse a Table 2 pattern expression and predict its memory access time
// on the paper's SGI Origin2000: the probe phase of a hash join that
// scans U, probes hash table H once per tuple, and writes W.
func Example_parseAndEvaluate() {
	regions := map[string]*costmodel.Region{
		"U": costmodel.NewRegion("U", 1_000_000, 8),
		"H": costmodel.NewRegion("H", 2_097_152, 16),
		"W": costmodel.NewRegion("W", 1_000_000, 8),
	}
	p, err := costmodel.ParsePattern("s_trav(U) (.) r_acc(1000000, H) (.) s_trav(W)", regions)
	if err != nil {
		log.Fatal(err)
	}

	model, err := costmodel.NewModel(costmodel.Origin2000())
	if err != nil {
		log.Fatal(err)
	}
	res, err := model.Evaluate(p)
	if err != nil {
		log.Fatal(err)
	}
	for _, lr := range res.PerLevel {
		fmt.Printf("%-4s %8.0f misses\n", lr.Level.Name, lr.Misses.Total())
	}
	fmt.Printf("T_mem = %.1f ms\n", res.MemoryTimeNS()/1e6)
	// Output:
	// L1    1499747 misses
	// L2     994280 misses
	// TLB    960210 misses
	// T_mem = 618.1 ms
}

// Compare two join algorithms on one profile: the model prices the
// plain hash join's cache thrashing against the partitioned variant's
// extra sequential passes — the paper's headline trade-off.
func Example_compareAlgorithms() {
	model := costmodel.MustNewModel(costmodel.Origin2000())

	const n = 1 << 20
	u := costmodel.NewRegion("U", n, 16)
	v := costmodel.NewRegion("V", n, 16)
	w := costmodel.NewRegion("W", n, 16)
	h := costmodel.HashRegionFor("H", n)

	plain, err := model.MemoryTimeNS(costmodel.HashJoinPattern(u, v, h, w))
	if err != nil {
		log.Fatal(err)
	}
	part, err := model.MemoryTimeNS(costmodel.PartitionedHashJoinPattern(u, v, w, 64))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain hash join:       %7.1f ms\n", plain/1e6)
	fmt.Printf("partitioned (m=64):    %7.1f ms\n", part/1e6)
	fmt.Printf("winner: partitioned (%.1fx cheaper)\n", plain/part)
	// Output:
	// plain hash join:        1967.0 ms
	// partitioned (m=64):      475.0 ms
	// winner: partitioned (4.1x cheaper)
}

// Explain a prediction: itemize where a sort-then-scan plan's memory
// cost comes from, per pattern-tree node.
func ExampleModel_Explain() {
	model := costmodel.MustNewModel(costmodel.SmallTest())
	u := costmodel.NewRegion("U", 4096, 16)
	p := costmodel.Seq{
		costmodel.RRTrav{R: u, Repeats: 2},
		costmodel.STrav{R: u},
	}
	ex, err := model.Explain(p)
	if err != nil {
		log.Fatal(err)
	}
	ex.Render(os.Stdout)
	// Output:
	// pattern                                                          time[ms]      L1-miss      L2-miss     TLB-miss
	// seq of 2                                                            1.508        14082         9340         8456
	//   rr_trav(2, U)                                                     1.444        12034         8316         8200
	//   s_trav(U)                                                         0.065         2048         1024          256
}

// Register a custom machine once, then address it by name — the same
// registry backs the CLI's -profile flag and the serve endpoint.
func ExampleRegistry() {
	reg := costmodel.NewRegistry()
	err := reg.RegisterHierarchy("my-box", &costmodel.Hierarchy{
		Name:    "my-box",
		ClockNS: 0.4, // 2.5 GHz
		Levels: []costmodel.Level{
			{Name: "L1", Capacity: 48 << 10, LineSize: 64, Associativity: 12,
				SeqMissLatency: 4, RndMissLatency: 10},
			{Name: "L2", Capacity: 1 << 20, LineSize: 64, Associativity: 16,
				SeqMissLatency: 14, RndMissLatency: 40},
			{Name: "TLB", Capacity: 1536 * (4 << 10), LineSize: 4 << 10,
				SeqMissLatency: 80, RndMissLatency: 80, TLB: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	model, err := reg.Model("my-box")
	if err != nil {
		log.Fatal(err)
	}
	t, err := model.MemoryTimeNS(costmodel.RAcc{R: costmodel.NewRegion("U", 1<<22, 8), Count: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiles: %v\n", reg.Names())
	fmt.Printf("1M random accesses on my-box: %.1f ms\n", t/1e6)
	// Output:
	// profiles: [modern-x86 my-box origin2000 small-test]
	// 1M random accesses on my-box: 116.5 ms
}
