// Package scenario prices whole query plans on the cost model: the
// paper's compound-pattern algebra (Section 5) applied at plan
// granularity rather than per operator.
//
// A Query describes the logical shape — relations, a join graph with
// selectivities, optional filters/projections and an aggregate,
// distinct or order-by on top. PricePlan searches its physical
// alternatives — by default a dynamic program over the connected
// subgraphs of the join graph (memoized subplans, bushy trees, top-k
// pruning by a context-free cost bound; see docs/optimizer.md), with
// the exhaustive left-deep enumerator available via SearchOptions as a
// small-query oracle — lowers each surviving plan to one compound
// access pattern (operators sequenced with ⊕ so cache state threads
// between them, MonetDB-style full materialization), compiles it once
// into the cost IR, and ranks the plans by predicted total time on a
// hardware profile. BestPlan returns the winner.
//
// Catalog ships ready-made scenarios — single-operator baselines,
// hash-vs-sort decisions, 2–4 relation join-order problems, TPC-H
// Q1/Q3-shaped pipelines, and DP-only shapes (a 7-relation snowflake,
// an 8-relation chain, a cyclic graph, a bushy-favouring two-island
// query) — whose expected plan choices and costs are locked by the
// repository's golden-corpus regression harness (see
// docs/scenarios.md). The same scenarios are served by `costmodel
// scenarios` and by the HTTP endpoint POST /v1/plan.
package scenario

import (
	"repro/internal/queryplan"
	"repro/pkg/costmodel"
)

// Re-exported queryplan types: the logical query description.
type (
	// Query is a logical query: relations, join graph, filters, and an
	// optional aggregate / distinct / order-by.
	Query = queryplan.Query
	// JoinEdge is one equi-join predicate with its selectivity.
	JoinEdge = queryplan.JoinEdge
	// Relation describes an input's logical properties (an alias of
	// costmodel.Relation).
	Relation = queryplan.Relation
	// Scenario is one named catalog entry.
	Scenario = queryplan.Scenario
	// Plan is one physical plan tree (algorithm choices made).
	Plan = queryplan.Plan
	// Options parameterize enumeration (fan-outs, plan cap, CPU
	// constants) for callers using Enumerate directly.
	Options = queryplan.Options
	// SearchOptions tune the plan-space search: strategy (DP or
	// exhaustive), memo top-k, bushy on/off. The zero value is the DP
	// search with defaults.
	SearchOptions = queryplan.SearchOptions
	// SearchStrategy selects the plan-space search engine.
	SearchStrategy = queryplan.SearchStrategy
	// Fingerprint is a query's canonical identity: an
	// isomorphism-safe shape key plus the parameter vector in
	// canonical order (see FingerprintQuery).
	Fingerprint = queryplan.Fingerprint
	// Recipe is the relabelable skeleton of one physical plan — scan
	// leaves hold canonical relation positions, output estimates are
	// recomputed at Bind time (see NewRecipe / BindRecipe).
	Recipe = queryplan.Recipe
)

// The search strategies.
const (
	// SearchDP is the memoized DP search over connected subgraphs
	// (bushy trees, top-k pruning) — the default.
	SearchDP = queryplan.SearchDP
	// SearchExhaustive is the exhaustive left-deep enumerator, the
	// complete-but-factorial oracle for small queries.
	SearchExhaustive = queryplan.SearchExhaustive
	// DefaultTopK is the DP memo width used when SearchOptions.TopK is
	// zero.
	DefaultTopK = queryplan.DefaultTopK
)

// Catalog returns the built-in scenarios.
func Catalog() []Scenario { return queryplan.Catalog() }

// Names returns the catalog's scenario names in catalog order.
func Names() []string { return queryplan.ScenarioNames() }

// ByName looks a scenario up in the catalog.
func ByName(name string) (Scenario, bool) { return queryplan.ScenarioByName(name) }

// Enumerate expands a query into its physical plan trees without
// costing them — the raw material for custom scoring loops. It always
// runs the exhaustive left-deep path (no hierarchy to price DP bounds
// on); use Candidates / PricePlan for the DP search.
func Enumerate(q Query, opts Options) ([]*Plan, error) { return queryplan.Enumerate(q, opts) }

// Candidates searches, lowers and compiles the physical plans of q
// for the given hierarchy (whose smallest cache capacity prunes
// quick-sort recursion) under the default DP search, deduplicating
// cost-equivalent plans. The result can be re-scored on any number of
// profiles with costmodel.ScorePlans without re-compiling.
func Candidates(h *costmodel.Hierarchy, q Query) ([]costmodel.Candidate, error) {
	return CandidatesSearch(h, q, SearchOptions{})
}

// CandidatesSearch is Candidates with explicit search options
// (strategy, memo top-k, bushy on/off).
func CandidatesSearch(h *costmodel.Hierarchy, q Query, so SearchOptions) ([]costmodel.Candidate, error) {
	pl, err := costmodel.NewPlanner(h)
	if err != nil {
		return nil, err
	}
	return pl.QueryCandidatesSearch(q, so)
}

// PricePlan searches and prices the physical plans of q on the
// hierarchy under the default DP search, returning the plans sorted
// cheapest first. Each returned plan's Algorithm field carries the
// plan signature, e.g.
//
//	sort(hashagg((σ(C) hj σ(O)) hj L))
func PricePlan(h *costmodel.Hierarchy, q Query) ([]costmodel.Plan, error) {
	return PricePlanSearch(h, q, SearchOptions{})
}

// PricePlanSearch is PricePlan with explicit search options.
func PricePlanSearch(h *costmodel.Hierarchy, q Query, so SearchOptions) ([]costmodel.Plan, error) {
	pl, err := costmodel.NewPlanner(h)
	if err != nil {
		return nil, err
	}
	return pl.QueryPlansSearch(q, so)
}

// BestPlan returns the cheapest physical plan of q on the hierarchy
// under the default DP search.
func BestPlan(h *costmodel.Hierarchy, q Query) (costmodel.Plan, error) {
	return BestPlanSearch(h, q, SearchOptions{})
}

// BestPlanSearch is BestPlan with explicit search options.
func BestPlanSearch(h *costmodel.Hierarchy, q Query, so SearchOptions) (costmodel.Plan, error) {
	pl, err := costmodel.NewPlanner(h)
	if err != nil {
		return costmodel.Plan{}, err
	}
	return pl.BestQueryPlanSearch(q, so)
}

// FingerprintQuery computes q's canonical fingerprint: a shape key
// that is stable under relation renaming, relation reordering and edge
// reordering (isomorphic join graphs collide), with the numeric
// parameters — cardinalities, widths, selectivities, group counts —
// split into a separate vector in canonical order. The serving plan
// cache keys on the shape and compares the parameters to decide
// between a pure hit, a cheap re-validation, and a full re-search
// (docs/serving.md). Validation errors are returned unchanged.
func FingerprintQuery(q Query) (Fingerprint, error) { return q.Fingerprint() }

// NewRecipe extracts the relabelable skeleton of a plan searched for
// (q, fp): algorithm choices kept, names and estimates dropped.
func NewRecipe(p *Plan, q Query, fp Fingerprint) (*Recipe, error) {
	return queryplan.NewRecipe(p, q, fp)
}

// BindRecipe re-attaches a recipe to a query of the same shape,
// recomputing every output estimate under that query's parameters.
// Binding a recipe back to its own query reproduces the searched plan
// exactly (bit-identical lowered cost).
func BindRecipe(r *Recipe, q Query, fp Fingerprint) (*Plan, error) {
	return r.Bind(q, fp)
}

// PricedPlan pairs one costed ranking entry with the physical plan
// tree it was lowered from.
type PricedPlan struct {
	Plan costmodel.Plan
	Tree *Plan
}

// PricePlanTreesSearch is PricePlanSearch keeping each ranking entry's
// plan tree — the raw material for recipes: search once, extract
// recipes from the trees, and serve future same-shape queries without
// re-searching.
func PricePlanTreesSearch(h *costmodel.Hierarchy, q Query, so SearchOptions) ([]PricedPlan, error) {
	pl, err := costmodel.NewPlanner(h)
	if err != nil {
		return nil, err
	}
	costed, err := pl.QueryCostedTreesSearch(q, so)
	if err != nil {
		return nil, err
	}
	out := make([]PricedPlan, len(costed))
	for i, ct := range costed {
		out[i] = PricedPlan{Plan: ct.Plan, Tree: ct.Tree}
	}
	return out, nil
}

// RescorePlans lowers, compiles and costs the given plan trees on the
// hierarchy, one result per tree in input order — no search, no dedup,
// no sorting. Each call prices at IR-evaluator speed (microseconds per
// plan), which is what makes parameter-drift re-validation of cached
// recipes ~1000x cheaper than a DP re-search.
func RescorePlans(h *costmodel.Hierarchy, trees []*Plan) ([]costmodel.Plan, error) {
	pl, err := costmodel.NewPlanner(h)
	if err != nil {
		return nil, err
	}
	return pl.ScoreQueryPlans(trees)
}
