// Package scenario prices whole query plans on the cost model: the
// paper's compound-pattern algebra (Section 5) applied at plan
// granularity rather than per operator.
//
// A Query describes the logical shape — relations, a join graph with
// selectivities, optional filters/projections and an aggregate,
// distinct or order-by on top. PricePlan enumerates its physical
// alternatives (left-deep join orders, an algorithm choice per join,
// hash- vs sort-based grouping), lowers each plan to one compound
// access pattern (operators sequenced with ⊕ so cache state threads
// between them, MonetDB-style full materialization), compiles it once
// into the cost IR, and ranks the plans by predicted total time on a
// hardware profile. BestPlan returns the winner.
//
// Catalog ships ready-made scenarios — single-operator baselines,
// hash-vs-sort decisions, 2–4 relation join-order problems and TPC-H
// Q1/Q3-shaped pipelines — whose expected plan choices and costs are
// locked by the repository's golden-corpus regression harness (see
// docs/scenarios.md). The same scenarios are served by `costmodel
// scenarios` and by the HTTP endpoint POST /v1/plan.
package scenario

import (
	"repro/internal/queryplan"
	"repro/pkg/costmodel"
)

// Re-exported queryplan types: the logical query description.
type (
	// Query is a logical query: relations, join graph, filters, and an
	// optional aggregate / distinct / order-by.
	Query = queryplan.Query
	// JoinEdge is one equi-join predicate with its selectivity.
	JoinEdge = queryplan.JoinEdge
	// Relation describes an input's logical properties (an alias of
	// costmodel.Relation).
	Relation = queryplan.Relation
	// Scenario is one named catalog entry.
	Scenario = queryplan.Scenario
	// Plan is one physical plan tree (algorithm choices made).
	Plan = queryplan.Plan
	// Options parameterize enumeration (fan-outs, plan cap, CPU
	// constants) for callers using Enumerate directly.
	Options = queryplan.Options
)

// Catalog returns the built-in scenarios.
func Catalog() []Scenario { return queryplan.Catalog() }

// Names returns the catalog's scenario names in catalog order.
func Names() []string { return queryplan.ScenarioNames() }

// ByName looks a scenario up in the catalog.
func ByName(name string) (Scenario, bool) { return queryplan.ScenarioByName(name) }

// Enumerate expands a query into its physical plan trees without
// costing them — the raw material for custom scoring loops.
func Enumerate(q Query, opts Options) ([]*Plan, error) { return queryplan.Enumerate(q, opts) }

// Candidates enumerates, lowers and compiles the physical plans of q
// for the given hierarchy (whose smallest cache capacity prunes
// quick-sort recursion), deduplicating cost-equivalent plans. The
// result can be re-scored on any number of profiles with
// costmodel.ScorePlans without re-compiling.
func Candidates(h *costmodel.Hierarchy, q Query) ([]costmodel.Candidate, error) {
	pl, err := costmodel.NewPlanner(h)
	if err != nil {
		return nil, err
	}
	return pl.QueryCandidates(q)
}

// PricePlan enumerates and prices every physical plan of q on the
// hierarchy, returning the plans sorted cheapest first. Each returned
// plan's Algorithm field carries the plan signature, e.g.
//
//	sort(hashagg((σ(C) hj σ(O)) hj L))
func PricePlan(h *costmodel.Hierarchy, q Query) ([]costmodel.Plan, error) {
	pl, err := costmodel.NewPlanner(h)
	if err != nil {
		return nil, err
	}
	return pl.QueryPlans(q)
}

// BestPlan returns the cheapest physical plan of q on the hierarchy.
func BestPlan(h *costmodel.Hierarchy, q Query) (costmodel.Plan, error) {
	pl, err := costmodel.NewPlanner(h)
	if err != nil {
		return costmodel.Plan{}, err
	}
	return pl.BestQueryPlan(q)
}
