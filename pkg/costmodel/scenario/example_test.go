package scenario_test

import (
	"fmt"

	"repro/pkg/costmodel"
	"repro/pkg/costmodel/scenario"
)

// ExampleBestPlan prices a two-table equi-join where both inputs are
// already key-ordered: the merge join needs no sort, so it wins on
// every sane hierarchy.
func ExampleBestPlan() {
	h, err := costmodel.Profile("origin2000")
	if err != nil {
		panic(err)
	}
	q := scenario.Query{
		Relations: []scenario.Relation{
			{Name: "U", Tuples: 200_000, Width: 16, Sorted: true},
			{Name: "V", Tuples: 100_000, Width: 16, Sorted: true},
		},
		Joins: []scenario.JoinEdge{{Left: 0, Right: 1, Selectivity: 1.0 / 200_000}},
	}
	best, err := scenario.BestPlan(h, q)
	if err != nil {
		panic(err)
	}
	fmt.Println(best.Algorithm)
	// Output:
	// (U mj V)
}

// ExampleByName looks up a catalog scenario and shows its shape.
func ExampleByName() {
	sc, ok := scenario.ByName("join3-chain-q3")
	if !ok {
		panic("catalog entry vanished")
	}
	fmt.Println(len(sc.Query.Relations), "relations,", len(sc.Query.Joins), "joins")
	// Output:
	// 3 relations, 2 joins
}
