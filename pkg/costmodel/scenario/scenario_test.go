package scenario_test

import (
	"testing"

	"repro/pkg/costmodel"
	"repro/pkg/costmodel/scenario"
)

func lightQuery() scenario.Query {
	return scenario.Query{
		Relations: []scenario.Relation{
			{Name: "O", Tuples: 8_000, Width: 16},
			{Name: "C", Tuples: 1_000, Width: 16},
		},
		Joins:  []scenario.JoinEdge{{Left: 0, Right: 1, Selectivity: 1.0 / 1_000}},
		SortBy: true,
	}
}

func TestCatalogSurface(t *testing.T) {
	if len(scenario.Catalog()) < 16 {
		t.Fatalf("catalog has %d scenarios, want ≥ 16", len(scenario.Catalog()))
	}
	names := scenario.Names()
	if len(names) != len(scenario.Catalog()) {
		t.Fatalf("Names length %d != catalog length %d", len(names), len(scenario.Catalog()))
	}
	sc, ok := scenario.ByName(names[0])
	if !ok || sc.Name != names[0] {
		t.Fatalf("ByName(%q) = %v, %t", names[0], sc.Name, ok)
	}
}

func TestBestPlanIsCheapest(t *testing.T) {
	h, err := costmodel.Profile("small-test")
	if err != nil {
		t.Fatal(err)
	}
	q := lightQuery()
	plans, err := scenario.PricePlan(h, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	best, err := scenario.BestPlan(h, q)
	if err != nil {
		t.Fatal(err)
	}
	if best.Algorithm != plans[0].Algorithm {
		t.Errorf("BestPlan %s != PricePlan[0] %s", best.Algorithm, plans[0].Algorithm)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].TotalNS() < plans[0].TotalNS() {
			t.Errorf("plan %s cheaper than the reported best", plans[i].Algorithm)
		}
	}
}

func TestCandidatesRescoreAcrossProfiles(t *testing.T) {
	h, err := costmodel.Profile("small-test")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := scenario.Candidates(h, lightQuery())
	if err != nil {
		t.Fatal(err)
	}
	ranked := costmodel.ScorePlans(h, cands)
	if len(ranked) != len(cands) {
		t.Fatalf("ScorePlans returned %d plans for %d candidates", len(ranked), len(cands))
	}
	direct, err := scenario.PricePlan(h, lightQuery())
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Algorithm != direct[0].Algorithm {
		t.Errorf("ScorePlans winner %s != PricePlan winner %s", ranked[0].Algorithm, direct[0].Algorithm)
	}

	// Re-score the same compiled candidates on a different hierarchy.
	h2, err := costmodel.Profile("origin2000")
	if err != nil {
		t.Fatal(err)
	}
	ranked2 := costmodel.ScorePlans(h2, cands)
	if len(ranked2) != len(cands) {
		t.Fatalf("cross-profile ScorePlans returned %d plans", len(ranked2))
	}
}

func TestEnumerateExposed(t *testing.T) {
	plans, err := scenario.Enumerate(lightQuery(), scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans enumerated")
	}
	if plans[0].Signature() == "" {
		t.Fatal("plan without signature")
	}
}

// TestSearchOptionsSurface drives the facade's explicit-search entry
// points: the exhaustive oracle and the pruned DP default must agree on
// the winner of a small query, the DP space must be a subset, and an
// invalid strategy must error.
func TestSearchOptionsSurface(t *testing.T) {
	h, err := costmodel.Profile("small-test")
	if err != nil {
		t.Fatal(err)
	}
	q := lightQuery()
	ex, err := scenario.PricePlanSearch(h, q, scenario.SearchOptions{Strategy: scenario.SearchExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := scenario.PricePlanSearch(h, q, scenario.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dp) == 0 || len(dp) > len(ex) {
		t.Fatalf("DP space %d plans, exhaustive %d — pruned search should be a subset", len(dp), len(ex))
	}
	if dp[0].Algorithm != ex[0].Algorithm {
		t.Errorf("DP winner %s != exhaustive winner %s", dp[0].Algorithm, ex[0].Algorithm)
	}
	best, err := scenario.BestPlanSearch(h, q, scenario.SearchOptions{Strategy: scenario.SearchExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if best.Algorithm != ex[0].Algorithm {
		t.Errorf("BestPlanSearch %s != PricePlanSearch[0] %s", best.Algorithm, ex[0].Algorithm)
	}
	cands, err := scenario.CandidatesSearch(h, q, scenario.SearchOptions{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || len(cands) > len(dp) {
		t.Errorf("TopK=1 produced %d candidates, default DP %d", len(cands), len(dp))
	}
	if _, err := scenario.PricePlanSearch(h, q, scenario.SearchOptions{Strategy: "bogus"}); err == nil {
		t.Error("invalid strategy accepted")
	}
}

// TestDPReachesLargeScenarios prices the catalog shapes that exist only
// for the DP engine.
func TestDPReachesLargeScenarios(t *testing.T) {
	// modern-x86, not small-test: the large scenarios' sort patterns
	// recurse down to the smallest cache capacity, and small-test's 1 kB
	// L1 would make every lowering needlessly huge.
	h, err := costmodel.Profile("modern-x86")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"join7-star", "join8-chain", "join5-cycle", "join6-islands"} {
		sc, ok := scenario.ByName(name)
		if !ok {
			t.Fatalf("scenario %s missing from the catalog", name)
		}
		best, err := scenario.BestPlan(h, sc.Query)
		if err != nil {
			t.Fatalf("BestPlan(%s): %v", name, err)
		}
		if best.Algorithm == "" || best.TotalNS() <= 0 {
			t.Errorf("BestPlan(%s) = %+v", name, best)
		}
	}
}

func TestPricePlanInvalidQuery(t *testing.T) {
	h, err := costmodel.Profile("small-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.PricePlan(h, scenario.Query{}); err == nil {
		t.Fatal("invalid query accepted")
	}
}
