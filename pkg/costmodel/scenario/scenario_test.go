package scenario_test

import (
	"testing"

	"repro/pkg/costmodel"
	"repro/pkg/costmodel/scenario"
)

func lightQuery() scenario.Query {
	return scenario.Query{
		Relations: []scenario.Relation{
			{Name: "O", Tuples: 8_000, Width: 16},
			{Name: "C", Tuples: 1_000, Width: 16},
		},
		Joins:  []scenario.JoinEdge{{Left: 0, Right: 1, Selectivity: 1.0 / 1_000}},
		SortBy: true,
	}
}

func TestCatalogSurface(t *testing.T) {
	if len(scenario.Catalog()) < 12 {
		t.Fatalf("catalog has %d scenarios, want ≥ 12", len(scenario.Catalog()))
	}
	names := scenario.Names()
	if len(names) != len(scenario.Catalog()) {
		t.Fatalf("Names length %d != catalog length %d", len(names), len(scenario.Catalog()))
	}
	sc, ok := scenario.ByName(names[0])
	if !ok || sc.Name != names[0] {
		t.Fatalf("ByName(%q) = %v, %t", names[0], sc.Name, ok)
	}
}

func TestBestPlanIsCheapest(t *testing.T) {
	h, err := costmodel.Profile("small-test")
	if err != nil {
		t.Fatal(err)
	}
	q := lightQuery()
	plans, err := scenario.PricePlan(h, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	best, err := scenario.BestPlan(h, q)
	if err != nil {
		t.Fatal(err)
	}
	if best.Algorithm != plans[0].Algorithm {
		t.Errorf("BestPlan %s != PricePlan[0] %s", best.Algorithm, plans[0].Algorithm)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].TotalNS() < plans[0].TotalNS() {
			t.Errorf("plan %s cheaper than the reported best", plans[i].Algorithm)
		}
	}
}

func TestCandidatesRescoreAcrossProfiles(t *testing.T) {
	h, err := costmodel.Profile("small-test")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := scenario.Candidates(h, lightQuery())
	if err != nil {
		t.Fatal(err)
	}
	ranked := costmodel.ScorePlans(h, cands)
	if len(ranked) != len(cands) {
		t.Fatalf("ScorePlans returned %d plans for %d candidates", len(ranked), len(cands))
	}
	direct, err := scenario.PricePlan(h, lightQuery())
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Algorithm != direct[0].Algorithm {
		t.Errorf("ScorePlans winner %s != PricePlan winner %s", ranked[0].Algorithm, direct[0].Algorithm)
	}

	// Re-score the same compiled candidates on a different hierarchy.
	h2, err := costmodel.Profile("origin2000")
	if err != nil {
		t.Fatal(err)
	}
	ranked2 := costmodel.ScorePlans(h2, cands)
	if len(ranked2) != len(cands) {
		t.Fatalf("cross-profile ScorePlans returned %d plans", len(ranked2))
	}
}

func TestEnumerateExposed(t *testing.T) {
	plans, err := scenario.Enumerate(lightQuery(), scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans enumerated")
	}
	if plans[0].Signature() == "" {
		t.Fatal("plan without signature")
	}
}

func TestPricePlanInvalidQuery(t *testing.T) {
	h, err := costmodel.Profile("small-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.PricePlan(h, scenario.Query{}); err == nil {
		t.Fatal("invalid query accepted")
	}
}
