package costmodel

import "repro/internal/engine"

// Operator pattern builders, re-exported from the simulated engine:
// ready-made Table 2 access-pattern descriptions of the classic
// relational operators, so callers can cost a hash join or a quick-sort
// without spelling out its pattern algebra by hand.
var (
	// ScanPattern is s_trav(U, u): a table scan touching u bytes per tuple.
	ScanPattern = engine.ScanPattern
	// SelectPattern is s_trav(U) ⊙ s_trav(W).
	SelectPattern = engine.SelectPattern
	// ProjectPattern is s_trav(U, u) ⊙ s_trav(W).
	ProjectPattern = engine.ProjectPattern
	// QuickSortPattern describes in-place quick-sort over a region.
	QuickSortPattern = engine.QuickSortPattern
	// MergeJoinPattern is s_trav(U) ⊙ s_trav(V) ⊙ s_trav(W).
	MergeJoinPattern = engine.MergeJoinPattern
	// NestedLoopJoinPattern is the outer traversal with a repeated inner.
	NestedLoopJoinPattern = engine.NestedLoopJoinPattern
	// HashBuildPattern is the build phase s_trav(V) ⊙ r_trav(H).
	HashBuildPattern = engine.HashBuildPattern
	// HashProbePattern is the probe phase s_trav(U) ⊙ r_acc(|U|, H) ⊙ s_trav(W).
	HashProbePattern = engine.HashProbePattern
	// HashJoinPattern is build ⊕ probe.
	HashJoinPattern = engine.HashJoinPattern
	// PartitionPattern is s_trav(U) ⊙ nest(W, m, s_trav(W_j), rnd).
	PartitionPattern = engine.PartitionPattern
	// PartitionedHashJoinPattern partitions both inputs, then joins
	// cluster pairs.
	PartitionedHashJoinPattern = engine.PartitionedHashJoinPattern
	// HashAggregatePattern is s_trav(U) ⊙ r_acc(|U|, A).
	HashAggregatePattern = engine.HashAggregatePattern
	// HashDedupPattern is hash-based duplicate elimination.
	HashDedupPattern = engine.HashDedupPattern
	// SortDedupPattern is sort-based duplicate elimination.
	SortDedupPattern = engine.SortDedupPattern

	// HashRegionFor returns the region descriptor of the hash table the
	// engine would build for n entries (buckets = next power of two ≥ 2n).
	HashRegionFor = engine.HashRegionFor
	// AggRegionFor returns the region descriptor of the aggregation
	// table the engine would build for n groups.
	AggRegionFor = engine.AggRegionFor
)
