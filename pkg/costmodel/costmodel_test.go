package costmodel_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/hardware"
	"repro/pkg/costmodel"
)

// TestFacadeParity pins the facade to the internal implementation: a
// pattern evaluated through pkg/costmodel must predict exactly what the
// internal packages predict.
func TestFacadeParity(t *testing.T) {
	u := costmodel.NewRegion("U", 1<<20, 16)
	h := costmodel.NewRegion("H", 1<<21, 16)
	w := costmodel.NewRegion("W", 1<<20, 16)
	p, err := costmodel.ParsePattern(
		"s_trav(U) (.) r_acc(1048576, H) (.) s_trav(W)",
		map[string]*costmodel.Region{"U": u, "H": h, "W": w})
	if err != nil {
		t.Fatal(err)
	}

	pub, err := costmodel.NewModel(costmodel.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	internal, err := cost.New(hardware.Origin2000())
	if err != nil {
		t.Fatal(err)
	}

	got, err := pub.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := internal.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.MemoryTimeNS() != want.MemoryTimeNS() {
		t.Fatalf("facade T_mem = %g, internal = %g", got.MemoryTimeNS(), want.MemoryTimeNS())
	}
	for i := range got.PerLevel {
		if got.PerLevel[i].Misses != want.PerLevel[i].Misses {
			t.Errorf("level %s: facade misses %+v, internal %+v",
				got.PerLevel[i].Level.Name, got.PerLevel[i].Misses, want.PerLevel[i].Misses)
		}
	}
}

func TestRegistryBuiltins(t *testing.T) {
	reg := costmodel.NewRegistry()
	for _, name := range []string{"origin2000", "modern-x86", "small-test"} {
		h, err := reg.Profile(name)
		if err != nil {
			t.Fatalf("built-in profile %q: %v", name, err)
		}
		if err := h.Validate(); err != nil {
			t.Errorf("built-in profile %q does not validate: %v", name, err)
		}
	}
	if _, err := reg.Profile("no-such-machine"); err == nil {
		t.Error("unknown profile: want error, got nil")
	}
}

func TestRegistryProfileIsolation(t *testing.T) {
	reg := costmodel.NewRegistry()
	a, _ := reg.Profile("origin2000")
	a.Levels[0].Capacity = 1 // vandalize the returned copy
	b, _ := reg.Profile("origin2000")
	if b.Levels[0].Capacity == 1 {
		t.Fatal("Profile returned a shared hierarchy; mutations leak between calls")
	}
}

func TestRegistryRegister(t *testing.T) {
	reg := costmodel.NewRegistry()
	base := reg.Version()

	custom := costmodel.SmallTest()
	custom.Name = "my-box"
	if err := reg.RegisterHierarchy("my-box", custom); err != nil {
		t.Fatal(err)
	}
	if reg.Version() == base {
		t.Error("Register did not bump the registry version")
	}
	got, err := reg.Profile("my-box")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "my-box" {
		t.Errorf("got profile %q, want my-box", got.Name)
	}

	// The registration froze a copy: mutating the original afterwards
	// must not affect lookups.
	custom.Levels[0].Capacity = 1
	got, _ = reg.Profile("my-box")
	if got.Levels[0].Capacity == 1 {
		t.Error("RegisterHierarchy did not copy the hierarchy")
	}

	names := reg.Names()
	if !sorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	found := false
	for _, n := range names {
		if n == "my-box" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() missing my-box: %v", names)
	}
}

func TestRegistryRejectsInvalid(t *testing.T) {
	reg := costmodel.NewRegistry()
	if err := reg.Register("", costmodel.Origin2000); err == nil {
		t.Error("empty name: want error")
	}
	if err := reg.Register("x", nil); err == nil {
		t.Error("nil constructor: want error")
	}
	bad := &costmodel.Hierarchy{Name: "bad"} // no levels
	if err := reg.RegisterHierarchy("bad", bad); err == nil {
		t.Error("invalid hierarchy: want error")
	}
	if err := reg.RegisterHierarchy("nil", nil); err == nil {
		t.Error("nil hierarchy: want error")
	}
	if _, err := reg.Profile("bad"); err == nil {
		t.Error("rejected profile must not be registered")
	}
}

// TestPlannerFacade exercises the planner entry points end to end: the
// ranking must be sound (sorted by total time) and the crossover from
// the paper must show up (partitioned hash join beats nested loop for
// large inputs).
func TestPlannerFacade(t *testing.T) {
	pl, err := costmodel.NewPlanner(costmodel.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	u := costmodel.Relation{Name: "U", Tuples: 1 << 20, Width: 16}
	v := costmodel.Relation{Name: "V", Tuples: 1 << 20, Width: 16}
	plans, err := pl.JoinPlans(u, v, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 3 {
		t.Fatalf("want ≥3 candidate plans, got %d", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].TotalNS() < plans[i-1].TotalNS() {
			t.Errorf("plans not sorted: %v before %v", plans[i-1], plans[i])
		}
	}
	best, err := pl.BestJoin(u, v, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if best.Algorithm == costmodel.NestedLoopJoin {
		t.Errorf("nested loop chosen for 1M⋈1M: %v", best)
	}
	if math.IsNaN(best.TotalNS()) || best.TotalNS() <= 0 {
		t.Errorf("best plan has nonsense cost: %v", best)
	}
}

// TestExplainMatchesEvaluate checks the facade's Explain totals equal
// Evaluate's prediction, as documented.
func TestExplainMatchesEvaluate(t *testing.T) {
	model := costmodel.MustNewModel(costmodel.ModernX86())
	u := costmodel.NewRegion("U", 1<<18, 32)
	p := costmodel.Seq{
		costmodel.STrav{R: u},
		costmodel.RAcc{R: u, Count: 1 << 16},
	}
	res, err := model.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := model.Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ex.Total().TimeNS, res.MemoryTimeNS(); math.Abs(got-want) > 1e-6*want {
		t.Errorf("Explain total %g != Evaluate %g", got, want)
	}
	var sb strings.Builder
	ex.Render(&sb)
	if !strings.Contains(sb.String(), "r_acc") {
		t.Errorf("rendered explanation missing pattern nodes:\n%s", sb.String())
	}
}

func sorted(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// TestCompiledPatternMatchesModel: the public Compile path must agree
// with Model.Evaluate (which compiles internally) and be reusable
// across hierarchies.
func TestCompiledPatternMatchesModel(t *testing.T) {
	u := costmodel.NewRegion("U", 1<<18, 16)
	h := costmodel.HashRegionFor("H", u.N)
	p := costmodel.Conc{
		costmodel.STrav{R: u},
		costmodel.RAcc{R: h, Count: u.N},
	}
	prog, err := costmodel.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() *costmodel.Hierarchy{costmodel.Origin2000, costmodel.ModernX86} {
		hier := mk()
		model := costmodel.MustNewModel(hier)
		want, err := model.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		misses := prog.Evaluate(hier, nil)
		if len(misses) != len(want.PerLevel) {
			t.Fatalf("%s: %d levels, want %d", hier.Name, len(misses), len(want.PerLevel))
		}
		for i := range misses {
			if misses[i] != want.PerLevel[i].Misses {
				t.Errorf("%s level %d: compiled %+v != model %+v",
					hier.Name, i, misses[i], want.PerLevel[i].Misses)
			}
		}
		if got, want := prog.MemoryTimeNS(hier), want.MemoryTimeNS(); got != want {
			t.Errorf("%s: MemoryTimeNS compiled %g != model %g", hier.Name, got, want)
		}
	}
}

// TestCanonicalPattern: the canonical form is stable across
// cost-equivalent spellings and available without full compilation.
func TestCanonicalPattern(t *testing.T) {
	u := costmodel.NewRegion("U", 1000, 16)
	v := costmodel.NewRegion("V", 500, 8)
	a := costmodel.Conc{costmodel.STrav{R: u}, costmodel.RTrav{R: v}}
	b := costmodel.Conc{costmodel.RTrav{R: v}, costmodel.STrav{R: u}}
	ka, err := costmodel.CanonicalPattern(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := costmodel.CanonicalPattern(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("canonical forms differ:\n  %q\n  %q", ka, kb)
	}
	prog, err := costmodel.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Canonical() != ka {
		t.Errorf("Compile().Canonical() = %q, CanonicalPattern = %q", prog.Canonical(), ka)
	}
}

// TestScorePlansAcrossProfiles: candidates enumerate+compile once and
// re-score on any registered profile.
func TestScorePlansAcrossProfiles(t *testing.T) {
	pl, err := costmodel.NewPlanner(costmodel.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	u := costmodel.Relation{Name: "U", Tuples: 200000, Width: 16}
	v := costmodel.Relation{Name: "V", Tuples: 100000, Width: 16}
	cands, err := pl.JoinCandidates(u, v, u.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	for _, hier := range []*costmodel.Hierarchy{costmodel.Origin2000(), costmodel.SmallTest()} {
		plans := costmodel.ScorePlans(hier, cands)
		if len(plans) != len(cands) {
			t.Fatalf("%s: %d plans from %d candidates", hier.Name, len(plans), len(cands))
		}
		for i := 1; i < len(plans); i++ {
			if plans[i-1].TotalNS() > plans[i].TotalNS() {
				t.Errorf("%s: plans not sorted cheapest first", hier.Name)
			}
		}
	}
}
