package costmodel

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/hardware"
)

// A Registry maps profile names to hardware hierarchies. It is seeded
// with the built-in profiles (the paper's Origin2000 and friends, see
// docs/profiles.md) and can be extended at runtime with Register, so a
// deployment can describe its own machines once and address them by
// name everywhere — CLI flags, HTTP requests, planner setup.
//
// A Registry is safe for concurrent use. Profiles are stored as
// constructor functions and every Profile call returns a fresh
// *Hierarchy, so callers may mutate the result freely.
type Registry struct {
	mu       sync.RWMutex
	profiles map[string]func() *Hierarchy
	version  uint64
}

// NewRegistry returns a registry seeded with the built-in profiles.
func NewRegistry() *Registry {
	r := &Registry{profiles: map[string]func() *Hierarchy{}}
	for name, mk := range hardware.Profiles() {
		r.profiles[name] = mk
	}
	return r
}

// Register adds (or replaces) a named profile. The constructor must
// return a hierarchy that validates; Register calls it once to check.
// Registering a nil constructor or an invalid hierarchy is an error.
func (r *Registry) Register(name string, mk func() *Hierarchy) error {
	if name == "" {
		return fmt.Errorf("costmodel: empty profile name")
	}
	if mk == nil {
		return fmt.Errorf("costmodel: profile %q: nil constructor", name)
	}
	h := mk()
	if h == nil {
		return fmt.Errorf("costmodel: profile %q: constructor returned nil", name)
	}
	if err := h.Validate(); err != nil {
		return fmt.Errorf("costmodel: profile %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.profiles[name] = mk
	r.version++
	return nil
}

// RegisterHierarchy registers a fixed hierarchy under the given name.
// The hierarchy is deep-copied on registration and again per Profile
// call, so later mutations of h do not leak into lookups.
func (r *Registry) RegisterHierarchy(name string, h *Hierarchy) error {
	if h == nil {
		return fmt.Errorf("costmodel: profile %q: nil hierarchy", name)
	}
	frozen := cloneHierarchy(h)
	return r.Register(name, func() *Hierarchy { return cloneHierarchy(frozen) })
}

// Profile returns a fresh hierarchy for the named profile.
func (r *Registry) Profile(name string) (*Hierarchy, error) {
	r.mu.RLock()
	mk, ok := r.profiles[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("costmodel: unknown profile %q (have: %v)", name, r.Names())
	}
	return mk(), nil
}

// Model returns a cost model for the named profile.
func (r *Registry) Model(name string) (*Model, error) {
	h, err := r.Profile(name)
	if err != nil {
		return nil, err
	}
	return NewModel(h)
}

// Names returns the registered profile names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.profiles))
	for n := range r.profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Version returns a counter that increases on every Register call.
// Caches keyed by profile name include it so that re-registering a
// name invalidates stale entries.
func (r *Registry) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

func cloneHierarchy(h *Hierarchy) *Hierarchy {
	c := *h
	c.Levels = append([]Level(nil), h.Levels...)
	return &c
}

// defaultRegistry backs the package-level registry functions.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the package-level registry used by
// RegisterProfile, Profile and ProfileNames (and, by default, by the
// serve command).
func DefaultRegistry() *Registry { return defaultRegistry }

// RegisterProfile adds a named profile to the default registry.
func RegisterProfile(name string, mk func() *Hierarchy) error {
	return defaultRegistry.Register(name, mk)
}

// Profile returns a fresh hierarchy from the default registry.
func Profile(name string) (*Hierarchy, error) { return defaultRegistry.Profile(name) }

// ProfileNames returns the default registry's profile names, sorted.
func ProfileNames() []string { return defaultRegistry.Names() }

// Built-in profile constructors, re-exported for direct use.
var (
	// Origin2000 is the paper's SGI Origin2000 (Table 3).
	Origin2000 = hardware.Origin2000
	// ModernX86 is a three-data-level 2000s-era x86 server.
	ModernX86 = hardware.ModernX86
	// SmallTest is a tiny hierarchy whose cache knees appear at
	// unit-test-sized workloads.
	SmallTest = hardware.SmallTest
	// DiskExtended is Origin2000 plus a buffer-pool-over-disk level,
	// the paper's "I/O is just one more cache level" construction.
	DiskExtended = hardware.DiskExtended
)
