package server_test

import (
	"strings"
	"testing"

	"repro/pkg/costmodel"
	"repro/pkg/costmodel/scenario"
	"repro/pkg/costmodel/server"
)

// join2Query is an inline spelling of a 2-relation FK join (the
// join2-fk shape) with controllable names and parameters.
func join2Query(nameA, nameB string, tuplesA, tuplesB int64, sel float64) *server.PlanQuery {
	return &server.PlanQuery{
		Relations: []server.PlanRelation{
			{Name: nameA, Tuples: tuplesA, Width: 16},
			{Name: nameB, Tuples: tuplesB, Width: 32},
		},
		Joins: []server.PlanJoin{{Left: 0, Right: 1, Selectivity: sel}},
	}
}

// TestPlanInlineQueryCached locks the satellite fix: inline queries —
// not just catalog scenarios — are served through the plan cache, and a
// renamed, reordered isomorph hits the same entry with its signatures
// re-rendered under its own relation names.
func TestPlanInlineQueryCached(t *testing.T) {
	s := server.New(server.Config{})
	req := server.PlanRequest{Profile: "small-test", Top: -1,
		Query: join2Query("orders", "customers", 100_000, 5_000, 1.0/5_000)}
	first := s.Plan(req)
	if first.Error != "" {
		t.Fatal(first.Error)
	}
	if first.Served != server.PlanServedSearch {
		t.Errorf("first inline request served %q, want %q", first.Served, server.PlanServedSearch)
	}

	// Exact repeat: pure hit, identical response.
	second := s.Plan(req)
	if second.Error != "" {
		t.Fatal(second.Error)
	}
	if second.Served != server.PlanServedCache {
		t.Errorf("repeated inline request served %q, want %q", second.Served, server.PlanServedCache)
	}
	if st := s.PlanCacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("after one repeat: hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	if first.Winner != second.Winner || first.Plans != second.Plans {
		t.Errorf("cached inline response diverged: %+v vs %+v", first.Winner, second.Winner)
	}

	// The same query with relations renamed AND listed in the other
	// order: same shape, same parameters — a cache hit whose plan
	// signatures carry the new names.
	renamed := s.Plan(server.PlanRequest{Profile: "small-test", Top: -1,
		Query: &server.PlanQuery{
			Relations: []server.PlanRelation{
				{Name: "cust", Tuples: 5_000, Width: 32},
				{Name: "ord", Tuples: 100_000, Width: 16},
			},
			Joins: []server.PlanJoin{{Left: 1, Right: 0, Selectivity: 1.0 / 5_000}},
		}})
	if renamed.Error != "" {
		t.Fatal(renamed.Error)
	}
	if renamed.Served != server.PlanServedCache {
		t.Errorf("renamed isomorph served %q, want %q", renamed.Served, server.PlanServedCache)
	}
	if renamed.Shape != first.Shape {
		t.Errorf("renamed isomorph re-keyed: %s vs %s", renamed.Shape, first.Shape)
	}
	if st := s.PlanCacheStats(); st.Hits != 2 || st.Misses != 1 {
		t.Errorf("after renamed hit: hits=%d misses=%d, want 2/1", st.Hits, st.Misses)
	}
	if renamed.Winner.TotalNS != first.Winner.TotalNS || renamed.Plans != first.Plans {
		t.Errorf("renamed isomorph costs diverged: %+v vs %+v", renamed.Winner, first.Winner)
	}
	if strings.Contains(renamed.Winner.Plan, "orders") || !strings.Contains(renamed.Winner.Plan, "ord") {
		t.Errorf("renamed isomorph's winner %q not re-rendered with its own names", renamed.Winner.Plan)
	}
	for i := range renamed.Ranking {
		if renamed.Ranking[i].TotalNS != first.Ranking[i].TotalNS {
			t.Errorf("renamed ranking[%d] cost %g != %g", i, renamed.Ranking[i].TotalNS, first.Ranking[i].TotalNS)
		}
	}
}

// TestPlanCacheRevalidation locks the parameter-drift protocol: a
// small drift that keeps the cached winner on top is served through the
// cheap re-validation path (recipes re-bound + IR re-scored, counter
// asserted), with costs identical to what a fresh search would produce
// for the drifted query.
func TestPlanCacheRevalidation(t *testing.T) {
	s := server.New(server.Config{})
	warm := s.Plan(server.PlanRequest{Profile: "small-test", Top: -1,
		Query: join2Query("O", "C", 100_000, 5_000, 1.0/5_000)})
	if warm.Error != "" {
		t.Fatal(warm.Error)
	}

	// Nudge the fact-table cardinality by 1%: same shape, drifted
	// parameters, same winner.
	drifted := server.PlanRequest{Profile: "small-test", Top: -1,
		Query: join2Query("O", "C", 101_000, 5_000, 1.0/5_000)}
	res := s.Plan(drifted)
	if res.Error != "" {
		t.Fatal(res.Error)
	}
	if res.Served != server.PlanServedRevalidated {
		t.Fatalf("drifted request served %q, want %q", res.Served, server.PlanServedRevalidated)
	}
	st := s.PlanCacheStats()
	if st.Revalidations != 1 || st.RevalidationMisses != 0 {
		t.Errorf("revalidations=%d revalidation_misses=%d, want 1/0", st.Revalidations, st.RevalidationMisses)
	}
	if res.Shape != warm.Shape {
		t.Errorf("drift re-keyed the shape: %s vs %s", res.Shape, warm.Shape)
	}

	// The re-validated answer must price the drifted query exactly as a
	// fresh search would (the IR evaluator is the search's own phase-2
	// scorer).
	ref := server.New(server.Config{PlanCacheSize: -1}).Plan(drifted)
	if ref.Error != "" {
		t.Fatal(ref.Error)
	}
	if res.Winner.Plan != ref.Winner.Plan {
		t.Errorf("revalidated winner %q != searched winner %q", res.Winner.Plan, ref.Winner.Plan)
	}
	if res.Winner.TotalNS != ref.Winner.TotalNS {
		t.Errorf("revalidated winner cost %g != searched %g", res.Winner.TotalNS, ref.Winner.TotalNS)
	}

	// The entry is not re-anchored by a revalidation: the original
	// parameters still hit purely.
	back := s.Plan(server.PlanRequest{Profile: "small-test", Top: -1,
		Query: join2Query("O", "C", 100_000, 5_000, 1.0/5_000)})
	if back.Served != server.PlanServedCache {
		t.Errorf("original parameters after a drift served %q, want %q", back.Served, server.PlanServedCache)
	}
}

// TestPlanCacheWinnerFlip locks the fallback: a drift large enough to
// dethrone the cached winner triggers a full re-search that returns the
// drifted query's own correct winner (and replaces the entry).
func TestPlanCacheWinnerFlip(t *testing.T) {
	s := server.New(server.Config{})
	// The catalog's join2-fk and join2-large scenarios are
	// shape-isomorphic with different winners on origin2000 (hash join
	// vs partitioned hash join) — exactly the drift-flips-the-winner
	// case.
	fk := s.Plan(server.PlanRequest{Profile: "origin2000", Scenario: "join2-fk", Top: -1})
	if fk.Error != "" {
		t.Fatal(fk.Error)
	}
	large := s.Plan(server.PlanRequest{Profile: "origin2000", Scenario: "join2-large", Top: -1})
	if large.Error != "" {
		t.Fatal(large.Error)
	}
	if fk.Shape != large.Shape {
		t.Fatalf("join2-fk and join2-large no longer share a shape (%s vs %s)", fk.Shape, large.Shape)
	}
	if large.Served != server.PlanServedSearch {
		t.Errorf("winner-flipping drift served %q, want %q (full re-search)", large.Served, server.PlanServedSearch)
	}
	st := s.PlanCacheStats()
	if st.RevalidationMisses != 1 {
		t.Errorf("revalidation_misses=%d, want 1", st.RevalidationMisses)
	}

	// The full search's answer matches an uncached server's.
	ref := server.New(server.Config{PlanCacheSize: -1}).Plan(
		server.PlanRequest{Profile: "origin2000", Scenario: "join2-large", Top: -1})
	if large.Winner != ref.Winner || large.Plans != ref.Plans {
		t.Errorf("post-flip answer diverged from a fresh search: %+v vs %+v", large.Winner, ref.Winner)
	}
	if large.Winner.Plan == fk.Winner.Plan {
		t.Errorf("join2-large was served join2-fk's winner %q", fk.Winner.Plan)
	}

	// The re-search replaced the entry: repeating join2-large is now a
	// pure hit, and join2-fk drifts back through revalidation/search.
	again := s.Plan(server.PlanRequest{Profile: "origin2000", Scenario: "join2-large", Top: -1})
	if again.Served != server.PlanServedCache || again.Winner != large.Winner {
		t.Errorf("repeat after re-search served %q with %+v", again.Served, again.Winner)
	}
}

// TestPlanCacheRegistryInvalidation: re-registering a profile bumps the
// registry version, which re-keys every cached entry — a stale ranking
// priced on the old hierarchy can never be served against the new one.
func TestPlanCacheRegistryInvalidation(t *testing.T) {
	reg := costmodel.NewRegistry()
	s := server.New(server.Config{Registry: reg})
	req := server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1}
	if res := s.Plan(req); res.Error != "" {
		t.Fatal(res.Error)
	}
	if res := s.Plan(req); res.Served != server.PlanServedCache {
		t.Fatalf("repeat before re-registration served %q", res.Served)
	}

	// Re-register the profile (same hierarchy — the version bump alone
	// must invalidate).
	h, err := reg.Profile("small-test")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterHierarchy("small-test", h); err != nil {
		t.Fatal(err)
	}
	missesBefore := s.PlanCacheStats().Misses
	res := s.Plan(req)
	if res.Error != "" {
		t.Fatal(res.Error)
	}
	if res.Served != server.PlanServedSearch {
		t.Errorf("request after re-registration served %q, want %q", res.Served, server.PlanServedSearch)
	}
	if got := s.PlanCacheStats().Misses; got != missesBefore+1 {
		t.Errorf("re-registration did not invalidate (misses %d -> %d)", missesBefore, got)
	}
}

// TestPlanCacheEvictions: a capacity-1 plan cache evicts on the second
// distinct shape and reports it in the stats (and on /healthz via
// PlanCacheStats).
func TestPlanCacheEvictions(t *testing.T) {
	s := server.New(server.Config{PlanCacheSize: 1})
	if res := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk"}); res.Error != "" {
		t.Fatal(res.Error)
	}
	if res := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join3-chain-q3"}); res.Error != "" {
		t.Fatal(res.Error)
	}
	st := s.PlanCacheStats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Errorf("evictions=%d entries=%d, want 1/1", st.Evictions, st.Entries)
	}
}

// TestPlanCacheDisabled: a negative PlanCacheSize turns the cache off —
// every request is a fresh search and no counters move.
func TestPlanCacheDisabled(t *testing.T) {
	s := server.New(server.Config{PlanCacheSize: -1})
	req := server.PlanRequest{Profile: "small-test", Scenario: "join2-fk"}
	for i := 0; i < 2; i++ {
		res := s.Plan(req)
		if res.Error != "" {
			t.Fatal(res.Error)
		}
		if res.Served != server.PlanServedSearch {
			t.Errorf("request %d with cache disabled served %q", i, res.Served)
		}
	}
	if st := s.PlanCacheStats(); st != (server.PlanCacheStats{}) {
		t.Errorf("disabled cache moved counters: %+v", st)
	}
}

// TestPlanScenarioInlineShareShape: an inline spelling of a catalog
// scenario's query shares the scenario's cache entry — the cache is
// keyed by shape, not by how the query arrived.
func TestPlanScenarioInlineShareShape(t *testing.T) {
	sc, ok := scenario.ByName("join2-fk")
	if !ok {
		t.Fatal("join2-fk missing from the catalog")
	}
	s := server.New(server.Config{})
	first := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1})
	if first.Error != "" {
		t.Fatal(first.Error)
	}

	pq := &server.PlanQuery{GroupBy: sc.Query.GroupBy, Distinct: sc.Query.Distinct, SortBy: sc.Query.SortBy,
		Filters: sc.Query.Filters, Projections: sc.Query.Projections}
	for _, r := range sc.Query.Relations {
		pq.Relations = append(pq.Relations, server.PlanRelation{
			Name: r.Name, Tuples: r.Tuples, Width: r.Width, Sorted: r.Sorted})
	}
	for _, j := range sc.Query.Joins {
		pq.Joins = append(pq.Joins, server.PlanJoin{Left: j.Left, Right: j.Right, Selectivity: j.Selectivity})
	}
	inline := s.Plan(server.PlanRequest{Profile: "small-test", Query: pq, Top: -1})
	if inline.Error != "" {
		t.Fatal(inline.Error)
	}
	if inline.Served != server.PlanServedCache {
		t.Errorf("inline spelling served %q, want %q", inline.Served, server.PlanServedCache)
	}
	if inline.Winner != first.Winner || inline.Plans != first.Plans {
		t.Errorf("inline spelling diverged: %+v vs %+v", inline.Winner, first.Winner)
	}
}
