// Package server exposes the cost model as an HTTP/JSON batch
// evaluation service. Analytical cost models earn their keep by being
// cheap enough to call at optimizer-request rates; this server makes
// that cheapness available over the network:
//
//	POST /v1/evaluate   evaluate one request, or a {"requests": [...]}
//	                    batch fanned out across a bounded worker pool
//	POST /v1/plan       price whole query plans: rank join orders and
//	                    algorithm choices for a catalog scenario or an
//	                    inline logical query (see plan.go)
//	GET  /v1/profiles   list the registered hardware profiles
//	POST /v1/calibrate  start an async hardware self-calibration job;
//	                    GET ?id= polls it (see calibrate.go)
//	GET  /v1/validate   predicted-vs-simulated validation sweep with
//	                    per-operator relative errors
//	GET  /healthz       liveness probe
//
// Repeated (pattern, regions, profile) evaluations are memoized in an
// LRU result cache; responses carry a "cached" flag so callers (and
// tests) can observe the hit path. A calibrated profile lands in the
// same registry /v1/evaluate resolves names through, so "calibrate this
// machine, then cost plans on it" needs no restart.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/pkg/costmodel"
)

// Config parameterizes a Server.
type Config struct {
	// Registry resolves profile names; nil means the package default
	// registry (built-in profiles plus anything registered at runtime).
	Registry *costmodel.Registry
	// Workers bounds concurrent evaluations across all in-flight HTTP
	// requests; 0 or negative means GOMAXPROCS.
	Workers int
	// CacheSize is the maximum number of memoized results; 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// CompileCacheSize is the maximum number of interned compiled
	// patterns; 0 means DefaultCompileCacheSize, negative disables the
	// compile cache (every evaluation re-compiles).
	CompileCacheSize int
	// PlanCacheSize is the maximum number of cached plan-search results
	// (keyed by query shape fingerprint; see plan.go); 0 means
	// DefaultPlanCacheSize, negative disables the plan cache (every
	// /v1/plan request re-searches).
	PlanCacheSize int
}

// DefaultCacheSize is the result-cache capacity used when
// Config.CacheSize is 0.
const DefaultCacheSize = 4096

// DefaultCompileCacheSize is the compile-cache capacity used when
// Config.CompileCacheSize is 0. Compiled patterns are keyed by
// canonical form only — no profile, no Explain flag — so one entry
// serves every hardware profile a pattern is evaluated on.
const DefaultCompileCacheSize = 1024

// DefaultPlanCacheSize is the plan-cache capacity used when
// Config.PlanCacheSize is 0. Plan entries are keyed by query *shape*
// (the canonical join-graph fingerprint), so a serving workload of
// parameterized queries collapses onto a handful of entries; the
// capacity mainly bounds adversarial shape churn.
const DefaultPlanCacheSize = 512

// MaxBatchRequests bounds the number of evaluations in one batch
// request. A batch beyond the bound is rejected outright (never
// silently truncated): one request must not monopolize the worker pool
// for an unbounded stretch.
const MaxBatchRequests = 4096

// Server evaluates cost-model requests over HTTP.
type Server struct {
	reg   *costmodel.Registry
	sem   chan struct{}
	cache *lruCache[*EvalResult]
	// compileCache interns compiled patterns by canonical form, so
	// batch requests and repeated evaluations across different
	// profiles share compilation work (the result cache above only
	// hits on exact pattern+profile pairs).
	compileCache  *lruCache[*costmodel.CompiledPattern]
	compileHits   atomic.Uint64
	compileMisses atomic.Uint64
	resultHits    atomic.Uint64
	resultMisses  atomic.Uint64
	// batchDedupHits counts batch requests answered by another request
	// of the same batch (same canonical program, profile, and explain
	// spelling); batchDedupMisses counts the batch leaders that were
	// actually evaluated.
	batchDedupHits   atomic.Uint64
	batchDedupMisses atomic.Uint64
	// planCache memoizes /v1/plan search results by query shape
	// fingerprint (plan.go); revalidations count cached entries served
	// after a cheap parameter-drift re-score, revalMisses count drifts
	// where the cached winner lost and a full re-search ran.
	planCache         *lruCache[*planEntry]
	planHits          atomic.Uint64
	planMisses        atomic.Uint64
	planRevalidations atomic.Uint64
	planRevalMisses   atomic.Uint64
	calib             *calibJobs
	// validating single-flights GET /v1/validate: one sweep already
	// saturates its own worker pool, so concurrent sweeps would only
	// multiply simulator memory and defeat the Workers bound.
	validating chan struct{}
	// calibrating single-flights POST /v1/calibrate jobs: concurrent
	// host calibrations would contend for memory bandwidth and corrupt
	// each other's wall-clock latency estimates (and each job may hold
	// a footprint-sized buffer).
	calibrating chan struct{}
}

// New returns a server with the given configuration.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = costmodel.DefaultRegistry()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	var cache *lruCache[*EvalResult]
	if size > 0 {
		cache = newLRUCache[*EvalResult](size)
	}
	csize := cfg.CompileCacheSize
	if csize == 0 {
		csize = DefaultCompileCacheSize
	}
	var ccache *lruCache[*costmodel.CompiledPattern]
	if csize > 0 {
		ccache = newLRUCache[*costmodel.CompiledPattern](csize)
	}
	psize := cfg.PlanCacheSize
	if psize == 0 {
		psize = DefaultPlanCacheSize
	}
	var pcache *lruCache[*planEntry]
	if psize > 0 {
		pcache = newLRUCache[*planEntry](psize)
	}
	return &Server{
		reg:          reg,
		sem:          make(chan struct{}, workers),
		cache:        cache,
		compileCache: ccache,
		planCache:    pcache,
		calib:        newCalibJobs(),
		validating:   make(chan struct{}, 1),
		calibrating:  make(chan struct{}, 1),
	}
}

// Handler returns the HTTP handler serving the v1 API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/profiles", s.handleProfiles)
	mux.HandleFunc("/v1/calibrate", s.handleCalibrate)
	mux.HandleFunc("/v1/validate", s.handleValidate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// RegionDecl declares one data region of an evaluation request.
type RegionDecl struct {
	// Name is the identifier the pattern text refers to ("U", "H", ...).
	Name string `json:"name"`
	// Items is the region's item count R.n.
	Items int64 `json:"items"`
	// Width is the per-item width R.w in bytes.
	Width int64 `json:"width"`
}

// EvalRequest is one pattern+profile evaluation.
type EvalRequest struct {
	// Profile names a registered hardware profile.
	Profile string `json:"profile"`
	// Regions declares the data regions the pattern refers to.
	Regions []RegionDecl `json:"regions"`
	// Pattern is a Table 2 pattern expression over the declared regions.
	Pattern string `json:"pattern"`
	// CPUNS is the pure CPU time T_cpu in nanoseconds (Eq. 6.1); the
	// response's total_ns adds it to the predicted memory time.
	CPUNS float64 `json:"cpu_ns,omitempty"`
	// Explain requests the per-pattern-node cost breakdown.
	Explain bool `json:"explain,omitempty"`
}

// BatchRequest wraps multiple evaluations into one HTTP request.
type BatchRequest struct {
	Requests []EvalRequest `json:"requests"`
}

// LevelCost is one hierarchy level's predicted misses and time.
type LevelCost struct {
	Level     string  `json:"level"`
	SeqMisses float64 `json:"seq_misses"`
	RndMisses float64 `json:"rnd_misses"`
	TimeNS    float64 `json:"time_ns"`
}

// ExplainLine is one pattern-tree node of an explained prediction.
type ExplainLine struct {
	Pattern string  `json:"pattern"`
	Depth   int     `json:"depth"`
	Kind    string  `json:"kind"`
	TimeNS  float64 `json:"time_ns"`
}

// EvalResult is the prediction for one EvalRequest.
type EvalResult struct {
	Profile string `json:"profile"`
	// Pattern is the canonical rendering of the parsed pattern.
	Pattern string      `json:"pattern"`
	Levels  []LevelCost `json:"levels,omitempty"`
	// MemoryNS is T_mem (Eq. 3.1).
	MemoryNS float64 `json:"memory_ns"`
	// TotalNS is T = T_mem + T_cpu (Eq. 6.1).
	TotalNS float64       `json:"total_ns"`
	Explain []ExplainLine `json:"explain,omitempty"`
	// Cached reports whether the result came from the LRU cache.
	Cached bool `json:"cached"`
	// Error is set (and all cost fields zero) when the request failed.
	Error string `json:"error,omitempty"`
}

// BatchResponse mirrors BatchRequest: one result per request, in order.
type BatchResponse struct {
	Results []*EvalResult `json:"results"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}

	// A body with a "requests" array is a batch; anything else is a
	// single EvalRequest.
	var batch BatchRequest
	if err := json.Unmarshal(body, &batch); err == nil && batch.Requests != nil {
		if len(batch.Requests) > MaxBatchRequests {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("batch of %d requests exceeds the maximum of %d", len(batch.Requests), MaxBatchRequests))
			return
		}
		resp := BatchResponse{Results: s.EvaluateBatch(batch.Requests)}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	var req EvalRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	res := s.Evaluate(req)
	status := http.StatusOK
	if res.Error != "" {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, res)
}

// EvaluateBatch evaluates the requests concurrently, returning results
// in request order. Requests whose canonical programs coincide — same
// canonical pattern, profile, and explain spelling — collapse onto one
// evaluation: the first occurrence (the leader) is evaluated, the rest
// clone its result (re-echoing their own pattern spelling and adding
// their own CPU estimate), so an optimizer batch re-costing one plan
// shape under many CPU estimates pays for a single grid point. The
// pool spawns at most worker-pool-many goroutines (not one per request
// — a maximal batch would otherwise allocate hundreds of thousands of
// stacks); the semaphore inside Evaluate keeps the bound global across
// concurrent batches.
func (s *Server) EvaluateBatch(reqs []EvalRequest) []*EvalResult {
	results := make([]*EvalResult, len(reqs))

	// Dedup prepass: parse and canonicalize each request, electing the
	// first request of every distinct result key as its leader.
	// Requests that fail to parse resolve here (their error result is
	// exactly what Evaluate would return) and never reach the pool.
	leader := make(map[string]int, len(reqs))
	followOf := make([]int, len(reqs))
	spelling := make([]string, len(reqs))
	var leaders []int
	for i := range reqs {
		followOf[i] = -1
		p, canon, errRes := s.parseRequest(reqs[i])
		if errRes != nil {
			results[i] = errRes
			continue
		}
		key := s.resultKey(reqs[i], p, canon)
		spelling[i] = p.String()
		if li, ok := leader[key]; ok {
			followOf[i] = li
			s.batchDedupHits.Add(1)
		} else {
			leader[key] = i
			leaders = append(leaders, i)
			s.batchDedupMisses.Add(1)
		}
	}

	workers := cap(s.sem)
	if workers > len(leaders) {
		workers = len(leaders)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = s.Evaluate(reqs[i])
			}
		}()
	}
	for _, i := range leaders {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Followers share their leader's evaluation. Each gets a private
	// copy carrying its own spelling and CPU estimate; Cached marks the
	// result as served without a fresh evaluation.
	for i, li := range followOf {
		if li < 0 {
			continue
		}
		res := results[li].clone()
		res.Pattern = spelling[i]
		res.TotalNS = res.MemoryNS + reqs[i].CPUNS
		if res.Error == "" {
			res.Cached = true
		}
		results[i] = res
	}
	return results
}

// parseRequest validates and parses one request's regions and pattern
// text and canonicalizes the pattern. A non-nil errRes is the exact
// error result Evaluate returns for the malformed request.
func (s *Server) parseRequest(req EvalRequest) (p costmodel.Pattern, canon string, errRes *EvalResult) {
	if req.Profile == "" {
		return nil, "", &EvalResult{Error: "missing profile"}
	}
	if req.Pattern == "" {
		return nil, "", &EvalResult{Profile: req.Profile, Error: "missing pattern"}
	}
	regions := make(map[string]*costmodel.Region, len(req.Regions))
	for _, d := range req.Regions {
		if d.Name == "" || d.Items < 0 || d.Width <= 0 {
			return nil, "", &EvalResult{Profile: req.Profile,
				Error: fmt.Sprintf("invalid region %q (items=%d, width=%d)", d.Name, d.Items, d.Width)}
		}
		if _, dup := regions[d.Name]; dup {
			return nil, "", &EvalResult{Profile: req.Profile,
				Error: fmt.Sprintf("region %q declared twice", d.Name)}
		}
		regions[d.Name] = costmodel.NewRegion(d.Name, d.Items, d.Width)
	}
	p, err := costmodel.ParsePattern(req.Pattern, regions)
	if err != nil {
		return nil, "", &EvalResult{Profile: req.Profile, Error: err.Error()}
	}
	canon, err = costmodel.CanonicalPattern(p)
	if err != nil {
		return nil, "", &EvalResult{Profile: req.Profile, Pattern: p.String(), Error: err.Error()}
	}
	return p, canon, nil
}

// resultKey is the result-cache (and in-batch dedup) key: the
// pattern's *canonical* form — region geometries embedded, ⊕
// flattened, ⊙ operands sorted — so any two spellings of the same
// access behaviour share an entry. Two exclusions keep the entry
// request-agnostic: CPUNS, because T_cpu is pure addition on top of
// the memory-side result (Eq. 6.1), so re-costing one pattern under
// varying CPU estimates — the optimizer's common case — stays a cache
// hit (it is applied after the cache); and the pattern echo, which is
// rewritten to each request's spelling on every hit. Explained results
// are the exception: the per-node breakdown follows the spelling's
// tree shape, so the key also carries the parsed rendering. The
// registry version invalidates entries when a profile name is
// re-registered.
func (s *Server) resultKey(req EvalRequest, p costmodel.Pattern, canon string) string {
	key := fmt.Sprintf("v%d|%q|%s|%t", s.reg.Version(), req.Profile, canon, req.Explain)
	if req.Explain {
		key += "|" + p.String()
	}
	return key
}

// Evaluate evaluates one request, consulting the result cache first.
// Cache misses run on the server's bounded worker pool, so Workers
// bounds concurrency for single requests and batches alike.
func (s *Server) Evaluate(req EvalRequest) *EvalResult {
	p, canon, errRes := s.parseRequest(req)
	if errRes != nil {
		return errRes
	}
	key := s.resultKey(req, p, canon)
	res, cached := (*EvalResult)(nil), false
	if s.cache != nil {
		if hit, ok := s.cache.get(key); ok {
			res, cached = hit.clone(), true
			res.Pattern = p.String()
			s.resultHits.Add(1)
		}
	}
	if res == nil {
		if s.cache != nil {
			s.resultMisses.Add(1)
		}
		prog, err := s.compile(canon, p)
		if err != nil {
			return &EvalResult{Profile: req.Profile, Pattern: p.String(), Error: err.Error()}
		}
		s.sem <- struct{}{}
		res = s.evaluate(req, p, prog)
		<-s.sem
		if s.cache != nil && res.Error == "" {
			// The cache keeps its own copy: callers own the returned
			// result and may mutate it without poisoning later hits.
			s.cache.put(key, res.clone())
		}
	}
	res.TotalNS = res.MemoryNS + req.CPUNS
	res.Cached = cached
	return res
}

// compile interns compiled patterns by canonical form. Hits share one
// immutable program across requests, batches and profiles.
func (s *Server) compile(canon string, p costmodel.Pattern) (*costmodel.CompiledPattern, error) {
	if s.compileCache != nil {
		if hit, ok := s.compileCache.get(canon); ok {
			s.compileHits.Add(1)
			return hit, nil
		}
	}
	s.compileMisses.Add(1)
	prog, err := costmodel.Compile(p)
	if err != nil {
		return nil, err
	}
	if s.compileCache != nil {
		s.compileCache.put(canon, prog)
	}
	return prog, nil
}

// clone returns a copy sharing no mutable state with r.
func (r *EvalResult) clone() *EvalResult {
	c := *r
	c.Levels = append([]LevelCost(nil), r.Levels...)
	c.Explain = append([]ExplainLine(nil), r.Explain...)
	return &c
}

func (s *Server) evaluate(req EvalRequest, p costmodel.Pattern, prog *costmodel.CompiledPattern) *EvalResult {
	model, err := s.reg.Model(req.Profile)
	if err != nil {
		return &EvalResult{Profile: req.Profile, Error: err.Error()}
	}
	// The compiled program carries no profile state: the same prog is
	// evaluated here against whichever hierarchy the request names.
	eval := model.EvaluateCompiled(prog)
	// TotalNS is left for the caller (Evaluate adds req.CPUNS after the
	// cache, so cached entries stay CPU-estimate-agnostic).
	res := &EvalResult{
		Profile:  req.Profile,
		Pattern:  p.String(),
		MemoryNS: eval.MemoryTimeNS(),
	}
	for _, lr := range eval.PerLevel {
		res.Levels = append(res.Levels, LevelCost{
			Level:     lr.Level.Name,
			SeqMisses: lr.Misses.Seq,
			RndMisses: lr.Misses.Rnd,
			TimeNS:    lr.MemoryTimeNS(),
		})
	}
	if req.Explain {
		ex, err := model.Explain(p)
		if err != nil {
			return &EvalResult{Profile: req.Profile, Pattern: p.String(), Error: err.Error()}
		}
		for _, n := range ex.Nodes {
			res.Explain = append(res.Explain, ExplainLine{
				Pattern: n.Pattern, Depth: n.Depth, Kind: n.Kind, TimeNS: n.TimeNS,
			})
		}
	}
	return res
}

// ProfileInfo describes one registered profile.
type ProfileInfo struct {
	Name    string      `json:"name"`
	Machine string      `json:"machine"`
	ClockNS float64     `json:"clock_ns"`
	Levels  []LevelInfo `json:"levels"`
}

// LevelInfo describes one level of a profile.
type LevelInfo struct {
	Name             string  `json:"name"`
	Capacity         int64   `json:"capacity"`
	LineSize         int64   `json:"line_size"`
	Associativity    int     `json:"associativity"`
	SeqMissLatencyNS float64 `json:"seq_miss_latency_ns"`
	RndMissLatencyNS float64 `json:"rnd_miss_latency_ns"`
	TLB              bool    `json:"tlb,omitempty"`
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var out struct {
		Profiles []ProfileInfo `json:"profiles"`
	}
	for _, name := range s.reg.Names() {
		h, err := s.reg.Profile(name)
		if err != nil {
			continue
		}
		info := ProfileInfo{Name: name, Machine: h.Name, ClockNS: h.ClockNS}
		for _, l := range h.Levels {
			info.Levels = append(info.Levels, LevelInfo{
				Name:             l.Name,
				Capacity:         l.Capacity,
				LineSize:         l.LineSize,
				Associativity:    l.Associativity,
				SeqMissLatencyNS: l.SeqMissLatency,
				RndMissLatencyNS: l.RndMissLatency,
				TLB:              l.TLB,
			})
		}
		out.Profiles = append(out.Profiles, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cc := s.CompileCacheStats()
	rc := s.ResultCacheStats()
	pc := s.PlanCacheStats()
	bd := s.BatchDedupStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"profiles": len(s.reg.Names()),
		"workers":  cap(s.sem),
		"compile_cache": map[string]any{
			"hits":      cc.Hits,
			"misses":    cc.Misses,
			"entries":   cc.Entries,
			"evictions": cc.Evictions,
		},
		"result_cache": map[string]any{
			"hits":      rc.Hits,
			"misses":    rc.Misses,
			"entries":   rc.Entries,
			"evictions": rc.Evictions,
		},
		"batch_dedup": map[string]any{
			"hits":   bd.Hits,
			"misses": bd.Misses,
		},
		"plan_cache": map[string]any{
			"hits":                pc.Hits,
			"misses":              pc.Misses,
			"revalidations":       pc.Revalidations,
			"revalidation_misses": pc.RevalidationMisses,
			"entries":             pc.Entries,
			"evictions":           pc.Evictions,
		},
	})
}

// CacheLen returns the number of memoized results (0 when caching is
// disabled).
func (s *Server) CacheLen() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.len()
}

// CompileCacheStats reports the compile cache's cumulative hit/miss
// counters and current entry count (also exposed on /healthz).
type CompileCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Entries   int    `json:"entries"`
	Evictions uint64 `json:"evictions"`
}

// CompileCacheStats returns the compile cache counters.
func (s *Server) CompileCacheStats() CompileCacheStats {
	st := CompileCacheStats{
		Hits:   s.compileHits.Load(),
		Misses: s.compileMisses.Load(),
	}
	if s.compileCache != nil {
		st.Entries = s.compileCache.len()
		st.Evictions = s.compileCache.evicted()
	}
	return st
}

// ResultCacheStats reports the result cache's cumulative hit/miss
// counters and current entry count (also exposed on /healthz). Hits
// count any request answered from a memoized result — including a
// differently spelled but canonically equivalent pattern.
type ResultCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Entries   int    `json:"entries"`
	Evictions uint64 `json:"evictions"`
}

// ResultCacheStats returns the result cache counters.
func (s *Server) ResultCacheStats() ResultCacheStats {
	st := ResultCacheStats{
		Hits:   s.resultHits.Load(),
		Misses: s.resultMisses.Load(),
	}
	if s.cache != nil {
		st.Entries = s.cache.len()
		st.Evictions = s.cache.evicted()
	}
	return st
}

// BatchDedupStats reports the in-batch dedup counters (also exposed on
// /healthz): Hits count batch requests that collapsed onto another
// request of the same batch — same canonical program, profile, and
// explain spelling — and were served by cloning its result; Misses
// count the batch leaders that were evaluated (or served from the
// result cache) on the pool.
type BatchDedupStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// BatchDedupStats returns the in-batch dedup counters.
func (s *Server) BatchDedupStats() BatchDedupStats {
	return BatchDedupStats{
		Hits:   s.batchDedupHits.Load(),
		Misses: s.batchDedupMisses.Load(),
	}
}

// PlanCacheStats reports the shape-keyed plan cache's cumulative
// counters and current entry count (also exposed on /healthz).
// Hits count requests served straight from a cached ranking (same
// shape, same parameters, possibly renamed relations); Revalidations
// count parameter-drifted requests served after re-scoring the cached
// candidate recipes with the IR evaluator; RevalidationMisses count
// drifts where the cached winner lost the top spot and a full
// plan-space re-search ran instead.
type PlanCacheStats struct {
	Hits               uint64 `json:"hits"`
	Misses             uint64 `json:"misses"`
	Revalidations      uint64 `json:"revalidations"`
	RevalidationMisses uint64 `json:"revalidation_misses"`
	Entries            int    `json:"entries"`
	Evictions          uint64 `json:"evictions"`
}

// PlanCacheStats returns the plan cache counters.
func (s *Server) PlanCacheStats() PlanCacheStats {
	st := PlanCacheStats{
		Hits:               s.planHits.Load(),
		Misses:             s.planMisses.Load(),
		Revalidations:      s.planRevalidations.Load(),
		RevalidationMisses: s.planRevalMisses.Load(),
	}
	if s.planCache != nil {
		st.Entries = s.planCache.len()
		st.Evictions = s.planCache.evicted()
	}
	return st
}

// readJSON decodes a size-capped request body into v.
func readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("reading body: %w", err)
	}
	if len(body) == 0 {
		return nil // an empty body means all-default fields
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
