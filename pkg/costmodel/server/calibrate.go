package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/pkg/costmodel/calibrate"
	"repro/pkg/costmodel/validate"
)

// This file implements the self-calibration and validation endpoints:
//
//	POST /v1/calibrate   start an asynchronous calibration job; the
//	                     discovered hierarchy is registered in the
//	                     server's registry under the requested name and
//	                     is immediately usable by /v1/evaluate
//	GET  /v1/calibrate   poll a job by ?id=
//	GET  /v1/validate    run a predicted-vs-simulated validation sweep
//	                     and return per-operator relative errors
//
// Calibration measures real memory (or simulates a named profile), which
// takes seconds to minutes — hence the async job model: POST returns 202
// with a job id and the profile name the result will be registered
// under; GET reports running/done/failed.

// calibrateTimeout bounds one calibration job so an abandoned host sweep
// cannot leak its goroutine forever.
const calibrateTimeout = 10 * time.Minute

// maxCalibrateJobs bounds the in-memory job table; the oldest finished
// jobs are evicted first.
const maxCalibrateJobs = 128

// maxCalibrateFootprint caps the requested sweep footprint: the host
// prober allocates a buffer of this size, so an unauthenticated request
// must not be able to demand an arbitrary allocation.
const maxCalibrateFootprint = 1 << 30

// CalibrateRequest is the body of POST /v1/calibrate.
type CalibrateRequest struct {
	// Name is the profile name to register (default "calibrated").
	Name string `json:"name"`
	// SimProfile, when set, calibrates a simulated machine of the named
	// registered profile instead of the host (deterministic; used by
	// tests and demos).
	SimProfile string `json:"sim_profile,omitempty"`
	// MaxFootprintBytes bounds the sweep sizes (0 = calibrator default).
	MaxFootprintBytes int64 `json:"max_footprint_bytes,omitempty"`
	// ClockNS is the CPU cycle time recorded on the profile (0 = 1.0).
	ClockNS float64 `json:"clock_ns,omitempty"`
}

// CalibrateJob is the status of one calibration job, as returned by both
// the POST (just started) and the GET (polled) handler.
type CalibrateJob struct {
	ID string `json:"id"`
	// Profile is the registry name the result is (or will be)
	// registered under.
	Profile string `json:"profile"`
	// Status is "running", "done" or "failed".
	Status string `json:"status"`
	// Mode is "host" or "simulated".
	Mode   string            `json:"mode"`
	Error  string            `json:"error,omitempty"`
	Levels []calibrate.Level `json:"levels,omitempty"`
}

// calibJobs tracks asynchronous calibration jobs.
type calibJobs struct {
	mu    sync.Mutex
	seq   int
	order []string // insertion order, for eviction
	jobs  map[string]*calibJob
}

type calibJob struct {
	snapshot CalibrateJob
	done     chan struct{}
}

func newCalibJobs() *calibJobs {
	return &calibJobs{jobs: map[string]*calibJob{}}
}

// start registers a new running job and returns its id plus the private
// handle.
func (c *calibJobs) start(profile, mode string) (*calibJob, CalibrateJob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	id := fmt.Sprintf("cal-%d", c.seq)
	j := &calibJob{
		snapshot: CalibrateJob{ID: id, Profile: profile, Status: "running", Mode: mode},
		done:     make(chan struct{}),
	}
	c.jobs[id] = j
	c.order = append(c.order, id)
	c.evictLocked()
	return j, j.snapshot
}

// evictLocked drops the oldest finished jobs once the table overflows.
func (c *calibJobs) evictLocked() {
	for len(c.jobs) > maxCalibrateJobs {
		evicted := false
		for i, id := range c.order {
			j := c.jobs[id]
			if j == nil {
				c.order = append(c.order[:i], c.order[i+1:]...)
				evicted = true
				break
			}
			select {
			case <-j.done:
				delete(c.jobs, id)
				c.order = append(c.order[:i], c.order[i+1:]...)
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			return // everything still running; let the table grow
		}
	}
}

// finish records the job outcome and closes the done channel.
func (c *calibJobs) finish(j *calibJob, rep *calibrate.Report, err error) {
	c.mu.Lock()
	if err != nil {
		j.snapshot.Status = "failed"
		j.snapshot.Error = err.Error()
	} else {
		j.snapshot.Status = "done"
		j.snapshot.Levels = rep.Levels
	}
	c.mu.Unlock()
	close(j.done)
}

// get returns a snapshot of the job.
func (c *calibJobs) get(id string) (CalibrateJob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return CalibrateJob{}, false
	}
	return j.snapshot, true
}

// WaitCalibration blocks until the calibration job with the given id
// finishes and returns its final status; ok is false for unknown ids.
// Intended for tests and embedders — HTTP clients poll GET /v1/calibrate.
func (s *Server) WaitCalibration(id string) (CalibrateJob, bool) {
	s.calib.mu.Lock()
	j, ok := s.calib.jobs[id]
	s.calib.mu.Unlock()
	if !ok {
		return CalibrateJob{}, false
	}
	<-j.done
	// Read the snapshot from the handle we already hold: re-looking the
	// id up could miss a finished job that newer POSTs evicted while we
	// waited.
	s.calib.mu.Lock()
	defer s.calib.mu.Unlock()
	return j.snapshot, true
}

func (s *Server) handleCalibrate(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		id := r.URL.Query().Get("id")
		if id == "" {
			httpError(w, http.StatusBadRequest, "missing ?id=")
			return
		}
		job, ok := s.calib.get(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown calibration job "+id)
			return
		}
		writeJSON(w, http.StatusOK, job)
	case http.MethodPost:
		var req CalibrateRequest
		if err := readJSON(w, r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if req.MaxFootprintBytes < 0 || req.MaxFootprintBytes > maxCalibrateFootprint {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("max_footprint_bytes %d outside [0, %d]", req.MaxFootprintBytes, maxCalibrateFootprint))
			return
		}
		name := req.Name
		if name == "" {
			name = "calibrated"
		}
		mode := "host"
		if req.SimProfile != "" {
			mode = "simulated"
			// Fail fast on an unknown source profile instead of parking
			// the error in a job the client has to poll.
			if _, err := s.reg.Profile(req.SimProfile); err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
		}
		// Single-flight: a second concurrent calibration would contend
		// for memory bandwidth and corrupt both jobs' host timings (and
		// multiply footprint-sized buffers). The slot is held for the
		// whole asynchronous job, not just this handler.
		select {
		case s.calibrating <- struct{}{}:
		default:
			httpError(w, http.StatusTooManyRequests, "a calibration job is already running; poll it or retry later")
			return
		}
		j, snap := s.calib.start(name, mode)
		go func() {
			defer func() { <-s.calibrating }()
			ctx, cancel := context.WithTimeout(context.Background(), calibrateTimeout)
			defer cancel()
			var rep *calibrate.Report
			var err error
			func() {
				// A panic here is outside net/http's handler recovery
				// and would kill the whole server; record it as a
				// failed job instead.
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("calibration panicked: %v", r)
					}
				}()
				rep, err = calibrate.Run(ctx, calibrate.Options{
					Name:         name,
					SimProfile:   req.SimProfile,
					MaxFootprint: req.MaxFootprintBytes,
					ClockNS:      req.ClockNS,
					Registry:     s.reg,
				})
			}()
			s.calib.finish(j, rep, err)
		}()
		writeJSON(w, http.StatusAccepted, snap)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use POST to start, GET ?id= to poll")
	}
}

// handleValidate runs a predicted-vs-measured sweep for
// GET /v1/validate?profile=origin2000&quick=1&ops=scan,hash-join&backend=analytical.
// Quick defaults to on: the full trace sweep simulates multi-MB
// workloads and is meant for the CLI; pass quick=0 deliberately, or
// backend=analytical for the stack-distance backend, which prices the
// full grid in milliseconds. The sweep runs on the
// request context, so a disconnecting client aborts it. Sweeps are
// single-flighted: one sweep already saturates its own worker pool
// (Config.Workers), so a second concurrent request gets 429 rather
// than multiplying simulators.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	select {
	case s.validating <- struct{}{}:
		defer func() { <-s.validating }()
	default:
		httpError(w, http.StatusTooManyRequests, "a validation sweep is already running; retry later")
		return
	}
	// A full (quick=0) sweep can outlive the server's WriteTimeout,
	// which is sized for millisecond evaluations; lift the write
	// deadline for this response so the sweep's result can still be
	// delivered. Best effort: not every ResponseWriter supports it.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	q := r.URL.Query()
	opts := validate.Options{
		Registry: s.reg,
		Profile:  q.Get("profile"),
		Quick:    true,
		Workers:  cap(s.sem),
	}
	if v := q.Get("quick"); v != "" {
		quick, err := strconv.ParseBool(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad quick value "+v)
			return
		}
		opts.Quick = quick
	}
	if ops := q.Get("ops"); ops != "" {
		opts.Operators = strings.Split(ops, ",")
	}
	if b := q.Get("backend"); b != "" {
		opts.Backend = validate.Backend(b)
	}
	rep, err := validate.Run(r.Context(), opts)
	if err != nil {
		// Client mistakes (bad profile/operator names) are 400; a sweep
		// that started and then failed is a server-side defect and must
		// surface as 500, not blame the caller.
		status := http.StatusInternalServerError
		switch {
		case r.Context().Err() != nil:
			status = 499 // client closed request
		case errors.Is(err, validate.ErrInvalidOptions):
			status = http.StatusBadRequest
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
