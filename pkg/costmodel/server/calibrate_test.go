package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/pkg/costmodel"
	"repro/pkg/costmodel/server"
)

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp
}

// TestCalibrateThenEvaluate is the zero-configuration flow: calibrate a
// (simulated) machine through the API, then cost a pattern on the
// discovered profile with /v1/evaluate — no restart, no hand-written
// profile.
func TestCalibrateThenEvaluate(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{Registry: costmodel.NewRegistry()})

	resp, body := postJSON(t, ts.URL+"/v1/calibrate", server.CalibrateRequest{
		Name:              "lab-box",
		SimProfile:        "small-test",
		MaxFootprintBytes: 64 << 10,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/calibrate = %d: %s", resp.StatusCode, body)
	}
	var job server.CalibrateJob
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Profile != "lab-box" || job.Mode != "simulated" {
		t.Fatalf("job = %+v", job)
	}

	final, ok := srv.WaitCalibration(job.ID)
	if !ok {
		t.Fatalf("job %s vanished", job.ID)
	}
	if final.Status != "done" {
		t.Fatalf("job = %+v", final)
	}
	if len(final.Levels) == 0 {
		t.Fatal("done job carries no levels")
	}

	// Polling must agree with the blocking wait.
	var polled server.CalibrateJob
	if resp := getJSON(t, ts.URL+"/v1/calibrate?id="+job.ID, &polled); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job = %d", resp.StatusCode)
	}
	if polled.Status != "done" || len(polled.Levels) != len(final.Levels) {
		t.Fatalf("polled = %+v", polled)
	}

	// The calibrated profile is immediately usable by /v1/evaluate.
	resp, body = postJSON(t, ts.URL+"/v1/evaluate", server.EvalRequest{
		Profile: "lab-box",
		Regions: []server.RegionDecl{{Name: "U", Items: 1 << 16, Width: 8}},
		Pattern: "s_trav(U)",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate on calibrated profile = %d: %s", resp.StatusCode, body)
	}
	var res server.EvalResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Error != "" || res.MemoryNS <= 0 {
		t.Fatalf("result = %+v", res)
	}

	// And it shows up in /v1/profiles.
	var profs struct {
		Profiles []server.ProfileInfo `json:"profiles"`
	}
	getJSON(t, ts.URL+"/v1/profiles", &profs)
	found := false
	for _, p := range profs.Profiles {
		if p.Name == "lab-box" {
			found = true
		}
	}
	if !found {
		t.Error("calibrated profile missing from /v1/profiles")
	}
}

func TestCalibrateRejectsUnknownSimProfile(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Registry: costmodel.NewRegistry()})
	resp, body := postJSON(t, ts.URL+"/v1/calibrate", server.CalibrateRequest{
		SimProfile: "no-such-machine",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
}

func TestCalibrateRejectsBadFootprint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Registry: costmodel.NewRegistry()})
	// Negative would panic make([]byte, n) in the job goroutine (killing
	// the process); huge would be an unauthenticated giant allocation.
	for _, bad := range []int64{-1, 1 << 45} {
		resp, body := postJSON(t, ts.URL+"/v1/calibrate", server.CalibrateRequest{
			MaxFootprintBytes: bad,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("footprint %d: status = %d: %s", bad, resp.StatusCode, body)
		}
	}
}

func TestCalibrateJobLifecycleErrors(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Registry: costmodel.NewRegistry()})
	var out map[string]any

	if resp := getJSON(t, ts.URL+"/v1/calibrate", &out); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET without id = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/calibrate?id=cal-999", &out); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown id = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/calibrate", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE = %d", resp.StatusCode)
	}
}

func TestValidateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Registry: costmodel.NewRegistry()})
	var rep struct {
		Profile   string `json:"profile"`
		Backend   string `json:"backend"`
		Operators []struct {
			Operator     string  `json:"operator"`
			MeanRelError float64 `json:"mean_rel_error"`
		} `json:"operators"`
		MeanRelError float64 `json:"mean_rel_error"`
	}
	url := fmt.Sprintf("%s/v1/validate?profile=small-test&ops=%s",
		ts.URL, strings.Join([]string{"scan", "aggregate"}, ","))
	if resp := getJSON(t, url, &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/validate = %d", resp.StatusCode)
	}
	if rep.Profile != "small-test" || len(rep.Operators) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	for _, op := range rep.Operators {
		if op.Operator == "" {
			t.Errorf("unnamed operator in %+v", rep)
		}
	}
	if rep.Backend != "trace" {
		t.Errorf("default backend = %q, want trace", rep.Backend)
	}
}

func TestValidateEndpointAnalyticalBackend(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Registry: costmodel.NewRegistry()})
	var rep struct {
		Backend   string `json:"backend"`
		Operators []struct {
			Operator string `json:"operator"`
		} `json:"operators"`
	}
	url := ts.URL + "/v1/validate?profile=small-test&ops=scan&backend=analytical"
	if resp := getJSON(t, url, &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/validate analytical = %d", resp.StatusCode)
	}
	if rep.Backend != "analytical" || len(rep.Operators) != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestValidateEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Registry: costmodel.NewRegistry()})
	var out map[string]any
	if resp := getJSON(t, ts.URL+"/v1/validate?profile=nope", &out); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown profile = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/validate?quick=maybe", &out); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad quick = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/validate?backend=oracle", &out); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad backend = %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/validate", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d", resp.StatusCode)
	}
}
