package server_test

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/pkg/costmodel/scenario"
	"repro/pkg/costmodel/server"
)

// goldenWinner mirrors the fields plan parity needs from the
// golden-corpus files in internal/queryplan/testdata/golden.
type goldenCorpusFile struct {
	Scenario string `json:"scenario"`
	Profile  string `json:"profile"`
	Plans    int    `json:"plans"`
	Winner   struct {
		Plan    string  `json:"plan"`
		TotalNS float64 `json:"total_ns"`
	} `json:"winner"`
}

// TestPlanMatchesGoldenCorpus prices every catalog scenario through
// Server.Plan and checks the winning plan against the committed golden
// corpus — the same corpus TestGolden locks against BestPlan — so the
// HTTP surface, the public scenario package and the planner agree on
// every catalog entry.
func TestPlanMatchesGoldenCorpus(t *testing.T) {
	const profile = "origin2000"
	// Plan cache off: the catalog contains shape-isomorphic scenario
	// pairs (join2-fk/join2-large, distinct-dense/distinct-sparse), and
	// this test's contract is that every scenario is priced by a real
	// search, not served through another scenario's cached entry.
	s := server.New(server.Config{PlanCacheSize: -1})
	for _, sc := range scenario.Catalog() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			buf, err := os.ReadFile(filepath.Join("..", "..", "..", "internal", "queryplan",
				"testdata", "golden", sc.Name+"."+profile+".json"))
			if err != nil {
				t.Fatalf("missing golden file for %s (regenerate with go test ./internal/queryplan -run TestGolden -update): %v", sc.Name, err)
			}
			var want goldenCorpusFile
			if err := json.Unmarshal(buf, &want); err != nil {
				t.Fatal(err)
			}
			res := s.Plan(server.PlanRequest{Profile: profile, Scenario: sc.Name})
			if res.Error != "" {
				t.Fatalf("Plan(%s): %s", sc.Name, res.Error)
			}
			if res.Winner.Plan != want.Winner.Plan {
				t.Errorf("winning plan diverged from BestPlan's golden corpus:\n  corpus: %s\n  server: %s",
					want.Winner.Plan, res.Winner.Plan)
			}
			if res.Plans != want.Plans {
				t.Errorf("plan count %d != corpus %d", res.Plans, want.Plans)
			}
			rel := res.Winner.TotalNS - want.Winner.TotalNS
			if rel < 0 {
				rel = -rel
			}
			if want.Winner.TotalNS != 0 && rel/want.Winner.TotalNS > 1e-9 {
				t.Errorf("winner total %g != corpus %g", res.Winner.TotalNS, want.Winner.TotalNS)
			}
			if len(res.Ranking) == 0 || res.Ranking[0].Plan != res.Winner.Plan {
				t.Errorf("ranking[0] %v does not echo the winner %s", res.Ranking, res.Winner.Plan)
			}
		})
	}
}

// TestPlanHTTPRoundTrip exercises the full HTTP surface for one
// scenario and one inline query.
func TestPlanHTTPRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	resp, body := postJSON(t, ts.URL+"/v1/plan", server.PlanRequest{
		Profile: "small-test", Scenario: "join2-fk", Top: 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario request: status %d: %s", resp.StatusCode, body)
	}
	var pr server.PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Winner.Plan == "" || len(pr.Ranking) != 3 || pr.Plans < 3 {
		t.Fatalf("unexpected response: %+v", pr)
	}

	resp, body = postJSON(t, ts.URL+"/v1/plan", server.PlanRequest{
		Profile: "small-test",
		Query: &server.PlanQuery{
			Relations: []server.PlanRelation{
				{Name: "U", Tuples: 8_000, Width: 16},
				{Name: "V", Tuples: 1_000, Width: 16},
			},
			Joins:   []server.PlanJoin{{Left: 0, Right: 1, Selectivity: 0.001}},
			GroupBy: 10,
		},
		Top: -1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline query: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Plans == 0 || len(pr.Ranking) != pr.Plans {
		t.Fatalf("Top=-1 should return every plan: %+v", pr)
	}
	if !strings.Contains(pr.Winner.Plan, "agg(") {
		t.Errorf("group-by query's winner %q has no aggregate", pr.Winner.Plan)
	}
}

// TestPlanScenarioMemoized checks that a repeated (profile, scenario)
// request is served from the plan cache with an identical ranking.
func TestPlanScenarioMemoized(t *testing.T) {
	s := server.New(server.Config{})
	req := server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1}
	first := s.Plan(req)
	if first.Error != "" {
		t.Fatal(first.Error)
	}
	if first.Served != server.PlanServedSearch {
		t.Errorf("first request served %q, want %q", first.Served, server.PlanServedSearch)
	}
	if first.Shape == "" {
		t.Error("response carries no shape fingerprint")
	}
	misses := s.PlanCacheStats().Misses
	second := s.Plan(req)
	if second.Error != "" {
		t.Fatal(second.Error)
	}
	if second.Served != server.PlanServedCache {
		t.Errorf("repeat served %q, want %q", second.Served, server.PlanServedCache)
	}
	st := s.PlanCacheStats()
	if st.Hits == 0 {
		t.Error("repeated scenario request did not hit the plan cache")
	}
	if st.Misses != misses {
		t.Errorf("repeated scenario request recounted a miss (%d -> %d)", misses, st.Misses)
	}
	if len(first.Ranking) != len(second.Ranking) || first.Winner != second.Winner {
		t.Errorf("cached response diverged: %+v vs %+v", first.Winner, second.Winner)
	}
	// A different top on the cached entry slices without recomputing.
	third := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: 1})
	if len(third.Ranking) != 1 || third.Winner != first.Winner || third.Plans != first.Plans {
		t.Errorf("sliced cached response wrong: %+v", third)
	}
}

// TestPlanCacheKeyedOnSearchOptions locks the plan-cache key's search
// dimensions: the same (profile, scenario) under different search
// options must be computed separately — a DP ranking leaking into an
// exhaustive request (or across top-k settings) would silently serve
// the wrong plan space.
func TestPlanCacheKeyedOnSearchOptions(t *testing.T) {
	s := server.New(server.Config{})
	dp := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1})
	if dp.Error != "" {
		t.Fatal(dp.Error)
	}
	missesAfterDP := s.PlanCacheStats().Misses

	ex := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1, Search: "exhaustive"})
	if ex.Error != "" {
		t.Fatal(ex.Error)
	}
	st := s.PlanCacheStats()
	if st.Misses != missesAfterDP+1 {
		t.Errorf("exhaustive request after DP did not miss the cache (misses %d -> %d)", missesAfterDP, st.Misses)
	}
	if ex.Plans <= dp.Plans {
		t.Errorf("exhaustive space (%d plans) not larger than the pruned DP space (%d) — cached answer leaked across strategies?",
			ex.Plans, dp.Plans)
	}

	// Different top-k: separate entry too.
	wide := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1, TopK: server.MaxPlanTopK})
	if wide.Error != "" {
		t.Fatal(wide.Error)
	}
	if got := s.PlanCacheStats().Misses; got != st.Misses+1 {
		t.Errorf("wide-topk request did not miss the cache (misses %d -> %d)", st.Misses, got)
	}
	if wide.Plans < dp.Plans {
		t.Errorf("wide DP space (%d plans) smaller than the pruned one (%d)", wide.Plans, dp.Plans)
	}
	// topk spelled as the engine default normalizes onto the default's
	// cache entry — semantically identical requests share one entry.
	missesNow := s.PlanCacheStats().Misses
	norm := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1, TopK: 3})
	if norm.Error != "" || norm.Plans != dp.Plans {
		t.Errorf("explicit default topk diverged: %+v", norm)
	}
	if got := s.PlanCacheStats().Misses; got != missesNow {
		t.Errorf("topk=3 (the default) recounted a miss (%d -> %d)", missesNow, got)
	}

	// Repeats of each variant hit their own entries.
	hitsBefore := s.PlanCacheStats().Hits
	again := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1, Search: "exhaustive"})
	if again.Error != "" || again.Plans != ex.Plans || again.Winner != ex.Winner {
		t.Errorf("cached exhaustive response diverged: %+v vs %+v", again.Winner, ex.Winner)
	}
	if got := s.PlanCacheStats().Hits; got != hitsBefore+1 {
		t.Errorf("repeated exhaustive request did not hit the cache (hits %d -> %d)", hitsBefore, got)
	}
	// "dp" spelled explicitly shares the default's entry (same
	// normalized options).
	explicit := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1, Search: "dp"})
	if explicit.Error != "" || explicit.Plans != dp.Plans || explicit.Winner != dp.Winner {
		t.Errorf("explicit dp response diverged from the default: %+v vs %+v", explicit.Winner, dp.Winner)
	}
}

// TestPlanDPOnlyScenario prices a scenario only the DP engine can
// handle end to end over HTTP, and checks the exhaustive oracle fails
// loudly on it rather than silently truncating.
func TestPlanDPOnlyScenario(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	// modern-x86: small-test's 1 kB caches would blow up the big
	// scenario's sort-pattern lowerings for no extra coverage.
	resp, body := postJSON(t, ts.URL+"/v1/plan", server.PlanRequest{
		Profile: "modern-x86", Scenario: "join8-chain",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DP on join8-chain: status %d: %s", resp.StatusCode, body)
	}
	var pr server.PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Winner.Plan == "" || pr.Plans == 0 {
		t.Fatalf("no DP winner for join8-chain: %+v", pr)
	}

	resp, body = postJSON(t, ts.URL+"/v1/plan", server.PlanRequest{
		Profile: "modern-x86", Scenario: "join8-chain", Search: "exhaustive",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("exhaustive on join8-chain: status %d, want 400: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pr.Error, "cap") {
		t.Errorf("exhaustive error %q does not mention the plan cap", pr.Error)
	}
}

func TestPlanErrors(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	cases := []struct {
		name string
		req  server.PlanRequest
		want string
	}{
		{"missing profile", server.PlanRequest{Scenario: "join2-fk"}, "missing profile"},
		{"unknown profile", server.PlanRequest{Profile: "vax-11", Scenario: "join2-fk"}, "unknown profile"},
		{"unknown scenario", server.PlanRequest{Profile: "small-test", Scenario: "nope"}, "unknown scenario"},
		{"neither", server.PlanRequest{Profile: "small-test"}, "missing scenario or query"},
		{"both", server.PlanRequest{Profile: "small-test", Scenario: "join2-fk",
			Query: &server.PlanQuery{}}, "not both"},
		{"invalid query", server.PlanRequest{Profile: "small-test",
			Query: &server.PlanQuery{Relations: []server.PlanRelation{{Name: "U", Tuples: 10, Width: 16},
				{Name: "V", Tuples: 10, Width: 16}}}}, "does not connect"},
		{"invalid search strategy", server.PlanRequest{Profile: "small-test", Scenario: "join2-fk",
			Search: "genetic"}, `unknown search strategy "genetic"`},
		{"negative topk", server.PlanRequest{Profile: "small-test", Scenario: "join2-fk",
			TopK: -1}, "pruning cannot be disabled over HTTP"},
		{"huge topk", server.PlanRequest{Profile: "small-test", Scenario: "join2-fk",
			TopK: server.MaxPlanTopK + 1}, "outside [0, 64]"},
		{"negative parallelism", server.PlanRequest{Profile: "small-test", Scenario: "join2-fk",
			Parallelism: -1}, "parallelism -1 outside [0, 16]"},
		{"huge parallelism", server.PlanRequest{Profile: "small-test", Scenario: "join2-fk",
			Parallelism: server.MaxPlanParallelism + 1}, "parallelism 17 outside [0, 16]"},
		{"duplicate edge", server.PlanRequest{Profile: "small-test",
			Query: &server.PlanQuery{Relations: []server.PlanRelation{{Name: "U", Tuples: 10, Width: 16},
				{Name: "V", Tuples: 10, Width: 16}},
				Joins: []server.PlanJoin{{Left: 0, Right: 1, Selectivity: 0.1},
					{Left: 1, Right: 0, Selectivity: 0.2}}}}, "duplicate join edge 0–1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/plan", tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			var pr server.PlanResponse
			if err := json.Unmarshal(body, &pr); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(pr.Error, tc.want) {
				t.Errorf("error %q does not mention %q", pr.Error, tc.want)
			}
		})
	}

	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/plan: status %d, want 405", resp.StatusCode)
	}
}

// TestPlanParallelismKnob locks the Parallelism knob's wire contract:
// every accepted setting returns the identical ranking (the DP search
// is deterministic across parallelism — see the determinism suite),
// each setting occupies its own plan-cache entry, and the exhaustive
// strategy normalizes the knob away so spelled-out variants share one
// entry.
func TestPlanParallelismKnob(t *testing.T) {
	s := server.New(server.Config{})
	base := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1})
	if base.Error != "" {
		t.Fatal(base.Error)
	}
	for _, par := range []int{1, 2, server.MaxPlanParallelism} {
		missesBefore := s.PlanCacheStats().Misses
		got := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1, Parallelism: par})
		if got.Error != "" {
			t.Fatalf("parallelism %d: %v", par, got.Error)
		}
		if got.Plans != base.Plans || len(got.Ranking) != len(base.Ranking) {
			t.Fatalf("parallelism %d: %d plans (%d ranked), default %d (%d)",
				par, got.Plans, len(got.Ranking), base.Plans, len(base.Ranking))
		}
		for i := range got.Ranking {
			if got.Ranking[i] != base.Ranking[i] {
				t.Errorf("parallelism %d: ranking[%d] diverged: %+v vs %+v",
					par, i, got.Ranking[i], base.Ranking[i])
			}
		}
		if got := s.PlanCacheStats().Misses; got != missesBefore+1 {
			t.Errorf("parallelism %d did not get its own cache entry (misses %d -> %d)",
				par, missesBefore, got)
		}
	}

	// The exhaustive path zeroes the knob: par=4 shares par-unset's entry.
	first := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1, Search: "exhaustive"})
	if first.Error != "" {
		t.Fatal(first.Error)
	}
	missesNow := s.PlanCacheStats().Misses
	second := s.Plan(server.PlanRequest{Profile: "small-test", Scenario: "join2-fk", Top: -1, Search: "exhaustive", Parallelism: 4})
	if second.Error != "" || second.Plans != first.Plans || second.Winner != first.Winner {
		t.Errorf("exhaustive with parallelism diverged: %+v vs %+v", second.Winner, first.Winner)
	}
	if got := s.PlanCacheStats().Misses; got != missesNow {
		t.Errorf("exhaustive parallelism variant recounted a miss (%d -> %d)", missesNow, got)
	}
}
