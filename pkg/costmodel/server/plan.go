package server

import (
	"fmt"
	"net/http"

	"repro/pkg/costmodel"
	"repro/pkg/costmodel/scenario"
)

// POST /v1/plan prices whole query plans: the request names either a
// catalog scenario or an inline logical query, plus a hardware profile;
// the response ranks the enumerated physical plans (join order +
// algorithm choices) cheapest first. See docs/scenarios.md.

// PlanRequest asks for a plan ranking on one profile.
type PlanRequest struct {
	// Profile names a registered hardware profile.
	Profile string `json:"profile"`
	// Scenario names a catalog scenario. Exactly one of Scenario and
	// Query must be set.
	Scenario string `json:"scenario,omitempty"`
	// Query is an inline logical query.
	Query *PlanQuery `json:"query,omitempty"`
	// Top bounds the ranked plans echoed back; 0 means DefaultPlanTop,
	// negative returns every plan.
	Top int `json:"top,omitempty"`
	// Search selects the plan-space search strategy: "dp" (the default
	// — memoized DP over connected subgraphs, bushy trees) or
	// "exhaustive" (the left-deep small-query oracle).
	Search string `json:"search,omitempty"`
	// TopK bounds the subplans the DP search keeps per memo bucket; 0
	// means the engine default. The HTTP surface caps it at MaxPlanTopK
	// and rejects negative values (the pruning-disabled oracle mode is
	// an in-process test facility — over the wire it would let one
	// request grow the memo and the phase-2 re-cost without bound).
	TopK int `json:"topk,omitempty"`
	// LeftDeep restricts the DP search to left-deep join trees.
	LeftDeep bool `json:"left_deep,omitempty"`
	// Parallelism bounds the worker pool the DP search uses per memo
	// stratum; 0 means the engine default (one worker per CPU). The
	// HTTP surface caps it at MaxPlanParallelism and rejects negative
	// values. The ranking is bit-identical at every setting — the knob
	// trades latency for CPU, never answers.
	Parallelism int `json:"parallelism,omitempty"`
}

// MaxPlanTopK is the widest DP memo the HTTP surface accepts.
const MaxPlanTopK = 64

// MaxPlanParallelism is the widest per-request DP worker pool the HTTP
// surface accepts (requests already queue on the server's own bounded
// worker pool; letting one request fan out further than this buys
// nothing and starves neighbours).
const MaxPlanParallelism = 16

// DefaultPlanTop is the ranking depth returned when PlanRequest.Top is 0.
const DefaultPlanTop = 5

// PlanQuery is the wire form of a logical query.
type PlanQuery struct {
	Relations []PlanRelation `json:"relations"`
	Joins     []PlanJoin     `json:"joins,omitempty"`
	// Filters holds one scan selectivity per relation in (0, 1]; 0
	// means no filter.
	Filters []float64 `json:"filters,omitempty"`
	// Projections holds one bytes-used value per relation; 0 means the
	// full width.
	Projections []int64 `json:"projections,omitempty"`
	GroupBy     int64   `json:"group_by,omitempty"`
	Distinct    int64   `json:"distinct,omitempty"`
	SortBy      bool    `json:"sort_by,omitempty"`
}

// PlanRelation declares one base relation.
type PlanRelation struct {
	Name   string `json:"name"`
	Tuples int64  `json:"tuples"`
	Width  int64  `json:"width"`
	Sorted bool   `json:"sorted,omitempty"`
}

// PlanJoin is one join-graph edge (indices into the relation list).
type PlanJoin struct {
	Left        int     `json:"left"`
	Right       int     `json:"right"`
	Selectivity float64 `json:"selectivity"`
}

// RankedPlan is one priced physical plan.
type RankedPlan struct {
	// Plan is the plan signature (join order, algorithms, grouping).
	Plan     string  `json:"plan"`
	MemoryNS float64 `json:"memory_ns"`
	CPUNS    float64 `json:"cpu_ns"`
	TotalNS  float64 `json:"total_ns"`
}

// PlanResponse ranks a query's physical plans cheapest first.
type PlanResponse struct {
	Profile  string `json:"profile"`
	Scenario string `json:"scenario,omitempty"`
	// Plans is the number of distinct plans priced (the ranking below
	// may be truncated to the requested top).
	Plans   int          `json:"plans"`
	Winner  RankedPlan   `json:"winner"`
	Ranking []RankedPlan `json:"ranking"`
	Error   string       `json:"error,omitempty"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req PlanRequest
	if err := readJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	res := s.Plan(req)
	status := http.StatusOK
	if res.Error != "" {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, res)
}

// Plan resolves and prices one plan request on the server's registry.
// The plan search runs on the server's bounded worker pool. Catalog
// scenarios are fully deterministic per (profile, scenario, registry
// version, search options), so their complete rankings are memoized in
// the result cache — the search options are part of the cache key, so
// a DP answer can never leak into an exhaustive request (or vice
// versa); the requested top is sliced per request after the cache —
// and counted by the result-cache hit/miss counters.
func (s *Server) Plan(req PlanRequest) *PlanResponse {
	if req.Profile == "" {
		return &PlanResponse{Error: "missing profile"}
	}
	res := &PlanResponse{Profile: req.Profile, Scenario: req.Scenario}
	so, err := searchFromWire(req)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	var q scenario.Query
	var cacheKey string
	switch {
	case req.Scenario != "" && req.Query != nil:
		res.Error = "set either scenario or query, not both"
		return res
	case req.Scenario != "":
		sc, ok := scenario.ByName(req.Scenario)
		if !ok {
			res.Error = fmt.Sprintf("unknown scenario %q (have: %v)", req.Scenario, scenario.Names())
			return res
		}
		q = sc.Query
		// Parallelism is part of the key only for audit symmetry with the
		// other knobs: rankings are bit-identical across settings (the
		// determinism suite locks this), so sharing entries across
		// parallelism levels would be sound — but a knob that silently
		// vanishes from the key is a trap for the next knob that does
		// change answers, so every search option is keyed uniformly.
		cacheKey = fmt.Sprintf("plan|v%d|%q|%s|search=%s|topk=%d|leftdeep=%t|par=%d",
			s.reg.Version(), req.Profile, req.Scenario, so.Strategy, so.TopK, so.LeftDeepOnly, so.Parallelism)
	case req.Query != nil:
		q = queryFromWire(req.Query)
	default:
		res.Error = "missing scenario or query"
		return res
	}

	var ranking []RankedPlan
	if cacheKey != "" && s.cache != nil {
		if hit, ok := s.cache.get(cacheKey); ok {
			s.resultHits.Add(1)
			ranking = hit.([]RankedPlan)
		}
	}
	if ranking == nil {
		if cacheKey != "" && s.cache != nil {
			s.resultMisses.Add(1)
		}
		h, err := s.reg.Profile(req.Profile)
		if err != nil {
			res.Error = err.Error()
			return res
		}
		s.sem <- struct{}{}
		plans, err := scenario.PricePlanSearch(h, q, so)
		<-s.sem
		if err != nil {
			res.Error = err.Error()
			return res
		}
		ranking = make([]RankedPlan, len(plans))
		for i, p := range plans {
			ranking[i] = rankedPlan(p)
		}
		if cacheKey != "" && s.cache != nil {
			// The slice is never mutated after this point (responses
			// copy out of it), so one entry serves every request.
			s.cache.put(cacheKey, ranking)
		}
	}

	if len(ranking) == 0 {
		res.Error = "no plans enumerated"
		return res
	}
	res.Plans = len(ranking)
	top := req.Top
	if top == 0 {
		top = DefaultPlanTop
	}
	if top < 0 || top > len(ranking) {
		top = len(ranking)
	}
	res.Ranking = append([]RankedPlan(nil), ranking[:top]...)
	res.Winner = ranking[0]
	return res
}

func rankedPlan(p costmodel.Plan) RankedPlan {
	return RankedPlan{
		Plan:     string(p.Algorithm),
		MemoryNS: p.MemNS,
		CPUNS:    p.CPUNS,
		TotalNS:  p.TotalNS(),
	}
}

// searchFromWire resolves, validates and normalizes the request's
// search options. Validation runs here — before the cache and the
// worker pool — so an invalid option is a cheap 400, never a poisoned
// cache entry; normalization (default strategy and top-k made
// explicit, DP-only knobs zeroed for the exhaustive oracle) makes
// semantically identical requests share one cache entry.
func searchFromWire(req PlanRequest) (scenario.SearchOptions, error) {
	so := scenario.SearchOptions{
		Strategy:     scenario.SearchStrategy(req.Search),
		TopK:         req.TopK,
		LeftDeepOnly: req.LeftDeep,
		Parallelism:  req.Parallelism,
	}
	switch so.Strategy {
	case "":
		so.Strategy = scenario.SearchDP
	case scenario.SearchDP, scenario.SearchExhaustive:
	default:
		return so, fmt.Errorf("unknown search strategy %q (want %q or %q)",
			req.Search, scenario.SearchDP, scenario.SearchExhaustive)
	}
	if so.TopK < 0 || so.TopK > MaxPlanTopK {
		return so, fmt.Errorf("topk %d outside [0, %d] (pruning cannot be disabled over HTTP)",
			so.TopK, MaxPlanTopK)
	}
	if so.TopK == 0 {
		so.TopK = scenario.DefaultTopK
	}
	if so.Parallelism < 0 || so.Parallelism > MaxPlanParallelism {
		return so, fmt.Errorf("parallelism %d outside [0, %d]", so.Parallelism, MaxPlanParallelism)
	}
	if so.Strategy == scenario.SearchExhaustive {
		// The exhaustive path ignores the DP knobs; zeroing them keeps
		// the cache key canonical.
		so.TopK, so.LeftDeepOnly, so.Parallelism = 0, false, 0
	}
	return so, nil
}

func queryFromWire(pq *PlanQuery) scenario.Query {
	q := scenario.Query{
		Filters:     pq.Filters,
		Projections: pq.Projections,
		GroupBy:     pq.GroupBy,
		Distinct:    pq.Distinct,
		SortBy:      pq.SortBy,
	}
	for _, r := range pq.Relations {
		q.Relations = append(q.Relations, scenario.Relation{
			Name: r.Name, Tuples: r.Tuples, Width: r.Width, Sorted: r.Sorted,
		})
	}
	for _, j := range pq.Joins {
		q.Joins = append(q.Joins, scenario.JoinEdge{
			Left: j.Left, Right: j.Right, Selectivity: j.Selectivity,
		})
	}
	return q
}
