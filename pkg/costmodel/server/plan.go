package server

import (
	"fmt"
	"math"
	"net/http"
	"sort"

	"repro/pkg/costmodel"
	"repro/pkg/costmodel/scenario"
)

// POST /v1/plan prices whole query plans: the request names either a
// catalog scenario or an inline logical query, plus a hardware profile;
// the response ranks the enumerated physical plans (join order +
// algorithm choices) cheapest first. See docs/scenarios.md.
//
// Plan searches are memoized in a shape-keyed plan cache: the cache key
// is the query's canonical join-graph fingerprint, so inline queries
// that differ only in relation naming or ordering — and every repeat of
// a catalog scenario — share one entry. A cached entry stores the
// ranking together with relabelable plan recipes; when a same-shape
// request arrives with drifted numeric parameters, the recipes are
// re-bound and re-scored with the IR evaluator (microseconds per plan)
// and the cached answer is served as long as its winner keeps the top
// spot — only a dethroned winner triggers a full plan-space re-search.
// See docs/serving.md.

// PlanRequest asks for a plan ranking on one profile.
type PlanRequest struct {
	// Profile names a registered hardware profile.
	Profile string `json:"profile"`
	// Scenario names a catalog scenario. Exactly one of Scenario and
	// Query must be set.
	Scenario string `json:"scenario,omitempty"`
	// Query is an inline logical query.
	Query *PlanQuery `json:"query,omitempty"`
	// Top bounds the ranked plans echoed back; 0 means DefaultPlanTop,
	// negative returns every plan.
	Top int `json:"top,omitempty"`
	// Search selects the plan-space search strategy: "dp" (the default
	// — memoized DP over connected subgraphs, bushy trees) or
	// "exhaustive" (the left-deep small-query oracle).
	Search string `json:"search,omitempty"`
	// TopK bounds the subplans the DP search keeps per memo bucket; 0
	// means the engine default. The HTTP surface caps it at MaxPlanTopK
	// and rejects negative values (the pruning-disabled oracle mode is
	// an in-process test facility — over the wire it would let one
	// request grow the memo and the phase-2 re-cost without bound).
	TopK int `json:"topk,omitempty"`
	// LeftDeep restricts the DP search to left-deep join trees.
	LeftDeep bool `json:"left_deep,omitempty"`
	// Parallelism bounds the worker pool the DP search uses per memo
	// stratum; 0 means the engine default (one worker per CPU). The
	// HTTP surface caps it at MaxPlanParallelism and rejects negative
	// values. The ranking is bit-identical at every setting — the knob
	// trades latency for CPU, never answers.
	Parallelism int `json:"parallelism,omitempty"`
}

// MaxPlanTopK is the widest DP memo the HTTP surface accepts.
const MaxPlanTopK = 64

// MaxPlanParallelism is the widest per-request DP worker pool the HTTP
// surface accepts (requests already queue on the server's own bounded
// worker pool; letting one request fan out further than this buys
// nothing and starves neighbours).
const MaxPlanParallelism = 16

// DefaultPlanTop is the ranking depth returned when PlanRequest.Top is 0.
const DefaultPlanTop = 5

// planRevalidateTopK is how many cached recipes — the winner plus its
// closest rivals — are re-bound and re-scored when a same-shape request
// arrives with drifted parameters. Rivals further down the original
// ranking would need a drift large enough to leapfrog all of these, at
// which point the winner-keeps-top check has almost certainly failed
// already and a full re-search runs anyway.
const planRevalidateTopK = 5

// planEntry is one cached plan-search result: the full ranking plus a
// relabelable recipe per ranked plan, with the parameter vector and the
// canonical-order relation names it was priced under. Entries are
// immutable once stored (responses copy out of them).
type planEntry struct {
	// params is the fingerprint's canonical parameter vector.
	params []float64
	// names holds the relation names in canonical order
	// (names[pos] = Relations[Perm[pos]].Name): plan signatures embed
	// relation names, so serving the stored strings verbatim requires
	// the names to match too; a renamed isomorph re-renders through the
	// recipes instead.
	names []string
	// plans is the number of distinct plans the search priced.
	plans   int
	ranking []RankedPlan
	// recipes are index-aligned with ranking.
	recipes []*scenario.Recipe
}

// PlanQuery is the wire form of a logical query.
type PlanQuery struct {
	Relations []PlanRelation `json:"relations"`
	Joins     []PlanJoin     `json:"joins,omitempty"`
	// Filters holds one scan selectivity per relation in (0, 1]; 0
	// means no filter.
	Filters []float64 `json:"filters,omitempty"`
	// Projections holds one bytes-used value per relation; 0 means the
	// full width.
	Projections []int64 `json:"projections,omitempty"`
	GroupBy     int64   `json:"group_by,omitempty"`
	Distinct    int64   `json:"distinct,omitempty"`
	SortBy      bool    `json:"sort_by,omitempty"`
}

// PlanRelation declares one base relation.
type PlanRelation struct {
	Name   string `json:"name"`
	Tuples int64  `json:"tuples"`
	Width  int64  `json:"width"`
	Sorted bool   `json:"sorted,omitempty"`
}

// PlanJoin is one join-graph edge (indices into the relation list).
type PlanJoin struct {
	Left        int     `json:"left"`
	Right       int     `json:"right"`
	Selectivity float64 `json:"selectivity"`
}

// RankedPlan is one priced physical plan.
type RankedPlan struct {
	// Plan is the plan signature (join order, algorithms, grouping).
	Plan     string  `json:"plan"`
	MemoryNS float64 `json:"memory_ns"`
	CPUNS    float64 `json:"cpu_ns"`
	TotalNS  float64 `json:"total_ns"`
}

// The PlanResponse.Served values.
const (
	// PlanServedSearch: a full plan-space search ran.
	PlanServedSearch = "search"
	// PlanServedCache: answered from the plan cache (same shape, same
	// parameters; relation names re-rendered if the request spelled
	// them differently).
	PlanServedCache = "cache"
	// PlanServedRevalidated: same shape, drifted parameters — the
	// cached recipes were re-scored with the IR evaluator and the
	// cached winner held the top spot.
	PlanServedRevalidated = "revalidated"
)

// PlanResponse ranks a query's physical plans cheapest first.
type PlanResponse struct {
	Profile  string `json:"profile"`
	Scenario string `json:"scenario,omitempty"`
	// Shape is the query's canonical join-graph fingerprint key — the
	// plan cache's identity for the query modulo relation naming,
	// ordering and numeric parameters.
	Shape string `json:"shape,omitempty"`
	// Served reports how the answer was produced: "search",
	// "cache", or "revalidated".
	Served string `json:"served,omitempty"`
	// Plans is the number of distinct plans priced (the ranking below
	// may be truncated to the requested top). On a revalidated answer
	// it reports the original search's count.
	Plans   int          `json:"plans"`
	Winner  RankedPlan   `json:"winner"`
	Ranking []RankedPlan `json:"ranking"`
	Error   string       `json:"error,omitempty"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req PlanRequest
	if err := readJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	res := s.Plan(req)
	status := http.StatusOK
	if res.Error != "" {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, res)
}

// Plan resolves and prices one plan request on the server's registry.
// The plan search runs on the server's bounded worker pool.
//
// Requests are served through the shape-keyed plan cache: the key is
// (registry version, profile, shape fingerprint, search options) — the
// search options are part of the key, so a DP answer can never leak
// into an exhaustive request (or vice versa); the requested top is
// sliced per request after the cache. Catalog scenarios and inline
// queries share the machinery (and, when shapes coincide, the entries):
// a scenario resolves to its query and fingerprints like any other.
func (s *Server) Plan(req PlanRequest) *PlanResponse {
	if req.Profile == "" {
		return &PlanResponse{Error: "missing profile"}
	}
	res := &PlanResponse{Profile: req.Profile, Scenario: req.Scenario}
	so, err := searchFromWire(req)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	var q scenario.Query
	switch {
	case req.Scenario != "" && req.Query != nil:
		res.Error = "set either scenario or query, not both"
		return res
	case req.Scenario != "":
		sc, ok := scenario.ByName(req.Scenario)
		if !ok {
			res.Error = fmt.Sprintf("unknown scenario %q (have: %v)", req.Scenario, scenario.Names())
			return res
		}
		q = sc.Query
	case req.Query != nil:
		q = queryFromWire(req.Query)
	default:
		res.Error = "missing scenario or query"
		return res
	}

	// The fingerprint validates the query (its errors are Validate's,
	// surfaced before any search work) and yields the cache identity.
	fp, err := scenario.FingerprintQuery(q)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Shape = fp.Key
	names := canonicalNames(q, fp)

	// Parallelism is part of the key only for audit symmetry with the
	// other knobs: rankings are bit-identical across settings (the
	// determinism suite locks this), so sharing entries across
	// parallelism levels would be sound — but a knob that silently
	// vanishes from the key is a trap for the next knob that does
	// change answers, so every search option is keyed uniformly.
	cacheKey := fmt.Sprintf("plan|v%d|%q|fp=%s|search=%s|topk=%d|leftdeep=%t|par=%d",
		s.reg.Version(), req.Profile, fp.Key, so.Strategy, so.TopK, so.LeftDeepOnly, so.Parallelism)

	if s.planCache != nil {
		if entry, ok := s.planCache.get(cacheKey); ok {
			if done := s.servePlanFromCache(res, req, entry, q, fp, names); done {
				return res
			}
		} else {
			s.planMisses.Add(1)
		}
	}
	return s.searchPlan(res, req, q, fp, so, names, cacheKey)
}

// servePlanFromCache tries the three cached paths — pure hit, renamed
// hit, drift revalidation — filling res and returning true on success.
// False means the caller must run a full search (the revalidation-miss
// and bind-failure paths); the relevant counters are bumped here.
func (s *Server) servePlanFromCache(res *PlanResponse, req PlanRequest, entry *planEntry, q scenario.Query, fp scenario.Fingerprint, names []string) bool {
	if equalParams(entry.params, fp.Params) {
		// Same shape, same parameters: the cached costs are exact.
		if equalNames(entry.names, names) {
			s.planHits.Add(1)
			finishPlan(res, entry.ranking, entry.plans, req.Top, PlanServedCache)
			return true
		}
		// A renamed isomorph: costs are name-independent, but the plan
		// signatures embed relation names — re-render them by binding
		// each recipe to this query (no IR evaluation).
		ranking := make([]RankedPlan, len(entry.ranking))
		for i, rp := range entry.ranking {
			bound, err := scenario.BindRecipe(entry.recipes[i], q, fp)
			if err != nil {
				s.planRevalMisses.Add(1)
				return false
			}
			rp.Plan = bound.Signature()
			ranking[i] = rp
		}
		s.planHits.Add(1)
		finishPlan(res, ranking, entry.plans, req.Top, PlanServedCache)
		return true
	}

	// Parameter drift: re-bind and re-score the cached winner plus its
	// closest rivals with the IR evaluator (microseconds per plan) and
	// serve the cached answer only if the winner holds the top spot.
	h, err := s.reg.Profile(req.Profile)
	if err != nil {
		res.Error = err.Error()
		return true
	}
	n := len(entry.recipes)
	if n > planRevalidateTopK {
		n = planRevalidateTopK
	}
	trees := make([]*scenario.Plan, n)
	for i := 0; i < n; i++ {
		bound, err := scenario.BindRecipe(entry.recipes[i], q, fp)
		if err != nil {
			s.planRevalMisses.Add(1)
			return false
		}
		trees[i] = bound
	}
	s.sem <- struct{}{}
	rescored, err := scenario.RescorePlans(h, trees)
	<-s.sem
	if err != nil {
		s.planRevalMisses.Add(1)
		return false
	}
	for _, p := range rescored[1:] {
		if p.TotalNS() < rescored[0].TotalNS() {
			// The cached winner lost under the drifted parameters: the
			// pruned DP search could now surface plans the cache never
			// stored, so only a full re-search is trustworthy.
			s.planRevalMisses.Add(1)
			return false
		}
	}
	ranking := make([]RankedPlan, len(rescored))
	for i, p := range rescored {
		ranking[i] = rankedPlan(p)
	}
	// Ties keep the original search order (stable, like the search's
	// own ranking).
	sort.SliceStable(ranking, func(i, j int) bool { return ranking[i].TotalNS < ranking[j].TotalNS })
	s.planRevalidations.Add(1)
	// The entry is deliberately NOT updated: re-anchoring the cached
	// parameters on every drifted request would let a scenario/inline
	// mix thrash between re-validations; the entry keeps the
	// parameters it was searched under until a full search replaces it.
	finishPlan(res, ranking, entry.plans, req.Top, PlanServedRevalidated)
	return true
}

// searchPlan runs the full plan-space search and (re)fills the cache.
func (s *Server) searchPlan(res *PlanResponse, req PlanRequest, q scenario.Query, fp scenario.Fingerprint, so scenario.SearchOptions, names []string, cacheKey string) *PlanResponse {
	h, err := s.reg.Profile(req.Profile)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	s.sem <- struct{}{}
	priced, err := scenario.PricePlanTreesSearch(h, q, so)
	<-s.sem
	if err != nil {
		res.Error = err.Error()
		return res
	}
	if len(priced) == 0 {
		res.Error = "no plans enumerated"
		return res
	}
	ranking := make([]RankedPlan, len(priced))
	recipes := make([]*scenario.Recipe, len(priced))
	cacheable := s.planCache != nil
	for i, pp := range priced {
		ranking[i] = rankedPlan(pp.Plan)
		if !cacheable {
			continue
		}
		r, err := scenario.NewRecipe(pp.Tree, q, fp)
		if err != nil {
			// A plan the recipe extractor cannot relabel (should not
			// happen for plans searched from q): serve the answer, skip
			// caching it.
			cacheable = false
			continue
		}
		recipes[i] = r
	}
	if cacheable {
		s.planCache.put(cacheKey, &planEntry{
			params:  fp.Params,
			names:   names,
			plans:   len(ranking),
			ranking: ranking,
			recipes: recipes,
		})
	}
	finishPlan(res, ranking, len(ranking), req.Top, PlanServedSearch)
	return res
}

// finishPlan fills the response from a full ranking, slicing to the
// requested top (0 means DefaultPlanTop, negative means everything).
func finishPlan(res *PlanResponse, ranking []RankedPlan, plans, top int, served string) {
	res.Plans = plans
	res.Served = served
	if top == 0 {
		top = DefaultPlanTop
	}
	if top < 0 || top > len(ranking) {
		top = len(ranking)
	}
	res.Ranking = append([]RankedPlan(nil), ranking[:top]...)
	res.Winner = ranking[0]
}

// canonicalNames lists q's relation names in canonical fingerprint
// order — the name identity a cached entry's plan signatures depend on.
func canonicalNames(q scenario.Query, fp scenario.Fingerprint) []string {
	names := make([]string, len(fp.Perm))
	for pos, i := range fp.Perm {
		names[pos] = q.Relations[i].Name
	}
	return names
}

func equalParams(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func equalNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func rankedPlan(p costmodel.Plan) RankedPlan {
	return RankedPlan{
		Plan:     string(p.Algorithm),
		MemoryNS: p.MemNS,
		CPUNS:    p.CPUNS,
		TotalNS:  p.TotalNS(),
	}
}

// searchFromWire resolves, validates and normalizes the request's
// search options. Validation runs here — before the cache and the
// worker pool — so an invalid option is a cheap 400, never a poisoned
// cache entry; normalization (default strategy and top-k made
// explicit, DP-only knobs zeroed for the exhaustive oracle) makes
// semantically identical requests share one cache entry.
func searchFromWire(req PlanRequest) (scenario.SearchOptions, error) {
	so := scenario.SearchOptions{
		Strategy:     scenario.SearchStrategy(req.Search),
		TopK:         req.TopK,
		LeftDeepOnly: req.LeftDeep,
		Parallelism:  req.Parallelism,
	}
	switch so.Strategy {
	case "":
		so.Strategy = scenario.SearchDP
	case scenario.SearchDP, scenario.SearchExhaustive:
	default:
		return so, fmt.Errorf("unknown search strategy %q (want %q or %q)",
			req.Search, scenario.SearchDP, scenario.SearchExhaustive)
	}
	if so.TopK < 0 || so.TopK > MaxPlanTopK {
		return so, fmt.Errorf("topk %d outside [0, %d] (pruning cannot be disabled over HTTP)",
			so.TopK, MaxPlanTopK)
	}
	if so.TopK == 0 {
		so.TopK = scenario.DefaultTopK
	}
	if so.Parallelism < 0 || so.Parallelism > MaxPlanParallelism {
		return so, fmt.Errorf("parallelism %d outside [0, %d]", so.Parallelism, MaxPlanParallelism)
	}
	if so.Strategy == scenario.SearchExhaustive {
		// The exhaustive path ignores the DP knobs; zeroing them keeps
		// the cache key canonical.
		so.TopK, so.LeftDeepOnly, so.Parallelism = 0, false, 0
	}
	return so, nil
}

func queryFromWire(pq *PlanQuery) scenario.Query {
	q := scenario.Query{
		Filters:     pq.Filters,
		Projections: pq.Projections,
		GroupBy:     pq.GroupBy,
		Distinct:    pq.Distinct,
		SortBy:      pq.SortBy,
	}
	for _, r := range pq.Relations {
		q.Relations = append(q.Relations, scenario.Relation{
			Name: r.Name, Tuples: r.Tuples, Width: r.Width, Sorted: r.Sorted,
		})
	}
	for _, j := range pq.Joins {
		q.Joins = append(q.Joins, scenario.JoinEdge{
			Left: j.Left, Right: j.Right, Selectivity: j.Selectivity,
		})
	}
	return q
}
