package server_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/pkg/costmodel/server"
)

// TestBatchDedup: requests of one batch sharing a canonical program
// collapse onto one evaluation even with the result cache disabled —
// followers clone the leader's result, re-echo their own spelling, and
// add their own CPU estimate.
func TestBatchDedup(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{Workers: 2, CacheSize: -1, CompileCacheSize: -1})
	u := []server.RegionDecl{{Name: "U", Items: 1 << 16, Width: 16}}
	reqs := []server.EvalRequest{
		{Profile: "origin2000", Regions: u, Pattern: "s_trav(U)"},
		{Profile: "origin2000", Regions: u, Pattern: "s_trav(U)", CPUNS: 5e6},
		{Profile: "origin2000", Regions: u, Pattern: "r_trav(U)"},
		{Profile: "origin2000", Regions: u, Pattern: "s_trav(U)", Explain: true},
		{Profile: "origin2000", Regions: u, Pattern: "s_trav(U)", Explain: true},
		{Pattern: "s_trav(U)"}, // missing profile: resolved in the prepass
	}
	results := srv.EvaluateBatch(reqs)
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results[:5] {
		if res.Error != "" {
			t.Fatalf("request %d: %s", i, res.Error)
		}
	}

	// Request 1 follows request 0: same memory cost, its own CPU
	// estimate on top, marked served-without-evaluation.
	if results[1].MemoryNS != results[0].MemoryNS {
		t.Errorf("follower memory_ns %g != leader %g", results[1].MemoryNS, results[0].MemoryNS)
	}
	if want := results[0].MemoryNS + 5e6; results[1].TotalNS != want {
		t.Errorf("follower total_ns %g, want %g", results[1].TotalNS, want)
	}
	if !results[1].Cached {
		t.Error("follower not marked cached")
	}
	if results[0].Cached {
		t.Error("leader marked cached with the result cache disabled")
	}

	// The explain pair dedups within itself but not against the plain
	// requests (the key carries the explain spelling).
	if len(results[3].Explain) == 0 || len(results[4].Explain) == 0 {
		t.Error("explain output missing")
	}
	if !results[4].Cached || results[3].Cached {
		t.Error("explain pair did not dedup onto its first occurrence")
	}

	if results[5].Error == "" {
		t.Error("malformed request produced no error")
	}

	// 3 leaders evaluated (plain, r_trav, explain), 2 followers served
	// by dedup; the malformed request counts as neither.
	st := srv.BatchDedupStats()
	if st.Hits != 2 || st.Misses != 3 {
		t.Errorf("dedup stats hits=%d misses=%d, want 2/3", st.Hits, st.Misses)
	}

	// Parity: a deduped batch returns what per-request evaluation would.
	for i, req := range reqs[:5] {
		direct := srv.Evaluate(req)
		if direct.Error != "" {
			t.Fatalf("direct %d: %s", i, direct.Error)
		}
		if results[i].MemoryNS != direct.MemoryNS || results[i].TotalNS != direct.TotalNS {
			t.Errorf("request %d: batch (%g, %g) != direct (%g, %g)",
				i, results[i].MemoryNS, results[i].TotalNS, direct.MemoryNS, direct.TotalNS)
		}
		if results[i].Pattern != direct.Pattern {
			t.Errorf("request %d: pattern echo %q != direct %q", i, results[i].Pattern, direct.Pattern)
		}
	}

	// The counters surface on /healthz.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		BatchDedup struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"batch_dedup"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.BatchDedup.Hits != 2 || health.BatchDedup.Misses != 3 {
		t.Errorf("healthz batch_dedup hits=%d misses=%d, want 2/3",
			health.BatchDedup.Hits, health.BatchDedup.Misses)
	}
}
