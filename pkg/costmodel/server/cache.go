package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used cache — the classic
// map + doubly-linked-list construction (the standard library has no
// LRU and the repo takes no dependencies). The server keeps two: one
// for evaluation results and one for compiled patterns. Stored values
// are treated as immutable; callers copy before mutating (results) or
// share freely (compiled programs are immutable by construction).
type lruCache struct {
	cap int

	mu    sync.Mutex
	order *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *entry
}

type entry struct {
	key string
	val any
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).val, true
}

func (c *lruCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
