package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used cache — the classic
// map + doubly-linked-list construction (the standard library has no
// LRU and the repo takes no dependencies). The server keeps three: one
// for evaluation results, one for compiled patterns, one for plan
// rankings. Stored values are treated as immutable; callers copy before
// mutating (results) or share freely (compiled programs and plan
// entries are immutable by construction).
type lruCache[V any] struct {
	cap int

	mu        sync.Mutex
	order     *list.List               // front = most recently used
	items     map[string]*list.Element // key -> element whose Value is *entry[V]
	evictions uint64
}

type entry[V any] struct {
	key string
	val V
}

func newLRUCache[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry[V]).val, true
}

func (c *lruCache[V]) put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry[V]{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
		c.evictions++
	}
}

func (c *lruCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// evicted returns the cumulative number of capacity evictions.
func (c *lruCache[V]) evicted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
