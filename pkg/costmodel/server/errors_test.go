package server_test

// Error-path and counter coverage for the evaluation service:
// malformed bodies, unknown profiles, oversized batches, and the
// /healthz cache hit/miss counters under canonical-equivalent request
// streams.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/pkg/costmodel/server"
)

func TestEvaluateMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	for _, body := range []string{
		"{not json",
		`[1, 2, 3]`,
		`{"requests": "not an array"}`,
		"",
	} {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestEvaluateUnknownProfile(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	resp, body := postJSON(t, ts.URL+"/v1/evaluate", server.EvalRequest{
		Profile: "cray-1",
		Regions: []server.RegionDecl{{Name: "U", Items: 1024, Width: 16}},
		Pattern: "s_trav(U)",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	var res server.EvalResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Error, "unknown profile") {
		t.Errorf("error %q does not mention the unknown profile", res.Error)
	}
}

func TestEvaluateOversizedBatch(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	reqs := make([]server.EvalRequest, server.MaxBatchRequests+1)
	for i := range reqs {
		reqs[i] = server.EvalRequest{
			Profile: "small-test",
			Regions: []server.RegionDecl{{Name: "U", Items: 64, Width: 16}},
			Pattern: "s_trav(U)",
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/evaluate", server.BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("exceeds the maximum")) {
		t.Errorf("oversized batch error not surfaced: %s", body)
	}

	// A batch at exactly the cap (sharing one cached entry) still works.
	resp, body = postJSON(t, ts.URL+"/v1/evaluate", server.BatchRequest{Requests: reqs[:server.MaxBatchRequests]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cap-sized batch: status %d: %.200s", resp.StatusCode, body)
	}
	var br server.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != server.MaxBatchRequests {
		t.Fatalf("cap-sized batch returned %d results", len(br.Results))
	}
}

// healthState decodes the cache counters from /healthz.
type healthState struct {
	Status       string `json:"status"`
	CompileCache struct {
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
		Entries int    `json:"entries"`
	} `json:"compile_cache"`
	ResultCache struct {
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
		Entries int    `json:"entries"`
	} `json:"result_cache"`
}

func getHealth(t *testing.T, url string) healthState {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthState
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestHealthzCountersCanonicalEquivalence drives the server with
// differently spelled but canonically equivalent patterns and checks
// the /healthz counters step by step: equivalent spellings must hit
// the result cache (keyed on canonical form), and a profile switch
// must miss the result cache but hit the compile cache (keyed on
// canonical form only).
func TestHealthzCountersCanonicalEquivalence(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	regions := []server.RegionDecl{
		{Name: "U", Items: 4096, Width: 16},
		{Name: "V", Items: 1024, Width: 16},
	}
	// ⊙ is commutative: both spellings share one canonical form.
	spellA := "s_trav(U) (.) s_trav(V)"
	spellB := "s_trav(V) (.) s_trav(U)"

	h0 := getHealth(t, ts.URL)
	if h0.Status != "ok" {
		t.Fatalf("status %q", h0.Status)
	}

	eval := func(profile, pat string) {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/evaluate", server.EvalRequest{
			Profile: profile, Regions: regions, Pattern: pat,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("evaluate %q: status %d: %s", pat, resp.StatusCode, body)
		}
	}

	eval("origin2000", spellA) // cold: result miss, compile miss
	h1 := getHealth(t, ts.URL)
	if got, want := h1.ResultCache.Misses-h0.ResultCache.Misses, uint64(1); got != want {
		t.Errorf("after cold request: result misses +%d, want +%d", got, want)
	}
	if got, want := h1.CompileCache.Misses-h0.CompileCache.Misses, uint64(1); got != want {
		t.Errorf("after cold request: compile misses +%d, want +%d", got, want)
	}

	for i := 0; i < 3; i++ {
		eval("origin2000", spellB) // equivalent spelling: result hits
	}
	h2 := getHealth(t, ts.URL)
	if got, want := h2.ResultCache.Hits-h1.ResultCache.Hits, uint64(3); got != want {
		t.Errorf("equivalent spellings: result hits +%d, want +%d", got, want)
	}
	if got := h2.CompileCache.Misses - h1.CompileCache.Misses; got != 0 {
		t.Errorf("equivalent spellings: compile misses +%d, want +0 (result hit short-circuits)", got)
	}

	eval("modern-x86", spellB) // new profile: result miss, compile hit
	h3 := getHealth(t, ts.URL)
	if got, want := h3.ResultCache.Misses-h2.ResultCache.Misses, uint64(1); got != want {
		t.Errorf("profile switch: result misses +%d, want +%d", got, want)
	}
	if got, want := h3.CompileCache.Hits-h2.CompileCache.Hits, uint64(1); got != want {
		t.Errorf("profile switch: compile hits +%d, want +%d (compiled program is profile-independent)", got, want)
	}
	if h3.ResultCache.Entries != 2 || h3.CompileCache.Entries != 1 {
		t.Errorf("entries: result %d (want 2: one per profile), compile %d (want 1: canonical form shared)",
			h3.ResultCache.Entries, h3.CompileCache.Entries)
	}
}
