package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/pkg/costmodel"
	"repro/pkg/costmodel/server"
)

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// testBatch builds a batch of 10 distinct requests across profiles and
// pattern shapes (with one intentional duplicate of request 0, so a
// single batch already exercises the memoization path).
func testBatch() []server.EvalRequest {
	regions := func(names ...string) []server.RegionDecl {
		var out []server.RegionDecl
		for i, n := range names {
			out = append(out, server.RegionDecl{Name: n, Items: int64(1<<16) << i, Width: 16})
		}
		return out
	}
	reqs := []server.EvalRequest{
		{Profile: "origin2000", Regions: regions("U"), Pattern: "s_trav(U)"},
		{Profile: "origin2000", Regions: regions("U"), Pattern: "r_trav(U)"},
		{Profile: "origin2000", Regions: regions("U"), Pattern: "rr_trav(4, U)"},
		{Profile: "origin2000", Regions: regions("U"), Pattern: "rs_trav(4, bi, U)"},
		{Profile: "origin2000", Regions: regions("U", "H", "W"),
			Pattern: "s_trav(U) (.) r_acc(65536, H) (.) s_trav(W)", CPUNS: 1e6},
		{Profile: "modern-x86", Regions: regions("U"), Pattern: "nest(U, 64, s_trav(U_j), rnd)"},
		{Profile: "modern-x86", Regions: regions("U", "V"),
			Pattern: "s_trav(U) (+) [s_trav(U) (.) s_trav(V)]", Explain: true},
		{Profile: "small-test", Regions: regions("U"), Pattern: "r_acc(10000, U)"},
		{Profile: "small-test", Regions: regions("U"), Pattern: "s_trav~(U, u=8)"},
	}
	reqs = append(reqs, reqs[0]) // duplicate: must be served from cache
	return reqs
}

// directResult evaluates one request straight through pkg/costmodel,
// bypassing the server, for parity checks.
func directResult(t *testing.T, req server.EvalRequest) (memNS float64, perLevel []costmodel.Misses) {
	t.Helper()
	regions := map[string]*costmodel.Region{}
	for _, d := range req.Regions {
		regions[d.Name] = costmodel.NewRegion(d.Name, d.Items, d.Width)
	}
	p, err := costmodel.ParsePattern(req.Pattern, regions)
	if err != nil {
		t.Fatal(err)
	}
	model, err := costmodel.DefaultRegistry().Model(req.Profile)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.PerLevel {
		perLevel = append(perLevel, lr.Misses)
	}
	return res.MemoryTimeNS(), perLevel
}

// TestBatchEvaluateMatchesDirect is the acceptance test: start the
// serve handler, post a batch of ≥8 evaluation requests, and assert
// every result matches direct pkg/costmodel evaluation; then post the
// batch again and assert the cache served it.
func TestBatchEvaluateMatchesDirect(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{Workers: 4})
	reqs := testBatch()
	if len(reqs) < 8 {
		t.Fatalf("acceptance requires ≥8 requests, have %d", len(reqs))
	}

	resp, body := postJSON(t, ts.URL+"/v1/evaluate", server.BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var batch server.BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, body)
	}
	if len(batch.Results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(batch.Results), len(reqs))
	}

	for i, res := range batch.Results {
		req := reqs[i]
		if res.Error != "" {
			t.Fatalf("request %d (%s on %s): %s", i, req.Pattern, req.Profile, res.Error)
		}
		wantMem, wantLevels := directResult(t, req)
		if res.MemoryNS != wantMem {
			t.Errorf("request %d: memory_ns = %g, direct evaluation = %g", i, res.MemoryNS, wantMem)
		}
		if want := wantMem + req.CPUNS; res.TotalNS != want {
			t.Errorf("request %d: total_ns = %g, want %g", i, res.TotalNS, want)
		}
		if len(res.Levels) != len(wantLevels) {
			t.Fatalf("request %d: %d levels, want %d", i, len(res.Levels), len(wantLevels))
		}
		for j, lc := range res.Levels {
			if lc.SeqMisses != wantLevels[j].Seq || lc.RndMisses != wantLevels[j].Rnd {
				t.Errorf("request %d level %s: (%g, %g) misses, direct (%g, %g)",
					i, lc.Level, lc.SeqMisses, lc.RndMisses, wantLevels[j].Seq, wantLevels[j].Rnd)
			}
		}
		if req.Explain && len(res.Explain) == 0 {
			t.Errorf("request %d: explain requested but missing", i)
		}
	}

	// The batch's last request duplicates its first: the duplicate must
	// have been memoized (whichever of the two ran first populated the
	// cache unless they raced; re-posting below pins it down regardless).
	if srv.CacheLen() == 0 {
		t.Error("cache empty after a batch")
	}

	// Cache-hit path: the identical batch again — every result must now
	// be served from the LRU cache and still match.
	resp, body = postJSON(t, ts.URL+"/v1/evaluate", server.BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second batch: status %d", resp.StatusCode)
	}
	var second server.BatchResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	for i, res := range second.Results {
		if !res.Cached {
			t.Errorf("request %d not served from cache on repeat", i)
		}
		if res.MemoryNS != batch.Results[i].MemoryNS {
			t.Errorf("request %d: cached memory_ns %g != first pass %g",
				i, res.MemoryNS, batch.Results[i].MemoryNS)
		}
	}
}

func TestSingleRequestShape(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	req := server.EvalRequest{
		Profile: "origin2000",
		Regions: []server.RegionDecl{{Name: "U", Items: 1 << 20, Width: 8}},
		Pattern: "s_trav(U)",
	}
	resp, body := postJSON(t, ts.URL+"/v1/evaluate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res server.EvalResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	wantMem, _ := directResult(t, req)
	if res.MemoryNS != wantMem {
		t.Errorf("memory_ns = %g, want %g", res.MemoryNS, wantMem)
	}
	if res.Pattern != "s_trav(U)" {
		t.Errorf("canonical pattern = %q", res.Pattern)
	}
}

func TestEvaluateErrors(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	cases := []struct {
		name string
		req  server.EvalRequest
	}{
		{"missing profile", server.EvalRequest{Pattern: "s_trav(U)"}},
		{"missing pattern", server.EvalRequest{Profile: "origin2000"}},
		{"unknown profile", server.EvalRequest{Profile: "pdp-11", Pattern: "s_trav(U)",
			Regions: []server.RegionDecl{{Name: "U", Items: 10, Width: 8}}}},
		{"unknown region", server.EvalRequest{Profile: "origin2000", Pattern: "s_trav(U)"}},
		{"bad region", server.EvalRequest{Profile: "origin2000", Pattern: "s_trav(U)",
			Regions: []server.RegionDecl{{Name: "U", Items: 10, Width: 0}}}},
		{"parse error", server.EvalRequest{Profile: "origin2000", Pattern: "q_trav(U)",
			Regions: []server.RegionDecl{{Name: "U", Items: 10, Width: 8}}}},
		{"duplicate region", server.EvalRequest{Profile: "origin2000", Pattern: "s_trav(U)",
			Regions: []server.RegionDecl{
				{Name: "U", Items: 10, Width: 8}, {Name: "U", Items: 20, Width: 8}}}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/evaluate", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
		var res server.EvalResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Error == "" {
			t.Errorf("%s: error field empty", tc.name)
		}
	}

	// Per-item errors inside a batch do not fail the whole batch.
	batch := server.BatchRequest{Requests: []server.EvalRequest{
		{Profile: "origin2000", Pattern: "s_trav(U)",
			Regions: []server.RegionDecl{{Name: "U", Items: 10, Width: 8}}},
		{Profile: "pdp-11", Pattern: "s_trav(U)",
			Regions: []server.RegionDecl{{Name: "U", Items: 10, Width: 8}}},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/evaluate", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with bad item: status %d", resp.StatusCode)
	}
	var res server.BatchResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Results[0].Error != "" || res.Results[1].Error == "" {
		t.Errorf("per-item errors misplaced: %s", body)
	}
}

func TestProfilesAndHealthz(t *testing.T) {
	reg := costmodel.NewRegistry()
	if err := reg.RegisterHierarchy("test-box", costmodel.SmallTest()); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, server.Config{Registry: reg})

	resp, err := http.Get(ts.URL + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var profiles struct {
		Profiles []server.ProfileInfo `json:"profiles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&profiles); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range profiles.Profiles {
		names[p.Name] = true
		if len(p.Levels) == 0 {
			t.Errorf("profile %s has no levels", p.Name)
		}
	}
	for _, want := range []string{"origin2000", "modern-x86", "small-test", "test-box"} {
		if !names[want] {
			t.Errorf("profiles missing %q: %v", want, names)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hresp.StatusCode)
	}
	var health map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}
}

// TestRegisterInvalidatesCache pins the registry-version part of the
// cache key: after re-registering a profile name with different
// hardware, the server must recompute rather than serve stale results.
func TestRegisterInvalidatesCache(t *testing.T) {
	reg := costmodel.NewRegistry()
	if err := reg.RegisterHierarchy("box", costmodel.Origin2000()); err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Registry: reg})
	req := server.EvalRequest{
		Profile: "box",
		Regions: []server.RegionDecl{{Name: "U", Items: 1 << 20, Width: 8}},
		Pattern: "r_trav(U)",
	}
	first := s.Evaluate(req)
	if first.Error != "" {
		t.Fatal(first.Error)
	}
	if again := s.Evaluate(req); !again.Cached {
		t.Error("repeat evaluation not cached")
	}

	if err := reg.RegisterHierarchy("box", costmodel.SmallTest()); err != nil {
		t.Fatal(err)
	}
	after := s.Evaluate(req)
	if after.Cached {
		t.Error("stale cache entry served after profile re-registration")
	}
	if after.MemoryNS == first.MemoryNS {
		t.Error("re-registered profile produced identical cost; key likely ignored hardware")
	}
}

// TestCacheIgnoresCPUNS pins the cache-key design: T_cpu is pure
// addition (Eq. 6.1), so re-costing one pattern under varying CPU
// estimates must stay a cache hit with a correctly adjusted total.
func TestCacheIgnoresCPUNS(t *testing.T) {
	s := server.New(server.Config{})
	req := server.EvalRequest{
		Profile: "small-test",
		Regions: []server.RegionDecl{{Name: "U", Items: 1000, Width: 8}},
		Pattern: "s_trav(U)",
	}
	first := s.Evaluate(req)
	if first.Error != "" {
		t.Fatal(first.Error)
	}
	req.CPUNS = 5e6
	second := s.Evaluate(req)
	if !second.Cached {
		t.Error("changing cpu_ns broke the cache hit")
	}
	if want := first.MemoryNS + 5e6; second.TotalNS != want {
		t.Errorf("total_ns = %g, want memory %g + cpu 5e6 = %g", second.TotalNS, first.MemoryNS, want)
	}
}

// TestCacheUnpoisonable: callers own returned results; mutating one
// must not corrupt later cache hits.
func TestCacheUnpoisonable(t *testing.T) {
	s := server.New(server.Config{})
	req := server.EvalRequest{
		Profile: "small-test",
		Regions: []server.RegionDecl{{Name: "U", Items: 1000, Width: 8}},
		Pattern: "s_trav(U)",
	}
	first := s.Evaluate(req)
	if first.Error != "" {
		t.Fatal(first.Error)
	}
	wantMem, wantSeq := first.MemoryNS, first.Levels[0].SeqMisses
	first.MemoryNS = -1
	first.Levels[0].SeqMisses = -1

	second := s.Evaluate(req)
	if !second.Cached {
		t.Fatal("expected a cache hit")
	}
	if second.MemoryNS != wantMem || second.Levels[0].SeqMisses != wantSeq {
		t.Errorf("mutating a returned result poisoned the cache: got (%g, %g), want (%g, %g)",
			second.MemoryNS, second.Levels[0].SeqMisses, wantMem, wantSeq)
	}
	second.Levels[0].SeqMisses = -2
	third := s.Evaluate(req)
	if third.Levels[0].SeqMisses != wantSeq {
		t.Error("mutating a cache-hit result poisoned the cache")
	}
}

func TestLRUEviction(t *testing.T) {
	s := server.New(server.Config{CacheSize: 4})
	for i := 0; i < 16; i++ {
		res := s.Evaluate(server.EvalRequest{
			Profile: "small-test",
			Regions: []server.RegionDecl{{Name: "U", Items: int64(1000 + i), Width: 8}},
			Pattern: "s_trav(U)",
		})
		if res.Error != "" {
			t.Fatal(res.Error)
		}
	}
	if got := s.CacheLen(); got > 4 {
		t.Errorf("cache grew to %d entries, cap 4", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	s := server.New(server.Config{CacheSize: -1})
	req := server.EvalRequest{
		Profile: "small-test",
		Regions: []server.RegionDecl{{Name: "U", Items: 1000, Width: 8}},
		Pattern: "s_trav(U)",
	}
	s.Evaluate(req)
	if res := s.Evaluate(req); res.Cached {
		t.Error("caching disabled but result marked cached")
	}
	if s.CacheLen() != 0 {
		t.Errorf("CacheLen = %d with caching disabled", s.CacheLen())
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	resp, err := http.Get(ts.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/profiles", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/profiles: status %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentBatches hammers one server from several goroutines so
// the race detector can chew on the worker pool and the LRU.
func TestConcurrentBatches(t *testing.T) {
	s := server.New(server.Config{Workers: 3, CacheSize: 8})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var reqs []server.EvalRequest
			for i := 0; i < 6; i++ {
				reqs = append(reqs, server.EvalRequest{
					Profile: "small-test",
					Regions: []server.RegionDecl{{Name: "U", Items: int64(500 + (g+i)%4), Width: 8}},
					Pattern: fmt.Sprintf("rr_trav(%d, U)", 1+(g+i)%3),
				})
			}
			for _, r := range s.EvaluateBatch(reqs) {
				if r.Error != "" {
					done <- fmt.Errorf("batch item failed: %s", r.Error)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestResultCacheCanonicalKey: the result cache is keyed by the
// pattern's canonical form, so different spellings of the same access
// behaviour — here ⊙ operands in swapped order — share one entry.
func TestResultCacheCanonicalKey(t *testing.T) {
	srv, _ := newTestServer(t, server.Config{Workers: 1})
	regions := []server.RegionDecl{
		{Name: "U", Items: 1 << 16, Width: 16},
		{Name: "V", Items: 1 << 15, Width: 16},
	}
	a := srv.Evaluate(server.EvalRequest{
		Profile: "origin2000", Regions: regions,
		Pattern: "s_trav(U) (.) r_trav(V)",
	})
	if a.Error != "" || a.Cached {
		t.Fatalf("first request: %+v", a)
	}
	b := srv.Evaluate(server.EvalRequest{
		Profile: "origin2000", Regions: regions,
		Pattern: "r_trav(V) (.) s_trav(U)", // ⊙ is commutative
	})
	if b.Error != "" {
		t.Fatalf("second request: %+v", b)
	}
	if !b.Cached {
		t.Error("swapped ⊙ operands missed the cache; canonical keying broken")
	}
	if b.MemoryNS != a.MemoryNS {
		t.Errorf("memory_ns differs: %g vs %g", a.MemoryNS, b.MemoryNS)
	}
	// The cached hit must still echo *this* request's spelling, not
	// the spelling that populated the entry.
	if a.Pattern == b.Pattern {
		t.Errorf("cached hit echoed the other request's pattern: %q", b.Pattern)
	}

	// Explained results follow the spelling's tree shape, so the two
	// spellings must NOT share an explained cache entry.
	ea := srv.Evaluate(server.EvalRequest{
		Profile: "origin2000", Regions: regions,
		Pattern: "s_trav(U) (.) r_trav(V)", Explain: true,
	})
	eb := srv.Evaluate(server.EvalRequest{
		Profile: "origin2000", Regions: regions,
		Pattern: "r_trav(V) (.) s_trav(U)", Explain: true,
	})
	if ea.Error != "" || eb.Error != "" {
		t.Fatalf("explain requests failed: %+v / %+v", ea, eb)
	}
	if eb.Cached {
		t.Error("explained result shared a cache entry across spellings")
	}
	if len(eb.Explain) < 3 || eb.Explain[1].Pattern == ea.Explain[1].Pattern {
		t.Errorf("explain breakdown not spelling-specific: %+v vs %+v", ea.Explain, eb.Explain)
	}
}

// TestCompileCacheSharedAcrossProfiles: evaluating the same pattern on
// different profiles must compile once — the second evaluation is a
// result-cache miss (different profile) but a compile-cache hit.
func TestCompileCacheSharedAcrossProfiles(t *testing.T) {
	srv, _ := newTestServer(t, server.Config{Workers: 1})
	regions := []server.RegionDecl{{Name: "U", Items: 1 << 16, Width: 16}}
	for _, profile := range []string{"origin2000", "modern-x86", "small-test"} {
		res := srv.Evaluate(server.EvalRequest{
			Profile: profile, Regions: regions, Pattern: "rr_trav(3, U)",
		})
		if res.Error != "" || res.Cached {
			t.Fatalf("%s: %+v", profile, res)
		}
	}
	st := srv.CompileCacheStats()
	if st.Misses != 1 {
		t.Errorf("compile misses = %d, want 1 (one pattern)", st.Misses)
	}
	if st.Hits != 2 {
		t.Errorf("compile hits = %d, want 2 (two further profiles)", st.Hits)
	}
	if st.Entries != 1 {
		t.Errorf("compile cache entries = %d, want 1", st.Entries)
	}
}

// TestHealthzCompileCacheCounters: the counters surface on /healthz.
func TestHealthzCompileCacheCounters(t *testing.T) {
	srv, ts := newTestServer(t, server.Config{Workers: 1})
	srv.Evaluate(server.EvalRequest{
		Profile: "origin2000",
		Regions: []server.RegionDecl{{Name: "U", Items: 4096, Width: 16}},
		Pattern: "s_trav(U)",
	})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status       string `json:"status"`
		CompileCache struct {
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
			Entries int    `json:"entries"`
		} `json:"compile_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Errorf("status = %q", body.Status)
	}
	if body.CompileCache.Misses != 1 || body.CompileCache.Entries != 1 {
		t.Errorf("compile_cache = %+v, want 1 miss / 1 entry", body.CompileCache)
	}
}

// TestCompileCacheDisabled: negative CompileCacheSize disables
// interning; every evaluation re-compiles and still works.
func TestCompileCacheDisabled(t *testing.T) {
	srv, _ := newTestServer(t, server.Config{Workers: 1, CompileCacheSize: -1, CacheSize: -1})
	regions := []server.RegionDecl{{Name: "U", Items: 4096, Width: 16}}
	for i := 0; i < 3; i++ {
		res := srv.Evaluate(server.EvalRequest{Profile: "origin2000", Regions: regions, Pattern: "s_trav(U)"})
		if res.Error != "" {
			t.Fatalf("evaluation %d: %+v", i, res)
		}
	}
	st := srv.CompileCacheStats()
	if st.Hits != 0 || st.Misses != 3 || st.Entries != 0 {
		t.Errorf("disabled compile cache stats = %+v, want 0 hits / 3 misses / 0 entries", st)
	}
}
