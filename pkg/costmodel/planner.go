package costmodel

import "repro/internal/planner"

// Planner surface: a miniature cost-based physical optimizer built on
// the model — the consumer the paper designed the model for. Given
// logical data volumes it enumerates candidate physical plans, costs
// each one's access pattern, and ranks them cheapest first.
//
// Beyond single operators, Planner.QueryCandidates / QueryPlans /
// BestQueryPlan rank whole query plans (join tree plus an algorithm
// choice per operator) for a logical query, searched by the two-phase
// DP optimizer — memoized connected subgraphs, bushy trees, top-k
// pruning, exact re-cost of the survivors (docs/optimizer.md). The
// *Search variants take SearchOptions (strategy, top-k, bushy on/off);
// package repro/pkg/costmodel/scenario wraps those with a ready-made
// scenario catalog.
type (
	// Planner costs candidate plans on one hardware profile.
	Planner = planner.Planner
	// Relation describes an input's logical properties (cardinality,
	// tuple width, sortedness).
	Relation = planner.Relation
	// Plan is one costed physical alternative.
	Plan = planner.Plan
	// Candidate is one enumerated physical alternative with its access
	// pattern compiled once into the cost IR; re-score it on any
	// profile with ScorePlans without re-compiling.
	Candidate = planner.Candidate
	// Algorithm identifies a physical operator implementation.
	Algorithm = planner.Algorithm
	// CPUCosts are the per-tuple T_cpu constants per algorithm step.
	CPUCosts = planner.CPUCosts
	// SearchOptions tune the query-plan search (strategy, memo top-k,
	// bushy on/off) for Planner.QueryCandidatesSearch and friends; the
	// zero value is the DP search with defaults.
	SearchOptions = planner.SearchOptions
	// SearchStrategy selects the plan-space search engine.
	SearchStrategy = planner.SearchStrategy
)

// The plan-space search strategies: the memoized DP search over
// connected subgraphs (default) and the exhaustive left-deep oracle.
const (
	SearchDP         = planner.SearchDP
	SearchExhaustive = planner.SearchExhaustive
)

// ScorePlans costs every candidate on the hierarchy from its compiled
// program (no re-compilation) and returns the plans sorted cheapest
// first. Use Planner.JoinCandidates / AggregateCandidates /
// DistinctCandidates to enumerate, then score the same candidates
// across as many profiles as needed.
func ScorePlans(h *Hierarchy, cands []Candidate) []Plan { return planner.ScoreOn(h, cands) }

// The planner's physical algorithm inventory, re-exported.
const (
	NestedLoopJoin      = planner.NestedLoopJoin
	MergeJoin           = planner.MergeJoin
	SortMergeJoin       = planner.SortMergeJoin
	HashJoin            = planner.HashJoin
	PartitionedHashJoin = planner.PartitionedHashJoin
	QuickSort           = planner.QuickSort
	HashAggregate       = planner.HashAggregate
	SortAggregate       = planner.SortAggregate
	HashDistinct        = planner.HashDistinct
	SortDistinct        = planner.SortDistinct
)

// NewPlanner creates a planner for the hierarchy.
func NewPlanner(h *Hierarchy) (*Planner, error) { return planner.New(h) }

// DefaultCPUCosts returns the planner's default per-tuple CPU cost
// constants.
func DefaultCPUCosts() CPUCosts { return planner.DefaultCPU() }
