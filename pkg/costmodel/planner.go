package costmodel

import "repro/internal/planner"

// Planner surface: a miniature cost-based physical optimizer built on
// the model — the consumer the paper designed the model for. Given
// logical data volumes it enumerates candidate physical plans, costs
// each one's access pattern, and ranks them cheapest first.
type (
	// Planner costs candidate plans on one hardware profile.
	Planner = planner.Planner
	// Relation describes an input's logical properties (cardinality,
	// tuple width, sortedness).
	Relation = planner.Relation
	// Plan is one costed physical alternative.
	Plan = planner.Plan
	// Algorithm identifies a physical operator implementation.
	Algorithm = planner.Algorithm
	// CPUCosts are the per-tuple T_cpu constants per algorithm step.
	CPUCosts = planner.CPUCosts
)

// The planner's physical algorithm inventory, re-exported.
const (
	NestedLoopJoin      = planner.NestedLoopJoin
	MergeJoin           = planner.MergeJoin
	SortMergeJoin       = planner.SortMergeJoin
	HashJoin            = planner.HashJoin
	PartitionedHashJoin = planner.PartitionedHashJoin
	QuickSort           = planner.QuickSort
	HashAggregate       = planner.HashAggregate
	SortAggregate       = planner.SortAggregate
	HashDistinct        = planner.HashDistinct
	SortDistinct        = planner.SortDistinct
)

// NewPlanner creates a planner for the hierarchy.
func NewPlanner(h *Hierarchy) (*Planner, error) { return planner.New(h) }

// DefaultCPUCosts returns the planner's default per-tuple CPU cost
// constants.
func DefaultCPUCosts() CPUCosts { return planner.DefaultCPU() }
