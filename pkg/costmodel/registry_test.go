package costmodel_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/pkg/costmodel"
)

// TestRegistryConcurrentRegisterAndLookup hammers one registry from
// many goroutines mixing Register, RegisterHierarchy, Profile, Model,
// Names and Version. It asserts nothing beyond internal consistency —
// its job is to fail under `go test -race` if the registry's locking
// regresses (CI runs the race detector; calibration registering
// profiles while the server evaluates is exactly this interleaving).
func TestRegistryConcurrentRegisterAndLookup(t *testing.T) {
	reg := costmodel.NewRegistry()
	const (
		writers    = 4
		readers    = 4
		iterations = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				name := fmt.Sprintf("w%d-%d", w, i%8)
				if err := reg.Register(name, costmodel.SmallTest); err != nil {
					t.Errorf("Register(%s): %v", name, err)
					return
				}
				if err := reg.RegisterHierarchy(name+"-h", costmodel.SmallTest()); err != nil {
					t.Errorf("RegisterHierarchy(%s): %v", name, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				// Built-ins are always resolvable, even mid-Register.
				h, err := reg.Profile("origin2000")
				if err != nil {
					t.Errorf("Profile: %v", err)
					return
				}
				if err := h.Validate(); err != nil {
					t.Errorf("Profile returned invalid hierarchy: %v", err)
					return
				}
				if _, err := reg.Model("small-test"); err != nil {
					t.Errorf("Model: %v", err)
					return
				}
				if names := reg.Names(); len(names) < 3 {
					t.Errorf("Names shrank to %v", names)
					return
				}
				_ = reg.Version()
				// Freshly written names must resolve once Register
				// returned (read-your-writes through the lock).
				name := fmt.Sprintf("w%d-%d", r%4, i%8)
				if _, err := reg.Profile(name); err == nil {
					continue // may or may not exist yet; both fine
				}
			}
		}(r)
	}
	wg.Wait()

	// Version must have advanced by exactly the number of successful
	// registrations (2 per writer iteration).
	if got, want := reg.Version(), uint64(writers*iterations*2); got != want {
		t.Errorf("Version = %d, want %d", got, want)
	}
}

// TestRegistryConcurrentProfileIsolation verifies that concurrent callers never
// share hierarchy memory: mutating one returned profile must not leak
// into another.
func TestRegistryConcurrentProfileIsolation(t *testing.T) {
	reg := costmodel.NewRegistry()
	if err := reg.RegisterHierarchy("frozen", costmodel.SmallTest()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h, err := reg.Profile("frozen")
				if err != nil {
					t.Error(err)
					return
				}
				if h.Levels[0].Capacity != 1<<10 {
					t.Errorf("profile mutated by another goroutine: %+v", h.Levels[0])
					return
				}
				h.Levels[0].Capacity = int64(i) // scribble on the copy
			}
		}(i)
	}
	wg.Wait()
}
