package costmodel_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/pkg/costmodel"
)

// TestRegistryConcurrentRegisterAndLookup hammers one registry from
// many goroutines mixing Register, RegisterHierarchy, Profile, Model,
// Names and Version. It asserts nothing beyond internal consistency —
// its job is to fail under `go test -race` if the registry's locking
// regresses (CI runs the race detector; calibration registering
// profiles while the server evaluates is exactly this interleaving).
func TestRegistryConcurrentRegisterAndLookup(t *testing.T) {
	reg := costmodel.NewRegistry()
	const (
		writers    = 4
		readers    = 4
		iterations = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				name := fmt.Sprintf("w%d-%d", w, i%8)
				if err := reg.Register(name, costmodel.SmallTest); err != nil {
					t.Errorf("Register(%s): %v", name, err)
					return
				}
				if err := reg.RegisterHierarchy(name+"-h", costmodel.SmallTest()); err != nil {
					t.Errorf("RegisterHierarchy(%s): %v", name, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				// Built-ins are always resolvable, even mid-Register.
				h, err := reg.Profile("origin2000")
				if err != nil {
					t.Errorf("Profile: %v", err)
					return
				}
				if err := h.Validate(); err != nil {
					t.Errorf("Profile returned invalid hierarchy: %v", err)
					return
				}
				if _, err := reg.Model("small-test"); err != nil {
					t.Errorf("Model: %v", err)
					return
				}
				if names := reg.Names(); len(names) < 3 {
					t.Errorf("Names shrank to %v", names)
					return
				}
				_ = reg.Version()
				// Freshly written names must resolve once Register
				// returned (read-your-writes through the lock).
				name := fmt.Sprintf("w%d-%d", r%4, i%8)
				if _, err := reg.Profile(name); err == nil {
					continue // may or may not exist yet; both fine
				}
			}
		}(r)
	}
	wg.Wait()

	// Version must have advanced by exactly the number of successful
	// registrations (2 per writer iteration).
	if got, want := reg.Version(), uint64(writers*iterations*2); got != want {
		t.Errorf("Version = %d, want %d", got, want)
	}
}

// TestRegisterRejectsBadGeometry registers hierarchies whose fields are
// individually plausible but whose geometry the measurement backends
// cannot index (non-power-of-two line size or set count). Register must
// return a descriptive error at registration time — not panic later
// when a validation sweep first builds a simulator for the profile.
func TestRegisterRejectsBadGeometry(t *testing.T) {
	reg := costmodel.NewRegistry()
	base := func() *costmodel.Hierarchy { return costmodel.SmallTest() }

	cases := []struct {
		name    string
		mutate  func(h *costmodel.Hierarchy)
		wantErr string
	}{
		{"non-pow2 line size", func(h *costmodel.Hierarchy) {
			h.Levels[0].LineSize = 48
			h.Levels[0].Capacity = 48 * 64
		}, "not a power of two"},
		{"non-pow2 set count", func(h *costmodel.Hierarchy) {
			h.Levels[0].Capacity = 96 * h.Levels[0].LineSize
			h.Levels[0].Associativity = 2
		}, "set count"},
		{"ways not dividing lines", func(h *costmodel.Hierarchy) {
			h.Levels[0].Associativity = 3
		}, "not divisible by associativity"},
	}
	for _, tc := range cases {
		h := base()
		tc.mutate(h)
		err := reg.Register("bad-"+tc.name, func() *costmodel.Hierarchy { return h })
		if err == nil {
			t.Errorf("%s: Register accepted an unindexable geometry", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
		if _, lookupErr := reg.Profile("bad-" + tc.name); lookupErr == nil {
			t.Errorf("%s: rejected profile still resolvable", tc.name)
		}
	}
}

// TestRegistryConcurrentProfileIsolation verifies that concurrent callers never
// share hierarchy memory: mutating one returned profile must not leak
// into another.
func TestRegistryConcurrentProfileIsolation(t *testing.T) {
	reg := costmodel.NewRegistry()
	if err := reg.RegisterHierarchy("frozen", costmodel.SmallTest()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h, err := reg.Profile("frozen")
				if err != nil {
					t.Error(err)
					return
				}
				if h.Levels[0].Capacity != 1<<10 {
					t.Errorf("profile mutated by another goroutine: %+v", h.Levels[0])
					return
				}
				h.Levels[0].Capacity = int64(i) // scribble on the copy
			}
		}(i)
	}
	wg.Wait()
}
