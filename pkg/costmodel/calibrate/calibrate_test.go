package calibrate

import (
	"context"
	"testing"

	"repro/pkg/costmodel"
)

func TestRunSimulatedRegistersUsableProfile(t *testing.T) {
	reg := costmodel.NewRegistry()
	rep, err := Run(context.Background(), Options{
		Name:         "discovered",
		SimProfile:   "small-test",
		MaxFootprint: 64 << 10,
		Registry:     reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Name != "discovered" || rep.Mode != "simulated" {
		t.Errorf("report = %+v", rep)
	}
	if len(rep.Levels) != 3 {
		t.Fatalf("discovered %d levels, want 3 (L1, TLB, L2):\n%s", len(rep.Levels), rep)
	}

	// The registered profile must be immediately usable end to end.
	model, err := reg.Model("discovered")
	if err != nil {
		t.Fatalf("Model(discovered): %v", err)
	}
	u := costmodel.NewRegion("U", 1<<16, 8)
	res, err := model.Evaluate(costmodel.STrav{R: u})
	if err != nil {
		t.Fatalf("Evaluate on calibrated profile: %v", err)
	}
	if res.MemoryTimeNS() <= 0 {
		t.Error("calibrated profile predicts zero memory time")
	}

	// The calibrated parameters should reproduce the source machine:
	// SmallTest has a 1 kB/32 B L1 and an 8 kB/64 B L2.
	if l1 := rep.Levels[0]; l1.Capacity != 1<<10 || l1.LineSize != 32 {
		t.Errorf("L1 = %+v, want 1kB/32B", l1)
	}
	if l2 := rep.Levels[2]; l2.Capacity != 8<<10 || l2.LineSize != 64 {
		t.Errorf("L2 = %+v, want 8kB/64B", l2)
	}
	if tlb := rep.Levels[1]; !tlb.TLB {
		t.Errorf("middle level not marked TLB: %+v", tlb)
	}
}

func TestRunValidateAttachesSweepReport(t *testing.T) {
	reg := costmodel.NewRegistry()
	rep, err := Run(context.Background(), Options{
		Name:          "checked",
		SimProfile:    "small-test",
		MaxFootprint:  64 << 10,
		Registry:      reg,
		Validate:      true,
		ValidateQuick: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	v := rep.Validation
	if v == nil {
		t.Fatal("Validate set but no validation report attached")
	}
	if len(v.Operators) == 0 {
		t.Fatal("validation report has no operators")
	}
	if v.MeanRelError < 0 || v.MeanRelError > 10 {
		t.Errorf("implausible mean relative error %g on the discovered profile", v.MeanRelError)
	}

	// Without Validate the report stays lean.
	rep2, err := Run(context.Background(), Options{
		Name: "unchecked", SimProfile: "small-test", MaxFootprint: 64 << 10, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Validation != nil {
		t.Error("validation report attached without Validate")
	}
}

func TestRunDefaultsNameAndRegistry(t *testing.T) {
	rep, err := Run(context.Background(), Options{
		SimProfile:   "small-test",
		MaxFootprint: 64 << 10,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Name != "calibrated" {
		t.Errorf("default name = %q", rep.Name)
	}
	if _, err := costmodel.Profile("calibrated"); err != nil {
		t.Errorf("default registry missing calibrated profile: %v", err)
	}
}

func TestRunUnknownSimProfile(t *testing.T) {
	if _, err := Run(context.Background(), Options{SimProfile: "no-such-machine", Registry: costmodel.NewRegistry()}); err == nil {
		t.Fatal("Run accepted an unknown sim profile")
	}
}

func TestRunCancelledRegistersNothing(t *testing.T) {
	reg := costmodel.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Options{Name: "x", SimProfile: "small-test", Registry: reg}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := reg.Profile("x"); err == nil {
		t.Error("cancelled run registered a profile")
	}
}

func TestReportStringRendersTable(t *testing.T) {
	reg := costmodel.NewRegistry()
	rep, err := Run(context.Background(), Options{
		Name: "r", SimProfile: "small-test", MaxFootprint: 64 << 10, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.String(); len(s) == 0 {
		t.Error("empty report string")
	}
}
