// Package calibrate turns an unknown machine into a registered hardware
// profile: it runs the paper's Calibrator (Section 7's hardware
// parameter discovery, reproduced in internal/calibrate) against the
// host — or against a simulated machine, for deterministic tests — and
// registers the discovered hierarchy in a costmodel.Registry, so every
// other entry point (Evaluate, the planner, the HTTP server) can address
// the new machine by name immediately.
//
// The typical zero-configuration flow on a new machine:
//
//	rep, err := calibrate.Run(ctx, calibrate.Options{Name: "this-box"})
//	model, err := costmodel.DefaultRegistry().Model("this-box")
//
// Host measurements are wall-clock based and inherently noisy under a
// garbage-collected runtime, so the discovered hierarchy is normalized
// (line sizes clamped to the model's outward-monotonicity invariant,
// random latency floored at sequential latency) before registration;
// the raw estimates remain available in the report.
package calibrate

import (
	"context"
	"fmt"

	"repro/internal/calibrate"
	"repro/internal/hardware"
	"repro/pkg/costmodel"
	"repro/pkg/costmodel/validate"
)

// Options configures a calibration run.
type Options struct {
	// Name is the profile name the discovered hierarchy is registered
	// under (default "calibrated"). Registering an existing name
	// replaces it and bumps the registry version.
	Name string
	// SimProfile, when non-empty, calibrates a simulated machine of the
	// named registered profile instead of the host. Simulated
	// calibration is exact and deterministic — it proves the method and
	// backs the tests; host calibration is the production path.
	SimProfile string
	// MaxFootprint bounds the sweep sizes in bytes; it must exceed the
	// outermost cache of interest (≥ 2x recommended). 0 means 64 MB on
	// the host and 4x the outermost capacity in simulated mode.
	MaxFootprint int64
	// ClockNS is the CPU cycle time recorded on the new hierarchy;
	// 0 means 1.0 (the calibrator discovers memory parameters, not the
	// clock).
	ClockNS float64
	// Registry receives the profile; nil means the package default
	// registry.
	Registry *costmodel.Registry
	// Validate, when set, runs the analytical validation grid against
	// the freshly registered hierarchy (the batched sweep path of
	// package repro/pkg/costmodel/validate) and attaches the report —
	// answering "is the discovered profile trustworthy?" in the same
	// run instead of requiring a second command.
	Validate bool
	// ValidateQuick shrinks the post-discovery validation grid to the
	// smoke sizes. Only meaningful with Validate.
	ValidateQuick bool
}

// Level is one discovered cache or TLB level, as registered.
type Level struct {
	Name             string  `json:"name"`
	Capacity         int64   `json:"capacity"`
	LineSize         int64   `json:"line_size"`
	SeqMissLatencyNS float64 `json:"seq_miss_latency_ns"`
	RndMissLatencyNS float64 `json:"rnd_miss_latency_ns"`
	TLB              bool    `json:"tlb,omitempty"`
}

// Report describes a completed calibration.
type Report struct {
	// Name is the registered profile name.
	Name string `json:"name"`
	// Mode is "host" or "simulated".
	Mode string `json:"mode"`
	// Levels are the normalized levels, innermost first.
	Levels []Level `json:"levels"`
	// Hierarchy is the registered hierarchy (a fresh copy; mutating it
	// does not affect the registry).
	Hierarchy *costmodel.Hierarchy `json:"-"`
	// Validation is the post-discovery validation sweep, present when
	// Options.Validate was set: the model's mean relative error per
	// operator on the discovered hierarchy.
	Validation *validate.Report `json:"validation,omitempty"`
}

// String renders the report in the shape of the paper's Table 3.
func (r *Report) String() string {
	return fmt.Sprintf("profile %q (%s calibration)\n%s", r.Name, r.Mode, r.Hierarchy)
}

// Run calibrates the machine selected by opts, normalizes the result
// into a valid hierarchy, registers it, and returns the report. The
// context cancels the underlying measurement sweeps; on cancellation
// nothing is registered.
func Run(ctx context.Context, opts Options) (*Report, error) {
	name := opts.Name
	if name == "" {
		name = "calibrated"
	}
	reg := opts.Registry
	if reg == nil {
		reg = costmodel.DefaultRegistry()
	}
	mode := "host"
	var source *hardware.Hierarchy
	if opts.SimProfile != "" {
		mode = "simulated"
		h, err := reg.Profile(opts.SimProfile)
		if err != nil {
			return nil, err
		}
		source = h
	}
	res, err := calibrate.Run(ctx, calibrate.Options{
		Source:       source,
		MaxFootprint: opts.MaxFootprint,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Levels) == 0 {
		return nil, fmt.Errorf("calibrate: no cache levels discovered (footprint too small?)")
	}
	clock := opts.ClockNS
	if clock == 0 {
		clock = 1.0
	}
	h := res.Hierarchy(name, clock)
	normalize(h)
	if err := reg.RegisterHierarchy(name, h); err != nil {
		return nil, fmt.Errorf("calibrate: discovered hierarchy rejected: %w", err)
	}
	rep := &Report{Name: name, Mode: mode, Hierarchy: h}
	for _, l := range h.Levels {
		rep.Levels = append(rep.Levels, Level{
			Name:             l.Name,
			Capacity:         l.Capacity,
			LineSize:         l.LineSize,
			SeqMissLatencyNS: l.SeqMissLatency,
			RndMissLatencyNS: l.RndMissLatency,
			TLB:              l.TLB,
		})
	}
	if opts.Validate {
		vrep, err := validate.Run(ctx, validate.Options{
			Hierarchy: h,
			Quick:     opts.ValidateQuick,
			Backend:   validate.BackendAnalytical,
		})
		if err != nil {
			return nil, fmt.Errorf("calibrate: post-discovery validation: %w", err)
		}
		rep.Validation = vrep
	}
	return rep, nil
}

// normalize repairs the estimate noise host calibration can introduce,
// so the discovered hierarchy satisfies hardware.Hierarchy.Validate:
//
//   - a level whose line estimate exceeds its capacity is clamped to one
//     line spanning the level;
//   - data-cache line sizes are raised to be non-decreasing outwards
//     (capacities already ascend by construction of the capacity sweep);
//   - random miss latency is floored at sequential miss latency.
//
// Capacities and line sizes come out of power-of-two sweeps, so the
// clamps preserve the capacity-divisible-by-line invariant.
func normalize(h *hardware.Hierarchy) {
	var prevLine int64
	for i := range h.Levels {
		l := &h.Levels[i]
		if l.LineSize > l.Capacity {
			l.LineSize = l.Capacity
		}
		if !l.TLB {
			if l.LineSize < prevLine {
				l.LineSize = prevLine
			}
			if l.LineSize > l.Capacity {
				// Raising the line overran a noisy small capacity
				// estimate; grow the capacity to hold one line.
				l.Capacity = l.LineSize
			}
			prevLine = l.LineSize
		}
		if l.RndMissLatency < l.SeqMissLatency {
			l.RndMissLatency = l.SeqMissLatency
		}
	}
}
