// Package validate checks the cost model against reference simulation:
// it sweeps every operator pattern of the engine (scan, sort, merge- and
// hash-join, partitioning, multi-pass radix partitioning, B-tree lookup
// batches, aggregation) across data sizes, runs each operator in
// simulated memory with the cache simulator counting misses, and reports
// the relative error between the model's predicted memory time (Eq. 3.1)
// and the simulator's latency-scored measurement — the paper's Section 6
// validation methodology, condensed into one number per operator.
//
// Because both sides price misses with the same per-level latencies, the
// relative error isolates miss-count accuracy: it answers "how well do
// Eqs. 4.2–4.9 and the Section 5 combination rules predict this
// hierarchy" for every operator at once. Use it after calibrating a new
// machine (package repro/pkg/costmodel/calibrate) to see whether the
// discovered profile is trustworthy before optimizing against it.
//
//	rep, err := validate.Run(ctx, validate.Options{Profile: "origin2000", Quick: true})
//	fmt.Printf("mean relative error: %.3f\n", rep.MeanRelError)
//
// The same harness backs `costmodel validate` (whose -json flag writes
// the BENCH_validate.json trajectory file) and the server's
// GET /v1/validate endpoint.
package validate

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/experiments"
	"repro/pkg/costmodel"
)

// ErrInvalidOptions marks caller mistakes in Options (unknown profile
// or operator, undersized sweep, invalid hierarchy), as opposed to
// internal sweep failures; test with errors.Is.
var ErrInvalidOptions = experiments.ErrInvalidConfig

// Options configures a validation sweep.
type Options struct {
	// Profile names the registered hardware profile to validate
	// (default "origin2000"). Ignored when Hierarchy is set.
	Profile string
	// Hierarchy validates an explicit hierarchy instead of a registered
	// profile.
	Hierarchy *costmodel.Hierarchy
	// Registry resolves Profile; nil means the package default.
	Registry *costmodel.Registry
	// Operators selects operators by name (default Operators()).
	Operators []string
	// Sizes are the swept relation sizes in bytes (default
	// 128 kB / 512 kB / 2 MB; Quick shrinks to 32 kB / 128 kB).
	Sizes []int64
	// Quick selects the small size set for smoke runs.
	Quick bool
	// Workers bounds concurrently simulated grid points; 0 means
	// GOMAXPROCS.
	Workers int
	// Seed drives workload generation (default 42).
	Seed uint64
}

// Report is a full validation report; it marshals to the
// BENCH_validate.json schema (see docs/validation.md).
type Report = experiments.Validation

// OperatorReport aggregates one operator's sweep.
type OperatorReport = experiments.OperatorValidation

// Point is one (operator, size) measurement.
type Point = experiments.ValidationPoint

// Operators lists the names of all validated operators.
func Operators() []string { return experiments.ValidationOperators() }

// DefaultWorkers returns the worker-pool size used when Options.Workers
// is 0.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run executes the validation sweep described by opts. Grid points run
// concurrently on a bounded worker pool; the context cancels the sweep
// between points.
func Run(ctx context.Context, opts Options) (*Report, error) {
	hier := opts.Hierarchy
	if hier == nil {
		reg := opts.Registry
		if reg == nil {
			reg = costmodel.DefaultRegistry()
		}
		name := opts.Profile
		if name == "" {
			name = "origin2000"
		}
		h, err := reg.Profile(name)
		if err != nil {
			return nil, fmt.Errorf("validate: %w: %v", ErrInvalidOptions, err)
		}
		hier = h
	}
	return experiments.RunValidation(ctx, experiments.ValidationConfig{
		Hier:      hier,
		Sizes:     opts.Sizes,
		Operators: opts.Operators,
		Quick:     opts.Quick,
		Seed:      opts.Seed,
		Workers:   opts.Workers,
	})
}
