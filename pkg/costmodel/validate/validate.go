// Package validate checks the cost model against a reference
// measurement: it sweeps every operator pattern of the engine (scan,
// sort, merge- and hash-join, partitioning, multi-pass radix
// partitioning, B-tree lookup batches, aggregation) across data sizes,
// measures each grid point with the selected backend, and reports the
// relative error between the model's predicted memory time (Eq. 3.1)
// and the latency-scored measurement — the paper's Section 6 validation
// methodology, condensed into one number per operator.
//
// Two backends produce the measured side. BackendTrace (the default)
// runs the operator in simulated memory with the cache simulator
// counting misses — the slow oracle that observes real engine code.
// BackendAnalytical prices the operator's declared pattern with the
// stack-distance model in internal/cachemodel; no trace is generated,
// which makes the full grid ~two orders of magnitude faster and cheap
// enough to run on every CI push. Options.CrossCheck runs both and
// attaches their per-operator disagreement, gated against committed
// tolerances (see docs/validation.md).
//
// Because both sides price misses with the same per-level latencies, the
// relative error isolates miss-count accuracy: it answers "how well do
// Eqs. 4.2–4.9 and the Section 5 combination rules predict this
// hierarchy" for every operator at once. Use it after calibrating a new
// machine (package repro/pkg/costmodel/calibrate) to see whether the
// discovered profile is trustworthy before optimizing against it.
//
//	rep, err := validate.Run(ctx, validate.Options{Profile: "origin2000", Quick: true})
//	fmt.Printf("mean relative error: %.3f\n", rep.MeanRelError)
//
// The same harness backs `costmodel validate` (whose -json flag writes
// the BENCH_validate.json trajectory file) and the server's
// GET /v1/validate endpoint.
package validate

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/experiments"
	"repro/pkg/costmodel"
)

// ErrInvalidOptions marks caller mistakes in Options (unknown profile
// or operator, undersized sweep, invalid hierarchy), as opposed to
// internal sweep failures; test with errors.Is.
var ErrInvalidOptions = experiments.ErrInvalidConfig

// Options configures a validation sweep.
type Options struct {
	// Profile names the registered hardware profile to validate
	// (default "origin2000"). Ignored when Hierarchy is set.
	Profile string
	// Hierarchy validates an explicit hierarchy instead of a registered
	// profile.
	Hierarchy *costmodel.Hierarchy
	// Registry resolves Profile; nil means the package default.
	Registry *costmodel.Registry
	// Operators selects operators by name (default Operators()).
	Operators []string
	// Sizes are the swept relation sizes in bytes (default
	// 128 kB / 512 kB / 2 MB; Quick shrinks to 32 kB / 128 kB).
	Sizes []int64
	// Quick selects the small size set for smoke runs.
	Quick bool
	// Workers bounds concurrently simulated grid points; 0 means
	// GOMAXPROCS.
	Workers int
	// Seed drives workload generation (default 42).
	Seed uint64
	// Backend selects the measurement backend: BackendTrace replays
	// operators through the cache simulator (slow oracle, default);
	// BackendAnalytical prices the declared patterns with the
	// stack-distance model (~two orders of magnitude faster).
	Backend Backend
	// CrossCheck runs both backends on the same grid and attaches the
	// per-operator disagreement and wall-clock speedup to the report
	// (Report.CrossCheck). The reported points are the analytical
	// backend's; Backend is ignored.
	CrossCheck bool
	// PointLoop opts out of the batched grid-sweep fast path
	// (package repro/internal/sweep) and evaluates every grid point
	// through the original point-at-a-time pipeline. The numbers are
	// bit-identical either way; this exists as the benchmark baseline
	// and a debugging fallback.
	PointLoop bool
}

// Backend selects how the measured side of the sweep is produced.
type Backend = experiments.Backend

// The supported backends.
const (
	BackendTrace      = experiments.BackendTrace
	BackendAnalytical = experiments.BackendAnalytical
)

// Backends lists the supported validation backends.
func Backends() []Backend { return experiments.Backends() }

// Report is a full validation report; it marshals to the
// BENCH_validate.json schema (see docs/validation.md).
type Report = experiments.Validation

// OperatorReport aggregates one operator's sweep.
type OperatorReport = experiments.OperatorValidation

// Point is one (operator, size) measurement.
type Point = experiments.ValidationPoint

// Operators lists the names of all validated operators.
func Operators() []string { return experiments.ValidationOperators() }

// DefaultWorkers returns the worker-pool size used when Options.Workers
// is 0.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run executes the validation sweep described by opts. Grid points run
// concurrently on a bounded worker pool; the context cancels the sweep
// between points.
func Run(ctx context.Context, opts Options) (*Report, error) {
	hier := opts.Hierarchy
	if hier == nil {
		reg := opts.Registry
		if reg == nil {
			reg = costmodel.DefaultRegistry()
		}
		name := opts.Profile
		if name == "" {
			name = "origin2000"
		}
		h, err := reg.Profile(name)
		if err != nil {
			return nil, fmt.Errorf("validate: %w: %v", ErrInvalidOptions, err)
		}
		hier = h
	}
	vcfg := experiments.ValidationConfig{
		Hier:      hier,
		Sizes:     opts.Sizes,
		Operators: opts.Operators,
		Quick:     opts.Quick,
		Seed:      opts.Seed,
		Workers:   opts.Workers,
		Backend:   opts.Backend,
		PointLoop: opts.PointLoop,
	}
	if opts.CrossCheck {
		return experiments.RunCrossCheck(ctx, vcfg)
	}
	return experiments.RunValidation(ctx, vcfg)
}
