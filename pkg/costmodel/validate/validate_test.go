package validate

import (
	"context"
	"encoding/json"
	"testing"

	"repro/pkg/costmodel"
)

func smallOpts() Options {
	return Options{
		Profile: "small-test",
		Sizes:   []int64{4 << 10, 16 << 10},
		Quick:   true,
	}
}

func TestRunByProfileName(t *testing.T) {
	rep, err := Run(context.Background(), smallOpts())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Profile != "small-test" {
		t.Errorf("profile = %q", rep.Profile)
	}
	if got, want := len(rep.Operators), len(Operators()); got != want {
		t.Fatalf("%d operators, want %d", got, want)
	}
	if rep.MeanRelError <= 0 {
		t.Error("zero overall relative error is implausible for a real sweep")
	}
}

func TestRunUnknownProfile(t *testing.T) {
	if _, err := Run(context.Background(), Options{Profile: "no-such-machine"}); err == nil {
		t.Fatal("Run accepted an unknown profile")
	}
}

func TestRunExplicitHierarchy(t *testing.T) {
	rep, err := Run(context.Background(), Options{
		Hierarchy: costmodel.SmallTest(),
		Sizes:     []int64{4 << 10},
		Operators: []string{"scan"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Operators) != 1 || rep.Operators[0].Operator != "scan" {
		t.Fatalf("operators = %+v", rep.Operators)
	}
}

func TestReportJSONSchema(t *testing.T) {
	opts := smallOpts()
	opts.Operators = []string{"scan", "aggregate"}
	rep, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Profile   string `json:"profile"`
		Operators []struct {
			Operator     string  `json:"operator"`
			Pattern      string  `json:"pattern"`
			MeanRelError float64 `json:"mean_rel_error"`
			Points       []struct {
				Bytes       int64   `json:"bytes"`
				MeasuredNS  float64 `json:"measured_ns"`
				PredictedNS float64 `json:"predicted_ns"`
				RelError    float64 `json:"rel_error"`
			} `json:"points"`
		} `json:"operators"`
		MeanRelError *float64 `json:"mean_rel_error"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Profile != "small-test" || len(decoded.Operators) != 2 {
		t.Errorf("decoded = %+v", decoded)
	}
	if decoded.MeanRelError == nil {
		t.Error("mean_rel_error missing from JSON")
	}
	for _, op := range decoded.Operators {
		if op.Pattern == "" || len(op.Points) != 2 {
			t.Errorf("operator %q malformed: %+v", op.Operator, op)
		}
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, smallOpts()); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
