package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/pkg/costmodel/calibrate"
)

// runCalibrate discovers this machine's cache hierarchy (the paper's
// Calibrator) and registers it as a named hardware profile:
//
//	costmodel calibrate                       # calibrate the host
//	costmodel calibrate -name this-box -json  # machine-readable output
//	costmodel calibrate -sim origin2000       # deterministic simulated run
//
// Host calibration is wall-clock based: expect a minute of memory
// sweeps and treat latencies as estimates (docs/calibration.md explains
// how to read the output). Ctrl-C cancels cleanly.
func runCalibrate(args []string) {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	var (
		name = fs.String("name", "calibrated", "profile name to register the result under")
		sim  = fs.String("sim", "", "calibrate a simulated machine of this registered profile instead of the host: "+profileNames())
		max  = fs.Int64("max-footprint", 0, "largest sweep footprint in bytes (0 = 64 MB host / 4x outermost capacity simulated)")
		clk  = fs.Float64("clock", 1.0, "CPU cycle time in ns recorded on the profile")
		asJS = fs.Bool("json", false, "print the discovered profile as JSON instead of a table")
		vald = fs.Bool("validate", false, "run the analytical validation sweep on the discovered profile and report its mean relative error")
	)
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *sim == "" && !*asJS {
		fmt.Fprintln(os.Stderr, "calibrating host memory (best effort; expect runtime noise)...")
	}
	rep, err := calibrate.Run(ctx, calibrate.Options{
		Name:          *name,
		SimProfile:    *sim,
		MaxFootprint:  *max,
		ClockNS:       *clk,
		Validate:      *vald,
		ValidateQuick: true, // the CLI smoke check; use `costmodel validate` for the full grid
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *asJS {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Print(rep)
	}
	if v := rep.Validation; v != nil {
		fmt.Printf("\npost-discovery validation (analytical sweep): mean relative error %.4f over %d operators\n",
			v.MeanRelError, len(v.Operators))
	}
	fmt.Fprintf(os.Stderr, "registered profile %q (%d levels) in this process's registry\n", rep.Name, len(rep.Levels))
	fmt.Fprintln(os.Stderr, "note: registration does not outlive the process — to calibrate and then evaluate/validate, use `costmodel serve` and its /v1/calibrate endpoint (docs/calibration.md)")
}
