package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf, _ := io.ReadAll(r)
		done <- string(buf)
	}()
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	return <-done
}

// TestScenariosSmoke drives the `costmodel scenarios` subcommand end to
// end: catalog listing, a DP-search ranking with -topk, the exhaustive
// oracle, and the JSON output shape.
func TestScenariosSmoke(t *testing.T) {
	list := captureStdout(t, func() { runScenarios(nil) })
	for _, name := range []string{"join2-fk", "join8-chain", "join6-islands"} {
		if !strings.Contains(list, name) {
			t.Errorf("catalog listing misses %s:\n%s", name, list)
		}
	}

	dp := captureStdout(t, func() {
		runScenarios([]string{"-scenario", "join2-fk", "-search", "dp", "-topk", "2", "-top", "-1"})
	})
	if !strings.Contains(dp, "plans:") || !strings.Contains(dp, "#1") {
		t.Errorf("DP ranking output malformed:\n%s", dp)
	}

	ex := captureStdout(t, func() {
		runScenarios([]string{"-scenario", "join2-fk", "-search", "exhaustive", "-top", "-1"})
	})
	if !strings.Contains(ex, "#1") {
		t.Errorf("exhaustive ranking output malformed:\n%s", ex)
	}
	// The exhaustive space is strictly larger than the pruned DP one.
	count := func(out string) int { return strings.Count(out, "\n#") }
	if count(ex) <= count(dp) {
		t.Errorf("exhaustive printed %d plans, DP -topk 2 printed %d — want more", count(ex), count(dp))
	}

	raw := captureStdout(t, func() {
		runScenarios([]string{"-scenario", "join8-chain", "-json", "-top", "1", "-leftdeep"})
	})
	var parsed struct {
		Scenario string `json:"scenario"`
		Profile  string `json:"profile"`
		Plans    int    `json:"plans"`
		Ranking  []struct {
			Plan    string  `json:"plan"`
			TotalNS float64 `json:"total_ns"`
		} `json:"ranking"`
	}
	if err := json.Unmarshal([]byte(raw), &parsed); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, raw)
	}
	if parsed.Scenario != "join8-chain" || parsed.Plans == 0 || len(parsed.Ranking) != 1 {
		t.Errorf("unexpected JSON ranking: %+v", parsed)
	}
	if parsed.Ranking[0].TotalNS <= 0 {
		t.Errorf("non-positive plan cost: %+v", parsed.Ranking[0])
	}
}
