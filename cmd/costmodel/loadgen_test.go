package main

import (
	"testing"
	"time"
)

// TestLoadgenSmoke drives loadgenRun end to end on a tiny workload:
// every phase must complete, every serving counter must be consistent,
// and the report must carry the SLO inputs (anchor cold reference and
// warm probe). The speedup itself is asserted by CI's loadgen -check
// run, not here — a loaded test machine shouldn't flake the suite.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real searches over HTTP")
	}
	rep, err := loadgenRun(loadgenConfig{
		Profile:      "modern-x86",
		Scenarios:    []string{"join2-fk", "join3-chain-q3"},
		Duration:     300 * time.Millisecond,
		RateQPS:      30,
		InlineFrac:   0.4,
		DriftFrac:    0.3,
		BigDriftFrac: 0.1,
		Seed:         7,
		ColdIters:    1,
		Probes:       10,
		MinSpeedup:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Cold["join2-fk"].Count; got != 1 {
		t.Errorf("cold join2-fk count = %d, want 1", got)
	}
	if rep.WarmProbe.Count != 10 {
		t.Errorf("warm probe count = %d, want 10", rep.WarmProbe.Count)
	}
	if rep.WarmProbe.P99NS <= 0 {
		t.Errorf("warm probe p99 = %v, want > 0", rep.WarmProbe.P99NS)
	}
	if rep.SLO.Anchor != "join2-fk" {
		t.Errorf("SLO anchor = %q, want join2-fk", rep.SLO.Anchor)
	}
	if rep.SLO.ColdP50NS != rep.Cold["join2-fk"].P50NS {
		t.Errorf("SLO cold p50 %v != cold reference %v", rep.SLO.ColdP50NS, rep.Cold["join2-fk"].P50NS)
	}
	if rep.SLO.WarmHitP99NS != rep.WarmProbe.P99NS {
		t.Errorf("SLO warm p99 %v != probe p99 %v", rep.SLO.WarmHitP99NS, rep.WarmProbe.P99NS)
	}
	total := 0
	for served, st := range rep.Served {
		if served == "error" {
			t.Errorf("open-loop phase produced %d request errors", st.Count)
		}
		total += st.Count
	}
	if total != rep.All.Count || total == 0 {
		t.Errorf("served class counts sum to %d, all = %d", total, rep.All.Count)
	}
	if rep.HitRate < 0 || rep.HitRate > 1 {
		t.Errorf("hit rate %v out of range", rep.HitRate)
	}
	// The probe hits alone guarantee a non-zero hit counter.
	if rep.PlanCache.Hits == 0 {
		t.Error("plan cache saw no hits")
	}
}
