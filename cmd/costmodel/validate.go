package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/pkg/costmodel/validate"
)

// runValidate sweeps every operator pattern across data sizes, runs the
// operators in simulated memory, and reports the relative error between
// the model's predicted memory time and the simulator's measurement:
//
//	costmodel validate                      # full sweep on origin2000
//	costmodel validate -quick -json         # smoke sweep + BENCH_validate.json
//	costmodel validate -profile modern-x86 -ops scan,hash-join
//
// The -json trajectory file records per-operator and overall mean
// relative error (schema in docs/validation.md), so successive runs can
// be compared over the repository's history.
func runValidate(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	var (
		profile = fs.String("profile", "origin2000", "hardware profile to validate: "+profileNames())
		quick   = fs.Bool("quick", false, "small sizes for a fast smoke run")
		ops     = fs.String("ops", "", "comma-separated operator subset (default all: "+strings.Join(validate.Operators(), ",")+")")
		workers = fs.Int("workers", 0, "max concurrently simulated grid points (0 = GOMAXPROCS)")
		seed    = fs.Uint64("seed", 0, "workload seed (0 = default)")
		asJS    = fs.Bool("json", false, "also write the JSON trajectory file (-out)")
		out     = fs.String("out", "BENCH_validate.json", "path of the JSON trajectory file written with -json")
	)
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := validate.Options{
		Profile: *profile,
		Quick:   *quick,
		Workers: *workers,
		Seed:    *seed,
	}
	if *ops != "" {
		opts.Operators = strings.Split(*ops, ",")
	}
	rep, err := validate.Run(ctx, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rep.Report().Render(os.Stdout)
	fmt.Printf("\nmean relative error: %.4f (%d operators)\n", rep.MeanRelError, len(rep.Operators))

	if *asJS {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}
