package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/pkg/costmodel/validate"
)

// validateMinSpeedup is the committed wall-clock advantage the
// analytical backend must keep over the trace oracle on the validation
// grid; -check fails below it.
const validateMinSpeedup = 10

// runValidate sweeps every operator pattern across data sizes, measures
// each grid point with the selected backend, and reports the relative
// error between the model's predicted memory time and the measurement:
//
//	costmodel validate                      # trace sweep on origin2000
//	costmodel validate -quick -json         # smoke sweep + BENCH_validate.json
//	costmodel validate -backend analytical  # stack-distance backend, ~100× faster
//	costmodel validate -crosscheck -check   # both backends, gate on disagreement
//	costmodel validate -profile modern-x86 -ops scan,hash-join
//	costmodel validate -pointloop           # per-point baseline (bit-identical)
//	costmodel validate -cpuprofile v.pprof -memprofile m.pprof
//
// The -json trajectory file records per-operator and overall mean
// relative error (schema in docs/validation.md), so successive runs can
// be compared over the repository's history. -snapshot compares the
// fresh report's deterministic numbers against a committed trajectory
// file and fails on drift, like the query-plan golden corpus.
func runValidate(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	var (
		profile  = fs.String("profile", "origin2000", "hardware profile to validate: "+profileNames())
		backend  = fs.String("backend", string(validate.BackendTrace), "measurement backend: trace (simulator oracle) or analytical (stack-distance model)")
		cross    = fs.Bool("crosscheck", false, "run both backends and attach per-operator disagreement + speedup")
		check    = fs.Bool("check", false, "with -crosscheck: exit non-zero if any operator exceeds its tolerance or the speedup falls below 10x")
		quick    = fs.Bool("quick", false, "small sizes for a fast smoke run")
		ops      = fs.String("ops", "", "comma-separated operator subset (default all: "+strings.Join(validate.Operators(), ",")+")")
		workers  = fs.Int("workers", 0, "max concurrently simulated grid points (0 = GOMAXPROCS)")
		seed     = fs.Uint64("seed", 0, "workload seed (0 = default)")
		asJS     = fs.Bool("json", false, "also write the JSON trajectory file (-out)")
		out      = fs.String("out", "BENCH_validate.json", "path of the JSON trajectory file written with -json")
		snapshot = fs.String("snapshot", "", "committed trajectory file to compare deterministic numbers against (exit non-zero on drift)")
		ptLoop   = fs.Bool("pointloop", false, "opt out of the batched grid sweep and evaluate point-at-a-time (bit-identical; benchmark baseline)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = fs.String("memprofile", "", "write a post-sweep heap profile to this file")
	)
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
	}

	opts := validate.Options{
		Profile:    *profile,
		Quick:      *quick,
		Workers:    *workers,
		Seed:       *seed,
		Backend:    validate.Backend(*backend),
		CrossCheck: *cross,
		PointLoop:  *ptLoop,
	}
	if *ops != "" {
		opts.Operators = strings.Split(*ops, ",")
	}
	rep, err := validate.Run(ctx, opts)
	if *cpuProf != "" {
		// Stop before reporting so the profile covers the sweep, not the
		// JSON marshalling below (and is flushed even on a failed run).
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, merr := os.Create(*memProf)
		if merr != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", merr)
			os.Exit(1)
		}
		runtime.GC() // capture live heap after the sweep, not transient garbage
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", merr)
			os.Exit(1)
		}
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rep.Report().Render(os.Stdout)
	fmt.Printf("\nmean relative error: %.4f (%d operators, %s backend)\n",
		rep.MeanRelError, len(rep.Operators), rep.Backend)
	if cc := rep.CrossCheck; cc != nil {
		fmt.Printf("cross-check: analytical %.1fms vs trace %.1fms (%.1fx speedup)\n",
			float64(cc.AnalyticalWallNS)/1e6, float64(cc.TraceWallNS)/1e6, cc.Speedup)
		for _, occ := range cc.Operators {
			status := "ok"
			if !occ.Pass {
				status = "FAIL"
			}
			fmt.Printf("  %-12s disagreement mean %.4f max %.4f (tolerance %.2f) %s\n",
				occ.Operator, occ.MeanDisagreement, occ.MaxDisagreement, occ.Tolerance, status)
		}
	}

	if *asJS {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	if *snapshot != "" {
		raw, err := os.ReadFile(*snapshot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapshot: %v\n", err)
			os.Exit(1)
		}
		var old validate.Report
		if err := json.Unmarshal(raw, &old); err != nil {
			fmt.Fprintf(os.Stderr, "snapshot %s: %v\n", *snapshot, err)
			os.Exit(1)
		}
		if err := rep.SameNumbers(&old); err != nil {
			fmt.Fprintf(os.Stderr, "snapshot drift vs %s: %v\n", *snapshot, err)
			fmt.Fprintln(os.Stderr, "re-generate with: go run ./cmd/costmodel validate -backend analytical -crosscheck -json -out "+*snapshot)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "snapshot %s: deterministic numbers unchanged\n", *snapshot)
	}

	if *check {
		cc := rep.CrossCheck
		if cc == nil {
			fmt.Fprintln(os.Stderr, "-check requires -crosscheck")
			os.Exit(1)
		}
		failed := false
		if !cc.Pass {
			fmt.Fprintln(os.Stderr, "check: per-operator disagreement exceeds committed tolerance")
			failed = true
		}
		if cc.Speedup < validateMinSpeedup {
			fmt.Fprintf(os.Stderr, "check: analytical speedup %.1fx below the committed %dx floor\n",
				cc.Speedup, validateMinSpeedup)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "check: cross-check passed (%.1fx speedup)\n", cc.Speedup)
	}
}
