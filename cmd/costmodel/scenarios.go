package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/pkg/costmodel"
	"repro/pkg/costmodel/scenario"
	"repro/pkg/costmodel/server"
)

// runScenarios lists the scenario catalog or prices one scenario's
// physical plans on a hardware profile:
//
//	costmodel scenarios                                   # list the catalog
//	costmodel scenarios -scenario join3-chain-q3          # rank plans on origin2000
//	costmodel scenarios -scenario join2-large -profile modern-x86 -top 10 -json
//	costmodel scenarios -scenario join8-chain -search dp -topk 5
//	costmodel scenarios -scenario join4-chain -search exhaustive  # the small-query oracle
func runScenarios(args []string) {
	fs := flag.NewFlagSet("scenarios", flag.ExitOnError)
	var (
		name    = fs.String("scenario", "", "scenario to price (empty: list the catalog)")
		profile = fs.String("profile", "origin2000", "hardware profile: "+profileNames())
		top     = fs.Int("top", 5, "ranked plans to print (negative: all)")
		asJSON  = fs.Bool("json", false, "emit the ranking as JSON")
		search  = fs.String("search", "dp", "plan-space search: dp (memoized DP over connected subgraphs, bushy trees) or exhaustive (left-deep small-query oracle)")
		topk    = fs.Int("topk", 0, "subplans the DP search keeps per memo bucket (0: engine default, negative: no pruning)")
		ldeep   = fs.Bool("leftdeep", false, "restrict the DP search to left-deep join trees (bushy off)")
		par     = fs.Int("parallelism", 0, "DP memo workers per subset-size stratum (0: one per CPU, 1: single-threaded; the ranking is identical at every setting)")
	)
	fs.Parse(args)

	if *name == "" {
		fmt.Printf("%-22s %s\n", "SCENARIO", "DESCRIPTION")
		for _, sc := range scenario.Catalog() {
			fmt.Printf("%-22s %s\n", sc.Name, sc.Description)
		}
		return
	}

	sc, ok := scenario.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q (have: %v)\n", *name, scenario.Names())
		os.Exit(2)
	}
	h, err := costmodel.Profile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	so := scenario.SearchOptions{
		Strategy:     scenario.SearchStrategy(*search),
		TopK:         *topk,
		LeftDeepOnly: *ldeep,
		Parallelism:  *par,
	}
	plans, err := scenario.PricePlanSearch(h, sc.Query, so)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	n := *top
	if n < 0 || n > len(plans) {
		n = len(plans)
	}

	if *asJSON {
		// Same wire schema as POST /v1/plan's ranking.
		out := struct {
			Scenario string              `json:"scenario"`
			Profile  string              `json:"profile"`
			Plans    int                 `json:"plans"`
			Ranking  []server.RankedPlan `json:"ranking"`
		}{Scenario: sc.Name, Profile: *profile, Plans: len(plans)}
		for _, p := range plans[:n] {
			out.Ranking = append(out.Ranking, server.RankedPlan{
				Plan: string(p.Algorithm), MemoryNS: p.MemNS, CPUNS: p.CPUNS, TotalNS: p.TotalNS(),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("scenario: %s (%s)\nprofile:  %s\nplans:    %d\n\n", sc.Name, sc.Description, *profile, len(plans))
	for i, p := range plans[:n] {
		fmt.Printf("#%-3d T=%10.3fms (mem %10.3fms, cpu %10.3fms)  %s\n",
			i+1, p.TotalNS()/1e6, p.MemNS/1e6, p.CPUNS/1e6, p.Algorithm)
	}
}
