package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/pkg/costmodel/scenario"
	"repro/pkg/costmodel/server"
)

// runLoadgen drives an in-process costmodel server with an open-loop
// plan-request workload and reports serving latencies (p50/p95/p99 per
// serving path), plan-cache hit rates, and the headline serving SLO:
// a warm cache-hit p99 at least -min-speedup times faster than the
// cold full-search path on the DP-heavy anchor scenario. The report
// (BENCH_serve.json schema, see docs/serving.md) is written to -out;
// -check enforces the SLO and -snapshot gates against a committed
// reference report (1.25x tolerance), so CI fails on serving
// regressions instead of uploading worse numbers.
//
// Example:
//
//	costmodel loadgen -quick -check -out BENCH_serve.json
//	costmodel loadgen -duration 10s -rate 400 -profile modern-x86
func runLoadgen(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		profile   = fs.String("profile", "modern-x86", "hardware profile to price plans on")
		scenarios = fs.String("scenarios", "join7-star,join8-chain,join3-chain-q3,join2-fk",
			"comma-separated catalog scenarios; the first is the cold-reference SLO anchor")
		duration = fs.Duration("duration", 10*time.Second, "open-loop phase length")
		rate     = fs.Float64("rate", 300, "request arrival rate (queries per second)")
		inline   = fs.Float64("inline", 0.3, "fraction of requests spelled as renamed inline queries")
		drift    = fs.Float64("drift", 0.2, "fraction of requests with small parameter drift (revalidation path)")
		bigDrift = fs.Float64("bigdrift", 0.02, "fraction of requests with large drift (may force a full re-search)")
		seed     = fs.Int64("seed", 1, "workload RNG seed")
		coldIter = fs.Int("cold-iters", 3, "cold-reference search repetitions per scenario")
		probes   = fs.Int("probes", 200, "sequential warm cache-hit probes of the anchor scenario (the SLO numerator)")
		minSpeed = fs.Float64("min-speedup", 100, "SLO: cold p50 / warm cache-hit probe p99 on the anchor scenario")
		quick    = fs.Bool("quick", false, "CI smoke preset: 2s at 100 qps, 100 probes")
		out      = fs.String("out", "", "write the JSON report here ('' = stdout)")
		check    = fs.Bool("check", false, "fail unless the serving SLOs hold")
		snapshot = fs.String("snapshot", "", "committed reference report; fail if warm p99 or hit rate regresses beyond 1.25x")
	)
	fs.Parse(args)
	if *quick {
		*duration, *rate, *coldIter, *probes = 2*time.Second, 100, 2, 100
	}
	names := strings.Split(*scenarios, ",")
	rep, err := loadgenRun(loadgenConfig{
		Profile: *profile, Scenarios: names, Duration: *duration, RateQPS: *rate,
		InlineFrac: *inline, DriftFrac: *drift, BigDriftFrac: *bigDrift,
		Seed: *seed, ColdIters: *coldIter, Probes: *probes, MinSpeedup: *minSpeed, Quick: *quick,
	})
	if err != nil {
		log.Fatalf("costmodel loadgen: %v", err)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}

	var failures []string
	if *check {
		failures = append(failures, rep.checkSLO()...)
	}
	if *snapshot != "" {
		failures = append(failures, rep.checkSnapshot(*snapshot)...)
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "FAIL:", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

type loadgenConfig struct {
	Profile      string   `json:"profile"`
	Scenarios    []string      `json:"scenarios"`
	Duration     time.Duration `json:"-"`
	RateQPS      float64       `json:"rate_qps"`
	InlineFrac   float64 `json:"inline_frac"`
	DriftFrac    float64 `json:"drift_frac"`
	BigDriftFrac float64 `json:"bigdrift_frac"`
	Seed         int64   `json:"seed"`
	ColdIters    int     `json:"cold_iters"`
	Probes       int     `json:"probes"`
	MinSpeedup   float64 `json:"min_speedup"`
	Quick        bool    `json:"quick"`
	DurationSec  float64 `json:"duration_s"`
}

// latencyStats summarizes one serving class's arrival-to-response
// latencies (open loop: queue wait included).
type latencyStats struct {
	Count int     `json:"count"`
	P50NS float64 `json:"p50_ns"`
	P95NS float64 `json:"p95_ns"`
	P99NS float64 `json:"p99_ns"`
}

// loadgenReport is the BENCH_serve.json schema.
type loadgenReport struct {
	Config loadgenConfig `json:"config"`
	// Cold is the no-cache full-search latency per scenario (p50 over
	// ColdIters single-threaded HTTP round trips on a plan-cache-off
	// server with a warmed step cache).
	Cold map[string]latencyStats `json:"cold"`
	// WarmProbe is the sequential warm cache-hit latency on the anchor
	// scenario with no competing load — the SLO numerator. It is
	// measured the same way as Cold (single-threaded HTTP round trips),
	// so the speedup compares the serving paths, not the load mix.
	WarmProbe latencyStats `json:"warm_probe"`
	// Served classifies the open-loop phase by PlanResponse.Served.
	Served map[string]latencyStats `json:"served"`
	All    latencyStats            `json:"all"`
	// HitRate is the fraction of requests answered without a full
	// search (served == cache or revalidated).
	HitRate   float64               `json:"hit_rate"`
	PlanCache server.PlanCacheStats `json:"plan_cache"`
	SLO       sloReport             `json:"slo"`
}

type sloReport struct {
	Anchor       string  `json:"anchor"`
	ColdP50NS    float64 `json:"cold_p50_ns"`
	WarmHitP99NS float64 `json:"warm_hit_p99_ns"`
	Speedup      float64 `json:"speedup"`
	MinSpeedup   float64 `json:"min_speedup"`
	Pass         bool    `json:"pass"`
}

// minWarmP99FloorNS is the absolute floor under which warm-p99
// snapshot regressions are ignored: below ~5ms the measurement is
// dominated by scheduler and HTTP jitter, not by serving work.
const minWarmP99FloorNS = 5e6

// minHitRateFloor is the -check floor on the served-from-cache
// fraction of the open-loop phase.
const minHitRateFloor = 0.6

func (r *loadgenReport) checkSLO() []string {
	var fails []string
	if !r.SLO.Pass {
		fails = append(fails, fmt.Sprintf("serving SLO: warm cache-hit p99 %.3fms is only %.1fx faster than the cold %s search p50 %.3fms (want >= %.0fx)",
			r.SLO.WarmHitP99NS/1e6, r.SLO.Speedup, r.SLO.Anchor, r.SLO.ColdP50NS/1e6, r.SLO.MinSpeedup))
	}
	if r.HitRate < minHitRateFloor {
		fails = append(fails, fmt.Sprintf("hit rate %.3f below the %.2f floor", r.HitRate, minHitRateFloor))
	}
	return fails
}

func (r *loadgenReport) checkSnapshot(path string) []string {
	buf, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("snapshot %s: %v", path, err)}
	}
	var ref loadgenReport
	if err := json.Unmarshal(buf, &ref); err != nil {
		return []string{fmt.Sprintf("snapshot %s: %v", path, err)}
	}
	const tolerance = 1.25
	var fails []string
	if ref.WarmProbe.P99NS > 0 {
		bound := ref.WarmProbe.P99NS * tolerance
		if bound < minWarmP99FloorNS {
			bound = minWarmP99FloorNS
		}
		if r.WarmProbe.P99NS > bound {
			fails = append(fails, fmt.Sprintf("warm cache-hit probe p99 %.3fms regressed beyond %.2fx the snapshot's %.3fms",
				r.WarmProbe.P99NS/1e6, tolerance, ref.WarmProbe.P99NS/1e6))
		}
	}
	if ref.HitRate > 0 && r.HitRate < ref.HitRate/tolerance {
		fails = append(fails, fmt.Sprintf("hit rate %.3f regressed beyond %.2fx below the snapshot's %.3f",
			r.HitRate, tolerance, ref.HitRate))
	}
	return fails
}

func loadgenRun(cfg loadgenConfig) (*loadgenReport, error) {
	cfg.DurationSec = cfg.Duration.Seconds()
	scs := make([]scenario.Scenario, len(cfg.Scenarios))
	for i, name := range cfg.Scenarios {
		name = strings.TrimSpace(name)
		sc, ok := scenario.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (have: %v)", name, scenario.Names())
		}
		cfg.Scenarios[i], scs[i] = name, sc
	}
	if len(scs) == 0 {
		return nil, fmt.Errorf("no scenarios")
	}
	rep := &loadgenReport{Config: cfg, Cold: map[string]latencyStats{}, Served: map[string]latencyStats{}}

	// Phase A: the cold reference. A plan-cache-off server prices every
	// request with a full search; one throwaway round per scenario
	// warms the process-global step-geometry cache so the reference is
	// the steady-state search cost, not first-touch interning.
	coldURL, coldClose, err := startLoadgenServer(server.Config{PlanCacheSize: -1})
	if err != nil {
		return nil, err
	}
	for _, sc := range scs {
		req := server.PlanRequest{Profile: cfg.Profile, Scenario: sc.Name}
		if _, _, err := postPlan(coldURL, req); err != nil {
			coldClose()
			return nil, fmt.Errorf("cold warmup %s: %w", sc.Name, err)
		}
		lats := make([]float64, 0, cfg.ColdIters)
		for i := 0; i < cfg.ColdIters; i++ {
			start := time.Now()
			if _, _, err := postPlan(coldURL, req); err != nil {
				coldClose()
				return nil, fmt.Errorf("cold %s: %w", sc.Name, err)
			}
			lats = append(lats, float64(time.Since(start)))
		}
		rep.Cold[sc.Name] = summarize(lats)
	}
	coldClose()

	// Phase B: the open-loop serving phase against a caching server.
	srv := server.New(server.Config{})
	url, closeSrv, err := startServerWith(srv)
	if err != nil {
		return nil, err
	}
	defer closeSrv()
	// Warm the cache (and the step cache) with one request per
	// scenario; excluded from the stats.
	for _, sc := range scs {
		if _, _, err := postPlan(url, server.PlanRequest{Profile: cfg.Profile, Scenario: sc.Name}); err != nil {
			return nil, fmt.Errorf("warmup %s: %w", sc.Name, err)
		}
	}

	// The SLO probe: sequential warm cache-hit round trips on the
	// anchor scenario before the open-loop phase touches the entry.
	// Apples-to-apples with the cold reference — both are unloaded
	// single-threaded measurements of a serving path. (Open-loop hit
	// latencies include queueing behind concurrent full searches; they
	// characterize the load mix, not the cache, and are reported
	// separately under "served".)
	anchor := scs[0].Name
	probeReq := server.PlanRequest{Profile: cfg.Profile, Scenario: anchor}
	probeLats := make([]float64, 0, cfg.Probes)
	for i := 0; i < cfg.Probes; i++ {
		probeStart := time.Now()
		served, _, err := postPlan(url, probeReq)
		if err != nil {
			return nil, fmt.Errorf("warm probe %s: %w", anchor, err)
		}
		if served != server.PlanServedCache {
			return nil, fmt.Errorf("warm probe %s: served %q, want %q", anchor, served, server.PlanServedCache)
		}
		probeLats = append(probeLats, float64(time.Since(probeStart)))
	}
	rep.WarmProbe = summarize(probeLats)

	total := int(cfg.Duration.Seconds() * cfg.RateQPS)
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.RateQPS)
	rng := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([]server.PlanRequest, total)
	for i := range reqs {
		reqs[i] = buildLoadRequest(cfg, scs[rng.Intn(len(scs))], rng)
	}

	type sample struct {
		served string
		lat    float64
	}
	samples := make([]sample, total)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < total; i++ {
		// Open loop: arrivals are scheduled on the clock, not gated on
		// completions — latency includes any queueing the server causes.
		arrival := start.Add(time.Duration(i) * interval)
		time.Sleep(time.Until(arrival))
		wg.Add(1)
		go func(i int, arrival time.Time) {
			defer wg.Done()
			served, _, err := postPlan(url, reqs[i])
			if err != nil {
				served = "error"
			}
			samples[i] = sample{served: served, lat: float64(time.Since(arrival))}
		}(i, arrival)
	}
	wg.Wait()

	byServed := map[string][]float64{}
	all := make([]float64, 0, total)
	hits := 0
	for _, s := range samples {
		byServed[s.served] = append(byServed[s.served], s.lat)
		all = append(all, s.lat)
		if s.served == server.PlanServedCache || s.served == server.PlanServedRevalidated {
			hits++
		}
	}
	for served, lats := range byServed {
		rep.Served[served] = summarize(lats)
	}
	rep.All = summarize(all)
	rep.HitRate = float64(hits) / float64(total)
	rep.PlanCache = srv.PlanCacheStats()

	rep.SLO = sloReport{
		Anchor:       anchor,
		ColdP50NS:    rep.Cold[anchor].P50NS,
		WarmHitP99NS: rep.WarmProbe.P99NS,
		MinSpeedup:   cfg.MinSpeedup,
	}
	if rep.SLO.WarmHitP99NS > 0 {
		rep.SLO.Speedup = rep.SLO.ColdP50NS / rep.SLO.WarmHitP99NS
	}
	rep.SLO.Pass = rep.SLO.Speedup >= cfg.MinSpeedup
	return rep, nil
}

// buildLoadRequest picks the request's spelling and drift class.
func buildLoadRequest(cfg loadgenConfig, sc scenario.Scenario, rng *rand.Rand) server.PlanRequest {
	req := server.PlanRequest{Profile: cfg.Profile}
	r := rng.Float64()
	driftFactor := 0.0
	switch {
	case r < cfg.BigDriftFrac:
		// Large drift: cardinalities scaled up to 5x, selectivities
		// loosened — enough to dethrone cached winners now and then
		// without turning each re-search into a multi-second monster.
		driftFactor = 1 + 4*rng.Float64()
	case r < cfg.BigDriftFrac+cfg.DriftFrac:
		// Small drift: ±2% cardinality wobble; the revalidation path.
		driftFactor = 0.98 + 0.04*rng.Float64()
	}
	if driftFactor == 0 && rng.Float64() >= cfg.InlineFrac {
		req.Scenario = sc.Name
		return req
	}
	// Inline spelling (drifted queries must inline — scenarios carry
	// fixed parameters), with relations renamed and re-ordered so the
	// renamed-hit path is exercised too.
	q := sc.Query
	pq := &server.PlanQuery{GroupBy: q.GroupBy, Distinct: q.Distinct, SortBy: q.SortBy}
	perm := rng.Perm(len(q.Relations))
	inv := make([]int, len(perm))
	for newIdx, oldIdx := range perm {
		inv[oldIdx] = newIdx
	}
	if q.Filters != nil {
		pq.Filters = make([]float64, len(q.Filters))
	}
	if q.Projections != nil {
		pq.Projections = make([]int64, len(q.Projections))
	}
	for newIdx, oldIdx := range perm {
		rel := q.Relations[oldIdx]
		tuples := rel.Tuples
		if driftFactor != 0 {
			tuples = int64(float64(tuples) * driftFactor)
			if tuples < 1 {
				tuples = 1
			}
		}
		pq.Relations = append(pq.Relations, server.PlanRelation{
			Name: fmt.Sprintf("L%d_%s", newIdx, rel.Name), Tuples: tuples, Width: rel.Width, Sorted: rel.Sorted,
		})
		if q.Filters != nil {
			pq.Filters[newIdx] = q.Filters[oldIdx]
		}
		if q.Projections != nil {
			pq.Projections[newIdx] = q.Projections[oldIdx]
		}
	}
	for _, e := range q.Joins {
		sel := e.Selectivity
		if driftFactor > 2 {
			sel = sel / driftFactor
			if sel <= 0 {
				sel = 1e-12
			}
		}
		pq.Joins = append(pq.Joins, server.PlanJoin{Left: inv[e.Left], Right: inv[e.Right], Selectivity: sel})
	}
	req.Query = pq
	return req
}

// startLoadgenServer starts a fresh in-process server on a loopback
// listener.
func startLoadgenServer(cfg server.Config) (url string, closeFn func(), err error) {
	return startServerWith(server.New(cfg))
}

func startServerWith(s *server.Server) (url string, closeFn func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { httpSrv.Close() }, nil
}

// postPlan posts one plan request and returns the Served class.
func postPlan(url string, req server.PlanRequest) (served string, res *server.PlanResponse, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", nil, err
	}
	resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	var pr server.PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return "", nil, err
	}
	if pr.Error != "" {
		return "", nil, fmt.Errorf("plan request failed: %s", pr.Error)
	}
	return pr.Served, &pr, nil
}

func summarize(lats []float64) latencyStats {
	if len(lats) == 0 {
		return latencyStats{}
	}
	sort.Float64s(lats)
	q := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	return latencyStats{Count: len(lats), P50NS: q(0.50), P95NS: q(0.95), P99NS: q(0.99)}
}
