package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/pkg/costmodel/server"
)

// runServe runs the HTTP/JSON batch evaluation service:
//
//	POST /v1/evaluate   single or batched pattern+profile evaluations
//	POST /v1/plan       whole-query plan ranking (scenario or inline query)
//	GET  /v1/profiles   registered hardware profiles
//	POST /v1/calibrate  async hardware self-calibration (GET ?id= polls)
//	GET  /v1/validate   predicted-vs-simulated validation sweep
//	GET  /healthz       liveness probe
//
// Example:
//
//	costmodel serve -addr :8080 &
//	curl -s localhost:8080/v1/evaluate -d '{
//	  "profile": "origin2000",
//	  "regions": [{"name": "U", "items": 1000000, "width": 8}],
//	  "pattern": "s_trav(U)"
//	}'
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		workers = fs.Int("workers", 0, "max concurrent evaluations (0 = GOMAXPROCS)")
		cache   = fs.Int("cache", 0, fmt.Sprintf("result cache entries (0 = %d, negative disables)", server.DefaultCacheSize))
	)
	fs.Parse(args)

	srv := server.New(server.Config{Workers: *workers, CacheSize: *cache})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Evaluations are analytic (milliseconds); full read/write
		// timeouts keep trickling clients from pinning goroutines.
		ReadTimeout:  time.Minute,
		WriteTimeout: time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	log.Printf("costmodel: serving on %s (POST /v1/evaluate, POST /v1/plan, GET /v1/profiles, POST+GET /v1/calibrate, GET /v1/validate, GET /healthz)", *addr)
	log.Fatal(httpSrv.ListenAndServe())
}
