// Command costmodel evaluates data access patterns on hardware
// profiles using the paper's generic cost model.
//
// It has six subcommands:
//
//	costmodel eval       evaluate one pattern and print per-level misses
//	                     and the memory access time (Eq. 3.1); the
//	                     default when no subcommand is given
//	costmodel scenarios  list the query-plan scenario catalog, or rank a
//	                     scenario's physical plans (join order +
//	                     algorithm choices) on a hardware profile
//	costmodel calibrate  discover this machine's (or a simulated
//	                     machine's) cache hierarchy and register it as a
//	                     hardware profile
//	costmodel validate   sweep every operator pattern and report the
//	                     relative error of the model's predictions
//	                     against reference cache simulation
//	costmodel serve      run the HTTP/JSON evaluation service (which
//	                     also exposes plan, calibrate and validate
//	                     endpoints)
//	costmodel loadgen    drive an in-process server with an open-loop
//	                     plan-request workload and report serving
//	                     latencies, plan-cache hit rates and the
//	                     committed serving SLOs (BENCH_serve.json)
//
// Regions are declared as name:items:width triples; the pattern uses
// the paper's Table 2 language with (+) for ⊕ and (.) for ⊙:
//
//	costmodel eval -region U:1000000:8 -region H:2097152:16 -region W:1000000:8 \
//	    -pattern 's_trav(U) (.) r_acc(1000000, H) (.) s_trav(W)'
//
//	costmodel eval -region U:4194304:8 \
//	    -pattern 'rs_trav(10, bi, U)' -profile modern-x86 -cpu 1e6 -explain
//
//	costmodel scenarios
//	costmodel scenarios -scenario join3-chain-q3 -profile modern-x86 -top 5
//	costmodel calibrate -name this-box
//	costmodel validate -quick -json
//	costmodel serve -addr :8080
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/pkg/costmodel"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "serve":
			runServe(args[1:])
			return
		case "calibrate":
			runCalibrate(args[1:])
			return
		case "validate":
			runValidate(args[1:])
			return
		case "scenarios":
			runScenarios(args[1:])
			return
		case "loadgen":
			runLoadgen(args[1:])
			return
		case "eval":
			args = args[1:]
		}
	}
	runEval(args)
}

type regionFlags struct {
	regions map[string]*costmodel.Region
}

func (f *regionFlags) String() string { return "" }

func (f *regionFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return fmt.Errorf("region %q: want name:items:width", v)
	}
	n, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return fmt.Errorf("region %q: bad item count", v)
	}
	w, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return fmt.Errorf("region %q: bad width", v)
	}
	f.regions[parts[0]] = costmodel.NewRegion(parts[0], n, w)
	return nil
}

func runEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	regions := &regionFlags{regions: map[string]*costmodel.Region{}}
	var (
		patternStr = fs.String("pattern", "", "pattern expression (Table 2 language)")
		profile    = fs.String("profile", "origin2000", "hardware profile: "+profileNames())
		profiles   = fs.String("profiles", "", "comma-separated profile grid (or \"all\"): compile the pattern once and evaluate it on every profile")
		cpuNS      = fs.Float64("cpu", 0, "pure CPU time T_cpu in ns (Eq. 6.1)")
		explain    = fs.Bool("explain", false, "print the per-pattern-node cost breakdown")
	)
	fs.Var(regions, "region", "region declaration name:items:width (repeatable)")
	fs.Parse(args)

	if *patternStr == "" {
		fmt.Fprintln(os.Stderr, "missing -pattern; see -h")
		os.Exit(2)
	}
	if *profiles != "" {
		runEvalGrid(*profiles, *patternStr, *cpuNS, regions.regions)
		return
	}
	model, err := costmodel.DefaultRegistry().Model(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	h := model.Hierarchy()

	p, err := costmodel.ParsePattern(*patternStr, regions.regions)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := model.Evaluate(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("profile: %s\npattern: %s\n\n", h.Name, p)
	fmt.Printf("%-6s %14s %14s %14s %14s\n", "level", "seq-misses", "rnd-misses", "total", "time[ms]")
	for _, lr := range res.PerLevel {
		fmt.Printf("%-6s %14.0f %14.0f %14.0f %14.3f\n",
			lr.Level.Name, lr.Misses.Seq, lr.Misses.Rnd, lr.Misses.Total(),
			lr.MemoryTimeNS()/1e6)
	}
	fmt.Printf("\nT_mem  = %.3f ms\n", res.MemoryTimeNS()/1e6)
	if *cpuNS > 0 {
		fmt.Printf("T_cpu  = %.3f ms\n", *cpuNS/1e6)
		fmt.Printf("T      = %.3f ms (Eq. 6.1)\n", (res.MemoryTimeNS()+*cpuNS)/1e6)
	}
	if *explain {
		ex, err := model.Explain(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		ex.Render(os.Stdout)
	}
}

// runEvalGrid evaluates one pattern across a profile grid on a single
// shared compiled program: the compile step (the swept-parameter-
// invariant prefix) is paid once, each profile then re-evaluates the
// flat IR against its own hierarchy.
func runEvalGrid(list, patternStr string, cpuNS float64, regions map[string]*costmodel.Region) {
	var names []string
	if list == "all" {
		names = costmodel.ProfileNames()
	} else {
		names = strings.Split(list, ",")
	}
	p, err := costmodel.ParsePattern(patternStr, regions)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog, err := costmodel.Compile(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("pattern: %s\n\n", p)
	fmt.Printf("%-14s %14s %14s %14s\n", "profile", "seq-misses", "rnd-misses", "t.mem[ms]")
	for _, name := range names {
		model, err := costmodel.DefaultRegistry().Model(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res := model.EvaluateCompiled(prog)
		var seq, rnd float64
		for _, lr := range res.PerLevel {
			seq += lr.Misses.Seq
			rnd += lr.Misses.Rnd
		}
		fmt.Printf("%-14s %14.0f %14.0f %14.3f\n",
			model.Hierarchy().Name, seq, rnd, res.MemoryTimeNS()/1e6)
	}
	if cpuNS > 0 {
		fmt.Printf("\nT_cpu = %.3f ms is added on top of each t.mem (Eq. 6.1)\n", cpuNS/1e6)
	}
}

func profileNames() string {
	return strings.Join(costmodel.ProfileNames(), ", ")
}
