// Command costmodel evaluates a data access pattern on a hardware
// profile and prints the predicted cache misses per level and the memory
// access time (Eq. 3.1 of the paper).
//
// Regions are declared as name:items:width triples; the pattern uses the
// paper's Table 2 language with (+) for ⊕ and (.) for ⊙:
//
//	costmodel -region U:1000000:8 -region H:2097152:16 -region W:1000000:8 \
//	    -pattern 's_trav(U) (.) r_acc(1000000, H) (.) s_trav(W)'
//
//	costmodel -region U:4194304:8 \
//	    -pattern 'rs_trav(10, bi, U)' -profile modern-x86 -cpu 1e6
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cost"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

type regionFlags struct {
	regions map[string]*region.Region
}

func (f *regionFlags) String() string { return "" }

func (f *regionFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return fmt.Errorf("region %q: want name:items:width", v)
	}
	n, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return fmt.Errorf("region %q: bad item count", v)
	}
	w, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return fmt.Errorf("region %q: bad width", v)
	}
	f.regions[parts[0]] = region.New(parts[0], n, w)
	return nil
}

func main() {
	regions := &regionFlags{regions: map[string]*region.Region{}}
	var (
		patternStr = flag.String("pattern", "", "pattern expression (Table 2 language)")
		profile    = flag.String("profile", "origin2000", "hardware profile: "+profileNames())
		cpuNS      = flag.Float64("cpu", 0, "pure CPU time T_cpu in ns (Eq. 6.1)")
	)
	flag.Var(regions, "region", "region declaration name:items:width (repeatable)")
	flag.Parse()

	if *patternStr == "" {
		fmt.Fprintln(os.Stderr, "missing -pattern; see -h")
		os.Exit(2)
	}
	mk, ok := hardware.Profiles()[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q (have: %s)\n", *profile, profileNames())
		os.Exit(2)
	}
	h := mk()

	p, err := pattern.Parse(*patternStr, regions.regions)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	model, err := cost.New(h)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := model.Evaluate(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("profile: %s\npattern: %s\n\n", h.Name, p)
	fmt.Printf("%-6s %14s %14s %14s %14s\n", "level", "seq-misses", "rnd-misses", "total", "time[ms]")
	for _, lr := range res.PerLevel {
		fmt.Printf("%-6s %14.0f %14.0f %14.0f %14.3f\n",
			lr.Level.Name, lr.Misses.Seq, lr.Misses.Rnd, lr.Misses.Total(),
			lr.MemoryTimeNS()/1e6)
	}
	fmt.Printf("\nT_mem  = %.3f ms\n", res.MemoryTimeNS()/1e6)
	if *cpuNS > 0 {
		fmt.Printf("T_cpu  = %.3f ms\n", *cpuNS/1e6)
		fmt.Printf("T      = %.3f ms (Eq. 6.1)\n", (res.MemoryTimeNS()+*cpuNS)/1e6)
	}
}

func profileNames() string {
	var names []string
	for n := range hardware.Profiles() {
		names = append(names, n)
	}
	return strings.Join(names, ", ")
}
