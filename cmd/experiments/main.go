// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                  # every experiment, text output
//	experiments -exp fig7c                # one experiment
//	experiments -exp fig7d -csv           # CSV output
//	experiments -exp fig7a -max 33554432  # sweep relations up to 32 MB
//	experiments -list                     # list experiment IDs
//	experiments -profile modern-x86       # different hardware profile
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/hardware"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment ID or 'all'")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		maxSize = flag.Int64("max", 16<<20, "largest relation size in bytes")
		seed    = flag.Uint64("seed", 42, "workload seed")
		quick   = flag.Bool("quick", false, "reduced point sets")
		profile = flag.String("profile", "origin2000", "hardware profile: "+profileNames())
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	mk, ok := hardware.Profiles()[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q (have: %s)\n", *profile, profileNames())
		os.Exit(2)
	}
	cfg := experiments.Config{
		Hier:    mk(),
		MaxSize: *maxSize,
		Seed:    *seed,
		Quick:   *quick,
	}

	var ids []string
	if *exp == "all" {
		ids = experimentsInOrder()
	} else {
		ids = strings.Split(*exp, ",")
	}
	for i, id := range ids {
		gen, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		rep := gen(cfg)
		if *csv {
			rep.CSV(os.Stdout)
		} else {
			if i > 0 {
				fmt.Println()
			}
			rep.Render(os.Stdout)
		}
	}
}

func experimentsInOrder() []string {
	var ids []string
	for _, e := range experiments.Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

func profileNames() string {
	var names []string
	for n := range hardware.Profiles() {
		names = append(names, n)
	}
	return strings.Join(names, ", ")
}
