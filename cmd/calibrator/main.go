// Command calibrator mirrors the paper's Calibrator tool: it discovers
// the cache hierarchy's characteristic parameters (capacity, line size,
// sequential and random miss latency per level) from stride/footprint
// micro-benchmarks.
//
// Usage:
//
//	calibrator                       # calibrate a simulated Origin2000
//	calibrator -profile modern-x86   # another simulated profile
//	calibrator -host -max 67108864   # best-effort host calibration
//
// Host mode is wall-clock based and noisy under a garbage-collected
// runtime; the simulated mode is exact and demonstrates the method.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/calibrate"
	"repro/internal/hardware"
)

func main() {
	var (
		host    = flag.Bool("host", false, "calibrate the host machine (noisy) instead of a simulated profile")
		maxSize = flag.Int64("max", 0, "largest sweep footprint in bytes (default: 4x outermost capacity, or 64 MB for host)")
		profile = flag.String("profile", "origin2000", "simulated hardware profile: "+profileNames())
	)
	flag.Parse()

	if *host {
		max := *maxSize
		if max == 0 {
			max = 64 << 20
		}
		fmt.Println("calibrating host memory (best effort; expect runtime noise)...")
		res := calibrate.Host(max, 4)
		fmt.Print(res)
		return
	}

	mk, ok := hardware.Profiles()[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q (have: %s)\n", *profile, profileNames())
		os.Exit(2)
	}
	h := mk()
	max := *maxSize
	if max == 0 {
		for _, l := range h.Levels {
			if 4*l.Capacity > max {
				max = 4 * l.Capacity
			}
		}
	}
	fmt.Printf("calibrating simulated %s (footprints up to %s)...\n",
		h.Name, hardware.FormatBytes(max))
	res := calibrate.Simulated(h, max)
	fmt.Print(res)
	fmt.Println("\nground truth:")
	fmt.Print(h)
}

func profileNames() string {
	var names []string
	for n := range hardware.Profiles() {
		names = append(names, n)
	}
	return strings.Join(names, ", ")
}
