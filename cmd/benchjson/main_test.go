package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodValidateJSON = `{
  "backend": "analytical",
  "operators": [{"operator": "scan"}],
  "cross_check": {
    "speedup": 120.5,
    "pass": true,
    "operators": [
      {"operator": "scan", "mean_disagreement": 0.001, "tolerance": 0.02, "pass": true}
    ]
  }
}`

func TestCheckValidateFile(t *testing.T) {
	write := func(t *testing.T, body string) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "BENCH_validate.json")
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	if err := checkValidateFile(write(t, goodValidateJSON)); err != nil {
		t.Fatalf("good artifact rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(s string) string
		wantErr string
	}{
		{"trace backend", func(s string) string {
			return strings.Replace(s, `"analytical"`, `"trace"`, 1)
		}, "want analytical"},
		{"missing cross-check", func(s string) string {
			return strings.Replace(s, `"cross_check"`, `"cross_check_gone"`, 1)
		}, "no cross_check"},
		{"operator over tolerance", func(s string) string {
			return strings.Replace(s, `"pass": true}`, `"pass": false}`, 1)
		}, "exceeds its committed tolerance"},
		{"speedup below floor", func(s string) string {
			return strings.Replace(s, "120.5", "7.3", 1)
		}, "below the committed"},
		{"overall fail flag", func(s string) string {
			return strings.Replace(s, `"pass": true,`, `"pass": false,`, 1)
		}, "recorded as failing"},
	}
	for _, tc := range cases {
		err := checkValidateFile(write(t, tc.mutate(goodValidateJSON)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}

	if err := checkValidateFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}
