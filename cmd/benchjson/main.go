// Command benchjson converts `go test -bench -benchmem` output on
// stdin into the BENCH_eval.json / BENCH_plan.json schema on stdout:
// one record per benchmark (ns/op, B/op, allocs/op) plus speedup
// sections — each Evaluate/tree/<pattern> paired with its
// Evaluate/ir/<pattern> counterpart, and each
// PlanSearch/exhaustive/<scenario> paired with its
// PlanSearch/dp/<scenario> counterpart. CI runs it after the bench
// smoke jobs and uploads the results as artifacts; the first snapshots
// are committed at the repo root.
//
//	go test -run '^$' -bench 'BenchmarkEvaluate' -benchmem . | go run ./cmd/benchjson > BENCH_eval.json
//	go test -run '^$' -bench 'BenchmarkPlanSearch' -benchmem . | go run ./cmd/benchjson > BENCH_plan.json
//
// With -check, the acceptance bar of the cost IR is enforced: every
// /ir/ benchmark must report 0 allocs/op, and the hash-join pattern —
// the representative compound pattern — must show at least a 5x
// speedup over the tree walker (the committed snapshot records ~10x,
// leaving headroom for noisy CI runners). With -checkplan, the plan
// search's bar is enforced instead: every scenario must carry a
// speedup — exhaustive-vs-DP on the 4-relation chain, cold-vs-warm on
// the DP-only scenarios — and every speedup must exceed 1x. With
// -snapshot <file>, the warm DP time of the reference scenario
// (join8-chain) is additionally compared against the committed
// BENCH_plan.json: past 1.25x the snapshot is a regression. Violations
// exit non-zero so the bench-smoke job fails instead of silently
// uploading a regression.
//
// With -checksweep, the grid-sweep bar is enforced: the
// SweepGrid/loop / SweepGrid/sweep / SweepGrid/sweepwarm trio must be
// present, the warm sweep must report 0 allocs/op, and the warm sweep
// must be at least 5x faster than the point-at-a-time loop (the
// committed snapshot records ~10x).
//
// -checkvalidate <file> is a standalone mode (nothing read from
// stdin): it opens a committed BENCH_validate.json and asserts the
// analytical-backend contract — backend "analytical", a cross-check
// section present with every operator inside its committed tolerance,
// and the analytical-vs-trace speedup at or above 10x.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Acceptance thresholds enforced by -check.
const (
	checkPattern    = "hashjoin"
	checkMinSpeedup = 5.0
)

// Acceptance requirements enforced by -checkplan: the scenario where DP
// must beat the exhaustive enumerator, and the DP-only scenarios that
// must each carry a cold-vs-warm speedup.
const checkPlanScenario = "join4-chain"

var checkPlanDPOnly = []string{"join7-star", "join8-chain", "join10-star", "join12-chain"}

// Snapshot regression bounds enforced by -snapshot: the reference
// scenario's warm DP time may not exceed the committed snapshot's by
// more than the tolerance factor.
const (
	snapshotScenario  = "join8-chain"
	snapshotTolerance = 1.25
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Speedup pairs the tree walker and IR evaluator on one pattern.
type Speedup struct {
	Pattern       string  `json:"pattern"`
	TreeNsPerOp   float64 `json:"tree_ns_per_op"`
	IRNsPerOp     float64 `json:"ir_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	IRAllocsPerOp float64 `json:"ir_allocs_per_op"`
}

// Acceptance thresholds enforced by -checksweep: the warm grid sweep
// must beat the point-at-a-time validation loop by this factor with
// zero steady-state allocations.
const checkSweepMinSpeedup = 5.0

// SweepSpeedup compares the grid-sweep evaluator against the
// point-at-a-time validation loop on the full analytical grid
// (BenchmarkSweepGrid). Speedup is loop over warm sweep — the steady
// state that carries the committed contract; ColdSpeedup is loop over
// the end-to-end sweep including grid preparation.
type SweepSpeedup struct {
	LoopNsPerOp     float64 `json:"loop_ns_per_op"`
	SweepNsPerOp    float64 `json:"sweep_ns_per_op"`
	WarmNsPerOp     float64 `json:"warm_ns_per_op"`
	Speedup         float64 `json:"speedup"`
	ColdSpeedup     float64 `json:"cold_speedup,omitempty"`
	WarmAllocsPerOp float64 `json:"warm_allocs_per_op"`
}

// PlanSpeedup pairs a baseline with the warm DP search on one
// scenario: the exhaustive enumerator where it can run (join4-chain),
// the cold-cache DP search on the DP-only scenarios. Speedup is
// baseline over warm DP — exhaustive/dp or dpcold/dp respectively —
// and omitted only if no baseline was measured.
type PlanSpeedup struct {
	Scenario          string  `json:"scenario"`
	ExhaustiveNsPerOp float64 `json:"exhaustive_ns_per_op,omitempty"`
	ColdNsPerOp       float64 `json:"cold_ns_per_op,omitempty"`
	DPNsPerOp         float64 `json:"dp_ns_per_op"`
	DPAllocsPerOp     float64 `json:"dp_allocs_per_op,omitempty"`
	Speedup           float64 `json:"speedup,omitempty"`
}

// Report is the BENCH_eval.json / BENCH_plan.json schema.
type Report struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []Benchmark   `json:"benchmarks"`
	Speedups   []Speedup     `json:"speedups,omitempty"`
	PlanSearch []PlanSpeedup `json:"plan_speedups,omitempty"`
	Sweep      *SweepSpeedup `json:"sweep_speedup,omitempty"`
}

func main() {
	check := flag.Bool("check", false,
		"fail unless every /ir/ benchmark has 0 allocs/op and the "+checkPattern+" speedup is ≥ 5x")
	checkPlan := flag.Bool("checkplan", false,
		"fail unless every plan-search scenario reports a >1x speedup over its baseline "+
			"(exhaustive on "+checkPlanScenario+", cold cache on the DP-only scenarios)")
	snapshot := flag.String("snapshot", "",
		"committed BENCH_plan.json to compare against; fail if the warm DP time of "+
			snapshotScenario+" regresses past "+fmt.Sprintf("%.2f", snapshotTolerance)+"x")
	checkSweep := flag.Bool("checksweep", false,
		"fail unless the warm grid sweep beats the point-at-a-time loop by ≥ "+
			fmt.Sprintf("%.0f", checkSweepMinSpeedup)+"x with 0 allocs/op")
	checkValidate := flag.String("checkvalidate", "",
		"standalone mode: check a committed BENCH_validate.json (analytical backend, "+
			"passing cross-check, ≥10x speedup) and exit; stdin is not read")
	flag.Parse()
	if *checkValidate != "" {
		if err := checkValidateFile(*checkValidate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s passes the analytical-backend contract\n", *checkValidate)
		return
	}
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *check {
		if err := rep.checkAcceptance(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *checkPlan {
		if err := rep.checkPlanAcceptance(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *checkSweep {
		if err := rep.checkSweepAcceptance(); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *snapshot != "" {
		if err := rep.checkSnapshot(*snapshot); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// checkAcceptance enforces the cost-IR acceptance bar on the parsed
// report.
func (rep *Report) checkAcceptance() error {
	for _, b := range rep.Benchmarks {
		if strings.Contains(b.Name, "/ir/") && b.AllocsPerOp != 0 {
			return fmt.Errorf("%s allocates %.1f objects/op, want 0", b.Name, b.AllocsPerOp)
		}
	}
	for _, s := range rep.Speedups {
		if s.Pattern == checkPattern {
			if s.Speedup < checkMinSpeedup {
				return fmt.Errorf("%s speedup %.2fx below the %.0fx acceptance bar",
					s.Pattern, s.Speedup, checkMinSpeedup)
			}
			return nil
		}
	}
	return fmt.Errorf("no %s tree/ir pair in the benchmark output", checkPattern)
}

// checkPlanAcceptance enforces the plan-search acceptance bar: DP
// strictly faster than exhaustive on the reference chain, and every
// DP-only scenario measured with a >1x cold-vs-warm speedup (a warm
// search no faster than a cold one means geometry interning broke).
func (rep *Report) checkPlanAcceptance() error {
	byScenario := map[string]PlanSpeedup{}
	for _, s := range rep.PlanSearch {
		byScenario[s.Scenario] = s
	}
	ref, ok := byScenario[checkPlanScenario]
	if !ok || ref.ExhaustiveNsPerOp <= 0 {
		return fmt.Errorf("no exhaustive/dp pair for %s in the benchmark output", checkPlanScenario)
	}
	if ref.Speedup <= 1 {
		return fmt.Errorf("DP search is not faster than the exhaustive enumerator on %s (%.2fx)",
			checkPlanScenario, ref.Speedup)
	}
	for _, name := range checkPlanDPOnly {
		s, ok := byScenario[name]
		if !ok || s.DPNsPerOp <= 0 {
			return fmt.Errorf("DP-only scenario %s missing from the benchmark output", name)
		}
		if s.ColdNsPerOp <= 0 {
			return fmt.Errorf("DP-only scenario %s has no cold-cache baseline (dpcold benchmark missing)", name)
		}
		if s.Speedup <= 1 {
			return fmt.Errorf("warm DP search is not faster than a cold one on %s (%.2fx): geometry interning is not paying off", name, s.Speedup)
		}
	}
	return nil
}

// checkSweepAcceptance enforces the grid-sweep acceptance bar: the
// warm sweep carries zero steady-state allocations and at least the
// committed speedup over the point-at-a-time loop.
func (rep *Report) checkSweepAcceptance() error {
	s := rep.Sweep
	if s == nil || s.LoopNsPerOp <= 0 || s.WarmNsPerOp <= 0 {
		return fmt.Errorf("no SweepGrid loop/sweepwarm pair in the benchmark output")
	}
	if s.WarmAllocsPerOp != 0 {
		return fmt.Errorf("warm grid sweep allocates %.1f objects/op, want 0", s.WarmAllocsPerOp)
	}
	if s.Speedup < checkSweepMinSpeedup {
		return fmt.Errorf("warm grid sweep speedup %.2fx below the %.0fx acceptance bar",
			s.Speedup, checkSweepMinSpeedup)
	}
	return nil
}

// checkSnapshot compares the reference scenario's warm DP time against
// a committed BENCH_plan.json and fails past the tolerance factor.
func (rep *Report) checkSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading snapshot: %w", err)
	}
	var old Report
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("parsing snapshot %s: %w", path, err)
	}
	var oldNs float64
	for _, s := range old.PlanSearch {
		if s.Scenario == snapshotScenario {
			oldNs = s.DPNsPerOp
		}
	}
	if oldNs <= 0 {
		return fmt.Errorf("snapshot %s has no warm DP time for %s", path, snapshotScenario)
	}
	for _, s := range rep.PlanSearch {
		if s.Scenario == snapshotScenario {
			if s.DPNsPerOp > oldNs*snapshotTolerance {
				return fmt.Errorf("%s warm DP search regressed: %.0f ns/op vs %.0f ns/op in the snapshot (allowed %.2fx)",
					snapshotScenario, s.DPNsPerOp, oldNs, snapshotTolerance)
			}
			return nil
		}
	}
	return fmt.Errorf("no warm DP time for %s in the benchmark output", snapshotScenario)
}

// validateMinSpeedup mirrors the floor `costmodel validate -check`
// enforces when it writes the file; checking it again here keeps the
// committed artifact honest even if it was hand-edited.
const validateMinSpeedup = 10.0

// checkValidateFile asserts the analytical-backend contract on a
// committed BENCH_validate.json: the sweep was measured analytically,
// a cross-check against the trace oracle is present and passing for
// every operator, and the recorded speedup clears the committed floor.
func checkValidateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading validation snapshot: %w", err)
	}
	var rep struct {
		Backend    string `json:"backend"`
		Operators  []any  `json:"operators"`
		CrossCheck *struct {
			Speedup   float64 `json:"speedup"`
			Pass      bool    `json:"pass"`
			Operators []struct {
				Operator         string  `json:"operator"`
				MeanDisagreement float64 `json:"mean_disagreement"`
				Tolerance        float64 `json:"tolerance"`
				Pass             bool    `json:"pass"`
			} `json:"operators"`
		} `json:"cross_check"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if rep.Backend != "analytical" {
		return fmt.Errorf("%s was measured with the %q backend, want analytical", path, rep.Backend)
	}
	if len(rep.Operators) == 0 {
		return fmt.Errorf("%s records no operators", path)
	}
	cc := rep.CrossCheck
	if cc == nil {
		return fmt.Errorf("%s has no cross_check section; regenerate with -crosscheck", path)
	}
	if len(cc.Operators) == 0 {
		return fmt.Errorf("%s cross-check covers no operators", path)
	}
	for _, op := range cc.Operators {
		if !op.Pass {
			return fmt.Errorf("%s: operator %s disagreement %.4f exceeds its committed tolerance %.2f",
				path, op.Operator, op.MeanDisagreement, op.Tolerance)
		}
	}
	if !cc.Pass {
		return fmt.Errorf("%s cross-check recorded as failing", path)
	}
	if cc.Speedup < validateMinSpeedup {
		return fmt.Errorf("%s analytical speedup %.1fx below the committed %.0fx floor",
			path, cc.Speedup, validateMinSpeedup)
	}
	return nil
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	rep.Speedups = speedups(rep.Benchmarks)
	rep.PlanSearch = planSpeedups(rep.Benchmarks)
	rep.Sweep = sweepSpeedup(rep.Benchmarks)
	return rep, nil
}

// sweepSpeedup derives the grid-sweep comparison from the
// SweepGrid/loop, SweepGrid/sweep and SweepGrid/sweepwarm trio, or
// returns nil when the trio was not benchmarked.
func sweepSpeedup(benches []Benchmark) *SweepSpeedup {
	var loop, cold, warm Benchmark
	for _, b := range benches {
		switch {
		case strings.HasSuffix(b.Name, "SweepGrid/loop"):
			loop = b
		case strings.HasSuffix(b.Name, "SweepGrid/sweep"):
			cold = b
		case strings.HasSuffix(b.Name, "SweepGrid/sweepwarm"):
			warm = b
		}
	}
	if loop.NsPerOp <= 0 || warm.NsPerOp <= 0 {
		return nil
	}
	s := &SweepSpeedup{
		LoopNsPerOp:     loop.NsPerOp,
		SweepNsPerOp:    cold.NsPerOp,
		WarmNsPerOp:     warm.NsPerOp,
		Speedup:         loop.NsPerOp / warm.NsPerOp,
		WarmAllocsPerOp: warm.AllocsPerOp,
	}
	if cold.NsPerOp > 0 {
		s.ColdSpeedup = loop.NsPerOp / cold.NsPerOp
	}
	return s
}

// parseBenchLine parses e.g.
//
//	BenchmarkEvaluate/ir/hashjoin-8  849340  1291 ns/op  0 B/op  0 allocs/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iter}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true
}

// speedups pairs <prefix>/tree/<pattern> with <prefix>/ir/<pattern>.
func speedups(benches []Benchmark) []Speedup {
	tree := map[string]Benchmark{}
	ir := map[string]Benchmark{}
	var order []string
	for _, b := range benches {
		switch {
		case strings.Contains(b.Name, "/tree/"):
			key := b.Name[strings.Index(b.Name, "/tree/")+len("/tree/"):]
			tree[key] = b
			order = append(order, key)
		case strings.Contains(b.Name, "/ir/"):
			ir[b.Name[strings.Index(b.Name, "/ir/")+len("/ir/"):]] = b
		}
	}
	var out []Speedup
	for _, key := range order {
		tb, irb := tree[key], ir[key]
		if irb.NsPerOp <= 0 {
			continue
		}
		out = append(out, Speedup{
			Pattern:       key,
			TreeNsPerOp:   tb.NsPerOp,
			IRNsPerOp:     irb.NsPerOp,
			Speedup:       tb.NsPerOp / irb.NsPerOp,
			IRAllocsPerOp: irb.AllocsPerOp,
		})
	}
	return out
}

// planSpeedups pairs <prefix>/dp/<scenario> with its baseline:
// <prefix>/exhaustive/<scenario> where present, else
// <prefix>/dpcold/<scenario>.
func planSpeedups(benches []Benchmark) []PlanSpeedup {
	exhaustive := map[string]Benchmark{}
	cold := map[string]Benchmark{}
	dp := map[string]Benchmark{}
	var order []string
	suffix := func(name, sep string) (string, bool) {
		i := strings.Index(name, sep)
		if i < 0 {
			return "", false
		}
		return name[i+len(sep):], true
	}
	for _, b := range benches {
		if key, ok := suffix(b.Name, "/exhaustive/"); ok {
			exhaustive[key] = b
		}
		if key, ok := suffix(b.Name, "/dpcold/"); ok {
			cold[key] = b
		}
		if key, ok := suffix(b.Name, "/dp/"); ok {
			dp[key] = b
			order = append(order, key)
		}
	}
	var out []PlanSpeedup
	for _, key := range order {
		db := dp[key]
		if db.NsPerOp <= 0 {
			continue
		}
		s := PlanSpeedup{Scenario: key, DPNsPerOp: db.NsPerOp, DPAllocsPerOp: db.AllocsPerOp}
		if eb, ok := exhaustive[key]; ok && eb.NsPerOp > 0 {
			s.ExhaustiveNsPerOp = eb.NsPerOp
			s.Speedup = eb.NsPerOp / db.NsPerOp
		} else if cb, ok := cold[key]; ok && cb.NsPerOp > 0 {
			s.ColdNsPerOp = cb.NsPerOp
			s.Speedup = cb.NsPerOp / db.NsPerOp
		}
		out = append(out, s)
	}
	return out
}
