package main

import (
	"strings"
	"testing"
)

// sweepBench builds the SweepGrid trio as parsed benchmark lines.
func sweepBench(loopNs, coldNs, warmNs, warmAllocs float64) []Benchmark {
	return []Benchmark{
		{Name: "SweepGrid/loop", NsPerOp: loopNs},
		{Name: "SweepGrid/sweep", NsPerOp: coldNs},
		{Name: "SweepGrid/sweepwarm", NsPerOp: warmNs, AllocsPerOp: warmAllocs},
	}
}

func TestSweepSpeedup(t *testing.T) {
	s := sweepSpeedup(sweepBench(16e6, 4e6, 1.6e6, 0))
	if s == nil {
		t.Fatal("trio not recognized")
	}
	if s.Speedup < 9.9 || s.Speedup > 10.1 {
		t.Errorf("warm speedup %.2f, want ~10", s.Speedup)
	}
	if s.ColdSpeedup < 3.9 || s.ColdSpeedup > 4.1 {
		t.Errorf("cold speedup %.2f, want ~4", s.ColdSpeedup)
	}
	if sweepSpeedup(nil) != nil {
		t.Error("empty input produced a sweep section")
	}
	if sweepSpeedup(sweepBench(16e6, 4e6, 0, 0)) != nil {
		t.Error("missing warm benchmark produced a sweep section")
	}
}

func TestCheckSweepAcceptance(t *testing.T) {
	cases := []struct {
		name    string
		rep     Report
		wantErr string
	}{
		{"passing", Report{Sweep: sweepSpeedup(sweepBench(16e6, 4e6, 1.6e6, 0))}, ""},
		{"missing trio", Report{}, "no SweepGrid"},
		{"allocating", Report{Sweep: sweepSpeedup(sweepBench(16e6, 4e6, 1.6e6, 3))}, "want 0"},
		{"too slow", Report{Sweep: sweepSpeedup(sweepBench(16e6, 4e6, 8e6, 0))}, "below the 5x acceptance bar"},
	}
	for _, tc := range cases {
		err := tc.rep.checkSweepAcceptance()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}
