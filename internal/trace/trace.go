// Package trace analyzes address traces: it recognizes sequential runs,
// measures spatial and temporal locality, and summarizes a trace's
// geometry. Tests and diagnostics use it to check that an operator's
// implementation actually produces the data access pattern its Section 3
// (Table 2) description claims — the glue between the engine's
// behaviour and the paper's pattern language, supporting the Section 6
// methodology of comparing per-pattern predictions with measurements.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vmem"
)

// Recorder collects accesses as a vmem.Observer.
type Recorder struct {
	accesses []vmem.Access
	limit    int
}

// NewRecorder creates a recorder that keeps at most limit accesses
// (0 = unlimited).
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// OnAccess implements vmem.Observer.
func (r *Recorder) OnAccess(a vmem.Access) {
	if r.limit > 0 && len(r.accesses) >= r.limit {
		return
	}
	r.accesses = append(r.accesses, a)
}

// Accesses returns the recorded trace.
func (r *Recorder) Accesses() []vmem.Access { return r.accesses }

// Reset discards the recorded trace.
func (r *Recorder) Reset() { r.accesses = r.accesses[:0] }

// Run is a maximal sequence of accesses at a constant positive stride.
type Run struct {
	Start  vmem.Addr
	Stride int64
	Count  int
}

// Runs segments a trace into maximal constant-stride runs (stride may be
// any non-zero value; isolated accesses become 1-element runs).
func Runs(trace []vmem.Access) []Run {
	var runs []Run
	i := 0
	for i < len(trace) {
		run := Run{Start: trace[i].Addr, Count: 1}
		j := i + 1
		if j < len(trace) {
			stride := int64(trace[j].Addr - trace[i].Addr)
			if stride != 0 {
				run.Stride = stride
				for j < len(trace) && int64(trace[j].Addr-trace[j-1].Addr) == stride {
					run.Count++
					j++
				}
			}
		}
		if run.Count == 1 {
			j = i + 1
		}
		runs = append(runs, run)
		i = j
	}
	return runs
}

// Stats summarizes a trace.
type Stats struct {
	Accesses      int
	Bytes         int64   // total bytes touched (sum of access sizes)
	DistinctLines int     // distinct lines at the given line size
	SeqFraction   float64 // fraction of accesses inside runs of ≥ minRunLen
	MeanRunLen    float64
	MaxRunLen     int
	Reads         int
	Writes        int
}

// minRunLen is the run length from which accesses count as sequential.
const minRunLen = 4

// Analyze computes summary statistics of a trace at the given cache-line
// size.
func Analyze(trace []vmem.Access, lineSize int64) Stats {
	st := Stats{Accesses: len(trace)}
	if len(trace) == 0 {
		return st
	}
	lines := make(map[int64]struct{})
	for _, a := range trace {
		st.Bytes += a.Size
		if a.Write {
			st.Writes++
		} else {
			st.Reads++
		}
		first := int64(a.Addr) / lineSize
		last := (int64(a.Addr) + a.Size - 1) / lineSize
		for l := first; l <= last; l++ {
			lines[l] = struct{}{}
		}
	}
	st.DistinctLines = len(lines)

	runs := Runs(trace)
	seq := 0
	totalRun := 0
	for _, r := range runs {
		totalRun += r.Count
		if r.Count > st.MaxRunLen {
			st.MaxRunLen = r.Count
		}
		if r.Count >= minRunLen {
			seq += r.Count
		}
	}
	st.SeqFraction = float64(seq) / float64(len(trace))
	st.MeanRunLen = float64(totalRun) / float64(len(runs))
	return st
}

// ReuseDistances returns, for every access after the first touch of a
// line, the number of distinct other lines touched since that line's
// previous access (LRU stack distance at line granularity). Infinite
// (first-touch) distances are omitted. Quadratic; intended for small
// diagnostic traces.
func ReuseDistances(trace []vmem.Access, lineSize int64) []int {
	var out []int
	lastPos := make(map[int64]int)
	lineSeq := make([]int64, 0, len(trace))
	for _, a := range trace {
		line := int64(a.Addr) / lineSize
		if prev, ok := lastPos[line]; ok {
			seen := make(map[int64]struct{})
			for _, l := range lineSeq[prev+1:] {
				if l != line {
					seen[l] = struct{}{}
				}
			}
			out = append(out, len(seen))
		}
		lastPos[line] = len(lineSeq)
		lineSeq = append(lineSeq, line)
	}
	return out
}

// HitRateForCache estimates the LRU hit rate a fully associative cache
// with the given number of lines would achieve on the trace, from its
// reuse-distance profile.
func HitRateForCache(trace []vmem.Access, lineSize int64, lines int) float64 {
	ds := ReuseDistances(trace, lineSize)
	if len(trace) == 0 {
		return 0
	}
	hits := 0
	for _, d := range ds {
		if d < lines {
			hits++
		}
	}
	return float64(hits) / float64(len(trace))
}

// Classify gives a coarse label for a trace: "sequential", "random", or
// "mixed", based on the sequential fraction.
func Classify(trace []vmem.Access, lineSize int64) string {
	st := Analyze(trace, lineSize)
	switch {
	case st.SeqFraction >= 0.9:
		return "sequential"
	case st.SeqFraction <= 0.1:
		return "random"
	default:
		return "mixed"
	}
}

// String renders the stats compactly.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accesses=%d bytes=%d lines=%d seq=%.2f meanRun=%.1f maxRun=%d r/w=%d/%d",
		s.Accesses, s.Bytes, s.DistinctLines, s.SeqFraction, s.MeanRunLen, s.MaxRunLen,
		s.Reads, s.Writes)
	return b.String()
}

// Histogram buckets the reuse distances into powers of two and returns
// (bucket upper bounds, counts); useful to visualize locality.
func Histogram(distances []int) (bounds []int, counts []int) {
	if len(distances) == 0 {
		return nil, nil
	}
	max := 0
	for _, d := range distances {
		if d > max {
			max = d
		}
	}
	bound := 1
	for bound <= max {
		bounds = append(bounds, bound)
		bound *= 2
	}
	bounds = append(bounds, bound)
	counts = make([]int, len(bounds))
	for _, d := range distances {
		idx := sort.SearchInts(bounds, d+1)
		if idx >= len(counts) {
			idx = len(counts) - 1
		}
		counts[idx]++
	}
	return bounds, counts
}
