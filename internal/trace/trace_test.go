package trace

import (
	"testing"

	"repro/internal/driver"
	"repro/internal/pattern"
	"repro/internal/region"
	"repro/internal/vmem"
	"repro/internal/workload"
)

func acc(addrs ...int64) []vmem.Access {
	out := make([]vmem.Access, len(addrs))
	for i, a := range addrs {
		out[i] = vmem.Access{Addr: vmem.Addr(a), Size: 8}
	}
	return out
}

func TestRunsDetectsStrides(t *testing.T) {
	// Greedy segmentation: 100 and 200 pair up as a stride-100 run, so
	// the tail 208/216 continues from 208.
	tr := acc(0, 8, 16, 24, 100, 200, 208, 216)
	runs := Runs(tr)
	if len(runs) != 3 {
		t.Fatalf("got %d runs %v, want 3", len(runs), runs)
	}
	if runs[0].Stride != 8 || runs[0].Count != 4 {
		t.Errorf("run 0 = %+v, want stride 8 count 4", runs[0])
	}
	if runs[1].Stride != 100 || runs[1].Count != 2 {
		t.Errorf("run 1 = %+v, want stride 100 count 2", runs[1])
	}
	if runs[2].Stride != 8 || runs[2].Count != 2 || runs[2].Start != 208 {
		t.Errorf("run 2 = %+v", runs[2])
	}
}

func TestRunsSingletons(t *testing.T) {
	tr := acc(0, 1000, 4, 2000)
	runs := Runs(tr)
	total := 0
	for _, r := range runs {
		total += r.Count
	}
	if total != len(tr) {
		t.Errorf("runs cover %d accesses, want %d", total, len(tr))
	}
}

func TestRunsEmpty(t *testing.T) {
	if got := Runs(nil); got != nil {
		t.Errorf("Runs(nil) = %v", got)
	}
}

func TestAnalyzeSequentialTrace(t *testing.T) {
	var tr []vmem.Access
	for i := int64(0); i < 64; i++ {
		tr = append(tr, vmem.Access{Addr: vmem.Addr(i * 8), Size: 8})
	}
	st := Analyze(tr, 32)
	if st.Accesses != 64 || st.Bytes != 512 {
		t.Errorf("accesses/bytes = %d/%d", st.Accesses, st.Bytes)
	}
	if st.DistinctLines != 16 {
		t.Errorf("distinct lines = %d, want 16", st.DistinctLines)
	}
	if st.SeqFraction != 1 {
		t.Errorf("seq fraction = %g, want 1", st.SeqFraction)
	}
	if Classify(tr, 32) != "sequential" {
		t.Errorf("Classify = %s", Classify(tr, 32))
	}
}

func TestAnalyzeCountsWrites(t *testing.T) {
	tr := []vmem.Access{
		{Addr: 0, Size: 8, Write: true},
		{Addr: 8, Size: 8},
	}
	st := Analyze(tr, 32)
	if st.Writes != 1 || st.Reads != 1 {
		t.Errorf("r/w = %d/%d", st.Reads, st.Writes)
	}
}

func TestClassifyRandomTrace(t *testing.T) {
	rng := workload.NewRNG(5)
	var tr []vmem.Access
	for i := 0; i < 512; i++ {
		tr = append(tr, vmem.Access{Addr: vmem.Addr(rng.Intn(1 << 20)), Size: 8})
	}
	if got := Classify(tr, 32); got != "random" {
		t.Errorf("Classify = %s, want random", got)
	}
}

func TestReuseDistances(t *testing.T) {
	// Lines (size 32): A=0, B=1, C=2 with pattern A B A C A.
	tr := acc(0, 32, 0, 64, 0)
	ds := ReuseDistances(tr, 32)
	// A reused after B (distance 1), A reused after C (distance 1).
	if len(ds) != 2 || ds[0] != 1 || ds[1] != 1 {
		t.Errorf("ReuseDistances = %v, want [1 1]", ds)
	}
}

func TestHitRateForCache(t *testing.T) {
	// Cyclic sweep over 4 lines, twice: with ≥4 lines of cache the
	// second sweep hits; with fewer it misses.
	tr := acc(0, 32, 64, 96, 0, 32, 64, 96)
	if hr := HitRateForCache(tr, 32, 4); hr != 0.5 {
		t.Errorf("hit rate with 4 lines = %g, want 0.5", hr)
	}
	if hr := HitRateForCache(tr, 32, 2); hr != 0 {
		t.Errorf("hit rate with 2 lines = %g, want 0", hr)
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(2)
	r.OnAccess(vmem.Access{Addr: 0, Size: 1})
	r.OnAccess(vmem.Access{Addr: 1, Size: 1})
	r.OnAccess(vmem.Access{Addr: 2, Size: 1})
	if len(r.Accesses()) != 2 {
		t.Errorf("recorder kept %d, want 2", len(r.Accesses()))
	}
	r.Reset()
	if len(r.Accesses()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestHistogram(t *testing.T) {
	bounds, counts := Histogram([]int{0, 1, 1, 3, 9})
	if len(bounds) == 0 || len(counts) != len(bounds) {
		t.Fatalf("histogram shape: %v %v", bounds, counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Errorf("histogram counts sum to %d, want 5", total)
	}
	if b, c := Histogram(nil); b != nil || c != nil {
		t.Error("empty histogram should be nil")
	}
}

func TestStatsString(t *testing.T) {
	st := Analyze(acc(0, 8), 32)
	if st.String() == "" {
		t.Error("empty String()")
	}
}

// TestDriverPatternsMatchTheirClassification ties the pattern driver and
// the trace analyzer together: executed patterns must classify as their
// names claim.
func TestDriverPatternsMatchTheirClassification(t *testing.T) {
	mem := vmem.New(1 << 22)
	rec := NewRecorder(0)
	mem.SetObserver(rec)

	seqR := region.New("S", 4096, 8)
	driver.Materialize(mem, seqR, 32)
	driver.Run(mem, workload.NewRNG(1), pattern.STrav{R: seqR})
	if got := Classify(rec.Accesses(), 32); got != "sequential" {
		t.Errorf("s_trav classified as %s", got)
	}

	rec.Reset()
	rndR := region.New("R", 4096, 8)
	driver.Materialize(mem, rndR, 32)
	driver.Run(mem, workload.NewRNG(2), pattern.RTrav{R: rndR})
	if got := Classify(rec.Accesses(), 32); got != "random" {
		t.Errorf("r_trav classified as %s", got)
	}
}

// TestHitRatePredictsSimulator cross-checks the stack-distance estimate
// against the paper's repetitive-traversal caching claim.
func TestHitRatePredictsSimulator(t *testing.T) {
	mem := vmem.New(1 << 20)
	rec := NewRecorder(0)
	mem.SetObserver(rec)
	r := region.New("U", 64, 8) // 512 B = 16 lines
	driver.Materialize(mem, r, 32)
	driver.Run(mem, workload.NewRNG(3), pattern.RSTrav{R: r, Repeats: 4, Dir: pattern.Uni})
	// 256 accesses over 16 lines; with ≥16 lines of cache only the 16
	// first touches miss: hit rate 240/256.
	if hr := HitRateForCache(rec.Accesses(), 32, 16); hr != 0.9375 {
		t.Errorf("hit rate = %g, want 0.9375", hr)
	}
	// With 8 lines, uni-directional resweeps get no line reuse; only the
	// 3-of-4 intra-line item hits remain: 192/256.
	if hr := HitRateForCache(rec.Accesses(), 32, 8); hr != 0.75 {
		t.Errorf("hit rate with thrash = %g, want 0.75", hr)
	}
}
