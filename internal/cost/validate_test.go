package cost_test

// Model-vs-measurement validation at pattern granularity: every basic
// pattern (and representative compounds) is executed by the pattern
// driver against simulated memory with an attached cache simulator, and
// the counted misses are compared per level against the cost model's
// prediction. This is the paper's Section 6 methodology with the
// simulator standing in for hardware event counters.

import (
	"fmt"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/cost"
	"repro/internal/driver"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
	"repro/internal/vmem"
	"repro/internal/workload"
)

// runPattern executes p on a fresh memory+simulator for hierarchy h and
// returns per-level measured stats. Regions are materialized in pattern
// order, cache-line aligned.
func runPattern(h *hardware.Hierarchy, p pattern.Pattern, seed uint64) []cachesim.Stats {
	mem := vmem.New(1 << 26)
	sim := cachesim.New(h)
	line := h.Levels[0].LineSize
	for i, r := range p.Regions() {
		// Stagger region bases by a few lines: back-to-back equal-sized
		// allocations would place all concurrent cursors in the same
		// associative set, a pathological conflict pattern the model
		// (like the paper's) deliberately does not cover.
		mem.Alloc(int64(i%7+1)*line, 1)
		driver.Materialize(mem, r, line)
	}
	mem.SetObserver(sim)
	driver.Run(mem, workload.NewRNG(seed), p)
	return sim.AllStats()
}

// checkAgreement evaluates the model for p and compares totals per level.
func checkAgreement(t *testing.T, name string, h *hardware.Hierarchy, p pattern.Pattern, tol float64) {
	t.Helper()
	measured := runPattern(h, p, 42)
	model := cost.MustNew(h)
	res, err := model.Evaluate(p)
	if err != nil {
		t.Fatalf("%s: Evaluate: %v", name, err)
	}
	for i, lvl := range h.Levels {
		pred := res.PerLevel[i].Misses.Total()
		meas := float64(measured[i].Misses())
		if !within(pred, meas, tol, 8) {
			t.Errorf("%s @%s: predicted %.1f, measured %.0f (tol %.0f%%)",
				name, lvl.Name, pred, meas, tol*100)
		}
	}
}

// within reports |a−b| ≤ tol·max(a,b) with an absolute slack for tiny
// counts.
func within(a, b, tol, abs float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= tol*m+abs
}

func small() *hardware.Hierarchy { return hardware.SmallTest() }

func TestValidateSTravDense(t *testing.T) {
	for _, sz := range []int64{512, 2048, 16384} { // fits L1 / fits L2 / neither
		r := region.New(fmt.Sprintf("U%d", sz), sz/8, 8)
		checkAgreement(t, fmt.Sprintf("s_trav dense %dB", sz), small(), pattern.STrav{R: r}, 0.05)
	}
}

func TestValidateSTravSparse(t *testing.T) {
	// The model's Eq. 4.3 averages over all B alignments of the region
	// base (the paper's Fig. 5 "average" curve), so the measurement must
	// do the same: run one traversal per base alignment and compare the
	// mean per-level miss count.
	h := small()
	model := cost.MustNew(h)
	lineB := h.Levels[0].LineSize
	sums := make([]float64, len(h.Levels))
	for off := int64(0); off < lineB; off++ {
		r := region.New("U", 300, 64) // w−u = 56 ≥ 32 at L1, < 64 at L2
		mem := vmem.New(1 << 22)
		sim := cachesim.New(h)
		driver.MaterializeAt(mem, r, lineB, off)
		mem.SetObserver(sim)
		driver.Run(mem, workload.NewRNG(7), pattern.STrav{R: r, U: 8})
		for i, st := range sim.AllStats() {
			sums[i] += float64(st.Misses())
		}
	}
	r := region.New("U", 300, 64)
	res, err := model.Evaluate(pattern.STrav{R: r, U: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, lvl := range h.Levels {
		meanMeasured := sums[i] / float64(lineB)
		pred := res.PerLevel[i].Misses.Total()
		if !within(pred, meanMeasured, 0.10, 8) {
			t.Errorf("s_trav sparse @%s: predicted %.1f, measured mean %.1f",
				lvl.Name, pred, meanMeasured)
		}
	}
}

func TestValidateRTrav(t *testing.T) {
	// Eq. 4.4 charges extra misses only to the accesses beyond the
	// cache's item capacity, which systematically underestimates the
	// mid-range (region a small multiple of the cache) — the paper
	// itself shows this dip in Fig. 6c/6d. Tolerance reflects that.
	for _, tc := range []struct {
		sz  int64
		tol float64
	}{
		{512, 0.10},   // fits: exact
		{4096, 0.45},  // mid-range: known paper-formula underestimate
		{32768, 0.30}, // far oversized: formula approaches measurement
	} {
		r := region.New(fmt.Sprintf("U%d", tc.sz), tc.sz/8, 8)
		checkAgreement(t, fmt.Sprintf("r_trav %dB", tc.sz), small(), pattern.RTrav{R: r}, tc.tol)
	}
}

func TestValidateRSTrav(t *testing.T) {
	cases := []struct {
		sz      int64
		repeats int64
		dir     pattern.Direction
		tol     float64
	}{
		{512, 4, pattern.Uni, 0.10},   // fits L1: only first sweep
		{16384, 3, pattern.Uni, 0.10}, // oversized: full cost per sweep
		{16384, 3, pattern.Bi, 0.25},  // oversized bi: partial reuse
		{4096, 4, pattern.Bi, 0.30},   // fits L2, not L1
	}
	for _, tc := range cases {
		r := region.New(fmt.Sprintf("U%d_%d%v", tc.sz, tc.repeats, tc.dir), tc.sz/8, 8)
		p := pattern.RSTrav{R: r, Repeats: tc.repeats, Dir: tc.dir}
		checkAgreement(t, p.String(), small(), p, tc.tol)
	}
}

func TestValidateRRTrav(t *testing.T) {
	for _, sz := range []int64{512, 8192} {
		r := region.New(fmt.Sprintf("U%d", sz), sz/8, 8)
		p := pattern.RRTrav{R: r, Repeats: 3}
		checkAgreement(t, p.String(), small(), p, 0.35)
	}
}

func TestValidateRAcc(t *testing.T) {
	r := region.New("H", 1024, 16) // 16kB, exceeds both caches
	for _, count := range []int64{256, 1024, 4096} {
		p := pattern.RAcc{R: r, Count: count}
		checkAgreement(t, p.String(), small(), p, 0.35)
	}
	rSmall := region.New("Hs", 32, 16) // 512B fits L1
	checkAgreement(t, "r_acc cached", small(), pattern.RAcc{R: rSmall, Count: 2048}, 0.35)
}

func TestValidateNestSequentialInner(t *testing.T) {
	// Non-power-of-two sub-region counts keep the cursor strides from
	// landing in a single associative set (real partitioners see skewed
	// cluster sizes; perfectly set-aligned clusters are the conflict
	// pathology the capacity model does not cover).
	r := region.New("X", 4100, 8) // ≈32kB
	for _, m := range []int64{5, 17, 61, 331} {
		p := pattern.Nest{R: r, M: m, Inner: pattern.InnerSTrav, Order: pattern.OrderRandom}
		checkAgreement(t, p.String(), small(), p, 0.40)
	}
}

func TestValidateNestRandomInner(t *testing.T) {
	r := region.New("X", 2048, 8)
	p := pattern.Nest{R: r, M: 8, Inner: pattern.InnerRTrav, Order: pattern.OrderRandom}
	checkAgreement(t, p.String(), small(), p, 0.35)
}

func TestValidateSeqWarmRescan(t *testing.T) {
	r := region.New("U", 64, 8) // 512B fits everywhere
	p := pattern.Seq{pattern.STrav{R: r}, pattern.STrav{R: r}, pattern.STrav{R: r}}
	checkAgreement(t, "warm rescan", small(), p, 0.10)
}

func TestValidateConcScans(t *testing.T) {
	// Merge-join shape: three concurrent streams.
	u := region.New("U", 1024, 8)
	v := region.New("V", 1024, 8)
	w := region.New("W", 1024, 8)
	p := pattern.Conc{pattern.STrav{R: u}, pattern.STrav{R: v}, pattern.STrav{R: w}}
	checkAgreement(t, "conc scans", small(), p, 0.10)
}

func TestValidateConcScanPlusRAcc(t *testing.T) {
	// Hash-probe shape: stream concurrent with random access.
	u := region.New("U", 1024, 8)
	h := region.New("H", 512, 16) // 8kB
	p := pattern.Conc{pattern.STrav{R: u}, pattern.RAcc{R: h, Count: 1024}}
	checkAgreement(t, "scan+r_acc", small(), p, 0.40)
}

func TestValidateSeqOfConc(t *testing.T) {
	// Hash-join shape: build then probe.
	v := region.New("V", 512, 8)
	h := region.New("H", 256, 16)
	u := region.New("U", 512, 8)
	w := region.New("W", 512, 8)
	p := pattern.Seq{
		pattern.Conc{pattern.STrav{R: v}, pattern.RTrav{R: h}},
		pattern.Conc{pattern.STrav{R: u}, pattern.RAcc{R: h, Count: 512}, pattern.STrav{R: w}},
	}
	checkAgreement(t, "hash-join shape", small(), p, 0.40)
}

func TestValidateAcrossHierarchies(t *testing.T) {
	// The model must hold on a different hierarchy too (not overfitted).
	h := hardware.ModernX86()
	r := region.New("U", 8192, 8) // 64kB: exceeds L1/L2? L1 32kB, L2 256kB
	checkAgreement(t, "x86 s_trav", h, pattern.STrav{R: r}, 0.05)
	checkAgreement(t, "x86 r_trav", h, pattern.RTrav{R: r}, 0.35)
}
