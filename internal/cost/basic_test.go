package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

// l1 returns the Origin2000 L1 parameters: C=32kB, B=32, #=1024.
func l1() levelParams {
	return paramsFor(hardware.Origin2000().Levels[0])
}

// l2 returns the Origin2000 L2 parameters: C=4MB, B=128, #=32768.
func l2() levelParams {
	return paramsFor(hardware.Origin2000().Levels[1])
}

func TestLinesPerItem(t *testing.T) {
	cases := []struct {
		u, b float64
		want float64
	}{
		{1, 32, 1},            // a byte never spans lines
		{32, 32, 1 + 31.0/32}, // a full line spans two in 31/32 alignments
		{33, 32, 2},           // ⌈33/32⌉=2, (32 mod 32)=0 extra
		{8, 32, 1 + 7.0/32},
		{64, 32, 2 + 31.0/32},
	}
	for _, tc := range cases {
		if got := linesPerItem(tc.u, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("linesPerItem(%g,%g) = %g, want %g", tc.u, tc.b, got, tc.want)
		}
	}
}

func TestSTravDenseCountsCoveredLines(t *testing.T) {
	// Eq. 4.2: w−u < B ⇒ misses = ⌈‖R‖/B⌉, independent of w and u.
	lp := l1()
	for _, w := range []int64{1, 8, 16, 32} {
		r := region.New("U", 65536/w, w) // ‖R‖ = 64kB
		got := sTravCount(lp, r, 0)
		if got != 2048 {
			t.Errorf("w=%d: sTravCount = %g, want 2048", w, got)
		}
	}
}

func TestSTravSparseCountsPerItem(t *testing.T) {
	// Eq. 4.3: w−u ≥ B ⇒ misses = n·(⌈u/B⌉ + ((u−1) mod B)/B).
	lp := l1()
	r := region.New("U", 1000, 256)
	got := sTravCount(lp, r, 8)
	want := 1000 * (1 + 7.0/32)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("sTravCount = %g, want %g", got, want)
	}
}

func TestRTravFitsEqualsSTrav(t *testing.T) {
	// Section 4.4 invariant: w−u<B ∧ ‖R‖≤C ⇒ r_trav misses = s_trav misses.
	lp := l1()
	r := region.New("U", 2048, 8) // 16kB < 32kB
	if s, rr := sTravCount(lp, r, 0), rTravCount(lp, r, 0); s != rr {
		t.Errorf("s_trav %g != r_trav %g for cache-resident region", s, rr)
	}
}

func TestRTravExceedsSTravWhenOversized(t *testing.T) {
	// Section 4.4 invariant: w−u<B ∧ ‖R‖>C ⇒ r_trav misses > s_trav misses.
	lp := l1()
	r := region.New("U", 16384, 8) // 128kB > 32kB
	s, rr := sTravCount(lp, r, 0), rTravCount(lp, r, 0)
	if rr <= s {
		t.Errorf("r_trav %g should exceed s_trav %g for oversized region", rr, s)
	}
}

func TestRTravSparseEqualsSTrav(t *testing.T) {
	// Section 4.4 invariant: w−u ≥ B ⇒ equal misses regardless of order.
	lp := l1()
	r := region.New("U", 5000, 128)
	if s, rr := sTravCount(lp, r, 8), rTravCount(lp, r, 8); s != rr {
		t.Errorf("sparse: s_trav %g != r_trav %g", s, rr)
	}
}

func TestSTravSizeInvariance(t *testing.T) {
	// Section 4.4: with w−u<B, s_trav depends only on ‖R‖.
	lp := l1()
	ref := sTravCount(lp, region.New("A", 8192, 8), 0) // 64kB
	for _, w := range []int64{2, 4, 16, 32} {
		r := region.New("B", 65536/w, w)
		if got := sTravCount(lp, r, 0); got != ref {
			t.Errorf("w=%d: %g != reference %g", w, got, ref)
		}
	}
}

func TestRTravItemSizeInvarianceWhenCached(t *testing.T) {
	// Section 4.4: r_trav invariant to item size only while ‖R‖ fits.
	lp := l1()
	ref := rTravCount(lp, region.New("A", 2048, 8), 0) // 16kB
	r := region.New("B", 1024, 16)                     // same 16kB
	if got := rTravCount(lp, r, 0); got != ref {
		t.Errorf("cached r_trav not size-invariant: %g vs %g", got, ref)
	}
}

func TestRSTravCases(t *testing.T) {
	lp := l1()
	small := region.New("S", 2048, 8) // 512 lines ≤ 1024
	big := region.New("B", 16384, 8)  // 4096 lines > 1024

	m0s := sTravCount(lp, small, 0)
	if got := rsTravCount(lp, m0s, 10, pattern.Uni); got != m0s {
		t.Errorf("cached rs_trav = %g, want %g (only first sweep misses)", got, m0s)
	}

	m0b := sTravCount(lp, big, 0)
	if got := rsTravCount(lp, m0b, 3, pattern.Uni); got != 3*m0b {
		t.Errorf("uni rs_trav = %g, want %g", got, 3*m0b)
	}
	wantBi := m0b + 2*(m0b-lp.L)
	if got := rsTravCount(lp, m0b, 3, pattern.Bi); got != wantBi {
		t.Errorf("bi rs_trav = %g, want %g", got, wantBi)
	}
	if rsTravCount(lp, m0b, 3, pattern.Bi) >= rsTravCount(lp, m0b, 3, pattern.Uni) {
		t.Error("bi-directional resweeps must be cheaper than uni-directional")
	}
}

func TestRRTravCases(t *testing.T) {
	lp := l1()
	small := region.New("S", 2048, 8)
	m0 := rTravCount(lp, small, 0)
	if got := rrTravCount(lp, m0, 5); got != m0 {
		t.Errorf("cached rr_trav = %g, want %g", got, m0)
	}

	big := region.New("B", 65536, 8) // 512kB
	m0b := rTravCount(lp, big, 0)
	got := rrTravCount(lp, m0b, 4)
	want := m0b + 3*(m0b-lp.L*lp.L/m0b)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("rr_trav = %g, want %g", got, want)
	}
	if got <= m0b {
		t.Error("repeated oversized random traversals must add misses")
	}
}

func TestRAccSmallCountTouchesFewLines(t *testing.T) {
	lp := l1()
	r := region.New("H", 1<<20, 16) // 16MB region
	// A single access touches about one line.
	got := rAccCount(lp, r, 0, 1)
	if got < 1 || got > 2 {
		t.Errorf("r_acc(1) = %g, want ≈1", got)
	}
}

func TestRAccSaturation(t *testing.T) {
	// With r >> n over a cache-resident region, misses stay ≈ |R|.
	lp := l1()
	r := region.New("H", 1024, 16) // 16kB, 512 lines ≤ 1024
	got := rAccCount(lp, r, 0, 1_000_000)
	lines := linesCovered(r, lp.B)
	if math.Abs(got-lines) > 1 {
		t.Errorf("saturated cached r_acc = %g, want ≈%g", got, lines)
	}
}

func TestRAccOversizedGrowsWithCount(t *testing.T) {
	lp := l1()
	r := region.New("H", 1<<20, 16) // 16MB
	m1 := rAccCount(lp, r, 0, 1<<18)
	m2 := rAccCount(lp, r, 0, 1<<20)
	if m2 <= m1 {
		t.Errorf("oversized r_acc not monotone in count: %g then %g", m1, m2)
	}
}

func TestRAccNearMonotoneProperty(t *testing.T) {
	// The paper's dense/sparse interpolation for ℓ (Section 4.6) is not
	// strictly monotone in the access count: as the expected distinct
	// count D grows, weight shifts towards the lower "adjacent items"
	// bound ℓ̂, which can dip the estimate by a few percent mid-range.
	// We therefore assert near-monotonicity (bounded relative dips) plus
	// hard upper/lower bounds.
	lp := l1()
	f := func(na, ra uint16) bool {
		n := int64(na%10000) + 1
		r1 := int64(ra % 5000)
		if r1 == 0 {
			return true
		}
		reg := region.New("H", n, 16)
		m1 := rAccCount(lp, reg, 0, r1)
		m2 := rAccCount(lp, reg, 0, r1+500)
		if m2 < 0.75*m1 {
			return false
		}
		// Never fewer than one line, never more than one miss per access
		// plus the full region.
		cov := linesCovered(reg, lp.B)
		return m1 >= 1 && m1 <= float64(r1)+cov+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNestRandomInnerReducesToRTrav(t *testing.T) {
	lp := l1()
	r := region.New("X", 8192, 8)
	n := pattern.Nest{R: r, M: 16, Inner: pattern.InnerRTrav, Order: pattern.OrderRandom}
	got := nestMisses(lp, n)
	want := rTravCount(lp, r, 0)
	if got.Rnd != want || got.Seq != 0 {
		t.Errorf("nest(r_trav) = %+v, want Rnd=%g", got, want)
	}
}

func TestNestRAccInnerAggregatesCounts(t *testing.T) {
	lp := l1()
	r := region.New("X", 8192, 8)
	n := pattern.Nest{R: r, M: 4, Inner: pattern.InnerRAcc, Count: 100, Order: pattern.OrderUni}
	got := nestMisses(lp, n)
	want := rAccCount(lp, r, 0, 400)
	if math.Abs(got.Rnd-want) > 1e-9 {
		t.Errorf("nest(r_acc) = %g, want %g", got.Rnd, want)
	}
}

func TestNestSequentialSmallMEqualsScan(t *testing.T) {
	// Case ⟨2⟩: few partitions, dense region: misses = |R| (like one scan).
	lp := l1()
	r := region.New("X", 1<<20, 8) // 8MB
	n := pattern.Nest{R: r, M: 16, Inner: pattern.InnerSTrav, Order: pattern.OrderRandom}
	got := nestMisses(lp, n)
	want := linesCovered(r, lp.B)
	if got.Total() != want {
		t.Errorf("nest misses = %g, want %g", got.Total(), want)
	}
	if got.Rnd != want {
		t.Error("random global order must yield random-latency misses")
	}
}

func TestNestSequentialKneeAtCacheLines(t *testing.T) {
	// Case ⟨3⟩: once m exceeds #, misses jump (the Fig. 7d knee).
	lp := l1()
	r := region.New("X", 1<<20, 8) // 8MB, |R| = 262144 lines
	small := nestMisses(lp, pattern.Nest{R: r, M: 512, Inner: pattern.InnerSTrav, Order: pattern.OrderRandom})
	big := nestMisses(lp, pattern.Nest{R: r, M: 8192, Inner: pattern.InnerSTrav, Order: pattern.OrderRandom})
	if big.Total() <= small.Total()*1.5 {
		t.Errorf("no knee: m=512 → %g, m=8192 → %g", small.Total(), big.Total())
	}
}

func TestNestOrderEffect(t *testing.T) {
	// In the oversized case, bi-directional global order reuses # lines,
	// uni reuses none: uni must cost at least as much.
	lp := l1()
	r := region.New("X", 1<<20, 8)
	uni := nestMisses(lp, pattern.Nest{R: r, M: 8192, Inner: pattern.InnerSTrav, Order: pattern.OrderUni})
	bi := nestMisses(lp, pattern.Nest{R: r, M: 8192, Inner: pattern.InnerSTrav, Order: pattern.OrderBi})
	if uni.Total() < bi.Total() {
		t.Errorf("uni %g < bi %g", uni.Total(), bi.Total())
	}
}

func TestNestSparseCaseKindFollowsOrder(t *testing.T) {
	lp := l1()
	r := region.New("X", 4096, 256) // w−u ≥ B with u=8
	rnd := nestMisses(lp, pattern.Nest{R: r, M: 64, Inner: pattern.InnerSTrav, U: 8, Order: pattern.OrderRandom})
	seq := nestMisses(lp, pattern.Nest{R: r, M: 64, Inner: pattern.InnerSTrav, U: 8, Order: pattern.OrderUni})
	if rnd.Seq != 0 || rnd.Rnd == 0 {
		t.Errorf("random order should give random misses: %+v", rnd)
	}
	if seq.Rnd != 0 || seq.Seq == 0 {
		t.Errorf("uni order should give sequential misses: %+v", seq)
	}
	if rnd.Total() != seq.Total() {
		t.Errorf("counts must match across orders: %g vs %g", rnd.Total(), seq.Total())
	}
}

func TestSTravVariantClassification(t *testing.T) {
	lp := l1()
	r := region.New("U", 4096, 8)
	seq := basicMisses(lp, pattern.STrav{R: r})
	rnd := basicMisses(lp, pattern.STrav{R: r, NoSeq: true})
	if seq.Rnd != 0 || seq.Seq == 0 {
		t.Errorf("s_trav° misclassified: %+v", seq)
	}
	if rnd.Seq != 0 || rnd.Rnd == 0 {
		t.Errorf("s_trav~ misclassified: %+v", rnd)
	}
	if seq.Total() != rnd.Total() {
		t.Error("variants must have identical counts")
	}
}

func TestL2LineSizeMatters(t *testing.T) {
	// The same region covers 4x fewer 128-byte L2 lines than L1 lines.
	r := region.New("U", 65536, 8) // 512kB
	mL1 := sTravCount(l1(), r, 0)
	mL2 := sTravCount(l2(), r, 0)
	if mL1 != 4*mL2 {
		t.Errorf("L1 %g, L2 %g: want exactly 4x", mL1, mL2)
	}
}
