package cost

import (
	"sort"

	"repro/internal/pattern"
	"repro/internal/region"
)

// This file implements Section 5 of the paper: combining the cost
// functions of basic patterns into cost functions for compound patterns.
//
//   - Eq. 5.1: misses of a basic pattern given an initial cache state
//     (data left behind by earlier patterns).
//   - Eq. 5.2: sequential execution ⊕ — patterns run one after another,
//     each starting from the cache state its predecessor left.
//   - Eq. 5.3: concurrent execution ⊙ — patterns compete for the cache,
//     which is divided among them in proportion to their footprints.

// evalLevel computes the misses of p at one cache level, given the
// initial state st, and returns the resulting state.
func evalLevel(lp levelParams, st State, p pattern.Pattern) (Misses, State) {
	switch q := p.(type) {
	case pattern.Seq:
		// Eq. 5.2: fold the state through the sub-patterns.
		var total Misses
		cur := st
		for _, sub := range q {
			var mi Misses
			mi, cur = evalLevel(lp, cur, sub)
			total = total.Add(mi)
		}
		return total, cur

	case pattern.Conc:
		// Eq. 5.3: divide the cache among the patterns in footprint
		// proportion; each runs on its scaled-down cache.
		total := footprint(lp, q)
		var sum Misses
		after := State{}
		for _, sub := range q {
			nu := 1.0
			if total > 0 {
				nu = footprint(lp, sub) / total
			}
			if nu <= 0 {
				// Patterns with zero-share footprints (pure streams) still
				// stream through at least a line's worth of cache.
				nu = 1 / lp.L
			}
			slp := lp.Scaled(nu)
			mi, subState := evalLevel(slp, st, sub)
			sum = sum.Add(mi)
			// After ⊙ the cache holds a fraction of each region
			// proportional to its pattern's share.
			for r, f := range subState {
				if f > after[r] {
					after[r] = f
				}
			}
		}
		return sum, mergeState(lp, st, after)

	default:
		// Basic pattern: Eq. 5.1 state adjustment around the Section-4
		// cold-cache count, then the resulting single-region state.
		mi := stateAdjusted(lp, st, p)
		return mi, mergeState(lp, st, resultState(lp, p))
	}
}

// mergeState combines the state a pattern leaves behind with the
// previous contents that still fit beside it. The paper assumes only the
// last region remains cached and explicitly leaves retention of earlier
// regions "for future research"; this implementation keeps earlier
// regions as long as the new pattern's resident bytes leave room,
// scaling their fractions down proportionally otherwise. Recursive
// patterns (quick-sort) need this to model that the second half of a
// cache-resident segment survives while the first half is sorted.
func mergeState(lp levelParams, old, new State) State {
	out := new.Clone()
	var newBytes float64
	for r, f := range new {
		newBytes += f * float64(r.Size())
	}
	avail := lp.C - newBytes
	if avail <= 0 {
		return out
	}
	// Old entries that overlap a new entry (same region, or related via
	// the sub-region parent chain) would double-count resident bytes —
	// the new entry supersedes them.
	keep := func(r *region.Region) bool {
		if _, ok := out[r]; ok {
			return false
		}
		for n := range new {
			if related(r, n) {
				return false
			}
		}
		return true
	}
	var oldBytes float64
	for r, f := range old {
		if keep(r) {
			oldBytes += f * float64(r.Size())
		}
	}
	if oldBytes <= 0 {
		return out
	}
	scale := 1.0
	if oldBytes > avail {
		scale = avail / oldBytes
	}
	for r, f := range old {
		if !keep(r) {
			continue
		}
		if g := f * scale; g > 1e-9 {
			out[r] = g
		}
	}
	return boundState(out)
}

// maxStateEntries bounds the cache-state map. Long Seq chains (e.g. a
// partitioned join with thousands of per-cluster sub-joins) would
// otherwise accumulate an entry per region ever touched, making
// evaluation quadratic. Retention keeps the entries holding the most
// resident bytes — the only ones that can change a later prediction.
const maxStateEntries = 96

func boundState(st State) State {
	if len(st) <= maxStateEntries {
		return st
	}
	type entry struct {
		r     *region.Region
		bytes float64
	}
	entries := make([]entry, 0, len(st))
	for r, f := range st {
		entries = append(entries, entry{r, f * float64(r.Size())})
	}
	// Deterministic order: bytes descending, then region name — map
	// iteration order must not influence predictions.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].bytes != entries[j].bytes {
			return entries[i].bytes > entries[j].bytes
		}
		return entries[i].r.Name < entries[j].r.Name
	})
	out := make(State, maxStateEntries)
	for _, e := range entries[:maxStateEntries] {
		out[e.r] = st[e.r]
	}
	return out
}

// related reports whether a is an ancestor or descendant of b (or equal):
// their byte ranges overlap through the sub-region chain.
func related(a, b *region.Region) bool {
	for p := a; p != nil; p = p.Parent {
		if p == b {
			return true
		}
	}
	for p := b; p != nil; p = p.Parent {
		if p == a {
			return true
		}
	}
	return false
}

// stateAdjusted implements Eq. 5.1: how many misses remain given that a
// fraction rho of the pattern's region is already cached.
//
//   - rho ≥ 1: the region is entirely resident, no misses occur.
//   - random patterns with 0 < rho < 1: each access finds its line
//     resident with probability rho, so misses scale by (1 − rho).
//   - sequential patterns with 0 < rho < 1: the resident fraction would
//     help only if it were the head of the region; since that is
//     unknown, no benefit is assumed.
func stateAdjusted(lp levelParams, st State, p pattern.Pattern) Misses {
	cold := basicMisses(lp, p)
	regions := p.Regions()
	if len(regions) != 1 {
		return cold
	}
	rho := effectiveRho(st, regions[0])
	if rho <= 0 {
		return cold
	}
	if rho >= 1 {
		return Misses{}
	}
	// r_acc over an oversized hot set: the cold count is dominated by
	// steady-state misses whose rate is already determined by the
	// cache-to-hot-set ratio; prior residency only saves (part of) the
	// compulsory first-touch misses of the ℓ distinct lines.
	if ra, ok := p.(pattern.RAcc); ok {
		lines := rAccLines(lp, ra.R, ra.U, ra.Count)
		if lines > lp.L {
			saved := rho * lines
			out := cold
			out.Rnd -= saved
			if out.Rnd < 0 {
				out.Rnd = 0
			}
			return out
		}
	}
	if isRandomPattern(p) {
		return cold.Scale(1 - rho)
	}
	return cold
}

// effectiveRho returns the resident fraction of r, taking the sub-region
// parent chain into account: if an ancestor region is resident with
// fraction ρ, a uniformly chosen line of the sub-region is resident with
// (at least) probability ρ. This extension lets recursive patterns such
// as quick-sort inherit residency from the enclosing segment.
func effectiveRho(st State, r *region.Region) float64 {
	rho := st[r]
	for p := r.Parent; p != nil; p = p.Parent {
		if f := st[p]; f > rho {
			rho = f
		}
	}
	return rho
}

// isRandomPattern reports whether Eq. 5.1 grants the pattern partial
// benefit from a partially resident region (the paper's
// {r_trav, rr_trav, r_acc}; a nest with random inner cursors reduces to
// those).
func isRandomPattern(p pattern.Pattern) bool {
	switch q := p.(type) {
	case pattern.RTrav, pattern.RRTrav, pattern.RAcc:
		return true
	case pattern.Nest:
		return q.Inner != pattern.InnerSTrav
	default:
		return false
	}
}

// resultState returns the cache state a basic pattern leaves behind: the
// fraction of its region that fits in the (possibly scaled) cache.
func resultState(lp levelParams, p pattern.Pattern) State {
	regions := p.Regions()
	if len(regions) != 1 {
		return State{}
	}
	r := regions[0]
	size := float64(r.Size())
	if size <= 0 {
		return State{}
	}
	rho := lp.C / size
	if rho > 1 {
		rho = 1
	}
	return State{r: rho}
}

// footprint returns F(P): the number of cache lines the pattern
// potentially revisits (Section 5.2). Plain streams never revisit a line
// once access moved past it and thus occupy a single line at a time.
func footprint(lp levelParams, p pattern.Pattern) float64 {
	switch q := p.(type) {
	case pattern.STrav:
		return 1
	case pattern.RTrav:
		if !gapSmall(q.R, used(q.U, q.R), lp.B) {
			// Each line serves exactly one access; nothing is revisited.
			return 1
		}
		return linesCovered(q.R, lp.B)
	case pattern.RSTrav:
		return linesCovered(q.R, lp.B)
	case pattern.RRTrav:
		return linesCovered(q.R, lp.B)
	case pattern.RAcc:
		return linesCovered(q.R, lp.B)
	case pattern.Nest:
		return linesCovered(q.R, lp.B)
	case pattern.Seq:
		// Sub-patterns run one after another; at any time at most one of
		// them occupies the cache.
		var max float64
		for _, sub := range q {
			if f := footprint(lp, sub); f > max {
				max = f
			}
		}
		return max
	case pattern.Conc:
		var sum float64
		for _, sub := range q {
			sum += footprint(lp, sub)
		}
		return sum
	default:
		panic("cost: footprint of unknown pattern")
	}
}

// Footprint exposes the footprint (in lines of the given level index of
// the model's hierarchy) for tests and diagnostics.
func (m *Model) Footprint(levelIdx int, p pattern.Pattern) float64 {
	return footprint(paramsFor(m.hier.Levels[levelIdx]), p)
}
