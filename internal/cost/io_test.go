package cost_test

// The paper's Section 2.3/7 claim: the unified hardware model covers
// disk I/O by viewing main memory (the buffer pool) as one more cache
// level whose lines are pages and whose miss latencies are disk seek and
// transfer times. These tests exercise the cost model on such an
// extended hierarchy.

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

func diskModel(t *testing.T, bufferPool int64) *cost.Model {
	t.Helper()
	h := hardware.DiskExtended(bufferPool, 16<<10)
	m, err := cost.New(h)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDiskScanCostsSequentialIO(t *testing.T) {
	// Scanning a 256 MB table through a 64 MB buffer pool costs one
	// sequential page read per page.
	m := diskModel(t, 64<<20)
	r := region.New("T", 1<<25, 8) // 256 MB
	res, err := m.Evaluate(pattern.STrav{R: r})
	if err != nil {
		t.Fatal(err)
	}
	bp, ok := res.Level("BP")
	if !ok {
		t.Fatal("BP level missing")
	}
	wantPages := float64(r.Size() / (16 << 10))
	if bp.Misses.Total() != wantPages {
		t.Errorf("page faults = %g, want %g", bp.Misses.Total(), wantPages)
	}
	if bp.Misses.Rnd != 0 {
		t.Errorf("sequential scan should cause no random I/O, got %g", bp.Misses.Rnd)
	}
}

func TestDiskResidentTableIsFree(t *testing.T) {
	// A table smaller than the buffer pool causes I/O only on first use.
	m := diskModel(t, 64<<20)
	r := region.New("T", 1<<21, 8) // 16 MB < 64 MB pool
	p := pattern.Seq{pattern.STrav{R: r}, pattern.STrav{R: r}, pattern.RTrav{R: r}}
	res, err := m.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	bp, _ := res.Level("BP")
	wantPages := float64(r.Size() / (16 << 10))
	if bp.Misses.Total() != wantPages {
		t.Errorf("pool-resident rescans should be free: %g faults, want %g",
			bp.Misses.Total(), wantPages)
	}
}

func TestDiskRandomAccessPaysSeeks(t *testing.T) {
	// Random access over a table far exceeding the pool pays the random
	// (seek-dominated) latency, making its time vastly exceed a scan's.
	m := diskModel(t, 64<<20)
	r := region.New("T", 1<<25, 8) // 256 MB
	scan, err := m.Evaluate(pattern.STrav{R: r})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := m.Evaluate(pattern.RAcc{R: r, Count: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	scanBP, _ := scan.Level("BP")
	probeBP, _ := probe.Level("BP")
	scanTime := scanBP.MemoryTimeNS()
	probeTime := probeBP.MemoryTimeNS()
	// 1M random probes over 16k pages with 4k pool pages resident: most
	// accesses seek. The scan reads 16k pages sequentially.
	if probeTime < 5*scanTime {
		t.Errorf("random I/O (%.0f ms) should dwarf a scan (%.0f ms)",
			probeTime/1e6, scanTime/1e6)
	}
}

func TestDiskJoinChoiceFlipsWithPoolSize(t *testing.T) {
	// The unified model reproduces classic I/O wisdom: a hash join whose
	// table fits the buffer pool is cheap; when it does not, the miss
	// count at the BP level explodes.
	small := diskModel(t, 256<<20)
	big := diskModel(t, 16<<20)
	n := int64(1 << 21) // 16 MB inputs, hash table 64 MB
	u := region.New("U", n, 8)
	v := region.New("V", n, 8)
	w := region.New("W", n, 8)
	h := engine.HashRegionFor("H", n)
	p := engine.HashJoinPattern(u, v, h, w)

	resSmallPool, err := big.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	resBigPool, err := small.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	bpSmall, _ := resSmallPool.Level("BP")
	bpBig, _ := resBigPool.Level("BP")
	if bpSmall.Misses.Total() < 4*bpBig.Misses.Total() {
		t.Errorf("pool pressure not visible: %g vs %g BP misses",
			bpSmall.Misses.Total(), bpBig.Misses.Total())
	}
}

func TestDiskHierarchyMemoryLevelsUnchanged(t *testing.T) {
	// Adding the BP level must not alter the in-memory predictions.
	plain := cost.MustNew(hardware.Origin2000())
	disk := diskModel(t, 64<<20)
	r := region.New("U", 1<<20, 8)
	p := pattern.RTrav{R: r}
	a, err := plain.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := disk.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerLevel {
		if a.PerLevel[i].Misses != b.PerLevel[i].Misses {
			t.Errorf("level %s changed with BP present", a.PerLevel[i].Level.Name)
		}
	}
}
