package cost

import (
	"repro/internal/costmath"
	"repro/internal/pattern"
	"repro/internal/region"
)

// This file dispatches basic patterns to the per-pattern cache-miss
// formulas of Section 4 of the paper (Eqs. 4.2 through 4.9). The
// arithmetic itself lives in internal/costmath — one leaf package shared
// with the flat-IR evaluator (internal/costir) so the two evaluators
// cannot drift apart formula-by-formula. The thin wrappers below adapt
// the shared kernel to this package's *region.Region plumbing and keep
// the original names the unit tests exercise.

// linesPerItem returns the expected number of cache lines of size B that
// an access to u consecutive bytes touches (the paper's Eq. 4.3/4.5
// term).
func linesPerItem(u, b float64) float64 { return costmath.LinesPerItem(u, b) }

// linesCovered returns |R|_B = ⌈‖R‖ / B⌉.
func linesCovered(r *region.Region, b float64) float64 {
	return costmath.LinesCovered(r.Size(), b)
}

// used resolves the bytes-used parameter (0 means the full item width).
func used(u int64, r *region.Region) float64 {
	return float64(pattern.Used(u, r))
}

// gapSmall reports whether the untouched gap between adjacent accesses is
// smaller than a cache line: R.w − u < B.
func gapSmall(r *region.Region, u, b float64) bool {
	return costmath.GapSmall(r.W, u, b)
}

// sTravCount returns the miss count of a single sequential traversal
// (Eqs. 4.2 and 4.3).
func sTravCount(lp levelParams, r *region.Region, u int64) float64 {
	return costmath.STravCount(lp, r.N, r.W, used(u, r))
}

// rTravCount returns the miss count of a single random traversal
// (Eqs. 4.4 and 4.5).
func rTravCount(lp levelParams, r *region.Region, u int64) float64 {
	return costmath.RTravCount(lp, r.N, r.W, used(u, r))
}

// rsTravCount returns the miss count of a repetitive sequential traversal
// (Eq. 4.6) given the single-traversal count m0.
func rsTravCount(lp levelParams, m0 float64, repeats int64, dir pattern.Direction) float64 {
	return costmath.RSTravCount(lp, m0, repeats, dir)
}

// rrTravCount returns the miss count of a repetitive random traversal
// (Eq. 4.7) given the single-traversal count m0.
func rrTravCount(lp levelParams, m0 float64, repeats int64) float64 {
	return costmath.RRTravCount(lp, m0, repeats)
}

// rAccLines returns the expected number of distinct cache lines ℓ
// touched by r_acc (the Section 4.6 derivation).
func rAccLines(lp levelParams, r *region.Region, u, count int64) float64 {
	return costmath.RAccLines(lp, r.N, r.W, used(u, r), count)
}

// rAccCount returns the miss count of r_acc (Eq. 4.8 and the preceding
// derivation in Section 4.6).
func rAccCount(lp levelParams, r *region.Region, u, count int64) float64 {
	return costmath.RAccCount(lp, r.N, r.W, used(u, r), count)
}

// nestMisses returns the misses of an interleaved multi-cursor access
// (Section 4.7, Eq. 4.9).
func nestMisses(lp levelParams, p pattern.Nest) Misses {
	return costmath.NestCounts(lp, p.R.N, p.R.W, used(p.U, p.R), p.M, p.Inner, p.Count, p.Order, p.NoSeq)
}

// classify wraps a raw miss count into a Misses pair according to
// whether the pattern achieves sequential latency.
func classify(count float64, seq bool) Misses {
	return costmath.Classify(count, seq)
}

// basicMisses dispatches a basic pattern to its Section-4 formula,
// ignoring cache state (cold-cache counts).
func basicMisses(lp levelParams, p pattern.Pattern) Misses {
	switch q := p.(type) {
	case pattern.STrav:
		return classify(sTravCount(lp, q.R, q.U), !q.NoSeq)
	case pattern.RSTrav:
		m0 := sTravCount(lp, q.R, q.U)
		return classify(rsTravCount(lp, m0, q.Repeats, q.Dir), !q.NoSeq)
	case pattern.RTrav:
		return Misses{Rnd: rTravCount(lp, q.R, q.U)}
	case pattern.RRTrav:
		m0 := rTravCount(lp, q.R, q.U)
		return Misses{Rnd: rrTravCount(lp, m0, q.Repeats)}
	case pattern.RAcc:
		return Misses{Rnd: rAccCount(lp, q.R, q.U, q.Count)}
	case pattern.Nest:
		return nestMisses(lp, q)
	default:
		panic("cost: basicMisses called with compound pattern")
	}
}
