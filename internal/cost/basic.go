package cost

import (
	"math"

	"repro/internal/combinatorics"
	"repro/internal/pattern"
	"repro/internal/region"
)

// This file implements the per-pattern cache-miss formulas of Section 4
// of the paper (Eqs. 4.2 through 4.9). Every function works on one cache
// level, described by levelParams, and returns expected miss counts.

// linesPerItem returns the expected number of cache lines of size B that
// an access to u consecutive bytes touches, averaged over all B possible
// alignments of the item within a line (the paper's Eq. 4.3/4.5 term):
//
//	⌈u/B⌉ + ((u−1) mod B) / B
//
// For u aligned at the start of a line ⌈u/B⌉ lines suffice; (u−1) mod B
// of the B alignments need one extra line.
func linesPerItem(u, b float64) float64 {
	if u <= 0 {
		return 0
	}
	return math.Ceil(u/b) + math.Mod(u-1, b)/b
}

// linesCovered returns |R|_B = ⌈‖R‖ / B⌉.
func linesCovered(r *region.Region, b float64) float64 {
	return math.Ceil(float64(r.Size()) / b)
}

// used resolves the bytes-used parameter (0 means the full item width).
func used(u int64, r *region.Region) float64 {
	return float64(pattern.Used(u, r))
}

// gapSmall reports whether the untouched gap between adjacent accesses is
// smaller than a cache line: R.w − u < B. In that case every line covered
// by R gets loaded during a traversal.
func gapSmall(r *region.Region, u, b float64) bool {
	return float64(r.W)-u < b
}

// sTravCount returns the miss count of a single sequential traversal
// (Eqs. 4.2 and 4.3). The classification (sequential vs random) is
// applied by the caller, because the s_trav° and s_trav~ variants share
// the count.
func sTravCount(lp levelParams, r *region.Region, u int64) float64 {
	uu := used(u, r)
	if gapSmall(r, uu, lp.B) {
		// Eq. 4.2: the gaps are smaller than a line, so every covered
		// line is loaded exactly once.
		return linesCovered(r, lp.B)
	}
	// Eq. 4.3: each item loads its own lines; average over alignments.
	return float64(r.N) * linesPerItem(uu, lp.B)
}

// rTravCount returns the miss count of a single random traversal
// (Eqs. 4.4 and 4.5).
func rTravCount(lp levelParams, r *region.Region, u int64) float64 {
	uu := used(u, r)
	if !gapSmall(r, uu, lp.B) {
		// Eq. 4.5: with gaps larger than a line no access benefits from a
		// previously loaded line, so the count equals the sequential case.
		return float64(r.N) * linesPerItem(uu, lp.B)
	}
	// Eq. 4.4: all covered lines are loaded at least once. Once the
	// region exceeds the cache, a line that serves several (locally
	// adjacent, temporally scattered) accesses may be evicted in
	// between; the extra misses grow with the excess |R| − #, and can
	// occur only for the accesses beyond the C/R.w items that fit.
	lines := linesCovered(r, lp.B)
	m := lines
	if lines > lp.L {
		nInCache := lp.C / float64(r.W)
		extraAccesses := float64(r.N) - nInCache
		if extraAccesses > 0 {
			m += extraAccesses * (lines - lp.L) / lines
		}
	}
	return m
}

// rsTravCount returns the miss count of a repetitive sequential traversal
// (Eq. 4.6) given the single-traversal count m0.
func rsTravCount(lp levelParams, m0 float64, repeats int64, dir pattern.Direction) float64 {
	r := float64(repeats)
	switch {
	case m0 <= lp.L:
		// Everything fits: only the first traversal misses.
		return m0
	case dir == pattern.Uni:
		// Each sweep starts where the cache holds nothing useful.
		return r * m0
	default: // Bi
		// A reversing sweep reuses the # lines left by its predecessor.
		return m0 + (r-1)*(m0-lp.L)
	}
}

// rrTravCount returns the miss count of a repetitive random traversal
// (Eq. 4.7) given the single-traversal count m0.
func rrTravCount(lp levelParams, m0 float64, repeats int64) float64 {
	r := float64(repeats)
	if m0 <= lp.L {
		return m0
	}
	// A subsequent sweep finds each of the # resident lines useful with
	// probability #/m0.
	return m0 + (r-1)*(m0-lp.L*lp.L/m0)
}

// rAccLines returns the expected number of distinct cache lines ℓ
// touched by r_acc (the Section 4.6 derivation): the expected distinct
// item count D (Stirling expectation, closed form) mapped to lines via
// the dense/sparse interpolation.
func rAccLines(lp levelParams, r *region.Region, u, count int64) float64 {
	uu := used(u, r)
	// Expected number of distinct items touched by `count` independent
	// uniform accesses (closed form of the Stirling-number expectation).
	d := combinatorics.ExpectedDistinct(r.N, count)
	if d == 0 {
		return 0
	}

	// Expected number of distinct lines touched.
	var lines float64
	if !gapSmall(r, uu, lp.B) {
		// Gaps larger than a line: no line serves two items.
		lines = d * linesPerItem(uu, lp.B)
	} else {
		// Dense bound: the d items pairwise adjacent.
		dense := d * float64(r.W) / lp.B
		// Sparse bound: gaps still larger than a line despite w−u < B.
		sparse := d * linesPerItem(uu, lp.B)
		if cov := linesCovered(r, lp.B); sparse > cov {
			sparse = cov
		}
		// Linear combination: dense is likely when d approaches R.n.
		lambda := d / float64(r.N)
		lines = lambda*dense + (1-lambda)*sparse
	}
	if lines < 1 {
		lines = 1
	}
	return lines
}

// rAccCount returns the miss count of r_acc (Eq. 4.8 and the preceding
// derivation in Section 4.6).
func rAccCount(lp levelParams, r *region.Region, u, count int64) float64 {
	lines := rAccLines(lp, r, u, count)
	if lines == 0 {
		return 0
	}
	if lines <= lp.L {
		return lines
	}
	// The hot set exceeds the cache: beyond the ℓ compulsory misses,
	// each line fetch finds its line resident only with probability #/ℓ
	// (the cache retains # of the ℓ hot lines). An access of u bytes is
	// max(1, u/B) line fetches, so the remaining count·max(1,u/B) − ℓ
	// fetches each miss with probability 1 − #/ℓ. (Reconstruction of
	// Eq. 4.8's tail; validated against LRU simulation to within a few
	// percent across count/size/width sweeps.)
	perAccess := used(u, r) / lp.B
	if perAccess < 1 {
		perAccess = 1
	}
	extra := float64(count)*perAccess - lines
	if extra < 0 {
		extra = 0
	}
	return lines + extra*(1-lp.L/lines)
}

// nestMisses returns the misses of an interleaved multi-cursor access
// (Section 4.7, Eq. 4.9). Unlike the other basics it returns a full
// Misses pair because its base misses and its extra cross-traversal
// misses can carry different classifications.
func nestMisses(lp levelParams, p pattern.Nest) Misses {
	r := p.R
	switch p.Inner {
	case InnerRTravKind:
		// Local random access: the whole pattern behaves like a single
		// random traversal of R (Section 4.7.1).
		return Misses{Rnd: rTravCount(lp, r, p.U)}
	case InnerRAccKind:
		// m local cursors, each performing Count random accesses: in
		// total m·Count independent accesses over R.
		return Misses{Rnd: rAccCount(lp, r, p.U, p.M*p.Count)}
	}

	// Local sequential access (Section 4.7.2).
	uu := used(p.U, r)
	seqKind := p.Order != pattern.OrderRandom && !p.NoSeq

	if !gapSmall(r, uu, lp.B) {
		// Case ⟨1⟩ R.w − u ≥ B: the pattern amounts to R.n/m cross
		// traversals of m slots with stride ‖R_j‖; no line is shared, so
		// the count equals the plain traversal over R. A random global
		// order makes the misses random.
		count := float64(r.N) * linesPerItem(uu, lp.B)
		return classify(count, seqKind)
	}

	// Lines touched by one cross-traversal: one slot per sub-region.
	lCross := float64(p.M) * math.Ceil(uu/lp.B)
	base := linesCovered(r, lp.B)

	if lCross <= lp.L {
		// Case ⟨2⟩: a full cross-traversal fits in the cache, so the
		// lines shared between subsequent cross-traversals survive; the
		// total is the sum of the local sequential patterns.
		return classify(base, seqKind)
	}

	// Case ⟨3⟩: a cross-traversal exceeds the cache; only some lines
	// survive until the next cross-traversal, the rest are reloaded.
	var reuse float64
	switch p.Order {
	case pattern.OrderUni:
		reuse = 0
	case pattern.OrderBi:
		reuse = lp.L
	default: // random global order: probabilistic reuse as in Eq. 4.7
		reuse = lp.L * lp.L / lCross
	}
	sweeps := float64(r.N) / float64(p.M)
	delta := (sweeps - 1) * (lCross - reuse)
	if delta < 0 {
		delta = 0
	}
	m := classify(base, seqKind)
	m.Rnd += delta // the reloads are scattered: random latency
	return m
}

// Aliases so nestMisses can switch without importing pattern constants
// under longer names.
const (
	InnerSTravKind = pattern.InnerSTrav
	InnerRTravKind = pattern.InnerRTrav
	InnerRAccKind  = pattern.InnerRAcc
)

// classify wraps a raw miss count into a Misses pair according to
// whether the pattern achieves sequential latency.
func classify(count float64, seq bool) Misses {
	if seq {
		return Misses{Seq: count}
	}
	return Misses{Rnd: count}
}

// basicMisses dispatches a basic pattern to its Section-4 formula,
// ignoring cache state (cold-cache counts).
func basicMisses(lp levelParams, p pattern.Pattern) Misses {
	switch q := p.(type) {
	case pattern.STrav:
		return classify(sTravCount(lp, q.R, q.U), !q.NoSeq)
	case pattern.RSTrav:
		m0 := sTravCount(lp, q.R, q.U)
		return classify(rsTravCount(lp, m0, q.Repeats, q.Dir), !q.NoSeq)
	case pattern.RTrav:
		return Misses{Rnd: rTravCount(lp, q.R, q.U)}
	case pattern.RRTrav:
		m0 := rTravCount(lp, q.R, q.U)
		return Misses{Rnd: rrTravCount(lp, m0, q.Repeats)}
	case pattern.RAcc:
		return Misses{Rnd: rAccCount(lp, q.R, q.U, q.Count)}
	case pattern.Nest:
		return nestMisses(lp, q)
	default:
		panic("cost: basicMisses called with compound pattern")
	}
}
