// Package cost implements the paper's generic database cost model for
// hierarchical memory systems. Given a hardware.Hierarchy and a
// pattern.Pattern describing an algorithm's data accesses, it predicts —
// per cache level — the number of sequential and random cache misses
// (Eqs. 4.2–4.9 of the paper), combines patterns executed sequentially or
// concurrently (Section 5), and scores misses with the per-level miss
// latencies to obtain the memory access time (Eq. 3.1) and total
// execution time (Eq. 6.1).
//
// All miss counts are expectations and therefore float64.
package cost

import (
	"fmt"

	"repro/internal/costir"
	"repro/internal/costmath"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

// Misses is the paper's per-level pair (M^s, M^r): expected sequential
// and random cache misses. It is shared (as a type alias) with the
// formula kernel internal/costmath and the flat-IR evaluator
// internal/costir, so results flow between the evaluators without
// conversion.
type Misses = costmath.Misses

// State describes the contents of one cache level as the fraction of
// each data region that is resident (the paper's set of ⟨R, ρ⟩ pairs).
// Regions not present are not cached at all.
type State map[*region.Region]float64

// Clone returns a copy of the state.
func (s State) Clone() State {
	out := make(State, len(s))
	for r, f := range s {
		out[r] = f
	}
	return out
}

// LevelResult holds the predicted misses for one cache level.
type LevelResult struct {
	Level  hardware.Level
	Misses Misses
}

// MemoryTimeNS scores the level's misses with its latencies.
func (lr LevelResult) MemoryTimeNS() float64 {
	return lr.Misses.Seq*lr.Level.SeqMissLatency + lr.Misses.Rnd*lr.Level.RndMissLatency
}

// Result is the model's prediction for a pattern: misses per hierarchy
// level, in hierarchy order.
type Result struct {
	PerLevel []LevelResult
}

// MemoryTimeNS returns T_mem = Σ_i (Ms_i·ls_i + Mr_i·lr_i), Eq. 3.1.
func (r *Result) MemoryTimeNS() float64 {
	var t float64
	for _, lr := range r.PerLevel {
		t += lr.MemoryTimeNS()
	}
	return t
}

// TotalMisses returns the summed miss pair for the named level.
func (r *Result) Level(name string) (LevelResult, bool) {
	for _, lr := range r.PerLevel {
		if lr.Level.Name == name {
			return lr, true
		}
	}
	return LevelResult{}, false
}

// Model predicts cache misses and memory access costs for data access
// patterns on a specific hardware hierarchy.
type Model struct {
	hier *hardware.Hierarchy
}

// New creates a model for the hierarchy; the hierarchy must validate.
func New(h *hardware.Hierarchy) (*Model, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &Model{hier: h}, nil
}

// MustNew is New, panicking on error (for tests and examples).
func MustNew(h *hardware.Hierarchy) *Model {
	m, err := New(h)
	if err != nil {
		panic(err)
	}
	return m
}

// Hierarchy returns the model's hardware hierarchy.
func (m *Model) Hierarchy() *hardware.Hierarchy { return m.hier }

// ColdStates returns an all-empty initial cache state, one per level.
func (m *Model) ColdStates() []State {
	out := make([]State, len(m.hier.Levels))
	for i := range out {
		out[i] = State{}
	}
	return out
}

// Evaluate predicts the misses of p on cold caches. It is a thin
// wrapper over the flat-IR path: the pattern is compiled once
// (canonicalized, regions deduplicated) and evaluated by the
// allocation-free stack evaluator in internal/costir. Callers that
// evaluate the same pattern repeatedly — possibly across several
// hierarchies — should costir.Compile once themselves and call
// EvaluateCompiled (or Program.Evaluate directly).
func (m *Model) Evaluate(p pattern.Pattern) (*Result, error) {
	prog, err := costir.Compile(p)
	if err != nil {
		return nil, err
	}
	return m.EvaluateCompiled(prog), nil
}

// EvaluateCompiled predicts the misses of an already-compiled pattern
// on cold caches.
func (m *Model) EvaluateCompiled(prog *costir.Program) *Result {
	misses := prog.Evaluate(m.hier, make([]Misses, 0, len(m.hier.Levels)))
	res := &Result{PerLevel: make([]LevelResult, len(m.hier.Levels))}
	for i, spec := range m.hier.Levels {
		res.PerLevel[i] = LevelResult{Level: spec, Misses: misses[i]}
	}
	return res
}

// EvaluateTree predicts the misses of p on cold caches using the
// original recursive tree walker. It is retained as the reference
// oracle the IR evaluator is property-tested against (and as the
// engine behind Explain and EvaluateFrom, which need per-node and
// warm-state access the flat program does not expose). Production
// callers should use Evaluate.
func (m *Model) EvaluateTree(p pattern.Pattern) (*Result, error) {
	res, _, err := m.EvaluateFrom(m.ColdStates(), p)
	return res, err
}

// EvaluateFrom predicts the misses of p given per-level initial cache
// states, returning also the per-level states after p completed. It
// always uses the tree walker: arbitrary warm states are keyed by
// region pointer, which the compiled representation abstracts away.
func (m *Model) EvaluateFrom(states []State, p pattern.Pattern) (*Result, []State, error) {
	if err := pattern.Validate(p); err != nil {
		return nil, nil, err
	}
	if len(states) != len(m.hier.Levels) {
		return nil, nil, fmt.Errorf("cost: got %d states for %d levels", len(states), len(m.hier.Levels))
	}
	res := &Result{PerLevel: make([]LevelResult, len(m.hier.Levels))}
	after := make([]State, len(m.hier.Levels))
	for i, spec := range m.hier.Levels {
		lp := paramsFor(spec)
		mi, st := evalLevel(lp, states[i], p)
		res.PerLevel[i] = LevelResult{Level: spec, Misses: mi}
		after[i] = st
	}
	return res, after, nil
}

// MemoryTimeNS predicts T_mem for p on cold caches (Eq. 3.1).
func (m *Model) MemoryTimeNS(p pattern.Pattern) (float64, error) {
	res, err := m.Evaluate(p)
	if err != nil {
		return 0, err
	}
	return res.MemoryTimeNS(), nil
}

// TotalTimeNS predicts T = T_mem + T_cpu (Eq. 6.1) given the pure CPU
// time in nanoseconds (calibrated in-cache, as the paper does).
func (m *Model) TotalTimeNS(p pattern.Pattern, cpuNS float64) (float64, error) {
	tm, err := m.MemoryTimeNS(p)
	if err != nil {
		return 0, err
	}
	return tm + cpuNS, nil
}

// levelParams are the per-level quantities the formulas use, shared
// with the formula kernel. Capacity and line count are float64 because
// concurrent execution divides the cache among patterns in footprint
// proportion (Eq. 5.3), yielding fractional effective capacities.
type levelParams = costmath.Level

func paramsFor(spec hardware.Level) levelParams {
	return levelParams{
		C: float64(spec.Capacity),
		B: float64(spec.LineSize),
		L: float64(spec.Lines()),
	}
}
