package cost

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/pattern"
)

// Explain produces an itemized cost breakdown of a pattern: for every
// node of the pattern tree, its per-level misses and memory time, with
// cache state threaded exactly as in Evaluate. Optimizer developers use
// it to see *where* a plan's memory cost comes from.

// ExplainNode is one pattern-tree node's contribution.
type ExplainNode struct {
	// Pattern is the node's rendering.
	Pattern string
	// Depth is the tree depth (0 = root).
	Depth int
	// Kind is "basic", "seq" or "conc".
	Kind string
	// PerLevel holds the node's misses per hierarchy level (for
	// compounds: the sum over children).
	PerLevel []Misses
	// TimeNS is the node's memory time (Eq. 3.1 over PerLevel).
	TimeNS float64
}

// Explanation is the itemized breakdown plus the totals.
type Explanation struct {
	Model *Model
	Nodes []ExplainNode
}

// Total returns the root node (whole-pattern totals).
func (e *Explanation) Total() ExplainNode { return e.Nodes[0] }

// Render writes an indented cost tree.
func (e *Explanation) Render(w io.Writer) {
	levels := e.Model.Hierarchy().Levels
	fmt.Fprintf(w, "%-60s %12s", "pattern", "time[ms]")
	for _, l := range levels {
		fmt.Fprintf(w, " %12s", l.Name+"-miss")
	}
	fmt.Fprintln(w)
	for _, n := range e.Nodes {
		label := strings.Repeat("  ", n.Depth) + n.Pattern
		if len(label) > 60 {
			label = label[:57] + "..."
		}
		fmt.Fprintf(w, "%-60s %12.3f", label, n.TimeNS/1e6)
		for _, m := range n.PerLevel {
			fmt.Fprintf(w, " %12.0f", m.Total())
		}
		fmt.Fprintln(w)
	}
}

// Explain evaluates p on cold caches and returns the itemized breakdown.
// The totals equal Evaluate's result exactly.
func (m *Model) Explain(p pattern.Pattern) (*Explanation, error) {
	if err := pattern.Validate(p); err != nil {
		return nil, err
	}
	e := &Explanation{Model: m}
	states := m.ColdStates()
	lps := make([]levelParams, len(m.hier.Levels))
	for i, spec := range m.hier.Levels {
		lps[i] = paramsFor(spec)
	}
	e.explain(lps, states, p, 0)
	return e, nil
}

// explain walks the pattern tree mirroring evalLevel's state threading,
// appending one ExplainNode per tree node; it returns the node's
// per-level misses and the per-level states after it ran.
func (e *Explanation) explain(lps []levelParams, states []State, p pattern.Pattern, depth int) ([]Misses, []State) {
	idx := len(e.Nodes)
	node := ExplainNode{Pattern: p.String(), Depth: depth, Kind: "basic"}
	e.Nodes = append(e.Nodes, node)

	switch q := p.(type) {
	case pattern.Seq:
		node.Kind = "seq"
		node.Pattern = fmt.Sprintf("seq of %d", len(q))
		total := make([]Misses, len(lps))
		cur := states
		for _, sub := range q {
			var mi []Misses
			mi, cur = e.explain(lps, cur, sub, depth+1)
			for i := range total {
				total[i] = total[i].Add(mi[i])
			}
		}
		node.PerLevel = total
		node.TimeNS = e.timeOf(total)
		e.Nodes[idx] = node
		return total, cur

	case pattern.Conc:
		node.Kind = "conc"
		node.Pattern = fmt.Sprintf("conc of %d", len(q))
		total := make([]Misses, len(lps))
		after := make([]State, len(lps))
		for i := range after {
			after[i] = State{}
		}
		// Mirror evalLevel's division per level for each child.
		for _, sub := range q {
			subMisses := make([]Misses, len(lps))
			subStates := make([]State, len(lps))
			for i, lp := range lps {
				totalFoot := footprint(lp, q)
				nu := 1.0
				if totalFoot > 0 {
					nu = footprint(lp, sub) / totalFoot
				}
				if nu <= 0 {
					nu = 1 / lp.L
				}
				mi, st := evalLevel(lp.Scaled(nu), states[i], sub)
				subMisses[i] = mi
				subStates[i] = st
			}
			e.appendChild(lps, subMisses, sub, depth+1)
			for i := range total {
				total[i] = total[i].Add(subMisses[i])
				for r, f := range subStates[i] {
					if f > after[i][r] {
						after[i][r] = f
					}
				}
			}
		}
		for i := range after {
			after[i] = mergeState(lps[i], states[i], after[i])
		}
		node.PerLevel = total
		node.TimeNS = e.timeOf(total)
		e.Nodes[idx] = node
		return total, after

	default:
		mi := make([]Misses, len(lps))
		after := make([]State, len(lps))
		for i, lp := range lps {
			m, st := evalLevel(lp, states[i], p)
			mi[i] = m
			after[i] = st
		}
		node.PerLevel = mi
		node.TimeNS = e.timeOf(mi)
		e.Nodes[idx] = node
		return mi, after
	}
}

// appendChild records a concurrent child's contribution without
// re-walking its subtree with unscaled parameters (the division already
// happened); nested compounds under ⊙ appear as single summarized rows.
func (e *Explanation) appendChild(lps []levelParams, mi []Misses, p pattern.Pattern, depth int) {
	kind := "basic"
	switch p.(type) {
	case pattern.Seq:
		kind = "seq"
	case pattern.Conc:
		kind = "conc"
	}
	e.Nodes = append(e.Nodes, ExplainNode{
		Pattern:  p.String(),
		Depth:    depth,
		Kind:     kind,
		PerLevel: mi,
		TimeNS:   e.timeOf(mi),
	})
}

func (e *Explanation) timeOf(mi []Misses) float64 {
	var t float64
	for i, l := range e.Model.Hierarchy().Levels {
		t += mi[i].Seq*l.SeqMissLatency + mi[i].Rnd*l.RndMissLatency
	}
	return t
}
