package cost

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

func TestExplainTotalsMatchEvaluate(t *testing.T) {
	m := MustNew(hardware.Origin2000())
	n := int64(1 << 18)
	u := region.New("U", n, 16)
	v := region.New("V", n, 16)
	w := region.New("W", n, 16)
	h := engine.HashRegionFor("H", n)
	patterns := []pattern.Pattern{
		pattern.STrav{R: u},
		pattern.RAcc{R: h, Count: n},
		engine.HashJoinPattern(u, v, h, w),
		engine.MergeJoinPattern(u, v, w),
		engine.PartitionedHashJoinPattern(u, v, w, 16),
		engine.QuickSortPattern(u, 32<<10),
	}
	for _, p := range patterns {
		res, err := m.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := m.Explain(p)
		if err != nil {
			t.Fatal(err)
		}
		root := exp.Total()
		for i := range res.PerLevel {
			a := res.PerLevel[i].Misses.Total()
			b := root.PerLevel[i].Total()
			if math.Abs(a-b) > 1e-6*math.Max(1, a) {
				t.Errorf("%T level %d: Evaluate %g vs Explain %g", p, i, a, b)
			}
		}
		if math.Abs(res.MemoryTimeNS()-root.TimeNS) > 1e-6*math.Max(1, res.MemoryTimeNS()) {
			t.Errorf("%T: time mismatch %g vs %g", p, res.MemoryTimeNS(), root.TimeNS)
		}
	}
}

func TestExplainChildSums(t *testing.T) {
	// The root of a Seq equals the sum of its depth-1 children.
	m := MustNew(hardware.Origin2000())
	u := region.New("U", 1<<18, 16)
	v := region.New("V", 1<<18, 16)
	h := engine.HashRegionFor("H", 1<<18)
	w := region.New("W", 1<<18, 16)
	exp, err := m.Explain(engine.HashJoinPattern(u, v, h, w))
	if err != nil {
		t.Fatal(err)
	}
	root := exp.Total()
	var childTime float64
	for _, n := range exp.Nodes[1:] {
		if n.Depth == 1 {
			childTime += n.TimeNS
		}
	}
	if math.Abs(childTime-root.TimeNS) > 1e-6*root.TimeNS {
		t.Errorf("children sum to %g, root %g", childTime, root.TimeNS)
	}
}

func TestExplainRender(t *testing.T) {
	m := MustNew(hardware.Origin2000())
	u := region.New("U", 1000, 8)
	exp, err := m.Explain(pattern.Seq{pattern.STrav{R: u}, pattern.RTrav{R: u}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	exp.Render(&buf)
	out := buf.String()
	for _, want := range []string{"seq of 2", "s_trav(U)", "r_trav(U)", "L1-miss", "time[ms]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestExplainValidates(t *testing.T) {
	m := MustNew(hardware.Origin2000())
	if _, err := m.Explain(pattern.Seq{}); err == nil {
		t.Error("empty Seq accepted")
	}
}
