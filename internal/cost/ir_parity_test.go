package cost

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

// This file certifies the central refactoring invariant: the flat-IR
// evaluator (internal/costir, behind Model.Evaluate) and the recursive
// tree walker (Model.EvaluateTree, the reference oracle) predict the
// same misses and the same T_mem on every level, for randomized
// compound patterns and for every operator pattern the engine emits.
//
// The generator draws regions from a fixed pool of *distinct*
// identities (distinct name/geometry), so region deduplication — where
// the IR intentionally diverges from the pointer-keyed walker, see
// TestRegionDedupAcrossPointers in costir — is identity-preserving and
// exact agreement (up to float reassociation) is required.

// relTol absorbs float reassociation: the IR sums misses and resident
// bytes in canonical (sorted) child order, the tree walker in source
// order and nondeterministic map order.
const relTol = 1e-6

func assertParity(t *testing.T, m *Model, p pattern.Pattern) {
	t.Helper()
	ir, err := m.Evaluate(p)
	if err != nil {
		t.Fatalf("IR Evaluate(%s): %v", p, err)
	}
	tree, err := m.EvaluateTree(p)
	if err != nil {
		t.Fatalf("tree Evaluate(%s): %v", p, err)
	}
	for i := range tree.PerLevel {
		name := tree.PerLevel[i].Level.Name
		tm, im := tree.PerLevel[i].Misses, ir.PerLevel[i].Misses
		if !close(tm.Seq, im.Seq) || !close(tm.Rnd, im.Rnd) {
			t.Errorf("%s: level %s: tree (%g seq, %g rnd) != IR (%g seq, %g rnd)\npattern: %s",
				m.Hierarchy().Name, name, tm.Seq, tm.Rnd, im.Seq, im.Rnd, p)
		}
	}
	if tt, it := tree.MemoryTimeNS(), ir.MemoryTimeNS(); !close(tt, it) {
		t.Errorf("%s: T_mem: tree %g != IR %g\npattern: %s", m.Hierarchy().Name, tt, it, p)
	}
}

func close(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= relTol*math.Max(math.Abs(a), math.Abs(b))
}

// randomPatterns generates compound pattern trees over a pool of
// distinct regions: basic leaves of every kind, ⊕ and ⊙ combinations,
// nesting up to depth 3, including sub-region parent chains.
type patternGen struct {
	rng  *rand.Rand
	pool []*region.Region
}

func newPatternGen(seed int64) *patternGen {
	rng := rand.New(rand.NewSource(seed))
	var pool []*region.Region
	// Distinct identities: names differ, or geometries differ. Sizes
	// straddle the test hierarchies' cache capacities.
	geoms := []struct {
		n, w int64
	}{
		{64, 8}, {256, 16}, {1024, 8}, {4096, 16}, {4096, 64},
		{32768, 16}, {131072, 8}, {131072, 64}, {1 << 20, 16},
	}
	names := []string{"A", "B", "C", "D", "E", "F", "G", "H", "I"}
	for i, g := range geoms {
		pool = append(pool, region.New(names[i], g.n, g.w))
	}
	// Parent chains: halves and quarters of a couple of pool regions.
	a, b := pool[3].Halves()
	pool = append(pool, a, b, a.Sub(0, 2), pool[7].Sub(1, 4))
	return &patternGen{rng: rng, pool: pool}
}

func (g *patternGen) region() *region.Region {
	return g.pool[g.rng.Intn(len(g.pool))]
}

// u picks a bytes-used parameter: 0 (all), the width, or a partial use.
func (g *patternGen) u(r *region.Region) int64 {
	switch g.rng.Intn(4) {
	case 0:
		return 0
	case 1:
		return r.W
	default:
		return 1 + g.rng.Int63n(r.W)
	}
}

func (g *patternGen) basic() pattern.Pattern {
	r := g.region()
	switch g.rng.Intn(6) {
	case 0:
		return pattern.STrav{R: r, U: g.u(r), NoSeq: g.rng.Intn(4) == 0}
	case 1:
		return pattern.RSTrav{R: r, U: g.u(r), Repeats: 1 + g.rng.Int63n(5),
			Dir: pattern.Direction(g.rng.Intn(2)), NoSeq: g.rng.Intn(4) == 0}
	case 2:
		return pattern.RTrav{R: r, U: g.u(r)}
	case 3:
		return pattern.RRTrav{R: r, U: g.u(r), Repeats: 1 + g.rng.Int63n(4)}
	case 4:
		return pattern.RAcc{R: r, U: g.u(r), Count: 1 + g.rng.Int63n(4*r.N)}
	default:
		inner := pattern.InnerKind(g.rng.Intn(3))
		n := pattern.Nest{
			R: r, U: g.u(r), M: 1 + g.rng.Int63n(64), Inner: inner,
			Order: pattern.Order(g.rng.Intn(3)), NoSeq: g.rng.Intn(4) == 0,
		}
		if inner == pattern.InnerRAcc {
			n.Count = 1 + g.rng.Int63n(100)
		}
		return n
	}
}

func (g *patternGen) pattern(depth int) pattern.Pattern {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return g.basic()
	}
	k := 2 + g.rng.Intn(3)
	kids := make([]pattern.Pattern, k)
	for i := range kids {
		kids[i] = g.pattern(depth - 1)
	}
	if g.rng.Intn(2) == 0 {
		return pattern.Seq(kids)
	}
	return pattern.Conc(kids)
}

// TestIRMatchesTreeOnRandomPatterns is the ~1k-pattern property test:
// both evaluators agree on misses and T_mem at every level, on two
// very different hierarchies.
func TestIRMatchesTreeOnRandomPatterns(t *testing.T) {
	models := []*Model{
		MustNew(hardware.Origin2000()),
		MustNew(hardware.SmallTest()),
	}
	gen := newPatternGen(20260728)
	const iterations = 1000
	for i := 0; i < iterations; i++ {
		p := gen.pattern(3)
		for _, m := range models {
			assertParity(t, m, p)
		}
		if t.Failed() && i > 25 {
			t.Fatalf("stopping after iteration %d", i)
		}
	}
}

// TestIRMatchesTreeOnOperatorPatterns pins parity on every pattern the
// engine and planner actually emit, including the 256-way partitioned
// hash join (the heaviest pattern: >500 sub-patterns, >700 regions,
// exercising the bounded-state path).
func TestIRMatchesTreeOnOperatorPatterns(t *testing.T) {
	m := MustNew(hardware.Origin2000())
	n := int64(1 << 18)
	u := region.New("U", n, 16)
	v := region.New("V", n, 16)
	w := region.New("W", n, 16)
	h := engine.HashRegionFor("H", n)
	agg := engine.AggRegionFor("A", 1024)

	pats := []pattern.Pattern{
		engine.ScanPattern(u, 8),
		engine.SelectPattern(u, w),
		engine.ProjectPattern(u, w, 8),
		engine.MergeJoinPattern(u, v, w),
		engine.NestedLoopJoinPattern(region.New("U", 2048, 16), region.New("V", 2048, 16), region.New("W", 2048, 16)),
		engine.HashBuildPattern(v, h),
		engine.HashProbePattern(u, h, w),
		engine.HashJoinPattern(u, v, h, w),
		engine.PartitionPattern(u, region.New("X", n, 16), 64),
		engine.PartitionedHashJoinPattern(u, v, w, 16),
		engine.PartitionedHashJoinPattern(u, v, w, 256),
		engine.HashAggregatePattern(u, agg),
		engine.HashDedupPattern(u, h, w),
		engine.SortDedupPattern(u, w, 32<<10),
		engine.QuickSortPattern(u, 32<<10),
		engine.QuickSortPattern(region.New("Q", 4096, 16), 0),
	}
	for _, p := range pats {
		assertParity(t, m, p)
	}
}
