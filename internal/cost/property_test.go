package cost

// Property-based tests (testing/quick) of the Section 4.4 invariants and
// general sanity conditions across randomized region geometries and all
// built-in hardware profiles.

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

// geometries derives a bounded random region from raw fuzz input.
func geometry(nRaw uint32, wRaw uint16) *region.Region {
	n := int64(nRaw%1_000_000) + 1
	w := int64(wRaw%512) + 1
	return region.New("R", n, w)
}

func forAllLevels(f func(lp levelParams) bool) func(uint32, uint16) bool {
	return func(nRaw uint32, wRaw uint16) bool {
		for _, mk := range hardware.Profiles() {
			for _, lvl := range mk().Levels {
				if !f(paramsFor(lvl)) {
					return false
				}
			}
		}
		return true
	}
}

func TestPropertySTravLowerBoundsRTrav(t *testing.T) {
	// Section 4.4: a random traversal never misses less than the
	// sequential traversal of the same region.
	f := func(nRaw uint32, wRaw uint16, uRaw uint16) bool {
		r := geometry(nRaw, wRaw)
		u := int64(uRaw) % (r.W + 1)
		for _, mk := range hardware.Profiles() {
			for _, lvl := range mk().Levels {
				lp := paramsFor(lvl)
				if rTravCount(lp, r, u) < sTravCount(lp, r, u)-1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySparseCountsCoincide(t *testing.T) {
	// Section 4.4: with w−u ≥ B the traversal order is irrelevant.
	f := func(nRaw uint32, bIdx uint8) bool {
		n := int64(nRaw%100_000) + 1
		r := region.New("R", n, 4096) // wide items
		u := int64(8)
		for _, mk := range hardware.Profiles() {
			for _, lvl := range mk().Levels {
				lp := paramsFor(lvl)
				if float64(r.W)-float64(u) < lp.B {
					continue
				}
				if math.Abs(sTravCount(lp, r, u)-rTravCount(lp, r, u)) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMissesNonNegativeAndFinite(t *testing.T) {
	f := func(nRaw uint32, wRaw uint16, rep uint8, cnt uint16) bool {
		r := geometry(nRaw, wRaw)
		repeats := int64(rep%7) + 1
		count := int64(cnt) + 1
		pats := []pattern.Pattern{
			pattern.STrav{R: r},
			pattern.STrav{R: r, NoSeq: true},
			pattern.RSTrav{R: r, Repeats: repeats, Dir: pattern.Bi},
			pattern.RSTrav{R: r, Repeats: repeats, Dir: pattern.Uni},
			pattern.RTrav{R: r},
			pattern.RRTrav{R: r, Repeats: repeats},
			pattern.RAcc{R: r, Count: count},
			pattern.Nest{R: r, M: min64(r.N, 16), Inner: pattern.InnerSTrav, Order: pattern.OrderRandom},
		}
		for _, mk := range hardware.Profiles() {
			for _, lvl := range mk().Levels {
				lp := paramsFor(lvl)
				for _, p := range pats {
					m := basicMisses(lp, p)
					if m.Seq < 0 || m.Rnd < 0 ||
						math.IsNaN(m.Seq) || math.IsNaN(m.Rnd) ||
						math.IsInf(m.Seq, 0) || math.IsInf(m.Rnd, 0) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestPropertyRepeatsMonotone(t *testing.T) {
	// More repetitions never reduce misses.
	f := func(nRaw uint32, wRaw uint16, rep uint8) bool {
		r := geometry(nRaw, wRaw)
		k := int64(rep%10) + 1
		for _, mk := range hardware.Profiles() {
			for _, lvl := range mk().Levels {
				lp := paramsFor(lvl)
				m0 := sTravCount(lp, r, 0)
				if rsTravCount(lp, m0, k+1, pattern.Uni) < rsTravCount(lp, m0, k, pattern.Uni)-1e-9 {
					return false
				}
				if rsTravCount(lp, m0, k+1, pattern.Bi) < rsTravCount(lp, m0, k, pattern.Bi)-1e-9 {
					return false
				}
				r0 := rTravCount(lp, r, 0)
				if rrTravCount(lp, r0, k+1) < rrTravCount(lp, r0, k)-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertySeqAdditiveUpperBound(t *testing.T) {
	// Sequential composition never costs more than the sum of cold runs
	// (state can only help), and never less than the costliest part.
	m := MustNew(hardware.Origin2000())
	f := func(nRaw uint32, wRaw uint16) bool {
		r := geometry(nRaw, wRaw)
		p1 := pattern.STrav{R: r}
		p2 := pattern.RTrav{R: r}
		res1, err1 := m.Evaluate(p1)
		res2, err2 := m.Evaluate(p2)
		resSeq, err3 := m.Evaluate(pattern.Seq{p1, p2})
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range resSeq.PerLevel {
			got := resSeq.PerLevel[i].Misses.Total()
			solo1 := res1.PerLevel[i].Misses.Total()
			solo2 := res2.PerLevel[i].Misses.Total()
			if got > solo1+solo2+1e-6 {
				return false
			}
			if got < solo1-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyConcAtLeastSoloMax(t *testing.T) {
	// Concurrent execution costs at least as much as the dearest member
	// alone (interference can only hurt).
	m := MustNew(hardware.Origin2000())
	f := func(nRaw uint32, wRaw uint16, rep uint8) bool {
		r := geometry(nRaw, wRaw)
		s := region.New("S", int64(nRaw%10_000)+1, 8)
		p1 := pattern.RSTrav{R: r, Repeats: int64(rep%4) + 1, Dir: pattern.Uni}
		p2 := pattern.STrav{R: s}
		res1, err1 := m.Evaluate(p1)
		resC, err2 := m.Evaluate(pattern.Conc{p1, p2})
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range resC.PerLevel {
			if resC.PerLevel[i].Misses.Total() < res1.PerLevel[i].Misses.Total()-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTimeMatchesMissScoring(t *testing.T) {
	// Eq. 3.1 is exactly Σ Ms·ls + Mr·lr for every evaluated pattern.
	m := MustNew(hardware.ModernX86())
	f := func(nRaw uint32, wRaw uint16, cnt uint16) bool {
		r := geometry(nRaw, wRaw)
		p := pattern.Seq{
			pattern.STrav{R: r},
			pattern.RAcc{R: r, Count: int64(cnt) + 1},
		}
		res, err := m.Evaluate(p)
		if err != nil {
			return false
		}
		var want float64
		for _, lr := range res.PerLevel {
			want += lr.Misses.Seq*lr.Level.SeqMissLatency + lr.Misses.Rnd*lr.Level.RndMissLatency
		}
		return math.Abs(res.MemoryTimeNS()-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
