package cost

import (
	"math"
	"testing"

	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

func evalL1(t *testing.T, p pattern.Pattern) Misses {
	t.Helper()
	m := MustNew(hardware.Origin2000())
	res, err := m.Evaluate(p)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return res.PerLevel[0].Misses
}

func TestSeqSecondScanOfCachedRegionIsFree(t *testing.T) {
	// Eq. 5.1/5.2: a region that fits in the cache is free on re-traversal.
	r := region.New("U", 2048, 8) // 16kB ≤ 32kB L1
	single := evalL1(t, pattern.STrav{R: r})
	double := evalL1(t, pattern.Seq{pattern.STrav{R: r}, pattern.STrav{R: r}})
	if double.Total() != single.Total() {
		t.Errorf("second scan of cached region not free: %g vs %g", double.Total(), single.Total())
	}
}

func TestSeqSecondScanOfOversizedRegionPaysFull(t *testing.T) {
	r := region.New("U", 16384, 8) // 128kB > 32kB
	single := evalL1(t, pattern.STrav{R: r})
	double := evalL1(t, pattern.Seq{pattern.STrav{R: r}, pattern.STrav{R: r}})
	if double.Total() != 2*single.Total() {
		t.Errorf("oversized rescan should pay full: %g vs 2x%g", double.Total(), single.Total())
	}
}

func TestSeqRandomPatternPartialBenefit(t *testing.T) {
	// Eq. 5.1: a random traversal after a scan of the same oversized
	// region benefits proportionally to the cached fraction.
	r := region.New("U", 8192, 8) // 64kB: fraction 0.5 cached in 32kB L1
	cold := evalL1(t, pattern.RTrav{R: r})
	warm := evalL1(t, pattern.Seq{pattern.STrav{R: r}, pattern.RTrav{R: r}})
	scan := evalL1(t, pattern.STrav{R: r})
	gotRT := warm.Total() - scan.Total()
	want := cold.Total() * 0.5
	if math.Abs(gotRT-want) > 1e-9 {
		t.Errorf("warm r_trav = %g, want %g (half of cold %g)", gotRT, want, cold.Total())
	}
}

func TestSeqDifferentRegionsNoBenefit(t *testing.T) {
	a := region.New("A", 2048, 8)
	b := region.New("B", 2048, 8)
	sum := evalL1(t, pattern.STrav{R: a}).Total() + evalL1(t, pattern.STrav{R: b}).Total()
	both := evalL1(t, pattern.Seq{pattern.STrav{R: a}, pattern.STrav{R: b}})
	if both.Total() != sum {
		t.Errorf("unrelated regions interfered: %g vs %g", both.Total(), sum)
	}
}

func TestStateMergeKeepsSiblingResident(t *testing.T) {
	// Extension test: A and B together fit in the cache; after scanning
	// A then B, rescanning A must still be free (the paper leaves this
	// for future research; we retain what fits).
	a := region.New("A", 1024, 8) // 8kB
	b := region.New("B", 1024, 8) // 8kB; both fit in 32kB
	p := pattern.Seq{
		pattern.STrav{R: a},
		pattern.STrav{R: b},
		pattern.STrav{R: a},
	}
	got := evalL1(t, p)
	want := evalL1(t, pattern.STrav{R: a}).Total() + evalL1(t, pattern.STrav{R: b}).Total()
	if got.Total() != want {
		t.Errorf("sibling region evicted although it fits: %g vs %g", got.Total(), want)
	}
}

func TestStateMergeEvictsWhenFull(t *testing.T) {
	// B alone fills the cache: rescanning A afterwards pays again.
	a := region.New("A", 1024, 8) // 8kB
	b := region.New("B", 8192, 8) // 64kB > 32kB L1
	p := pattern.Seq{
		pattern.STrav{R: a},
		pattern.STrav{R: b},
		pattern.STrav{R: a},
	}
	got := evalL1(t, p)
	want := 2*evalL1(t, pattern.STrav{R: a}).Total() + evalL1(t, pattern.STrav{R: b}).Total()
	if got.Total() != want {
		t.Errorf("A should be evicted by oversized B: got %g want %g", got.Total(), want)
	}
}

func TestAncestorResidencyBenefitsSubRegions(t *testing.T) {
	r := region.New("U", 2048, 8) // 16kB, fits L1
	a, b := r.Halves()
	p := pattern.Seq{
		pattern.STrav{R: r},
		pattern.Conc{pattern.STrav{R: a}, pattern.STrav{R: b}},
	}
	got := evalL1(t, p)
	want := evalL1(t, pattern.STrav{R: r})
	if got.Total() != want.Total() {
		t.Errorf("halves of cached parent not free: %g vs %g", got.Total(), want.Total())
	}
}

func TestConcDividesCache(t *testing.T) {
	// Two concurrent repetitive traversals, each of half the cache size:
	// alone each would be fully cached (first sweep only); together each
	// gets half the cache and still fits exactly; make them 3/4 cache so
	// together they thrash.
	a := region.New("A", 3072, 8) // 24kB
	b := region.New("B", 3072, 8) // 24kB
	pa := pattern.RSTrav{R: a, Repeats: 4, Dir: pattern.Uni}
	pb := pattern.RSTrav{R: b, Repeats: 4, Dir: pattern.Uni}
	solo := evalL1(t, pa).Total() + evalL1(t, pb).Total()
	conc := evalL1(t, pattern.Conc{pa, pb}).Total()
	if conc <= solo {
		t.Errorf("concurrent thrashing not modeled: conc %g ≤ solo %g", conc, solo)
	}
}

func TestConcStreamsDoNotStealCache(t *testing.T) {
	// A pure stream (footprint 1) next to a repetitive traversal must not
	// halve the traversal's cache: the rs_trav still fits.
	a := region.New("A", 3584, 8)   // 28kB ≤ 32kB
	s := region.New("S", 100000, 8) // big stream
	pa := pattern.RSTrav{R: a, Repeats: 4, Dir: pattern.Uni}
	conc := evalL1(t, pattern.Conc{pa, pattern.STrav{R: s}}).Total()
	want := evalL1(t, pa).Total() + evalL1(t, pattern.STrav{R: s}).Total()
	rel := math.Abs(conc-want) / want
	if rel > 0.02 {
		t.Errorf("stream stole cache from traversal: conc %g, want ≈%g", conc, want)
	}
}

func TestFootprints(t *testing.T) {
	m := MustNew(hardware.Origin2000())
	r := region.New("U", 8192, 8) // 64kB, 2048 L1 lines
	if got := m.Footprint(0, pattern.STrav{R: r}); got != 1 {
		t.Errorf("s_trav footprint = %g, want 1", got)
	}
	if got := m.Footprint(0, pattern.RTrav{R: r}); got != 2048 {
		t.Errorf("dense r_trav footprint = %g, want 2048", got)
	}
	sparse := region.New("S", 100, 256)
	if got := m.Footprint(0, pattern.RTrav{R: sparse, U: 8}); got != 1 {
		t.Errorf("sparse r_trav footprint = %g, want 1", got)
	}
	if got := m.Footprint(0, pattern.RSTrav{R: r, Repeats: 2, Dir: pattern.Bi}); got != 2048 {
		t.Errorf("rs_trav footprint = %g", got)
	}
	seq := pattern.Seq{pattern.RTrav{R: r}, pattern.STrav{R: r}}
	if got := m.Footprint(0, seq); got != 2048 {
		t.Errorf("Seq footprint = %g, want max 2048", got)
	}
	conc := pattern.Conc{pattern.RTrav{R: r}, pattern.RTrav{R: r}}
	if got := m.Footprint(0, conc); got != 4096 {
		t.Errorf("Conc footprint = %g, want sum 4096", got)
	}
}

func TestEvaluateValidates(t *testing.T) {
	m := MustNew(hardware.Origin2000())
	if _, err := m.Evaluate(pattern.Seq{}); err == nil {
		t.Error("empty Seq accepted")
	}
	if _, _, err := m.EvaluateFrom([]State{{}}, pattern.STrav{R: region.New("U", 1, 8)}); err == nil {
		t.Error("state-count mismatch accepted")
	}
}

func TestMemoryTimeScoring(t *testing.T) {
	// Eq. 3.1: T_mem = Σ Ms·ls + Mr·lr, verified against hand-computed
	// numbers for a single scan.
	h := hardware.Origin2000()
	m := MustNew(h)
	r := region.New("U", 4096, 8) // 32kB: 1024 L1 lines, 256 L2 lines, 2 pages
	res, err := m.Evaluate(pattern.STrav{R: r})
	if err != nil {
		t.Fatal(err)
	}
	want := 1024*8.0 + 256*188.0 + 2*228.0
	if got := res.MemoryTimeNS(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MemoryTimeNS = %g, want %g", got, want)
	}
	tot, err := m.TotalTimeNS(pattern.STrav{R: r}, 1000)
	if err != nil || math.Abs(tot-(want+1000)) > 1e-9 {
		t.Errorf("TotalTimeNS = %g (err %v), want %g", tot, err, want+1000)
	}
}

func TestResultLevelLookup(t *testing.T) {
	m := MustNew(hardware.Origin2000())
	res, _ := m.Evaluate(pattern.STrav{R: region.New("U", 4096, 8)})
	if _, ok := res.Level("L2"); !ok {
		t.Error("L2 result missing")
	}
	if _, ok := res.Level("L9"); ok {
		t.Error("phantom level found")
	}
}

func TestStateClone(t *testing.T) {
	r := region.New("U", 10, 8)
	s := State{r: 0.5}
	c := s.Clone()
	c[r] = 0.9
	if s[r] != 0.5 {
		t.Error("Clone aliases the original")
	}
}

func TestTLBLevelModeledLikeCache(t *testing.T) {
	// A scan of 10 pages must predict 10 TLB misses.
	m := MustNew(hardware.Origin2000())
	r := region.New("U", 10*2048, 8) // 10 x 16kB pages
	res, _ := m.Evaluate(pattern.STrav{R: r})
	tlb, _ := res.Level("TLB")
	if tlb.Misses.Total() != 10 {
		t.Errorf("TLB misses = %g, want 10", tlb.Misses.Total())
	}
}
