package experiments

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// TestValidationSweepMatchesPointLoop pins the grid-sweep fast path to
// the original point-at-a-time pipeline, bit for bit, on both
// measurement backends: every per-point measurement and prediction must
// carry the identical float64.
func TestValidationSweepMatchesPointLoop(t *testing.T) {
	for _, backend := range Backends() {
		t.Run(string(backend), func(t *testing.T) {
			cfg := smallValidationConfig()
			cfg.Backend = backend
			swept, err := RunValidation(context.Background(), cfg)
			if err != nil {
				t.Fatalf("sweep path: %v", err)
			}
			cfg.PointLoop = true
			looped, err := RunValidation(context.Background(), cfg)
			if err != nil {
				t.Fatalf("point loop: %v", err)
			}
			if len(swept.Operators) != len(looped.Operators) {
				t.Fatalf("sweep %d operators != loop %d", len(swept.Operators), len(looped.Operators))
			}
			for i, so := range swept.Operators {
				lo := looped.Operators[i]
				if so.Operator != lo.Operator {
					t.Fatalf("operator[%d] %q != %q", i, so.Operator, lo.Operator)
				}
				if so.Pattern != lo.Pattern {
					t.Errorf("%s: pattern label %q != loop %q", so.Operator, so.Pattern, lo.Pattern)
				}
				for j, sp := range so.Points {
					lp := lo.Points[j]
					if math.Float64bits(sp.MeasuredNS) != math.Float64bits(lp.MeasuredNS) {
						t.Errorf("%s at %d bytes: sweep measured %v != loop %v",
							so.Operator, sp.Bytes, sp.MeasuredNS, lp.MeasuredNS)
					}
					if math.Float64bits(sp.PredictedNS) != math.Float64bits(lp.PredictedNS) {
						t.Errorf("%s at %d bytes: sweep predicted %v != loop %v",
							so.Operator, sp.Bytes, sp.PredictedNS, lp.PredictedNS)
					}
					if math.Float64bits(sp.RelError) != math.Float64bits(lp.RelError) {
						t.Errorf("%s at %d bytes: sweep rel error %v != loop %v",
							so.Operator, sp.Bytes, sp.RelError, lp.RelError)
					}
				}
			}
			if err := swept.SameNumbers(looped); err != nil {
				t.Errorf("SameNumbers: %v", err)
			}
		})
	}
}

// TestValidationSweepParallelismInvariant pins the sweep path's results
// across worker counts.
func TestValidationSweepParallelismInvariant(t *testing.T) {
	base := smallValidationConfig()
	base.Backend = BackendAnalytical
	base.Workers = 1
	want, err := RunValidation(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		cfg := base
		cfg.Workers = workers
		got, err := RunValidation(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.SameNumbers(want); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
	}
}

// TestValidationSweepPoints pins the exported grid builder's shape to
// the grid RunValidation evaluates.
func TestValidationSweepPoints(t *testing.T) {
	cfg := smallValidationConfig()
	pts, err := ValidationSweepPoints(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := ValidationOperators()
	if want := len(ops) * len(cfg.Sizes); len(pts) != want {
		t.Fatalf("%d points, want %d", len(pts), want)
	}
	for i, op := range ops {
		for j, sz := range cfg.Sizes {
			pt := pts[i*len(cfg.Sizes)+j]
			if want := fmt.Sprintf("%s/%d", op, sz); pt.Key != want {
				t.Errorf("point %d keyed %q, want %q", i*len(cfg.Sizes)+j, pt.Key, want)
			}
			if pt.Pattern == nil {
				t.Errorf("point %q has nil pattern", pt.Key)
			}
		}
	}
	if _, err := ValidationSweepPoints(ValidationConfig{Sizes: []int64{64}}); err == nil {
		t.Error("undersized grid accepted")
	}
	if _, err := ValidationSweepPoints(ValidationConfig{Operators: []string{"nope"}}); err == nil {
		t.Error("unknown operator accepted")
	}
}
