package experiments

import "math"

// Pure CPU cost constants, in nanoseconds per tuple on the modeled
// 250 MHz Origin2000 (Eq. 6.1's T_cpu term). The paper calibrates T_cpu
// by running each algorithm in-cache and measuring wall-clock time minus
// memory time; our substrate has no CPU to measure, so the constants
// below are fixed once at magnitudes consistent with the per-tuple costs
// reported for the same machine class in the companion papers
// (Manegold/Boncz/Kersten 1999–2002: tens to hundreds of ns per tuple).
// Both the "measured" and predicted time series use the same constants,
// so the model-vs-measurement comparison of Figure 7 is carried entirely
// by the memory term — exactly the part the paper's model predicts.
const (
	cpuScanPerTuple      = 20.0  // predicate-free scan step
	cpuSortPerTupleLevel = 40.0  // one partition step of quick-sort
	cpuMergePerTuple     = 60.0  // merge-join advance + compare + emit
	cpuHashBuildPerTuple = 100.0 // hash + bucket write
	cpuHashProbePerTuple = 120.0 // hash + probe + emit
	cpuPartitionPerTuple = 50.0  // hash + cluster append
)

// cpuQuickSort returns T_cpu of quick-sort over n tuples.
func cpuQuickSort(n int64) float64 {
	if n < 2 {
		return 0
	}
	levels := math.Ceil(math.Log2(float64(n)))
	return cpuSortPerTupleLevel * float64(n) * levels
}

// cpuMergeJoin returns T_cpu of a 1:1 merge join of n-tuple inputs.
func cpuMergeJoin(n int64) float64 { return cpuMergePerTuple * float64(n) }

// cpuHashJoin returns T_cpu of build (inner n) plus probe (outer n).
func cpuHashJoin(n int64) float64 {
	return (cpuHashBuildPerTuple + cpuHashProbePerTuple) * float64(n)
}

// cpuPartition returns T_cpu of partitioning n tuples.
func cpuPartition(n int64) float64 { return cpuPartitionPerTuple * float64(n) }

// cpuPartitionedHashJoin returns T_cpu of partitioning both inputs and
// hash-joining the clusters.
func cpuPartitionedHashJoin(n int64) float64 {
	return 2*cpuPartition(n) + cpuHashJoin(n)
}
