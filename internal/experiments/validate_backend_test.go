package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestValidationPatternParity pins the analytical backend's pure
// pattern constructors to the patterns the trace runners declare: both
// backends must price the same access pattern or the cross-check
// compares apples to oranges. Compared via String(), which renders
// region names, geometry, and structure.
func TestValidationPatternParity(t *testing.T) {
	cfg := Config{Hier: smallValidationConfig().Hier, Seed: 42}.withDefaults()
	const sz = 16 << 10
	for _, op := range validationOps() {
		_, traceP := op.run(cfg, sz)
		pureP := op.pat(cfg, sz)
		if got, want := pureP.String(), traceP.String(); got != want {
			t.Errorf("%s: pattern mismatch\n pure:  %s\n trace: %s", op.name, got, want)
		}
	}
}

func TestAnalyticalBackendSweeps(t *testing.T) {
	cfg := smallValidationConfig()
	cfg.Backend = BackendAnalytical
	v, err := RunValidation(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunValidation(analytical): %v", err)
	}
	if v.Backend != BackendAnalytical {
		t.Errorf("backend = %q", v.Backend)
	}
	if len(v.Operators) != len(ValidationOperators()) {
		t.Fatalf("got %d operators", len(v.Operators))
	}
	for _, ov := range v.Operators {
		for _, pt := range ov.Points {
			if pt.MeasuredNS <= 0 {
				t.Errorf("%s at %d: non-positive analytical measurement %g", ov.Operator, pt.Bytes, pt.MeasuredNS)
			}
			if pt.PredictedNS <= 0 {
				t.Errorf("%s at %d: non-positive prediction %g", ov.Operator, pt.Bytes, pt.PredictedNS)
			}
		}
	}
}

func TestRunValidationRejectsBadBackend(t *testing.T) {
	cfg := smallValidationConfig()
	cfg.Backend = "oracle"
	_, err := RunValidation(context.Background(), cfg)
	if !errors.Is(err, ErrInvalidConfig) || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("bad backend: err = %v", err)
	}
}

func TestRunCrossCheckAttachesComparison(t *testing.T) {
	cfg := smallValidationConfig()
	// Larger sizes than the default fixture: the 4 kB grid's counts are
	// small enough that ±1-line granularity shows as percent-level noise.
	cfg.Sizes = []int64{32 << 10, 64 << 10}
	cfg.Operators = []string{"scan", "merge-join"}
	v, err := RunCrossCheck(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v.Backend != BackendAnalytical {
		t.Errorf("cross-check report backend = %q, want analytical", v.Backend)
	}
	cc := v.CrossCheck
	if cc == nil {
		t.Fatal("CrossCheck missing from report")
	}
	if cc.TraceWallNS <= 0 || cc.AnalyticalWallNS <= 0 {
		t.Errorf("wall clocks not recorded: %+v", cc)
	}
	if len(cc.Operators) != 2 {
		t.Fatalf("got %d cross-checked operators", len(cc.Operators))
	}
	for _, occ := range cc.Operators {
		if occ.Tolerance <= 0 {
			t.Errorf("%s: no committed tolerance", occ.Operator)
		}
		if occ.MaxDisagreement < occ.MeanDisagreement {
			t.Errorf("%s: max %g < mean %g", occ.Operator, occ.MaxDisagreement, occ.MeanDisagreement)
		}
	}
	// Sequential scans are the analytically exact case: they must agree
	// with the trace tightly even on the tiny test hierarchy.
	if scan := cc.Operators[0]; scan.Operator != "scan" || !scan.Pass {
		t.Errorf("scan cross-check failed: %+v", scan)
	}
	if !cc.Pass {
		t.Errorf("cross-check failed on exact operators: %+v", cc.Operators)
	}
}

func TestCrossCheckTolerancesCoverAllOperators(t *testing.T) {
	tol := CrossCheckTolerances()
	for _, name := range ValidationOperators() {
		if tol[name] <= 0 {
			t.Errorf("operator %s has no committed cross-check tolerance", name)
		}
	}
	if len(tol) != len(ValidationOperators()) {
		t.Errorf("%d tolerances for %d operators", len(tol), len(ValidationOperators()))
	}
}

func TestRelErrorFloorsTinyMeasurements(t *testing.T) {
	if rel, floored := relError(1000, 1100); floored || rel < 0.099 || rel > 0.101 {
		t.Errorf("normal point: rel=%g floored=%v", rel, floored)
	}
	// An all-hit run measures ~0 ns: the denominator floors to 1 ns and
	// the point must be flagged so means can exclude it.
	if rel, floored := relError(0.25, 50); !floored || rel != 49.75 {
		t.Errorf("floored point: rel=%g floored=%v", rel, floored)
	}
	if _, floored := relError(1, 50); floored {
		t.Error("1 ns measurement must not floor")
	}
}

func TestSameNumbersSnapshotGate(t *testing.T) {
	cfg := smallValidationConfig()
	cfg.Backend = BackendAnalytical
	cfg.Operators = []string{"scan", "aggregate"}
	a, err := RunValidation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunValidation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SameNumbers(b); err != nil {
		t.Fatalf("identical runs must compare equal: %v", err)
	}
	b.Operators[1].Points[0].MeasuredNS *= 1.001
	if err := a.SameNumbers(b); err == nil {
		t.Fatal("perturbed measurement must fail the snapshot gate")
	}
	b = mustClone(t, a)
	b.Backend = BackendTrace
	if err := a.SameNumbers(b); err == nil {
		t.Fatal("backend change must fail the snapshot gate")
	}
}

// mustClone deep-copies a Validation through its own JSON shape.
func mustClone(t *testing.T, v *Validation) *Validation {
	t.Helper()
	out := *v
	out.Operators = append([]OperatorValidation(nil), v.Operators...)
	for i := range out.Operators {
		out.Operators[i].Points = append([]ValidationPoint(nil), v.Operators[i].Points...)
	}
	return &out
}
