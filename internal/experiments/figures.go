package experiments

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/driver"
	"repro/internal/pattern"
	"repro/internal/region"
	"repro/internal/vmem"
	"repro/internal/workload"
)

// Fig4 demonstrates the alignment effect of Figure 4: an access of u
// consecutive bytes touches one extra cache line for (u−1) mod B of the
// B possible alignments. Measured by issuing a single access per offset
// against a cold simulator.
func Fig4(cfg Config) *Report {
	cfg = cfg.withDefaults()
	b := cfg.Hier.Levels[0].LineSize
	us := []int64{1, 8, b / 2, b - 1, b, b + 1}
	r := &Report{
		ID:     "fig4",
		Title:  fmt.Sprintf("Impact of alignment on lines touched (L1, B=%d)", b),
		Header: []string{"u", "offsets->1line", "offsets->2lines", "avg lines/access", "model (Eq. 4.3 term)"},
	}
	for _, u := range us {
		one, two := 0, 0
		var total int64
		for off := int64(0); off < b; off++ {
			rg := newRig(cfg, 1<<16)
			rg.sim.Thaw()
			rg.mem.Touch(vmem.Addr(off), u)
			m := rg.sim.Stats(0).Misses()
			total += int64(m)
			switch m {
			case 1:
				one++
			default:
				two++
			}
		}
		model := float64(ceilDiv(u, b)) + float64((u-1)%b)/float64(b)
		r.AddRow(fmt.Sprintf("%d", u), fmt.Sprintf("%d", one), fmt.Sprintf("%d", two),
			fmt.Sprintf("%.4f", float64(total)/float64(b)), fmt.Sprintf("%.4f", model))
	}
	return r
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// fig5 measures a traversal over R(n, w=256) for varying u at one cache
// level: align=0 and align=B−1 extremes, the average over alignments,
// and the model prediction (Eqs. 4.2/4.3 — identical counts for
// r_trav's 4.4/4.5 in this geometry).
func fig5(cfg Config, id, levelName string, levelIdx int) *Report {
	cfg = cfg.withDefaults()
	const w = 256
	n := int64(16384) // ‖R‖ = 4 MB
	if cfg.Quick {
		n = 2048
	}
	b := cfg.Hier.Levels[levelIdx].LineSize
	model := cost.MustNew(cfg.Hier)

	us := []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	if cfg.Quick {
		us = []int64{1, 8, 64, 256}
	}
	alignStep := b / 8
	if alignStep < 1 {
		alignStep = 1
	}

	r := &Report{
		ID:    id,
		Title: fmt.Sprintf("%s misses vs bytes used per item (s_trav/r_trav, R.n=%d, R.w=%d)", levelName, n, w),
		Header: []string{"u", "s.align0", "s.align-1", "s.avg", "r.avg",
			"pred.s", "pred.r"},
		Notes: []string{"pred.s/pred.r: Eqs. 4.2–4.5; measured averages over base alignments"},
	}

	run := func(u, offset int64, random bool, seed uint64) float64 {
		rg := newRig(cfg, int64(n*w)+1<<16)
		reg := region.New("R", n, w)
		driver.MaterializeAt(rg.mem, reg, b, offset)
		rg.sim.Thaw()
		var p pattern.Pattern
		if random {
			p = pattern.RTrav{R: reg, U: u}
		} else {
			p = pattern.STrav{R: reg, U: u}
		}
		driver.Run(rg.mem, workload.NewRNG(seed), p)
		return float64(rg.sim.Stats(levelIdx).Misses())
	}

	for _, u := range us {
		align0 := run(u, 0, false, cfg.Seed)
		alignM1 := run(u, b-1, false, cfg.Seed)
		var sSum, rSum float64
		count := 0
		for off := int64(0); off < b; off += alignStep {
			sSum += run(u, off, false, cfg.Seed)
			rSum += run(u, off, true, cfg.Seed+uint64(off))
			count++
		}
		reg := region.New("R", n, w)
		resS, _ := model.Evaluate(pattern.STrav{R: reg, U: u})
		resR, _ := model.Evaluate(pattern.RTrav{R: reg, U: u})
		r.AddRow(fmt.Sprintf("%d", u),
			fmtCount(align0), fmtCount(alignM1),
			fmtCount(sSum/float64(count)), fmtCount(rSum/float64(count)),
			fmtCount(resS.PerLevel[levelIdx].Misses.Total()),
			fmtCount(resR.PerLevel[levelIdx].Misses.Total()))
	}
	return r
}

// Fig5a is the L1 panel of Figure 5.
func Fig5a(cfg Config) *Report { return fig5(cfg, "fig5a", "L1", 0) }

// Fig5b is the L2 panel of Figure 5.
func Fig5b(cfg Config) *Report { return fig5(cfg, "fig5b", "L2", 1) }

// fig6 measures misses vs item width w for several region sizes at one
// level, for either s_trav or r_trav (the four panels of Figure 6).
func fig6(cfg Config, id, levelName string, levelIdx int, random bool, sizes []int64) *Report {
	cfg = cfg.withDefaults()
	model := cost.MustNew(cfg.Hier)
	ws := []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	if cfg.Quick {
		ws = []int64{8, 32, 256}
	}
	kind := "s_trav"
	if random {
		kind = "r_trav"
	}
	header := []string{"R.w"}
	for _, sz := range sizes {
		header = append(header, fmt.Sprintf("meas@%s", fmtBytes(sz)), fmt.Sprintf("pred@%s", fmtBytes(sz)))
	}
	r := &Report{
		ID:     id,
		Title:  fmt.Sprintf("%s misses vs item size (%s)", levelName, kind),
		Header: header,
	}
	for _, w := range ws {
		row := []string{fmt.Sprintf("%d", w)}
		for _, sz := range sizes {
			n := sz / w
			if n < 1 {
				row = append(row, "-", "-")
				continue
			}
			reg := region.New("R", n, w)
			rg := newRig(cfg, sz+(1<<16))
			driver.Materialize(rg.mem, reg, cfg.Hier.Levels[0].LineSize)
			rg.sim.Thaw()
			var p pattern.Pattern
			if random {
				p = pattern.RTrav{R: reg}
			} else {
				p = pattern.STrav{R: reg}
			}
			driver.Run(rg.mem, workload.NewRNG(cfg.Seed), p)
			meas := float64(rg.sim.Stats(levelIdx).Misses())
			res, _ := model.Evaluate(p)
			row = append(row, fmtCount(meas), fmtCount(res.PerLevel[levelIdx].Misses.Total()))
		}
		r.AddRow(row...)
	}
	return r
}

// fig6SizesL1 returns the paper's L1 panel region sizes (16–64 kB).
func fig6SizesL1(cfg Config) []int64 {
	if cfg.Quick {
		return []int64{16 << 10, 64 << 10}
	}
	return []int64{16 << 10, 24 << 10, 32 << 10, 40 << 10, 64 << 10}
}

// fig6SizesL2 returns the paper's L2 panel region sizes (2–16 MB),
// clipped to the configured maximum.
func fig6SizesL2(cfg Config) []int64 {
	if cfg.Quick {
		return []int64{2 << 20, 8 << 20}
	}
	all := []int64{2 << 20, 6 << 20, 8 << 20, 12 << 20, 16 << 20}
	var out []int64
	for _, s := range all {
		if s <= cfg.MaxSize {
			out = append(out, s)
		}
	}
	return out
}

// Fig6a: L1 misses of s_trav vs item size.
func Fig6a(cfg Config) *Report {
	cfg = cfg.withDefaults()
	return fig6(cfg, "fig6a", "L1", 0, false, fig6SizesL1(cfg))
}

// Fig6b: L2 misses of s_trav vs item size.
func Fig6b(cfg Config) *Report {
	cfg = cfg.withDefaults()
	return fig6(cfg, "fig6b", "L2", 1, false, fig6SizesL2(cfg))
}

// Fig6c: L1 misses of r_trav vs item size.
func Fig6c(cfg Config) *Report {
	cfg = cfg.withDefaults()
	return fig6(cfg, "fig6c", "L1", 0, true, fig6SizesL1(cfg))
}

// Fig6d: L2 misses of r_trav vs item size.
func Fig6d(cfg Config) *Report {
	cfg = cfg.withDefaults()
	return fig6(cfg, "fig6d", "L2", 1, true, fig6SizesL2(cfg))
}
