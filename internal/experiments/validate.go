package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/workload"
)

// This file implements the predicted-vs-simulated validation harness:
// the paper's Section 6 methodology (run each operator, compare the
// model's prediction with measured memory cost) generalized from the
// five Figure 7 sweeps to a full operator × size grid with quantified
// relative error. It is the machinery behind `costmodel validate` and
// the server's GET /v1/validate.
//
// Measurement and prediction share the hierarchy's latency figures: the
// simulator scores its counted misses with the same per-level miss
// latencies the model uses (cachesim.MemoryTimeNS vs Eq. 3.1), so the
// relative error isolates the model's miss-count accuracy, exactly the
// comparison the paper's Figure 7 makes with hardware counters.

// ValidationConfig controls a validation sweep.
type ValidationConfig struct {
	// Hier is the hardware profile to validate against (default
	// Origin2000).
	Hier *hardware.Hierarchy
	// Sizes are the relation sizes in bytes to sweep (default
	// 128 kB / 512 kB / 2 MB; Quick shrinks to 32 kB / 128 kB). Sizes
	// below MinValidationSize are rejected; the sweep normalizes them
	// to ascending order.
	Sizes []int64
	// Operators selects the operators to validate by name (default all
	// of ValidationOperators).
	Operators []string
	// Quick selects the small default size set for smoke runs.
	Quick bool
	// Seed drives workload generation (default 42).
	Seed uint64
	// Workers bounds the number of concurrently simulated grid points;
	// 0 or negative means GOMAXPROCS. Every grid point owns its private
	// simulated machine, so points are embarrassingly parallel.
	Workers int
}

// MinValidationSize is the smallest accepted relation size: below this
// the fixed operator parameters (64 partitions, B-tree fanout 4) would
// degenerate.
const MinValidationSize = 4 << 10

// ErrInvalidConfig marks caller mistakes in a ValidationConfig (unknown
// operator, undersized sweep, invalid hierarchy), as opposed to
// internal sweep failures. Callers exposing the harness over a protocol
// use errors.Is against it to pick a client-error status.
var ErrInvalidConfig = errors.New("invalid validation config")

// withDefaults fills unset fields.
func (c ValidationConfig) withDefaults() ValidationConfig {
	if c.Hier == nil {
		c.Hier = hardware.Origin2000()
	}
	if len(c.Sizes) == 0 {
		if c.Quick {
			c.Sizes = []int64{32 << 10, 128 << 10}
		} else {
			c.Sizes = []int64{128 << 10, 512 << 10, 2 << 20}
		}
	} else {
		// Normalize to ascending order (without mutating the caller's
		// slice): reports and the per-operator pattern label assume it.
		sizes := append([]int64(nil), c.Sizes...)
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
		c.Sizes = sizes
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Operators) == 0 {
		c.Operators = ValidationOperators()
	}
	return c
}

// ValidationPoint is one (operator, size) cell of the validation grid.
type ValidationPoint struct {
	// Bytes is the input relation size ‖U‖ driving the point.
	Bytes int64 `json:"bytes"`
	// MeasuredNS is the simulator's latency-scored memory time.
	MeasuredNS float64 `json:"measured_ns"`
	// PredictedNS is the cost model's T_mem (Eq. 3.1).
	PredictedNS float64 `json:"predicted_ns"`
	// RelError is |predicted − measured| / measured.
	RelError float64 `json:"rel_error"`
}

// OperatorValidation aggregates one operator's grid column.
type OperatorValidation struct {
	Operator string `json:"operator"`
	// Pattern is the canonical pattern of the largest point (paper
	// Table 2 notation).
	Pattern      string            `json:"pattern"`
	Points       []ValidationPoint `json:"points"`
	MeanRelError float64           `json:"mean_rel_error"`
	MaxRelError  float64           `json:"max_rel_error"`
}

// Validation is a full predicted-vs-simulated validation report.
type Validation struct {
	// Profile is the machine name of the validated hierarchy.
	Profile string `json:"profile"`
	Quick   bool   `json:"quick"`
	// Sizes echoes the swept relation sizes in bytes.
	Sizes     []int64              `json:"sizes"`
	Operators []OperatorValidation `json:"operators"`
	// MeanRelError is the mean of the per-operator means.
	MeanRelError float64 `json:"mean_rel_error"`
}

// Report renders the validation as an experiments Report for the shared
// text/CSV formatting.
func (v *Validation) Report() *Report {
	r := &Report{
		ID:     "validate",
		Title:  fmt.Sprintf("Predicted vs simulated T_mem on %s", v.Profile),
		Header: []string{"operator", "size", "t.meas[ms]", "t.pred[ms]", "rel-err"},
		Notes: []string{
			fmt.Sprintf("mean relative error %.4f over %d operators", v.MeanRelError, len(v.Operators)),
		},
	}
	for _, op := range v.Operators {
		for _, pt := range op.Points {
			r.AddRow(op.Operator, fmtBytes(pt.Bytes),
				fmtMS(pt.MeasuredNS), fmtMS(pt.PredictedNS),
				fmt.Sprintf("%.4f", pt.RelError))
		}
		r.AddRow(op.Operator, "mean", "", "", fmt.Sprintf("%.4f", op.MeanRelError))
	}
	return r
}

// opRunner executes one operator at one size inside a private rig and
// returns the measured memory time plus the operator's declared pattern.
type opRunner func(cfg Config, sz int64) (measNS float64, p pattern.Pattern)

// validationOp pairs an operator name with its runner.
type validationOp struct {
	name string
	run  opRunner
}

// validationOps returns the operator suite, in report order.
func validationOps() []validationOp {
	return []validationOp{
		{"scan", runValScan},
		{"sort", runValSort},
		{"merge-join", runValMergeJoin},
		{"hash-join", runValHashJoin},
		{"partition", runValPartition},
		{"radix", runValRadix},
		{"btree", runValBTree},
		{"aggregate", runValAggregate},
	}
}

// ValidationOperators lists the names of all validated operators.
func ValidationOperators() []string {
	ops := validationOps()
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = op.name
	}
	return out
}

func runValScan(cfg Config, sz int64) (float64, pattern.Pattern) {
	n := sz / 8
	rg := newRig(cfg, sz+(1<<20))
	u := rg.table("U", n, 8, workload.FillUniform)
	_, memNS := rg.measure(func() { engine.ScanSum(u, 8) })
	return memNS, engine.ScanPattern(u.Reg, 8)
}

func runValSort(cfg Config, sz int64) (float64, pattern.Pattern) {
	n := sz / 8
	rg := newRig(cfg, sz+(1<<20))
	u := rg.table("U", n, 8, workload.FillUniform)
	_, memNS := rg.measure(func() { engine.QuickSort(u) })
	return memNS, engine.QuickSortPattern(u.Reg, minCapacity(cfg))
}

func runValMergeJoin(cfg Config, sz int64) (float64, pattern.Pattern) {
	n := sz / 8
	rg := newRig(cfg, 4*sz+(1<<20))
	u := rg.table("U", n, 8, func(t workload.Keyed, _ *workload.RNG) { workload.FillSorted(t) })
	v := rg.table("V", n, 8, func(t workload.Keyed, _ *workload.RNG) { workload.FillSorted(t) })
	w := rg.table("W", n, 8, nil)
	_, memNS := rg.measure(func() { engine.MergeJoin(u, v, w) })
	return memNS, engine.MergeJoinPattern(u.Reg, v.Reg, w.Reg)
}

func runValHashJoin(cfg Config, sz int64) (float64, pattern.Pattern) {
	n := sz / 8
	rg := newRig(cfg, 12*sz+(1<<20))
	u := rg.table("U", n, 8, workload.FillPermutation)
	v := rg.table("V", n, 8, workload.FillPermutation)
	w := rg.table("W", n, 8, nil)
	_, memNS := rg.measure(func() { engine.HashJoin(rg.mem, u, v, w) })
	hReg := engine.HashRegionFor("H", n)
	return memNS, engine.HashJoinPattern(u.Reg, v.Reg, hReg, w.Reg)
}

func runValPartition(cfg Config, sz int64) (float64, pattern.Pattern) {
	const m = 64
	n := sz / 8
	rg := newRig(cfg, 4*sz+(1<<20))
	u := rg.table("U", n, 8, workload.FillUniform)
	var parts *engine.Partitions
	_, memNS := rg.measure(func() {
		parts = engine.Partition(rg.mem, u, "X", m, engine.HashPartition)
	})
	return memNS, engine.PartitionPattern(u.Reg, parts.Out.Reg, m)
}

func runValRadix(cfg Config, sz int64) (float64, pattern.Pattern) {
	const (
		fanout = 8
		passes = 2
	)
	n := sz / 8
	rg := newRig(cfg, (int64(passes)+2)*sz+(1<<20))
	u := rg.table("U", n, 8, workload.FillUniform)
	_, memNS := rg.measure(func() {
		engine.MultiPassPartition(rg.mem, u, "X", fanout, passes, engine.RadixPartition)
	})
	return memNS, engine.MultiPassPartitionPattern(u.Reg, "X", fanout, passes)
}

func runValBTree(cfg Config, sz int64) (float64, pattern.Pattern) {
	const fanout = 4
	n := sz / 8
	rg := newRig(cfg, 4*sz+(1<<20))
	u := rg.table("U", n, 8, func(t workload.Keyed, _ *workload.RNG) { workload.FillSorted(t) })
	tree := engine.BulkLoadBTree(rg.mem, "I", u, fanout) // bulk load is unobserved setup
	k := n / 4
	if k < 1 {
		k = 1
	}
	keys := make([]uint64, k)
	for i := range keys {
		keys[i] = u.RawKey(rg.rng.Intn(n))
	}
	_, memNS := rg.measure(func() {
		for _, key := range keys {
			tree.Lookup(key)
		}
	})
	return memNS, tree.LookupBatchPattern(k)
}

func runValAggregate(cfg Config, sz int64) (float64, pattern.Pattern) {
	n := sz / 8
	groups := n / 64
	if groups < 16 {
		groups = 16
	}
	rg := newRig(cfg, 3*sz+(1<<20))
	u := rg.table("U", n, 8, workload.FillUniform)
	_, memNS := rg.measure(func() { engine.HashAggregate(rg.mem, u, groups) })
	return memNS, engine.HashAggregatePattern(u.Reg, engine.AggRegionFor(u.Reg.Name+"_agg", groups))
}

// maxPatternLabel bounds the canonical pattern string recorded per
// operator: the recursive quick-sort pattern renders to tens of
// kilobytes, which would drown the JSON trajectory file.
const maxPatternLabel = 160

func patternLabel(p pattern.Pattern) string {
	s := p.String()
	if len(s) > maxPatternLabel {
		return s[:maxPatternLabel] + " …"
	}
	return s
}

// relError returns |pred − meas| / meas, guarding the zero-measurement
// corner (an all-hit run) with a 1 ns floor.
func relError(meas, pred float64) float64 {
	den := meas
	if den < 1 {
		den = 1
	}
	return math.Abs(pred-meas) / den
}

// RunValidation sweeps the configured operator × size grid, comparing
// the cost model's T_mem prediction against the cache simulator's
// latency-scored measurement for the same run, and aggregates relative
// errors per operator. Grid points run concurrently on a bounded worker
// pool (each point owns a private simulated machine); the context
// cancels the sweep between points.
func RunValidation(ctx context.Context, vcfg ValidationConfig) (*Validation, error) {
	vcfg = vcfg.withDefaults()
	if err := vcfg.Hier.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: %w: invalid hierarchy: %v", ErrInvalidConfig, err)
	}
	for _, sz := range vcfg.Sizes {
		if sz < MinValidationSize {
			return nil, fmt.Errorf("experiments: %w: size %d below minimum %d", ErrInvalidConfig, sz, MinValidationSize)
		}
	}
	byName := make(map[string]opRunner)
	for _, op := range validationOps() {
		byName[op.name] = op.run
	}
	var ops []validationOp
	for _, name := range vcfg.Operators {
		run, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("experiments: %w: unknown operator %q (have: %v)", ErrInvalidConfig, name, ValidationOperators())
		}
		ops = append(ops, validationOp{name, run})
	}

	model, err := cost.New(vcfg.Hier)
	if err != nil {
		return nil, err
	}
	// Each grid point gets a private Config (private rig, private RNG
	// stream) so concurrent points share nothing.
	cfg := Config{Hier: vcfg.Hier, Seed: vcfg.Seed}.withDefaults()

	type cell struct {
		point   ValidationPoint
		pattern string
		err     error
	}
	grid := make([][]cell, len(ops))
	for i := range grid {
		grid[i] = make([]cell, len(vcfg.Sizes))
	}

	type job struct{ op, size int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	workers := vcfg.Workers
	if total := len(ops) * len(vcfg.Sizes); workers > total {
		workers = total
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // drain remaining jobs without running them
				}
				c := &grid[j.op][j.size]
				func() {
					defer func() {
						if r := recover(); r != nil {
							c.err = fmt.Errorf("experiments: %s at %d bytes: %v",
								ops[j.op].name, vcfg.Sizes[j.size], r)
						}
					}()
					sz := vcfg.Sizes[j.size]
					measNS, p := ops[j.op].run(cfg, sz)
					res, err := model.Evaluate(p)
					if err != nil {
						c.err = err
						return
					}
					predNS := res.MemoryTimeNS()
					c.pattern = patternLabel(p)
					c.point = ValidationPoint{
						Bytes:       sz,
						MeasuredNS:  measNS,
						PredictedNS: predNS,
						RelError:    relError(measNS, predNS),
					}
				}()
			}
		}()
	}
	for i := range ops {
		for j := range vcfg.Sizes {
			jobs <- job{i, j}
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	v := &Validation{
		Profile: vcfg.Hier.Name,
		Quick:   vcfg.Quick,
		Sizes:   vcfg.Sizes,
	}
	var sum float64
	for i, op := range ops {
		ov := OperatorValidation{Operator: op.name}
		var opSum float64
		for j := range vcfg.Sizes {
			c := grid[i][j]
			if c.err != nil {
				return nil, c.err
			}
			ov.Points = append(ov.Points, c.point)
			ov.Pattern = c.pattern // largest size wins (sizes ascend)
			opSum += c.point.RelError
			if c.point.RelError > ov.MaxRelError {
				ov.MaxRelError = c.point.RelError
			}
		}
		ov.MeanRelError = opSum / float64(len(ov.Points))
		sum += ov.MeanRelError
		v.Operators = append(v.Operators, ov)
	}
	v.MeanRelError = sum / float64(len(v.Operators))
	return v, nil
}
