package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cachemodel"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// This file implements the predicted-vs-simulated validation harness:
// the paper's Section 6 methodology (run each operator, compare the
// model's prediction with measured memory cost) generalized from the
// five Figure 7 sweeps to a full operator × size grid with quantified
// relative error. It is the machinery behind `costmodel validate` and
// the server's GET /v1/validate.
//
// Two measurement backends produce the "measured" side of each grid
// point:
//
//   - BackendTrace runs the real operator in simulated memory with the
//     trace-driven cache simulator counting misses (internal/cachesim)
//     — the slow oracle, faithful to the exact address trace.
//   - BackendAnalytical prices the operator's declared access pattern
//     with the stack-distance model (internal/cachemodel) — no engine
//     execution, no trace, milliseconds instead of seconds.
//
// Measurement and prediction share the hierarchy's latency figures: both
// backends score miss counts with the same per-level miss latencies the
// model uses (Eq. 3.1), so the relative error isolates miss-count
// accuracy, exactly the comparison the paper's Figure 7 makes with
// hardware counters. RunCrossCheck runs both backends on the same grid
// and bounds their disagreement per operator.

// Backend selects how the "measured" side of a validation point is
// produced.
type Backend string

const (
	// BackendTrace replays the operator through the cache simulator.
	BackendTrace Backend = "trace"
	// BackendAnalytical prices the operator's pattern with the
	// stack-distance model.
	BackendAnalytical Backend = "analytical"
)

// Backends lists the supported validation backends.
func Backends() []Backend { return []Backend{BackendTrace, BackendAnalytical} }

// ValidationConfig controls a validation sweep.
type ValidationConfig struct {
	// Hier is the hardware profile to validate against (default
	// Origin2000).
	Hier *hardware.Hierarchy
	// Sizes are the relation sizes in bytes to sweep (default
	// 128 kB / 512 kB / 2 MB; Quick shrinks to 32 kB / 128 kB). Sizes
	// below MinValidationSize are rejected; the sweep normalizes them
	// to ascending order.
	Sizes []int64
	// Operators selects the operators to validate by name (default all
	// of ValidationOperators).
	Operators []string
	// Quick selects the small default size set for smoke runs.
	Quick bool
	// Seed drives workload generation (default 42).
	Seed uint64
	// Workers bounds the number of concurrently simulated grid points;
	// 0 or negative means GOMAXPROCS. Every grid point owns its private
	// simulated machine, so points are embarrassingly parallel.
	Workers int
	// Backend selects the measurement backend (default BackendTrace).
	Backend Backend
	// PointLoop opts out of the grid-sweep fast path and re-runs the
	// original point-at-a-time pipeline (re-validate, re-compile, and
	// re-analyze every cell from scratch). Results are bit-identical
	// either way — pinned by TestValidationSweepMatchesPointLoop — so
	// this exists for the sweep benchmark's baseline and for debugging.
	PointLoop bool
}

// MinValidationSize is the smallest accepted relation size: below this
// the fixed operator parameters (64 partitions, B-tree fanout 4) would
// degenerate.
const MinValidationSize = 4 << 10

// ErrInvalidConfig marks caller mistakes in a ValidationConfig (unknown
// operator or backend, undersized sweep, invalid hierarchy), as opposed
// to internal sweep failures. Callers exposing the harness over a
// protocol use errors.Is against it to pick a client-error status.
var ErrInvalidConfig = errors.New("invalid validation config")

// withDefaults fills unset fields.
func (c ValidationConfig) withDefaults() ValidationConfig {
	if c.Hier == nil {
		c.Hier = hardware.Origin2000()
	}
	if len(c.Sizes) == 0 {
		if c.Quick {
			c.Sizes = []int64{32 << 10, 128 << 10}
		} else {
			c.Sizes = []int64{128 << 10, 512 << 10, 2 << 20}
		}
	} else {
		// Normalize to ascending order (without mutating the caller's
		// slice): reports and the per-operator pattern label assume it.
		sizes := append([]int64(nil), c.Sizes...)
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
		c.Sizes = sizes
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Operators) == 0 {
		c.Operators = ValidationOperators()
	}
	if c.Backend == "" {
		c.Backend = BackendTrace
	}
	return c
}

// ValidationPoint is one (operator, size) cell of the validation grid.
type ValidationPoint struct {
	// Bytes is the input relation size ‖U‖ driving the point.
	Bytes int64 `json:"bytes"`
	// MeasuredNS is the backend's latency-scored memory time.
	MeasuredNS float64 `json:"measured_ns"`
	// PredictedNS is the cost model's T_mem (Eq. 3.1).
	PredictedNS float64 `json:"predicted_ns"`
	// RelError is |predicted − measured| / measured.
	RelError float64 `json:"rel_error"`
	// Floored marks a near-zero measurement (below 1 ns, an all-hit
	// run) whose denominator was floored; such points are excluded from
	// the per-operator means because their relative error is
	// deceptively small.
	Floored bool `json:"floored,omitempty"`
}

// OperatorValidation aggregates one operator's grid column.
type OperatorValidation struct {
	Operator string `json:"operator"`
	// Pattern is the canonical pattern of the largest point (paper
	// Table 2 notation).
	Pattern      string            `json:"pattern"`
	Points       []ValidationPoint `json:"points"`
	MeanRelError float64           `json:"mean_rel_error"`
	MaxRelError  float64           `json:"max_rel_error"`
	// FlooredPoints counts the points whose measurement was floored;
	// they do not contribute to MeanRelError or MaxRelError.
	FlooredPoints int `json:"floored_points,omitempty"`
}

// Validation is a full predicted-vs-simulated validation report.
type Validation struct {
	// Profile is the machine name of the validated hierarchy.
	Profile string `json:"profile"`
	// Backend is the measurement backend that produced MeasuredNS
	// ("trace" or "analytical").
	Backend Backend `json:"backend"`
	Quick   bool    `json:"quick"`
	// Sizes echoes the swept relation sizes in bytes.
	Sizes     []int64              `json:"sizes"`
	Operators []OperatorValidation `json:"operators"`
	// MeanRelError is the mean of the per-operator means.
	MeanRelError float64 `json:"mean_rel_error"`
	// FlooredPoints is the total count of floored grid points.
	FlooredPoints int `json:"floored_points"`
	// WallNS is the wall-clock duration of the sweep. Volatile: ignored
	// by snapshot comparisons.
	WallNS int64 `json:"wall_ns,omitempty"`
	// CrossCheck is present when the sweep was run via RunCrossCheck.
	CrossCheck *CrossCheck `json:"cross_check,omitempty"`
}

// Report renders the validation as an experiments Report for the shared
// text/CSV formatting.
func (v *Validation) Report() *Report {
	r := &Report{
		ID:     "validate",
		Title:  fmt.Sprintf("Predicted vs %s-measured T_mem on %s", v.Backend, v.Profile),
		Header: []string{"operator", "size", "t.meas[ms]", "t.pred[ms]", "rel-err"},
		Notes: []string{
			fmt.Sprintf("mean relative error %.4f over %d operators", v.MeanRelError, len(v.Operators)),
		},
	}
	if v.FlooredPoints > 0 {
		r.Notes = append(r.Notes,
			fmt.Sprintf("%d floored points (measured < 1 ns) excluded from the means", v.FlooredPoints))
	}
	for _, op := range v.Operators {
		for _, pt := range op.Points {
			rel := fmt.Sprintf("%.4f", pt.RelError)
			if pt.Floored {
				rel += " (floored)"
			}
			r.AddRow(op.Operator, fmtBytes(pt.Bytes),
				fmtMS(pt.MeasuredNS), fmtMS(pt.PredictedNS), rel)
		}
		r.AddRow(op.Operator, "mean", "", "", fmt.Sprintf("%.4f", op.MeanRelError))
	}
	return r
}

// opRunner executes one operator at one size inside a private rig and
// returns the measured memory time plus the operator's declared pattern.
type opRunner func(cfg Config, sz int64) (measNS float64, p pattern.Pattern)

// opPattern constructs the operator's declared pattern from geometry
// alone — no engine execution, no simulated memory. The analytical
// backend prices exactly this pattern; TestValidationPatternParity pins
// it to the pattern the trace runner reports.
type opPattern func(cfg Config, sz int64) pattern.Pattern

// validationOp pairs an operator name with its trace runner and its
// pattern-only constructor.
type validationOp struct {
	name string
	run  opRunner
	pat  opPattern
}

// validationOps returns the operator suite, in report order.
func validationOps() []validationOp {
	return []validationOp{
		{"scan", runValScan, patValScan},
		{"sort", runValSort, patValSort},
		{"merge-join", runValMergeJoin, patValMergeJoin},
		{"hash-join", runValHashJoin, patValHashJoin},
		{"partition", runValPartition, patValPartition},
		{"radix", runValRadix, patValRadix},
		{"btree", runValBTree, patValBTree},
		{"aggregate", runValAggregate, patValAggregate},
	}
}

// ValidationOperators lists the names of all validated operators.
func ValidationOperators() []string {
	ops := validationOps()
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = op.name
	}
	return out
}

func runValScan(cfg Config, sz int64) (float64, pattern.Pattern) {
	n := sz / 8
	rg := newRig(cfg, sz+(1<<20))
	u := rg.table("U", n, 8, workload.FillUniform)
	_, memNS := rg.measure(func() { engine.ScanSum(u, 8) })
	return memNS, engine.ScanPattern(u.Reg, 8)
}

func patValScan(cfg Config, sz int64) pattern.Pattern {
	return engine.ScanPattern(region.New("U", sz/8, 8), 8)
}

func runValSort(cfg Config, sz int64) (float64, pattern.Pattern) {
	n := sz / 8
	rg := newRig(cfg, sz+(1<<20))
	u := rg.table("U", n, 8, workload.FillUniform)
	_, memNS := rg.measure(func() { engine.QuickSort(u) })
	return memNS, engine.QuickSortPattern(u.Reg, minCapacity(cfg))
}

func patValSort(cfg Config, sz int64) pattern.Pattern {
	return engine.QuickSortPattern(region.New("U", sz/8, 8), minCapacity(cfg))
}

func runValMergeJoin(cfg Config, sz int64) (float64, pattern.Pattern) {
	n := sz / 8
	rg := newRig(cfg, 4*sz+(1<<20))
	u := rg.table("U", n, 8, func(t workload.Keyed, _ *workload.RNG) { workload.FillSorted(t) })
	v := rg.table("V", n, 8, func(t workload.Keyed, _ *workload.RNG) { workload.FillSorted(t) })
	w := rg.table("W", n, 8, nil)
	_, memNS := rg.measure(func() { engine.MergeJoin(u, v, w) })
	return memNS, engine.MergeJoinPattern(u.Reg, v.Reg, w.Reg)
}

func patValMergeJoin(cfg Config, sz int64) pattern.Pattern {
	n := sz / 8
	return engine.MergeJoinPattern(
		region.New("U", n, 8), region.New("V", n, 8), region.New("W", n, 8))
}

func runValHashJoin(cfg Config, sz int64) (float64, pattern.Pattern) {
	n := sz / 8
	rg := newRig(cfg, 12*sz+(1<<20))
	u := rg.table("U", n, 8, workload.FillPermutation)
	v := rg.table("V", n, 8, workload.FillPermutation)
	w := rg.table("W", n, 8, nil)
	_, memNS := rg.measure(func() { engine.HashJoin(rg.mem, u, v, w) })
	hReg := engine.HashRegionFor("H", n)
	return memNS, engine.HashJoinPattern(u.Reg, v.Reg, hReg, w.Reg)
}

func patValHashJoin(cfg Config, sz int64) pattern.Pattern {
	n := sz / 8
	return engine.HashJoinPattern(
		region.New("U", n, 8), region.New("V", n, 8),
		engine.HashRegionFor("H", n), region.New("W", n, 8))
}

func runValPartition(cfg Config, sz int64) (float64, pattern.Pattern) {
	const m = 64
	n := sz / 8
	rg := newRig(cfg, 4*sz+(1<<20))
	u := rg.table("U", n, 8, workload.FillUniform)
	var parts *engine.Partitions
	_, memNS := rg.measure(func() {
		parts = engine.Partition(rg.mem, u, "X", m, engine.HashPartition)
	})
	return memNS, engine.PartitionPattern(u.Reg, parts.Out.Reg, m)
}

func patValPartition(cfg Config, sz int64) pattern.Pattern {
	const m = 64
	n := sz / 8
	return engine.PartitionPattern(region.New("U", n, 8), region.New("X", n, 8), m)
}

func runValRadix(cfg Config, sz int64) (float64, pattern.Pattern) {
	const (
		fanout = 8
		passes = 2
	)
	n := sz / 8
	rg := newRig(cfg, (int64(passes)+2)*sz+(1<<20))
	u := rg.table("U", n, 8, workload.FillUniform)
	_, memNS := rg.measure(func() {
		engine.MultiPassPartition(rg.mem, u, "X", fanout, passes, engine.RadixPartition)
	})
	return memNS, engine.MultiPassPartitionPattern(u.Reg, "X", fanout, passes)
}

func patValRadix(cfg Config, sz int64) pattern.Pattern {
	const (
		fanout = 8
		passes = 2
	)
	return engine.MultiPassPartitionPattern(region.New("U", sz/8, 8), "X", fanout, passes)
}

// btreeLookups returns the lookup-batch size for an n-tuple relation.
func btreeLookups(n int64) int64 {
	k := n / 4
	if k < 1 {
		k = 1
	}
	return k
}

func runValBTree(cfg Config, sz int64) (float64, pattern.Pattern) {
	const fanout = 4
	n := sz / 8
	rg := newRig(cfg, 4*sz+(1<<20))
	u := rg.table("U", n, 8, func(t workload.Keyed, _ *workload.RNG) { workload.FillSorted(t) })
	tree := engine.BulkLoadBTree(rg.mem, "I", u, fanout) // bulk load is unobserved setup
	k := btreeLookups(n)
	keys := make([]uint64, k)
	for i := range keys {
		keys[i] = u.RawKey(rg.rng.Intn(n))
	}
	_, memNS := rg.measure(func() {
		for _, key := range keys {
			tree.Lookup(key)
		}
	})
	return memNS, tree.LookupBatchPattern(k)
}

func patValBTree(cfg Config, sz int64) pattern.Pattern {
	const fanout = 4
	n := sz / 8
	return engine.BTreeLookupBatchPattern(engine.BTreeLevelRegions("I", n, fanout), btreeLookups(n))
}

// aggGroups returns the group count for an n-tuple relation.
func aggGroups(n int64) int64 {
	groups := n / 64
	if groups < 16 {
		groups = 16
	}
	return groups
}

func runValAggregate(cfg Config, sz int64) (float64, pattern.Pattern) {
	n := sz / 8
	groups := aggGroups(n)
	rg := newRig(cfg, 3*sz+(1<<20))
	u := rg.table("U", n, 8, workload.FillUniform)
	_, memNS := rg.measure(func() { engine.HashAggregate(rg.mem, u, groups) })
	return memNS, engine.HashAggregatePattern(u.Reg, engine.AggRegionFor(u.Reg.Name+"_agg", groups))
}

func patValAggregate(cfg Config, sz int64) pattern.Pattern {
	n := sz / 8
	return engine.HashAggregatePattern(
		region.New("U", n, 8), engine.AggRegionFor("U_agg", aggGroups(n)))
}

// maxPatternLabel bounds the canonical pattern string recorded per
// operator: the recursive quick-sort pattern renders to tens of
// kilobytes, which would drown the JSON trajectory file.
const maxPatternLabel = 160

func patternLabel(p pattern.Pattern) string {
	s := p.String()
	if len(s) > maxPatternLabel {
		return s[:maxPatternLabel] + " …"
	}
	return s
}

// relError returns |pred − meas| / meas. A measurement below 1 ns (an
// all-hit run) floors the denominator; floored reports that case so the
// aggregation can exclude the point from means instead of letting its
// deceptively small error drag them down.
func relError(meas, pred float64) (rel float64, floored bool) {
	den := meas
	if den < 1 {
		den = 1
		floored = true
	}
	return math.Abs(pred-meas) / den, floored
}

// resolveValidationOps maps operator names to their suite entries,
// preserving the requested order.
func resolveValidationOps(names []string) ([]validationOp, error) {
	byName := make(map[string]validationOp)
	for _, op := range validationOps() {
		byName[op.name] = op
	}
	ops := make([]validationOp, 0, len(names))
	for _, name := range names {
		op, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("experiments: %w: unknown operator %q (have: %v)", ErrInvalidConfig, name, ValidationOperators())
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// buildValidationPoints lays the operator × size grid out as sweep
// points: operators outer, ascending sizes inner, keys "operator/bytes".
func buildValidationPoints(ops []validationOp, cfg Config, sizes []int64) []sweep.Point {
	pts := make([]sweep.Point, 0, len(ops)*len(sizes))
	for _, op := range ops {
		for _, sz := range sizes {
			pts = append(pts, sweep.Point{
				Key:     fmt.Sprintf("%s/%d", op.name, sz),
				Pattern: op.pat(cfg, sz),
			})
		}
	}
	return pts
}

// ValidationSweepPoints builds the exact operator × size grid
// RunValidation evaluates, as sweep points ready for sweep.Prepare
// (keys "operator/bytes"; operators outer, ascending sizes inner). The
// grid-sweep benchmark and external harnesses share it so their
// speedup and allocation contracts measure the production grid.
func ValidationSweepPoints(vcfg ValidationConfig) ([]sweep.Point, error) {
	vcfg = vcfg.withDefaults()
	if err := vcfg.Hier.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: %w: invalid hierarchy: %v", ErrInvalidConfig, err)
	}
	for _, sz := range vcfg.Sizes {
		if sz < MinValidationSize {
			return nil, fmt.Errorf("experiments: %w: size %d below minimum %d", ErrInvalidConfig, sz, MinValidationSize)
		}
	}
	ops, err := resolveValidationOps(vcfg.Operators)
	if err != nil {
		return nil, err
	}
	cfg := Config{Hier: vcfg.Hier, Seed: vcfg.Seed}.withDefaults()
	return buildValidationPoints(ops, cfg, vcfg.Sizes), nil
}

// RunValidation sweeps the configured operator × size grid, comparing
// the cost model's T_mem prediction against the selected backend's
// measurement for the same pattern, and aggregates relative errors per
// operator (floored points excluded). The grid runs through the
// internal/sweep fast path unless PointLoop opts out: predictions (and
// the analytical backend's measurements) come from one prepared grid
// evaluation; only the trace backend's engine runs still visit a
// per-point worker pool (each point owns a private simulated machine).
// The context cancels the sweep between points.
func RunValidation(ctx context.Context, vcfg ValidationConfig) (*Validation, error) {
	start := time.Now()
	vcfg = vcfg.withDefaults()
	if err := vcfg.Hier.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: %w: invalid hierarchy: %v", ErrInvalidConfig, err)
	}
	for _, sz := range vcfg.Sizes {
		if sz < MinValidationSize {
			return nil, fmt.Errorf("experiments: %w: size %d below minimum %d", ErrInvalidConfig, sz, MinValidationSize)
		}
	}
	switch vcfg.Backend {
	case BackendTrace, BackendAnalytical:
	default:
		return nil, fmt.Errorf("experiments: %w: unknown backend %q (have: %v)", ErrInvalidConfig, vcfg.Backend, Backends())
	}
	ops, err := resolveValidationOps(vcfg.Operators)
	if err != nil {
		return nil, err
	}

	model, err := cost.New(vcfg.Hier)
	if err != nil {
		return nil, err
	}
	var ana *cachemodel.Model
	if vcfg.Backend == BackendAnalytical {
		if ana, err = cachemodel.New(vcfg.Hier); err != nil {
			return nil, fmt.Errorf("experiments: %w: %v", ErrInvalidConfig, err)
		}
	}
	// Each grid point gets a private Config (private rig, private RNG
	// stream) so concurrent points share nothing.
	cfg := Config{Hier: vcfg.Hier, Seed: vcfg.Seed}.withDefaults()

	type cell struct {
		meas    float64
		pred    float64
		pattern string
		err     error
	}
	grid := make([][]cell, len(ops))
	for i := range grid {
		grid[i] = make([]cell, len(vcfg.Sizes))
	}

	// Sweep fast path: compile and flatten every cell's declared pattern
	// once, then run the whole grid through internal/sweep — predictions
	// for both backends, and the measured side too when it is analytical.
	// The trace backend's measured side still needs a real engine run per
	// point, so only its prediction rides the sweep.
	if !vcfg.PointLoop {
		pts := buildValidationPoints(ops, cfg, vcfg.Sizes)
		sg, err := sweep.Prepare(pts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		sw, err := sg.On(vcfg.Hier)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w: %v", ErrInvalidConfig, err)
		}
		swept, err := sw.Run(ctx, sweep.Options{
			Workers: vcfg.Workers,
			Predict: true,
			Price:   vcfg.Backend == BackendAnalytical,
		})
		if err != nil {
			return nil, err
		}
		for i := range ops {
			for j := range vcfg.Sizes {
				c := &grid[i][j]
				idx := i*len(vcfg.Sizes) + j
				c.pred = swept[idx].PredictedNS
				if vcfg.Backend == BackendAnalytical {
					c.meas = swept[idx].MeasuredNS
					c.pattern = patternLabel(pts[idx].Pattern)
				}
			}
		}
	}

	// Per-point worker pool: the trace backend's engine runs (each point
	// owns a private simulated machine), and the whole grid when the
	// PointLoop opt-out re-runs the original pipeline.
	if vcfg.Backend == BackendTrace || vcfg.PointLoop {
		type job struct{ op, size int }
		jobs := make(chan job)
		var wg sync.WaitGroup
		workers := vcfg.Workers
		if total := len(ops) * len(vcfg.Sizes); workers > total {
			workers = total
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					if ctx.Err() != nil {
						continue // drain remaining jobs without running them
					}
					c := &grid[j.op][j.size]
					func() {
						defer func() {
							if r := recover(); r != nil {
								c.err = fmt.Errorf("experiments: %s at %d bytes: %v",
									ops[j.op].name, vcfg.Sizes[j.size], r)
							}
						}()
						sz := vcfg.Sizes[j.size]
						var measNS float64
						var p pattern.Pattern
						if vcfg.Backend == BackendAnalytical {
							p = ops[j.op].pat(cfg, sz)
							priced, err := ana.Price(p)
							if err != nil {
								c.err = err
								return
							}
							measNS = priced.MemoryTimeNS()
						} else {
							measNS, p = ops[j.op].run(cfg, sz)
						}
						c.meas = measNS
						c.pattern = patternLabel(p)
						if vcfg.PointLoop {
							res, err := model.Evaluate(p)
							if err != nil {
								c.err = err
								return
							}
							c.pred = res.MemoryTimeNS()
						}
					}()
				}
			}()
		}
		for i := range ops {
			for j := range vcfg.Sizes {
				jobs <- job{i, j}
			}
		}
		close(jobs)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	v := &Validation{
		Profile: vcfg.Hier.Name,
		Backend: vcfg.Backend,
		Quick:   vcfg.Quick,
		Sizes:   vcfg.Sizes,
	}
	var sum float64
	var counted int
	for i, op := range ops {
		ov := OperatorValidation{Operator: op.name}
		var opSum float64
		var opCount int
		for j := range vcfg.Sizes {
			c := grid[i][j]
			if c.err != nil {
				return nil, c.err
			}
			rel, floored := relError(c.meas, c.pred)
			pt := ValidationPoint{
				Bytes:       vcfg.Sizes[j],
				MeasuredNS:  c.meas,
				PredictedNS: c.pred,
				RelError:    rel,
				Floored:     floored,
			}
			ov.Points = append(ov.Points, pt)
			ov.Pattern = c.pattern // largest size wins (sizes ascend)
			if pt.Floored {
				ov.FlooredPoints++
				continue
			}
			opSum += pt.RelError
			opCount++
			if pt.RelError > ov.MaxRelError {
				ov.MaxRelError = pt.RelError
			}
		}
		if opCount > 0 {
			ov.MeanRelError = opSum / float64(opCount)
			sum += ov.MeanRelError
			counted++
		}
		v.FlooredPoints += ov.FlooredPoints
		v.Operators = append(v.Operators, ov)
	}
	if counted > 0 {
		v.MeanRelError = sum / float64(counted)
	}
	v.WallNS = time.Since(start).Nanoseconds()
	return v, nil
}

// OperatorCrossCheck bounds one operator's trace-vs-analytical
// disagreement on the latency-scored miss counts.
type OperatorCrossCheck struct {
	Operator string `json:"operator"`
	// MeanDisagreement is the mean over sizes of
	// |analytical − trace| / trace on MeasuredNS.
	MeanDisagreement float64 `json:"mean_disagreement"`
	MaxDisagreement  float64 `json:"max_disagreement"`
	// Tolerance is the committed bound on MeanDisagreement.
	Tolerance float64 `json:"tolerance"`
	Pass      bool    `json:"pass"`
}

// CrossCheck compares the analytical backend against the trace oracle
// on the same grid: per-operator disagreement against the committed
// tolerances, plus the wall-clock speedup the analytical backend buys.
type CrossCheck struct {
	// TraceWallNS and AnalyticalWallNS are the wall-clock sweep
	// durations. Volatile: ignored by snapshot comparisons.
	TraceWallNS      int64 `json:"trace_wall_ns"`
	AnalyticalWallNS int64 `json:"analytical_wall_ns"`
	// Speedup is TraceWallNS / AnalyticalWallNS. Volatile.
	Speedup   float64              `json:"speedup"`
	Operators []OperatorCrossCheck `json:"operators"`
	// Pass reports whether every operator met its tolerance.
	Pass bool `json:"pass"`
}

// CrossCheckTolerances returns the committed per-operator bound on the
// mean trace-vs-analytical disagreement (RunCrossCheck fails operators
// beyond it). The magnitudes mirror the cost model's own fidelity per
// operator: both the model and the analytical backend price the
// declared pattern, so operators whose declared pattern idealizes the
// real trace (sort's pivot-dependent partitions, radix's pass-local
// clustering, hash-join's warm probe phase) carry proportionally wider
// bounds, while trace-faithful patterns (scan, merge-join, partition)
// are tight.
func CrossCheckTolerances() map[string]float64 {
	return map[string]float64{
		"scan":       0.02,
		"sort":       0.90,
		"merge-join": 0.02,
		"hash-join":  0.65,
		"partition":  0.10,
		"radix":      1.00,
		"btree":      0.30,
		"aggregate":  0.30,
	}
}

// RunCrossCheck runs the analytical sweep and the trace sweep on the
// same grid, attaches the per-operator disagreement and wall-clock
// speedup to the analytical report, and returns it. The report's own
// points (MeasuredNS, RelError, ...) are the analytical backend's; the
// trace sweep serves as the oracle. Operators beyond their committed
// tolerance mark the cross-check failed but do not error — callers
// (the CLI's -check flag, benchjson -checkvalidate) decide whether a
// failed cross-check is fatal.
func RunCrossCheck(ctx context.Context, vcfg ValidationConfig) (*Validation, error) {
	vcfg.Backend = BackendAnalytical
	anaRep, err := RunValidation(ctx, vcfg)
	if err != nil {
		return nil, err
	}
	vcfg.Backend = BackendTrace
	traceRep, err := RunValidation(ctx, vcfg)
	if err != nil {
		return nil, err
	}

	cc := &CrossCheck{
		TraceWallNS:      traceRep.WallNS,
		AnalyticalWallNS: anaRep.WallNS,
		Pass:             true,
	}
	if cc.AnalyticalWallNS > 0 {
		cc.Speedup = float64(cc.TraceWallNS) / float64(cc.AnalyticalWallNS)
	}
	tol := CrossCheckTolerances()
	traceOps := make(map[string]OperatorValidation)
	for _, op := range traceRep.Operators {
		traceOps[op.Operator] = op
	}
	for _, anaOp := range anaRep.Operators {
		traceOp, ok := traceOps[anaOp.Operator]
		if !ok {
			continue
		}
		occ := OperatorCrossCheck{Operator: anaOp.Operator, Tolerance: tol[anaOp.Operator]}
		var sum float64
		var count int
		for i, anaPt := range anaOp.Points {
			if i >= len(traceOp.Points) {
				break
			}
			tracePt := traceOp.Points[i]
			d, floored := relError(tracePt.MeasuredNS, anaPt.MeasuredNS)
			if floored {
				continue
			}
			sum += d
			count++
			if d > occ.MaxDisagreement {
				occ.MaxDisagreement = d
			}
		}
		if count > 0 {
			occ.MeanDisagreement = sum / float64(count)
		}
		occ.Pass = occ.MeanDisagreement <= occ.Tolerance
		if !occ.Pass {
			cc.Pass = false
		}
		cc.Operators = append(cc.Operators, occ)
	}
	anaRep.CrossCheck = cc
	return anaRep, nil
}

// SameNumbers compares the deterministic content of two validation
// reports — profile, backend, grid, per-point measurements and
// predictions, per-operator aggregates — ignoring the volatile
// wall-clock fields (WallNS, CrossCheck timings). It is the snapshot
// gate behind `costmodel validate -snapshot`: the committed
// BENCH_validate.json must reproduce bit-for-bit (within floating-point
// formatting) on every CI run, like the query-plan golden corpus.
func (v *Validation) SameNumbers(old *Validation) error {
	const eps = 1e-9
	closeEnough := func(a, b float64) bool {
		diff := math.Abs(a - b)
		scale := math.Max(math.Abs(a), math.Abs(b))
		return diff <= eps || diff <= eps*scale
	}
	if v.Profile != old.Profile {
		return fmt.Errorf("profile %q != snapshot %q", v.Profile, old.Profile)
	}
	if v.Backend != old.Backend {
		return fmt.Errorf("backend %q != snapshot %q", v.Backend, old.Backend)
	}
	if len(v.Sizes) != len(old.Sizes) {
		return fmt.Errorf("%d sizes != snapshot %d", len(v.Sizes), len(old.Sizes))
	}
	for i := range v.Sizes {
		if v.Sizes[i] != old.Sizes[i] {
			return fmt.Errorf("size[%d] %d != snapshot %d", i, v.Sizes[i], old.Sizes[i])
		}
	}
	if len(v.Operators) != len(old.Operators) {
		return fmt.Errorf("%d operators != snapshot %d", len(v.Operators), len(old.Operators))
	}
	for i, op := range v.Operators {
		oldOp := old.Operators[i]
		if op.Operator != oldOp.Operator {
			return fmt.Errorf("operator[%d] %q != snapshot %q", i, op.Operator, oldOp.Operator)
		}
		if op.FlooredPoints != oldOp.FlooredPoints {
			return fmt.Errorf("%s: %d floored points != snapshot %d", op.Operator, op.FlooredPoints, oldOp.FlooredPoints)
		}
		if !closeEnough(op.MeanRelError, oldOp.MeanRelError) {
			return fmt.Errorf("%s: mean rel error %g != snapshot %g", op.Operator, op.MeanRelError, oldOp.MeanRelError)
		}
		if len(op.Points) != len(oldOp.Points) {
			return fmt.Errorf("%s: %d points != snapshot %d", op.Operator, len(op.Points), len(oldOp.Points))
		}
		for j, pt := range op.Points {
			oldPt := oldOp.Points[j]
			if pt.Bytes != oldPt.Bytes {
				return fmt.Errorf("%s[%d]: bytes %d != snapshot %d", op.Operator, j, pt.Bytes, oldPt.Bytes)
			}
			if !closeEnough(pt.MeasuredNS, oldPt.MeasuredNS) {
				return fmt.Errorf("%s at %d bytes: measured %g ns != snapshot %g ns",
					op.Operator, pt.Bytes, pt.MeasuredNS, oldPt.MeasuredNS)
			}
			if !closeEnough(pt.PredictedNS, oldPt.PredictedNS) {
				return fmt.Errorf("%s at %d bytes: predicted %g ns != snapshot %g ns",
					op.Operator, pt.Bytes, pt.PredictedNS, oldPt.PredictedNS)
			}
		}
	}
	return nil
}
