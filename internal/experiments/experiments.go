// Package experiments implements the paper's Section 6 evaluation: it
// regenerates every table and figure — the characteristic-parameter
// tables (Tables 1 and 3), the pattern-language table (Table 2), the
// alignment study (Figures 4 and 5), the region-geometry study
// (Figure 6), and the five operator validation experiments (Figures
// 7a–7e) — and generalizes the Figure 7 comparisons into the
// predicted-vs-simulated validation harness of validate.go.
//
// Each experiment produces a Report pairing the cost model's per-level
// predictions with the cache simulator's measurements for the same run —
// the role the MIPS R10000 hardware counters play in the paper. Reports
// render as aligned text or CSV.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/vmem"
	"repro/internal/workload"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Hier is the hardware profile (default Origin2000).
	Hier *hardware.Hierarchy
	// MaxSize bounds the largest relation in bytes (default 16 MB; the
	// paper sweeps to 128 MB on real hardware — the simulator trades
	// absolute scale for exact counters, keeping every capacity
	// crossover of the profile in range).
	MaxSize int64
	// Seed drives all workload generation.
	Seed uint64
	// Quick shrinks point sets for tests.
	Quick bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Hier == nil {
		c.Hier = hardware.Origin2000()
	}
	if c.MaxSize == 0 {
		c.MaxSize = 16 << 20
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Report is one rendered experiment: a header, string-valued rows and
// explanatory notes.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Render writes an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
}

// CSV writes comma-separated values.
func (r *Report) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(r.Header, ","))
	for _, row := range r.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Generator produces one experiment report.
type Generator func(Config) *Report

// Registry maps experiment IDs to their generators, in paper order.
func Registry() []struct {
	ID  string
	Gen Generator
} {
	return []struct {
		ID  string
		Gen Generator
	}{
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"fig4", Fig4},
		{"fig5a", Fig5a},
		{"fig5b", Fig5b},
		{"fig6a", Fig6a},
		{"fig6b", Fig6b},
		{"fig6c", Fig6c},
		{"fig6d", Fig6d},
		{"fig7a", Fig7a},
		{"fig7b", Fig7b},
		{"fig7c", Fig7c},
		{"fig7d", Fig7d},
		{"fig7e", Fig7e},
	}
}

// Lookup returns the generator for an experiment ID.
func Lookup(id string) (Generator, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Gen, true
		}
	}
	return nil, false
}

// IDs lists all experiment IDs.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// rig bundles the simulated machine for one experiment run.
type rig struct {
	mem *vmem.Memory
	sim *cachesim.Simulator
	h   *hardware.Hierarchy
	rng *workload.RNG
	pad int64
}

// newRig builds a frozen rig with the given memory budget.
func newRig(cfg Config, memBytes int64) *rig {
	r := &rig{
		mem: vmem.New(memBytes),
		sim: cachesim.New(cfg.Hier),
		h:   cfg.Hier,
		rng: workload.NewRNG(cfg.Seed),
	}
	r.mem.SetObserver(r.sim)
	r.sim.Freeze()
	return r
}

// table allocates a base-staggered table and fills it (unobserved).
func (r *rig) table(name string, n, w int64, fill func(workload.Keyed, *workload.RNG)) *engine.Table {
	r.pad++
	r.mem.Alloc((r.pad%7+1)*r.h.Levels[0].LineSize, 1)
	t := engine.NewTable(r.mem, name, n, w, r.h.Levels[0].LineSize)
	if fill != nil {
		fill(t, r.rng)
	}
	return t
}

// measure runs op with counters enabled and returns per-level stats and
// the latency-scored memory time.
func (r *rig) measure(op func()) ([]cachesim.Stats, float64) {
	r.sim.Reset()
	r.sim.Thaw()
	op()
	r.sim.Freeze()
	return r.sim.AllStats(), r.sim.MemoryTimeNS()
}

// formatting helpers

func fmtCount(v float64) string {
	switch {
	case v >= 1e7:
		return fmt.Sprintf("%.2fe6", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func fmtMS(ns float64) string { return fmt.Sprintf("%.2f", ns/1e6) }

func fmtBytes(n int64) string { return hardware.FormatBytes(n) }
