package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Quick: true, MaxSize: 1 << 20, Seed: 7}.withDefaults()
}

// cell parses a fmtCount-rendered cell back to a float.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(s)
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "e6"):
		mult, s = 1e6, strings.TrimSuffix(s, "e6")
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, strings.TrimSuffix(s, "k")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable cell %q", s)
	}
	return v * mult
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig4", "fig5a", "fig5b",
		"fig6a", "fig6b", "fig6c", "fig6d", "fig7a", "fig7b", "fig7c", "fig7d", "fig7e"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("phantom experiment found")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "b"}, Notes: []string{"note"}}
	r.AddRow("1", "2")
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"# x — t", "# note", "a", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	r.CSV(&buf)
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestTable1ListsAllLevels(t *testing.T) {
	rep := Table1(quickCfg())
	var buf bytes.Buffer
	rep.Render(&buf)
	for _, want := range []string{"L1", "L2", "TLB", "C_i", "B_i"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestTable2ContainsPaperPatterns(t *testing.T) {
	rep := Table2(quickCfg())
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		"s_trav(U)",
		"r_trav(H)",
		"r_acc(1000, H)",
		"nest(X, 8, s_trav(X_j), rnd)",
		"rs_trav(1000, uni, V)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3CalibratorMatchesProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MB calibration sweeps")
	}
	rep := Table3(Config{Seed: 7}.withDefaults())
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	// The discovered rows must reproduce the profile's capacities.
	for _, want := range []string{"32kB", "4MB", "1MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 missing %q:\n%s", want, out)
		}
	}
}

func TestFig4AlignmentAverage(t *testing.T) {
	rep := Fig4(quickCfg())
	if len(rep.Rows) == 0 {
		t.Fatal("fig4 empty")
	}
	for _, row := range rep.Rows {
		meas := cell(t, row[3])
		pred := cell(t, row[4])
		if meas != pred {
			t.Errorf("fig4 u=%s: measured avg %.4f != model %.4f", row[0], meas, pred)
		}
	}
}

func TestFig5PredictionWithinAlignmentBand(t *testing.T) {
	rep := Fig5a(quickCfg())
	for _, row := range rep.Rows {
		a0, am1 := cell(t, row[1]), cell(t, row[2])
		pred := cell(t, row[5])
		lo, hi := a0, am1
		if lo > hi {
			lo, hi = hi, lo
		}
		if pred < lo-1 || pred > hi+1 {
			t.Errorf("fig5a u=%s: prediction %.0f outside alignment band [%.0f, %.0f]",
				row[0], pred, lo, hi)
		}
		// Measured average within 12% of prediction.
		avg := cell(t, row[3])
		if rel(avg, pred) > 0.12 {
			t.Errorf("fig5a u=%s: avg %.0f vs pred %.0f", row[0], avg, pred)
		}
	}
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}

func TestFig6STravSizeInvariance(t *testing.T) {
	// Paper Fig. 6a: for w ≤ B the s_trav miss count depends only on ‖R‖.
	rep := Fig6a(quickCfg())
	if len(rep.Rows) < 2 {
		t.Fatal("fig6a too small")
	}
	// Rows are w values; columns pairs (meas, pred) per size. For w=8
	// and w=32 the measured counts per size must agree.
	r8, r32 := rep.Rows[0], rep.Rows[1]
	for c := 1; c < len(r8); c += 2 {
		if r8[c] == "-" || r32[c] == "-" {
			continue
		}
		if rel(cell(t, r8[c]), cell(t, r32[c])) > 0.02 {
			t.Errorf("fig6a: s_trav misses vary with w: %s vs %s", r8[c], r32[c])
		}
	}
}

func TestFig6RTravCapacityBlowup(t *testing.T) {
	// Paper Fig. 6c/6d: r_trav over a region larger than the cache
	// produces (far) more misses than over a cache-resident one, at
	// equal w.
	rep := Fig6c(quickCfg()) // sizes 16kB (≤ C1? no, > 32kB? 16kB < 32kB L1) and 64kB
	row := rep.Rows[0]       // w = 8
	small := cell(t, row[1]) // 16kB ≤ C1
	large := cell(t, row[3]) // 64kB > C1
	// 4x the data with > 4x the misses indicates the capacity blowup.
	if large < 5*small {
		t.Errorf("fig6c: no capacity blowup: 16kB→%.0f misses, 64kB→%.0f", small, large)
	}
}

func TestFig7aQuicksortShape(t *testing.T) {
	rep := Fig7a(quickCfg())
	if len(rep.Rows) < 2 {
		t.Fatal("fig7a too small")
	}
	// Model tracks measurement at every level within 50%.
	assertModelTracks(t, rep, 0.5)
}

func TestFig7bMergeJoinShape(t *testing.T) {
	rep := Fig7b(quickCfg())
	assertModelTracks(t, rep, 0.3)
	// Sequential cost proportional to size: 4x data → ≈4x L2 misses.
	first, last := rep.Rows[0], rep.Rows[len(rep.Rows)-1]
	m1, m2 := cell(t, first[3]), cell(t, last[3])
	ratio := m2 / m1
	if ratio < 3 || ratio > 5.5 {
		t.Errorf("fig7b: L2 misses not ∝ size: ratio %.2f", ratio)
	}
}

func TestFig7cHashJoinShape(t *testing.T) {
	rep := Fig7c(quickCfg())
	assertModelTracks(t, rep, 0.55)
}

func TestFig7dPartitionShape(t *testing.T) {
	rep := Fig7d(quickCfg())
	assertModelTracks(t, rep, 0.55)
	// TLB misses must grow sharply once m exceeds the 64-entry TLB.
	var mSmall, mLarge float64
	for _, row := range rep.Rows {
		m := cell(t, row[0])
		tlbMeas := cell(t, row[5])
		if m == 2 {
			mSmall = tlbMeas
		}
		if m == 4096 {
			mLarge = tlbMeas
		}
	}
	if mLarge < 5*mSmall {
		t.Errorf("fig7d: no TLB knee: m=2 → %.0f TLB misses, m=4096 → %.0f", mSmall, mLarge)
	}
}

func TestFig7ePartitioningPaysOff(t *testing.T) {
	cfg := quickCfg()
	rep := Fig7e(cfg)
	if len(rep.Rows) < 2 {
		t.Fatal("fig7e too small")
	}
	// Clusters fitting the caches must reduce L2 misses versus the
	// plain hash join (m=1 row) on an input exceeding L2.
	plain := cell(t, rep.Rows[0][3])
	part := cell(t, rep.Rows[len(rep.Rows)-1][3])
	if part >= plain {
		t.Errorf("fig7e: partitioned join L2 misses %.0f not below plain %.0f", part, plain)
	}
}

// assertModelTracks checks measured-vs-predicted per level on every row.
func assertModelTracks(t *testing.T, rep *Report, tol float64) {
	t.Helper()
	levels := (len(rep.Header) - 3) / 2
	for _, row := range rep.Rows {
		for l := 0; l < levels; l++ {
			meas := cell(t, row[1+2*l])
			pred := cell(t, row[2+2*l])
			if meas < 64 && pred < 64 {
				continue // tiny counts: absolute noise
			}
			if rel(meas, pred) > tol {
				t.Errorf("%s %s: %s meas %.0f vs pred %.0f",
					rep.ID, row[0], rep.Header[1+2*l], meas, pred)
			}
		}
	}
}
