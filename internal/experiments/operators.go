package experiments

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/pattern"
	"repro/internal/workload"
)

// The five operator experiments of Figure 7. Each sweeps a size (or
// partitioning) parameter, runs the engine operator in simulated memory,
// and pairs the simulator's per-level miss counts and latency-scored
// memory time with the cost model's prediction for the operator's
// declared pattern (plus the shared T_cpu constant of Eq. 6.1).

// fig7Sizes returns the relation-size sweep: 128 kB to MaxSize in x4
// steps (the paper sweeps 128 kB to 128 MB).
func fig7Sizes(cfg Config) []int64 {
	if cfg.Quick {
		return []int64{128 << 10, 512 << 10}
	}
	var out []int64
	for s := int64(128 << 10); s <= cfg.MaxSize; s *= 4 {
		out = append(out, s)
	}
	return out
}

// fig7Header builds the report header for a size-sweep experiment.
func fig7Header(cfg Config, xlabel string) []string {
	h := []string{xlabel}
	for _, l := range cfg.Hier.Levels {
		h = append(h, l.Name+".meas", l.Name+".pred")
	}
	return append(h, "t.meas[ms]", "t.pred[ms]")
}

// fig7Row renders one sweep point.
func fig7Row(cfg Config, x string, stats []cachesim.Stats, memNS float64,
	res *cost.Result, cpuNS float64) []string {
	row := []string{x}
	for i := range cfg.Hier.Levels {
		row = append(row,
			fmtCount(float64(stats[i].Misses())),
			fmtCount(res.PerLevel[i].Misses.Total()))
	}
	return append(row, fmtMS(memNS+cpuNS), fmtMS(res.MemoryTimeNS()+cpuNS))
}

// minCapacity returns the smallest level capacity (quick-sort pattern
// pruning bound).
func minCapacity(cfg Config) int64 {
	min := cfg.Hier.Levels[0].Capacity
	for _, l := range cfg.Hier.Levels {
		if l.Capacity < min {
			min = l.Capacity
		}
	}
	return min
}

// Fig7a: quick-sort misses and time vs relation size.
func Fig7a(cfg Config) *Report {
	cfg = cfg.withDefaults()
	model := cost.MustNew(cfg.Hier)
	r := &Report{
		ID:     "fig7a",
		Title:  "Quick-sort (in-place) vs relation size ‖U‖",
		Header: fig7Header(cfg, "size(U)"),
		Notes:  []string{"w=8; random uniform keys; paper Fig. 7a"},
	}
	for _, sz := range fig7Sizes(cfg) {
		n := sz / 8
		rg := newRig(cfg, 2*sz+(1<<20))
		u := rg.table("U", n, 8, workload.FillUniform)
		stats, memNS := rg.measure(func() { engine.QuickSort(u) })
		p := engine.QuickSortPattern(u.Reg, minCapacity(cfg))
		res, err := model.Evaluate(p)
		if err != nil {
			panic(err)
		}
		r.AddRow(fig7Row(cfg, fmtBytes(sz), stats, memNS, res, cpuQuickSort(n))...)
	}
	return r
}

// Fig7b: merge-join misses and time vs relation size (1:1 sorted inputs).
func Fig7b(cfg Config) *Report {
	cfg = cfg.withDefaults()
	model := cost.MustNew(cfg.Hier)
	r := &Report{
		ID:     "fig7b",
		Title:  "Merge-join vs relation size (‖U‖=‖V‖=‖W‖)",
		Header: fig7Header(cfg, "size"),
		Notes:  []string{"sorted 1:1 inputs; paper Fig. 7b"},
	}
	for _, sz := range fig7Sizes(cfg) {
		n := sz / 8
		rg := newRig(cfg, 4*sz+(1<<20))
		u := rg.table("U", n, 8, func(t workload.Keyed, _ *workload.RNG) { workload.FillSorted(t) })
		v := rg.table("V", n, 8, func(t workload.Keyed, _ *workload.RNG) { workload.FillSorted(t) })
		w := rg.table("W", n, 8, nil)
		stats, memNS := rg.measure(func() { engine.MergeJoin(u, v, w) })
		res, err := model.Evaluate(engine.MergeJoinPattern(u.Reg, v.Reg, w.Reg))
		if err != nil {
			panic(err)
		}
		r.AddRow(fig7Row(cfg, fmtBytes(sz), stats, memNS, res, cpuMergeJoin(n))...)
	}
	return r
}

// Fig7c: hash-join misses and time vs relation size; the miss counts
// step up when the hash table ‖H‖ crosses a cache capacity.
func Fig7c(cfg Config) *Report {
	cfg = cfg.withDefaults()
	model := cost.MustNew(cfg.Hier)
	r := &Report{
		ID:     "fig7c",
		Title:  "Hash-join vs relation size (‖U‖=‖V‖=‖W‖)",
		Header: fig7Header(cfg, "size"),
		Notes: []string{
			"uniform 1:1 keys; ‖H‖ = 2·n·16B = 4·size",
			"paper Fig. 7c: step when ‖H‖ exceeds C2 (and the TLB span)",
		},
	}
	for _, sz := range fig7Sizes(cfg) {
		n := sz / 8
		rg := newRig(cfg, 12*sz+(1<<20))
		u := rg.table("U", n, 8, workload.FillPermutation)
		v := rg.table("V", n, 8, workload.FillPermutation)
		w := rg.table("W", n, 8, nil)
		stats, memNS := rg.measure(func() { engine.HashJoin(rg.mem, u, v, w) })
		hReg := engine.HashRegionFor("H", n)
		res, err := model.Evaluate(engine.HashJoinPattern(u.Reg, v.Reg, hReg, w.Reg))
		if err != nil {
			panic(err)
		}
		r.AddRow(fig7Row(cfg, fmtBytes(sz), stats, memNS, res, cpuHashJoin(n))...)
	}
	return r
}

// Fig7d: partitioning misses and time vs the number of partitions m for
// a fixed input; knees appear when m exceeds the TLB entry count and the
// L1/L2 line counts.
func Fig7d(cfg Config) *Report {
	cfg = cfg.withDefaults()
	model := cost.MustNew(cfg.Hier)
	// The input plus output must exceed the TLB span (1 MB on the
	// Origin2000) or the TLB knee cannot appear; 2 MB is the quick-mode
	// minimum that shows it.
	sz := int64(8 << 20)
	if sz > cfg.MaxSize {
		sz = cfg.MaxSize
	}
	if cfg.Quick {
		sz = 2 << 20
	}
	n := sz / 8
	ms := []int64{2, 8, 32, 128, 512, 2048, 8192, 32768, 131072}
	if cfg.Quick {
		ms = []int64{2, 32, 4096}
	}
	r := &Report{
		ID:     "fig7d",
		Title:  fmt.Sprintf("Partitioning ‖U‖=%s vs number of partitions m", fmtBytes(sz)),
		Header: fig7Header(cfg, "m"),
		Notes: []string{
			"paper Fig. 7d: knees at m ≈ TLB entries, then #L1, then #L2 lines",
		},
	}
	for _, m := range ms {
		if m > n/2 {
			continue
		}
		rg := newRig(cfg, 4*sz+(1<<20))
		u := rg.table("U", n, 8, workload.FillUniform)
		var parts *engine.Partitions
		stats, memNS := rg.measure(func() {
			parts = engine.Partition(rg.mem, u, "X", m, engine.HashPartition)
		})
		res, err := model.Evaluate(engine.PartitionPattern(u.Reg, parts.Out.Reg, m))
		if err != nil {
			panic(err)
		}
		r.AddRow(fig7Row(cfg, fmt.Sprintf("%d", m), stats, memNS, res, cpuPartition(n))...)
	}
	return r
}

// Fig7e: partitioned hash-join misses and time vs cluster size ‖Hj‖
// (driven by the partition count m); cost drops when each cluster's hash
// table fits the caches.
func Fig7e(cfg Config) *Report {
	cfg = cfg.withDefaults()
	model := cost.MustNew(cfg.Hier)
	// The plain hash table ‖H‖ = 4·size must exceed C2 (4 MB on the
	// Origin2000) for partitioning to pay off; 2 MB inputs are the
	// quick-mode minimum.
	sz := int64(8 << 20)
	if sz > cfg.MaxSize {
		sz = cfg.MaxSize
	}
	if cfg.Quick {
		sz = 2 << 20
	}
	n := sz / 8
	ms := []int64{1, 4, 16, 64, 256, 1024}
	if cfg.Quick {
		ms = []int64{1, 16}
	}
	r := &Report{
		ID:     "fig7e",
		Title:  fmt.Sprintf("Partitioned hash-join ‖U‖=‖V‖=%s vs cluster hash-table size", fmtBytes(sz)),
		Header: fig7Header(cfg, "‖Hj‖"),
		Notes: []string{
			"m = 1 is plain hash-join; paper Fig. 7e: cost drops once ‖Hj‖ ≤ C2, again once ≤ C1",
		},
	}
	for _, m := range ms {
		if m > n/16 {
			continue
		}
		hj := engine.HashBuckets(n/m) * engine.BucketWidth
		rg := newRig(cfg, 24*sz+(1<<20))
		u := rg.table("U", n, 8, workload.FillPermutation)
		v := rg.table("V", n, 8, workload.FillPermutation)
		w := rg.table("W", n, 8, nil)
		var stats []cachesim.Stats
		var memNS float64
		if m == 1 {
			stats, memNS = rg.measure(func() { engine.HashJoin(rg.mem, u, v, w) })
		} else {
			stats, memNS = rg.measure(func() {
				engine.PartitionedHashJoin(rg.mem, u, v, w, m, engine.HashPartition)
			})
		}
		var p pattern.Pattern
		if m == 1 {
			hReg := engine.HashRegionFor("H", n)
			p = engine.HashJoinPattern(u.Reg, v.Reg, hReg, w.Reg)
		} else {
			p = engine.PartitionedHashJoinPattern(u.Reg, v.Reg, w.Reg, m)
		}
		res, err := model.Evaluate(p)
		if err != nil {
			panic(err)
		}
		cpu := cpuHashJoin(n)
		if m > 1 {
			cpu = cpuPartitionedHashJoin(n)
		}
		r.AddRow(fig7Row(cfg, fmtBytes(hj), stats, memNS, res, cpu)...)
	}
	return r
}
