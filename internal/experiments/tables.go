package experiments

import (
	"fmt"

	"repro/internal/calibrate"
	"repro/internal/engine"
	"repro/internal/region"
)

// Table1 renders the characteristic parameters per cache level (the
// paper's Table 1), instantiated with the configured profile's values so
// every derived quantity (lines, bandwidths) is visible.
func Table1(cfg Config) *Report {
	cfg = cfg.withDefaults()
	r := &Report{
		ID:     "table1",
		Title:  "Characteristic parameters per cache level",
		Header: []string{"description", "unit", "symbol"},
		Notes:  []string{"instantiated for " + cfg.Hier.Name + " below"},
	}
	r.AddRow("cache name (level)", "-", "i")
	r.AddRow("cache capacity", "[bytes]", "C_i")
	r.AddRow("cache block size", "[bytes]", "B_i")
	r.AddRow("number of cache lines", "-", "#_i = C_i/B_i")
	r.AddRow("cache associativity", "-", "A_i")
	r.AddRow("seq. miss latency", "[ns]", "l^s_i")
	r.AddRow("seq. miss bandwidth", "[bytes/ns]", "b^s_i = B_i/l^s_i")
	r.AddRow("rnd. miss latency", "[ns]", "l^r_i")
	r.AddRow("rnd. miss bandwidth", "[bytes/ns]", "b^r_i = B_i/l^r_i")
	r.AddRow("", "", "")
	for _, l := range cfg.Hier.Levels {
		assoc := fmt.Sprintf("%d-way", l.Ways())
		if l.FullyAssociative() {
			assoc = "full"
		}
		r.AddRow(
			l.Name,
			fmt.Sprintf("C=%s B=%d #=%d %s", fmtBytes(l.Capacity), l.LineSize, l.Lines(), assoc),
			fmt.Sprintf("l^s=%.0fns l^r=%.0fns b^s=%.2f b^r=%.2f",
				l.SeqMissLatency, l.RndMissLatency, l.SeqMissBandwidth(), l.RndMissBandwidth()),
		)
	}
	return r
}

// Table2 renders the paper's Table 2: the data access patterns of the
// engine's database algorithms in the pattern language, for symbolic
// relations U, V of n tuples.
func Table2(cfg Config) *Report {
	cfg = cfg.withDefaults()
	n := int64(1000)
	u := region.New("U", n, 16)
	v := region.New("V", n, 16)
	w := region.New("W", n, 16)
	h := engine.HashRegionFor("H", n)
	agg := engine.AggRegionFor("A", 100)
	r := &Report{
		ID:     "table2",
		Title:  "Sample data access patterns (pattern language)",
		Header: []string{"algorithm", "pattern"},
		Notes:  []string{"(+) is the paper's ⊕ (sequential execution), (.) its ⊙ (concurrent execution)"},
	}
	r.AddRow("scan(U)", engine.ScanPattern(u, 0).String())
	r.AddRow("select(U)", engine.SelectPattern(u, w).String())
	r.AddRow("project(U,u=8)", engine.ProjectPattern(u, w, 8).String())
	r.AddRow("quick_sort(U)", "(+)_{i<ld n} (.)_{j<=2^i} [s_trav(U/2^{i+1}) (.) s_trav(U/2^{i+1})]")
	r.AddRow("nl_join(U,V,W)", engine.NestedLoopJoinPattern(u, v, w).String())
	r.AddRow("m_join(U,V,W)", engine.MergeJoinPattern(u, v, w).String())
	r.AddRow("hash_build(V,H)", engine.HashBuildPattern(v, h).String())
	r.AddRow("hash_probe(U,H,W)", engine.HashProbePattern(u, h, w).String())
	r.AddRow("h_join(U,V,W)", engine.HashJoinPattern(u, v, h, w).String())
	r.AddRow("partition(U,X,m)", engine.PartitionPattern(u, region.New("X", n, 16), 8).String())
	r.AddRow("hash_aggr(U,A)", engine.HashAggregatePattern(u, agg).String())
	r.AddRow("part_h_join(U,V,W)", "partition(U,X,m) (+) partition(V,Y,m) (+) (+)_{j<m} h_join(X_j,Y_j,W_j)")
	return r
}

// Table3 runs the simulated calibrator against the configured profile
// and renders discovered vs true parameters — the paper's Table 3, with
// the calibration method proven exact on the simulator.
func Table3(cfg Config) *Report {
	cfg = cfg.withDefaults()
	var outer int64
	for _, l := range cfg.Hier.Levels {
		if l.Capacity > outer {
			outer = l.Capacity
		}
	}
	res := calibrate.Simulated(cfg.Hier, 4*outer)
	r := &Report{
		ID:     "table3",
		Title:  "Hardware characteristics: calibrator output vs profile (" + cfg.Hier.Name + ")",
		Header: []string{"level", "capacity", "line", "seq-lat[ns]", "rnd-lat[ns]"},
		Notes:  []string{"top: discovered by the simulated Calibrator; bottom: ground truth"},
	}
	for i, l := range res.Levels {
		r.AddRow(fmt.Sprintf("measured-%d", i+1), fmtBytes(l.Capacity),
			fmt.Sprintf("%d", l.LineSize),
			fmt.Sprintf("%.1f", l.SeqLatency), fmt.Sprintf("%.1f", l.RndLatency))
	}
	r.AddRow("", "", "", "", "")
	for _, l := range cfg.Hier.Levels {
		r.AddRow("true "+l.Name, fmtBytes(l.Capacity),
			fmt.Sprintf("%d", l.LineSize),
			fmt.Sprintf("%.1f", l.SeqMissLatency), fmt.Sprintf("%.1f", l.RndMissLatency))
	}
	return r
}
