package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/hardware"
)

// smallValidationConfig keeps the grid unit-test sized: the SmallTest
// hierarchy shows capacity knees at kilobyte footprints.
func smallValidationConfig() ValidationConfig {
	return ValidationConfig{
		Hier:  hardware.SmallTest(),
		Sizes: []int64{4 << 10, 16 << 10},
		Quick: true,
	}
}

func TestRunValidationCoversAllOperators(t *testing.T) {
	v, err := RunValidation(context.Background(), smallValidationConfig())
	if err != nil {
		t.Fatalf("RunValidation: %v", err)
	}
	want := ValidationOperators()
	if len(v.Operators) != len(want) {
		t.Fatalf("got %d operators, want %d", len(v.Operators), len(want))
	}
	if len(want) < 6 {
		t.Fatalf("operator suite too small: %v", want)
	}
	for i, ov := range v.Operators {
		if ov.Operator != want[i] {
			t.Errorf("operator %d = %q, want %q", i, ov.Operator, want[i])
		}
		if len(ov.Points) != 2 {
			t.Errorf("%s: %d points, want 2", ov.Operator, len(ov.Points))
		}
		if ov.Pattern == "" {
			t.Errorf("%s: empty pattern", ov.Operator)
		}
		for _, pt := range ov.Points {
			if pt.MeasuredNS <= 0 {
				t.Errorf("%s at %d: non-positive measurement %g", ov.Operator, pt.Bytes, pt.MeasuredNS)
			}
			if pt.PredictedNS <= 0 {
				t.Errorf("%s at %d: non-positive prediction %g", ov.Operator, pt.Bytes, pt.PredictedNS)
			}
			if pt.RelError < 0 {
				t.Errorf("%s at %d: negative rel error", ov.Operator, pt.Bytes)
			}
		}
		if ov.MaxRelError < ov.MeanRelError {
			t.Errorf("%s: max %g < mean %g", ov.Operator, ov.MaxRelError, ov.MeanRelError)
		}
	}
	if v.MeanRelError <= 0 || v.MeanRelError > 2 {
		t.Errorf("overall mean relative error %g implausible", v.MeanRelError)
	}
	if v.Profile != "small-test" {
		t.Errorf("profile = %q", v.Profile)
	}
}

func TestRunValidationDeterministic(t *testing.T) {
	cfg := smallValidationConfig()
	cfg.Operators = []string{"scan", "hash-join"}
	a, err := RunValidation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunValidation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Operators {
		for j := range a.Operators[i].Points {
			pa, pb := a.Operators[i].Points[j], b.Operators[i].Points[j]
			if pa != pb {
				t.Errorf("%s point %d differs across worker counts: %+v vs %+v",
					a.Operators[i].Operator, j, pa, pb)
			}
		}
	}
}

func TestRunValidationNormalizesSizeOrder(t *testing.T) {
	cfg := smallValidationConfig()
	cfg.Sizes = []int64{16 << 10, 4 << 10} // descending on purpose
	cfg.Operators = []string{"scan"}
	v, err := RunValidation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v.Sizes[0] != 4<<10 || v.Sizes[1] != 16<<10 {
		t.Fatalf("sizes not normalized ascending: %v", v.Sizes)
	}
	pts := v.Operators[0].Points
	if pts[0].Bytes != 4<<10 || pts[1].Bytes != 16<<10 {
		t.Fatalf("points not in ascending size order: %+v", pts)
	}
	// The caller's slice must not be reordered in place.
	if cfg.Sizes[0] != 16<<10 {
		t.Error("RunValidation mutated the caller's Sizes slice")
	}
}

func TestRunValidationSelectsOperators(t *testing.T) {
	cfg := smallValidationConfig()
	cfg.Operators = []string{"scan", "btree"}
	v, err := RunValidation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Operators) != 2 || v.Operators[0].Operator != "scan" || v.Operators[1].Operator != "btree" {
		t.Fatalf("operator selection broken: %+v", v.Operators)
	}
}

func TestRunValidationRejectsBadInput(t *testing.T) {
	cfg := smallValidationConfig()
	cfg.Operators = []string{"no-such-op"}
	if _, err := RunValidation(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), "unknown operator") {
		t.Errorf("unknown operator: err = %v", err)
	}
	cfg = smallValidationConfig()
	cfg.Sizes = []int64{128}
	if _, err := RunValidation(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), "below minimum") {
		t.Errorf("tiny size: err = %v", err)
	}
}

func TestRunValidationCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunValidation(ctx, smallValidationConfig()); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestValidationReportRenders(t *testing.T) {
	cfg := smallValidationConfig()
	cfg.Operators = []string{"scan"}
	v, err := RunValidation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	v.Report().Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "scan") || !strings.Contains(out, "mean relative error") {
		t.Errorf("report missing fields:\n%s", out)
	}
}
