// Package workload generates deterministic test data for the experiment
// harness: key columns with controlled distributions, permutations, and
// seeded pseudo-randomness that does not depend on Go's global RNG, so
// every run of every experiment sees identical address traces. It
// supplies the uniform and 1:1-join relations of the paper's Section 6
// experiments (Figure 7) in reproducible form.
package workload

import (
	"math"
	"math/bits"
)

// Keyed is the minimal table surface the generators need: a tuple count
// and unobserved key writes (filling is setup, not measured trace).
// engine.Table satisfies it.
type Keyed interface {
	// N returns the tuple count.
	N() int64
	// SetRawKey writes the key of tuple i without observation.
	SetRawKey(i int64, v uint64)
}

// RNG is a small, fast, deterministic generator (xorshift64*), good
// enough for workload synthesis and permutation shuffles.
type RNG struct {
	state uint64
}

// NewRNG creates a generator from a non-zero seed (0 is mapped to 1).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 1
	}
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int64 in [0, n), exactly uniformly.
// Lemire's multiply-shift rejection method: hi of the 128-bit product
// x·n is uniform over [0, n) once the low half clears the rejection
// threshold 2⁶⁴ mod n (a plain `Uint64() % n` over-weights the small
// residues for n not a power of two — modulo bias).
func (r *RNG) Intn(n int64) int64 {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	un := uint64(n)
	if un&(un-1) == 0 {
		return int64(r.Uint64() & (un - 1))
	}
	threshold := -un % un // 2⁶⁴ mod n
	for {
		hi, lo := bits.Mul64(r.Uint64(), un)
		if lo >= threshold {
			return int64(hi)
		}
	}
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Permutation returns a pseudo-random permutation of [0, n).
func (r *RNG) Permutation(n int64) []int64 {
	p := make([]int64, n)
	for i := int64(0); i < n; i++ {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillUniform sets the keys of t to uniformly distributed values
// (unobserved; setup data, not part of the measured trace).
func FillUniform(t Keyed, rng *RNG) {
	n := t.N()
	for i := int64(0); i < n; i++ {
		t.SetRawKey(i, rng.Uint64())
	}
}

// FillPermutation sets the keys of t to a random permutation of 0..n-1:
// every key occurs exactly once (1:1 join workloads).
func FillPermutation(t Keyed, rng *RNG) {
	perm := rng.Permutation(t.N())
	for i, v := range perm {
		t.SetRawKey(int64(i), uint64(v))
	}
}

// FillSorted sets the keys of t to 0..n-1 in order (merge-join inputs).
func FillSorted(t Keyed) {
	n := t.N()
	for i := int64(0); i < n; i++ {
		t.SetRawKey(i, uint64(i))
	}
}

// FillSortedStep sets keys to i*step (sorted with gaps, so selections and
// band predicates have controllable selectivity).
func FillSortedStep(t Keyed, step uint64) {
	n := t.N()
	for i := int64(0); i < n; i++ {
		t.SetRawKey(i, uint64(i)*step)
	}
}

// FillMod sets key i to i mod groups — a grouping column with exactly
// `groups` distinct values, stored round-robin.
func FillMod(t Keyed, groups int64) {
	n := t.N()
	for i := int64(0); i < n; i++ {
		t.SetRawKey(i, uint64(i%groups))
	}
}

// FillZipf fills keys with an approximately Zipf-distributed choice among
// `domain` values with skew parameter s ≥ 0 (s = 0 is uniform). It uses
// the standard inverse-CDF approximation over precomputed cumulative
// weights for small domains.
func FillZipf(t Keyed, rng *RNG, domain int64, s float64) {
	if domain <= 0 {
		panic("workload: non-positive Zipf domain")
	}
	cum := make([]float64, domain)
	var total float64
	for k := int64(0); k < domain; k++ {
		total += 1.0 / math.Pow(float64(k+1), s)
		cum[k] = total
	}
	n := t.N()
	for i := int64(0); i < n; i++ {
		x := rng.Float64() * total
		// Binary search for the first cumulative weight ≥ x.
		lo, hi := int64(0), domain-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		t.SetRawKey(i, uint64(lo))
	}
}
