package workload

import (
	"testing"
	"testing/quick"
)

// memTable is a minimal Keyed implementation for tests.
type memTable struct {
	keys []uint64
}

func newMemTable(n int64) *memTable             { return &memTable{keys: make([]uint64, n)} }
func (t *memTable) N() int64                    { return int64(len(t.keys)) }
func (t *memTable) SetRawKey(i int64, v uint64) { t.keys[i] = v }

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed not remapped")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

// TestIntnUnbiased is the regression test for the modulo-bias bug.
// With n = 3·2⁶¹, the old `Uint64() % n` maps 8/3 of the 64-bit space
// onto [0, n): residues below 2⁶² are produced by three preimages and
// the rest by two, so P(v < 2⁶²) = 3/4 instead of the uniform
// 2⁶²/n = 2/3. Lemire rejection must land on 2/3; 10⁵ draws put the
// unbiased fraction within ±0.013 (≈9σ) of 2/3 while the biased value
// sits 0.083 away — the two outcomes cannot be confused.
func TestIntnUnbiased(t *testing.T) {
	const (
		n     = int64(3) << 61
		split = int64(1) << 62
		draws = 100000
	)
	r := NewRNG(12345)
	below := 0
	for i := 0; i < draws; i++ {
		if r.Intn(n) < split {
			below++
		}
	}
	frac := float64(below) / draws
	if frac < 0.653 || frac > 0.680 {
		t.Errorf("P(Intn(3<<61) < 1<<62) = %.4f, want ≈2/3 (modulo bias would give 3/4)", frac)
	}
}

// TestIntnPowerOfTwoMask pins the mask fast path: powers of two need no
// rejection loop and must still cover the full range.
func TestIntnPowerOfTwoMask(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(8)
		if v < 0 || v >= 8 {
			t.Fatalf("Intn(8) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("Intn(8) covered only %d of 8 values in 1000 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g", f)
		}
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	f := func(seed uint64, na uint8) bool {
		n := int64(na)%200 + 1
		p := NewRNG(seed + 1).Permutation(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFillPermutationCoversDomain(t *testing.T) {
	tab := newMemTable(256)
	FillPermutation(tab, NewRNG(5))
	seen := make([]bool, 256)
	for _, k := range tab.keys {
		if k >= 256 || seen[k] {
			t.Fatal("not a permutation")
		}
		seen[k] = true
	}
}

func TestFillSorted(t *testing.T) {
	tab := newMemTable(100)
	FillSorted(tab)
	for i, k := range tab.keys {
		if k != uint64(i) {
			t.Fatalf("key %d = %d", i, k)
		}
	}
}

func TestFillSortedStep(t *testing.T) {
	tab := newMemTable(10)
	FillSortedStep(tab, 7)
	for i, k := range tab.keys {
		if k != uint64(i*7) {
			t.Fatalf("key %d = %d", i, k)
		}
	}
}

func TestFillMod(t *testing.T) {
	tab := newMemTable(100)
	FillMod(tab, 7)
	counts := map[uint64]int{}
	for _, k := range tab.keys {
		if k >= 7 {
			t.Fatalf("key %d outside group domain", k)
		}
		counts[k]++
	}
	if len(counts) != 7 {
		t.Errorf("groups = %d, want 7", len(counts))
	}
}

func TestFillUniformSpread(t *testing.T) {
	tab := newMemTable(4096)
	FillUniform(tab, NewRNG(6))
	// Crude spread check: the top bit should be set about half the time.
	high := 0
	for _, k := range tab.keys {
		if k>>63 == 1 {
			high++
		}
	}
	if high < 1600 || high > 2500 {
		t.Errorf("top-bit count %d out of expected band", high)
	}
}

func TestFillZipfSkew(t *testing.T) {
	tab := newMemTable(10000)
	FillZipf(tab, NewRNG(7), 100, 1.0)
	counts := make([]int, 100)
	for _, k := range tab.keys {
		if k >= 100 {
			t.Fatalf("Zipf key %d outside domain", k)
		}
		counts[k]++
	}
	// Rank 0 must dominate rank 50 heavily under s=1.
	if counts[0] < 5*counts[50] {
		t.Errorf("no Zipf skew: rank0=%d rank50=%d", counts[0], counts[50])
	}
}

func TestFillZipfUniformWhenSZero(t *testing.T) {
	tab := newMemTable(10000)
	FillZipf(tab, NewRNG(8), 10, 0)
	counts := make([]int, 10)
	for _, k := range tab.keys {
		counts[k]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("s=0 value %d count %d not ≈1000", v, c)
		}
	}
}

func TestFillZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive domain")
		}
	}()
	FillZipf(newMemTable(1), NewRNG(1), 0, 1)
}
