package cachemodel

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
	"repro/internal/workload"
)

// randHierarchy draws a 1–2 data-level hierarchy (plus an optional TLB)
// with geometry sampled from the space Level.Validate accepts: power-of-
// two line sizes and set counts, associativity dividing the line count.
// assocs constrains the associativity draw (0 = fully associative).
func randHierarchy(rng *workload.RNG, assocs []int) *hardware.Hierarchy {
	lineSizes := []int64{16, 32, 64, 128}

	mkLevel := func(name string, minLines int64) hardware.Level {
		line := lineSizes[rng.Intn(int64(len(lineSizes)))]
		lines := minLines << rng.Intn(4) // minLines … 8·minLines
		return hardware.Level{
			Name:           name,
			Capacity:       lines * line,
			LineSize:       line,
			Associativity:  assocs[rng.Intn(int64(len(assocs)))],
			SeqMissLatency: 1 + float64(rng.Intn(8)),
			RndMissLatency: 10 + float64(rng.Intn(30)),
		}
	}

	h := &hardware.Hierarchy{Name: "prop", ClockNS: 1}
	l1 := mkLevel("L1", 16)
	h.Levels = append(h.Levels, l1)
	if rng.Intn(2) == 0 {
		l2 := mkLevel("L2", 128)
		// Keep the hierarchy monotone (capacity and line size widen outwards).
		if l2.LineSize < l1.LineSize {
			l2.LineSize = l1.LineSize
		}
		for l2.Capacity <= l1.Capacity {
			l2.Capacity *= 2
		}
		h.Levels = append(h.Levels, l2)
	}
	if rng.Intn(2) == 0 {
		pg := int64(1024)
		h.Levels = append(h.Levels, hardware.Level{
			Name: "TLB", TLB: true,
			Capacity: (8 << rng.Intn(3)) * pg, LineSize: pg,
			SeqMissLatency: 20, RndMissLatency: 20,
		})
	}
	return h
}

// randPattern draws one basic access pattern over a region whose
// footprint brackets the innermost capacity (fits / borderline / thrashes).
func randPattern(rng *workload.RNG, h *hardware.Hierarchy) pattern.Pattern {
	capLines := h.Levels[0].Lines()
	lines := capLines/2 + rng.Intn(3*capLines) // 0.5× … 3.5× capacity
	b := h.Levels[0].LineSize
	n := lines * (b / 8)
	r := region.New(fmt.Sprintf("P%d", rng.Intn(1000)), n, 8)

	switch rng.Intn(4) {
	case 0:
		return pattern.STrav{R: r}
	case 1:
		return pattern.RSTrav{R: r, Repeats: 2 + rng.Intn(3), Dir: pattern.Uni}
	case 2:
		return pattern.RRTrav{R: r, Repeats: 2 + rng.Intn(3)}
	default:
		return pattern.RAcc{R: r, Count: n / 2}
	}
}

// TestPropertyAnalyticalTracksTraceFA replays randomized basic patterns
// on randomized fully associative geometries through both backends. On
// FA LRU the stack-distance model is an honest expectation of the
// simulator, so the per-level miss totals must stay inside a tight band
// and the innermost access count must match exactly (both backends
// count the same references). Deeper-level accesses are the inner
// level's misses — an expectation versus one trace realization — so
// they share the miss band rather than exact equality.
func TestPropertyAnalyticalTracksTraceFA(t *testing.T) {
	rng := workload.NewRNG(20260808)
	const trials = 40
	for i := 0; i < trials; i++ {
		h := randHierarchy(rng, []int{0})
		if err := h.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid hierarchy: %v", i, err)
		}
		p := randPattern(rng, h)
		m, err := New(h)
		if err != nil {
			t.Fatalf("trial %d: New: %v", i, err)
		}
		res, err := m.Price(p)
		if err != nil {
			t.Fatalf("trial %d: Price(%s): %v", i, p, err)
		}
		traced := replay(t, h, p)
		for li := range h.Levels {
			got := res.Stats(li)
			want := traced[li]
			if li == 0 && got.Accesses != want.Accesses {
				t.Errorf("trial %d %s on %s: analytical L1 accesses %d, trace %d",
					i, p, geomString(h), got.Accesses, want.Accesses)
			}
			gm, wm := float64(got.Misses()), float64(want.Misses())
			// 30% relative + half a percent of the accesses absolute slack:
			// randomized patterns (rr_trav, r_acc) compare an expectation to
			// one realization, and the r_acc cold phase (count below the
			// footprint, so not every line gets touched) is the loosest
			// approximation in the model.
			slack := 0.30*wm + 0.005*float64(want.Accesses) + 2
			if math.Abs(gm-wm) > slack {
				t.Errorf("trial %d %s on %s level %s: analytical misses %.1f, trace %.1f (slack %.1f)",
					i, p, geomString(h), h.Levels[li].Name, gm, wm, slack)
			}
		}
	}
}

// TestPropertyAssociativityBrackets draws set-associative geometries.
// The binomial placement correction assumes uniformly random set
// mapping, while real sweeps map lines to sets regularly — so the model
// is intentionally conservative and exact agreement is not promised.
// What must always hold: the corrected misses stay between a softened
// fully associative floor and the access count (a miss needs an
// access), and the innermost access count is exact. The floor is
// softened because the binomial smooths the FA miss step in both
// directions: at reuse distances just above capacity the FA model
// misses with probability 1 while the binomial assigns ≈½, so near the
// capacity knee the corrected expectation can dip up to ~25% below the
// FA step before conflict misses dominate again.
func TestPropertyAssociativityBrackets(t *testing.T) {
	rng := workload.NewRNG(99)
	const trials = 40
	for i := 0; i < trials; i++ {
		h := randHierarchy(rng, []int{1, 2, 4})
		if err := h.Validate(); err != nil {
			t.Fatalf("trial %d: invalid hierarchy: %v", i, err)
		}
		faH := &hardware.Hierarchy{Name: h.Name, ClockNS: h.ClockNS,
			Levels: append([]hardware.Level(nil), h.Levels...)}
		for j := range faH.Levels {
			faH.Levels[j].Associativity = 0
		}
		p := randPattern(rng, h)
		res, err := MustNew(h).Price(p)
		if err != nil {
			t.Fatalf("trial %d: Price(%s): %v", i, p, err)
		}
		faRes, err := MustNew(faH).Price(p)
		if err != nil {
			t.Fatal(err)
		}
		traced := replay(t, h, p)
		if got, want := res.Stats(0).Accesses, traced[0].Accesses; got != want {
			t.Errorf("trial %d %s on %s: analytical L1 accesses %d, trace %d",
				i, p, geomString(h), got, want)
		}
		for li := range h.Levels {
			miss := res.Stats(li).Misses()
			faMiss := faRes.Stats(li).Misses()
			if acc := res.Stats(li).Accesses; miss > acc {
				t.Errorf("trial %d %s on %s level %s: misses %d exceed accesses %d",
					i, p, geomString(h), h.Levels[li].Name, miss, acc)
			}
			if float64(miss) < 0.70*float64(faMiss)-2 {
				t.Errorf("trial %d %s on %s level %s: set-associative misses %d below softened FA floor %d",
					i, p, geomString(h), h.Levels[li].Name, miss, faMiss)
			}
		}
	}
}

// TestPropertyFullyAssociativeSTravExact: on a fully associative level a
// single sequential sweep is analytically exact — every line is touched
// once and missed once. Equality must hold for every drawn geometry, not
// just within a band.
func TestPropertyFullyAssociativeSTravExact(t *testing.T) {
	rng := workload.NewRNG(7)
	for i := 0; i < 20; i++ {
		line := []int64{16, 32, 64}[rng.Intn(3)]
		capLines := int64(16) << rng.Intn(5)
		h := fullAssoc(capLines*line, line)
		n := (capLines/2 + rng.Intn(4*capLines)) * (line / 8)
		p := pattern.STrav{R: region.New("U", n, 8)}
		m := MustNew(h)
		res, err := m.Price(p)
		if err != nil {
			t.Fatal(err)
		}
		got, want := res.Stats(0), replay(t, h, p)[0]
		if got.Misses() != want.Misses() || got.Accesses != want.Accesses {
			t.Errorf("trial %d (line %d, %d cap lines, n=%d): analytical %d/%d misses/accesses, trace %d/%d",
				i, line, capLines, n, got.Misses(), got.Accesses, want.Misses(), want.Accesses)
		}
	}
}

func geomString(h *hardware.Hierarchy) string {
	s := ""
	for _, l := range h.Levels {
		s += fmt.Sprintf("[%s %dB/%dL/%dw]", l.Name, l.Capacity, l.LineSize, l.Associativity)
	}
	return s
}
