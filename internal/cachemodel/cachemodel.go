// Package cachemodel is the analytical measurement backend: it prices a
// data access pattern (internal/pattern) on a hardware.Hierarchy without
// replaying an address trace. Where internal/cachesim drives every
// simulated load through set-associative LRU arrays, this package
// derives, per cache level, the distribution of LRU stack distances
// (reuse distances) each basic pattern generates, converts the
// distribution to a miss count for a fully associative LRU cache (a
// reference with stack distance d hits iff d < #lines), and applies the
// binomial limited-associativity correction of Smith / Sen et al. so the
// repository's set-associative profiles (Origin2000, modern-x86,
// including their TLB levels) are priced directly.
//
// The approach follows Gysi et al., "A Fast Analytical Model of Fully
// Associative Caches" (PLDI 2019): instead of enumerating references,
// every basic pattern contributes a small set of symbolic distance
// distributions — cold (first touches), a point mass (uni-directional
// re-sweeps revisit a line after exactly the footprint), a uniform mass
// (bi-directional re-sweeps and independent random accesses), and a
// quadratic mass (random re-traversals, reproducing the paper's L²/m0
// survivor term). Sequential composition (⊕) threads a symbolic region
// stack so a later phase finds an earlier phase's leftovers at the
// right depth; concurrent composition (⊙) inflates every distance by
// the lines the interleaved siblings push between two uses of a line.
//
// The output implements the same stats surface as cachesim.Simulator
// (cachesim.Measurer), so the validation harness can swap backends.
// The model is O(atoms × levels × ways) per pattern — milliseconds for
// the full validation grid where the trace backend needs seconds.
package cachemodel

import (
	"fmt"
	"math"

	"repro/internal/cachesim"
	"repro/internal/costmath"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

// Model prices patterns on one hierarchy. It is immutable after New and
// safe for concurrent use.
type Model struct {
	hier   *hardware.Hierarchy
	levels []geom
}

// geom is one level's geometry in the units the analysis works in.
type geom struct {
	spec hardware.Level
	lv   costmath.Level // B, L, C as float64
	ways int            // effective associativity
	sets float64        // number of associative sets
	full bool           // fully associative: exact LRU stack condition
}

// New builds a model for the hierarchy. Unlike cachesim.New it returns
// an error instead of panicking, so servers can reject a bad profile.
func New(h *hardware.Hierarchy) (*Model, error) {
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("cachemodel: %w", err)
	}
	m := &Model{hier: h}
	for _, spec := range h.Levels {
		m.levels = append(m.levels, geom{
			spec: spec,
			lv: costmath.Level{
				C: float64(spec.Capacity),
				B: float64(spec.LineSize),
				L: float64(spec.Lines()),
			},
			ways: spec.Ways(),
			sets: float64(spec.Sets()),
			full: spec.FullyAssociative(),
		})
	}
	return m, nil
}

// MustNew is New, panicking on error (tests and fixed built-in profiles).
func MustNew(h *hardware.Hierarchy) *Model {
	m, err := New(h)
	if err != nil {
		panic(err)
	}
	return m
}

// Hierarchy returns the modeled hierarchy.
func (m *Model) Hierarchy() *hardware.Hierarchy { return m.hier }

// levelResult accumulates one level's expectations in float64; Result
// rounds them into cachesim.Stats on demand.
type levelResult struct {
	accesses float64
	seqMiss  float64
	rndMiss  float64
}

// Result is the priced outcome of one pattern. It implements
// cachesim.Measurer, the read-only stats surface shared with the
// trace-driven simulator.
type Result struct {
	hier   *hardware.Hierarchy
	levels []levelResult
}

var _ cachesim.Measurer = (*Result)(nil)

// Hierarchy returns the hierarchy the pattern was priced on.
func (r *Result) Hierarchy() *hardware.Hierarchy { return r.hier }

// Stats returns the expected counters of level i, rounded to integers.
func (r *Result) Stats(i int) cachesim.Stats {
	lr := r.levels[i]
	s := cachesim.Stats{
		Accesses:  uint64(math.Round(lr.accesses)),
		SeqMisses: uint64(math.Round(lr.seqMiss)),
		RndMisses: uint64(math.Round(lr.rndMiss)),
	}
	if m := s.SeqMisses + s.RndMisses; s.Accesses > m {
		s.Hits = s.Accesses - m
	}
	return s
}

// StatsByName returns the counters for the named level.
func (r *Result) StatsByName(name string) (cachesim.Stats, bool) {
	for i, l := range r.hier.Levels {
		if l.Name == name {
			return r.Stats(i), true
		}
	}
	return cachesim.Stats{}, false
}

// AllStats returns the counters for all levels in hierarchy order.
func (r *Result) AllStats() []cachesim.Stats {
	out := make([]cachesim.Stats, len(r.levels))
	for i := range r.levels {
		out[i] = r.Stats(i)
	}
	return out
}

// MissesNS returns level i's expected (seq, rnd) miss counts without
// rounding — what the cross-check against the trace simulator compares.
func (r *Result) MissesNS(i int) (seq, rnd float64) {
	return r.levels[i].seqMiss, r.levels[i].rndMiss
}

// MemoryTimeNS scores the expected misses with the hierarchy's
// latencies, exactly as cachesim.Simulator.MemoryTimeNS scores its
// counted ones.
func (r *Result) MemoryTimeNS() float64 {
	var t float64
	for i, lr := range r.levels {
		spec := r.hier.Levels[i]
		t += lr.seqMiss*spec.SeqMissLatency + lr.rndMiss*spec.RndMissLatency
	}
	return t
}

// Price analyzes p and returns the expected per-level counters. The
// pattern must validate; regions need no materialized Base. Callers
// pricing many patterns (or the same pattern repeatedly) should
// Prepare once and price through a Pricer, which reuses its analysis
// buffers and memoizes the distance-mass integrals (see pricer.go).
func (m *Model) Price(p pattern.Pattern) (*Result, error) {
	prep, err := Prepare(p)
	if err != nil {
		return nil, err
	}
	var az analyzer
	res := &Result{hier: m.hier}
	m.priceInto(&az, prep, res)
	return res, nil
}

// priceInto runs the per-level analysis of prep with az's scratch
// buffers, writing the outcome into res (levels resized in place).
func (m *Model) priceInto(az *analyzer, prep *PreparedPattern, res *Result) {
	res.hier = m.hier
	if cap(res.levels) < len(m.levels) {
		res.levels = make([]levelResult, len(m.levels))
	}
	res.levels = res.levels[:len(m.levels)]
	var prevDataMisses float64
	firstData := true
	for i, g := range m.levels {
		az.level = int32(i)
		lr := az.analyzeLevel(g, prep.phases)
		if !g.spec.TLB {
			// The trace simulator filters data-level hits from the levels
			// behind them; mirror that in the access counters (the miss
			// expectations are per-level and unaffected).
			if !firstData {
				lr.accesses = prevDataMisses
				if total := lr.seqMiss + lr.rndMiss; total > lr.accesses {
					scale := lr.accesses / total
					if total == 0 {
						scale = 0
					}
					lr.seqMiss *= scale
					lr.rndMiss *= scale
				}
			}
			prevDataMisses = lr.seqMiss + lr.rndMiss
			firstData = false
		}
		res.levels[i] = lr
	}
}

// phase is one step of the flattened ⊕-sequence: one atom, or several
// ⊙-interleaved atoms.
type phase struct {
	atoms []atom
}

// atom is one basic pattern occurrence in program order. The root of
// its region's parent chain — the identity the symbolic region stack
// tracks — and the value key of its analysis parameters are resolved
// at flatten time so level analysis stays allocation-free and profiles
// of geometrically identical atoms can share one computation.
type atom struct {
	p    pattern.Pattern
	root *region.Region
	pk   profileKey
}

// profileKey captures every input of profileAtom except the level
// geometry: the basic pattern kind and its numeric parameters, plus
// the region's (n, w). Atoms with equal keys produce bit-identical
// profiles on the same level — the recursive operator patterns
// (quick-sort halves, radix passes, B-tree levels) repeat a handful of
// keys exponentially often.
type profileKey struct {
	op    uint8
	n     int64
	w     int64
	u     int64
	a     int64 // repeats (rs_trav/rr_trav) or count (r_acc/nest)
	m     int64 // nest cursors
	dir   pattern.Direction
	inner pattern.InnerKind
	order pattern.Order
	noSeq bool
}

// Basic pattern kinds for profileKey.op.
const (
	pkSTrav uint8 = iota
	pkRSTrav
	pkRTrav
	pkRRTrav
	pkRAcc
	pkNest
)

// profileKeyOf extracts the value key of a basic pattern.
func profileKeyOf(p pattern.Pattern) profileKey {
	switch q := p.(type) {
	case pattern.STrav:
		return profileKey{op: pkSTrav, n: q.R.N, w: q.R.W, u: q.U, noSeq: q.NoSeq}
	case pattern.RSTrav:
		return profileKey{op: pkRSTrav, n: q.R.N, w: q.R.W, u: q.U, a: q.Repeats, dir: q.Dir, noSeq: q.NoSeq}
	case pattern.RTrav:
		return profileKey{op: pkRTrav, n: q.R.N, w: q.R.W, u: q.U}
	case pattern.RRTrav:
		return profileKey{op: pkRRTrav, n: q.R.N, w: q.R.W, u: q.U, a: q.Repeats}
	case pattern.RAcc:
		return profileKey{op: pkRAcc, n: q.R.N, w: q.R.W, u: q.U, a: q.Count}
	case pattern.Nest:
		return profileKey{op: pkNest, n: q.R.N, w: q.R.W, u: q.U, a: q.Count, m: q.M, inner: q.Inner, order: q.Order, noSeq: q.NoSeq}
	default:
		panic(fmt.Sprintf("cachemodel: unexpected compound %T after flatten", p))
	}
}

// flatten linearizes the pattern tree into phases: Seq children follow
// one another; a Conc contributes a single phase with all the basic
// patterns of its subtree interleaved (nested Seq inside Conc is
// approximated as interleaved too — the engine's operators do not
// generate that shape).
func flatten(p pattern.Pattern) []phase {
	switch q := p.(type) {
	case pattern.Seq:
		var out []phase
		for _, sub := range q {
			out = append(out, flatten(sub)...)
		}
		return out
	case pattern.Conc:
		var ph phase
		for _, sub := range q {
			for _, sp := range flatten(sub) {
				ph.atoms = append(ph.atoms, sp.atoms...)
			}
		}
		return []phase{ph}
	default:
		return []phase{{atoms: []atom{{p: p, root: rootOf(p.Regions()[0]), pk: profileKeyOf(p)}}}}
	}
}

// rootOf returns the topmost ancestor of a region — the identity the
// symbolic region stack tracks (a sub-region is resident iff its root's
// recently-touched lines cover it).
func rootOf(r *region.Region) *region.Region {
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// distKind discriminates the symbolic distance distributions.
type distKind int

const (
	dCold distKind = iota // never seen: always a miss
	dPoint
	dUniform // uniform over [lo, hi)
	dQuad    // CDF (x/hi)², x in [0, hi): random re-traversal survivors
)

// mass is `count` line references sharing one distance distribution.
// gapRate and sat control how a stack distance converts back into
// elapsed access quanta for ⊙-sibling inflation (see expectedMissProb):
// sat > 0 marks a random-access reuse gap whose distinct-line count
// saturates exponentially towards sat; otherwise distinct lines grow
// linearly at gapRate (0 falls back to the atom's whole-run rate).
type mass struct {
	kind    distKind
	lo, hi  float64 // point: lo; uniform: [lo,hi); quad: [0,hi)
	count   float64
	seq     bool // classification if the reference misses
	gapRate float64
	sat     float64
}

// peer describes a ⊙-sibling for distance inflation: between two uses
// of a line by this atom, every live sibling advances in lock-step
// (the driver interleaves one access quantum round-robin) and pushes
// fresh lines onto the LRU stack.
type peer struct {
	footprint float64 // distinct lines the sibling touches in total
	rate      float64 // distinct lines per access quantum
}

// atomProfile is one atom's per-level analysis. Revisit masses live in
// a fixed-size array (no profile generates more than two) so pooled
// analyzers stay allocation-free.
type atomProfile struct {
	footprint float64 // distinct lines touched (region-stack credit)
	accesses  float64 // line-granule references
	rate      float64 // footprint/accesses (distance inflation)
	seq       bool    // classification of first-touch misses
	nRev      int32
	rev       [2]mass // pattern-internal revisit masses
}

// addRevisit records one pattern-internal revisit mass.
func (pr *atomProfile) addRevisit(m mass) {
	pr.rev[pr.nRev] = m
	pr.nRev++
}

// revisits returns the recorded revisit masses.
func (pr *atomProfile) revisits() []mass { return pr.rev[:pr.nRev] }

// profileAtom derives one basic pattern's per-level distance profile.
func profileAtom(g geom, p pattern.Pattern) atomProfile {
	switch q := p.(type) {
	case pattern.STrav:
		return sTravProfile(g, q.R, q.U, 1, pattern.Uni, q.NoSeq)
	case pattern.RSTrav:
		return sTravProfile(g, q.R, q.U, q.Repeats, q.Dir, q.NoSeq)
	case pattern.RTrav:
		return rTravProfile(g, q.R, q.U, 1)
	case pattern.RRTrav:
		return rTravProfile(g, q.R, q.U, q.Repeats)
	case pattern.RAcc:
		return rAccProfile(g, q.R, q.U, q.Count)
	case pattern.Nest:
		return nestProfile(g, q)
	default:
		panic(fmt.Sprintf("cachemodel: unexpected compound %T after flatten", p))
	}
}

// refLinesPerItem is the average number of line-granule references one
// item touch generates. Engine tables are line-aligned, so item i
// starts at offset i·w mod B within a line and the average over the
// offset period B/gcd(w,B) is exact — when the grids nest (w divides B
// or vice versa) it degenerates to ⌈u/B⌉; for straddling widths (the
// 24-byte aggregation buckets on 32-byte lines) it is below the paper's
// unaligned expectation ⌊u/B⌋ + 1 (Eq. 4.1), which assumes arbitrary
// item placement.
func refLinesPerItem(u float64, w int64, b float64) float64 {
	if u <= 0 {
		return 1
	}
	bi := int64(b)
	if w <= 0 || bi <= 0 {
		return costmath.LinesPerItem(u, b)
	}
	g := gcd(w%bi, bi)
	period := bi / g // distinct start offsets
	if period > 1<<16 {
		return costmath.LinesPerItem(u, b) // degenerate geometry: fall back
	}
	ui := int64(math.Ceil(u))
	var total int64
	off := int64(0)
	for i := int64(0); i < period; i++ {
		total += (off+ui-1)/bi - off/bi + 1
		off = (off + w) % bi
	}
	return float64(total) / float64(period)
}

// gcd is the euclidean greatest common divisor (gcd(0, b) = b).
func gcd(a, b int64) int64 {
	for a != 0 {
		a, b = b%a, a
	}
	return b
}

// sTravProfile covers s_trav and rs_trav (Eqs. 4.2/4.3/4.6 in
// stack-distance form): one sweep touches F distinct lines; every
// further sweep revisits each at a distance of the full footprint
// (uni-directional) or uniformly distributed below it (bi-directional,
// because the reversal revisits the freshest lines first).
func sTravProfile(g geom, r *region.Region, u0 int64, repeats int64, dir pattern.Direction, noSeq bool) atomProfile {
	n, w := r.N, r.W
	u := float64(pattern.Used(u0, r))
	seq := !noSeq
	gapSmall := costmath.GapSmall(w, u, g.lv.B)
	perItem := refLinesPerItem(u, w, g.lv.B)
	var f float64
	if gapSmall {
		f = costmath.LinesCovered(n*w, g.lv.B)
	} else {
		f = float64(n) * perItem
	}
	pr := atomProfile{
		footprint: f,
		accesses:  float64(repeats) * float64(n) * perItem,
		seq:       seq,
	}
	if pr.accesses > 0 {
		pr.rate = f / (float64(n) * perItem) // distinct lines per quantum of one sweep
	}
	if gapSmall {
		// Adjacent items share lines: the surplus references within one
		// sweep revisit at distance ~0 (always hits, at any geometry with
		// at least one way).
		if extra := float64(repeats) * (float64(n)*perItem - f); extra > 0 {
			pr.addRevisit(mass{kind: dPoint, lo: 0, count: extra, seq: seq})
		}
	}
	if repeats > 1 {
		cnt := float64(repeats-1) * f
		if dir == pattern.Uni {
			pr.addRevisit(mass{kind: dPoint, lo: f, count: cnt, seq: seq})
		} else {
			pr.addRevisit(mass{kind: dUniform, lo: 0, hi: f, count: cnt, seq: seq})
		}
	}
	return pr
}

// rTravProfile covers r_trav and rr_trav (Eqs. 4.4/4.5/4.7): a random
// permutation revisits a shared line at a uniform distance within the
// footprint; a further random sweep finds a line still resident only if
// it survived both since its last use and until its next one — the
// quadratic distribution whose fully associative expectation is the
// paper's L²/m0 survivor count.
func rTravProfile(g geom, r *region.Region, u0 int64, repeats int64) atomProfile {
	n, w := r.N, r.W
	u := float64(pattern.Used(u0, r))
	gapSmall := costmath.GapSmall(w, u, g.lv.B)
	perItem := refLinesPerItem(u, w, g.lv.B)
	var f float64
	if gapSmall {
		f = costmath.LinesCovered(n*w, g.lv.B)
	} else {
		f = float64(n) * perItem
	}
	pr := atomProfile{
		footprint: f,
		accesses:  float64(repeats) * float64(n) * perItem,
		seq:       false,
	}
	if pr.accesses > 0 {
		pr.rate = f / (float64(n) * perItem)
	}
	perSweepRefs := float64(n) * perItem
	if gapSmall && perSweepRefs > f {
		// Within one sweep the surplus references to shared lines arrive
		// at uniform stack distances inside the footprint.
		pr.addRevisit(mass{
			kind: dUniform, lo: 0, hi: f,
			count: float64(repeats) * (perSweepRefs - f),
			sat:   f,
		})
	}
	if repeats > 1 {
		pr.addRevisit(mass{
			kind: dQuad, hi: f,
			count: float64(repeats-1) * f,
			sat:   f,
		})
	}
	return pr
}

// rAccProfile covers r_acc (Eq. 4.8): count independent uniform
// accesses touch an expected ℓ distinct lines (the Stirling
// expectation of costmath.RAccLines); the remaining references revisit
// at uniform distances within that hot set — the independent-reference
// model's uniform stack-distance distribution.
func rAccProfile(g geom, r *region.Region, u0 int64, count int64) atomProfile {
	u := float64(pattern.Used(u0, r))
	f := costmath.RAccLines(g.lv, r.N, r.W, u, count)
	perAccess := refLinesPerItem(u, r.W, g.lv.B)
	refs := float64(count) * perAccess
	pr := atomProfile{footprint: f, accesses: refs, seq: false}
	if refs > 0 {
		pr.rate = f / refs
	}
	if extra := refs - f; extra > 0 && f > 0 {
		pr.addRevisit(mass{kind: dUniform, lo: 0, hi: f, count: extra, sat: f})
	}
	return pr
}

// nestProfile covers nest (Eq. 4.9): m interleaved local cursors. Local
// random patterns collapse to their global equivalents; local
// sequential cursors generate cross-traversals of one line slot per
// sub-region, whose revisit distance is the cross-footprint (ordered by
// the global cursor exactly like rs_trav/rr_trav order the sweeps).
func nestProfile(g geom, q pattern.Nest) atomProfile {
	switch q.Inner {
	case pattern.InnerRTrav:
		return rTravProfile(g, q.R, q.U, 1)
	case pattern.InnerRAcc:
		return rAccProfile(g, q.R, q.U, q.M*q.Count)
	}
	n, w := q.R.N, q.R.W
	u := float64(pattern.Used(q.U, q.R))
	seq := q.Order != pattern.OrderRandom && !q.NoSeq
	gapSmall := costmath.GapSmall(w, u, g.lv.B)
	perItem := refLinesPerItem(u, w, g.lv.B)
	if !gapSmall {
		f := float64(n) * perItem
		pr := atomProfile{footprint: f, accesses: f, seq: seq}
		if f > 0 {
			pr.rate = 1
		}
		return pr
	}
	f := costmath.LinesCovered(n*w, g.lv.B)
	refs := float64(n) * perItem
	pr := atomProfile{footprint: f, accesses: refs, seq: seq}
	if refs > 0 {
		pr.rate = f / refs
	}
	lCross := float64(q.M) * math.Ceil(u/g.lv.B)
	sweeps := float64(n) / float64(q.M)
	if extra := refs - f; extra > 0 {
		// Same-line references within one cross-traversal slot.
		pr.addRevisit(mass{kind: dPoint, lo: 0, count: extra, seq: seq})
	}
	if sweeps > 1 && lCross > 0 {
		cnt := (sweeps - 1) * lCross
		// Reloads across cross-traversals are scattered: random latency
		// (the Rnd-classified delta of costmath.NestCounts). Inside one
		// cross-traversal nearly every access lands on a different
		// cursor's line, so distinct lines accrue at the local rate
		// lCross per cross-sweep of refs/sweeps accesses — far faster
		// than the whole-run average (each line is revisited by all
		// sweeps).
		gapRate := 1.0
		if perSweep := refs / sweeps; perSweep > 0 {
			gapRate = lCross / perSweep
		}
		switch q.Order {
		case pattern.OrderUni:
			pr.addRevisit(mass{kind: dPoint, lo: lCross, count: cnt, gapRate: gapRate})
		case pattern.OrderBi:
			pr.addRevisit(mass{kind: dUniform, lo: 0, hi: lCross, count: cnt, gapRate: gapRate})
		default:
			pr.addRevisit(mass{kind: dQuad, hi: lCross, count: cnt, gapRate: gapRate})
		}
	}
	return pr
}

// distSamples is the midpoint-rule resolution for integrating the miss
// probability over a continuous distance distribution.
const distSamples = 33

// expectedMissProb integrates the level's miss probability over one
// distance mass, applying ⊙-sibling inflation to every sampled
// distance. ownRate is the atom's distinct-line rate (lines per access
// quantum), used to convert a distance into elapsed quanta.
func expectedMissProb(g geom, ms mass, ownRate float64, peers []peer) float64 {
	// quantaFor converts a stack distance (d distinct own lines touched
	// inside the reuse gap) into the elapsed own access quanta. For
	// sequential gaps distinct lines accrue linearly; for random-access
	// gaps (sat > 0) they saturate as f·(1−(1−1/f)^G), so the inverse
	// G = −f·ln(1 − d/f) is ≈ d for short gaps and diverges as d → f
	// (the peer footprint caps then take over).
	quantaFor := func(d float64) float64 {
		if ms.sat > 0 {
			if d >= ms.sat {
				return math.Inf(1)
			}
			return -ms.sat * math.Log(1-d/ms.sat)
		}
		r := ms.gapRate
		if r == 0 {
			r = ownRate
		}
		if r > 0 {
			return d / r
		}
		return d
	}
	inflate := func(d float64) float64 {
		if len(peers) == 0 || d <= 0 {
			return d
		}
		// Each sibling runs the same number of quanta inside the gap
		// (round-robin interleaving) and contributes fresh lines at its
		// own rate, capped by its footprint.
		quanta := quantaFor(d)
		out := d
		for _, p := range peers {
			add := quanta * p.rate
			if add > p.footprint {
				add = p.footprint
			}
			out += add
		}
		return out
	}
	switch ms.kind {
	case dCold:
		return 1
	case dPoint:
		return missProb(g, inflate(ms.lo))
	case dUniform:
		if ms.hi <= ms.lo {
			return missProb(g, inflate(ms.lo))
		}
		var sum float64
		for i := 0; i < distSamples; i++ {
			x := ms.lo + (ms.hi-ms.lo)*(float64(i)+0.5)/distSamples
			sum += missProb(g, inflate(x))
		}
		return sum / distSamples
	case dQuad:
		if ms.hi <= 0 {
			return 0
		}
		// Sample at the quantiles of CDF (x/hi)²: x_q = hi·√q.
		var sum float64
		for i := 0; i < distSamples; i++ {
			q := (float64(i) + 0.5) / distSamples
			sum += missProb(g, inflate(ms.hi*math.Sqrt(q)))
		}
		return sum / distSamples
	}
	return 1
}

// missProb is the probability that a reference with fully associative
// LRU stack distance d misses this level. Fully associative caches give
// the exact step function (miss iff d ≥ #lines). For an A-way cache
// with S sets, the d intervening distinct lines scatter binomially over
// the sets (Smith's model, used by Sen et al. to map stack distances to
// set-associative miss ratios): the reference survives iff fewer than A
// of them land in its own set,
//
//	P(hit | d) = Σ_{j=0}^{A−1} C(d, j) (1/S)^j (1 − 1/S)^{d−j}.
//
// Real-valued d (expectations) is handled by evaluating the binomial
// coefficient through log-gamma.
func missProb(g geom, d float64) float64 {
	if d < 0 {
		d = 0
	}
	if g.full {
		if d >= g.lv.L {
			return 1
		}
		return 0
	}
	a := float64(g.ways)
	if d < a {
		return 0 // even all-in-one-set leaves a free way
	}
	p := 1 / g.sets
	mean := d * p
	// Far tail: the set holds none of its lines long before the binomial
	// sum underflows; 12σ past A the hit probability is numerically 0.
	if mean > a+12*math.Sqrt(mean*(1-p))+1 {
		return 1
	}
	logp := math.Log(p)
	log1p := math.Log1p(-p)
	lgd, _ := math.Lgamma(d + 1)
	var hit float64
	for j := 0; float64(j) < a; j++ {
		jf := float64(j)
		if jf > d {
			break
		}
		lgj, _ := math.Lgamma(jf + 1)
		lgdj, _ := math.Lgamma(d - jf + 1)
		hit += math.Exp(lgd - lgj - lgdj + jf*logp + (d-jf)*log1p)
	}
	if hit > 1 {
		hit = 1
	}
	return 1 - hit
}
