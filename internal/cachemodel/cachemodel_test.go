package cachemodel

import (
	"math"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/costmath"
	"repro/internal/driver"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
	"repro/internal/vmem"
	"repro/internal/workload"
)

// fullAssoc returns a single-level fully associative hierarchy with the
// given capacity and line size.
func fullAssoc(capacity, line int64) *hardware.Hierarchy {
	return &hardware.Hierarchy{
		Name:    "fa-test",
		ClockNS: 1,
		Levels: []hardware.Level{{
			Name:           "L",
			Capacity:       capacity,
			LineSize:       line,
			Associativity:  0,
			SeqMissLatency: 1,
			RndMissLatency: 2,
		}},
	}
}

// replay runs p through the driver on a real simulator and returns the
// per-level stats.
func replay(t *testing.T, h *hardware.Hierarchy, p pattern.Pattern) []cachesim.Stats {
	t.Helper()
	sim := cachesim.New(h)
	mem := vmem.New(64 << 20)
	mem.SetObserver(sim)
	for _, r := range p.Regions() {
		materialize(mem, rootOf(r))
	}
	sim.Reset()
	driver.Run(mem, workload.NewRNG(7), p)
	return sim.AllStats()
}

// materialize allocates backing storage for a root region (idempotent
// per distinct root: callers pass each root once).
func materialize(mem *vmem.Memory, root *region.Region) {
	if root.Base != 0 {
		return
	}
	root.Base = int64(mem.Alloc(root.Size(), 64))
}

func TestFullyAssociativeSTravExact(t *testing.T) {
	// 64-line FA cache; a repeated uni-directional sweep over 128 lines
	// misses every reference (distance = footprint = 128 ≥ 64), a sweep
	// over 32 lines only pays its cold misses. The analytical totals
	// must equal the trace exactly — this geometry has no approximation.
	h := fullAssoc(64*32, 32)
	m := MustNew(h)
	for _, tc := range []struct {
		name  string
		lines int64
	}{
		{"fits", 32},
		{"thrashes", 128},
	} {
		r := region.New("U"+tc.name, tc.lines*4, 8) // 4 items per 32 B line
		p := pattern.RSTrav{R: r, Repeats: 3, Dir: pattern.Uni}
		res, err := m.Price(p)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Stats(0)
		want := replay(t, h, p)[0]
		if got.Misses() != want.Misses() {
			t.Errorf("%s: analytical misses %d, trace %d", tc.name, got.Misses(), want.Misses())
		}
		if got.Accesses != want.Accesses {
			t.Errorf("%s: analytical accesses %d, trace %d", tc.name, got.Accesses, want.Accesses)
		}
	}
}

func TestFAExpectationsMatchCostmath(t *testing.T) {
	// On a fully associative level the analytical expectations must
	// reproduce the paper's closed forms (costmath Eqs. 4.2–4.8).
	h := fullAssoc(64*32, 32)
	m := MustNew(h)
	lv := costmath.Level{C: 64 * 32, B: 32, L: 64}
	r := region.New("U", 512, 8) // 4 kB = 128 lines, twice the cache

	check := func(name string, p pattern.Pattern, want float64) {
		t.Helper()
		res, err := m.Price(p)
		if err != nil {
			t.Fatal(err)
		}
		seq, rnd := res.MissesNS(0)
		if math.Abs(seq+rnd-want) > 0.02*want+1 {
			t.Errorf("%s: analytical total %.1f, costmath %.1f", name, seq+rnd, want)
		}
	}

	m0 := costmath.STravCount(lv, r.N, r.W, float64(r.W))
	check("s_trav", pattern.STrav{R: r}, m0)
	check("rs_trav uni", pattern.RSTrav{R: r, Repeats: 4, Dir: pattern.Uni},
		costmath.RSTravCount(lv, m0, 4, pattern.Uni))
	check("r_acc", pattern.RAcc{R: r, Count: 2048},
		costmath.RAccCount(lv, r.N, r.W, float64(r.W), 2048))
}

func TestRRTravTracksTrace(t *testing.T) {
	// rr_trav is where the stack-distance view and the paper's Eq. 4.7
	// heuristic legitimately differ (the paper charges re-sweep misses
	// with the L²/m0 survivor count; the distance model integrates the
	// quadratic survivor distribution). Anchor against the replayed
	// trace instead: the analytical expectation must stay within 25% of
	// the simulator for a thrashing and a fitting footprint.
	h := fullAssoc(64*32, 32)
	m := MustNew(h)
	for _, lines := range []int64{32, 128} {
		r := region.New("Urr", lines*4, 8)
		p := pattern.RRTrav{R: r, Repeats: 4}
		res, err := m.Price(p)
		if err != nil {
			t.Fatal(err)
		}
		seq, rnd := res.MissesNS(0)
		got := seq + rnd
		want := float64(replay(t, h, p)[0].Misses())
		if math.Abs(got-want) > 0.25*want+1 {
			t.Errorf("%d lines: analytical misses %.1f, trace %.1f", lines, got, want)
		}
	}
}

func TestAssociativityCorrectionDirection(t *testing.T) {
	// The same repeated random traversal must miss at least as often on
	// a direct-mapped cache as on the fully associative cache of equal
	// capacity (conflict misses only add), and the direct-mapped excess
	// must be visible for a footprint near capacity.
	faH := fullAssoc(64*32, 32)
	dmH := fullAssoc(64*32, 32)
	dmH.Levels[0].Associativity = 1
	fa, dm := MustNew(faH), MustNew(dmH)

	r := region.New("U", 240, 8) // 60 lines: fits FA, conflicts DM
	p := pattern.RRTrav{R: r, Repeats: 8}
	faRes, err := fa.Price(p)
	if err != nil {
		t.Fatal(err)
	}
	dmRes, err := dm.Price(p)
	if err != nil {
		t.Fatal(err)
	}
	faSeq, faRnd := faRes.MissesNS(0)
	dmSeq, dmRnd := dmRes.MissesNS(0)
	faMiss, dmMiss := faSeq+faRnd, dmSeq+dmRnd
	if dmMiss < faMiss {
		t.Errorf("direct-mapped misses %.1f below fully associative %.1f", dmMiss, faMiss)
	}
	if dmMiss < faMiss*1.5 {
		t.Errorf("direct-mapped misses %.1f show no conflict excess over FA %.1f", dmMiss, faMiss)
	}
}

func TestMissProbMonotonicAndBounded(t *testing.T) {
	g := geom{
		spec: hardware.Level{Capacity: 1 << 10, LineSize: 32, Associativity: 2},
		lv:   costmath.Level{C: 1 << 10, B: 32, L: 32},
		ways: 2, sets: 16,
	}
	prev := -1.0
	for d := 0.0; d <= 256; d += 0.5 {
		p := missProb(g, d)
		if p < 0 || p > 1 {
			t.Fatalf("missProb(%g) = %g out of [0,1]", d, p)
		}
		if p < prev {
			t.Fatalf("missProb not monotone at d=%g: %g < %g", d, p, prev)
		}
		prev = p
	}
	if missProb(g, 1) != 0 {
		t.Errorf("distance below associativity must always hit")
	}
	if p := missProb(g, 1e6); p != 1 {
		t.Errorf("huge distance must miss, got %g", p)
	}
}

func TestPriceRejectsInvalidPattern(t *testing.T) {
	m := MustNew(hardware.SmallTest())
	if _, err := m.Price(pattern.STrav{}); err == nil {
		t.Fatal("expected error for pattern without region")
	}
}

func TestNewRejectsInvalidHierarchy(t *testing.T) {
	h := hardware.SmallTest()
	h.Levels[0].LineSize = 48 // not a power of two
	if _, err := New(h); err == nil {
		t.Fatal("expected error for non-power-of-two line size")
	}
}

func TestResultMeasurerSurface(t *testing.T) {
	h := hardware.SmallTest()
	m := MustNew(h)
	r := region.New("U", 4096, 8)
	res, err := m.Price(pattern.STrav{R: r})
	if err != nil {
		t.Fatal(err)
	}
	var meas cachesim.Measurer = res
	if meas.Hierarchy() != h {
		t.Error("Hierarchy() mismatch")
	}
	if len(meas.AllStats()) != len(h.Levels) {
		t.Error("AllStats() length mismatch")
	}
	st, ok := meas.StatsByName("L1")
	if !ok {
		t.Fatal("L1 not found")
	}
	if st.Accesses == 0 || st.Misses() == 0 {
		t.Errorf("expected nonzero L1 traffic, got %+v", st)
	}
	if st.Hits != st.Accesses-st.Misses() {
		t.Errorf("hits %d != accesses %d - misses %d", st.Hits, st.Accesses, st.Misses())
	}
	if meas.MemoryTimeNS() <= 0 {
		t.Error("expected positive memory time")
	}
}
