package cachemodel

import (
	"fmt"
	"math"

	"repro/internal/pattern"
	"repro/internal/region"
)

// This file is the batch entry point of the analytical backend. Grid
// sweeps (internal/sweep) price hundreds of patterns on the same
// hierarchy; pricing each through (*Model).Price re-validates,
// re-flattens, and — far more expensively — re-integrates the same
// distance masses over and over: the recursive operator patterns
// (quick-sort's 2^k equally sized half-segments, radix passes, B-tree
// levels) generate exponentially many atoms that share a handful of
// distinct (geometry, mass, rate, peers) integration inputs per level.
//
// A Pricer therefore (a) hoists validation and flattening into Prepare,
// (b) reuses every analysis buffer across patterns, and (c) memoizes
// the pure integration kernel expectedMissProb by the exact values of
// its inputs. A memo hit returns the very float64 a fresh computation
// would produce, so Pricer results are bit-identical to (*Model).Price
// — pinned by TestPricerMatchesPrice — while a warm pricer runs the
// full validation grid several times faster with zero allocations per
// pattern.

// PreparedPattern is a validated, flattened pattern, reusable across
// any number of Pricer (or Model) invocations and hierarchies.
type PreparedPattern struct {
	phases []phase
	src    pattern.Pattern
}

// Prepare validates and flattens p once. The returned PreparedPattern
// is immutable and safe for concurrent use.
func Prepare(p pattern.Pattern) (*PreparedPattern, error) {
	if err := pattern.Validate(p); err != nil {
		return nil, fmt.Errorf("cachemodel: %w", err)
	}
	return &PreparedPattern{phases: flatten(p), src: p}, nil
}

// Pattern returns the source pattern.
func (pp *PreparedPattern) Pattern() pattern.Pattern { return pp.src }

// Pricer prices prepared patterns on one model, reusing its analysis
// buffers and integration memo across calls. It is NOT safe for
// concurrent use; grid sweeps give each worker its own Pricer.
type Pricer struct {
	m  *Model
	az analyzer
}

// NewPricer returns a batch pricer bound to the model.
func (m *Model) NewPricer() *Pricer {
	return &Pricer{m: m, az: analyzer{
		memo:     make(map[memoKey]float64),
		profMemo: make(map[profMemoKey]atomProfile),
	}}
}

// Model returns the model the pricer is bound to.
func (pr *Pricer) Model() *Model { return pr.m }

// Price prices a prepared pattern, allocating a fresh Result.
func (pr *Pricer) Price(prep *PreparedPattern) *Result {
	res := &Result{}
	pr.PriceInto(prep, res)
	return res
}

// PriceInto prices a prepared pattern into res, reusing res's level
// slice. In steady state (warm buffers, warm memo) it performs no heap
// allocation. Results are bit-identical to (*Model).Price on the same
// pattern.
func (pr *Pricer) PriceInto(prep *PreparedPattern, res *Result) {
	pr.m.priceInto(&pr.az, prep, res)
}

// MemoLen returns the number of memoized integration results (for
// tests and capacity diagnostics).
func (pr *Pricer) MemoLen() int { return len(pr.az.memo) }

// stackEntry is one resident root region on the symbolic region stack.
type stackEntry struct {
	key   *region.Region
	lines float64
}

// analyzer holds the scratch state of one level analysis. Its zero
// value is ready to use (allocating as it goes, as the one-shot Price
// path does); a Pricer's analyzer persists, so the buffers and the
// integration memo reach a steady state.
type analyzer struct {
	level    int32 // hierarchy level index (memo key component)
	memo     map[memoKey]float64
	profMemo map[profMemoKey]atomProfile
	profiles []atomProfile
	peers    []peer
	masses   []mass
	stack    []stackEntry
}

// profMemoKey keys one atom's profile on one hierarchy level.
type profMemoKey struct {
	level int32
	pk    profileKey
}

// profileFor derives one atom's per-level profile, through the profile
// memo when one is attached. Keys carry every profileAtom input (level
// geometry via the level index, atom parameters via the value key), so
// a hit returns the bit-identical profile a fresh derivation would.
func (az *analyzer) profileFor(g geom, a *atom) atomProfile {
	if az.profMemo == nil {
		return profileAtom(g, a.p)
	}
	k := profMemoKey{level: az.level, pk: a.pk}
	if pr, ok := az.profMemo[k]; ok {
		return pr
	}
	pr := profileAtom(g, a.p)
	if len(az.profMemo) < memoCap {
		az.profMemo[k] = pr
	}
	return pr
}

// memoMaxPeers bounds the ⊙-sibling count a memo key can carry; phases
// with more peers (none of the engine's operators produce them) bypass
// the memo.
const memoMaxPeers = 3

// memoCap bounds the memo size; a full validation grid needs a few
// hundred entries, so the cap only guards against degenerate inputs.
const memoCap = 1 << 16

// peerKey is one ⊙-sibling's contribution to a memo key.
type peerKey struct {
	footprint float64
	rate      float64
}

// memoKey captures every input of expectedMissProb except the mass
// count and classification, which scale the result outside the
// integral. Keys compare by exact float64 value: equal keys yield
// bit-identical integrals.
type memoKey struct {
	level   int32
	kind    distKind
	np      int32
	lo      float64
	hi      float64
	sat     float64
	gapRate float64
	rate    float64
	peers   [memoMaxPeers]peerKey
}

// missFor integrates one distance mass, through the memo when one is
// attached. Cold masses are unconditional misses; oversized peer sets
// and NaN inputs (map keys would never match again) bypass the memo.
func (az *analyzer) missFor(g geom, ms mass, ownRate float64, peers []peer) float64 {
	if ms.kind == dCold {
		return 1
	}
	if az.memo == nil || len(peers) > memoMaxPeers {
		return expectedMissProb(g, ms, ownRate, peers)
	}
	k := memoKey{
		level: az.level, kind: ms.kind, np: int32(len(peers)),
		lo: ms.lo, hi: ms.hi, sat: ms.sat, gapRate: ms.gapRate, rate: ownRate,
	}
	for i, p := range peers {
		k.peers[i] = peerKey{footprint: p.footprint, rate: p.rate}
	}
	if math.IsNaN(k.lo) || math.IsNaN(k.hi) || math.IsNaN(k.sat) || math.IsNaN(k.gapRate) || math.IsNaN(k.rate) {
		return expectedMissProb(g, ms, ownRate, peers)
	}
	if v, ok := az.memo[k]; ok {
		return v
	}
	v := expectedMissProb(g, ms, ownRate, peers)
	if len(az.memo) < memoCap {
		az.memo[k] = v
	}
	return v
}

// analyzeLevel prices all phases on one level, threading the symbolic
// region stack across phases. All scratch lives in the analyzer, so a
// persistent analyzer performs no allocation in steady state.
func (az *analyzer) analyzeLevel(g geom, phases []phase) levelResult {
	var lr levelResult
	stack := az.stack[:0]

	for pi := range phases {
		ph := &phases[pi]
		profiles := az.profiles[:0]
		for ai := range ph.atoms {
			profiles = append(profiles, az.profileFor(g, &ph.atoms[ai]))
		}
		az.profiles = profiles
		// Distance inflation peers: every other atom of the phase.
		for i := range profiles {
			peers := az.peers[:0]
			for j := range profiles {
				if j != i && profiles[j].accesses > 0 {
					peers = append(peers, peer{footprint: profiles[j].footprint, rate: profiles[j].rate})
				}
			}
			az.peers = peers
			pr := &profiles[i]
			lr.accesses += pr.accesses

			// First touches: revisits of an earlier phase's leftovers, or
			// cold misses. Stack distances of sibling atoms within this
			// phase are handled by inflation, not by stack position.
			masses := az.masses[:0]
			root := ph.atoms[i].root
			depth := 0.0
			found := -1
			for k := len(stack) - 1; k >= 0; k-- {
				if stack[k].key == root {
					found = k
					break
				}
				depth += stack[k].lines
			}
			first := pr.footprint
			if found >= 0 && first > 0 {
				prev := stack[found].lines
				warm := math.Min(first, prev)
				if warm > 0 {
					masses = append(masses, mass{kind: dUniform, lo: depth, hi: depth + prev, count: warm, seq: pr.seq})
				}
				if cold := first - warm; cold > 0 {
					masses = append(masses, mass{kind: dCold, count: cold, seq: pr.seq})
				}
			} else if first > 0 {
				masses = append(masses, mass{kind: dCold, count: first, seq: pr.seq})
			}
			masses = append(masses, pr.revisits()...)
			az.masses = masses

			for _, ms := range masses {
				miss := ms.count * az.missFor(g, ms, pr.rate, peers)
				if ms.seq {
					lr.seqMiss += miss
				} else {
					lr.rndMiss += miss
				}
			}

			// Update the stack: root moves to the top carrying the larger
			// of its previous credit and this atom's footprint.
			lines := pr.footprint
			if found >= 0 {
				if stack[found].lines > lines {
					lines = stack[found].lines
				}
				stack = append(stack[:found], stack[found+1:]...)
			}
			stack = append(stack, stackEntry{key: root, lines: lines})
		}
	}
	az.stack = stack[:0]
	return lr
}
