package cachemodel

import (
	"math"
	"testing"

	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
	"repro/internal/workload"
)

// randComposite draws a pattern tree mixing ⊕ and ⊙ over randomized
// basic patterns, including the recursive halves shape the quick-sort
// pattern generates (the memo's main beneficiary).
func randComposite(rng *workload.RNG, h *hardware.Hierarchy, depth int) pattern.Pattern {
	if depth <= 0 || rng.Intn(3) == 0 {
		return randPattern(rng, h)
	}
	switch rng.Intn(3) {
	case 0:
		n := 2 + rng.Intn(3)
		var seq pattern.Seq
		for i := int64(0); i < n; i++ {
			seq = append(seq, randComposite(rng, h, depth-1))
		}
		return seq
	case 1:
		n := 2 + rng.Intn(2)
		var conc pattern.Conc
		for i := int64(0); i < n; i++ {
			conc = append(conc, randComposite(rng, h, depth-1))
		}
		return conc
	default:
		// Quick-sort shape: conc over the two halves, then recurse.
		b := h.Levels[0].LineSize
		n := (h.Levels[0].Lines() * 2) * (b / 8)
		r := region.New("Q", n, 8)
		var rec func(r *region.Region, d int) pattern.Pattern
		rec = func(r *region.Region, d int) pattern.Pattern {
			a, bb := r.Halves()
			p := pattern.Seq{pattern.Conc{pattern.STrav{R: a}, pattern.STrav{R: bb}}}
			if d > 0 && a.Size() > 64 {
				p = append(p, rec(a, d-1), rec(bb, d-1))
			}
			return p
		}
		return rec(r, 2+int(rng.Intn(3)))
	}
}

// TestPricerMatchesPrice pins the batch path to the one-shot path:
// pricing through a persistent (warm, memoized) Pricer must reproduce
// (*Model).Price bit-for-bit on every level, across many patterns
// sharing one pricer.
func TestPricerMatchesPrice(t *testing.T) {
	rng := workload.NewRNG(20260809)
	const hierarchies = 6
	const patternsPer = 25
	for hi := 0; hi < hierarchies; hi++ {
		assocs := []int{0, 1, 2, 4}
		h := randHierarchy(rng, assocs)
		m := MustNew(h)
		pr := m.NewPricer()
		res := &Result{}
		for pi := 0; pi < patternsPer; pi++ {
			p := randComposite(rng, h, 3)
			want, err := m.Price(p)
			if err != nil {
				t.Fatalf("Price: %v", err)
			}
			prep, err := Prepare(p)
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			pr.PriceInto(prep, res)
			for li := range h.Levels {
				ws, wr := want.MissesNS(li)
				gs, gr := res.MissesNS(li)
				if math.Float64bits(ws) != math.Float64bits(gs) || math.Float64bits(wr) != math.Float64bits(gr) {
					t.Fatalf("h%d p%d level %d: pricer (%v, %v) != price (%v, %v)", hi, pi, li, gs, gr, ws, wr)
				}
				if want.Stats(li) != res.Stats(li) {
					t.Fatalf("h%d p%d level %d: stats %+v != %+v", hi, pi, li, res.Stats(li), want.Stats(li))
				}
			}
			if math.Float64bits(want.MemoryTimeNS()) != math.Float64bits(res.MemoryTimeNS()) {
				t.Fatalf("h%d p%d: T_mem %v != %v", hi, pi, res.MemoryTimeNS(), want.MemoryTimeNS())
			}
		}
		if pr.MemoLen() == 0 {
			t.Fatalf("h%d: memo never populated", hi)
		}
	}
}

// TestPricerZeroAllocSteadyState pins the batch path's allocation
// contract: once buffers and memo are warm, PriceInto allocates
// nothing.
func TestPricerZeroAllocSteadyState(t *testing.T) {
	h := hardware.Origin2000()
	m := MustNew(h)
	r := region.New("U", 1<<15, 8)
	var rec func(r *region.Region, pruneBytes int64) pattern.Pattern
	rec = func(r *region.Region, pruneBytes int64) pattern.Pattern {
		a, b := r.Halves()
		p := pattern.Seq{pattern.Conc{pattern.STrav{R: a}, pattern.STrav{R: b}}}
		if a.Size() > pruneBytes {
			p = append(p, rec(a, pruneBytes), rec(b, pruneBytes))
		}
		return p
	}
	prep, err := Prepare(rec(r, 4<<10))
	if err != nil {
		t.Fatal(err)
	}
	pr := m.NewPricer()
	res := &Result{}
	pr.PriceInto(prep, res) // warm buffers and memo
	if allocs := testing.AllocsPerRun(50, func() { pr.PriceInto(prep, res) }); allocs != 0 {
		t.Fatalf("warm PriceInto allocates %.1f times per run, want 0", allocs)
	}
}
