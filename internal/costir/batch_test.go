package costir

import (
	"math"
	"testing"

	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

// batchTestPattern builds a nested ⊕/⊙ pattern exercising state
// threading, cache division, and sub-regions.
func batchTestPattern() pattern.Pattern {
	u := region.New("U", 1<<14, 8)
	v := region.New("V", 1<<13, 16)
	a, b := u.Halves()
	return pattern.Seq{
		pattern.STrav{R: u},
		pattern.Conc{
			pattern.Seq{pattern.STrav{R: a}, pattern.STrav{R: b}},
			pattern.RAcc{R: v, Count: 1 << 12},
		},
		pattern.RSTrav{R: v, Repeats: 3, Dir: pattern.Bi},
	}
}

// TestEvaluateBatchMatchesEvaluate pins the batch path to per-point
// Evaluate, bit for bit, across hierarchies with different depths.
func TestEvaluateBatchMatchesEvaluate(t *testing.T) {
	prog, err := Compile(batchTestPattern())
	if err != nil {
		t.Fatal(err)
	}
	hs := []*hardware.Hierarchy{
		hardware.Origin2000(),
		hardware.ModernX86(),
		hardware.Origin2000(),
	}
	got := prog.EvaluateBatch(hs, nil)
	off := 0
	for hi, h := range hs {
		want := prog.Evaluate(h, nil)
		for li := range h.Levels {
			g, w := got[off+li], want[li]
			if math.Float64bits(g.Seq) != math.Float64bits(w.Seq) ||
				math.Float64bits(g.Rnd) != math.Float64bits(w.Rnd) {
				t.Fatalf("h%d level %d: batch %+v != evaluate %+v", hi, li, g, w)
			}
		}
		off += len(h.Levels)
	}
	if off != len(got) {
		t.Fatalf("batch returned %d results, want %d", len(got), off)
	}
}

// TestEvaluateBatchZeroAlloc pins the steady-state allocation contract:
// a warm batch over a grid with preallocated dst allocates nothing.
func TestEvaluateBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops entries under -race")
	}
	prog, err := Compile(batchTestPattern())
	if err != nil {
		t.Fatal(err)
	}
	hs := []*hardware.Hierarchy{hardware.Origin2000(), hardware.ModernX86()}
	n := 0
	for _, h := range hs {
		n += len(h.Levels)
	}
	dst := make([]Misses, 0, n)
	prog.EvaluateBatch(hs, dst) // warm the pool
	if allocs := testing.AllocsPerRun(20, func() { prog.EvaluateBatch(hs, dst[:0]) }); allocs != 0 {
		t.Fatalf("warm EvaluateBatch allocates %.1f times per run, want 0", allocs)
	}
}
