package costir

import (
	"slices"
	"sort"
	"sync"

	"repro/internal/costmath"
	"repro/internal/hardware"
	"repro/internal/pattern"
)

// This file is the zero-allocation evaluator of compiled programs. It
// mirrors the semantics of the reference tree walker in
// internal/cost/combine.go instruction by instruction:
//
//   - Eq. 5.1: basic instructions adjust their cold-cache count by the
//     resident fraction of their region (inherited through the
//     sub-region parent chain).
//   - Eq. 5.2: ⊕ is implicit — cache state threads from one
//     instruction to the next.
//   - Eq. 5.3: opConc/opNext/opEnd divide the cache among ⊙ children
//     in footprint proportion, evaluate every child from the same
//     entry state, and max-merge the children's result states.
//
// The cache state of one level is a dense []float64 over the program's
// deduplicated region table (rho per region; 0 = not resident), so the
// pointer-keyed maps of the tree walker become flat rows. Each row
// additionally carries a sorted list of its non-zero indices: state
// merges, snapshots and restores walk only the resident entries (≤
// maxStateEntries) instead of the whole region table, which keeps
// evaluation near-linear in the instruction count even for plan-level
// programs whose partitioned joins intern hundreds of sub-regions.
// Iteration follows the lists in ascending index order — the same order
// a dense scan would visit — so floating-point sums are bit-identical
// to the reference walker's. All cache levels are computed in a single
// pass over the instruction stream, and every scratch buffer lives in a
// pooled evaluator, so steady-state evaluation performs no heap
// allocation.

// Misses is the per-level pair (M^s, M^r) of expected sequential and
// random misses, shared with internal/cost via internal/costmath.
type Misses = costmath.Misses

// maxStateEntries bounds the number of resident regions tracked per
// level, mirroring the tree walker's bound (internal/cost/combine.go):
// retention keeps the entries holding the most resident bytes — the
// only ones that can change a later prediction.
const maxStateEntries = 96

// Evaluate computes the expected misses of the compiled pattern per
// level of h, on cold caches, appending one Misses per hierarchy level
// to dst[:0] and returning it. Passing a dst with capacity
// len(h.Levels) makes the call allocation-free. Evaluate is safe for
// concurrent use on the same Program.
func (p *Program) Evaluate(h *hardware.Hierarchy, dst []Misses) []Misses {
	nL := len(h.Levels)
	ev := p.getEvaluator(nL)
	ev.run(p, h.Levels)
	dst = append(dst[:0], ev.miss[:nL]...)
	p.pool.put(ev)
	return dst
}

// MemoryTimeNS computes T_mem (Eq. 3.1) of the compiled pattern on h:
// per-level misses scored with the level miss latencies. It performs
// no heap allocation in steady state.
func (p *Program) MemoryTimeNS(h *hardware.Hierarchy) float64 {
	ev := p.getEvaluator(len(h.Levels))
	ev.run(p, h.Levels)
	var t float64
	for i := range h.Levels {
		t += ev.miss[i].Seq*h.Levels[i].SeqMissLatency + ev.miss[i].Rnd*h.Levels[i].RndMissLatency
	}
	p.pool.put(ev)
	return t
}

// evalPool wraps sync.Pool so Program's zero value works.
type evalPool struct{ p sync.Pool }

func (ep *evalPool) get() *evaluator {
	ev, _ := ep.p.Get().(*evaluator)
	return ev
}
func (ep *evalPool) put(ev *evaluator) { ep.p.Put(ev) }

// frame is the scratch state of one active ⊙ group.
type frame struct {
	snap   []float64        // entry state, all levels (children start equal)
	merged []float64        // pointwise max of children's result states
	saved  []costmath.Level // level params before cache division
	// snapNZ / mergedNZ track the non-zero indices of snap and merged
	// per level; snapNZ stays sorted, mergedNZ is sorted before use.
	snapNZ   [][]int32
	mergedNZ [][]int32
	slot0    int32
	n        int32
	child    int32
}

// evaluator holds every scratch buffer one evaluation needs. Buffer
// sizes depend on the program (fixed) and the hierarchy's level count
// (grow-only), so a pooled evaluator reaches a steady state with no
// further allocation.
type evaluator struct {
	nL       int // level capacity buffers are sized for
	state    []float64
	stateNZ  [][]int32 // sorted non-zero indices of state, per level
	miss     []Misses
	lp       []costmath.Level
	frames   []frame
	footVals []float64
	footStk  []float64
	bndIdx   []int32   // boundRow: candidate indices
	key      []float64 // boundRow: resident bytes per region index
	sorter   rowSorter
	// Generation-stamped marks for concMerge's relatedness test:
	// ancStamp[r] == gen marks r as ancestor-or-self of a merged
	// region; mergedStamp[r] == gen marks r as merged. Stamping
	// replaces per-call clearing.
	ancStamp    []uint64
	mergedStamp []uint64
	gen         uint64
}

func (p *Program) getEvaluator(nL int) *evaluator {
	ev := p.pool.get()
	if ev == nil {
		ev = &evaluator{}
	}
	ev.ensure(p, nL)
	return ev
}

func (ev *evaluator) ensure(p *Program, nL int) {
	if nL > ev.nL {
		ev.nL = nL
	}
	nR := len(p.regions)
	capL := ev.nL
	if need := capL * nR; len(ev.state) < need {
		ev.state = make([]float64, need)
	}
	if len(ev.miss) < capL {
		ev.miss = make([]Misses, capL)
	}
	if len(ev.lp) < capL {
		ev.lp = make([]costmath.Level, capL)
	}
	if need := p.nSlots * capL; len(ev.footVals) < need {
		ev.footVals = make([]float64, need)
	}
	if len(ev.footStk) < p.footDepth {
		ev.footStk = make([]float64, p.footDepth)
	}
	if cap(ev.bndIdx) < nR {
		ev.bndIdx = make([]int32, 0, nR)
	}
	if len(ev.key) < nR {
		ev.key = make([]float64, nR)
	}
	if len(ev.ancStamp) < nR {
		ev.ancStamp = make([]uint64, nR)
		ev.mergedStamp = make([]uint64, nR)
		ev.gen = 0
	}
	ev.stateNZ = ensureNZ(ev.stateNZ, capL, nR)
	if len(ev.frames) < p.maxDepth {
		ev.frames = append(ev.frames, make([]frame, p.maxDepth-len(ev.frames))...)
	}
	for i := range ev.frames {
		f := &ev.frames[i]
		if need := capL * nR; len(f.snap) < need {
			f.snap = make([]float64, need)
			f.merged = make([]float64, need)
			// The freshly zeroed buffers make any stale non-zero lists
			// wrong; reset them alongside.
			for li := range f.snapNZ {
				f.snapNZ[li] = f.snapNZ[li][:0]
				f.mergedNZ[li] = f.mergedNZ[li][:0]
			}
		}
		f.snapNZ = ensureNZ(f.snapNZ, capL, nR)
		f.mergedNZ = ensureNZ(f.mergedNZ, capL, nR)
		if len(f.saved) < capL {
			f.saved = make([]costmath.Level, capL)
		}
	}
}

// ensureNZ sizes a per-level non-zero index list set: one slice per
// level, each with room for every region.
func ensureNZ(nz [][]int32, nLevels, nR int) [][]int32 {
	if len(nz) < nLevels {
		nz = append(nz, make([][]int32, nLevels-len(nz))...)
	}
	for i := range nz {
		if cap(nz[i]) < nR {
			nz[i] = make([]int32, 0, nR)
		}
	}
	return nz
}

// run executes the program for all levels in one pass.
func (ev *evaluator) run(p *Program, levels []hardware.Level) {
	nL, nR := len(levels), len(p.regions)
	for i := 0; i < nL; i++ {
		ev.lp[i] = costmath.Level{
			C: float64(levels[i].Capacity),
			B: float64(levels[i].LineSize),
			L: float64(levels[i].Lines()),
		}
		ev.miss[i] = Misses{}
		ev.stateNZ[i] = ev.stateNZ[i][:0]
	}
	clear(ev.state[:nL*nR])

	ev.footprints(p, nL)

	depth := 0
	for ii := range p.instrs {
		in := &p.instrs[ii]
		switch in.Op {
		case opConc:
			f := &ev.frames[depth]
			depth++
			f.slot0, f.n, f.child = in.Reg, in.N, 0
			for li := 0; li < nL; li++ {
				// Snapshot the entry state and reset the merged
				// accumulator, touching only (possibly stale) non-zero
				// entries.
				snapRow := f.snap[li*nR : (li+1)*nR]
				for _, r := range f.snapNZ[li] {
					snapRow[r] = 0
				}
				row := ev.state[li*nR : (li+1)*nR]
				f.snapNZ[li] = append(f.snapNZ[li][:0], ev.stateNZ[li]...)
				for _, r := range f.snapNZ[li] {
					snapRow[r] = row[r]
				}
				mrgRow := f.merged[li*nR : (li+1)*nR]
				for _, r := range f.mergedNZ[li] {
					mrgRow[r] = 0
				}
				f.mergedNZ[li] = f.mergedNZ[li][:0]
			}
			copy(f.saved[:nL], ev.lp[:nL])
			ev.setChildLp(f, nL)
		case opNext:
			f := &ev.frames[depth-1]
			for li := 0; li < nL; li++ {
				ev.maxMerge(f, li, nR)
				ev.restoreSnap(f, li, nR)
			}
			f.child++
			ev.setChildLp(f, nL)
		case opEnd:
			depth--
			f := &ev.frames[depth]
			for li := 0; li < nL; li++ {
				ev.maxMerge(f, li, nR)
				slices.Sort(f.mergedNZ[li])
				ev.concMerge(p, f, li, nR)
			}
			copy(ev.lp[:nL], f.saved[:nL])
		default:
			for li := 0; li < nL; li++ {
				ev.evalBasic(p, in, li, nR)
			}
		}
	}
}

// restoreSnap resets one level of the live state to the frame's entry
// snapshot (the next ⊙ child starts from the same state).
func (ev *evaluator) restoreSnap(f *frame, li, nR int) {
	row := ev.state[li*nR : (li+1)*nR]
	for _, r := range ev.stateNZ[li] {
		row[r] = 0
	}
	ev.stateNZ[li] = append(ev.stateNZ[li][:0], f.snapNZ[li]...)
	snapRow := f.snap[li*nR : (li+1)*nR]
	for _, r := range ev.stateNZ[li] {
		row[r] = snapRow[r]
	}
}

// footprints runs the footprint program once per level, filling one
// slot per ⊙ child with F(P) (Section 5.2). Footprints depend only on
// the level's line size, which cache division never changes, so they
// can be computed up front.
func (ev *evaluator) footprints(p *Program, nL int) {
	for li := 0; li < nL; li++ {
		b := ev.lp[li].B
		sp := 0
		stk := ev.footStk
		for i := range p.foot {
			fi := &p.foot[i]
			switch fi.Op {
			case fOne:
				stk[sp] = 1
				sp++
			case fLines:
				stk[sp] = costmath.LinesCovered(p.regions[fi.Reg].Size(), b)
				sp++
			case fRTrav:
				r := &p.regions[fi.Reg]
				if costmath.GapSmall(r.W, float64(fi.U), b) {
					stk[sp] = costmath.LinesCovered(r.Size(), b)
				} else {
					// Each line serves exactly one access; nothing is
					// revisited.
					stk[sp] = 1
				}
				sp++
			case fStore:
				ev.footVals[int(fi.N)*nL+li] = stk[sp-1]
			case fMax:
				k := int(fi.N)
				m := stk[sp-k]
				for j := sp - k + 1; j < sp; j++ {
					if stk[j] > m {
						m = stk[j]
					}
				}
				sp -= k - 1
				stk[sp-1] = m
			case fSum:
				k := int(fi.N)
				var s float64
				for j := sp - k; j < sp; j++ {
					s += stk[j]
				}
				sp -= k - 1
				stk[sp-1] = s
			}
		}
	}
}

// setChildLp applies Eq. 5.3's cache division for the frame's current
// child: each level's effective capacity and line count are scaled by
// the child's footprint share of the whole ⊙ group.
func (ev *evaluator) setChildLp(f *frame, nL int) {
	for li := 0; li < nL; li++ {
		var total float64
		for s := f.slot0; s < f.slot0+f.n; s++ {
			total += ev.footVals[int(s)*nL+li]
		}
		nu := 1.0
		if total > 0 {
			nu = ev.footVals[int(f.slot0+f.child)*nL+li] / total
		}
		if nu <= 0 {
			// Patterns with zero-share footprints (pure streams) still
			// stream through at least a line's worth of cache.
			nu = 1 / f.saved[li].L
		}
		ev.lp[li] = f.saved[li].Scaled(nu)
	}
}

// maxMerge folds one level of the current state (one finished ⊙ child)
// into the frame's merged accumulator: after ⊙ the cache holds a
// fraction of each region proportional to its pattern's share.
func (ev *evaluator) maxMerge(f *frame, li, nR int) {
	st := ev.state[li*nR : (li+1)*nR]
	mrg := f.merged[li*nR : (li+1)*nR]
	for _, r := range ev.stateNZ[li] {
		v := st[r]
		if mrg[r] == 0 {
			f.mergedNZ[li] = append(f.mergedNZ[li], r)
			mrg[r] = v
		} else if v > mrg[r] {
			mrg[r] = v
		}
	}
}

// evalBasic executes one basic-pattern instruction at one level:
// Eq. 5.1 state adjustment around the Section-4 cold count, miss
// accumulation, then the state merge.
func (ev *evaluator) evalBasic(p *Program, in *instr, li, nR int) {
	lv := ev.lp[li]
	row := ev.state[li*nR : (li+1)*nR]
	reg := &p.regions[in.Reg]
	u := float64(in.U)

	// Effective resident fraction: the region's own entry, or an
	// ancestor's (a resident parent implies resident sub-regions).
	rho := row[in.Reg]
	for x := reg.Parent; x >= 0; x = p.regions[x].Parent {
		if row[x] > rho {
			rho = row[x]
		}
	}

	var mi Misses
	if rho < 1 {
		mi = coldMisses(in, lv, reg, u)
		if rho > 0 {
			if in.Op == opRAcc {
				if lines := costmath.RAccLines(lv, reg.N, reg.W, u, in.A); lines > lv.L {
					// r_acc over an oversized hot set: prior residency
					// only saves (part of) the compulsory first-touch
					// misses of the ℓ distinct lines.
					mi.Rnd -= rho * lines
					if mi.Rnd < 0 {
						mi.Rnd = 0
					}
				} else {
					mi = mi.Scale(1 - rho)
				}
			} else if isRandomOp(in) {
				// Eq. 5.1: each access finds its line resident with
				// probability rho.
				mi = mi.Scale(1 - rho)
			}
			// Sequential patterns get no benefit from an unknown
			// resident fraction (it would help only as the region head).
		}
	}
	ev.miss[li] = ev.miss[li].Add(mi)

	// Result state: the fraction of the region that fits the
	// (possibly scaled) cache, merged over what survives beside it.
	if size := reg.Size(); size > 0 {
		rhoNew := lv.C / float64(size)
		if rhoNew > 1 {
			rhoNew = 1
		}
		ev.mergeBasic(p, row, li, lv, in.Reg, rhoNew)
	} else {
		ev.mergeEmpty(p, row, li, lv)
	}
}

// coldMisses dispatches a basic instruction to its Section-4 formula.
func coldMisses(in *instr, lv costmath.Level, reg *RegionInfo, u float64) Misses {
	switch in.Op {
	case opSTrav:
		return costmath.Classify(costmath.STravCount(lv, reg.N, reg.W, u), !in.NoSeq)
	case opRSTrav:
		m0 := costmath.STravCount(lv, reg.N, reg.W, u)
		return costmath.Classify(costmath.RSTravCount(lv, m0, in.A, in.Dir), !in.NoSeq)
	case opRTrav:
		return Misses{Rnd: costmath.RTravCount(lv, reg.N, reg.W, u)}
	case opRRTrav:
		m0 := costmath.RTravCount(lv, reg.N, reg.W, u)
		return Misses{Rnd: costmath.RRTravCount(lv, m0, in.A)}
	case opRAcc:
		return Misses{Rnd: costmath.RAccCount(lv, reg.N, reg.W, u, in.A)}
	case opNest:
		return costmath.NestCounts(lv, reg.N, reg.W, u, in.M, in.Inner, in.A, in.Order, in.NoSeq)
	}
	panic("costir: coldMisses on non-basic instruction")
}

// isRandomOp reports whether Eq. 5.1 grants the instruction partial
// benefit from a partially resident region.
func isRandomOp(in *instr) bool {
	switch in.Op {
	case opRTrav, opRRTrav, opRAcc:
		return true
	case opNest:
		return in.Inner != pattern.InnerSTrav
	}
	return false
}

// mergeBasic merges the single-region state a basic pattern leaves
// behind with the previous row contents, mirroring the tree walker's
// mergeState: earlier regions survive as long as the new resident
// bytes leave room, scaled down proportionally otherwise; entries
// overlapping the new region (same identity or related through the
// parent chain) are superseded.
func (ev *evaluator) mergeBasic(p *Program, row []float64, li int, lv costmath.Level, ri int32, rhoNew float64) {
	lst := ev.stateNZ[li]
	newBytes := rhoNew * float64(p.regions[ri].Size())
	avail := lv.C - newBytes
	if avail <= 0 {
		ev.resetTo(row, li, ri, rhoNew)
		return
	}
	// Mark ri's ancestor-or-self chain once; relatedness of each old
	// entry then needs only a stamp probe plus its own parent walk.
	ev.gen++
	for x := ri; x >= 0; x = p.regions[x].Parent {
		ev.ancStamp[x] = ev.gen
	}
	relatedToNew := func(r int32) bool {
		if ev.ancStamp[r] == ev.gen {
			return true // r is ri or an ancestor of ri
		}
		for x := p.regions[r].Parent; x >= 0; x = p.regions[x].Parent {
			if x == ri {
				return true // ri contains r
			}
		}
		return false
	}
	var oldBytes float64
	for _, r := range lst {
		if r == ri || relatedToNew(r) {
			continue
		}
		oldBytes += row[r] * float64(p.regions[r].Size())
	}
	if oldBytes <= 0 {
		ev.resetTo(row, li, ri, rhoNew)
		return
	}
	scale := 1.0
	if oldBytes > avail {
		scale = avail / oldBytes
	}
	out := lst[:0]
	for _, r := range lst {
		if r == ri {
			continue // re-inserted below with its new fraction
		}
		if relatedToNew(r) {
			row[r] = 0
			continue
		}
		if g := row[r] * scale; g > 1e-9 {
			row[r] = g
			out = append(out, r)
		} else {
			row[r] = 0
		}
	}
	row[ri] = rhoNew
	i, _ := slices.BinarySearch(out, ri)
	out = append(out, 0)
	copy(out[i+1:], out[i:])
	out[i] = ri
	ev.stateNZ[li] = out
	ev.boundRow(p, row, li)
}

// resetTo empties one level's state and leaves only region ri resident.
func (ev *evaluator) resetTo(row []float64, li int, ri int32, rho float64) {
	for _, r := range ev.stateNZ[li] {
		row[r] = 0
	}
	row[ri] = rho
	ev.stateNZ[li] = append(ev.stateNZ[li][:0], ri)
}

// mergeEmpty merges an empty result state (a zero-size region leaves
// nothing behind): previous contents are rescaled to the capacity.
func (ev *evaluator) mergeEmpty(p *Program, row []float64, li int, lv costmath.Level) {
	lst := ev.stateNZ[li]
	var oldBytes float64
	for _, r := range lst {
		oldBytes += row[r] * float64(p.regions[r].Size())
	}
	if oldBytes <= 0 {
		for _, r := range lst {
			row[r] = 0
		}
		ev.stateNZ[li] = lst[:0]
		return
	}
	scale := 1.0
	if oldBytes > lv.C {
		scale = lv.C / oldBytes
	}
	out := lst[:0]
	for _, r := range lst {
		if g := row[r] * scale; g > 1e-9 {
			row[r] = g
			out = append(out, r)
		} else {
			row[r] = 0
		}
	}
	ev.stateNZ[li] = out
	ev.boundRow(p, row, li)
}

// concMerge finishes one level of a ⊙ group: the max-merged child
// states supersede the entry state, and entry-state entries unrelated
// to any merged region survive in the room the merged bytes leave.
func (ev *evaluator) concMerge(p *Program, f *frame, li, nR int) {
	lv := f.saved[li]
	old := f.snap[li*nR : (li+1)*nR]
	mrg := f.merged[li*nR : (li+1)*nR]
	row := ev.state[li*nR : (li+1)*nR]

	// Replace the live state with the merged child states. mergedNZ is
	// sorted by the caller, so the newBytes sum visits regions in the
	// same ascending order a dense scan would.
	for _, r := range ev.stateNZ[li] {
		row[r] = 0
	}
	lst := ev.stateNZ[li][:0]
	var newBytes float64
	for _, r := range f.mergedNZ[li] {
		row[r] = mrg[r]
		lst = append(lst, r)
		newBytes += mrg[r] * float64(p.regions[r].Size())
	}
	ev.stateNZ[li] = lst

	avail := lv.C - newBytes
	if avail <= 0 {
		return
	}
	// An entry of the entry state survives only if it is unrelated to
	// every merged region. Mark the merged regions and their ancestor
	// chains once (generation stamps avoid clearing), so each survival
	// test is a parent-chain walk instead of a scan over all merged
	// regions.
	ev.gen++
	for _, n := range f.mergedNZ[li] {
		ev.mergedStamp[n] = ev.gen
		for x := n; x >= 0; x = p.regions[x].Parent {
			ev.ancStamp[x] = ev.gen
		}
	}
	keep := func(r int32) bool {
		if ev.ancStamp[r] == ev.gen {
			return false // r is merged, or an ancestor of a merged region
		}
		for x := p.regions[r].Parent; x >= 0; x = p.regions[x].Parent {
			if ev.mergedStamp[x] == ev.gen {
				return false // a merged region contains r
			}
		}
		return true
	}
	var oldBytes float64
	for _, r := range f.snapNZ[li] {
		if keep(r) {
			oldBytes += old[r] * float64(p.regions[r].Size())
		}
	}
	if oldBytes <= 0 {
		return
	}
	scale := 1.0
	if oldBytes > avail {
		scale = avail / oldBytes
	}
	added := false
	for _, r := range f.snapNZ[li] {
		if !keep(r) {
			continue
		}
		if g := old[r] * scale; g > 1e-9 {
			row[r] = g
			ev.stateNZ[li] = append(ev.stateNZ[li], r)
			added = true
		}
	}
	if added {
		slices.Sort(ev.stateNZ[li])
	}
	ev.boundRow(p, row, li)
}

// boundRow enforces maxStateEntries, keeping the entries with the most
// resident bytes (ties: region name, then index), exactly like the
// tree walker's boundState.
func (ev *evaluator) boundRow(p *Program, row []float64, li int) {
	lst := ev.stateNZ[li]
	k := len(lst) - maxStateEntries
	if k <= 0 {
		return
	}
	for _, r := range lst {
		ev.key[r] = row[r] * float64(p.regions[r].Size())
	}
	if k <= 4 {
		// The common case — a merge pushed the row a few entries over
		// the bound — drops the k lowest-ranked entries by linear scan
		// instead of sorting the whole row. The ranking's total order
		// (bytes desc, name asc, index asc) makes the dropped set
		// identical to the full sort's tail.
		for ; k > 0; k-- {
			worst := 0
			for i := 1; i < len(lst); i++ {
				if ev.dropsBefore(p, lst[worst], lst[i]) {
					worst = i
				}
			}
			row[lst[worst]] = 0
			lst = append(lst[:worst], lst[worst+1:]...)
		}
		ev.stateNZ[li] = lst
		return
	}
	idx := append(ev.bndIdx[:0], lst...)
	ev.sorter.idx = idx
	ev.sorter.key = ev.key
	ev.sorter.regs = p.regions
	sort.Sort(&ev.sorter)
	for _, r := range idx[maxStateEntries:] {
		row[r] = 0
	}
	kept := idx[:maxStateEntries]
	slices.Sort(kept)
	ev.stateNZ[li] = append(lst[:0], kept...)
}

// dropsBefore reports whether region b ranks below region a in the
// retention order (i.e. b is dropped before a): fewer resident bytes,
// ties by name descending, then index descending — the exact reverse
// of rowSorter's keep order.
func (ev *evaluator) dropsBefore(p *Program, a, b int32) bool {
	if ev.key[a] != ev.key[b] {
		return ev.key[b] < ev.key[a]
	}
	if p.regions[a].Name != p.regions[b].Name {
		return p.regions[b].Name > p.regions[a].Name
	}
	return b > a
}

// rowSorter orders region indices by resident bytes descending, then
// name ascending, then index — a deterministic refinement of the tree
// walker's ordering.
type rowSorter struct {
	idx  []int32
	key  []float64
	regs []RegionInfo
}

func (s *rowSorter) Len() int      { return len(s.idx) }
func (s *rowSorter) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *rowSorter) Less(i, j int) bool {
	a, b := s.idx[i], s.idx[j]
	if s.key[a] != s.key[b] {
		return s.key[a] > s.key[b]
	}
	if s.regs[a].Name != s.regs[b].Name {
		return s.regs[a].Name < s.regs[b].Name
	}
	return a < b
}
