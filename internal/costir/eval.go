package costir

import (
	"sort"
	"sync"

	"repro/internal/costmath"
	"repro/internal/hardware"
	"repro/internal/pattern"
)

// This file is the zero-allocation evaluator of compiled programs. It
// mirrors the semantics of the reference tree walker in
// internal/cost/combine.go instruction by instruction:
//
//   - Eq. 5.1: basic instructions adjust their cold-cache count by the
//     resident fraction of their region (inherited through the
//     sub-region parent chain).
//   - Eq. 5.2: ⊕ is implicit — cache state threads from one
//     instruction to the next.
//   - Eq. 5.3: opConc/opNext/opEnd divide the cache among ⊙ children
//     in footprint proportion, evaluate every child from the same
//     entry state, and max-merge the children's result states.
//
// The cache state of one level is a dense []float64 over the program's
// deduplicated region table (rho per region; 0 = not resident), so the
// pointer-keyed maps of the tree walker become flat rows. All cache
// levels are computed in a single pass over the instruction stream,
// and every scratch buffer lives in a pooled evaluator, so steady-state
// evaluation performs no heap allocation.

// Misses is the per-level pair (M^s, M^r) of expected sequential and
// random misses, shared with internal/cost via internal/costmath.
type Misses = costmath.Misses

// maxStateEntries bounds the number of resident regions tracked per
// level, mirroring the tree walker's bound (internal/cost/combine.go):
// retention keeps the entries holding the most resident bytes — the
// only ones that can change a later prediction.
const maxStateEntries = 96

// Evaluate computes the expected misses of the compiled pattern per
// level of h, on cold caches, appending one Misses per hierarchy level
// to dst[:0] and returning it. Passing a dst with capacity
// len(h.Levels) makes the call allocation-free. Evaluate is safe for
// concurrent use on the same Program.
func (p *Program) Evaluate(h *hardware.Hierarchy, dst []Misses) []Misses {
	nL := len(h.Levels)
	ev := p.getEvaluator(nL)
	ev.run(p, h.Levels)
	dst = append(dst[:0], ev.miss[:nL]...)
	p.pool.put(ev)
	return dst
}

// MemoryTimeNS computes T_mem (Eq. 3.1) of the compiled pattern on h:
// per-level misses scored with the level miss latencies. It performs
// no heap allocation in steady state.
func (p *Program) MemoryTimeNS(h *hardware.Hierarchy) float64 {
	ev := p.getEvaluator(len(h.Levels))
	ev.run(p, h.Levels)
	var t float64
	for i := range h.Levels {
		t += ev.miss[i].Seq*h.Levels[i].SeqMissLatency + ev.miss[i].Rnd*h.Levels[i].RndMissLatency
	}
	p.pool.put(ev)
	return t
}

// evalPool wraps sync.Pool so Program's zero value works.
type evalPool struct{ p sync.Pool }

func (ep *evalPool) get() *evaluator {
	ev, _ := ep.p.Get().(*evaluator)
	return ev
}
func (ep *evalPool) put(ev *evaluator) { ep.p.Put(ev) }

// frame is the scratch state of one active ⊙ group.
type frame struct {
	snap   []float64        // entry state, all levels (children start equal)
	merged []float64        // pointwise max of children's result states
	saved  []costmath.Level // level params before cache division
	slot0  int32
	n      int32
	child  int32
}

// evaluator holds every scratch buffer one evaluation needs. Buffer
// sizes depend on the program (fixed) and the hierarchy's level count
// (grow-only), so a pooled evaluator reaches a steady state with no
// further allocation.
type evaluator struct {
	nL       int // level capacity buffers are sized for
	state    []float64
	miss     []Misses
	lp       []costmath.Level
	frames   []frame
	footVals []float64
	footStk  []float64
	newList  []int32   // conc-merge: indices present in the merged state
	bndIdx   []int32   // boundRow: candidate indices
	key      []float64 // boundRow: resident bytes per region index
	sorter   rowSorter
}

func (p *Program) getEvaluator(nL int) *evaluator {
	ev := p.pool.get()
	if ev == nil {
		ev = &evaluator{}
	}
	ev.ensure(p, nL)
	return ev
}

func (ev *evaluator) ensure(p *Program, nL int) {
	if nL > ev.nL {
		ev.nL = nL
	}
	nR := len(p.regions)
	capL := ev.nL
	if need := capL * nR; len(ev.state) < need {
		ev.state = make([]float64, need)
	}
	if len(ev.miss) < capL {
		ev.miss = make([]Misses, capL)
	}
	if len(ev.lp) < capL {
		ev.lp = make([]costmath.Level, capL)
	}
	if need := p.nSlots * capL; len(ev.footVals) < need {
		ev.footVals = make([]float64, need)
	}
	if len(ev.footStk) < p.footDepth {
		ev.footStk = make([]float64, p.footDepth)
	}
	if cap(ev.newList) < nR {
		ev.newList = make([]int32, 0, nR)
	}
	if cap(ev.bndIdx) < nR {
		ev.bndIdx = make([]int32, 0, nR)
	}
	if len(ev.key) < nR {
		ev.key = make([]float64, nR)
	}
	if len(ev.frames) < p.maxDepth {
		ev.frames = append(ev.frames, make([]frame, p.maxDepth-len(ev.frames))...)
	}
	for i := range ev.frames {
		f := &ev.frames[i]
		if need := capL * nR; len(f.snap) < need {
			f.snap = make([]float64, need)
			f.merged = make([]float64, need)
		}
		if len(f.saved) < capL {
			f.saved = make([]costmath.Level, capL)
		}
	}
}

// run executes the program for all levels in one pass.
func (ev *evaluator) run(p *Program, levels []hardware.Level) {
	nL, nR := len(levels), len(p.regions)
	for i := 0; i < nL; i++ {
		ev.lp[i] = costmath.Level{
			C: float64(levels[i].Capacity),
			B: float64(levels[i].LineSize),
			L: float64(levels[i].Lines()),
		}
		ev.miss[i] = Misses{}
	}
	clear(ev.state[:nL*nR])

	ev.footprints(p, nL)

	depth := 0
	for ii := range p.instrs {
		in := &p.instrs[ii]
		switch in.Op {
		case opConc:
			f := &ev.frames[depth]
			depth++
			f.slot0, f.n, f.child = in.Reg, in.N, 0
			copy(f.snap[:nL*nR], ev.state[:nL*nR])
			clear(f.merged[:nL*nR])
			copy(f.saved[:nL], ev.lp[:nL])
			ev.setChildLp(f, nL)
		case opNext:
			f := &ev.frames[depth-1]
			ev.maxMerge(f, nL*nR)
			copy(ev.state[:nL*nR], f.snap[:nL*nR])
			f.child++
			ev.setChildLp(f, nL)
		case opEnd:
			depth--
			f := &ev.frames[depth]
			ev.maxMerge(f, nL*nR)
			for li := 0; li < nL; li++ {
				ev.concMerge(p, f, li, nR)
			}
			copy(ev.lp[:nL], f.saved[:nL])
		default:
			for li := 0; li < nL; li++ {
				ev.evalBasic(p, in, li, nR)
			}
		}
	}
}

// footprints runs the footprint program once per level, filling one
// slot per ⊙ child with F(P) (Section 5.2). Footprints depend only on
// the level's line size, which cache division never changes, so they
// can be computed up front.
func (ev *evaluator) footprints(p *Program, nL int) {
	for li := 0; li < nL; li++ {
		b := ev.lp[li].B
		sp := 0
		stk := ev.footStk
		for i := range p.foot {
			fi := &p.foot[i]
			switch fi.Op {
			case fOne:
				stk[sp] = 1
				sp++
			case fLines:
				stk[sp] = costmath.LinesCovered(p.regions[fi.Reg].Size(), b)
				sp++
			case fRTrav:
				r := &p.regions[fi.Reg]
				if costmath.GapSmall(r.W, float64(fi.U), b) {
					stk[sp] = costmath.LinesCovered(r.Size(), b)
				} else {
					// Each line serves exactly one access; nothing is
					// revisited.
					stk[sp] = 1
				}
				sp++
			case fStore:
				ev.footVals[int(fi.N)*nL+li] = stk[sp-1]
			case fMax:
				k := int(fi.N)
				m := stk[sp-k]
				for j := sp - k + 1; j < sp; j++ {
					if stk[j] > m {
						m = stk[j]
					}
				}
				sp -= k - 1
				stk[sp-1] = m
			case fSum:
				k := int(fi.N)
				var s float64
				for j := sp - k; j < sp; j++ {
					s += stk[j]
				}
				sp -= k - 1
				stk[sp-1] = s
			}
		}
	}
}

// setChildLp applies Eq. 5.3's cache division for the frame's current
// child: each level's effective capacity and line count are scaled by
// the child's footprint share of the whole ⊙ group.
func (ev *evaluator) setChildLp(f *frame, nL int) {
	for li := 0; li < nL; li++ {
		var total float64
		for s := f.slot0; s < f.slot0+f.n; s++ {
			total += ev.footVals[int(s)*nL+li]
		}
		nu := 1.0
		if total > 0 {
			nu = ev.footVals[int(f.slot0+f.child)*nL+li] / total
		}
		if nu <= 0 {
			// Patterns with zero-share footprints (pure streams) still
			// stream through at least a line's worth of cache.
			nu = 1 / f.saved[li].L
		}
		ev.lp[li] = f.saved[li].Scaled(nu)
	}
}

// maxMerge folds the current state (one finished ⊙ child) into the
// frame's merged accumulator: after ⊙ the cache holds a fraction of
// each region proportional to its pattern's share.
func (ev *evaluator) maxMerge(f *frame, n int) {
	st := ev.state[:n]
	mrg := f.merged[:n]
	for i, v := range st {
		if v > mrg[i] {
			mrg[i] = v
		}
	}
}

// evalBasic executes one basic-pattern instruction at one level:
// Eq. 5.1 state adjustment around the Section-4 cold count, miss
// accumulation, then the state merge.
func (ev *evaluator) evalBasic(p *Program, in *instr, li, nR int) {
	lv := ev.lp[li]
	row := ev.state[li*nR : (li+1)*nR]
	reg := &p.regions[in.Reg]
	u := float64(in.U)

	// Effective resident fraction: the region's own entry, or an
	// ancestor's (a resident parent implies resident sub-regions).
	rho := row[in.Reg]
	for x := reg.Parent; x >= 0; x = p.regions[x].Parent {
		if row[x] > rho {
			rho = row[x]
		}
	}

	var mi Misses
	if rho < 1 {
		mi = coldMisses(in, lv, reg, u)
		if rho > 0 {
			if in.Op == opRAcc {
				if lines := costmath.RAccLines(lv, reg.N, reg.W, u, in.A); lines > lv.L {
					// r_acc over an oversized hot set: prior residency
					// only saves (part of) the compulsory first-touch
					// misses of the ℓ distinct lines.
					mi.Rnd -= rho * lines
					if mi.Rnd < 0 {
						mi.Rnd = 0
					}
				} else {
					mi = mi.Scale(1 - rho)
				}
			} else if isRandomOp(in) {
				// Eq. 5.1: each access finds its line resident with
				// probability rho.
				mi = mi.Scale(1 - rho)
			}
			// Sequential patterns get no benefit from an unknown
			// resident fraction (it would help only as the region head).
		}
	}
	ev.miss[li] = ev.miss[li].Add(mi)

	// Result state: the fraction of the region that fits the
	// (possibly scaled) cache, merged over what survives beside it.
	if size := reg.Size(); size > 0 {
		rhoNew := lv.C / float64(size)
		if rhoNew > 1 {
			rhoNew = 1
		}
		ev.mergeBasic(p, row, lv, in.Reg, rhoNew)
	} else {
		ev.mergeEmpty(p, row, lv)
	}
}

// coldMisses dispatches a basic instruction to its Section-4 formula.
func coldMisses(in *instr, lv costmath.Level, reg *RegionInfo, u float64) Misses {
	switch in.Op {
	case opSTrav:
		return costmath.Classify(costmath.STravCount(lv, reg.N, reg.W, u), !in.NoSeq)
	case opRSTrav:
		m0 := costmath.STravCount(lv, reg.N, reg.W, u)
		return costmath.Classify(costmath.RSTravCount(lv, m0, in.A, in.Dir), !in.NoSeq)
	case opRTrav:
		return Misses{Rnd: costmath.RTravCount(lv, reg.N, reg.W, u)}
	case opRRTrav:
		m0 := costmath.RTravCount(lv, reg.N, reg.W, u)
		return Misses{Rnd: costmath.RRTravCount(lv, m0, in.A)}
	case opRAcc:
		return Misses{Rnd: costmath.RAccCount(lv, reg.N, reg.W, u, in.A)}
	case opNest:
		return costmath.NestCounts(lv, reg.N, reg.W, u, in.M, in.Inner, in.A, in.Order, in.NoSeq)
	}
	panic("costir: coldMisses on non-basic instruction")
}

// isRandomOp reports whether Eq. 5.1 grants the instruction partial
// benefit from a partially resident region.
func isRandomOp(in *instr) bool {
	switch in.Op {
	case opRTrav, opRRTrav, opRAcc:
		return true
	case opNest:
		return in.Inner != pattern.InnerSTrav
	}
	return false
}

// related reports whether regions a and b overlap through the
// sub-region parent chain (ancestor, descendant, or equal).
func (p *Program) related(a, b int32) bool {
	for x := a; x >= 0; x = p.regions[x].Parent {
		if x == b {
			return true
		}
	}
	for x := b; x >= 0; x = p.regions[x].Parent {
		if x == a {
			return true
		}
	}
	return false
}

// mergeBasic merges the single-region state a basic pattern leaves
// behind with the previous row contents, mirroring the tree walker's
// mergeState: earlier regions survive as long as the new resident
// bytes leave room, scaled down proportionally otherwise; entries
// overlapping the new region (same identity or related through the
// parent chain) are superseded.
func (ev *evaluator) mergeBasic(p *Program, row []float64, lv costmath.Level, ri int32, rhoNew float64) {
	newBytes := rhoNew * float64(p.regions[ri].Size())
	avail := lv.C - newBytes
	if avail <= 0 {
		clear(row)
		row[ri] = rhoNew
		return
	}
	var oldBytes float64
	for r, f := range row {
		if f == 0 || int32(r) == ri || p.related(int32(r), ri) {
			continue
		}
		oldBytes += f * float64(p.regions[r].Size())
	}
	if oldBytes <= 0 {
		clear(row)
		row[ri] = rhoNew
		return
	}
	scale := 1.0
	if oldBytes > avail {
		scale = avail / oldBytes
	}
	for r, f := range row {
		if f == 0 || int32(r) == ri {
			continue
		}
		if p.related(int32(r), ri) {
			row[r] = 0
			continue
		}
		if g := f * scale; g > 1e-9 {
			row[r] = g
		} else {
			row[r] = 0
		}
	}
	row[ri] = rhoNew
	ev.boundRow(p, row)
}

// mergeEmpty merges an empty result state (a zero-size region leaves
// nothing behind): previous contents are rescaled to the capacity.
func (ev *evaluator) mergeEmpty(p *Program, row []float64, lv costmath.Level) {
	var oldBytes float64
	for r, f := range row {
		if f != 0 {
			oldBytes += f * float64(p.regions[r].Size())
		}
	}
	if oldBytes <= 0 {
		clear(row)
		return
	}
	scale := 1.0
	if oldBytes > lv.C {
		scale = lv.C / oldBytes
	}
	for r, f := range row {
		if f == 0 {
			continue
		}
		if g := f * scale; g > 1e-9 {
			row[r] = g
		} else {
			row[r] = 0
		}
	}
	ev.boundRow(p, row)
}

// concMerge finishes one level of a ⊙ group: the max-merged child
// states supersede the entry state, and entry-state entries unrelated
// to any merged region survive in the room the merged bytes leave.
func (ev *evaluator) concMerge(p *Program, f *frame, li, nR int) {
	lv := f.saved[li]
	old := f.snap[li*nR : (li+1)*nR]
	mrg := f.merged[li*nR : (li+1)*nR]
	row := ev.state[li*nR : (li+1)*nR]
	copy(row, mrg)

	newList := ev.newList[:0]
	var newBytes float64
	for r, fv := range mrg {
		if fv != 0 {
			newList = append(newList, int32(r))
			newBytes += fv * float64(p.regions[r].Size())
		}
	}
	avail := lv.C - newBytes
	if avail <= 0 {
		return
	}
	keep := func(r int32) bool {
		if mrg[r] != 0 {
			return false
		}
		for _, n := range newList {
			if p.related(r, n) {
				return false
			}
		}
		return true
	}
	var oldBytes float64
	for r, fv := range old {
		if fv != 0 && keep(int32(r)) {
			oldBytes += fv * float64(p.regions[r].Size())
		}
	}
	if oldBytes <= 0 {
		return
	}
	scale := 1.0
	if oldBytes > avail {
		scale = avail / oldBytes
	}
	for r, fv := range old {
		if fv == 0 || !keep(int32(r)) {
			continue
		}
		if g := fv * scale; g > 1e-9 {
			row[r] = g
		}
	}
	ev.boundRow(p, row)
}

// boundRow enforces maxStateEntries, keeping the entries with the most
// resident bytes (ties: region name, then index), exactly like the
// tree walker's boundState.
func (ev *evaluator) boundRow(p *Program, row []float64) {
	n := 0
	for _, f := range row {
		if f != 0 {
			n++
		}
	}
	if n <= maxStateEntries {
		return
	}
	idx := ev.bndIdx[:0]
	for r, f := range row {
		if f != 0 {
			idx = append(idx, int32(r))
			ev.key[r] = f * float64(p.regions[r].Size())
		}
	}
	ev.sorter.idx = idx
	ev.sorter.key = ev.key
	ev.sorter.regs = p.regions
	sort.Sort(&ev.sorter)
	for _, r := range idx[maxStateEntries:] {
		row[r] = 0
	}
}

// rowSorter orders region indices by resident bytes descending, then
// name ascending, then index — a deterministic refinement of the tree
// walker's ordering.
type rowSorter struct {
	idx  []int32
	key  []float64
	regs []RegionInfo
}

func (s *rowSorter) Len() int      { return len(s.idx) }
func (s *rowSorter) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *rowSorter) Less(i, j int) bool {
	a, b := s.idx[i], s.idx[j]
	if s.key[a] != s.key[b] {
		return s.key[a] > s.key[b]
	}
	if s.regs[a].Name != s.regs[b].Name {
		return s.regs[a].Name < s.regs[b].Name
	}
	return a < b
}
