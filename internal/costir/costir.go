// Package costir compiles the paper's compound data-access patterns
// (Table 2, combined with ⊕ and ⊙ per Section 5) into a flat,
// immutable cost IR — an instruction program over a dense table of
// deduplicated regions — evaluated by an allocation-free stack machine
// (eval.go).
//
// The recursive tree walker in internal/cost reproduces the paper
// faithfully but pays interface dispatch per node and a fresh
// pointer-keyed cache-state map per level per evaluation. Analytical
// cost models earn their keep by being orders of magnitude cheaper
// than simulation, and a query optimizer calls the model once per
// candidate plan, so the model's own evaluation path is a hot path.
// Compilation moves everything shape-dependent out of it:
//
//   - Canonicalization (canon below): bytes-used parameters resolved,
//     nested ⊕ flattened (associativity), ⊙ operands sorted
//     (commutativity — the model's miss sums, footprint shares and
//     state merges are all order-independent), and don't-care fields
//     normalized. Two patterns with the same canonical form compile to
//     the same program, which makes the canonical string a correct
//     interning key for compile caches (see CanonicalKey).
//   - Region deduplication: regions are identified by canonical
//     identity — name, item count, item width, and parent chain — not
//     by pointer. Structurally identical *region.Region values that
//     were allocated separately fold into one dense index, so cache
//     state becomes a preallocated []float64 instead of a
//     map[*region.Region]float64, and a ⊕-fold over two copies of the
//     "same" region no longer maintains divergent states.
//   - Flattening: the pattern tree becomes one linear instruction
//     array (basic-pattern opcodes plus ⊙ bracket markers) and one
//     linear footprint program, both walked without recursion or
//     dispatch on interface types.
//
// A compiled Program is immutable and safe for concurrent use; its
// Evaluate method computes every cache level in a single pass over the
// instruction stream and performs no heap allocation in steady state
// (scratch buffers are pooled per program). internal/cost keeps the
// tree walker as the reference oracle; the property tests there verify
// the two evaluators agree on randomized compound patterns.
package costir

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/pattern"
	"repro/internal/region"
)

// op is an IR opcode. The first six mirror the basic patterns of
// Table 2; the last three bracket concurrent (⊙) groups in the
// instruction stream. Sequential combination (⊕) needs no opcode at
// all: the evaluator threads cache state through consecutive
// instructions, which is exactly Eq. 5.2.
type op uint8

const (
	opSTrav op = iota
	opRSTrav
	opRTrav
	opRRTrav
	opRAcc
	opNest
	opSeq  // canonical-tree node only; never emitted
	opConc // begin ⊙ group: Reg = first footprint slot, N = child count
	opNext // between ⊙ children
	opEnd  // end ⊙ group
)

// instr is one IR instruction. Basic-pattern instructions carry the
// pattern parameters with the region resolved to its dense index;
// opConc carries the footprint-slot range of its children.
type instr struct {
	Op    op
	Reg   int32 // basic: region index; opConc: first footprint slot
	N     int32 // opConc: child count
	U     int64 // bytes used per item (resolved, 0 < U ≤ W)
	A     int64 // repeats (rs/rr_trav), access count (r_acc), per-cursor count (nest)
	M     int64 // nest: sub-region count
	Dir   pattern.Direction
	Order pattern.Order
	Inner pattern.InnerKind
	NoSeq bool
}

// footOp is an opcode of the footprint program: a postorder expression
// evaluated once per cache level before the main pass, filling one
// slot per ⊙ child with its footprint F(P) (Section 5.2).
type footOp uint8

const (
	fOne   footOp = iota // push 1 (plain stream)
	fLines               // push |R|_B
	fRTrav               // push |R|_B if gaps < B else 1 (r_trav's conditional footprint)
	fMax                 // fold N entries with max (⊕)
	fSum                 // fold N entries with sum (⊙)
	fStore               // store top of stack into slot N (keep it on the stack)
)

type footInstr struct {
	Op  footOp
	Reg int32
	N   int32 // fold arity, or slot index for fStore
	U   int64 // fRTrav: resolved bytes-used
}

// RegionInfo is one deduplicated region of a compiled program.
type RegionInfo struct {
	Name string
	N, W int64
	// Parent is the dense index of the parent region (sub-region
	// chains matter for residency inheritance and state merging), or
	// -1 for a root region.
	Parent int32
}

// Size returns ‖R‖ = N·W in bytes.
func (ri RegionInfo) Size() int64 { return ri.N * ri.W }

// Program is a compiled pattern: an immutable flat representation safe
// for concurrent evaluation and for sharing across hardware profiles
// (nothing in it depends on the hierarchy).
type Program struct {
	canonical string
	regions   []RegionInfo
	instrs    []instr
	foot      []footInstr
	nSlots    int // total ⊙ children (footprint slots)
	maxDepth  int // deepest ⊙ nesting
	footDepth int // operand-stack bound of the footprint program
	numBasics int

	pool evalPool
}

// Canonical returns the canonical form of the compiled pattern: a
// deterministic rendering with resolved parameters, sorted ⊙ operands
// and regions identified by name, item count, width and parent chain.
// Two patterns with equal canonical forms are cost-equivalent on every
// hierarchy, which makes the string a correct cache/interning key.
func (p *Program) Canonical() string { return p.canonical }

// NumRegions returns the number of deduplicated regions.
func (p *Program) NumRegions() int { return len(p.regions) }

// NumInstructions returns the length of the instruction stream.
func (p *Program) NumInstructions() int { return len(p.instrs) }

// NumBasics returns the number of basic-pattern instructions.
func (p *Program) NumBasics() int { return p.numBasics }

// Regions returns a copy of the deduplicated region table.
func (p *Program) Regions() []RegionInfo {
	return append([]RegionInfo(nil), p.regions...)
}

// Compile canonicalizes and compiles a pattern. The pattern must
// validate (pattern.Validate); the returned program is immutable.
func Compile(p pattern.Pattern) (*Program, error) {
	root, err := canonicalTree(p)
	if err != nil {
		return nil, err
	}
	c := compiler{regIdx: map[string]int32{}}
	c.emit(root)
	return &Program{
		canonical: root.key,
		regions:   c.regions,
		instrs:    c.instrs,
		foot:      c.foot,
		nSlots:    int(c.nSlots),
		maxDepth:  c.maxDepth,
		footDepth: c.footMax,
		numBasics: c.numBasics,
	}, nil
}

// CanonicalKey returns the canonical form of p without building the
// instruction program — the cheap first phase of Compile, for callers
// that only need a cache key to look up an already-compiled program.
func CanonicalKey(p pattern.Pattern) (string, error) {
	root, err := canonicalTree(p)
	if err != nil {
		return "", err
	}
	return root.key, nil
}

// cnode is one node of the canonicalized pattern tree: basic patterns
// with resolved parameters, or ⊕/⊙ nodes with flattened/sorted
// children. key is the node's canonical rendering.
type cnode struct {
	op    op
	reg   *region.Region
	u     int64
	a     int64
	m     int64
	dir   pattern.Direction
	order pattern.Order
	inner pattern.InnerKind
	noSeq bool
	kids  []*cnode
	key   string
}

func canonicalTree(p pattern.Pattern) (*cnode, error) {
	if err := pattern.Validate(p); err != nil {
		return nil, err
	}
	memo := map[*region.Region]string{}
	return canon(p, memo), nil
}

// regKey renders a region's canonical identity: quoted name, item
// count, width, and (recursively) the parent chain. Two regions with
// equal keys are indistinguishable to the cost model.
func regKey(r *region.Region, memo map[*region.Region]string) string {
	if k, ok := memo[r]; ok {
		return k
	}
	k := strconv.Quote(r.Name) + "!" + strconv.FormatInt(r.N, 10) + "!" + strconv.FormatInt(r.W, 10)
	if r.Parent != nil {
		k += "<" + regKey(r.Parent, memo)
	}
	memo[r] = k
	return k
}

func boolKey(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// canon canonicalizes one subtree. It assumes the pattern validated.
func canon(p pattern.Pattern, memo map[*region.Region]string) *cnode {
	switch q := p.(type) {
	case pattern.STrav:
		u := pattern.Used(q.U, q.R)
		return &cnode{op: opSTrav, reg: q.R, u: u, noSeq: q.NoSeq,
			key: "st(" + regKey(q.R, memo) + ";" + strconv.FormatInt(u, 10) + ";" + boolKey(q.NoSeq) + ")"}
	case pattern.RSTrav:
		u := pattern.Used(q.U, q.R)
		return &cnode{op: opRSTrav, reg: q.R, u: u, a: q.Repeats, dir: q.Dir, noSeq: q.NoSeq,
			key: "rst(" + regKey(q.R, memo) + ";" + strconv.FormatInt(u, 10) + ";" +
				strconv.FormatInt(q.Repeats, 10) + ";" + q.Dir.String() + ";" + boolKey(q.NoSeq) + ")"}
	case pattern.RTrav:
		u := pattern.Used(q.U, q.R)
		return &cnode{op: opRTrav, reg: q.R, u: u,
			key: "rt(" + regKey(q.R, memo) + ";" + strconv.FormatInt(u, 10) + ")"}
	case pattern.RRTrav:
		u := pattern.Used(q.U, q.R)
		return &cnode{op: opRRTrav, reg: q.R, u: u, a: q.Repeats,
			key: "rrt(" + regKey(q.R, memo) + ";" + strconv.FormatInt(u, 10) + ";" +
				strconv.FormatInt(q.Repeats, 10) + ")"}
	case pattern.RAcc:
		u := pattern.Used(q.U, q.R)
		return &cnode{op: opRAcc, reg: q.R, u: u, a: q.Count,
			key: "ra(" + regKey(q.R, memo) + ";" + strconv.FormatInt(u, 10) + ";" +
				strconv.FormatInt(q.Count, 10) + ")"}
	case pattern.Nest:
		u := pattern.Used(q.U, q.R)
		// Normalize don't-care fields so spurious differences do not
		// split cache entries: Count only matters for an r_acc inner
		// pattern; Order and NoSeq only for an s_trav inner pattern.
		count, order, noSeq := int64(0), q.Order, q.NoSeq
		if q.Inner == pattern.InnerRAcc {
			count = q.Count
		}
		if q.Inner != pattern.InnerSTrav {
			order, noSeq = pattern.OrderRandom, false
		}
		return &cnode{op: opNest, reg: q.R, u: u, a: count, m: q.M, order: order, inner: q.Inner, noSeq: noSeq,
			key: "nst(" + regKey(q.R, memo) + ";" + strconv.FormatInt(u, 10) + ";" +
				strconv.FormatInt(q.M, 10) + ";" + q.Inner.String() + ";" +
				strconv.FormatInt(count, 10) + ";" + order.String() + ";" + boolKey(noSeq) + ")"}
	case pattern.Seq:
		// ⊕ is associative: flatten nested Seq nodes. (⊙ is *not*
		// flattened — nested concurrent groups divide the cache
		// hierarchically and singleton/nested groups are preserved so
		// the IR matches the tree walker exactly.)
		n := &cnode{op: opSeq}
		for _, sub := range q {
			k := canon(sub, memo)
			if k.op == opSeq {
				n.kids = append(n.kids, k.kids...)
			} else {
				n.kids = append(n.kids, k)
			}
		}
		n.key = compoundKey("+", n.kids)
		return n
	case pattern.Conc:
		// ⊙ is commutative: every term of the model (miss sums,
		// footprint shares, max-merged result states) is independent
		// of operand order, so sort children by canonical key.
		n := &cnode{op: opConc, kids: make([]*cnode, 0, len(q))}
		for _, sub := range q {
			n.kids = append(n.kids, canon(sub, memo))
		}
		sort.SliceStable(n.kids, func(i, j int) bool { return n.kids[i].key < n.kids[j].key })
		n.key = compoundKey("*", n.kids)
		return n
	default:
		panic(fmt.Sprintf("costir: unknown pattern type %T", p))
	}
}

func compoundKey(opSym string, kids []*cnode) string {
	var b strings.Builder
	size := len(opSym) + 2 + len(kids)
	for _, k := range kids {
		size += len(k.key)
	}
	b.Grow(size)
	b.WriteString(opSym)
	b.WriteByte('(')
	for i, k := range kids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k.key)
	}
	b.WriteByte(')')
	return b.String()
}

// compiler lowers a canonical tree into the two instruction streams.
type compiler struct {
	regions []RegionInfo
	regIdx  map[string]int32 // canonical region key -> dense index
	regMemo map[*region.Region]string

	instrs    []instr
	foot      []footInstr
	nSlots    int32
	numBasics int

	depth, maxDepth int
	footSP, footMax int
}

// regIndex interns a region (and, first, its ancestor chain) into the
// dense table, deduplicating by canonical identity.
func (c *compiler) regIndex(r *region.Region) int32 {
	if c.regMemo == nil {
		c.regMemo = map[*region.Region]string{}
	}
	key := regKey(r, c.regMemo)
	if idx, ok := c.regIdx[key]; ok {
		return idx
	}
	parent := int32(-1)
	if r.Parent != nil {
		parent = c.regIndex(r.Parent)
	}
	idx := int32(len(c.regions))
	c.regions = append(c.regions, RegionInfo{Name: r.Name, N: r.N, W: r.W, Parent: parent})
	c.regIdx[key] = idx
	return idx
}

func (c *compiler) pushFoot(fi footInstr) {
	c.foot = append(c.foot, fi)
	switch fi.Op {
	case fOne, fLines, fRTrav:
		c.footSP++
		if c.footSP > c.footMax {
			c.footMax = c.footSP
		}
	case fMax, fSum:
		c.footSP -= int(fi.N) - 1
	}
}

func (c *compiler) emit(n *cnode) {
	switch n.op {
	case opSeq:
		// ⊕ emits no instruction: consecutive instructions thread the
		// cache state exactly as Eq. 5.2 folds it. Footprint of ⊕ is
		// the max over children (one runs at a time).
		for _, k := range n.kids {
			c.emit(k)
		}
		c.pushFoot(footInstr{Op: fMax, N: int32(len(n.kids))})
	case opConc:
		slot0 := c.nSlots
		c.nSlots += int32(len(n.kids))
		c.instrs = append(c.instrs, instr{Op: opConc, Reg: slot0, N: int32(len(n.kids))})
		c.depth++
		if c.depth > c.maxDepth {
			c.maxDepth = c.depth
		}
		for i, k := range n.kids {
			if i > 0 {
				c.instrs = append(c.instrs, instr{Op: opNext})
			}
			c.emit(k)
			// Record the child's footprint in its slot; the value
			// stays on the stack for the enclosing fold.
			c.pushFoot(footInstr{Op: fStore, N: slot0 + int32(i)})
		}
		c.instrs = append(c.instrs, instr{Op: opEnd})
		c.depth--
		c.pushFoot(footInstr{Op: fSum, N: int32(len(n.kids))})
	default:
		ri := c.regIndex(n.reg)
		c.instrs = append(c.instrs, instr{
			Op: n.op, Reg: ri, U: n.u, A: n.a, M: n.m,
			Dir: n.dir, Order: n.order, Inner: n.inner, NoSeq: n.noSeq,
		})
		c.numBasics++
		switch n.op {
		case opSTrav:
			c.pushFoot(footInstr{Op: fOne})
		case opRTrav:
			c.pushFoot(footInstr{Op: fRTrav, Reg: ri, U: n.u})
		default:
			c.pushFoot(footInstr{Op: fLines, Reg: ri})
		}
	}
}
