//go:build race

package costir

// raceEnabled reports that the race detector is active: sync.Pool
// deliberately drops entries under -race, so zero-allocation
// assertions cannot hold there.
const raceEnabled = true
