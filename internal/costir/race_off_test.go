//go:build !race

package costir

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
