package costir

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

func mustCompile(t *testing.T, p pattern.Pattern) *Program {
	t.Helper()
	prog, err := Compile(p)
	if err != nil {
		t.Fatalf("Compile(%s): %v", p, err)
	}
	return prog
}

func totalMisses(ms []Misses) float64 {
	var t float64
	for _, m := range ms {
		t += m.Total()
	}
	return t
}

func TestCompileRejectsInvalidPatterns(t *testing.T) {
	if _, err := Compile(pattern.Seq{}); err == nil {
		t.Error("Compile(empty Seq) succeeded, want error")
	}
	if _, err := Compile(pattern.STrav{R: nil}); err == nil {
		t.Error("Compile(nil region) succeeded, want error")
	}
	if _, err := CanonicalKey(pattern.Conc{}); err == nil {
		t.Error("CanonicalKey(empty Conc) succeeded, want error")
	}
}

func TestCanonicalKeyMatchesCompile(t *testing.T) {
	u := region.New("U", 1000, 16)
	p := pattern.Seq{pattern.STrav{R: u}, pattern.RAcc{R: u, Count: 10}}
	key, err := CanonicalKey(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustCompile(t, p).Canonical(); got != key {
		t.Errorf("CanonicalKey = %q, Compile().Canonical() = %q", key, got)
	}
}

// Canonicalization: ⊕ flattening, ⊙ sorting and bytes-used resolution
// must map cost-equivalent spellings to one canonical form.
func TestCanonicalEquivalences(t *testing.T) {
	u := region.New("U", 1000, 16)
	v := region.New("V", 2000, 8)
	w := region.New("W", 500, 32)

	cases := []struct {
		name string
		a, b pattern.Pattern
	}{
		{
			"seq-flattening",
			pattern.Seq{pattern.STrav{R: u}, pattern.Seq{pattern.STrav{R: v}, pattern.STrav{R: w}}},
			pattern.Seq{pattern.Seq{pattern.STrav{R: u}, pattern.STrav{R: v}}, pattern.STrav{R: w}},
		},
		{
			"conc-commutativity",
			pattern.Conc{pattern.STrav{R: u}, pattern.RTrav{R: v}, pattern.STrav{R: w}},
			pattern.Conc{pattern.STrav{R: w}, pattern.STrav{R: u}, pattern.RTrav{R: v}},
		},
		{
			"bytes-used-resolution",
			pattern.STrav{R: u},
			pattern.STrav{R: u, U: u.W},
		},
		{
			"nest-dont-care-fields",
			pattern.Nest{R: u, M: 8, Inner: pattern.InnerRTrav, Order: pattern.OrderBi, NoSeq: true, Count: 0},
			pattern.Nest{R: u, M: 8, Inner: pattern.InnerRTrav, Order: pattern.OrderRandom},
		},
	}
	for _, tc := range cases {
		ka, kb := mustCompile(t, tc.a).Canonical(), mustCompile(t, tc.b).Canonical()
		if ka != kb {
			t.Errorf("%s: canonical forms differ:\n  %q\n  %q", tc.name, ka, kb)
		}
	}
}

func TestCanonicalDistinguishes(t *testing.T) {
	u := region.New("U", 1000, 16)
	u2 := region.New("U", 1001, 16) // same name, different length
	sub := u.Sub(0, 2)
	flat := region.New(sub.Name, sub.N, sub.W) // same name+n+w, no parent

	cases := []struct {
		name string
		a, b pattern.Pattern
	}{
		{"repeat-count", pattern.RSTrav{R: u, Repeats: 2, Dir: pattern.Uni}, pattern.RSTrav{R: u, Repeats: 3, Dir: pattern.Uni}},
		{"direction", pattern.RSTrav{R: u, Repeats: 2, Dir: pattern.Uni}, pattern.RSTrav{R: u, Repeats: 2, Dir: pattern.Bi}},
		{"noseq-variant", pattern.STrav{R: u}, pattern.STrav{R: u, NoSeq: true}},
		{"region-length", pattern.STrav{R: u}, pattern.STrav{R: u2}},
		{"parent-chain", pattern.STrav{R: sub}, pattern.STrav{R: flat}},
		{"seq-vs-conc", pattern.Seq{pattern.STrav{R: u}, pattern.STrav{R: u2}}, pattern.Conc{pattern.STrav{R: u}, pattern.STrav{R: u2}}},
	}
	for _, tc := range cases {
		ka, kb := mustCompile(t, tc.a).Canonical(), mustCompile(t, tc.b).Canonical()
		if ka == kb {
			t.Errorf("%s: canonical forms collide: %q", tc.name, ka)
		}
	}
}

// Region deduplication (the ⊕-folding regression): two structurally
// identical regions allocated separately must fold into one dense
// index, so a repeated scan benefits from the first scan's cache
// leftovers exactly as if the caller had shared the pointer.
func TestRegionDedupAcrossPointers(t *testing.T) {
	h := hardware.Origin2000()
	// 64 kB: fits L2 (4 MB), so a second sequential scan of the *same*
	// region is (nearly) free at L2 once the first scan warmed it.
	shared := region.New("U", 4096, 16)
	r1 := region.New("U", 4096, 16)
	r2 := region.New("U", 4096, 16)

	sharedProg := mustCompile(t, pattern.Seq{pattern.STrav{R: shared}, pattern.STrav{R: shared}})
	dupProg := mustCompile(t, pattern.Seq{pattern.STrav{R: r1}, pattern.STrav{R: r2}})

	if sharedProg.Canonical() != dupProg.Canonical() {
		t.Fatalf("canonical forms differ:\n  %q\n  %q", sharedProg.Canonical(), dupProg.Canonical())
	}
	if got := dupProg.NumRegions(); got != 1 {
		t.Fatalf("NumRegions = %d, want 1 (deduplicated)", got)
	}

	sharedMisses := sharedProg.Evaluate(h, nil)
	dupMisses := dupProg.Evaluate(h, nil)
	for i := range sharedMisses {
		if sharedMisses[i] != dupMisses[i] {
			t.Errorf("level %d: shared-pointer misses %+v != duplicate-pointer misses %+v",
				i, sharedMisses[i], dupMisses[i])
		}
	}

	// And the fold is real: the second scan must be cheaper than the
	// first (cold) one, i.e. total < 2x a single scan.
	single := totalMisses(mustCompile(t, pattern.STrav{R: shared}).Evaluate(h, nil))
	if tot := totalMisses(dupMisses); tot >= 2*single {
		t.Errorf("duplicate-pointer ⊕ fold shows no cache reuse: total %.1f, single scan %.1f", tot, single)
	}
}

func TestRegionDedupKeepsDistinctIdentities(t *testing.T) {
	// Same name but different geometry, or different parent chains,
	// must stay distinct regions.
	u := region.New("U", 1000, 16)
	u2 := region.New("U", 2000, 16)
	sub := u.Sub(1, 4)
	prog := mustCompile(t, pattern.Seq{
		pattern.STrav{R: u}, pattern.STrav{R: u2}, pattern.STrav{R: sub},
	})
	// u, u2, sub, plus sub's parent chain entry (u, shared).
	if got := prog.NumRegions(); got != 3 {
		t.Errorf("NumRegions = %d, want 3", got)
	}
}

func TestParentChainRegistered(t *testing.T) {
	u := region.New("U", 1024, 16)
	sub := u.Sub(0, 4)
	// Only the sub-region is touched; its parent must still be in the
	// region table (residency inheritance needs the chain).
	prog := mustCompile(t, pattern.STrav{R: sub})
	regs := prog.Regions()
	if len(regs) != 2 {
		t.Fatalf("NumRegions = %d, want 2 (sub + parent)", len(regs))
	}
	var subInfo *RegionInfo
	for i := range regs {
		if regs[i].Name == sub.Name {
			subInfo = &regs[i]
		}
	}
	if subInfo == nil {
		t.Fatalf("sub-region %q not in table %+v", sub.Name, regs)
	}
	if subInfo.Parent < 0 || regs[subInfo.Parent].Name != "U" {
		t.Errorf("sub-region parent link broken: %+v", regs)
	}
}

func TestCanonicalQuotesRegionNames(t *testing.T) {
	// Hostile region names must not be able to forge another region's
	// canonical identity.
	a := region.New(`U"!1!1`, 1, 1)
	ka := mustCompile(t, pattern.STrav{R: a}).Canonical()
	b := region.New("U", 1, 1)
	kb := mustCompile(t, pattern.STrav{R: b}).Canonical()
	if ka == kb {
		t.Errorf("hostile name collides with honest name: %q", ka)
	}
	if !strings.Contains(ka, `\"`) {
		t.Errorf("hostile name not escaped in canonical form %q", ka)
	}
}

// The evaluator must be allocation-free once its pooled scratch has
// warmed up — the acceptance criterion of the IR path.
func TestEvaluateZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations and defeats sync.Pool reuse")
	}
	h := hardware.Origin2000()
	u := region.New("U", 1<<20, 16)
	v := region.New("V", 1<<20, 16)
	w := region.New("W", 1<<20, 16)
	hreg := region.New("H", 1<<21, 16)
	p := pattern.Seq{
		pattern.Conc{pattern.STrav{R: v}, pattern.RTrav{R: hreg}},
		pattern.Conc{pattern.STrav{R: u}, pattern.RAcc{R: hreg, Count: u.N}, pattern.STrav{R: w}},
	}
	prog := mustCompile(t, p)
	dst := make([]Misses, 0, len(h.Levels))
	prog.Evaluate(h, dst) // warm the pool
	allocs := testing.AllocsPerRun(100, func() {
		dst = prog.Evaluate(h, dst)
	})
	if allocs != 0 {
		t.Errorf("Evaluate allocates %.1f objects/op in steady state, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		prog.MemoryTimeNS(h)
	})
	if allocs != 0 {
		t.Errorf("MemoryTimeNS allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// Concurrent evaluation of one shared Program must be race-free and
// deterministic, including across hierarchies with different level
// counts (the pooled scratch must not leak state between runs).
func TestConcurrentEvaluate(t *testing.T) {
	u := region.New("U", 1<<18, 16)
	v := region.New("V", 1<<18, 16)
	hreg := region.New("H", 1<<19, 16)
	w := region.New("W", 1<<18, 16)
	prog := mustCompile(t, pattern.Seq{
		pattern.Conc{pattern.STrav{R: v}, pattern.RTrav{R: hreg}},
		pattern.Conc{pattern.STrav{R: u}, pattern.RAcc{R: hreg, Count: u.N}, pattern.STrav{R: w}},
	})
	hiers := []*hardware.Hierarchy{hardware.Origin2000(), hardware.SmallTest(), hardware.ModernX86()}
	want := make([][]Misses, len(hiers))
	for i, h := range hiers {
		want[i] = prog.Evaluate(h, nil)
	}

	const goroutines = 8
	const rounds = 200
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]Misses, 0, 8)
			for i := 0; i < rounds; i++ {
				hi := (g + i) % len(hiers)
				dst = prog.Evaluate(hiers[hi], dst)
				for li := range dst {
					if dst[li] != want[hi][li] {
						errc <- errMismatch(hi, li)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

type mismatchError struct{ hier, level int }

func errMismatch(h, l int) error { return mismatchError{h, l} }
func (e mismatchError) Error() string {
	return "concurrent Evaluate diverged from serial result"
}

func TestProgramStats(t *testing.T) {
	u := region.New("U", 1000, 16)
	v := region.New("V", 1000, 16)
	prog := mustCompile(t, pattern.Seq{
		pattern.Conc{pattern.STrav{R: u}, pattern.STrav{R: v}},
		pattern.STrav{R: u},
	})
	if got := prog.NumBasics(); got != 3 {
		t.Errorf("NumBasics = %d, want 3", got)
	}
	// 3 basics + opConc + opNext + opEnd
	if got := prog.NumInstructions(); got != 6 {
		t.Errorf("NumInstructions = %d, want 6", got)
	}
	if got := prog.NumRegions(); got != 2 {
		t.Errorf("NumRegions = %d, want 2", got)
	}
}
