package costir

import (
	"repro/internal/hardware"
)

// This file holds the grid-batch entry points of the compiled-pattern
// evaluator. A grid sweep (internal/sweep, the server's multi-profile
// batches, `costmodel eval -profiles`) evaluates one compiled program
// on several hierarchies; doing that point-at-a-time through Evaluate
// checks one evaluator out of the pool per point. EvaluateBatch checks
// one evaluator out once, sized for the deepest hierarchy of the grid,
// and runs every point on it — the per-point work is exactly one
// (*evaluator).run, so results are bit-identical to per-point Evaluate
// and steady state allocates nothing per point.

// EvaluateBatch computes the expected misses of the compiled pattern
// on every hierarchy of hs, appending len(h.Levels) Misses per
// hierarchy to dst in grid order and returning it. Results are
// bit-identical to calling Evaluate per hierarchy. EvaluateBatch is
// safe for concurrent use on the same Program.
func (p *Program) EvaluateBatch(hs []*hardware.Hierarchy, dst []Misses) []Misses {
	maxL := 0
	for _, h := range hs {
		if len(h.Levels) > maxL {
			maxL = len(h.Levels)
		}
	}
	if maxL == 0 {
		return dst
	}
	ev := p.getEvaluator(maxL)
	for _, h := range hs {
		ev.run(p, h.Levels)
		dst = append(dst, ev.miss[:len(h.Levels)]...)
	}
	p.pool.put(ev)
	return dst
}
