package costir_test

// FuzzCompileParity decodes arbitrary bytes into a bounded random
// pattern tree and checks the headline guarantee of the cost IR: the
// compiled evaluator and the reference tree walker agree on every
// hierarchy level within 1e-9 relative. (This test lives in an
// external test package so it can drive both evaluators through
// internal/cost without an import cycle.)

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/costir"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

// treeBuilder consumes fuzz bytes to make bounded structural choices.
type treeBuilder struct {
	data []byte
	pos  int
	// nodes bounds total tree size so deep ⊕/⊙ nests stay cheap.
	nodes int
	// interned shares one *region.Region per identity (name, n, w,
	// sub-region coordinates), as real pattern builders do: the tree
	// walker keys cache state by pointer, the IR by canonical identity,
	// and the two coincide exactly when equal regions share a pointer.
	interned map[string]*region.Region
}

func (b *treeBuilder) byte() byte {
	if b.pos >= len(b.data) {
		return 0
	}
	c := b.data[b.pos]
	b.pos++
	return c
}

// val returns a byte-derived value in [1, bound].
func (b *treeBuilder) val(bound int64) int64 {
	return int64(b.byte())%bound + 1
}

// region derives a bounded region; geometry variety (items below one
// line, line-straddling widths, cache-busting sizes) comes from the
// fuzz bytes.
func (b *treeBuilder) region() *region.Region {
	names := [6]string{"U", "V", "W", "H", "X", "Y"}
	name := names[int(b.byte())%len(names)]
	n := b.val(1 << 14)
	w := b.val(256)
	key := fmt.Sprintf("%s|%d|%d", name, n, w)
	r := b.intern(key, func() *region.Region { return region.New(name, n, w) })
	if b.byte()%4 == 0 {
		// Sometimes hand out a sub-region, exercising parent-chain
		// residency inheritance. The intern key is the *resulting*
		// canonical identity (name, geometry, parent), not the (j, m)
		// construction parameters: different splits can carve
		// identically named and sized sub-regions, which the IR folds.
		m := b.val(8)
		sub := r.Sub(b.val(m)-1, m)
		return b.intern(fmt.Sprintf("%s|%d|%d<%s", sub.Name, sub.N, sub.W, key),
			func() *region.Region { return sub })
	}
	return r
}

// intern returns the canonical pointer for a region identity, creating
// it via mk on first sight.
func (b *treeBuilder) intern(key string, mk func() *region.Region) *region.Region {
	if b.interned == nil {
		b.interned = map[string]*region.Region{}
	}
	if r, ok := b.interned[key]; ok {
		return r
	}
	r := mk()
	b.interned[key] = r
	return r
}

func (b *treeBuilder) pattern(depth int) pattern.Pattern {
	b.nodes++
	kind := b.byte() % 8
	if depth >= 3 || b.nodes >= 24 {
		kind %= 6 // leaf only
	}
	switch kind {
	case 0:
		r := b.region()
		return pattern.STrav{R: r, U: b.u(r), NoSeq: b.byte()%2 == 0}
	case 1:
		r := b.region()
		return pattern.RSTrav{R: r, U: b.u(r), Repeats: b.val(8),
			Dir: pattern.Direction(b.byte() % 2), NoSeq: b.byte()%2 == 0}
	case 2:
		r := b.region()
		return pattern.RTrav{R: r, U: b.u(r)}
	case 3:
		r := b.region()
		return pattern.RRTrav{R: r, U: b.u(r), Repeats: b.val(8)}
	case 4:
		r := b.region()
		return pattern.RAcc{R: r, U: b.u(r), Count: b.val(1 << 12)}
	case 5:
		r := b.region()
		return pattern.Nest{R: r, M: b.val(64),
			Inner: pattern.InnerKind(b.byte() % 3), U: b.u(r), Count: b.val(256),
			Order: pattern.Order(b.byte() % 3), NoSeq: b.byte()%2 == 0}
	case 6:
		k := int(b.val(3)) + 1
		seq := make(pattern.Seq, 0, k)
		for i := 0; i < k; i++ {
			seq = append(seq, b.pattern(depth+1))
		}
		return seq
	default:
		k := int(b.val(3)) + 1
		conc := make(pattern.Conc, 0, k)
		for i := 0; i < k; i++ {
			conc = append(conc, b.pattern(depth+1))
		}
		return conc
	}
}

// u yields a bytes-used parameter: usually 0 (full width), sometimes a
// partial use within the region's width.
func (b *treeBuilder) u(r *region.Region) int64 {
	if b.byte()%3 != 0 {
		return 0
	}
	return b.val(r.W)
}

func FuzzCompileParity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})
	f.Add([]byte{0xff, 0x80, 0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01})
	f.Add([]byte("seq-conc-nesting-exercise-0123456789"))
	f.Add([]byte{6, 2, 7, 1, 3, 7, 2, 5, 0, 4, 6, 1, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{7, 3, 6, 3, 7, 3, 5, 5, 5, 5, 0, 0, 0, 0, 9, 9, 9, 9, 2, 4, 8, 16, 32, 64})

	hiers := []*hardware.Hierarchy{
		hardware.SmallTest(),
		hardware.Origin2000(),
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b := &treeBuilder{data: data}
		p := b.pattern(0)
		if err := pattern.Validate(p); err != nil {
			t.Fatalf("generator produced an invalid pattern %v: %v", p, err)
		}
		prog, err := costir.Compile(p)
		if err != nil {
			t.Fatalf("Compile(%v): %v", p, err)
		}
		for _, h := range hiers {
			m := cost.MustNew(h)
			ref, err := m.EvaluateTree(p)
			if err != nil {
				t.Fatalf("EvaluateTree(%v): %v", p, err)
			}
			got := m.EvaluateCompiled(prog)
			for li := range ref.PerLevel {
				for _, pair := range [2][2]float64{
					{ref.PerLevel[li].Misses.Seq, got.PerLevel[li].Misses.Seq},
					{ref.PerLevel[li].Misses.Rnd, got.PerLevel[li].Misses.Rnd},
				} {
					want, have := pair[0], pair[1]
					diff := math.Abs(want - have)
					if mag := math.Max(math.Abs(want), math.Abs(have)); mag > 1 {
						diff /= mag
					}
					if diff > 1e-9 {
						t.Fatalf("parity violated on %s level %s for %v:\n  tree: %+v\n  ir:   %+v",
							h.Name, h.Levels[li].Name, p, ref.PerLevel[li].Misses, got.PerLevel[li].Misses)
					}
				}
			}
		}
	})
}
