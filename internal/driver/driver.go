// Package driver executes data access patterns (internal/pattern)
// against simulated memory (internal/vmem), producing the canonical
// address trace each pattern denotes. With a cache simulator attached to
// the memory, the trace yields measured cache misses that validation
// experiments compare against the cost model's predictions — exactly the
// paper's Section 6 methodology, with the simulator standing in for
// hardware event counters.
//
// Compound semantics: Seq runs its children one after another; Conc
// interleaves its children one access quantum at a time, round-robin,
// which is the reference interpretation of "concurrent execution" for a
// single-threaded database operator.
package driver

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/region"
	"repro/internal/vmem"
	"repro/internal/workload"
)

// Materialize allocates backing storage for r in mem with the given
// alignment and records the base address in r.Base. Regions that already
// have storage (Base ≠ 0 or explicitly placed at 0) are the caller's
// responsibility.
func Materialize(mem *vmem.Memory, r *region.Region, align int64) {
	r.Base = int64(mem.Alloc(r.Size(), align))
}

// MaterializeAt allocates storage whose base is congruent to offset
// modulo align (alignment experiments, the paper's Figure 5).
func MaterializeAt(mem *vmem.Memory, r *region.Region, align, offset int64) {
	r.Base = int64(mem.AllocOffset(r.Size(), align, offset))
}

// Run executes p against mem. Every region reachable from p must be
// materialized (have a valid Base). The RNG drives random traversal
// permutations and random access choices deterministically.
func Run(mem *vmem.Memory, rng *workload.RNG, p pattern.Pattern) {
	if err := pattern.Validate(p); err != nil {
		panic("driver: " + err.Error())
	}
	s := compile(mem, rng, p)
	for s.step() {
	}
}

// stepper performs one access quantum per call; step reports whether the
// pattern still has work left (false once exhausted).
type stepper interface {
	step() bool
}

func compile(mem *vmem.Memory, rng *workload.RNG, p pattern.Pattern) stepper {
	switch q := p.(type) {
	case pattern.STrav:
		return newSTrav(mem, q.R, q.U, false, 1)
	case pattern.RSTrav:
		return newRepeat(q.Repeats, func(rep int64) stepper {
			backwards := q.Dir == pattern.Bi && rep%2 == 1
			return newSTrav(mem, q.R, q.U, backwards, 1)
		})
	case pattern.RTrav:
		return newRTrav(mem, rng, q.R, q.U)
	case pattern.RRTrav:
		return newRepeat(q.Repeats, func(int64) stepper {
			return newRTrav(mem, rng, q.R, q.U)
		})
	case pattern.RAcc:
		return newRAcc(mem, rng, q.R, q.U, q.Count)
	case pattern.Nest:
		return newNest(mem, rng, q)
	case pattern.Seq:
		children := make([]func() stepper, len(q))
		for i, sub := range q {
			sub := sub
			children[i] = func() stepper { return compile(mem, rng, sub) }
		}
		return &seqStepper{make: children}
	case pattern.Conc:
		children := make([]stepper, len(q))
		for i, sub := range q {
			children[i] = compile(mem, rng, sub)
		}
		return &concStepper{children: children}
	default:
		panic(fmt.Sprintf("driver: unknown pattern %T", p))
	}
}

// sTravStepper walks a region sequentially, touching u bytes per item.
type sTravStepper struct {
	mem       *vmem.Memory
	base      vmem.Addr
	w, u      int64
	i, n      int64
	backwards bool
}

func newSTrav(mem *vmem.Memory, r *region.Region, u int64, backwards bool, _ int64) stepper {
	return &sTravStepper{
		mem:       mem,
		base:      vmem.Addr(r.Base),
		w:         r.W,
		u:         pattern.Used(u, r),
		n:         r.N,
		backwards: backwards,
	}
}

func (s *sTravStepper) step() bool {
	if s.i >= s.n {
		return false
	}
	idx := s.i
	if s.backwards {
		idx = s.n - 1 - s.i
	}
	s.mem.Touch(s.base+vmem.Addr(idx*s.w), s.u)
	s.i++
	return true
}

// rTravStepper visits every item exactly once in a random permutation.
type rTravStepper struct {
	mem  *vmem.Memory
	base vmem.Addr
	w, u int64
	perm []int64
	i    int64
}

func newRTrav(mem *vmem.Memory, rng *workload.RNG, r *region.Region, u int64) stepper {
	return &rTravStepper{
		mem:  mem,
		base: vmem.Addr(r.Base),
		w:    r.W,
		u:    pattern.Used(u, r),
		perm: rng.Permutation(r.N),
	}
}

func (s *rTravStepper) step() bool {
	if s.i >= int64(len(s.perm)) {
		return false
	}
	s.mem.Touch(s.base+vmem.Addr(s.perm[s.i]*s.w), s.u)
	s.i++
	return true
}

// rAccStepper performs count independent uniform accesses.
type rAccStepper struct {
	mem     *vmem.Memory
	rng     *workload.RNG
	base    vmem.Addr
	w, u    int64
	n, left int64
}

func newRAcc(mem *vmem.Memory, rng *workload.RNG, r *region.Region, u, count int64) stepper {
	return &rAccStepper{
		mem:  mem,
		rng:  rng,
		base: vmem.Addr(r.Base),
		w:    r.W,
		u:    pattern.Used(u, r),
		n:    r.N,
		left: count,
	}
}

func (s *rAccStepper) step() bool {
	if s.left <= 0 {
		return false
	}
	s.mem.Touch(s.base+vmem.Addr(s.rng.Intn(s.n)*s.w), s.u)
	s.left--
	return true
}

// repeatStepper runs `repeats` instances of a sub-stepper back to back.
type repeatStepper struct {
	make    func(rep int64) stepper
	repeats int64
	rep     int64
	cur     stepper
}

func newRepeat(repeats int64, make func(rep int64) stepper) stepper {
	return &repeatStepper{make: make, repeats: repeats}
}

func (s *repeatStepper) step() bool {
	for {
		if s.cur == nil {
			if s.rep >= s.repeats {
				return false
			}
			s.cur = s.make(s.rep)
			s.rep++
		}
		if s.cur.step() {
			return true
		}
		s.cur = nil
	}
}

// seqStepper runs child patterns one after another.
type seqStepper struct {
	make []func() stepper
	idx  int
	cur  stepper
}

func (s *seqStepper) step() bool {
	for {
		if s.cur == nil {
			if s.idx >= len(s.make) {
				return false
			}
			s.cur = s.make[s.idx]()
			s.idx++
		}
		if s.cur.step() {
			return true
		}
		s.cur = nil
	}
}

// concStepper interleaves children round-robin, one quantum each.
type concStepper struct {
	children []stepper
	next     int
}

func (s *concStepper) step() bool {
	n := len(s.children)
	for tries := 0; tries < n; tries++ {
		idx := s.next
		s.next = (s.next + 1) % n
		c := s.children[idx]
		if c == nil {
			continue
		}
		if c.step() {
			return true
		}
		s.children[idx] = nil
	}
	return false
}

// nestStepper drives m local cursors over the sub-regions of R with a
// global cursor in the requested order.
type nestStepper struct {
	mem     *vmem.Memory
	rng     *workload.RNG
	cursors []stepper
	order   pattern.Order
	// alive holds the indices of non-exhausted cursors (random order).
	alive []int
	// sequential global cursor position and direction
	pos, dir int
	active   int
}

func newNest(mem *vmem.Memory, rng *workload.RNG, q pattern.Nest) stepper {
	m := q.M
	cursors := make([]stepper, m)
	for j := int64(0); j < m; j++ {
		sub := q.R.Sub(j, m)
		// Sub-regions are laid out contiguously within R.
		sub.Base = q.R.Base + subOffset(q.R, j, m)
		switch q.Inner {
		case pattern.InnerSTrav:
			cursors[j] = newSTrav(mem, sub, q.U, false, 1)
		case pattern.InnerRTrav:
			cursors[j] = newRTrav(mem, rng, sub, q.U)
		case pattern.InnerRAcc:
			cursors[j] = newRAcc(mem, rng, sub, q.U, q.Count)
		}
	}
	alive := make([]int, m)
	for j := range alive {
		alive[j] = j
	}
	return &nestStepper{
		mem:     mem,
		rng:     rng,
		cursors: cursors,
		order:   q.Order,
		alive:   alive,
		dir:     1,
		active:  len(cursors),
	}
}

// subOffset returns the byte offset of sub-region j within its parent
// when the parent is split m ways with the same uneven-split rule as
// region.Sub.
func subOffset(r *region.Region, j, m int64) int64 {
	base, extra := r.N/m, r.N%m
	items := j * base
	if j < extra {
		items += j
	} else {
		items += extra
	}
	return items * r.W
}

func (s *nestStepper) step() bool {
	if s.active == 0 {
		return false
	}
	if s.order == pattern.OrderRandom {
		// Pick uniformly among live cursors.
		for len(s.alive) > 0 {
			k := int(s.rng.Intn(int64(len(s.alive))))
			j := s.alive[k]
			if s.cursors[j].step() {
				return true
			}
			// Exhausted: swap-remove from the live list.
			s.alive[k] = s.alive[len(s.alive)-1]
			s.alive = s.alive[:len(s.alive)-1]
			s.active--
		}
		return false
	}
	// Sequential global order (uni or bi): skip exhausted cursors. Every
	// live cursor is visited within 2m advances (bi bounces double-visit
	// the ends), so the bound below covers a full sweep.
	m := len(s.cursors)
	for tries := 0; tries < 2*m && s.active > 0; tries++ {
		j := s.pos
		s.advance()
		c := s.cursors[j]
		if c == nil {
			continue
		}
		if c.step() {
			return true
		}
		s.cursors[j] = nil
		s.active--
	}
	return s.active > 0 && s.step()
}

func (s *nestStepper) advance() {
	m := len(s.cursors)
	if s.order == pattern.OrderUni {
		s.pos = (s.pos + 1) % m
		return
	}
	// Bi-directional: bounce at the ends.
	next := s.pos + s.dir
	if next < 0 || next >= m {
		s.dir = -s.dir
		next = s.pos + s.dir
		if next < 0 {
			next = 0
		}
		if next >= m {
			next = m - 1
		}
	}
	s.pos = next
}
