package driver

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/region"
	"repro/internal/vmem"
	"repro/internal/workload"
)

// recorded runs p and returns the raw access trace.
func recorded(t *testing.T, p pattern.Pattern, mats ...*region.Region) []vmem.Access {
	t.Helper()
	mem := vmem.New(1 << 22)
	for _, r := range mats {
		Materialize(mem, r, 64)
	}
	var log []vmem.Access
	mem.SetObserver(vmem.ObserverFunc(func(a vmem.Access) { log = append(log, a) }))
	Run(mem, workload.NewRNG(1), p)
	return log
}

func TestSTravTrace(t *testing.T) {
	r := region.New("U", 4, 16)
	log := recorded(t, pattern.STrav{R: r, U: 8}, r)
	if len(log) != 4 {
		t.Fatalf("trace length %d, want 4", len(log))
	}
	for i, a := range log {
		want := vmem.Addr(r.Base + int64(i)*16)
		if a.Addr != want || a.Size != 8 {
			t.Errorf("access %d = %+v, want addr %d size 8", i, a, want)
		}
	}
}

func TestSTravDefaultsToFullWidth(t *testing.T) {
	r := region.New("U", 2, 16)
	log := recorded(t, pattern.STrav{R: r}, r)
	if log[0].Size != 16 {
		t.Errorf("default access size %d, want full width 16", log[0].Size)
	}
}

func TestRSTravBiDirection(t *testing.T) {
	r := region.New("U", 3, 8)
	log := recorded(t, pattern.RSTrav{R: r, Repeats: 2, Dir: pattern.Bi}, r)
	if len(log) != 6 {
		t.Fatalf("trace length %d, want 6", len(log))
	}
	// First sweep forward: 0,1,2. Second sweep backward: 2,1,0.
	wantIdx := []int64{0, 1, 2, 2, 1, 0}
	for i, a := range log {
		want := vmem.Addr(r.Base + wantIdx[i]*8)
		if a.Addr != want {
			t.Errorf("access %d at %d, want %d", i, a.Addr, want)
		}
	}
}

func TestRSTravUniDirection(t *testing.T) {
	r := region.New("U", 3, 8)
	log := recorded(t, pattern.RSTrav{R: r, Repeats: 2, Dir: pattern.Uni}, r)
	wantIdx := []int64{0, 1, 2, 0, 1, 2}
	for i, a := range log {
		want := vmem.Addr(r.Base + wantIdx[i]*8)
		if a.Addr != want {
			t.Errorf("access %d at %d, want %d", i, a.Addr, want)
		}
	}
}

func TestRTravVisitsEachItemOnce(t *testing.T) {
	r := region.New("U", 100, 8)
	log := recorded(t, pattern.RTrav{R: r}, r)
	if len(log) != 100 {
		t.Fatalf("trace length %d, want 100", len(log))
	}
	seen := map[vmem.Addr]int{}
	sequential := true
	var prev vmem.Addr
	for i, a := range log {
		seen[a.Addr]++
		if i > 0 && a.Addr != prev+8 {
			sequential = false
		}
		prev = a.Addr
	}
	if len(seen) != 100 {
		t.Errorf("visited %d distinct items, want 100", len(seen))
	}
	for addr, n := range seen {
		if n != 1 {
			t.Errorf("item at %d visited %d times", addr, n)
		}
	}
	if sequential {
		t.Error("random traversal produced the identity permutation")
	}
}

func TestRAccCountAndRange(t *testing.T) {
	r := region.New("U", 10, 8)
	log := recorded(t, pattern.RAcc{R: r, Count: 500}, r)
	if len(log) != 500 {
		t.Fatalf("trace length %d, want 500", len(log))
	}
	hits := map[vmem.Addr]bool{}
	for _, a := range log {
		if a.Addr < vmem.Addr(r.Base) || a.Addr >= vmem.Addr(r.Base+80) {
			t.Fatalf("access outside region: %d", a.Addr)
		}
		if (int64(a.Addr)-r.Base)%8 != 0 {
			t.Fatalf("access not item-aligned: %d", a.Addr)
		}
		hits[a.Addr] = true
	}
	// With 500 draws over 10 items every item is hit almost surely.
	if len(hits) != 10 {
		t.Errorf("hit %d distinct items, want 10", len(hits))
	}
}

func TestSeqOrdering(t *testing.T) {
	a := region.New("A", 3, 8)
	b := region.New("B", 3, 8)
	log := recorded(t, pattern.Seq{pattern.STrav{R: a}, pattern.STrav{R: b}}, a, b)
	if len(log) != 6 {
		t.Fatalf("trace length %d", len(log))
	}
	for i := 0; i < 3; i++ {
		if log[i].Addr >= vmem.Addr(b.Base) {
			t.Error("Seq ran second pattern before first finished")
		}
	}
	for i := 3; i < 6; i++ {
		if log[i].Addr < vmem.Addr(b.Base) {
			t.Error("Seq revisited first pattern after second started")
		}
	}
}

func TestConcInterleaves(t *testing.T) {
	a := region.New("A", 4, 8)
	b := region.New("B", 4, 8)
	log := recorded(t, pattern.Conc{pattern.STrav{R: a}, pattern.STrav{R: b}}, a, b)
	if len(log) != 8 {
		t.Fatalf("trace length %d", len(log))
	}
	// Round-robin: A0 B0 A1 B1 ...
	for i, acc := range log {
		inA := acc.Addr < vmem.Addr(b.Base)
		if (i%2 == 0) != inA {
			t.Fatalf("access %d not round-robin interleaved", i)
		}
	}
}

func TestConcUnevenLengths(t *testing.T) {
	a := region.New("A", 2, 8)
	b := region.New("B", 5, 8)
	log := recorded(t, pattern.Conc{pattern.STrav{R: a}, pattern.STrav{R: b}}, a, b)
	if len(log) != 7 {
		t.Fatalf("trace length %d, want 7", len(log))
	}
	// The longer child finishes alone.
	last := log[len(log)-1]
	if last.Addr < vmem.Addr(b.Base) {
		t.Error("final access should belong to the longer pattern")
	}
}

func TestNestSequentialUniOrder(t *testing.T) {
	r := region.New("X", 6, 8)
	log := recorded(t, pattern.Nest{R: r, M: 3, Inner: pattern.InnerSTrav, Order: pattern.OrderUni}, r)
	if len(log) != 6 {
		t.Fatalf("trace length %d", len(log))
	}
	// Sub-regions of 2 items each at offsets 0, 16, 32. Uni order visits
	// cursor 0,1,2,0,1,2; each advances one item per visit.
	want := []int64{0, 16, 32, 8, 24, 40}
	for i, a := range log {
		if a.Addr != vmem.Addr(r.Base+want[i]) {
			t.Errorf("access %d at %d, want %d", i, int64(a.Addr)-r.Base, want[i])
		}
	}
}

func TestNestRandomOrderCoversRegion(t *testing.T) {
	r := region.New("X", 64, 8)
	log := recorded(t, pattern.Nest{R: r, M: 8, Inner: pattern.InnerSTrav, Order: pattern.OrderRandom}, r)
	if len(log) != 64 {
		t.Fatalf("trace length %d, want 64", len(log))
	}
	seen := map[vmem.Addr]bool{}
	for _, a := range log {
		seen[a.Addr] = true
	}
	if len(seen) != 64 {
		t.Errorf("covered %d distinct items, want 64", len(seen))
	}
}

func TestNestRAccInner(t *testing.T) {
	r := region.New("X", 40, 8)
	log := recorded(t, pattern.Nest{R: r, M: 4, Inner: pattern.InnerRAcc, Count: 25, Order: pattern.OrderRandom}, r)
	if len(log) != 100 {
		t.Fatalf("trace length %d, want 4 cursors x 25 accesses", len(log))
	}
}

func TestNestUnevenSplitLayout(t *testing.T) {
	// 7 items into 3 sub-regions: 3+2+2; offsets 0, 3w, 5w.
	r := region.New("X", 7, 8)
	if got := subOffset(r, 0, 3); got != 0 {
		t.Errorf("subOffset(0) = %d", got)
	}
	if got := subOffset(r, 1, 3); got != 24 {
		t.Errorf("subOffset(1) = %d, want 24", got)
	}
	if got := subOffset(r, 2, 3); got != 40 {
		t.Errorf("subOffset(2) = %d, want 40", got)
	}
}

func TestRRTravIndependentPermutations(t *testing.T) {
	r := region.New("U", 50, 8)
	log := recorded(t, pattern.RRTrav{R: r, Repeats: 2}, r)
	if len(log) != 100 {
		t.Fatalf("trace length %d", len(log))
	}
	same := true
	for i := 0; i < 50; i++ {
		if log[i].Addr != log[50+i].Addr {
			same = false
			break
		}
	}
	if same {
		t.Error("both traversals used the same permutation")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []vmem.Access {
		r := region.New("U", 64, 8)
		mem := vmem.New(1 << 20)
		Materialize(mem, r, 64)
		var log []vmem.Access
		mem.SetObserver(vmem.ObserverFunc(func(a vmem.Access) { log = append(log, a) }))
		Run(mem, workload.NewRNG(99), pattern.RTrav{R: r})
		return log
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestRunValidates(t *testing.T) {
	mem := vmem.New(1 << 12)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid pattern")
		}
	}()
	Run(mem, workload.NewRNG(1), pattern.Seq{})
}

func TestMaterializeAt(t *testing.T) {
	mem := vmem.New(1 << 16)
	r := region.New("U", 4, 8)
	MaterializeAt(mem, r, 64, 13)
	if r.Base%64 != 13 {
		t.Errorf("base %d not at offset 13 mod 64", r.Base)
	}
}
