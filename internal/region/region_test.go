package region

import (
	"testing"
	"testing/quick"
)

func TestDerivedValues(t *testing.T) {
	r := New("U", 1000, 16)
	if r.Size() != 16000 {
		t.Errorf("Size() = %d", r.Size())
	}
	if got := r.Lines(32); got != 500 {
		t.Errorf("Lines(32) = %d, want 500", got)
	}
	if got := r.Lines(64); got != 250 {
		t.Errorf("Lines(64) = %d, want 250", got)
	}
	if got := r.ItemsInCache(1024); got != 64 {
		t.Errorf("ItemsInCache(1024) = %d, want 64", got)
	}
}

func TestLinesRoundsUp(t *testing.T) {
	r := New("U", 3, 10) // 30 bytes
	if got := r.Lines(32); got != 1 {
		t.Errorf("Lines(32) = %d, want 1", got)
	}
	if got := r.Lines(16); got != 2 {
		t.Errorf("Lines(16) = %d, want 2", got)
	}
}

func TestSubSplitsEvenly(t *testing.T) {
	r := New("U", 10, 8)
	var total int64
	for j := int64(0); j < 4; j++ {
		s := r.Sub(j, 4)
		if s.W != r.W {
			t.Errorf("sub-region width %d != parent %d", s.W, r.W)
		}
		if s.Parent != r {
			t.Error("sub-region parent not set")
		}
		total += s.N
	}
	if total != r.N {
		t.Errorf("sub-region lengths sum to %d, want %d", total, r.N)
	}
	// 10 = 3+3+2+2
	if r.Sub(0, 4).N != 3 || r.Sub(3, 4).N != 2 {
		t.Errorf("uneven split wrong: %d, %d", r.Sub(0, 4).N, r.Sub(3, 4).N)
	}
}

func TestSubPropertyPartition(t *testing.T) {
	// Property: sub-region lengths always sum to the parent length and
	// differ by at most one.
	f := func(n uint16, m uint8) bool {
		nn := int64(n%5000) + 1
		mm := int64(m%64) + 1
		r := New("R", nn, 8)
		var sum, min, max int64
		min = 1 << 62
		for j := int64(0); j < mm; j++ {
			s := r.Sub(j, mm)
			sum += s.N
			if s.N < min {
				min = s.N
			}
			if s.N > max {
				max = s.N
			}
		}
		return sum == nn && max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHalves(t *testing.T) {
	r := New("U", 9, 8)
	a, b := r.Halves()
	if a.N+b.N != 9 {
		t.Errorf("halves sum to %d", a.N+b.N)
	}
	if a.Parent != r || b.Parent != r {
		t.Error("halves must point to parent")
	}
}

func TestAncestors(t *testing.T) {
	r := New("U", 100, 8)
	a, _ := r.Halves()
	aa, _ := a.Halves()
	anc := aa.Ancestors()
	if len(anc) != 2 || anc[0] != a || anc[1] != r {
		t.Errorf("Ancestors() = %v", anc)
	}
	if len(r.Ancestors()) != 0 {
		t.Error("root region has ancestors")
	}
}

func TestSubSize(t *testing.T) {
	r := New("U", 10, 8)
	if got := r.SubSize(4); got != 2.5 {
		t.Errorf("SubSize(4) = %g, want 2.5", got)
	}
}

func TestString(t *testing.T) {
	r := New("U", 10, 8)
	if got := r.String(); got != "U[n=10,w=8]" {
		t.Errorf("String() = %q", got)
	}
}

func TestPanics(t *testing.T) {
	cases := map[string]func(){
		"negative n":    func() { New("U", -1, 8) },
		"zero width":    func() { New("U", 1, 0) },
		"bad sub index": func() { New("U", 10, 8).Sub(4, 4) },
		"zero sub m":    func() { New("U", 10, 8).Sub(0, 0) },
		"zero line":     func() { New("U", 10, 8).Lines(0) },
		"zero subsize":  func() { New("U", 10, 8).SubSize(0) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
