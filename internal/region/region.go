// Package region implements the paper's first abstraction: a data
// structure is modeled as a data region R consisting of R.n data items of
// width R.w bytes. A relational table is a region with n = cardinality
// and w = tuple width; a tree is a region with n = node count and w =
// node size; a hash table is a region over its buckets, and so on.
//
// Regions carry identity (pointer identity) because the cost model's
// cache-state bookkeeping (Section 5 of the paper) tracks which fraction
// of which region remains cached between patterns.
package region

import "fmt"

// Region is a data region R with R.n items of R.w bytes each.
type Region struct {
	// Name is used in pattern descriptions ("U", "V", "H", ...).
	Name string
	// N is the number of data items (the region's length R.n).
	N int64
	// W is the width of one item in bytes (R.w).
	W int64
	// Base is the simulated base address when the region is materialized
	// in vmem; purely informational for the cost model.
	Base int64
	// Parent links a sub-region (created via Sub) to the region it was
	// carved from. The cost model's cache-state bookkeeping uses the
	// chain: if an ancestor region is resident, so is the sub-region.
	Parent *Region
}

// New returns a region with the given name, length and width.
func New(name string, n, w int64) *Region {
	if n < 0 || w <= 0 {
		panic(fmt.Sprintf("region: invalid region %s with n=%d w=%d", name, n, w))
	}
	return &Region{Name: name, N: n, W: w}
}

// Size returns ||R|| = R.n * R.w in bytes.
func (r *Region) Size() int64 { return r.N * r.W }

// Lines returns |R|_B = ceil(||R|| / B), the number of cache lines of
// size B covered by the region.
func (r *Region) Lines(lineSize int64) int64 {
	if lineSize <= 0 {
		panic("region: non-positive line size")
	}
	return ceilDiv(r.Size(), lineSize)
}

// ItemsInCache returns R.n|C = C / R.w, the number of items that fit in a
// cache of capacity C (the paper's n-sub-C).
func (r *Region) ItemsInCache(capacity int64) int64 {
	if r.W <= 0 {
		return 0
	}
	return capacity / r.W
}

// Sub returns the j-th of m equal sub-regions of r (used by the nest
// pattern and by partitioning). Item counts are split as evenly as
// possible; the first (n mod m) sub-regions get one extra item.
func (r *Region) Sub(j, m int64) *Region {
	if m <= 0 || j < 0 || j >= m {
		panic(fmt.Sprintf("region: invalid sub-region %d of %d", j, m))
	}
	base, extra := r.N/m, r.N%m
	n := base
	if j < extra {
		n++
	}
	return &Region{
		Name:   fmt.Sprintf("%s_%d", r.Name, j),
		N:      n,
		W:      r.W,
		Parent: r,
	}
}

// Halves splits r into two sub-regions of (almost) equal length, used by
// the recursive quick-sort pattern.
func (r *Region) Halves() (*Region, *Region) {
	return r.Sub(0, 2), r.Sub(1, 2)
}

// Ancestors returns the parent chain from the immediate parent outwards.
func (r *Region) Ancestors() []*Region {
	var out []*Region
	for p := r.Parent; p != nil; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// SubSize returns the item count of an average sub-region when r is split
// m ways (R.n / m as a float, since the model works with expectations).
func (r *Region) SubSize(m int64) float64 {
	if m <= 0 {
		panic("region: non-positive sub-region count")
	}
	return float64(r.N) / float64(m)
}

// String renders the region as "Name[n=...,w=...]".
func (r *Region) String() string {
	return fmt.Sprintf("%s[n=%d,w=%d]", r.Name, r.N, r.W)
}

func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
