package combinatorics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

func TestStirling2KnownValues(t *testing.T) {
	cases := []struct {
		n, k int64
		want float64
	}{
		{0, 0, 1},
		{1, 1, 1},
		{3, 2, 3},
		{4, 2, 7},
		{5, 3, 25},
		{6, 3, 90},
		{7, 4, 350},
		{10, 5, 42525},
		{5, 0, 0},
		{3, 5, 0},
	}
	for _, tc := range cases {
		if got := Stirling2(tc.n, tc.k); got != tc.want {
			t.Errorf("S(%d,%d) = %g, want %g", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestStirling2Recurrence(t *testing.T) {
	// Property: S(n,k) = k·S(n-1,k) + S(n-1,k-1) for modest n,k.
	for n := int64(2); n <= 15; n++ {
		for k := int64(1); k <= n; k++ {
			want := float64(k)*Stirling2(n-1, k) + Stirling2(n-1, k-1)
			if got := Stirling2(n, k); got != want {
				t.Errorf("S(%d,%d) = %g, want %g", n, k, got, want)
			}
		}
	}
}

func TestStirling2RowSumsAreBellNumbers(t *testing.T) {
	bell := []float64{1, 1, 2, 5, 15, 52, 203, 877, 4140}
	for n := int64(0); n < int64(len(bell)); n++ {
		var sum float64
		for k := int64(0); k <= n; k++ {
			sum += Stirling2(n, k)
		}
		if sum != bell[n] {
			t.Errorf("row %d sums to %g, want %g", n, sum, bell[n])
		}
	}
}

func TestBinomialKnownValues(t *testing.T) {
	cases := []struct {
		n, k int64
		want float64
	}{
		{5, 2, 10},
		{10, 5, 252},
		{20, 10, 184756},
		{7, 0, 1},
		{7, 7, 1},
	}
	for _, tc := range cases {
		if got := Binomial(tc.n, tc.k); !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("C(%d,%d) = %g, want %g", tc.n, tc.k, got, tc.want)
		}
	}
	if Binomial(5, 6) != 0 || Binomial(5, -1) != 0 {
		t.Error("out-of-range binomial should be 0")
	}
}

func TestLnFactorial(t *testing.T) {
	if got := LnFactorial(0); got != 0 {
		t.Errorf("ln 0! = %g", got)
	}
	if got := LnFactorial(5); !almostEqual(got, math.Log(120), 1e-12) {
		t.Errorf("ln 5! = %g, want ln 120", got)
	}
}

func TestDistributionSumsToOne(t *testing.T) {
	for _, tc := range []struct{ n, r int64 }{{4, 3}, {10, 6}, {6, 10}, {1, 5}, {20, 20}} {
		dist := DistinctDistribution(tc.n, tc.r)
		var sum float64
		for _, p := range dist {
			sum += p
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("distribution(n=%d,r=%d) sums to %g", tc.n, tc.r, sum)
		}
	}
}

func TestExactMatchesClosedForm(t *testing.T) {
	// The paper's Stirling-number expectation must equal the closed form
	// n(1-(1-1/n)^r) wherever the exact computation is feasible.
	for _, tc := range []struct{ n, r int64 }{
		{1, 1}, {2, 3}, {5, 5}, {10, 7}, {16, 16}, {30, 12}, {8, 40},
	} {
		exact := ExpectedDistinctExact(tc.n, tc.r)
		closed := ExpectedDistinct(tc.n, tc.r)
		if !almostEqual(exact, closed, 1e-8) {
			t.Errorf("n=%d r=%d: exact %g vs closed %g", tc.n, tc.r, exact, closed)
		}
	}
}

func TestExpectedDistinctProperties(t *testing.T) {
	// 0 ≤ E[D] ≤ min(n, r); monotone in r.
	f := func(na, ra uint16) bool {
		n := int64(na%1000) + 1
		r := int64(ra % 2000)
		d := ExpectedDistinct(n, r)
		if d < 0 || d > float64(n) || d > float64(r) {
			return false
		}
		return ExpectedDistinct(n, r+1) >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpectedDistinctLimits(t *testing.T) {
	if got := ExpectedDistinct(100, 0); got != 0 {
		t.Errorf("E[D] with r=0 = %g", got)
	}
	if got := ExpectedDistinct(1, 100); got != 1 {
		t.Errorf("E[D] with n=1 = %g", got)
	}
	// r >> n: approaches n.
	if got := ExpectedDistinct(50, 100000); !almostEqual(got, 50, 1e-6) {
		t.Errorf("E[D] saturation = %g, want ≈50", got)
	}
	// r = 1: exactly 1.
	if got := ExpectedDistinct(1000000, 1); !almostEqual(got, 1, 1e-9) {
		t.Errorf("E[D] with r=1 = %g", got)
	}
	// Large n, r = n: ≈ n(1-1/e).
	n := int64(10_000_000)
	want := float64(n) * (1 - math.Exp(-1))
	if got := ExpectedDistinct(n, n); !almostEqual(got, want, 1e-4) {
		t.Errorf("E[D](n,n) = %g, want ≈ %g", got, want)
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"neg factorial":    func() { LnFactorial(-1) },
		"neg stirling":     func() { Stirling2(-1, 2) },
		"bad distribution": func() { DistinctDistribution(0, 3) },
		"bad expected":     func() { ExpectedDistinct(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
