// Package combinatorics provides the counting machinery behind the
// paper's r_acc cost function (Section 4.6): with r independent random
// accesses to a region of n items, how many distinct items D are touched
// in expectation?
//
// The paper derives E[D] through Stirling numbers of the second kind:
//
//	P(exactly k distinct) = C(n,k) · S(r,k) · k! / n^r
//	E[D] = Σ_k k · P(k distinct)
//
// That expectation has the well-known closed form n·(1 − (1 − 1/n)^r),
// which this package also provides; the test suite proves the two agree,
// and the exact machinery remains available for distribution queries.
package combinatorics

import "math"

// LnFactorial returns ln(n!) using math.Lgamma.
func LnFactorial(n int64) float64 {
	if n < 0 {
		panic("combinatorics: factorial of negative number")
	}
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}

// LnBinomial returns ln C(n, k). It returns -Inf when k < 0 or k > n.
func LnBinomial(n, k int64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LnFactorial(n) - LnFactorial(k) - LnFactorial(n-k)
}

// Binomial returns C(n, k) as a float64 (may overflow to +Inf for huge
// arguments, which callers in this package never need).
func Binomial(n, k int64) float64 {
	return math.Exp(LnBinomial(n, k))
}

// Stirling2 returns the Stirling number of the second kind S(n, k): the
// number of ways to partition a set of n elements into k nonempty
// subsets. Exact computation via the triangular recurrence
// S(n,k) = k·S(n-1,k) + S(n-1,k-1); float64, so exactness holds while
// values stay below 2^53.
func Stirling2(n, k int64) float64 {
	switch {
	case n < 0 || k < 0:
		panic("combinatorics: negative Stirling argument")
	case n == 0 && k == 0:
		return 1
	case n == 0 || k == 0 || k > n:
		return 0
	}
	// prev[j] = S(i-1, j)
	prev := make([]float64, k+1)
	cur := make([]float64, k+1)
	prev[0] = 1 // S(0,0)
	for i := int64(1); i <= n; i++ {
		cur[0] = 0
		top := k
		if i < k {
			top = i
		}
		for j := int64(1); j <= top; j++ {
			cur[j] = float64(j)*prev[j] + prev[j-1]
		}
		for j := top + 1; j <= k; j++ {
			cur[j] = 0
		}
		prev, cur = cur, prev
	}
	return prev[k]
}

// DistinctDistribution returns P(exactly k distinct items are touched)
// for k = 0..min(r,n) when r independent uniform accesses hit a region of
// n items, using the paper's Stirling-number derivation. Intended for
// small n and r (tests and the exact/closed-form ablation); cost model
// production code uses ExpectedDistinct.
func DistinctDistribution(n, r int64) []float64 {
	if n <= 0 || r < 0 {
		panic("combinatorics: invalid distribution arguments")
	}
	kMax := r
	if n < kMax {
		kMax = n
	}
	out := make([]float64, kMax+1)
	lnTotal := float64(r) * math.Log(float64(n))
	for k := int64(0); k <= kMax; k++ {
		s := Stirling2(r, k)
		if s == 0 {
			out[k] = 0
			continue
		}
		// ln(C(n,k) · S(r,k) · k!) − ln(n^r)
		ln := LnBinomial(n, k) + math.Log(s) + LnFactorial(k) - lnTotal
		out[k] = math.Exp(ln)
	}
	return out
}

// ExpectedDistinctExact returns E[D] by summing the exact distribution.
// Feasible only for small r (Stirling numbers overflow float64 quickly);
// used to validate ExpectedDistinct.
func ExpectedDistinctExact(n, r int64) float64 {
	dist := DistinctDistribution(n, r)
	var e float64
	for k, p := range dist {
		e += float64(k) * p
	}
	return e
}

// ExpectedDistinct returns E[D] = n · (1 − (1 − 1/n)^r), the closed form
// of the paper's Stirling-number expectation, numerically stable for
// large n and r via expm1/log1p.
func ExpectedDistinct(n, r int64) float64 {
	if n <= 0 || r < 0 {
		panic("combinatorics: invalid expected-distinct arguments")
	}
	if r == 0 {
		return 0
	}
	if n == 1 {
		return 1
	}
	// n·(1 − exp(r·ln(1−1/n))) computed as −n·expm1(r·log1p(−1/n)).
	return -float64(n) * math.Expm1(float64(r)*math.Log1p(-1/float64(n)))
}
