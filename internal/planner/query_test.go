package planner

import (
	"strings"
	"testing"

	"repro/internal/hardware"
	"repro/internal/queryplan"
)

func testQuery() queryplan.Query {
	return queryplan.Query{
		Relations: []queryplan.Relation{
			{Name: "U", Tuples: 20_000, Width: 16},
			{Name: "V", Tuples: 5_000, Width: 16},
		},
		Joins:   []queryplan.JoinEdge{{Left: 0, Right: 1, Selectivity: 1.0 / 5_000}},
		GroupBy: 50,
	}
}

func TestQueryCandidatesDedupe(t *testing.T) {
	pl, err := New(hardware.SmallTest())
	if err != nil {
		t.Fatal(err)
	}
	// The exhaustive oracle enumerates the complete plan space, so the
	// expected duplicate pairs are guaranteed to be present.
	cands, err := pl.QueryCandidatesSearch(testQuery(), SearchOptions{Strategy: SearchExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// (U hj V) and (V hj U) compile to the same canonical program (the
	// build side is picked by size either way); only one survives.
	var hj int
	seen := map[string]bool{}
	for _, c := range cands {
		sig := string(c.Algorithm)
		if seen[sig] {
			t.Errorf("duplicate signature %s", sig)
		}
		seen[sig] = true
		if strings.Contains(sig, " hj ") && !strings.Contains(sig, "phj") {
			hj++
		}
	}
	if hj != 2 { // one per grouping variant
		t.Errorf("got %d plain hash-join plans, want 2 (build-side duplicates collapsed)", hj)
	}
	canon := map[string]bool{}
	for _, c := range cands {
		key := c.Compiled.Canonical()
		if canon[key] {
			t.Errorf("cost-equivalent duplicate survived: %s", c.Algorithm)
		}
		canon[key] = true
	}
}

func TestQueryPlansSortedAndRescorable(t *testing.T) {
	pl, err := New(hardware.SmallTest())
	if err != nil {
		t.Fatal(err)
	}
	q := testQuery()
	plans, err := pl.QueryPlans(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].TotalNS() < plans[i-1].TotalNS() {
			t.Fatalf("plans not sorted at %d: %g < %g", i, plans[i].TotalNS(), plans[i-1].TotalNS())
		}
	}
	best, err := pl.BestQueryPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if best.Algorithm != plans[0].Algorithm {
		t.Errorf("BestQueryPlan %s != QueryPlans[0] %s", best.Algorithm, plans[0].Algorithm)
	}

	// The same candidates re-score on another profile without
	// recompiling (the cross-profile what-if loop).
	cands, err := pl.QueryCandidates(q)
	if err != nil {
		t.Fatal(err)
	}
	other := ScoreOn(hardware.Origin2000(), cands)
	if len(other) != len(cands) {
		t.Fatalf("ScoreOn dropped candidates: %d != %d", len(other), len(cands))
	}
	for _, p := range other {
		if p.MemNS <= 0 {
			t.Errorf("plan %s scored non-positive memory time %g", p.Algorithm, p.MemNS)
		}
	}
}

func TestQueryCandidatesInvalidQuery(t *testing.T) {
	pl, err := New(hardware.SmallTest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.QueryCandidates(queryplan.Query{}); err == nil {
		t.Fatal("invalid query accepted")
	}
	if _, err := pl.QueryCandidatesSearch(testQuery(), SearchOptions{Strategy: "anneal"}); err == nil {
		t.Fatal("invalid search strategy accepted")
	}
}

// TestQuerySearchStrategiesAgreeOnWinner checks the two engines through
// the planner surface on a small query: the DP default prunes, but its
// winner must be drawn from (and here equal to) the exhaustive space's
// winner, and both must flow through the same exact phase-2 scoring.
func TestQuerySearchStrategiesAgreeOnWinner(t *testing.T) {
	pl, err := New(hardware.SmallTest())
	if err != nil {
		t.Fatal(err)
	}
	q := testQuery()
	ex, err := pl.BestQueryPlanSearch(q, SearchOptions{Strategy: SearchExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := pl.BestQueryPlanSearch(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dp.Algorithm != ex.Algorithm {
		t.Errorf("DP winner %s != exhaustive winner %s", dp.Algorithm, ex.Algorithm)
	}
	if dp.TotalNS() != ex.TotalNS() {
		t.Errorf("winner cost diverged: dp %g, exhaustive %g", dp.TotalNS(), ex.TotalNS())
	}
}
