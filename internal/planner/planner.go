// Package planner is a miniature cost-based physical optimizer built on
// the paper's cost model — the consumer the model was designed for. A
// logical operation (join, sort, group-by, distinct) plus the logical
// data volumes (cardinalities and widths, which the paper assumes a
// perfect oracle provides) is expanded into candidate physical plans;
// each candidate's data access pattern is evaluated by the cost model on
// the target hardware; the cheapest plan wins.
//
// The planner can also execute the chosen plan on the simulated engine,
// so tests can verify that the predicted ranking matches measured
// reality.
package planner

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

// Relation describes an input's logical properties.
type Relation struct {
	Name   string
	Tuples int64
	Width  int64 // bytes per tuple, ≥ engine.KeyWidth
	Sorted bool  // key-sorted, enabling merge algorithms without a sort
}

// Region returns the relation's data-region descriptor.
func (r Relation) Region() *region.Region {
	return region.New(r.Name, r.Tuples, r.Width)
}

// Algorithm identifies a physical operator implementation.
type Algorithm string

// The planner's physical algorithm inventory.
const (
	NestedLoopJoin      Algorithm = "nested-loop-join"
	MergeJoin           Algorithm = "merge-join"
	SortMergeJoin       Algorithm = "sort-merge-join"
	HashJoin            Algorithm = "hash-join"
	PartitionedHashJoin Algorithm = "partitioned-hash-join"
	QuickSort           Algorithm = "quick-sort"
	HashAggregate       Algorithm = "hash-aggregate"
	SortAggregate       Algorithm = "sort-aggregate"
	HashDistinct        Algorithm = "hash-distinct"
	SortDistinct        Algorithm = "sort-distinct"
)

// Plan is one costed physical alternative.
type Plan struct {
	Algorithm Algorithm
	Pattern   pattern.Pattern
	// Fanout is the partition count for partitioned algorithms.
	Fanout int64
	// MemNS is the predicted memory access time (Eq. 3.1).
	MemNS float64
	// CPUNS is the estimated pure CPU time (Eq. 6.1's T_cpu).
	CPUNS float64
}

// TotalNS returns the predicted total time (Eq. 6.1).
func (p Plan) TotalNS() float64 { return p.MemNS + p.CPUNS }

// String renders "algorithm: T=... (mem ..., cpu ...)".
func (p Plan) String() string {
	return fmt.Sprintf("%-22s T=%8.2fms (mem %8.2fms, cpu %8.2fms)",
		p.Algorithm, p.TotalNS()/1e6, p.MemNS/1e6, p.CPUNS/1e6)
}

// Planner costs candidate plans on one hardware profile.
type Planner struct {
	model *cost.Model
	hier  *hardware.Hierarchy
	// cpu holds per-tuple CPU cost constants (ns); see DefaultCPU.
	cpu CPUCosts
}

// CPUCosts are the per-tuple T_cpu constants per algorithm step.
type CPUCosts struct {
	Compare   float64 // one key comparison + cursor advance
	Hash      float64 // hash + bucket access
	Move      float64 // copy one tuple
	Partition float64 // hash + cluster append
}

// DefaultCPU returns constants in line with the experiments package.
func DefaultCPU() CPUCosts {
	return CPUCosts{Compare: 20, Hash: 100, Move: 20, Partition: 50}
}

// New creates a planner for the hierarchy.
func New(h *hardware.Hierarchy) (*Planner, error) {
	m, err := cost.New(h)
	if err != nil {
		return nil, err
	}
	return &Planner{model: m, hier: h, cpu: DefaultCPU()}, nil
}

// SetCPUCosts overrides the CPU constants.
func (pl *Planner) SetCPUCosts(c CPUCosts) { pl.cpu = c }

// minCapacity returns the smallest cache capacity (quick-sort pruning).
func (pl *Planner) minCapacity() int64 {
	min := pl.hier.Levels[0].Capacity
	for _, l := range pl.hier.Levels {
		if l.Capacity < min {
			min = l.Capacity
		}
	}
	return min
}

// candidateFanouts for partitioned algorithms: around the TLB entry
// count and L1/L2 line budgets.
func (pl *Planner) candidateFanouts() []int64 {
	return []int64{16, 64, 256}
}

// cost evaluates a pattern, panicking only on programming errors.
func (pl *Planner) costOf(p pattern.Pattern) (float64, error) {
	res, err := pl.model.Evaluate(p)
	if err != nil {
		return 0, err
	}
	return res.MemoryTimeNS(), nil
}

// JoinPlans enumerates and costs the physical alternatives of an
// equi-join U ⋈ V with the given estimated output cardinality, sorted
// cheapest first.
func (pl *Planner) JoinPlans(u, v Relation, outTuples int64) ([]Plan, error) {
	ur, vr := u.Region(), v.Region()
	out := region.New("W", outTuples, u.Width)
	nU, nV := float64(u.Tuples), float64(v.Tuples)
	var plans []Plan

	add := func(alg Algorithm, p pattern.Pattern, fanout int64, cpu float64) error {
		mem, err := pl.costOf(p)
		if err != nil {
			return err
		}
		plans = append(plans, Plan{Algorithm: alg, Pattern: p, Fanout: fanout, MemNS: mem, CPUNS: cpu})
		return nil
	}

	// Nested loop: always applicable.
	if err := add(NestedLoopJoin,
		engine.NestedLoopJoinPattern(ur, vr, out), 0,
		pl.cpu.Compare*nU*nV+pl.cpu.Move*float64(outTuples)); err != nil {
		return nil, err
	}

	// Merge join: directly if both sorted, else behind explicit sorts.
	if u.Sorted && v.Sorted {
		if err := add(MergeJoin,
			engine.MergeJoinPattern(ur, vr, out), 0,
			pl.cpu.Compare*(nU+nV)+pl.cpu.Move*float64(outTuples)); err != nil {
			return nil, err
		}
	} else {
		sortCPU := func(n float64) float64 {
			if n < 2 {
				return 0
			}
			return pl.cpu.Compare * 2 * n * math.Ceil(math.Log2(n))
		}
		seq := pattern.Seq{}
		var cpu float64
		if !u.Sorted {
			seq = append(seq, engine.QuickSortPattern(ur, pl.minCapacity()))
			cpu += sortCPU(nU)
		}
		if !v.Sorted {
			seq = append(seq, engine.QuickSortPattern(vr, pl.minCapacity()))
			cpu += sortCPU(nV)
		}
		seq = append(seq, engine.MergeJoinPattern(ur, vr, out))
		cpu += pl.cpu.Compare*(nU+nV) + pl.cpu.Move*float64(outTuples)
		if err := add(SortMergeJoin, seq, 0, cpu); err != nil {
			return nil, err
		}
	}

	// Hash join (build on the smaller input).
	build, probe := vr, ur
	if u.Tuples < v.Tuples {
		build, probe = ur, vr
	}
	h := engine.HashRegionFor("H", build.N)
	if err := add(HashJoin,
		engine.HashJoinPattern(probe, build, h, out), 0,
		pl.cpu.Hash*(nU+nV)+pl.cpu.Move*float64(outTuples)); err != nil {
		return nil, err
	}

	// Partitioned hash join over candidate fan-outs.
	for _, m := range pl.candidateFanouts() {
		if m*8 > u.Tuples || m*8 > v.Tuples {
			continue // degenerate clusters
		}
		p := engine.PartitionedHashJoinPattern(ur, vr, out, m)
		cpu := pl.cpu.Partition*(nU+nV) + pl.cpu.Hash*(nU+nV) + pl.cpu.Move*float64(outTuples)
		if err := add(PartitionedHashJoin, p, m, cpu); err != nil {
			return nil, err
		}
	}

	sort.SliceStable(plans, func(i, j int) bool { return plans[i].TotalNS() < plans[j].TotalNS() })
	return plans, nil
}

// BestJoin returns the cheapest join plan.
func (pl *Planner) BestJoin(u, v Relation, outTuples int64) (Plan, error) {
	plans, err := pl.JoinPlans(u, v, outTuples)
	if err != nil {
		return Plan{}, err
	}
	return plans[0], nil
}

// AggregatePlans costs hash- vs sort-based grouping of u into `groups`
// result groups, sorted cheapest first.
func (pl *Planner) AggregatePlans(u Relation, groups int64) ([]Plan, error) {
	ur := u.Region()
	n := float64(u.Tuples)
	agg := engine.AggRegionFor("A", groups)
	var plans []Plan

	mem, err := pl.costOf(engine.HashAggregatePattern(ur, agg))
	if err != nil {
		return nil, err
	}
	plans = append(plans, Plan{
		Algorithm: HashAggregate,
		Pattern:   engine.HashAggregatePattern(ur, agg),
		MemNS:     mem,
		CPUNS:     pl.cpu.Hash * n,
	})

	out := region.New("G", groups, u.Width)
	sortPat := pattern.Seq{
		engine.QuickSortPattern(ur, pl.minCapacity()),
		pattern.Conc{pattern.STrav{R: ur}, pattern.STrav{R: out}},
	}
	mem, err = pl.costOf(sortPat)
	if err != nil {
		return nil, err
	}
	sortCPU := 0.0
	if n >= 2 {
		sortCPU = pl.cpu.Compare * 2 * n * math.Ceil(math.Log2(n))
	}
	plans = append(plans, Plan{
		Algorithm: SortAggregate,
		Pattern:   sortPat,
		MemNS:     mem,
		CPUNS:     sortCPU + pl.cpu.Compare*n,
	})

	sort.SliceStable(plans, func(i, j int) bool { return plans[i].TotalNS() < plans[j].TotalNS() })
	return plans, nil
}

// DistinctPlans costs hash- vs sort-based duplicate elimination with the
// given estimated distinct count, sorted cheapest first.
func (pl *Planner) DistinctPlans(u Relation, distinct int64) ([]Plan, error) {
	ur := u.Region()
	n := float64(u.Tuples)
	h := engine.HashRegionFor("H", u.Tuples)
	out := region.New("D", distinct, u.Width)
	var plans []Plan

	hp := engine.HashDedupPattern(ur, h, out)
	mem, err := pl.costOf(hp)
	if err != nil {
		return nil, err
	}
	plans = append(plans, Plan{Algorithm: HashDistinct, Pattern: hp, MemNS: mem, CPUNS: pl.cpu.Hash * n})

	sp := engine.SortDedupPattern(ur, out, pl.minCapacity())
	mem, err = pl.costOf(sp)
	if err != nil {
		return nil, err
	}
	sortCPU := 0.0
	if n >= 2 {
		sortCPU = pl.cpu.Compare * 2 * n * math.Ceil(math.Log2(n))
	}
	plans = append(plans, Plan{Algorithm: SortDistinct, Pattern: sp, MemNS: mem, CPUNS: sortCPU + pl.cpu.Compare*n})

	sort.SliceStable(plans, func(i, j int) bool { return plans[i].TotalNS() < plans[j].TotalNS() })
	return plans, nil
}
