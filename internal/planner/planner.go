// Package planner is a miniature cost-based physical optimizer built on
// the paper's cost model — the consumer the model was designed for. A
// logical operation (join, sort, group-by, distinct) plus the logical
// data volumes (cardinalities and widths, which the paper assumes a
// perfect oracle provides) is expanded into candidate physical plans;
// each candidate's data access pattern is evaluated by the cost model on
// the target hardware; the cheapest plan wins.
//
// The planner can also execute the chosen plan on the simulated engine,
// so tests can verify that the predicted ranking matches measured
// reality.
package planner

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/costir"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/queryplan"
	"repro/internal/region"
)

// Relation describes an input's logical properties. The type lives in
// internal/queryplan (plan-level composition needs it below the
// planner); this alias keeps the planner API self-contained.
type Relation = queryplan.Relation

// Algorithm identifies a physical operator implementation.
type Algorithm = queryplan.Algorithm

// The planner's physical algorithm inventory.
const (
	NestedLoopJoin      = queryplan.NestedLoopJoin
	MergeJoin           = queryplan.MergeJoin
	SortMergeJoin       = queryplan.SortMergeJoin
	HashJoin            = queryplan.HashJoin
	PartitionedHashJoin = queryplan.PartitionedHashJoin
	QuickSort           = queryplan.QuickSort
	HashAggregate       = queryplan.HashAggregate
	SortAggregate       = queryplan.SortAggregate
	HashDistinct        = queryplan.HashDistinct
	SortDistinct        = queryplan.SortDistinct
)

// Candidate is one enumerated physical alternative before costing: the
// algorithm, its access pattern compiled once into the flat cost IR,
// and the hardware-independent CPU estimate. A candidate can be scored
// on any number of hardware profiles (ScoreOn) without re-compiling —
// the cross-profile what-if loop an optimizer or a fleet-placement
// service runs per plan.
type Candidate struct {
	Algorithm Algorithm
	Pattern   pattern.Pattern
	// Compiled is the pattern's flat-IR program, shared by every
	// scoring pass.
	Compiled *costir.Program
	// Fanout is the partition count for partitioned algorithms.
	Fanout int64
	// CPUNS is the estimated pure CPU time (Eq. 6.1's T_cpu),
	// hardware-profile-independent by the paper's calibration model.
	CPUNS float64
}

// PlanOn scores the candidate on one hierarchy.
func (c Candidate) PlanOn(h *hardware.Hierarchy) Plan {
	return Plan{
		Algorithm: c.Algorithm,
		Pattern:   c.Pattern,
		Compiled:  c.Compiled,
		Fanout:    c.Fanout,
		MemNS:     c.Compiled.MemoryTimeNS(h),
		CPUNS:     c.CPUNS,
	}
}

// ScoreOn costs every candidate on the hierarchy and returns the plans
// sorted cheapest first. Candidates are evaluated from their compiled
// programs; no pattern is re-compiled.
func ScoreOn(h *hardware.Hierarchy, cands []Candidate) []Plan {
	plans := make([]Plan, len(cands))
	for i, c := range cands {
		plans[i] = c.PlanOn(h)
	}
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].TotalNS() < plans[j].TotalNS() })
	return plans
}

// Plan is one costed physical alternative.
type Plan struct {
	Algorithm Algorithm
	Pattern   pattern.Pattern
	// Compiled is the pattern's flat-IR program (shared with the
	// Candidate the plan was scored from).
	Compiled *costir.Program
	// Fanout is the partition count for partitioned algorithms.
	Fanout int64
	// MemNS is the predicted memory access time (Eq. 3.1).
	MemNS float64
	// CPUNS is the estimated pure CPU time (Eq. 6.1's T_cpu).
	CPUNS float64
}

// TotalNS returns the predicted total time (Eq. 6.1).
func (p Plan) TotalNS() float64 { return p.MemNS + p.CPUNS }

// String renders "algorithm: T=... (mem ..., cpu ...)".
func (p Plan) String() string {
	return fmt.Sprintf("%-22s T=%8.2fms (mem %8.2fms, cpu %8.2fms)",
		p.Algorithm, p.TotalNS()/1e6, p.MemNS/1e6, p.CPUNS/1e6)
}

// Planner enumerates candidate plans (compiled once into the cost IR)
// and costs them, by default on its own hardware profile; ScoreOn
// re-scores the same candidates on any other profile.
type Planner struct {
	hier *hardware.Hierarchy
	// cpu holds per-tuple CPU cost constants (ns); see DefaultCPU.
	cpu CPUCosts
}

// CPUCosts are the per-tuple T_cpu constants per algorithm step.
type CPUCosts = queryplan.CPUCosts

// DefaultCPU returns constants in line with the experiments package.
func DefaultCPU() CPUCosts { return queryplan.DefaultCPU() }

// New creates a planner for the hierarchy; the hierarchy must
// validate (the same requirement cost.New enforces).
func New(h *hardware.Hierarchy) (*Planner, error) {
	if _, err := cost.New(h); err != nil {
		return nil, err
	}
	return &Planner{hier: h, cpu: DefaultCPU()}, nil
}

// SetCPUCosts overrides the CPU constants.
func (pl *Planner) SetCPUCosts(c CPUCosts) { pl.cpu = c }

// minCapacity returns the smallest cache capacity (quick-sort pruning).
func (pl *Planner) minCapacity() int64 {
	min := pl.hier.Levels[0].Capacity
	for _, l := range pl.hier.Levels {
		if l.Capacity < min {
			min = l.Capacity
		}
	}
	return min
}

// candidateFanouts for partitioned algorithms: around the TLB entry
// count and L1/L2 line budgets.
func (pl *Planner) candidateFanouts() []int64 {
	return []int64{16, 64, 256}
}

// newCandidate compiles a pattern once and wraps it as a Candidate —
// the single construction path every enumerator below goes through.
func newCandidate(alg Algorithm, p pattern.Pattern, fanout int64, cpu float64) (Candidate, error) {
	prog, err := costir.Compile(p)
	if err != nil {
		return Candidate{}, fmt.Errorf("planner: compiling %s candidate: %w", alg, err)
	}
	return Candidate{Algorithm: alg, Pattern: p, Compiled: prog, Fanout: fanout, CPUNS: cpu}, nil
}

// JoinCandidates enumerates the physical alternatives of an equi-join
// U ⋈ V with the given estimated output cardinality, compiling each
// candidate's access pattern exactly once. Cost nothing yet: pass the
// result to ScoreOn for each hardware profile of interest.
func (pl *Planner) JoinCandidates(u, v Relation, outTuples int64) ([]Candidate, error) {
	ur, vr := u.Region(), v.Region()
	out := region.New("W", outTuples, u.Width)
	nU, nV := float64(u.Tuples), float64(v.Tuples)
	var cands []Candidate

	add := func(alg Algorithm, p pattern.Pattern, fanout int64, cpu float64) error {
		c, err := newCandidate(alg, p, fanout, cpu)
		if err != nil {
			return err
		}
		cands = append(cands, c)
		return nil
	}

	// Nested loop: always applicable.
	if err := add(NestedLoopJoin,
		engine.NestedLoopJoinPattern(ur, vr, out), 0,
		pl.cpu.Compare*nU*nV+pl.cpu.Move*float64(outTuples)); err != nil {
		return nil, err
	}

	// Merge join: directly if both sorted, else behind explicit sorts.
	if u.Sorted && v.Sorted {
		if err := add(MergeJoin,
			engine.MergeJoinPattern(ur, vr, out), 0,
			pl.cpu.Compare*(nU+nV)+pl.cpu.Move*float64(outTuples)); err != nil {
			return nil, err
		}
	} else {
		sortCPU := func(n float64) float64 {
			if n < 2 {
				return 0
			}
			return pl.cpu.Compare * 2 * n * math.Ceil(math.Log2(n))
		}
		seq := pattern.Seq{}
		var cpu float64
		if !u.Sorted {
			seq = append(seq, engine.QuickSortPattern(ur, pl.minCapacity()))
			cpu += sortCPU(nU)
		}
		if !v.Sorted {
			seq = append(seq, engine.QuickSortPattern(vr, pl.minCapacity()))
			cpu += sortCPU(nV)
		}
		seq = append(seq, engine.MergeJoinPattern(ur, vr, out))
		cpu += pl.cpu.Compare*(nU+nV) + pl.cpu.Move*float64(outTuples)
		if err := add(SortMergeJoin, seq, 0, cpu); err != nil {
			return nil, err
		}
	}

	// Hash join (build on the smaller input).
	build, probe := vr, ur
	if u.Tuples < v.Tuples {
		build, probe = ur, vr
	}
	h := engine.HashRegionFor("H", build.N)
	if err := add(HashJoin,
		engine.HashJoinPattern(probe, build, h, out), 0,
		pl.cpu.Hash*(nU+nV)+pl.cpu.Move*float64(outTuples)); err != nil {
		return nil, err
	}

	// Partitioned hash join over candidate fan-outs.
	for _, m := range pl.candidateFanouts() {
		if m*8 > u.Tuples || m*8 > v.Tuples {
			continue // degenerate clusters
		}
		p := engine.PartitionedHashJoinPattern(ur, vr, out, m)
		cpu := pl.cpu.Partition*(nU+nV) + pl.cpu.Hash*(nU+nV) + pl.cpu.Move*float64(outTuples)
		if err := add(PartitionedHashJoin, p, m, cpu); err != nil {
			return nil, err
		}
	}
	return cands, nil
}

// JoinPlans enumerates and costs the physical alternatives of an
// equi-join U ⋈ V on the planner's own hierarchy, sorted cheapest
// first.
func (pl *Planner) JoinPlans(u, v Relation, outTuples int64) ([]Plan, error) {
	cands, err := pl.JoinCandidates(u, v, outTuples)
	if err != nil {
		return nil, err
	}
	return ScoreOn(pl.hier, cands), nil
}

// BestJoin returns the cheapest join plan.
func (pl *Planner) BestJoin(u, v Relation, outTuples int64) (Plan, error) {
	plans, err := pl.JoinPlans(u, v, outTuples)
	if err != nil {
		return Plan{}, err
	}
	return plans[0], nil
}

// AggregateCandidates enumerates hash- vs sort-based grouping of u
// into `groups` result groups, compiling each pattern once.
func (pl *Planner) AggregateCandidates(u Relation, groups int64) ([]Candidate, error) {
	ur := u.Region()
	n := float64(u.Tuples)
	agg := engine.AggRegionFor("A", groups)
	var cands []Candidate

	add := func(alg Algorithm, p pattern.Pattern, cpu float64) error {
		c, err := newCandidate(alg, p, 0, cpu)
		if err != nil {
			return err
		}
		cands = append(cands, c)
		return nil
	}

	if err := add(HashAggregate, engine.HashAggregatePattern(ur, agg), pl.cpu.Hash*n); err != nil {
		return nil, err
	}

	out := region.New("G", groups, u.Width)
	sortPat := pattern.Seq{
		engine.QuickSortPattern(ur, pl.minCapacity()),
		pattern.Conc{pattern.STrav{R: ur}, pattern.STrav{R: out}},
	}
	sortCPU := 0.0
	if n >= 2 {
		sortCPU = pl.cpu.Compare * 2 * n * math.Ceil(math.Log2(n))
	}
	if err := add(SortAggregate, sortPat, sortCPU+pl.cpu.Compare*n); err != nil {
		return nil, err
	}
	return cands, nil
}

// AggregatePlans costs hash- vs sort-based grouping of u into `groups`
// result groups on the planner's hierarchy, sorted cheapest first.
func (pl *Planner) AggregatePlans(u Relation, groups int64) ([]Plan, error) {
	cands, err := pl.AggregateCandidates(u, groups)
	if err != nil {
		return nil, err
	}
	return ScoreOn(pl.hier, cands), nil
}

// DistinctCandidates enumerates hash- vs sort-based duplicate
// elimination with the given estimated distinct count, compiling each
// pattern once.
func (pl *Planner) DistinctCandidates(u Relation, distinct int64) ([]Candidate, error) {
	ur := u.Region()
	n := float64(u.Tuples)
	h := engine.HashRegionFor("H", u.Tuples)
	out := region.New("D", distinct, u.Width)
	var cands []Candidate

	add := func(alg Algorithm, p pattern.Pattern, cpu float64) error {
		c, err := newCandidate(alg, p, 0, cpu)
		if err != nil {
			return err
		}
		cands = append(cands, c)
		return nil
	}

	if err := add(HashDistinct, engine.HashDedupPattern(ur, h, out), pl.cpu.Hash*n); err != nil {
		return nil, err
	}
	sortCPU := 0.0
	if n >= 2 {
		sortCPU = pl.cpu.Compare * 2 * n * math.Ceil(math.Log2(n))
	}
	if err := add(SortDistinct, engine.SortDedupPattern(ur, out, pl.minCapacity()), sortCPU+pl.cpu.Compare*n); err != nil {
		return nil, err
	}
	return cands, nil
}

// DistinctPlans costs hash- vs sort-based duplicate elimination on the
// planner's hierarchy, sorted cheapest first.
func (pl *Planner) DistinctPlans(u Relation, distinct int64) ([]Plan, error) {
	cands, err := pl.DistinctCandidates(u, distinct)
	if err != nil {
		return nil, err
	}
	return ScoreOn(pl.hier, cands), nil
}
