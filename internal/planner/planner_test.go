package planner

import (
	"testing"

	"repro/internal/hardware"
)

func newPlanner(t *testing.T) *Planner {
	t.Helper()
	pl, err := New(hardware.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestJoinPlansEnumerated(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 100000, Width: 16}
	v := Relation{Name: "V", Tuples: 100000, Width: 16}
	plans, err := pl.JoinPlans(u, v, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 4 {
		t.Fatalf("only %d candidate plans", len(plans))
	}
	seen := map[Algorithm]bool{}
	for _, p := range plans {
		seen[p.Algorithm] = true
		if p.TotalNS() <= 0 {
			t.Errorf("%s has non-positive cost", p.Algorithm)
		}
	}
	for _, alg := range []Algorithm{NestedLoopJoin, SortMergeJoin, HashJoin, PartitionedHashJoin} {
		if !seen[alg] {
			t.Errorf("missing candidate %s", alg)
		}
	}
	// Plans sorted cheapest-first.
	for i := 1; i < len(plans); i++ {
		if plans[i].TotalNS() < plans[i-1].TotalNS() {
			t.Error("plans not sorted by cost")
		}
	}
}

func TestMergeJoinOfferedForSortedInputs(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 50000, Width: 8, Sorted: true}
	v := Relation{Name: "V", Tuples: 50000, Width: 8, Sorted: true}
	plans, err := pl.JoinPlans(u, v, 50000)
	if err != nil {
		t.Fatal(err)
	}
	var hasMerge, hasSortMerge bool
	for _, p := range plans {
		hasMerge = hasMerge || p.Algorithm == MergeJoin
		hasSortMerge = hasSortMerge || p.Algorithm == SortMergeJoin
	}
	if !hasMerge {
		t.Error("merge join not offered for sorted inputs")
	}
	if hasSortMerge {
		t.Error("redundant sort-merge join offered for sorted inputs")
	}
}

func TestBestJoinPrefersMergeWhenSorted(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 1 << 20, Width: 8, Sorted: true}
	v := Relation{Name: "V", Tuples: 1 << 20, Width: 8, Sorted: true}
	best, err := pl.BestJoin(u, v, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if best.Algorithm != MergeJoin {
		t.Errorf("best = %s, want merge join for pre-sorted 8MB inputs", best.Algorithm)
	}
}

func TestBestJoinAvoidsNestedLoopForLargeInputs(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 1 << 18, Width: 16}
	v := Relation{Name: "V", Tuples: 1 << 18, Width: 16}
	best, err := pl.BestJoin(u, v, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if best.Algorithm == NestedLoopJoin {
		t.Error("nested loop chosen for 256k x 256k join")
	}
}

func TestBestJoinCrossover(t *testing.T) {
	// The headline claim: plain hash join wins while its hash table fits
	// L2; partitioned hash join wins once it does not.
	pl := newPlanner(t)
	small := Relation{Name: "U", Tuples: 1 << 14, Width: 16} // H = 512kB ≤ 4MB
	bestSmall, err := pl.BestJoin(small, Relation{Name: "V", Tuples: 1 << 14, Width: 16}, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if bestSmall.Algorithm != HashJoin {
		t.Errorf("small join best = %s, want plain hash join", bestSmall.Algorithm)
	}
	big := Relation{Name: "U", Tuples: 1 << 21, Width: 16} // H = 64MB >> 4MB
	bestBig, err := pl.BestJoin(big, Relation{Name: "V", Tuples: 1 << 21, Width: 16}, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	if bestBig.Algorithm != PartitionedHashJoin {
		t.Errorf("big join best = %s, want partitioned hash join", bestBig.Algorithm)
	}
}

func TestAggregatePlans(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 1 << 18, Width: 8}
	plans, err := pl.AggregatePlans(u, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("got %d aggregate plans", len(plans))
	}
	// Few groups: the aggregate table is cache-resident, hashing must
	// beat sort-everything.
	if plans[0].Algorithm != HashAggregate {
		t.Errorf("best aggregate = %s, want hash (1k groups)", plans[0].Algorithm)
	}
}

func TestDistinctPlans(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 1 << 16, Width: 8}
	plans, err := pl.DistinctPlans(u, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("got %d distinct plans", len(plans))
	}
	for _, p := range plans {
		if p.TotalNS() <= 0 {
			t.Errorf("%s non-positive cost", p.Algorithm)
		}
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Algorithm: HashJoin, MemNS: 2e6, CPUNS: 1e6}
	if p.String() == "" || p.TotalNS() != 3e6 {
		t.Error("Plan rendering broken")
	}
}

// TestPlannerRankingMatchesSimulation executes the top candidates of a
// join on the simulated engine and verifies the predicted winner indeed
// measures fastest — the end-to-end claim of the paper.
func TestPlannerRankingMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated execution of multiple plans")
	}
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 1 << 17, Width: 8} // 1MB inputs, H=4MB boundary
	v := Relation{Name: "V", Tuples: 1 << 17, Width: 8}
	plans, err := pl.JoinPlans(u, v, u.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	// Execute every plan except quadratic nested loop.
	type outcome struct {
		alg    Algorithm
		predNS float64
		measNS float64
	}
	var outcomes []outcome
	for _, p := range plans {
		if p.Algorithm == NestedLoopJoin {
			continue
		}
		ex := NewExecutor(pl, 256<<20)
		ut, vt := ex.MaterializeJoinInputs(u, v, 11)
		matches, measNS, err := ex.RunJoin(p, ut, vt, u.Tuples)
		if err != nil {
			t.Fatal(err)
		}
		if matches != u.Tuples {
			t.Fatalf("%s: %d matches, want %d", p.Algorithm, matches, u.Tuples)
		}
		outcomes = append(outcomes, outcome{p.Algorithm, p.MemNS, measNS})
	}
	// The predicted-cheapest executed plan must also measure cheapest
	// (within 10% slack for near-ties).
	bestPred, bestMeas := outcomes[0], outcomes[0]
	for _, o := range outcomes[1:] {
		if o.predNS < bestPred.predNS {
			bestPred = o
		}
		if o.measNS < bestMeas.measNS {
			bestMeas = o
		}
	}
	if bestPred.alg != bestMeas.alg && bestPred.measNS > bestMeas.measNS*1.10 {
		t.Errorf("predicted winner %s (measured %.1fms) but %s measured %.1fms",
			bestPred.alg, bestPred.measNS/1e6, bestMeas.alg, bestMeas.measNS/1e6)
	}
	for _, o := range outcomes {
		t.Logf("%-22s pred %8.1fms meas %8.1fms", o.alg, o.predNS/1e6, o.measNS/1e6)
	}
}
