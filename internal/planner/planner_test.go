package planner

import (
	"testing"

	"repro/internal/hardware"
)

func newPlanner(t *testing.T) *Planner {
	t.Helper()
	pl, err := New(hardware.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestJoinPlansEnumerated(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 100000, Width: 16}
	v := Relation{Name: "V", Tuples: 100000, Width: 16}
	plans, err := pl.JoinPlans(u, v, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 4 {
		t.Fatalf("only %d candidate plans", len(plans))
	}
	seen := map[Algorithm]bool{}
	for _, p := range plans {
		seen[p.Algorithm] = true
		if p.TotalNS() <= 0 {
			t.Errorf("%s has non-positive cost", p.Algorithm)
		}
	}
	for _, alg := range []Algorithm{NestedLoopJoin, SortMergeJoin, HashJoin, PartitionedHashJoin} {
		if !seen[alg] {
			t.Errorf("missing candidate %s", alg)
		}
	}
	// Plans sorted cheapest-first.
	for i := 1; i < len(plans); i++ {
		if plans[i].TotalNS() < plans[i-1].TotalNS() {
			t.Error("plans not sorted by cost")
		}
	}
}

func TestMergeJoinOfferedForSortedInputs(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 50000, Width: 8, Sorted: true}
	v := Relation{Name: "V", Tuples: 50000, Width: 8, Sorted: true}
	plans, err := pl.JoinPlans(u, v, 50000)
	if err != nil {
		t.Fatal(err)
	}
	var hasMerge, hasSortMerge bool
	for _, p := range plans {
		hasMerge = hasMerge || p.Algorithm == MergeJoin
		hasSortMerge = hasSortMerge || p.Algorithm == SortMergeJoin
	}
	if !hasMerge {
		t.Error("merge join not offered for sorted inputs")
	}
	if hasSortMerge {
		t.Error("redundant sort-merge join offered for sorted inputs")
	}
}

func TestBestJoinPrefersMergeWhenSorted(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 1 << 20, Width: 8, Sorted: true}
	v := Relation{Name: "V", Tuples: 1 << 20, Width: 8, Sorted: true}
	best, err := pl.BestJoin(u, v, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if best.Algorithm != MergeJoin {
		t.Errorf("best = %s, want merge join for pre-sorted 8MB inputs", best.Algorithm)
	}
}

func TestBestJoinAvoidsNestedLoopForLargeInputs(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 1 << 18, Width: 16}
	v := Relation{Name: "V", Tuples: 1 << 18, Width: 16}
	best, err := pl.BestJoin(u, v, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if best.Algorithm == NestedLoopJoin {
		t.Error("nested loop chosen for 256k x 256k join")
	}
}

func TestBestJoinCrossover(t *testing.T) {
	// The headline claim: plain hash join wins while its hash table fits
	// L2; partitioned hash join wins once it does not.
	pl := newPlanner(t)
	small := Relation{Name: "U", Tuples: 1 << 14, Width: 16} // H = 512kB ≤ 4MB
	bestSmall, err := pl.BestJoin(small, Relation{Name: "V", Tuples: 1 << 14, Width: 16}, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if bestSmall.Algorithm != HashJoin {
		t.Errorf("small join best = %s, want plain hash join", bestSmall.Algorithm)
	}
	big := Relation{Name: "U", Tuples: 1 << 21, Width: 16} // H = 64MB >> 4MB
	bestBig, err := pl.BestJoin(big, Relation{Name: "V", Tuples: 1 << 21, Width: 16}, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	if bestBig.Algorithm != PartitionedHashJoin {
		t.Errorf("big join best = %s, want partitioned hash join", bestBig.Algorithm)
	}
}

func TestAggregatePlans(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 1 << 18, Width: 8}
	plans, err := pl.AggregatePlans(u, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("got %d aggregate plans", len(plans))
	}
	// Few groups: the aggregate table is cache-resident, hashing must
	// beat sort-everything.
	if plans[0].Algorithm != HashAggregate {
		t.Errorf("best aggregate = %s, want hash (1k groups)", plans[0].Algorithm)
	}
}

func TestDistinctPlans(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 1 << 16, Width: 8}
	plans, err := pl.DistinctPlans(u, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("got %d distinct plans", len(plans))
	}
	for _, p := range plans {
		if p.TotalNS() <= 0 {
			t.Errorf("%s non-positive cost", p.Algorithm)
		}
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Algorithm: HashJoin, MemNS: 2e6, CPUNS: 1e6}
	if p.String() == "" || p.TotalNS() != 3e6 {
		t.Error("Plan rendering broken")
	}
}

// TestPlannerRankingMatchesSimulation executes the top candidates of a
// join on the simulated engine and verifies the predicted winner indeed
// measures fastest — the end-to-end claim of the paper.
func TestPlannerRankingMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated execution of multiple plans")
	}
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 1 << 17, Width: 8} // 1MB inputs, H=4MB boundary
	v := Relation{Name: "V", Tuples: 1 << 17, Width: 8}
	plans, err := pl.JoinPlans(u, v, u.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	// Execute every plan except quadratic nested loop.
	type outcome struct {
		alg    Algorithm
		predNS float64
		measNS float64
	}
	var outcomes []outcome
	for _, p := range plans {
		if p.Algorithm == NestedLoopJoin {
			continue
		}
		ex := NewExecutor(pl, 256<<20)
		ut, vt := ex.MaterializeJoinInputs(u, v, 11)
		matches, measNS, err := ex.RunJoin(p, ut, vt, u.Tuples)
		if err != nil {
			t.Fatal(err)
		}
		if matches != u.Tuples {
			t.Fatalf("%s: %d matches, want %d", p.Algorithm, matches, u.Tuples)
		}
		outcomes = append(outcomes, outcome{p.Algorithm, p.MemNS, measNS})
	}
	// The predicted-cheapest executed plan must also measure cheapest
	// (within 10% slack for near-ties).
	bestPred, bestMeas := outcomes[0], outcomes[0]
	for _, o := range outcomes[1:] {
		if o.predNS < bestPred.predNS {
			bestPred = o
		}
		if o.measNS < bestMeas.measNS {
			bestMeas = o
		}
	}
	if bestPred.alg != bestMeas.alg && bestPred.measNS > bestMeas.measNS*1.10 {
		t.Errorf("predicted winner %s (measured %.1fms) but %s measured %.1fms",
			bestPred.alg, bestPred.measNS/1e6, bestMeas.alg, bestMeas.measNS/1e6)
	}
	for _, o := range outcomes {
		t.Logf("%-22s pred %8.1fms meas %8.1fms", o.alg, o.predNS/1e6, o.measNS/1e6)
	}
}

// TestCandidatesCompiledOnce certifies the compile-once contract: the
// same candidate set re-scored across hardware profiles reuses the
// compiled programs by identity, and scoring on the planner's own
// profile reproduces JoinPlans exactly.
func TestCandidatesCompiledOnce(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 200000, Width: 16}
	v := Relation{Name: "V", Tuples: 100000, Width: 16}
	cands, err := pl.JoinCandidates(u, v, u.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 3 {
		t.Fatalf("only %d candidates", len(cands))
	}
	for _, c := range cands {
		if c.Compiled == nil {
			t.Fatalf("%s: nil compiled program", c.Algorithm)
		}
	}

	onOrigin := ScoreOn(hardware.Origin2000(), cands)
	onX86 := ScoreOn(hardware.ModernX86(), cands)
	for _, plans := range [][]Plan{onOrigin, onX86} {
		for _, p := range plans {
			// Programs are shared by pointer with the candidates: no
			// re-compilation happened.
			found := false
			for _, c := range cands {
				if c.Compiled == p.Compiled {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: plan's program not shared with its candidate", p.Algorithm)
			}
		}
	}

	direct, err := pl.JoinPlans(u, v, u.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(onOrigin) {
		t.Fatalf("JoinPlans %d plans, ScoreOn %d", len(direct), len(onOrigin))
	}
	for i := range direct {
		if direct[i].Algorithm != onOrigin[i].Algorithm || direct[i].MemNS != onOrigin[i].MemNS {
			t.Errorf("plan %d: JoinPlans %v/%g != ScoreOn %v/%g",
				i, direct[i].Algorithm, direct[i].MemNS, onOrigin[i].Algorithm, onOrigin[i].MemNS)
		}
	}

	// Different hardware may rank differently, but each plan's memory
	// time must be profile-specific (not stale from the first scoring).
	same := true
	for i := range onOrigin {
		if onOrigin[i].MemNS != onX86[i].MemNS {
			same = false
		}
	}
	if same {
		t.Error("scores identical across Origin2000 and ModernX86 — rescoring looks stale")
	}
}

// TestAggregateAndDistinctCandidates covers the other two enumerators'
// candidate paths.
func TestAggregateAndDistinctCandidates(t *testing.T) {
	pl := newPlanner(t)
	u := Relation{Name: "U", Tuples: 100000, Width: 16}
	ac, err := pl.AggregateCandidates(u, 512)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := pl.DistinctCandidates(u, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, cands := range [][]Candidate{ac, dc} {
		if len(cands) != 2 {
			t.Fatalf("got %d candidates, want 2", len(cands))
		}
		plans := ScoreOn(hardware.SmallTest(), cands)
		if len(plans) != 2 || plans[0].TotalNS() > plans[1].TotalNS() {
			t.Errorf("ScoreOn did not sort cheapest first: %v", plans)
		}
	}
}
