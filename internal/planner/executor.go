package planner

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/engine"
	"repro/internal/vmem"
	"repro/internal/workload"
)

// Executor runs chosen join plans on the simulated engine, so the
// planner's predicted ranking can be verified against measured memory
// time — closing the loop the paper's evaluation closes with hardware
// counters.
type Executor struct {
	Mem *vmem.Memory
	Sim *cachesim.Simulator
}

// NewExecutor creates an executor with the given simulated-memory budget
// on the planner's hierarchy.
func NewExecutor(pl *Planner, memBytes int64) *Executor {
	mem := vmem.New(memBytes)
	sim := cachesim.New(pl.hier)
	mem.SetObserver(sim)
	sim.Freeze()
	return &Executor{Mem: mem, Sim: sim}
}

// MaterializeJoinInputs creates and fills the two physical tables for a
// join according to their logical descriptions (1:1 permutation keys, or
// sorted keys when the relation is declared sorted).
func (e *Executor) MaterializeJoinInputs(u, v Relation, seed uint64) (*engine.Table, *engine.Table) {
	rng := workload.NewRNG(seed)
	ut := engine.NewTable(e.Mem, u.Name, u.Tuples, u.Width, 32)
	vt := engine.NewTable(e.Mem, v.Name, v.Tuples, v.Width, 32)
	if u.Sorted {
		workload.FillSorted(ut)
	} else {
		workload.FillPermutation(ut, rng)
	}
	if v.Sorted {
		workload.FillSorted(vt)
	} else {
		workload.FillPermutation(vt, rng)
	}
	return ut, vt
}

// RunJoin executes the plan's algorithm on the materialized inputs and
// returns (matches, measured memory time in ns).
func (e *Executor) RunJoin(p Plan, ut, vt *engine.Table, outCap int64) (int64, float64, error) {
	out := engine.NewTable(e.Mem, "W", outCap, ut.W(), 32)
	e.Sim.Reset()
	e.Sim.Thaw()
	defer e.Sim.Freeze()
	var matches int64
	switch p.Algorithm {
	case NestedLoopJoin:
		matches = engine.NestedLoopJoin(ut, vt, out)
	case MergeJoin:
		matches = engine.MergeJoin(ut, vt, out)
	case SortMergeJoin:
		engine.QuickSort(ut)
		engine.QuickSort(vt)
		matches = engine.MergeJoin(ut, vt, out)
	case HashJoin:
		matches = engine.HashJoin(e.Mem, ut, vt, out)
	case PartitionedHashJoin:
		matches = engine.PartitionedHashJoin(e.Mem, ut, vt, out, p.Fanout, engine.HashPartition)
	default:
		return 0, 0, fmt.Errorf("planner: cannot execute %s", p.Algorithm)
	}
	return matches, e.Sim.MemoryTimeNS(), nil
}
