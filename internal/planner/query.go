package planner

import (
	"fmt"
	"sort"

	"repro/internal/costir"
	"repro/internal/queryplan"
)

// Plan-level planning: where JoinCandidates and friends rank the
// physical alternatives of a single operator, the Query entry points
// rank whole query plans — join order plus an algorithm choice per
// operator — by lowering each queryplan.Plan to one compound pattern
// (Eq. 5.2 threads cache state across the operators) and compiling it
// once into the cost IR. The resulting Candidates re-score across
// hardware profiles through the same ScoreOn every single-operator
// candidate uses; Candidate.Algorithm carries the plan signature.
//
// The search layer is the two-phase DP optimizer (see
// internal/queryplan/dp.go and docs/optimizer.md): phase 1 prunes the
// plan space with memoized, context-free subplan bounds; the exact
// lowering + IR evaluation here is phase 2, so the surviving plans are
// ranked bit-compatibly with the paper's algebra. SearchOptions select
// the DP search (default) or the exhaustive left-deep oracle.

// SearchOptions tune the plan-space search (strategy, memo top-k,
// bushy on/off); the zero value is the DP search with defaults.
type SearchOptions = queryplan.SearchOptions

// SearchStrategy selects the plan-space search engine.
type SearchStrategy = queryplan.SearchStrategy

// The search strategies.
const (
	SearchDP         = queryplan.SearchDP
	SearchExhaustive = queryplan.SearchExhaustive
)

// QueryCandidates enumerates the physical plans of a logical query with
// the default search (DP, bushy, DefaultTopK), lowers each to its
// compound access pattern, and compiles it exactly once.
func (pl *Planner) QueryCandidates(q queryplan.Query) ([]Candidate, error) {
	return pl.QueryCandidatesSearch(q, SearchOptions{})
}

// QueryCandidatesSearch enumerates the physical plans of a logical
// query with the given search options (DP over connected subgraphs by
// default, or the exhaustive left-deep oracle), lowers each surviving
// plan to its compound access pattern, and compiles it exactly once.
// Quick-sort patterns are pruned at the planner's smallest cache
// capacity; the DP search prices its context-free subplan bounds on the
// planner's own hierarchy.
//
// Cost-equivalent plans collapse: two plans whose patterns share a
// canonical form and whose CPU estimates agree — e.g. the two build
// sides of a symmetric hash join — are priced identically on every
// hierarchy, so only the first enumerated signature is kept.
func (pl *Planner) QueryCandidatesSearch(q queryplan.Query, so SearchOptions) ([]Candidate, error) {
	cs, err := pl.queryCandidateTrees(q, so)
	if err != nil {
		return nil, err
	}
	return cs.cands, nil
}

// candidateTrees carries deduplicated candidates alongside the plan
// trees they were lowered from, index-aligned.
type candidateTrees struct {
	cands []Candidate
	trees []*queryplan.Plan
}

func (pl *Planner) queryCandidateTrees(q queryplan.Query, so SearchOptions) (candidateTrees, error) {
	plans, err := queryplan.Search(q, queryplan.Options{
		CPU:        pl.cpu,
		PruneBytes: pl.minCapacity(),
		Search:     so,
	}, pl.hier)
	if err != nil {
		return candidateTrees{}, err
	}
	cs := candidateTrees{
		cands: make([]Candidate, 0, len(plans)),
		trees: make([]*queryplan.Plan, 0, len(plans)),
	}
	seen := make(map[string]bool, len(plans))
	for _, p := range plans {
		pat, cpuNS, err := p.Lower(pl.cpu, pl.minCapacity())
		if err != nil {
			return candidateTrees{}, fmt.Errorf("planner: lowering plan %s: %w", p.Signature(), err)
		}
		canon, err := costir.CanonicalKey(pat)
		if err != nil {
			return candidateTrees{}, fmt.Errorf("planner: canonicalizing plan %s: %w", p.Signature(), err)
		}
		key := fmt.Sprintf("%s|%.17g", canon, cpuNS)
		if seen[key] {
			continue
		}
		seen[key] = true
		c, err := newCandidate(Algorithm(p.Signature()), pat, p.Fanout, cpuNS)
		if err != nil {
			return candidateTrees{}, err
		}
		cs.cands = append(cs.cands, c)
		cs.trees = append(cs.trees, p)
	}
	return cs, nil
}

// QueryPlans enumerates (default search) and costs the physical plans
// of q on the planner's own hierarchy, sorted cheapest first.
// Plan.Algorithm holds the plan signature (join order, join algorithms,
// grouping variant).
func (pl *Planner) QueryPlans(q queryplan.Query) ([]Plan, error) {
	return pl.QueryPlansSearch(q, SearchOptions{})
}

// QueryPlansSearch enumerates with the given search options and costs
// the surviving plans on the planner's own hierarchy, sorted cheapest
// first — the exact phase-2 re-cost of the DP optimizer.
func (pl *Planner) QueryPlansSearch(q queryplan.Query, so SearchOptions) ([]Plan, error) {
	costed, err := pl.QueryCostedTreesSearch(q, so)
	if err != nil {
		return nil, err
	}
	plans := make([]Plan, len(costed))
	for i, ct := range costed {
		plans[i] = ct.Plan
	}
	return plans, nil
}

// CostedTree pairs one costed ranking entry with the physical plan
// tree it was lowered from — the raw material a serving-tier plan
// cache turns into relabelable recipes (queryplan.NewRecipe).
type CostedTree struct {
	Plan Plan
	Tree *queryplan.Plan
}

// QueryCostedTreesSearch is QueryPlansSearch keeping the plan trees:
// the same search, lowering, cost-equivalence dedup and cheapest-first
// ranking, with each entry still attached to its tree.
func (pl *Planner) QueryCostedTreesSearch(q queryplan.Query, so SearchOptions) ([]CostedTree, error) {
	cs, err := pl.queryCandidateTrees(q, so)
	if err != nil {
		return nil, err
	}
	costed := make([]CostedTree, len(cs.cands))
	for i, c := range cs.cands {
		costed[i] = CostedTree{Plan: c.PlanOn(pl.hier), Tree: cs.trees[i]}
	}
	sort.SliceStable(costed, func(i, j int) bool { return costed[i].Plan.TotalNS() < costed[j].Plan.TotalNS() })
	return costed, nil
}

// ScoreQueryPlans lowers, compiles and costs the given physical plan
// trees on the planner's own hierarchy, returning one costed Plan per
// tree in input order — no search, no dedup, no sorting. This is the
// plan cache's re-validation primitive: cached recipes re-bound to a
// drifted query are re-scored here in microseconds each (the IR
// evaluator's price) instead of re-running the plan-space search.
func (pl *Planner) ScoreQueryPlans(trees []*queryplan.Plan) ([]Plan, error) {
	out := make([]Plan, len(trees))
	for i, t := range trees {
		pat, cpuNS, err := t.Lower(pl.cpu, pl.minCapacity())
		if err != nil {
			return nil, fmt.Errorf("planner: lowering plan %s: %w", t.Signature(), err)
		}
		prog, err := costir.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("planner: compiling plan %s: %w", t.Signature(), err)
		}
		out[i] = Plan{
			Algorithm: Algorithm(t.Signature()),
			Pattern:   pat,
			Compiled:  prog,
			Fanout:    t.Fanout,
			MemNS:     prog.MemoryTimeNS(pl.hier),
			CPUNS:     cpuNS,
		}
	}
	return out, nil
}

// BestQueryPlan returns the cheapest plan for q on the planner's
// hierarchy under the default search.
func (pl *Planner) BestQueryPlan(q queryplan.Query) (Plan, error) {
	return pl.BestQueryPlanSearch(q, SearchOptions{})
}

// BestQueryPlanSearch returns the cheapest plan for q on the planner's
// hierarchy under the given search options.
func (pl *Planner) BestQueryPlanSearch(q queryplan.Query, so SearchOptions) (Plan, error) {
	plans, err := pl.QueryPlansSearch(q, so)
	if err != nil {
		return Plan{}, err
	}
	return plans[0], nil
}
