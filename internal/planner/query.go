package planner

import (
	"fmt"

	"repro/internal/costir"
	"repro/internal/queryplan"
)

// Plan-level planning: where JoinCandidates and friends rank the
// physical alternatives of a single operator, the Query entry points
// rank whole query plans — join order plus an algorithm choice per
// operator — by lowering each queryplan.Plan to one compound pattern
// (Eq. 5.2 threads cache state across the operators) and compiling it
// once into the cost IR. The resulting Candidates re-score across
// hardware profiles through the same ScoreOn every single-operator
// candidate uses; Candidate.Algorithm carries the plan signature.

// QueryCandidates enumerates the physical plans of a logical query
// (left-deep join orders over the query's join graph, per-join and
// per-grouping algorithm choices), lowers each to its compound access
// pattern, and compiles it exactly once. Quick-sort patterns are pruned
// at the planner's smallest cache capacity.
//
// Cost-equivalent plans collapse: two plans whose patterns share a
// canonical form and whose CPU estimates agree — e.g. the two build
// sides of a symmetric hash join — are priced identically on every
// hierarchy, so only the first enumerated signature is kept.
func (pl *Planner) QueryCandidates(q queryplan.Query) ([]Candidate, error) {
	plans, err := queryplan.Enumerate(q, queryplan.Options{
		CPU:        pl.cpu,
		PruneBytes: pl.minCapacity(),
	})
	if err != nil {
		return nil, err
	}
	cands := make([]Candidate, 0, len(plans))
	seen := make(map[string]bool, len(plans))
	for _, p := range plans {
		pat, cpuNS, err := p.Lower(pl.cpu, pl.minCapacity())
		if err != nil {
			return nil, fmt.Errorf("planner: lowering plan %s: %w", p.Signature(), err)
		}
		canon, err := costir.CanonicalKey(pat)
		if err != nil {
			return nil, fmt.Errorf("planner: canonicalizing plan %s: %w", p.Signature(), err)
		}
		key := fmt.Sprintf("%s|%.17g", canon, cpuNS)
		if seen[key] {
			continue
		}
		seen[key] = true
		c, err := newCandidate(Algorithm(p.Signature()), pat, p.Fanout, cpuNS)
		if err != nil {
			return nil, err
		}
		cands = append(cands, c)
	}
	return cands, nil
}

// QueryPlans enumerates and costs the physical plans of q on the
// planner's own hierarchy, sorted cheapest first. Plan.Algorithm holds
// the plan signature (join order, join algorithms, grouping variant).
func (pl *Planner) QueryPlans(q queryplan.Query) ([]Plan, error) {
	cands, err := pl.QueryCandidates(q)
	if err != nil {
		return nil, err
	}
	return ScoreOn(pl.hier, cands), nil
}

// BestQueryPlan returns the cheapest plan for q on the planner's
// hierarchy.
func (pl *Planner) BestQueryPlan(q queryplan.Query) (Plan, error) {
	plans, err := pl.QueryPlans(q)
	if err != nil {
		return Plan{}, err
	}
	return plans[0], nil
}
