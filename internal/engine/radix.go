package engine

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/region"
	"repro/internal/vmem"
)

// Multi-pass radix partitioning (Manegold/Boncz/Kersten 2000, the
// algorithm behind the paper's Figure 7d/7e analysis): when the desired
// fan-out m exceeds what the cache and TLB tolerate (the Figure 7d
// knees), partition in P passes of fan-out m^(1/P) each. Every pass
// performs the benign nest pattern with a small cursor count; the data
// is copied P times instead of once — the trade-off the cost model
// quantifies.

// MultiPassPartition partitions in into m = fanout^passes clusters using
// `passes` passes of the given per-pass fanout. Returns the final
// clustering over a freshly allocated output area.
func MultiPassPartition(mem *vmem.Memory, in *Table, name string, fanout int64, passes int, f PartitionFunc) *Partitions {
	if passes < 1 {
		panic("engine: MultiPassPartition needs at least one pass")
	}
	if fanout < 2 {
		panic(fmt.Sprintf("engine: per-pass fanout %d too small", fanout))
	}
	total := int64(1)
	for i := 0; i < passes; i++ {
		total *= fanout
	}

	// Pass p refines every cluster of the previous pass by the digit
	// f(key, total) / (total/fanout^(p+1)) — i.e. most significant
	// digit first, so the final layout is ordered by full cluster id.
	current := []*Table{in}
	var out *Table
	for p := 0; p < passes; p++ {
		div := total
		for i := 0; i <= p; i++ {
			div /= fanout
		}
		// digit(key) = (cluster id / div) mod fanout
		digit := func(key uint64, _ int64) int64 {
			return (f(key, total) / div) % fanout
		}
		var next []*Table
		area := NewTable(mem, fmt.Sprintf("%s_p%d", name, p), in.N(), in.W(), in.W())
		var off int64
		for _, src := range current {
			if src.N() == 0 {
				// Preserve empty clusters so positions stay aligned.
				for j := int64(0); j < fanout; j++ {
					next = append(next, emptyView(mem, area, off, in.W(), fmt.Sprintf("%s_p%d_e", name, p)))
				}
				continue
			}
			parts := partitionInto(mem, src, area, off, digit, fanout)
			next = append(next, parts...)
			off += src.N()
		}
		current = next
		out = area
	}
	return &Partitions{Out: out, Tables: current, M: total}
}

func emptyView(mem *vmem.Memory, area *Table, off, w int64, name string) *Table {
	r := region.New(name, 0, w)
	r.Parent = area.Reg
	r.Base = int64(area.Base) + off*w
	return &Table{Mem: mem, Reg: r, Base: area.Base + vmem.Addr(off*w)}
}

// partitionInto splits src into fanout clusters placed contiguously in
// area starting at tuple offset off. The histogram pass is unobserved
// (as in Partition), the copy pass observed.
func partitionInto(mem *vmem.Memory, src, area *Table, off int64, digit PartitionFunc, fanout int64) []*Table {
	n, w := src.N(), src.W()
	counts := make([]int64, fanout)
	for i := int64(0); i < n; i++ {
		counts[digit(src.RawKey(i), fanout)]++
	}
	tables := make([]*Table, fanout)
	cursors := make([]int64, fanout)
	pos := off
	for j := int64(0); j < fanout; j++ {
		r := region.New(fmt.Sprintf("%s_%d", area.Reg.Name, j), counts[j], w)
		r.Parent = area.Reg
		r.Base = int64(area.Base) + pos*w
		tables[j] = &Table{Mem: mem, Reg: r, Base: area.Base + vmem.Addr(pos*w)}
		pos += counts[j]
	}
	for i := int64(0); i < n; i++ {
		j := digit(src.Key(i), fanout)
		tables[j].CopyTuple(cursors[j], src, i)
		cursors[j]++
	}
	return tables
}

// MultiPassPartitionPattern describes the access pattern of a P-pass
// radix partition: per pass, a sequential read of the previous area
// concurrent with a `fanout`-cursor nest over the next area.
func MultiPassPartitionPattern(in *region.Region, name string, fanout int64, passes int) pattern.Pattern {
	seq := pattern.Seq{}
	src := in
	for p := 0; p < passes; p++ {
		dst := region.New(fmt.Sprintf("%s_p%d", name, p), in.N, in.W)
		seq = append(seq, pattern.Conc{
			pattern.STrav{R: src},
			pattern.Nest{R: dst, M: fanout, Inner: pattern.InnerSTrav, Order: pattern.OrderRandom},
		})
		src = dst
	}
	if len(seq) == 1 {
		return seq[0]
	}
	return seq
}

// BestPartitionPasses uses a tiny cost heuristic to choose the number of
// radix passes for a target fan-out m on a hierarchy with the given
// smallest relevant cursor budget (usually the TLB entry count): the
// smallest pass count whose per-pass fanout stays within budget.
func BestPartitionPasses(m, cursorBudget int64) int {
	if m <= cursorBudget {
		return 1
	}
	passes := 1
	perPass := m
	for perPass > cursorBudget {
		passes++
		perPass = iroot(m, passes)
	}
	return passes
}

// iroot returns ceil(m^(1/k)) computed by integer search.
func iroot(m int64, k int) int64 {
	lo, hi := int64(2), m
	for lo < hi {
		mid := (lo + hi) / 2
		if ipow(mid, k) >= m {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func ipow(b int64, k int) int64 {
	r := int64(1)
	for i := 0; i < k; i++ {
		if r > (1<<62)/b {
			return 1 << 62
		}
		r *= b
	}
	return r
}
