package engine

// Unary streaming operators: table scan, selection, projection. They all
// traverse their input sequentially; selection and projection also write
// an output sequentially (the paper's Table 2 patterns).

// ScanSum performs a full table scan, reading u bytes of every tuple
// (0 = whole tuple) and returning the sum of all keys — an aggregate that
// forces the traversal without any output region.
func ScanSum(t *Table, u int64) uint64 {
	var sum uint64
	n := t.N()
	if u > 0 && u < KeyWidth {
		// The caller wants fewer bytes than the key; touch that many but
		// do not decode a key.
		for i := int64(0); i < n; i++ {
			t.TouchTuple(i, u)
		}
		return 0
	}
	for i := int64(0); i < n; i++ {
		sum += t.Key(i)
		if u <= 0 || u > KeyWidth {
			rest := t.W() - KeyWidth
			if u > 0 {
				rest = u - KeyWidth
			}
			if rest > 0 {
				t.Mem.Touch(t.Addr(i)+KeyWidth, rest)
			}
		}
	}
	return sum
}

// Select copies every tuple of in whose key satisfies pred into out,
// returning the number of qualifying tuples. Out must have capacity for
// all of them and at least the input width.
func Select(in, out *Table, pred func(uint64) bool) int64 {
	var o int64
	n := in.N()
	for i := int64(0); i < n; i++ {
		if pred(in.Key(i)) {
			out.CopyTuple(o, in, i)
			o++
		}
	}
	return o
}

// Project copies u bytes of every input tuple into the (narrower) output
// table; out.W() must equal u and u ≥ KeyWidth so keys survive.
func Project(in, out *Table, u int64) {
	if out.W() != u {
		panic("engine: Project output width must equal u")
	}
	n := in.N()
	for i := int64(0); i < n; i++ {
		// CopyTuple touches exactly u = out.W() bytes of the input tuple.
		out.CopyTuple(i, in, i)
	}
}
