package engine

import (
	"sort"
	"testing"

	"repro/internal/vmem"
	"repro/internal/workload"
)

func newMem() *vmem.Memory { return vmem.New(1 << 24) }

func TestTableKeyRoundTrip(t *testing.T) {
	mem := newMem()
	tab := NewTable(mem, "U", 10, 16, 32)
	tab.SetKey(3, 12345)
	if got := tab.Key(3); got != 12345 {
		t.Errorf("Key(3) = %d", got)
	}
	if got := tab.RawKey(3); got != 12345 {
		t.Errorf("RawKey(3) = %d", got)
	}
	tab.SetRawKey(4, 999)
	if got := tab.Key(4); got != 999 {
		t.Errorf("Key(4) = %d after SetRawKey", got)
	}
}

func TestTableAddressing(t *testing.T) {
	mem := newMem()
	tab := NewTable(mem, "U", 10, 24, 32)
	if tab.Addr(0)%32 != 0 {
		t.Error("table base not aligned")
	}
	if tab.Addr(2)-tab.Addr(1) != 24 {
		t.Error("tuple stride != width")
	}
	if tab.N() != 10 || tab.W() != 24 {
		t.Error("dimensions wrong")
	}
}

func TestNewTableAtOffset(t *testing.T) {
	mem := newMem()
	tab := NewTableAt(mem, "U", 4, 8, 64, 5)
	if int64(tab.Base)%64 != 5 {
		t.Errorf("base %d not at offset 5 mod 64", tab.Base)
	}
}

func TestNarrowTuplePanics(t *testing.T) {
	mem := newMem()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for width < key width")
		}
	}()
	NewTable(mem, "U", 1, 4, 1)
}

func TestSwap(t *testing.T) {
	mem := newMem()
	tab := NewTable(mem, "U", 4, 16, 32)
	tab.SetRawKey(0, 111)
	tab.SetRawKey(1, 222)
	copy(mem.Raw(tab.Addr(0)+8, 8), []byte("payload0"))
	copy(mem.Raw(tab.Addr(1)+8, 8), []byte("payload1"))
	tab.Swap(0, 1)
	if tab.RawKey(0) != 222 || tab.RawKey(1) != 111 {
		t.Error("keys not swapped")
	}
	if string(mem.Raw(tab.Addr(0)+8, 8)) != "payload1" {
		t.Error("payload not swapped")
	}
	tab.Swap(2, 2) // no-op must not panic
}

func TestCopyTuple(t *testing.T) {
	mem := newMem()
	src := NewTable(mem, "S", 2, 16, 32)
	dst := NewTable(mem, "D", 2, 16, 32)
	src.SetRawKey(1, 77)
	copy(mem.Raw(src.Addr(1)+8, 8), []byte("abcdefgh"))
	dst.CopyTuple(0, src, 1)
	if dst.RawKey(0) != 77 {
		t.Error("key not copied")
	}
	if string(mem.Raw(dst.Addr(0)+8, 8)) != "abcdefgh" {
		t.Error("payload not copied")
	}
}

func TestCopyTupleNarrowing(t *testing.T) {
	mem := newMem()
	src := NewTable(mem, "S", 1, 32, 32)
	dst := NewTable(mem, "D", 1, 8, 32)
	src.SetRawKey(0, 5)
	dst.CopyTuple(0, src, 0)
	if dst.RawKey(0) != 5 {
		t.Error("narrowing copy lost key")
	}
}

func TestScanSum(t *testing.T) {
	mem := newMem()
	tab := NewTable(mem, "U", 100, 16, 32)
	var want uint64
	for i := int64(0); i < 100; i++ {
		tab.SetRawKey(i, uint64(i))
		want += uint64(i)
	}
	if got := ScanSum(tab, 0); got != want {
		t.Errorf("ScanSum = %d, want %d", got, want)
	}
	if got := ScanSum(tab, 8); got != want {
		t.Errorf("ScanSum(u=8) = %d, want %d", got, want)
	}
	if got := ScanSum(tab, 4); got != 0 {
		t.Errorf("ScanSum(u=4) = %d, want 0 (sub-key touch)", got)
	}
}

func TestSelect(t *testing.T) {
	mem := newMem()
	in := NewTable(mem, "U", 100, 16, 32)
	out := NewTable(mem, "W", 100, 16, 32)
	for i := int64(0); i < 100; i++ {
		in.SetRawKey(i, uint64(i))
	}
	n := Select(in, out, func(k uint64) bool { return k%2 == 0 })
	if n != 50 {
		t.Fatalf("selected %d, want 50", n)
	}
	for i := int64(0); i < n; i++ {
		if out.RawKey(i)%2 != 0 {
			t.Errorf("odd key %d selected", out.RawKey(i))
		}
	}
}

func TestProject(t *testing.T) {
	mem := newMem()
	in := NewTable(mem, "U", 10, 32, 32)
	out := NewTable(mem, "W", 10, 8, 32)
	for i := int64(0); i < 10; i++ {
		in.SetRawKey(i, uint64(i*i))
	}
	Project(in, out, 8)
	for i := int64(0); i < 10; i++ {
		if out.RawKey(i) != uint64(i*i) {
			t.Errorf("projected key %d wrong", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for width mismatch")
		}
	}()
	Project(in, out, 16)
}

func TestQuickSortSorts(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 3, 10, 100, 1000, 4096} {
		mem := newMem()
		tab := NewTable(mem, "U", n, 16, 32)
		rng := workload.NewRNG(uint64(n) + 7)
		workload.FillUniform(tab, rng)
		want := tab.Keys()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		QuickSort(tab)
		if !tab.IsSortedRaw() {
			t.Fatalf("n=%d: not sorted", n)
		}
		got := tab.Keys()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: element %d = %d, want %d (multiset broken)", n, i, got[i], want[i])
			}
		}
	}
}

func TestQuickSortDuplicates(t *testing.T) {
	mem := newMem()
	tab := NewTable(mem, "U", 1000, 8, 32)
	workload.FillMod(tab, 7)
	QuickSort(tab)
	if !tab.IsSortedRaw() {
		t.Fatal("duplicate-heavy table not sorted")
	}
}

func TestQuickSortSortedInput(t *testing.T) {
	mem := newMem()
	tab := NewTable(mem, "U", 2048, 8, 32)
	workload.FillSorted(tab)
	QuickSort(tab) // median-of-three avoids quadratic blowup; must finish
	if !tab.IsSortedRaw() {
		t.Fatal("sorted input broken")
	}
}

func TestQuickSortMovesPayload(t *testing.T) {
	mem := newMem()
	tab := NewTable(mem, "U", 4, 16, 32)
	keys := []uint64{30, 10, 40, 20}
	for i, k := range keys {
		tab.SetRawKey(int64(i), k)
		// Payload records the original key so we can check it moved along.
		copy(mem.Raw(tab.Addr(int64(i))+8, 8), []byte{byte(k), 0, 0, 0, 0, 0, 0, 0})
	}
	QuickSort(tab)
	for i := int64(0); i < 4; i++ {
		k := tab.RawKey(i)
		if mem.Raw(tab.Addr(i)+8, 1)[0] != byte(k) {
			t.Errorf("payload did not travel with key %d", k)
		}
	}
}

func TestHashTableInsertLookup(t *testing.T) {
	mem := newMem()
	h := NewHashTable(mem, "H", 100)
	if h.Buckets() < 200 {
		t.Errorf("buckets = %d, want ≥ 2n", h.Buckets())
	}
	for i := int64(0); i < 100; i++ {
		h.Insert(uint64(i*3), i)
	}
	for i := int64(0); i < 100; i++ {
		if got := h.Lookup(uint64(i * 3)); got != i {
			t.Errorf("Lookup(%d) = %d, want %d", i*3, got, i)
		}
	}
	if h.Lookup(1) != -1 {
		t.Error("missing key found")
	}
}

func TestHashBucketsPowerOfTwo(t *testing.T) {
	for _, n := range []int64{1, 3, 100, 1000} {
		b := HashBuckets(n)
		if b < 2*n || b&(b-1) != 0 {
			t.Errorf("HashBuckets(%d) = %d", n, b)
		}
	}
}

func TestMergeJoinOneToOne(t *testing.T) {
	mem := newMem()
	u := NewTable(mem, "U", 100, 16, 32)
	v := NewTable(mem, "V", 100, 16, 32)
	w := NewTable(mem, "W", 100, 16, 32)
	workload.FillSorted(u)
	workload.FillSorted(v)
	n := MergeJoin(u, v, w)
	if n != 100 {
		t.Fatalf("matches = %d, want 100", n)
	}
	for i := int64(0); i < n; i++ {
		if w.RawKey(i) != uint64(i) {
			t.Errorf("output key %d = %d", i, w.RawKey(i))
		}
	}
}

func TestMergeJoinPartialOverlap(t *testing.T) {
	mem := newMem()
	u := NewTable(mem, "U", 50, 8, 32)
	v := NewTable(mem, "V", 50, 8, 32)
	w := NewTable(mem, "W", 50, 8, 32)
	workload.FillSortedStep(u, 2) // 0,2,4,...,98
	workload.FillSortedStep(v, 3) // 0,3,6,...,147
	// Common keys ≤ min(98,147) divisible by 6: 0,6,...,96 → 17 keys.
	if n := MergeJoin(u, v, w); n != 17 {
		t.Errorf("matches = %d, want 17", n)
	}
}

func TestMergeJoinDuplicates(t *testing.T) {
	mem := newMem()
	u := NewTable(mem, "U", 4, 8, 32)
	v := NewTable(mem, "V", 3, 8, 32)
	w := NewTable(mem, "W", 12, 8, 32)
	for i, k := range []uint64{1, 1, 2, 3} {
		u.SetRawKey(int64(i), k)
	}
	for i, k := range []uint64{1, 1, 3} {
		v.SetRawKey(int64(i), k)
	}
	// key 1: 2x2=4 pairs; key 3: 1 pair.
	if n := MergeJoin(u, v, w); n != 5 {
		t.Errorf("matches = %d, want 5", n)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	mem := newMem()
	u := NewTable(mem, "U", 20, 8, 32)
	v := NewTable(mem, "V", 10, 8, 32)
	w := NewTable(mem, "W", 20, 8, 32)
	workload.FillSorted(u) // 0..19
	workload.FillSorted(v) // 0..9
	if n := NestedLoopJoin(u, v, w); n != 10 {
		t.Errorf("matches = %d, want 10", n)
	}
}

func TestHashJoinMatchesMergeJoin(t *testing.T) {
	mem := newMem()
	u := NewTable(mem, "U", 500, 16, 32)
	v := NewTable(mem, "V", 500, 16, 32)
	w1 := NewTable(mem, "W1", 500, 16, 32)
	w2 := NewTable(mem, "W2", 500, 16, 32)
	rng := workload.NewRNG(5)
	workload.FillPermutation(u, rng)
	workload.FillPermutation(v, rng)

	nh := HashJoin(mem, u, v, w1)
	if nh != 500 {
		t.Fatalf("hash join matches = %d, want 500 (1:1 permutations)", nh)
	}
	// Cross-check result keys as a set.
	us := NewTable(mem, "Us", 500, 16, 32)
	vs := NewTable(mem, "Vs", 500, 16, 32)
	for i := int64(0); i < 500; i++ {
		us.SetRawKey(i, u.RawKey(i))
		vs.SetRawKey(i, v.RawKey(i))
	}
	QuickSort(us)
	QuickSort(vs)
	nm := MergeJoin(us, vs, w2)
	if nm != nh {
		t.Errorf("merge join found %d, hash join %d", nm, nh)
	}
}

func TestHashJoinSelective(t *testing.T) {
	mem := newMem()
	u := NewTable(mem, "U", 100, 8, 32)
	v := NewTable(mem, "V", 50, 8, 32)
	w := NewTable(mem, "W", 100, 8, 32)
	workload.FillSorted(u)        // 0..99
	workload.FillSortedStep(v, 4) // 0,4,...,196
	if n := HashJoin(mem, u, v, w); n != 25 {
		t.Errorf("matches = %d, want 25", n)
	}
}

func TestPartitionPreservesTuplesAndClusters(t *testing.T) {
	mem := newMem()
	in := NewTable(mem, "U", 1000, 16, 32)
	rng := workload.NewRNG(11)
	workload.FillUniform(in, rng)
	parts := Partition(mem, in, "X", 8, HashPartition)
	var total int64
	for j, pt := range parts.Tables {
		total += pt.N()
		for i := int64(0); i < pt.N(); i++ {
			if HashPartition(pt.RawKey(i), 8) != int64(j) {
				t.Fatalf("tuple in wrong cluster %d", j)
			}
		}
	}
	if total != 1000 {
		t.Errorf("clusters hold %d tuples, want 1000", total)
	}
}

func TestRadixPartition(t *testing.T) {
	mem := newMem()
	in := NewTable(mem, "U", 64, 8, 32)
	workload.FillSorted(in)
	parts := Partition(mem, in, "X", 4, RadixPartition)
	for j, pt := range parts.Tables {
		if pt.N() != 16 {
			t.Errorf("cluster %d has %d tuples, want 16", j, pt.N())
		}
	}
}

func TestPartitionedHashJoin(t *testing.T) {
	mem := newMem()
	u := NewTable(mem, "U", 600, 16, 32)
	v := NewTable(mem, "V", 600, 16, 32)
	w := NewTable(mem, "W", 600, 16, 32)
	rng := workload.NewRNG(21)
	workload.FillPermutation(u, rng)
	workload.FillPermutation(v, rng)
	if n := PartitionedHashJoin(mem, u, v, w, 8, HashPartition); n != 600 {
		t.Errorf("matches = %d, want 600", n)
	}
}

func TestPartitionedHashJoinMatchesPlain(t *testing.T) {
	mem := newMem()
	u := NewTable(mem, "U", 300, 8, 32)
	v := NewTable(mem, "V", 200, 8, 32)
	w1 := NewTable(mem, "W1", 300, 8, 32)
	w2 := NewTable(mem, "W2", 300, 8, 32)
	rng := workload.NewRNG(31)
	workload.FillUniform(u, rng)
	// Copy half of U's keys into V so there are guaranteed matches.
	for i := int64(0); i < 200; i++ {
		if i < 150 {
			v.SetRawKey(i, u.RawKey(i))
		} else {
			v.SetRawKey(i, rng.Uint64())
		}
	}
	plain := HashJoin(mem, u, v, w1)
	part := PartitionedHashJoin(mem, u, v, w2, 4, HashPartition)
	if plain != part {
		t.Errorf("plain %d vs partitioned %d matches", plain, part)
	}
}

func TestHashAggregate(t *testing.T) {
	mem := newMem()
	in := NewTable(mem, "U", 1000, 8, 32)
	workload.FillMod(in, 10) // keys 0..9 round robin
	agg := HashAggregate(mem, in, 10)
	if g := agg.Groups(); g != 10 {
		t.Errorf("groups = %d, want 10", g)
	}
}

func TestHashDedup(t *testing.T) {
	mem := newMem()
	in := NewTable(mem, "U", 1000, 8, 32)
	out := NewTable(mem, "W", 1000, 8, 32)
	workload.FillMod(in, 37)
	if n := HashDedup(mem, in, out); n != 37 {
		t.Errorf("distinct = %d, want 37", n)
	}
}

func TestSortDedup(t *testing.T) {
	mem := newMem()
	in := NewTable(mem, "U", 1000, 8, 32)
	out := NewTable(mem, "W", 1000, 8, 32)
	workload.FillMod(in, 37)
	n := SortDedup(in, out)
	if n != 37 {
		t.Errorf("distinct = %d, want 37", n)
	}
	for i := int64(1); i < n; i++ {
		if out.RawKey(i-1) >= out.RawKey(i) {
			t.Fatalf("sort-dedup output not strictly increasing at %d", i)
		}
	}
}
