package engine

import (
	"testing"

	"repro/internal/workload"
)

func fillKeys(t *Table, keys []uint64) {
	for i, k := range keys {
		t.SetRawKey(int64(i), k)
	}
}

func resultKeys(t *Table, n int64) []uint64 {
	out := make([]uint64, n)
	for i := int64(0); i < n; i++ {
		out[i] = t.RawKey(i)
	}
	return out
}

func checkKeys(t *testing.T, got []uint64, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %v, want %v", i, got, want)
		}
	}
}

func setOpTables(t *testing.T, uk, vk []uint64) (*Table, *Table, *Table) {
	t.Helper()
	mem := newMem()
	u := NewTable(mem, "U", int64(len(uk)), 8, 32)
	v := NewTable(mem, "V", int64(len(vk)), 8, 32)
	out := NewTable(mem, "W", int64(len(uk)+len(vk)), 8, 32)
	fillKeys(u, uk)
	fillKeys(v, vk)
	return u, v, out
}

func TestMergeUnion(t *testing.T) {
	u, v, out := setOpTables(t, []uint64{1, 3, 5, 7}, []uint64{2, 3, 6, 7, 9})
	n := MergeUnion(u, v, out)
	checkKeys(t, resultKeys(out, n), []uint64{1, 2, 3, 5, 6, 7, 9})
}

func TestMergeUnionWithDuplicates(t *testing.T) {
	u, v, out := setOpTables(t, []uint64{1, 1, 2}, []uint64{2, 2, 3})
	n := MergeUnion(u, v, out)
	checkKeys(t, resultKeys(out, n), []uint64{1, 2, 3})
}

func TestMergeUnionDisjoint(t *testing.T) {
	u, v, out := setOpTables(t, []uint64{1, 2}, []uint64{10, 20})
	n := MergeUnion(u, v, out)
	checkKeys(t, resultKeys(out, n), []uint64{1, 2, 10, 20})
}

func TestMergeUnionEmptySides(t *testing.T) {
	u, v, out := setOpTables(t, nil, []uint64{4, 5})
	n := MergeUnion(u, v, out)
	checkKeys(t, resultKeys(out, n), []uint64{4, 5})
	u2, v2, out2 := setOpTables(t, []uint64{4, 5}, nil)
	n2 := MergeUnion(u2, v2, out2)
	checkKeys(t, resultKeys(out2, n2), []uint64{4, 5})
}

func TestMergeIntersect(t *testing.T) {
	u, v, out := setOpTables(t, []uint64{1, 3, 5, 7, 9}, []uint64{3, 4, 7, 10})
	n := MergeIntersect(u, v, out)
	checkKeys(t, resultKeys(out, n), []uint64{3, 7})
}

func TestMergeIntersectDuplicates(t *testing.T) {
	u, v, out := setOpTables(t, []uint64{2, 2, 3, 3}, []uint64{2, 3, 3})
	n := MergeIntersect(u, v, out)
	checkKeys(t, resultKeys(out, n), []uint64{2, 3})
}

func TestMergeIntersectDisjoint(t *testing.T) {
	u, v, out := setOpTables(t, []uint64{1, 2}, []uint64{3, 4})
	if n := MergeIntersect(u, v, out); n != 0 {
		t.Errorf("intersection of disjoint sets = %d", n)
	}
}

func TestMergeDifference(t *testing.T) {
	u, v, out := setOpTables(t, []uint64{1, 3, 5, 7}, []uint64{3, 7, 9})
	n := MergeDifference(u, v, out)
	checkKeys(t, resultKeys(out, n), []uint64{1, 5})
}

func TestMergeDifferenceDuplicates(t *testing.T) {
	u, v, out := setOpTables(t, []uint64{1, 1, 2, 3, 3}, []uint64{2})
	n := MergeDifference(u, v, out)
	checkKeys(t, resultKeys(out, n), []uint64{1, 3})
}

func TestMergeDifferenceEmptyV(t *testing.T) {
	u, v, out := setOpTables(t, []uint64{5, 6}, nil)
	n := MergeDifference(u, v, out)
	checkKeys(t, resultKeys(out, n), []uint64{5, 6})
}

// TestSetOpAlgebra cross-checks |U∪V| = |U'|+|V'|−|U'∩V'| on dedup'ed
// random sets.
func TestSetOpAlgebra(t *testing.T) {
	mem := newMem()
	rng := workload.NewRNG(9)
	mkSet := func(name string, n int64, seedStep uint64) *Table {
		raw := NewTable(mem, name+"r", n, 8, 32)
		for i := int64(0); i < n; i++ {
			raw.SetRawKey(i, rng.Uint64()%200) // small domain: overlaps guaranteed
		}
		QuickSort(raw)
		ded := NewTable(mem, name, n, 8, 32)
		k := int64(0)
		var prev uint64
		for i := int64(0); i < n; i++ {
			v := raw.RawKey(i)
			if i == 0 || v != prev {
				ded.SetRawKey(k, v)
				k++
				prev = v
			}
		}
		ded.Reg.N = k
		return ded
	}
	u := mkSet("U", 300, 1)
	v := mkSet("V", 300, 2)
	union := NewTable(mem, "Un", 600, 8, 32)
	inter := NewTable(mem, "In", 600, 8, 32)
	nu, nv := u.N(), v.N()
	nUnion := MergeUnion(u, v, union)
	nInter := MergeIntersect(u, v, inter)
	if nUnion != nu+nv-nInter {
		t.Errorf("|U∪V|=%d but |U|+|V|−|U∩V| = %d+%d−%d", nUnion, nu, nv, nInter)
	}
	diff := NewTable(mem, "Df", 600, 8, 32)
	nDiff := MergeDifference(u, v, diff)
	if nDiff != nu-nInter {
		t.Errorf("|U−V|=%d, want %d", nDiff, nu-nInter)
	}
}
