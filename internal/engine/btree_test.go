package engine

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/cost"
	"repro/internal/hardware"
	"repro/internal/vmem"
	"repro/internal/workload"
)

func buildTree(t *testing.T, n, fanout int64) (*vmem.Memory, *Table, *BTree) {
	t.Helper()
	mem := newMem()
	tab := NewTable(mem, "V", n, 8, 32)
	workload.FillSortedStep(tab, 3) // keys 0,3,6,...
	tree := BulkLoadBTree(mem, "I", tab, fanout)
	return mem, tab, tree
}

func TestBTreeLookupFindsEveryKey(t *testing.T) {
	for _, tc := range []struct{ n, fanout int64 }{
		{1, 4}, {4, 4}, {5, 4}, {100, 4}, {1000, 8}, {4096, 16},
	} {
		_, tab, tree := buildTree(t, tc.n, tc.fanout)
		for i := int64(0); i < tc.n; i += 7 {
			key := tab.RawKey(i)
			if got := tree.Lookup(key); got != i {
				t.Fatalf("n=%d f=%d: Lookup(%d) = %d, want %d", tc.n, tc.fanout, key, got, i)
			}
		}
	}
}

func TestBTreeLookupMisses(t *testing.T) {
	_, _, tree := buildTree(t, 1000, 8)
	// Keys are multiples of 3: 1 and 2 mod 3 are absent; also beyond max.
	for _, key := range []uint64{1, 2, 4, 2999, 3001, 1 << 40} {
		if got := tree.Lookup(key); got != -1 {
			t.Errorf("Lookup(%d) = %d, want -1", key, got)
		}
	}
}

func TestBTreeHeightAndLevelGeometry(t *testing.T) {
	_, _, tree := buildTree(t, 4096, 16)
	// 4096 leaves entries /16 = 256 leaf nodes, /16 = 16, /16 = 1: 3 levels.
	if tree.Height() != 3 {
		t.Fatalf("height = %d, want 3", tree.Height())
	}
	if tree.Levels[0].N != 1 {
		t.Errorf("root level has %d nodes", tree.Levels[0].N)
	}
	if tree.Levels[2].N != 256 {
		t.Errorf("leaf level has %d nodes, want 256", tree.Levels[2].N)
	}
	if w := tree.NodeWidth(); w != 256 {
		t.Errorf("node width = %d, want 256", w)
	}
}

func TestBTreeSingleNode(t *testing.T) {
	_, tab, tree := buildTree(t, 3, 8)
	if tree.Height() != 1 {
		t.Fatalf("height = %d, want 1", tree.Height())
	}
	if got := tree.Lookup(tab.RawKey(2)); got != 2 {
		t.Errorf("Lookup = %d", got)
	}
}

func TestBTreePanics(t *testing.T) {
	mem := newMem()
	tab := NewTable(mem, "V", 4, 8, 32)
	assertPanic(t, "fanout 1", func() { BulkLoadBTree(mem, "I", tab, 1) })
	empty := NewTable(mem, "E", 0, 8, 32)
	assertPanic(t, "empty", func() { BulkLoadBTree(mem, "I", empty, 4) })
}

func TestIndexNestedLoopJoin(t *testing.T) {
	mem := newMem()
	v := NewTable(mem, "V", 1000, 8, 32)
	workload.FillSortedStep(v, 2) // 0,2,...,1998
	tree := BulkLoadBTree(mem, "I", v, 8)
	u := NewTable(mem, "U", 500, 8, 32)
	workload.FillSortedStep(u, 3) // 0,3,...,1497
	out := NewTable(mem, "W", 500, 8, 32)
	// Matches: multiples of 6 up to 1497 → 0,6,...,1494 → 250.
	if got := IndexNestedLoopJoin(u, tree, out); got != 250 {
		t.Errorf("matches = %d, want 250", got)
	}
}

// TestBTreeLookupModelAgreement runs a batch of random lookups under the
// simulator and compares the per-level misses with the model's
// prediction for the tree's declared pattern — the "trees are regions"
// claim of the paper's Section 3.1.
func TestBTreeLookupModelAgreement(t *testing.T) {
	h := hardware.SmallTest()
	mem := vmem.New(1 << 24)
	sim := cachesim.New(h)
	mem.SetObserver(sim)
	sim.Freeze()

	v := NewTable(mem, "V", 8192, 8, 32) // 64 kB sorted base table
	workload.FillSorted(v)
	tree := BulkLoadBTree(mem, "I", v, 16)

	const k = 4096
	rng := workload.NewRNG(13)
	keys := make([]uint64, k)
	for i := range keys {
		keys[i] = uint64(rng.Intn(8192))
	}
	sim.Thaw()
	for _, key := range keys {
		if tree.Lookup(key) < 0 {
			t.Fatal("existing key not found")
		}
	}
	sim.Freeze()

	model := cost.MustNew(h)
	res, err := model.Evaluate(tree.LookupBatchPattern(k))
	if err != nil {
		t.Fatal(err)
	}
	for i, lvl := range h.Levels {
		pred := res.PerLevel[i].Misses.Total()
		meas := float64(sim.Stats(i).Misses())
		// Eq. 5.3 divides the cache among concurrent patterns by
		// footprint, which short-changes the small-but-frequently-hit
		// middle tree level and overpredicts its misses (conservative —
		// safe for an optimizer). Allow a wider band than for flat
		// operators, but insist the prediction stays within ~2.5x.
		if !withinTol(pred, meas, 0.65, 32) {
			t.Errorf("@%s: predicted %.0f, measured %.0f", lvl.Name, pred, meas)
		}
	}
	// Qualitative: the leaf level dominates; upper levels are cached.
	leaf := tree.Levels[len(tree.Levels)-1]
	if leaf.Size() <= h.Levels[1].Capacity {
		t.Fatalf("test setup: leaf level should exceed L2 (%d bytes)", leaf.Size())
	}
}

func TestBTreeRangeScan(t *testing.T) {
	_, _, tree := buildTree(t, 1000, 8) // keys 0,3,...,2997
	var keys []uint64
	n := tree.RangeScan(300, 330, func(k uint64, row int64) {
		keys = append(keys, k)
		if int64(k) != row*3 {
			t.Errorf("row %d for key %d", row, k)
		}
	})
	want := []uint64{300, 303, 306, 309, 312, 315, 318, 321, 324, 327, 330}
	if n != int64(len(want)) {
		t.Fatalf("visited %d entries, want %d", n, len(want))
	}
	for i, k := range keys {
		if k != want[i] {
			t.Fatalf("entry %d = %d, want %d", i, k, want[i])
		}
	}
}

func TestBTreeRangeScanEdges(t *testing.T) {
	_, _, tree := buildTree(t, 100, 4) // keys 0..297 step 3
	if n := tree.RangeScan(10, 5, nil); n != 0 {
		t.Errorf("inverted range visited %d", n)
	}
	if n := tree.RangeScan(1000, 2000, nil); n != 0 {
		t.Errorf("out-of-domain range visited %d", n)
	}
	if n := tree.RangeScan(0, 1<<40, nil); n != 100 {
		t.Errorf("full range visited %d, want 100", n)
	}
	if n := tree.RangeScan(297, 297, nil); n != 1 {
		t.Errorf("point range visited %d, want 1", n)
	}
}

func TestBTreeRangeScanPattern(t *testing.T) {
	_, _, tree := buildTree(t, 4096, 16)
	p := tree.RangeScanPattern(0.25)
	model := newOriginModel(t)
	res, err := model.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := model.Evaluate(tree.RangeScanPattern(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryTimeNS() >= full.MemoryTimeNS() {
		t.Error("quarter range scan should cost less than full")
	}
}

func withinTol(a, b, tol, abs float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= tol*m+abs
}
