package engine_test

// Cross-profile validation: the same operators, workloads and pattern
// descriptions must predict well on a three-data-level x86-style
// hierarchy too — the model is parameterized by hardware, not fitted to
// the Origin2000.

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/vmem"
	"repro/internal/workload"
)

type xrig struct {
	mem *vmem.Memory
	sim *cachesim.Simulator
	h   *hardware.Hierarchy
	pad int64
}

func newXRig() *xrig {
	h := hardware.ModernX86()
	r := &xrig{mem: vmem.New(1 << 28), sim: cachesim.New(h), h: h}
	r.mem.SetObserver(r.sim)
	r.sim.Freeze()
	return r
}

func (r *xrig) table(name string, n, w int64, fill func(*engine.Table)) *engine.Table {
	r.pad++
	r.mem.Alloc((r.pad%7+1)*r.h.Levels[0].LineSize, 1)
	t := engine.NewTable(r.mem, name, n, w, r.h.Levels[0].LineSize)
	if fill != nil {
		fill(t)
	}
	return t
}

func TestCrossProfileOperators(t *testing.T) {
	h := hardware.ModernX86()
	model := cost.MustNew(h)

	cases := []struct {
		name string
		tol  float64
		run  func(r *xrig) (measured []cachesim.Stats, predicted *cost.Result)
	}{
		{
			name: "scan", tol: 0.10,
			run: func(r *xrig) ([]cachesim.Stats, *cost.Result) {
				u := r.table("U", 1<<17, 16, func(tb *engine.Table) {
					workload.FillUniform(tb, workload.NewRNG(1))
				})
				r.sim.Reset()
				r.sim.Thaw()
				engine.ScanSum(u, 0)
				r.sim.Freeze()
				res, _ := model.Evaluate(engine.ScanPattern(u.Reg, 0))
				return r.sim.AllStats(), res
			},
		},
		{
			name: "mergejoin", tol: 0.25,
			run: func(r *xrig) ([]cachesim.Stats, *cost.Result) {
				n := int64(1 << 17)
				u := r.table("U", n, 8, func(tb *engine.Table) { workload.FillSorted(tb) })
				v := r.table("V", n, 8, func(tb *engine.Table) { workload.FillSorted(tb) })
				w := r.table("W", n, 8, nil)
				r.sim.Reset()
				r.sim.Thaw()
				engine.MergeJoin(u, v, w)
				r.sim.Freeze()
				res, _ := model.Evaluate(engine.MergeJoinPattern(u.Reg, v.Reg, w.Reg))
				return r.sim.AllStats(), res
			},
		},
		{
			name: "quicksort", tol: 0.45,
			run: func(r *xrig) ([]cachesim.Stats, *cost.Result) {
				u := r.table("U", 1<<17, 8, func(tb *engine.Table) {
					workload.FillUniform(tb, workload.NewRNG(2))
				})
				r.sim.Reset()
				r.sim.Thaw()
				engine.QuickSort(u)
				r.sim.Freeze()
				res, _ := model.Evaluate(engine.QuickSortPattern(u.Reg, 32<<10))
				return r.sim.AllStats(), res
			},
		},
		{
			name: "hashjoin", tol: 0.55,
			run: func(r *xrig) ([]cachesim.Stats, *cost.Result) {
				n := int64(1 << 16)
				u := r.table("U", n, 8, func(tb *engine.Table) {
					workload.FillPermutation(tb, workload.NewRNG(3))
				})
				v := r.table("V", n, 8, func(tb *engine.Table) {
					workload.FillPermutation(tb, workload.NewRNG(3))
				})
				w := r.table("W", n, 8, nil)
				r.sim.Reset()
				r.sim.Thaw()
				engine.HashJoin(r.mem, u, v, w)
				r.sim.Freeze()
				hReg := engine.HashRegionFor("H", n)
				res, _ := model.Evaluate(engine.HashJoinPattern(u.Reg, v.Reg, hReg, w.Reg))
				return r.sim.AllStats(), res
			},
		},
		{
			name: "partition", tol: 0.45,
			run: func(r *xrig) ([]cachesim.Stats, *cost.Result) {
				n := int64(1 << 17)
				u := r.table("U", n, 8, func(tb *engine.Table) {
					workload.FillUniform(tb, workload.NewRNG(4))
				})
				r.sim.Reset()
				r.sim.Thaw()
				parts := engine.Partition(r.mem, u, "X", 33, engine.HashPartition)
				r.sim.Freeze()
				res, _ := model.Evaluate(engine.PartitionPattern(u.Reg, parts.Out.Reg, 33))
				return r.sim.AllStats(), res
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newXRig()
			measured, predicted := tc.run(r)
			for i, lvl := range h.Levels {
				pred := predicted.PerLevel[i].Misses.Total()
				meas := float64(measured[i].Misses())
				if !within(pred, meas, tc.tol, 32) {
					t.Errorf("%s @%s: predicted %.0f, measured %.0f",
						tc.name, lvl.Name, pred, meas)
				}
			}
		})
	}
}
