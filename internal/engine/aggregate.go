package engine

import (
	"repro/internal/region"
	"repro/internal/vmem"
)

// Aggregation and duplicate elimination. The paper notes both are
// implemented via hashing or sorting and perform the respective access
// patterns; we provide the hash-based variants (sequential input
// traversal concurrent with random access to an aggregate/seen table)
// and a sort-based dedup for comparison.

// AggTable is a hash-addressed aggregation table: buckets of
// (key, count, sum) = 24 bytes.
type AggTable struct {
	Mem   *vmem.Memory
	Reg   *region.Region
	Base  vmem.Addr
	mask  uint64
	shift uint
}

// AggBucketWidth is the byte width of one aggregation bucket.
const AggBucketWidth = 24

// NewAggTable allocates an aggregation table for up to n groups.
func NewAggTable(mem *vmem.Memory, name string, n int64) *AggTable {
	buckets := int64(1)
	bits := uint(0)
	for buckets < 2*n {
		buckets <<= 1
		bits++
	}
	base := mem.Alloc(buckets*AggBucketWidth, 8)
	r := region.New(name, buckets, AggBucketWidth)
	r.Base = int64(base)
	return &AggTable{Mem: mem, Reg: r, Base: base, mask: uint64(buckets - 1), shift: 64 - bits}
}

func (a *AggTable) bucketAddr(b uint64) vmem.Addr {
	return a.Base + vmem.Addr(int64(b)*AggBucketWidth)
}

// Add accumulates value into key's group.
func (a *AggTable) Add(key, value uint64) {
	// High multiplicative-hash bits, for the same reason as HashTable.
	b := (hashKey(key) >> a.shift) & a.mask
	for {
		addr := a.bucketAddr(b)
		cnt := a.Mem.Load64(addr + 8)
		if cnt == 0 {
			a.Mem.Store64(addr, key)
			a.Mem.Store64(addr+8, 1)
			a.Mem.Store64(addr+16, value)
			return
		}
		if a.Mem.Load64(addr) == key {
			a.Mem.Store64(addr+8, cnt+1)
			a.Mem.Store64(addr+16, a.Mem.Load64(addr+16)+value)
			return
		}
		b = (b + 1) & a.mask
	}
}

// Groups returns (unobserved) the number of non-empty buckets.
func (a *AggTable) Groups() int64 {
	var g int64
	for b := int64(0); b < a.Reg.N; b++ {
		if getU64(a.Mem.Raw(a.bucketAddr(uint64(b))+8, 8)) != 0 {
			g++
		}
	}
	return g
}

// HashAggregate groups in by key modulo groups (key % groups acts as the
// grouping attribute) and sums the keys per group, returning the
// aggregation table.
func HashAggregate(mem *vmem.Memory, in *Table, groups int64) *AggTable {
	agg := NewAggTable(mem, in.Reg.Name+"_agg", groups)
	n := in.N()
	for i := int64(0); i < n; i++ {
		k := in.Key(i)
		agg.Add(k%uint64(groups), k)
	}
	return agg
}

// HashDedup writes one representative tuple per distinct key of in to
// out, returning the number of distinct keys. It uses a hash table as
// the "seen" set.
func HashDedup(mem *vmem.Memory, in, out *Table) int64 {
	h := NewHashTable(mem, in.Reg.Name+"_seen", in.N())
	var o int64
	n := in.N()
	for i := int64(0); i < n; i++ {
		key := in.Key(i)
		if h.Lookup(key) < 0 {
			h.Insert(key, i)
			out.CopyTuple(o, in, i)
			o++
		}
	}
	return o
}

// SortDedup sorts in in place and then writes one tuple per distinct key
// to out, returning the distinct count. Its pattern is the quick-sort
// pattern followed by two concurrent sequential traversals.
func SortDedup(in, out *Table) int64 {
	QuickSort(in)
	var o int64
	n := in.N()
	var prev uint64
	for i := int64(0); i < n; i++ {
		k := in.Key(i)
		if i == 0 || k != prev {
			out.CopyTuple(o, in, i)
			o++
			prev = k
		}
	}
	return o
}
