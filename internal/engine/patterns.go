package engine

import (
	"repro/internal/pattern"
	"repro/internal/region"
)

// Pattern descriptions of the engine's operators, matching the paper's
// Table 2. Each function returns the compound access pattern whose cost
// the model predicts for the corresponding operator; experiments compare
// that prediction against the simulator's counted misses for the same
// run.

// HashBuckets returns the bucket count NewHashTable will choose for n
// entries (next power of two ≥ 2n), so patterns can describe a hash
// table before it exists.
func HashBuckets(n int64) int64 {
	b := int64(1)
	for b < 2*n {
		b <<= 1
	}
	return b
}

// HashRegionFor returns the region descriptor of the hash table that
// NewHashTable would build for n entries.
func HashRegionFor(name string, n int64) *region.Region {
	return region.New(name, HashBuckets(n), BucketWidth)
}

// AggRegionFor returns the region descriptor of the aggregation table
// NewAggTable would build for n groups.
func AggRegionFor(name string, n int64) *region.Region {
	b := int64(1)
	for b < 2*n {
		b <<= 1
	}
	return region.New(name, b, AggBucketWidth)
}

// ScanPattern is s_trav(U, u): a table scan touching u bytes per tuple.
func ScanPattern(u *region.Region, bytesUsed int64) pattern.Pattern {
	return pattern.STrav{R: u, U: bytesUsed}
}

// SelectPattern is s_trav(U) ⊙ s_trav(W): sequential input and output.
func SelectPattern(in, out *region.Region) pattern.Pattern {
	return pattern.Conc{pattern.STrav{R: in}, pattern.STrav{R: out}}
}

// ProjectPattern is s_trav(U, u) ⊙ s_trav(W).
func ProjectPattern(in, out *region.Region, u int64) pattern.Pattern {
	return pattern.Conc{pattern.STrav{R: in, U: u}, pattern.STrav{R: out}}
}

// QuickSortPattern describes in-place quick-sort over r: per recursion
// level two concurrent sequential traversals over the segment halves,
// recursing depth-first (the paper's ⊕ over the ld(n) levels of
// ⊙-combined half traversals).
//
// pruneBytes bounds the recursion: once a segment is at most pruneBytes
// (callers pass the smallest cache capacity), all deeper levels run
// cache-resident at every level and contribute no further misses, so the
// pattern tree stops there. Pass 0 to force full recursion down to
// two-tuple segments (exponential in ld(n) — tests only).
func QuickSortPattern(r *region.Region, pruneBytes int64) pattern.Pattern {
	if r.N <= 2 {
		return pattern.STrav{R: r}
	}
	a, b := r.Halves()
	part := pattern.Conc{pattern.STrav{R: a}, pattern.STrav{R: b}}
	if a.N <= 2 || (pruneBytes > 0 && r.Size() <= pruneBytes) {
		return part
	}
	return pattern.Seq{
		part,
		QuickSortPattern(a, pruneBytes),
		QuickSortPattern(b, pruneBytes),
	}
}

// MergeJoinPattern is s_trav(U) ⊙ s_trav(V) ⊙ s_trav(W).
func MergeJoinPattern(u, v, w *region.Region) pattern.Pattern {
	return pattern.Conc{
		pattern.STrav{R: u},
		pattern.STrav{R: v},
		pattern.STrav{R: w},
	}
}

// MergeSetOpPattern is the shared pattern of the sorted-merge set
// operations (union, intersection, difference): like merge join, three
// concurrent sequential traversals — only the output cardinality
// differs, which is the logical cost component's concern, not the
// physical model's.
func MergeSetOpPattern(u, v, w *region.Region) pattern.Pattern {
	return MergeJoinPattern(u, v, w)
}

// NestedLoopJoinPattern is s_trav(U) ⊙ rs_trav(|U|, uni, V) ⊙ s_trav(W).
func NestedLoopJoinPattern(u, v, w *region.Region) pattern.Pattern {
	return pattern.Conc{
		pattern.STrav{R: u},
		pattern.RSTrav{R: v, Repeats: u.N, Dir: pattern.Uni},
		pattern.STrav{R: w},
	}
}

// HashBuildPattern is s_trav(V) ⊙ r_trav(H): sequential input, randomly
// hopping output cursor over the hash table.
func HashBuildPattern(v, h *region.Region) pattern.Pattern {
	return pattern.Conc{pattern.STrav{R: v}, pattern.RTrav{R: h}}
}

// HashProbePattern is s_trav(U) ⊙ r_acc(|U|, H) ⊙ s_trav(W).
func HashProbePattern(u, h, w *region.Region) pattern.Pattern {
	return pattern.Conc{
		pattern.STrav{R: u},
		pattern.RAcc{R: h, Count: u.N},
		pattern.STrav{R: w},
	}
}

// HashJoinPattern is the paper's
// h_join(U,V,W) = hash_build(V,H) ⊕ hash_probe(U,H,W).
func HashJoinPattern(u, v, h, w *region.Region) pattern.Pattern {
	return pattern.Seq{
		HashBuildPattern(v, h),
		HashProbePattern(u, h, w),
	}
}

// PartitionPattern is s_trav(U) ⊙ nest(X, m, s_trav(X_j), rnd): a
// sequential input traversal concurrent with m sequential output
// cursors picked in (hash-) random order.
func PartitionPattern(in, out *region.Region, m int64) pattern.Pattern {
	return pattern.Conc{
		pattern.STrav{R: in},
		pattern.Nest{R: out, M: m, Inner: pattern.InnerSTrav, Order: pattern.OrderRandom},
	}
}

// PartitionedHashJoinPattern is
// part(U,X) ⊕ part(V,Y) ⊕ ⊕_j h_join(X_j, Y_j, H_j, W_j).
// The X/Y cluster regions and the per-cluster hash-table and output
// regions are derived with average cluster sizes |U|/m and |V|/m.
func PartitionedHashJoinPattern(u, v, w *region.Region, m int64) pattern.Pattern {
	x := region.New(u.Name+"p", u.N, u.W)
	y := region.New(v.Name+"p", v.N, v.W)
	seq := pattern.Seq{
		PartitionPattern(u, x, m),
		PartitionPattern(v, y, m),
	}
	for j := int64(0); j < m; j++ {
		xj := x.Sub(j, m)
		yj := y.Sub(j, m)
		if yj.N == 0 || xj.N == 0 {
			continue
		}
		hj := HashRegionFor(yj.Name+"h", yj.N)
		wj := w.Sub(j, m)
		seq = append(seq, HashJoinPattern(xj, yj, hj, wj).(pattern.Seq)...)
	}
	return seq
}

// HashAggregatePattern is s_trav(U) ⊙ r_acc(|U|, A) over the aggregate
// table A.
func HashAggregatePattern(in, agg *region.Region) pattern.Pattern {
	return pattern.Conc{
		pattern.STrav{R: in},
		pattern.RAcc{R: agg, Count: in.N},
	}
}

// HashDedupPattern is s_trav(U) ⊙ r_acc(|U|, H) ⊙ s_trav(W).
func HashDedupPattern(in, h, out *region.Region) pattern.Pattern {
	return pattern.Conc{
		pattern.STrav{R: in},
		pattern.RAcc{R: h, Count: in.N},
		pattern.STrav{R: out},
	}
}

// SortDedupPattern is qsort(U) ⊕ [s_trav(U) ⊙ s_trav(W)].
func SortDedupPattern(in, out *region.Region, pruneBytes int64) pattern.Pattern {
	return pattern.Seq{
		QuickSortPattern(in, pruneBytes),
		pattern.Conc{pattern.STrav{R: in}, pattern.STrav{R: out}},
	}
}
