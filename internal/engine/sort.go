package engine

// In-place quick-sort on tuple keys, written the way the paper describes
// it: two cursors start at the front and back of the segment and walk
// towards each other, swapping tuples, until they meet; the segment is
// then split at the meeting point and both parts are sorted recursively
// (depth-first). The access pattern per recursion level is two concurrent
// sequential traversals over the segment halves.

// QuickSort sorts t in place by key.
func QuickSort(t *Table) {
	quickSortRange(t, 0, t.N())
}

func quickSortRange(t *Table, lo, hi int64) {
	for hi-lo > 1 {
		p := hoarePartition(t, lo, hi)
		// Recurse into the smaller side first to bound stack depth.
		if p-lo < hi-(p+1) {
			quickSortRange(t, lo, p+1)
			lo = p + 1
		} else {
			quickSortRange(t, p+1, hi)
			hi = p + 1
		}
	}
}

// hoarePartition moves the median-of-three pivot to position lo, then
// partitions [lo,hi) with Hoare's two-cursor scheme, returning j such
// that [lo,j] ≤ pivot ≤ [j+1,hi) and j < hi−1 (so recursion always makes
// progress).
func hoarePartition(t *Table, lo, hi int64) int64 {
	medianToFront(t, lo, hi)
	pivot := t.RawKey(lo)
	i, j := lo-1, hi
	for {
		for {
			i++
			if t.Key(i) >= pivot {
				break
			}
		}
		for {
			j--
			if t.Key(j) <= pivot {
				break
			}
		}
		if i >= j {
			return j
		}
		t.Swap(i, j)
	}
}

// medianToFront places the median of the first, middle and last key at
// position lo. Pivot selection uses unobserved accesses: it is negligible
// against the two traversals, and keeping it out of the trace matches the
// modeled pattern exactly.
func medianToFront(t *Table, lo, hi int64) {
	mid := lo + (hi-lo)/2
	a, b, c := t.RawKey(lo), t.RawKey(mid), t.RawKey(hi-1)
	var mi int64
	switch {
	case (a <= b && b <= c) || (c <= b && b <= a):
		mi = mid
	case (b <= a && a <= c) || (c <= a && a <= b):
		mi = lo
	default:
		mi = hi - 1
	}
	if mi != lo {
		rawSwapTuples(t, lo, mi)
	}
}

// rawSwapTuples exchanges two tuples without observation (pivot setup).
func rawSwapTuples(t *Table, i, j int64) {
	w := t.Reg.W
	bi, bj := t.Mem.Raw(t.Addr(i), w), t.Mem.Raw(t.Addr(j), w)
	for k := int64(0); k < w; k++ {
		bi[k], bj[k] = bj[k], bi[k]
	}
}
