package engine_test

// Model validation for the operators added beyond the paper's five
// (set operations, multi-pass radix partitioning), plus driver-level
// edge semantics.

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/workload"
)

func TestOperatorMergeSetOps(t *testing.T) {
	r := newRig()
	n := int64(4096)
	u := r.table("U", n, 8, func(tb *engine.Table) { workload.FillSortedStep(tb, 2) })
	v := r.table("V", n, 8, func(tb *engine.Table) { workload.FillSortedStep(tb, 3) })

	type op struct {
		name string
		run  func(out *engine.Table) int64
	}
	ops := []op{
		{"union", func(out *engine.Table) int64 { return engine.MergeUnion(u, v, out) }},
		{"intersect", func(out *engine.Table) int64 { return engine.MergeIntersect(u, v, out) }},
		{"difference", func(out *engine.Table) int64 { return engine.MergeDifference(u, v, out) }},
	}
	for _, o := range ops {
		out := r.table("W"+o.name, 2*n, 8, nil)
		var got int64
		st := r.measure(func() { got = o.run(out) })
		outReg := *out.Reg
		outReg.N = got
		p := engine.MergeSetOpPattern(u.Reg, v.Reg, &outReg)
		r.compare(t, "setop-"+o.name, p, st, 0.30)
	}
}

func TestOperatorMultiPassPartition(t *testing.T) {
	r := newRig()
	n := int64(8192)
	in := r.table("U", n, 8, func(tb *engine.Table) {
		workload.FillUniform(tb, workload.NewRNG(15))
	})
	var parts *engine.Partitions
	st := r.measure(func() {
		parts = engine.MultiPassPartition(r.mem, in, "M", 5, 2, engine.HashPartition)
	})
	if parts.M != 25 {
		t.Fatalf("M = %d", parts.M)
	}
	p := engine.MultiPassPartitionPattern(in.Reg, "M", 5, 2)
	r.compare(t, "multipass-partition", p, st, 0.45)
}

func TestOperatorIndexJoinAgainstHashJoin(t *testing.T) {
	// Cross-operator sanity on the simulator: index NL join and hash
	// join must return identical match counts for the same inputs.
	r := newRig()
	n := int64(2048)
	v := r.table("V", n, 8, func(tb *engine.Table) { workload.FillSortedStep(tb, 2) })
	tree := engine.BulkLoadBTree(r.mem, "I", v, 8)
	u := r.table("U", n, 8, func(tb *engine.Table) { workload.FillSortedStep(tb, 3) })
	w1 := r.table("W1", n, 8, nil)
	w2 := r.table("W2", n, 8, nil)
	var viaIndex, viaHash int64
	r.measure(func() {
		viaIndex = engine.IndexNestedLoopJoin(u, tree, w1)
		viaHash = engine.HashJoin(r.mem, u, v, w2)
	})
	if viaIndex != viaHash {
		t.Errorf("index join %d matches, hash join %d", viaIndex, viaHash)
	}
}

func TestModelRanksIndexJoinVsHashJoinConsistently(t *testing.T) {
	// For a tiny probe set against a huge indexed inner, the model must
	// prefer index lookups over building a full hash table — and the
	// simulator must agree.
	r := newRig()
	nInner := int64(1 << 15) // 256 kB inner, far exceeding the toy caches
	nProbe := int64(64)
	v := r.table("V", nInner, 8, func(tb *engine.Table) { workload.FillSorted(tb) })
	tree := engine.BulkLoadBTree(r.mem, "I", v, 16)
	u := r.table("U", nProbe, 8, func(tb *engine.Table) { workload.FillSortedStep(tb, 101) })

	w1 := r.table("W1", nProbe, 8, nil)
	stIdx := r.measure(func() { engine.IndexNestedLoopJoin(u, tree, w1) })
	w2 := r.table("W2", nProbe, 8, nil)
	stHash := r.measure(func() { engine.HashJoin(r.mem, u, v, w2) })

	model := cost.MustNew(r.h)
	pIdx := engine.IndexNestedLoopJoinPattern(u.Reg, tree, w1.Reg)
	hReg := engine.HashRegionFor("H", nInner)
	pHash := engine.HashJoinPattern(u.Reg, v.Reg, hReg, w2.Reg)
	tIdx, err := model.MemoryTimeNS(pIdx)
	if err != nil {
		t.Fatal(err)
	}
	tHash, err := model.MemoryTimeNS(pHash)
	if err != nil {
		t.Fatal(err)
	}
	if tIdx >= tHash {
		t.Errorf("model: index join %.2fms not cheaper than hash join %.2fms", tIdx/1e6, tHash/1e6)
	}
	measIdx := simTime(r, stIdx)
	measHash := simTime(r, stHash)
	if measIdx >= measHash {
		t.Errorf("simulator: index join %.2fms not cheaper than hash join %.2fms",
			measIdx/1e6, measHash/1e6)
	}
}

// simTime scores measured misses with the rig's latencies (Eq. 3.1 on
// the measurement side).
func simTime(r *rig, stats []cachesim.Stats) float64 {
	var t float64
	for i, l := range r.h.Levels {
		t += float64(stats[i].SeqMisses)*l.SeqMissLatency +
			float64(stats[i].RndMisses)*l.RndMissLatency
	}
	return t
}
