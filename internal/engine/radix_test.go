package engine

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/hardware"
	"repro/internal/workload"
)

func newOriginModel(t *testing.T) *cost.Model {
	t.Helper()
	m, err := cost.New(hardware.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiPassPartitionEquivalentToSinglePass(t *testing.T) {
	mem := newMem()
	in := NewTable(mem, "U", 4096, 8, 32)
	workload.FillUniform(in, workload.NewRNG(3))

	single := Partition(mem, in, "S", 16, RadixPartition)
	multi := MultiPassPartition(mem, in, "M", 4, 2, RadixPartition)

	if multi.M != 16 || int64(len(multi.Tables)) != 16 {
		t.Fatalf("multi-pass produced %d clusters, want 16", multi.M)
	}
	for j := int64(0); j < 16; j++ {
		s, m := single.Tables[j], multi.Tables[j]
		if s.N() != m.N() {
			t.Fatalf("cluster %d: single %d tuples, multi %d", j, s.N(), m.N())
		}
		// Same multiset of keys per cluster.
		ks, km := s.Keys(), m.Keys()
		sortU64(ks)
		sortU64(km)
		for i := range ks {
			if ks[i] != km[i] {
				t.Fatalf("cluster %d: key sets differ", j)
			}
		}
	}
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

func TestMultiPassPartitionThreePasses(t *testing.T) {
	mem := newMem()
	in := NewTable(mem, "U", 2048, 8, 32)
	workload.FillUniform(in, workload.NewRNG(5))
	p := MultiPassPartition(mem, in, "M", 2, 3, RadixPartition)
	if p.M != 8 {
		t.Fatalf("M = %d, want 8", p.M)
	}
	var total int64
	for j, pt := range p.Tables {
		total += pt.N()
		for i := int64(0); i < pt.N(); i++ {
			if RadixPartition(pt.RawKey(i), 8) != int64(j) {
				t.Fatalf("tuple in wrong cluster %d", j)
			}
		}
	}
	if total != 2048 {
		t.Errorf("clusters hold %d tuples", total)
	}
}

func TestMultiPassPartitionValidation(t *testing.T) {
	mem := newMem()
	in := NewTable(mem, "U", 16, 8, 32)
	assertPanic(t, "zero passes", func() { MultiPassPartition(mem, in, "M", 4, 0, RadixPartition) })
	assertPanic(t, "fanout 1", func() { MultiPassPartition(mem, in, "M", 1, 2, RadixPartition) })
}

func assertPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestBestPartitionPasses(t *testing.T) {
	cases := []struct {
		m, budget int64
		want      int
	}{
		{16, 64, 1},      // fits in one pass
		{64, 64, 1},      // exactly fits
		{128, 64, 2},     // needs two passes (12x12 > 128)
		{4096, 64, 2},    // 64x64
		{1 << 18, 64, 3}, // 64^3 = 262144
	}
	for _, tc := range cases {
		if got := BestPartitionPasses(tc.m, tc.budget); got != tc.want {
			t.Errorf("BestPartitionPasses(%d,%d) = %d, want %d", tc.m, tc.budget, got, tc.want)
		}
	}
}

func TestIroot(t *testing.T) {
	cases := []struct {
		m    int64
		k    int
		want int64
	}{
		{64, 2, 8},
		{100, 2, 10},
		{101, 2, 11},
		{27, 3, 3},
		{28, 3, 4},
	}
	for _, tc := range cases {
		if got := iroot(tc.m, tc.k); got != tc.want {
			t.Errorf("iroot(%d,%d) = %d, want %d", tc.m, tc.k, got, tc.want)
		}
	}
}

// TestMultiPassPatternGeometry checks that the declared pattern has one
// pass per Seq element, each a scan concurrent with a nest.
func TestMultiPassPatternGeometry(t *testing.T) {
	mem := newMem()
	in := NewTable(mem, "U", 1024, 8, 32)
	p := MultiPassPartitionPattern(in.Reg, "M", 8, 2)
	s := p.String()
	if countOccurrences(s, "nest(") != 2 {
		t.Errorf("pattern should have 2 nests: %s", s)
	}
	if countOccurrences(s, "s_trav(") != 4 { // 2 scans + 2 inner s_travs
		t.Errorf("pattern should have 4 s_trav occurrences: %s", s)
	}
}

func countOccurrences(s, sub string) int {
	n := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			n++
		}
	}
	return n
}

// TestMultiPassCheaperBeyondKnee is the radix-cluster headline claim on
// the model: for a fan-out beyond the single-pass knees, two passes cost
// less memory time than one.
func TestMultiPassCheaperBeyondKnee(t *testing.T) {
	// Use the model only (no simulation): 8 MB input, m = 4096 clusters
	// on the Origin2000 (TLB 64 entries, L1 1024 lines).
	in := NewTable(newMem(), "U", 1<<20, 8, 32)
	onePass := MultiPassPartitionPattern(in.Reg, "A", 4096, 1)
	twoPass := MultiPassPartitionPattern(in.Reg, "B", 64, 2)
	model := newOriginModel(t)
	r1, err := model.Evaluate(onePass)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := model.Evaluate(twoPass)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MemoryTimeNS() >= r1.MemoryTimeNS() {
		t.Errorf("two-pass %.1fms not cheaper than one-pass %.1fms",
			r2.MemoryTimeNS()/1e6, r1.MemoryTimeNS()/1e6)
	}
}
