package engine

import (
	"fmt"

	"repro/internal/region"
	"repro/internal/vmem"
)

// Radix/hash partitioning and the partitioned hash-join built on it
// (Shatdal et al. 1994; Manegold/Boncz/Kersten 2000), the paper's remedy
// for the cache-miss explosion of plain hash-join on large inputs.

// Partitions is the result of partitioning a table: one contiguous output
// area holding m clusters, each a sub-region of the parent output region.
type Partitions struct {
	Out    *Table   // the whole output area (region X)
	Tables []*Table // per-cluster views, contiguous within Out
	M      int64
}

// PartitionFunc maps a key to a cluster index in [0, m).
type PartitionFunc func(key uint64, m int64) int64

// HashPartition assigns clusters by hash (uniform, order-destroying —
// the paper's "global cursor picks regions randomly").
func HashPartition(key uint64, m int64) int64 {
	return int64(hashKey(key) % uint64(m))
}

// RadixPartition assigns clusters by the low bits of the key; m must be a
// power of two.
func RadixPartition(key uint64, m int64) int64 {
	return int64(key & uint64(m-1))
}

// Partition splits in into m clusters inside a freshly allocated output
// area. The input is traversed sequentially; each tuple is appended to
// its cluster's cursor — the interleaved multi-cursor pattern
// nest(X, m, s_trav(X_j), rnd) of the paper.
//
// Cluster sizes are determined by an unobserved counting pass, so the
// observed trace contains exactly the modeled single partitioning pass.
func Partition(mem *vmem.Memory, in *Table, name string, m int64, f PartitionFunc) *Partitions {
	if m <= 0 {
		panic(fmt.Sprintf("engine: non-positive partition count %d", m))
	}
	n, w := in.N(), in.W()

	// Unobserved histogram pass to size the clusters exactly.
	counts := make([]int64, m)
	for i := int64(0); i < n; i++ {
		counts[f(in.RawKey(i), m)]++
	}

	out := NewTable(mem, name, n, w, w)
	parent := out.Reg

	// Carve per-cluster tables out of the contiguous output area.
	tables := make([]*Table, m)
	cursors := make([]int64, m)
	var off int64
	for j := int64(0); j < m; j++ {
		r := region.New(fmt.Sprintf("%s_%d", name, j), counts[j], w)
		r.Parent = parent
		r.Base = int64(out.Base) + off*w
		tables[j] = &Table{Mem: mem, Reg: r, Base: out.Base + vmem.Addr(off*w)}
		off += counts[j]
	}

	// The observed partitioning pass.
	for i := int64(0); i < n; i++ {
		j := f(in.Key(i), m)
		tables[j].CopyTuple(cursors[j], in, i)
		cursors[j]++
	}
	return &Partitions{Out: out, Tables: tables, M: m}
}

// PartitionedHashJoin partitions u and v into m matching clusters with
// the same partition function, then hash-joins each cluster pair,
// appending all matches to out. It returns the match count.
func PartitionedHashJoin(mem *vmem.Memory, u, v, out *Table, m int64, f PartitionFunc) int64 {
	pu := Partition(mem, u, u.Reg.Name+"p", m, f)
	pv := Partition(mem, v, v.Reg.Name+"p", m, f)
	return JoinPartitions(mem, pu, pv, out)
}

// JoinPartitions hash-joins matching cluster pairs of two compatible
// partitionings, appending results to out.
func JoinPartitions(mem *vmem.Memory, pu, pv *Partitions, out *Table) int64 {
	if pu.M != pv.M {
		panic("engine: partition counts differ")
	}
	var o int64
	for j := int64(0); j < pu.M; j++ {
		uj, vj := pu.Tables[j], pv.Tables[j]
		if uj.N() == 0 || vj.N() == 0 {
			continue
		}
		h := BuildHash(mem, vj.Reg.Name+"_hash", vj)
		nu := uj.N()
		for i := int64(0); i < nu; i++ {
			if row := h.Lookup(uj.Key(i)); row >= 0 {
				out.CopyTuple(o, uj, i)
				o++
			}
		}
	}
	return o
}
