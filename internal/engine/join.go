package engine

// Merge join and nested-loop join — the two joins whose patterns are pure
// traversals: merge join is three concurrent sequential traversals, a
// nested-loop join is a sequential outer traversal concurrent with a
// repetitive (uni-directional) traversal of the inner.

// MergeJoin joins the sorted inputs u and v and writes matching pairs to
// out, returning the match count. Both inputs must be key-sorted; with
// duplicate keys it emits the full cross product per key group.
func MergeJoin(u, v, out *Table) int64 {
	var o int64
	nu, nv := u.N(), v.N()
	var i, j int64
	for i < nu && j < nv {
		ku, kv := u.Key(i), v.Key(j)
		switch {
		case ku < kv:
			i++
		case ku > kv:
			j++
		default:
			// Emit the group cross product.
			jEnd := j
			for jEnd < nv && v.Key(jEnd) == ku {
				jEnd++
			}
			for ; i < nu && u.Key(i) == ku; i++ {
				for jj := j; jj < jEnd; jj++ {
					v.TouchTuple(jj, 0)
					out.CopyTuple(o, u, i)
					o++
				}
			}
			j = jEnd
		}
	}
	return o
}

// NestedLoopJoin scans the outer u once and, for every outer tuple,
// sweeps the whole inner v, emitting matches to out. It returns the
// match count. Quadratic — only sensible for small inners, which is
// exactly the trade-off the cost model is meant to expose.
func NestedLoopJoin(u, v, out *Table) int64 {
	var o int64
	nu, nv := u.N(), v.N()
	for i := int64(0); i < nu; i++ {
		ku := u.Key(i)
		for j := int64(0); j < nv; j++ {
			if v.Key(j) == ku {
				out.CopyTuple(o, u, i)
				o++
			}
		}
	}
	return o
}
