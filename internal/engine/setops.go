package engine

// Sorted-merge set operations. The paper notes that "the appropriate
// treatment of union, intersection and set-difference can be derived
// respectively" from the join discussion: all three sweep both sorted
// inputs once and write one sequential output — the merge-join pattern
// shape with different output cardinalities.

// MergeUnion writes the sorted set union of the key-sorted inputs u and
// v into out (duplicates across and within inputs collapse to one
// representative tuple). It returns the result cardinality.
func MergeUnion(u, v, out *Table) int64 {
	var o int64
	nu, nv := u.N(), v.N()
	var i, j int64
	emit := func(src *Table, idx int64) {
		k := src.RawKey(idx)
		if o > 0 && getU64(out.Mem.Raw(out.Addr(o-1), KeyWidth)) == k {
			// Collapse duplicates; the source tuple was already read.
			return
		}
		out.CopyTuple(o, src, idx)
		o++
	}
	for i < nu && j < nv {
		ku, kv := u.Key(i), v.Key(j)
		switch {
		case ku < kv:
			emit(u, i)
			i++
		case ku > kv:
			emit(v, j)
			j++
		default:
			emit(u, i)
			i++
			j++
			v.TouchTuple(j-1, 0)
		}
	}
	for ; i < nu; i++ {
		_ = u.Key(i)
		emit(u, i)
	}
	for ; j < nv; j++ {
		_ = v.Key(j)
		emit(v, j)
	}
	return o
}

// MergeIntersect writes the sorted set intersection of the key-sorted
// inputs into out, returning its cardinality. Duplicate keys contribute
// one output tuple.
func MergeIntersect(u, v, out *Table) int64 {
	var o int64
	nu, nv := u.N(), v.N()
	var i, j int64
	for i < nu && j < nv {
		ku, kv := u.Key(i), v.Key(j)
		switch {
		case ku < kv:
			i++
		case ku > kv:
			j++
		default:
			out.CopyTuple(o, u, i)
			o++
			// Skip duplicate key groups on both sides.
			for i < nu && u.Key(i) == ku {
				i++
			}
			for j < nv && v.Key(j) == kv {
				j++
			}
		}
	}
	return o
}

// MergeDifference writes the sorted set difference u − v (keys of u not
// present in v) into out, returning its cardinality. Duplicate keys of u
// contribute one output tuple.
func MergeDifference(u, v, out *Table) int64 {
	var o int64
	nu, nv := u.N(), v.N()
	var i, j int64
	for i < nu {
		ku := u.Key(i)
		for j < nv && v.Key(j) < ku {
			j++
		}
		if j < nv && v.Key(j) == ku {
			// Present in v: skip u's whole key group.
			for i < nu && u.Key(i) == ku {
				i++
			}
			continue
		}
		out.CopyTuple(o, u, i)
		o++
		for i < nu && u.Key(i) == ku {
			i++
		}
	}
	return o
}
