// Package engine is a small column-oriented main-memory query engine in
// the style of Monet, the paper's experimentation platform. Its operators
// (scan, select, project, quick-sort, nested-loop / merge / hash join,
// radix partitioning, partitioned hash-join, aggregation, duplicate
// elimination) run over a simulated flat address space (internal/vmem),
// so a cache simulator can observe the exact address trace — the role
// the MIPS R10000 hardware counters play in the paper.
//
// Every operator has a companion ...Pattern function returning the data
// access pattern the paper's Table 2 assigns to it, so predictions and
// measurements can be compared one-to-one. The operators and their
// pattern descriptions implement the workload side of the paper's
// Section 6 evaluation (the quick-sort, merge-join, hash-join and
// partitioning experiments of Figure 7).
package engine

import (
	"fmt"

	"repro/internal/region"
	"repro/internal/vmem"
)

// KeyWidth is the width of the join/sort key at the start of each tuple.
const KeyWidth = 8

// Table is a fixed-width relation materialized in simulated memory.
// Tuples are KeyWidth-byte little-endian keys followed by payload bytes.
type Table struct {
	Mem  *vmem.Memory
	Reg  *region.Region
	Base vmem.Addr
}

// NewTable allocates a table of n tuples of width w (w ≥ KeyWidth) in
// mem, aligned to align bytes (use a cache-line size, or 1).
func NewTable(mem *vmem.Memory, name string, n, w, align int64) *Table {
	if w < KeyWidth {
		panic(fmt.Sprintf("engine: tuple width %d below key width %d", w, KeyWidth))
	}
	base := mem.Alloc(n*w, align)
	r := region.New(name, n, w)
	r.Base = int64(base)
	return &Table{Mem: mem, Reg: r, Base: base}
}

// NewTableAt allocates a table whose base address is congruent to offset
// modulo align (alignment experiments).
func NewTableAt(mem *vmem.Memory, name string, n, w, align, offset int64) *Table {
	if w < KeyWidth {
		panic(fmt.Sprintf("engine: tuple width %d below key width %d", w, KeyWidth))
	}
	base := mem.AllocOffset(n*w, align, offset)
	r := region.New(name, n, w)
	r.Base = int64(base)
	return &Table{Mem: mem, Reg: r, Base: base}
}

// N returns the tuple count.
func (t *Table) N() int64 { return t.Reg.N }

// W returns the tuple width in bytes.
func (t *Table) W() int64 { return t.Reg.W }

// Addr returns the address of tuple i.
func (t *Table) Addr(i int64) vmem.Addr { return t.Base + vmem.Addr(i*t.Reg.W) }

// Key reads the key of tuple i (observed).
func (t *Table) Key(i int64) uint64 { return t.Mem.Load64(t.Addr(i)) }

// SetKey writes the key of tuple i (observed).
func (t *Table) SetKey(i int64, v uint64) { t.Mem.Store64(t.Addr(i), v) }

// TouchTuple observes a read of u bytes of tuple i (u ≤ w; 0 means the
// whole tuple). Operators use it for payload bytes they consume but whose
// contents the simulation does not need.
func (t *Table) TouchTuple(i, u int64) {
	if u <= 0 || u > t.Reg.W {
		u = t.Reg.W
	}
	t.Mem.Touch(t.Addr(i), u)
}

// WriteTuple writes key plus payload into tuple i (observed as one access
// of the full width).
func (t *Table) WriteTuple(i int64, key uint64) {
	a := t.Addr(i)
	t.Mem.TouchWrite(a, t.Reg.W)
	raw := t.Mem.Raw(a, KeyWidth)
	putU64(raw, key)
}

// CopyTuple copies tuple si of src into tuple di of t (observed: one read
// of src width, one write of min(width) bytes).
func (t *Table) CopyTuple(di int64, src *Table, si int64) {
	w := t.Reg.W
	if src.Reg.W < w {
		w = src.Reg.W
	}
	sa, da := src.Addr(si), t.Addr(di)
	src.Mem.Touch(sa, w)
	t.Mem.TouchWrite(da, w)
	copy(t.Mem.Raw(da, w), src.Mem.Raw(sa, w))
}

// Swap exchanges tuples i and j (observed: read+write of both tuples).
func (t *Table) Swap(i, j int64) {
	if i == j {
		return
	}
	w := t.Reg.W
	ai, aj := t.Addr(i), t.Addr(j)
	t.Mem.Touch(ai, w)
	t.Mem.Touch(aj, w)
	t.Mem.TouchWrite(ai, w)
	t.Mem.TouchWrite(aj, w)
	bi, bj := t.Mem.Raw(ai, w), t.Mem.Raw(aj, w)
	for k := int64(0); k < w; k++ {
		bi[k], bj[k] = bj[k], bi[k]
	}
}

// RawKey reads the key of tuple i without observation (setup/verify).
func (t *Table) RawKey(i int64) uint64 {
	return getU64(t.Mem.Raw(t.Addr(i), KeyWidth))
}

// SetRawKey writes the key of tuple i without observation (setup).
func (t *Table) SetRawKey(i int64, v uint64) {
	putU64(t.Mem.Raw(t.Addr(i), KeyWidth), v)
}

// Keys returns all keys unobserved (verification in tests).
func (t *Table) Keys() []uint64 {
	out := make([]uint64, t.Reg.N)
	for i := int64(0); i < t.Reg.N; i++ {
		out[i] = t.RawKey(i)
	}
	return out
}

// IsSortedRaw reports (unobserved) whether keys are non-decreasing.
func (t *Table) IsSortedRaw() bool {
	for i := int64(1); i < t.Reg.N; i++ {
		if t.RawKey(i-1) > t.RawKey(i) {
			return false
		}
	}
	return true
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
