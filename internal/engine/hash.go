package engine

import (
	"fmt"

	"repro/internal/region"
	"repro/internal/vmem"
)

// Hash table over simulated memory: an open-addressing array of
// fixed-width buckets (key + rowID), sized to a power of two with the
// given load-factor headroom. Building it writes buckets in hash order —
// the "hops back and forth" output cursor the paper models as a random
// traversal of the hash-table region.

// BucketWidth is the byte width of one hash bucket: 8-byte key plus
// 8-byte rowID+1 (0 marks an empty bucket).
const BucketWidth = 16

// HashTable is an open-addressing hash table materialized in vmem.
type HashTable struct {
	Mem   *vmem.Memory
	Reg   *region.Region
	Base  vmem.Addr
	mask  uint64
	shift uint
}

// hashKey is Fibonacci hashing; it scrambles sorted or clustered key
// spaces into uniform bucket indices.
func hashKey(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 }

// bucketOf derives the bucket index from the *high* multiplicative-hash
// bits. Partitioning functions consume the low bits (hashKey % m), so a
// cluster's hash table would see only every m-th bucket if indexing used
// the low bits too — the classic radix-join pitfall.
func (h *HashTable) bucketOf(key uint64) uint64 {
	return (hashKey(key) >> h.shift) & h.mask
}

// NewHashTable allocates a table with capacity for n entries at roughly
// 50% load (buckets = next power of two ≥ 2n).
func NewHashTable(mem *vmem.Memory, name string, n int64) *HashTable {
	buckets := int64(1)
	bits := uint(0)
	for buckets < 2*n {
		buckets <<= 1
		bits++
	}
	base := mem.Alloc(buckets*BucketWidth, BucketWidth)
	// Buckets start zeroed (vmem is zero-initialized and Alloc never
	// reuses space), so no observed clearing pass is needed.
	r := region.New(name, buckets, BucketWidth)
	r.Base = int64(base)
	return &HashTable{Mem: mem, Reg: r, Base: base, mask: uint64(buckets - 1), shift: 64 - bits}
}

// Buckets returns the number of buckets.
func (h *HashTable) Buckets() int64 { return h.Reg.N }

func (h *HashTable) bucketAddr(b uint64) vmem.Addr {
	return h.Base + vmem.Addr(int64(b)*BucketWidth)
}

// Insert stores (key, row). Duplicate keys occupy separate buckets; probes
// find the first. Panics when the table is full.
func (h *HashTable) Insert(key uint64, row int64) {
	b := h.bucketOf(key)
	for probes := uint64(0); probes <= h.mask; probes++ {
		a := h.bucketAddr(b)
		if h.Mem.Load64(a+8) == 0 { // empty bucket
			h.Mem.Store64(a, key)
			h.Mem.Store64(a+8, uint64(row)+1)
			return
		}
		b = (b + 1) & h.mask
	}
	panic(fmt.Sprintf("engine: hash table %s full", h.Reg.Name))
}

// Lookup returns the rowID stored for key, or -1.
func (h *HashTable) Lookup(key uint64) int64 {
	b := h.bucketOf(key)
	for probes := uint64(0); probes <= h.mask; probes++ {
		a := h.bucketAddr(b)
		row := h.Mem.Load64(a + 8)
		if row == 0 {
			return -1
		}
		if h.Mem.Load64(a) == key {
			return int64(row) - 1
		}
		b = (b + 1) & h.mask
	}
	return -1
}

// BuildHash inserts every tuple of in into a fresh hash table.
func BuildHash(mem *vmem.Memory, name string, in *Table) *HashTable {
	h := NewHashTable(mem, name, in.N())
	n := in.N()
	for i := int64(0); i < n; i++ {
		h.Insert(in.Key(i), i)
	}
	return h
}

// HashJoin joins U and V on key (V is the inner/build side) and writes
// matching pairs into out (width ≥ U.W). It returns the number of result
// tuples. Out must have capacity for them.
func HashJoin(mem *vmem.Memory, u, v, out *Table) int64 {
	h := BuildHash(mem, v.Reg.Name+"_hash", v)
	return HashProbe(u, h, out)
}

// HashProbe probes every tuple of u against h and writes matches to out,
// returning the match count. The paper's pattern for the probe phase is
// s_trav(U) ⊙ r_acc(|U|, H) ⊙ s_trav(W): the hash bucket carries the
// rowID, so the inner relation itself is not touched.
func HashProbe(u *Table, h *HashTable, out *Table) int64 {
	var o int64
	n := u.N()
	for i := int64(0); i < n; i++ {
		key := u.Key(i)
		if row := h.Lookup(key); row >= 0 {
			out.CopyTuple(o, u, i)
			o++
		}
	}
	return o
}
