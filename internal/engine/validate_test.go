package engine_test

// Operator-level validation: each engine operator is executed in
// simulated memory with the cache simulator attached, and the measured
// per-level misses are compared against the cost model's prediction for
// the operator's declared access pattern — the paper's Section 6
// experiments in miniature (hardware.SmallTest keeps the runs fast while
// exercising every capacity boundary).

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/vmem"
	"repro/internal/workload"
)

type rig struct {
	mem *vmem.Memory
	sim *cachesim.Simulator
	h   *hardware.Hierarchy
	pad int64
}

func newRig() *rig {
	h := hardware.SmallTest()
	r := &rig{
		mem: vmem.New(1 << 26),
		sim: cachesim.New(h),
		h:   h,
	}
	r.mem.SetObserver(r.sim)
	r.sim.Freeze() // setup is unobserved until measure()
	return r
}

// table allocates a staggered, filled table (setup unobserved).
func (r *rig) table(name string, n, w int64, fill func(*engine.Table)) *engine.Table {
	r.pad++
	r.mem.Alloc((r.pad%7+1)*r.h.Levels[0].LineSize, 1)
	t := engine.NewTable(r.mem, name, n, w, r.h.Levels[0].LineSize)
	if fill != nil {
		fill(t)
	}
	return t
}

// measure runs op with counting enabled and returns per-level stats.
func (r *rig) measure(op func()) []cachesim.Stats {
	r.sim.Reset()
	r.sim.Thaw()
	op()
	r.sim.Freeze()
	return r.sim.AllStats()
}

// compare checks measured misses against the model prediction for p.
func (r *rig) compare(t *testing.T, name string, p pattern.Pattern, measured []cachesim.Stats, tol float64) {
	t.Helper()
	model := cost.MustNew(r.h)
	res, err := model.Evaluate(p)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for i, lvl := range r.h.Levels {
		pred := res.PerLevel[i].Misses.Total()
		meas := float64(measured[i].Misses())
		if !within(pred, meas, tol, 16) {
			t.Errorf("%s @%s: predicted %.0f, measured %.0f", name, lvl.Name, pred, meas)
		}
	}
}

func within(a, b, tol, abs float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= tol*m+abs
}

func fillUniform(seed uint64) func(*engine.Table) {
	return func(t *engine.Table) { workload.FillUniform(t, workload.NewRNG(seed)) }
}

func fillPerm(seed uint64) func(*engine.Table) {
	return func(t *engine.Table) { workload.FillPermutation(t, workload.NewRNG(seed)) }
}

func TestOperatorScan(t *testing.T) {
	r := newRig()
	for _, n := range []int64{128, 1024, 8192} {
		u := r.table("U", n, 16, fillUniform(1))
		st := r.measure(func() { engine.ScanSum(u, 0) })
		r.compare(t, "scan", engine.ScanPattern(u.Reg, 0), st, 0.10)
	}
}

func TestOperatorSelect(t *testing.T) {
	r := newRig()
	in := r.table("U", 4096, 16, fillUniform(2))
	out := r.table("W", 4096, 16, nil)
	var got int64
	st := r.measure(func() {
		got = engine.Select(in, out, func(k uint64) bool { return k%2 == 0 })
	})
	outReg := *out.Reg
	outReg.N = got // model the actually-written prefix
	r.compare(t, "select", engine.SelectPattern(in.Reg, &outReg), st, 0.20)
}

func TestOperatorProject(t *testing.T) {
	r := newRig()
	in := r.table("U", 4096, 32, fillUniform(3))
	out := r.table("W", 4096, 8, nil)
	st := r.measure(func() { engine.Project(in, out, 8) })
	r.compare(t, "project", engine.ProjectPattern(in.Reg, out.Reg, 8), st, 0.20)
}

func TestOperatorQuickSort(t *testing.T) {
	r := newRig()
	// Sizes spanning: fits L1 (1kB), fits L2 (8kB), exceeds both.
	for _, n := range []int64{64, 512, 4096} {
		u := r.table("U", n, 8, fillUniform(4))
		st := r.measure(func() { engine.QuickSort(u) })
		p := engine.QuickSortPattern(u.Reg, 256) // prune well below L1
		r.compare(t, "quicksort", p, st, 0.45)
		if !u.IsSortedRaw() {
			t.Fatal("not sorted")
		}
	}
}

func TestOperatorMergeJoin(t *testing.T) {
	r := newRig()
	for _, n := range []int64{512, 8192} {
		u := r.table("U", n, 8, func(t *engine.Table) { workload.FillSorted(t) })
		v := r.table("V", n, 8, func(t *engine.Table) { workload.FillSorted(t) })
		w := r.table("W", n, 8, nil)
		st := r.measure(func() { engine.MergeJoin(u, v, w) })
		r.compare(t, "mergejoin", engine.MergeJoinPattern(u.Reg, v.Reg, w.Reg), st, 0.25)
	}
}

func TestOperatorNestedLoopJoin(t *testing.T) {
	r := newRig()
	u := r.table("U", 256, 8, func(t *engine.Table) { workload.FillSorted(t) })
	v := r.table("V", 64, 8, func(t *engine.Table) { workload.FillSorted(t) })
	w := r.table("W", 256, 8, nil)
	st := r.measure(func() { engine.NestedLoopJoin(u, v, w) })
	r.compare(t, "nljoin", engine.NestedLoopJoinPattern(u.Reg, v.Reg, w.Reg), st, 0.30)
}

func TestOperatorHashJoin(t *testing.T) {
	r := newRig()
	for _, n := range []int64{256, 2048} {
		u := r.table("U", n, 8, fillPerm(5))
		v := r.table("V", n, 8, fillPerm(5))
		w := r.table("W", n, 8, nil)
		var matches int64
		st := r.measure(func() { matches = engine.HashJoin(r.mem, u, v, w) })
		if matches != n {
			t.Fatalf("matches = %d, want %d", matches, n)
		}
		hReg := engine.HashRegionFor("H", n)
		p := engine.HashJoinPattern(u.Reg, v.Reg, hReg, w.Reg)
		r.compare(t, "hashjoin", p, st, 0.50)
	}
}

func TestOperatorPartition(t *testing.T) {
	r := newRig()
	in := r.table("U", 8192, 8, fillUniform(6))
	for _, m := range []int64{5, 65, 1025} { // each safely away from the L1/L2/TLB knees, where the model's sharp boundary and the simulator's LRU window differ (paper-acknowledged)
		inCopy := r.table("Uc", 8192, 8, func(t *engine.Table) {
			for i := int64(0); i < 8192; i++ {
				t.SetRawKey(i, in.RawKey(i))
			}
		})
		var parts *engine.Partitions
		st := r.measure(func() { parts = engine.Partition(r.mem, inCopy, "X", m, engine.HashPartition) })
		p := engine.PartitionPattern(inCopy.Reg, parts.Out.Reg, m)
		r.compare(t, "partition", p, st, 0.45)
	}
}

func TestOperatorPartitionedHashJoin(t *testing.T) {
	r := newRig()
	n := int64(4096)
	u := r.table("U", n, 8, fillPerm(7))
	v := r.table("V", n, 8, fillPerm(7))
	w := r.table("W", n, 8, nil)
	var matches int64
	st := r.measure(func() {
		matches = engine.PartitionedHashJoin(r.mem, u, v, w, 17, engine.HashPartition)
	})
	if matches != n {
		t.Fatalf("matches = %d, want %d", matches, n)
	}
	p := engine.PartitionedHashJoinPattern(u.Reg, v.Reg, w.Reg, 17)
	r.compare(t, "part-hashjoin", p, st, 0.50)
}

func TestOperatorHashAggregate(t *testing.T) {
	r := newRig()
	in := r.table("U", 8192, 8, fillUniform(8))
	groups := int64(512)
	var agg *engine.AggTable
	st := r.measure(func() { agg = engine.HashAggregate(r.mem, in, groups) })
	p := engine.HashAggregatePattern(in.Reg, agg.Reg)
	r.compare(t, "hashagg", p, st, 0.50)
}

func TestOperatorHashDedup(t *testing.T) {
	r := newRig()
	in := r.table("U", 4096, 8, func(t *engine.Table) { workload.FillMod(t, 1024) })
	out := r.table("W", 4096, 8, nil)
	hReg := engine.HashRegionFor("H", 4096)
	var distinct int64
	st := r.measure(func() { distinct = engine.HashDedup(r.mem, in, out) })
	if distinct != 1024 {
		t.Fatalf("distinct = %d", distinct)
	}
	outReg := *out.Reg
	outReg.N = distinct
	p := engine.HashDedupPattern(in.Reg, hReg, &outReg)
	r.compare(t, "hashdedup", p, st, 0.50)
}

// TestHashJoinCacheStep verifies the paper's Fig. 7c qualitative claim on
// the simulator: misses per probe jump once the hash table exceeds the
// cache.
func TestHashJoinCacheStep(t *testing.T) {
	perProbeMisses := func(n int64) float64 {
		r := newRig()
		u := r.table("U", n, 8, fillPerm(9))
		v := r.table("V", n, 8, fillPerm(9))
		w := r.table("W", n, 8, nil)
		st := r.measure(func() { engine.HashJoin(r.mem, u, v, w) })
		l2, _ := r.sim.StatsByName("L2")
		_ = st
		return float64(l2.Misses()) / float64(n)
	}
	small := perProbeMisses(128)  // H = 256 buckets x 16B = 4kB ≤ 8kB L2
	large := perProbeMisses(4096) // H = 128kB >> L2
	if large < 2*small {
		t.Errorf("no cache step: %.3f misses/tuple small vs %.3f large", small, large)
	}
}
