package engine

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/region"
	"repro/internal/vmem"
)

// A bulk-loaded B+-tree over simulated memory. The paper models "more
// complex structures like trees ... by regions with R.n representing the
// number of nodes and R.w the size of a single node"; accordingly each
// tree level is one data region, and a batch of lookups performs
// concurrent random accesses into every level's region — upper levels
// are small and cache-resident, so the model predicts (and the
// simulator confirms) that lookup cost is dominated by the lowest
// levels that exceed the cache. This is the access structure behind the
// cache-conscious index work the paper cites (Rao/Ross 1999, 2000).

// BTreeEntryWidth is the byte width of one node entry: key + payload
// (child node index for internal nodes, rowID for leaves).
const BTreeEntryWidth = 16

// BTree is an immutable, bulk-loaded B+-tree.
type BTree struct {
	Mem *vmem.Memory
	// Fanout is the number of entries per node.
	Fanout int64
	// Levels holds one region per tree level, root first; leaves last.
	// Level regions count nodes, not entries.
	Levels []*region.Region
	// bases[i] is the base address of level i's node array.
	bases []vmem.Addr
	// counts[i] is the number of entries (not nodes) in level i.
	counts []int64
}

// NodeWidth returns the byte width of one node.
func (t *BTree) NodeWidth() int64 { return t.Fanout * BTreeEntryWidth }

// Height returns the number of levels.
func (t *BTree) Height() int { return len(t.Levels) }

// BulkLoadBTree builds a B+-tree over the key-sorted table in with the
// given fanout (entries per node, ≥ 2). Leaf entries are (key, rowID);
// internal entries are (maxKeyOfChild, childIndex).
func BulkLoadBTree(mem *vmem.Memory, name string, in *Table, fanout int64) *BTree {
	if fanout < 2 {
		panic(fmt.Sprintf("engine: B+-tree fanout %d too small", fanout))
	}
	n := in.N()
	if n == 0 {
		panic("engine: cannot bulk-load an empty B+-tree")
	}
	t := &BTree{Mem: mem, Fanout: fanout}
	nodeW := t.NodeWidth()

	// Build the leaf level (level indices grow towards the root during
	// construction; reversed at the end).
	type level struct {
		base    vmem.Addr
		entries int64
		nodes   int64
		reg     *region.Region
	}
	var levels []level

	leafNodes := (n + fanout - 1) / fanout
	leafBase := mem.Alloc(leafNodes*nodeW, nodeW)
	for i := int64(0); i < n; i++ {
		// Bulk load is setup, not the measured workload: unobserved.
		node, slot := i/fanout, i%fanout
		a := leafBase + vmem.Addr(node*nodeW+slot*BTreeEntryWidth)
		putU64(mem.Raw(a, 8), in.RawKey(i))
		putU64(mem.Raw(a+8, 8), uint64(i)+1)
	}
	reg := region.New(name+"_L0", leafNodes, nodeW)
	reg.Base = int64(leafBase)
	levels = append(levels, level{leafBase, n, leafNodes, reg})

	// Build internal levels until one node remains.
	for levels[len(levels)-1].nodes > 1 {
		child := levels[len(levels)-1]
		entries := child.nodes
		nodes := (entries + fanout - 1) / fanout
		base := mem.Alloc(nodes*nodeW, nodeW)
		for c := int64(0); c < entries; c++ {
			// Separator = max key in child node c.
			lastSlot := fanout - 1
			if c == child.nodes-1 && child.entries%fanout != 0 {
				lastSlot = child.entries%fanout - 1
			}
			ca := child.base + vmem.Addr(c*nodeW+lastSlot*BTreeEntryWidth)
			sep := getU64(mem.Raw(ca, 8))
			node, slot := c/fanout, c%fanout
			a := base + vmem.Addr(node*nodeW+slot*BTreeEntryWidth)
			putU64(mem.Raw(a, 8), sep)
			putU64(mem.Raw(a+8, 8), uint64(c)+1)
		}
		reg := region.New(fmt.Sprintf("%s_L%d", name, len(levels)), nodes, nodeW)
		reg.Base = int64(base)
		levels = append(levels, level{base, entries, nodes, reg})
	}

	// Root first.
	for i := len(levels) - 1; i >= 0; i-- {
		t.Levels = append(t.Levels, levels[i].reg)
		t.bases = append(t.bases, levels[i].base)
		t.counts = append(t.counts, levels[i].entries)
	}
	return t
}

// Lookup descends from the root and returns the rowID for key, or −1.
// Every visited node is touched as one access of the node width (the
// region-granule access the model assumes).
func (t *BTree) Lookup(key uint64) int64 {
	nodeW := t.NodeWidth()
	node := int64(0)
	for lvl := 0; lvl < len(t.Levels); lvl++ {
		base := t.bases[lvl] + vmem.Addr(node*nodeW)
		t.Mem.Touch(base, nodeW)
		// In-node search on raw bytes (the touch above accounted for the
		// node's cache footprint).
		entriesInNode := t.entriesIn(lvl, node)
		leaf := lvl == len(t.Levels)-1
		found := int64(-1)
		for s := int64(0); s < entriesInNode; s++ {
			a := base + vmem.Addr(s*BTreeEntryWidth)
			k := getU64(t.Mem.Raw(a, 8))
			if leaf {
				if k == key {
					return int64(getU64(t.Mem.Raw(a+8, 8))) - 1
				}
				continue
			}
			if key <= k {
				found = int64(getU64(t.Mem.Raw(a+8, 8))) - 1
				break
			}
		}
		if leaf {
			return -1
		}
		if found < 0 {
			return -1 // beyond the largest key
		}
		node = found
	}
	return -1
}

// entriesIn returns the entry count of the given node at a level.
func (t *BTree) entriesIn(lvl int, node int64) int64 {
	total := t.counts[lvl]
	full := total / t.Fanout
	switch {
	case node < full:
		return t.Fanout
	case node == full && total%t.Fanout != 0:
		return total % t.Fanout
	default:
		return t.Fanout
	}
}

// LookupBatchPattern describes k random lookups: concurrent random
// accesses into every level region (each lookup touches one node per
// level).
func (t *BTree) LookupBatchPattern(k int64) pattern.Pattern {
	conc := pattern.Conc{}
	for _, lr := range t.Levels {
		conc = append(conc, pattern.RAcc{R: lr, Count: k})
	}
	return conc
}

// BTreeLevelRegions returns the per-level region geometry BulkLoadBTree
// would build for n keys with the given fanout — same names (name_L0 =
// leaves), node counts, node widths and root-first order — without
// touching memory. The analytical validation backend uses it to
// construct lookup patterns for a tree that is never materialized.
func BTreeLevelRegions(name string, n, fanout int64) []*region.Region {
	if fanout < 2 {
		panic(fmt.Sprintf("engine: B+-tree fanout %d too small", fanout))
	}
	if n <= 0 {
		panic("engine: cannot size an empty B+-tree")
	}
	nodeW := fanout * BTreeEntryWidth
	var levels []*region.Region // leaf first during construction
	nodes := (n + fanout - 1) / fanout
	levels = append(levels, region.New(name+"_L0", nodes, nodeW))
	for nodes > 1 {
		nodes = (nodes + fanout - 1) / fanout
		levels = append(levels, region.New(fmt.Sprintf("%s_L%d", name, len(levels)), nodes, nodeW))
	}
	// Root first, like BTree.Levels.
	for i, j := 0, len(levels)-1; i < j; i, j = i+1, j-1 {
		levels[i], levels[j] = levels[j], levels[i]
	}
	return levels
}

// BTreeLookupBatchPattern is LookupBatchPattern over a pure geometry
// from BTreeLevelRegions.
func BTreeLookupBatchPattern(levels []*region.Region, k int64) pattern.Pattern {
	conc := pattern.Conc{}
	for _, lr := range levels {
		conc = append(conc, pattern.RAcc{R: lr, Count: k})
	}
	return conc
}

// RangeScan visits all leaf entries with lo ≤ key ≤ hi in key order,
// invoking emit(key, rowID) for each, and returns the number of entries
// visited. It descends once to the first qualifying leaf and then
// traverses leaves sequentially — the classic index-range pattern:
// height random accesses followed by a partial sequential traversal of
// the leaf level.
func (t *BTree) RangeScan(lo, hi uint64, emit func(key uint64, row int64)) int64 {
	if hi < lo {
		return 0
	}
	nodeW := t.NodeWidth()
	// Descend to the leaf that may hold lo.
	node := int64(0)
	for lvl := 0; lvl < len(t.Levels)-1; lvl++ {
		base := t.bases[lvl] + vmem.Addr(node*nodeW)
		t.Mem.Touch(base, nodeW)
		entriesInNode := t.entriesIn(lvl, node)
		next := int64(-1)
		for s := int64(0); s < entriesInNode; s++ {
			a := base + vmem.Addr(s*BTreeEntryWidth)
			if lo <= getU64(t.Mem.Raw(a, 8)) {
				next = int64(getU64(t.Mem.Raw(a+8, 8))) - 1
				break
			}
		}
		if next < 0 {
			return 0 // lo beyond the largest key
		}
		node = next
	}
	// Sweep the leaf level from that node onwards.
	leaf := len(t.Levels) - 1
	var count int64
	for ; node < t.Levels[leaf].N; node++ {
		base := t.bases[leaf] + vmem.Addr(node*nodeW)
		t.Mem.Touch(base, nodeW)
		entriesInNode := t.entriesIn(leaf, node)
		for s := int64(0); s < entriesInNode; s++ {
			a := base + vmem.Addr(s*BTreeEntryWidth)
			k := getU64(t.Mem.Raw(a, 8))
			if k < lo {
				continue
			}
			if k > hi {
				return count
			}
			if emit != nil {
				emit(k, int64(getU64(t.Mem.Raw(a+8, 8)))-1)
			}
			count++
		}
	}
	return count
}

// RangeScanPattern describes a range scan covering `frac` of the keys:
// one random access per level for the descent, concurrent-free, then a
// sequential traversal of the qualifying fraction of the leaf region.
func (t *BTree) RangeScanPattern(frac float64) pattern.Pattern {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	seq := pattern.Seq{}
	for _, lr := range t.Levels[:len(t.Levels)-1] {
		seq = append(seq, pattern.RAcc{R: lr, Count: 1})
	}
	leaf := t.Levels[len(t.Levels)-1]
	n := int64(float64(leaf.N)*frac + 0.5)
	if n < 1 {
		n = 1
	}
	part := region.New(leaf.Name+"_range", n, leaf.W)
	part.Parent = leaf
	seq = append(seq, pattern.STrav{R: part})
	return seq
}

// IndexNestedLoopJoin probes every key of u through the tree (built
// over v's sorted key column) and appends matching u-tuples to out,
// returning the match count.
func IndexNestedLoopJoin(u *Table, idx *BTree, out *Table) int64 {
	var o int64
	n := u.N()
	for i := int64(0); i < n; i++ {
		if row := idx.Lookup(u.Key(i)); row >= 0 {
			out.CopyTuple(o, u, i)
			o++
		}
	}
	return o
}

// IndexNestedLoopJoinPattern is s_trav(U) ⊙ ⊙_lvl r_acc(|U|, L_lvl) ⊙
// s_trav(W).
func IndexNestedLoopJoinPattern(u *region.Region, idx *BTree, w *region.Region) pattern.Pattern {
	conc := pattern.Conc{pattern.STrav{R: u}}
	for _, lr := range idx.Levels {
		conc = append(conc, pattern.RAcc{R: lr, Count: u.N})
	}
	conc = append(conc, pattern.STrav{R: w})
	return conc
}
