// Package vmem provides a simulated flat virtual address space for the
// database engine to run in. Every load and store goes through an access
// hook, which lets a cache simulator (internal/cachesim) observe the
// exact address trace an algorithm generates — playing the role the MIPS
// R10000 hardware event counters play in the paper's Section 6
// evaluation.
//
// The address space is a single contiguous byte array with a bump
// allocator. Addresses are plain offsets; address 0 is valid. Allocations
// can be given an alignment so experiments can control where a region
// starts within a cache line (the paper's Figure 4/5 alignment study).
package vmem

import (
	"encoding/binary"
	"fmt"
)

// Addr is a simulated virtual address (a byte offset into the space).
type Addr int64

// Access describes one memory access for observers.
type Access struct {
	Addr  Addr
	Size  int64
	Write bool
}

// Observer receives every access performed on a Memory. Implementations
// must not retain the Access value beyond the call.
type Observer interface {
	OnAccess(Access)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Access)

// OnAccess calls f(a).
func (f ObserverFunc) OnAccess(a Access) { f(a) }

// Memory is a simulated flat memory with a bump allocator.
// The zero value is unusable; use New.
type Memory struct {
	data     []byte
	brk      Addr
	observer Observer
	accesses uint64
}

// New creates a memory of the given size in bytes.
func New(size int64) *Memory {
	if size <= 0 {
		panic(fmt.Sprintf("vmem: non-positive size %d", size))
	}
	return &Memory{data: make([]byte, size)}
}

// SetObserver installs the access observer (nil disables observation).
func (m *Memory) SetObserver(o Observer) { m.observer = o }

// Observer returns the installed observer, or nil.
func (m *Memory) Observer() Observer { return m.observer }

// Size returns the total size of the address space in bytes.
func (m *Memory) Size() int64 { return int64(len(m.data)) }

// Allocated returns the number of bytes handed out so far.
func (m *Memory) Allocated() int64 { return int64(m.brk) }

// Accesses returns the number of observed accesses performed so far.
func (m *Memory) Accesses() uint64 { return m.accesses }

// Alloc reserves size bytes aligned to align (a power of two, or <=1 for
// byte alignment) and returns the base address.
func (m *Memory) Alloc(size, align int64) Addr {
	if size < 0 {
		panic(fmt.Sprintf("vmem: negative allocation %d", size))
	}
	base := m.brk
	if align > 1 {
		if align&(align-1) != 0 {
			panic(fmt.Sprintf("vmem: alignment %d not a power of two", align))
		}
		base = (base + Addr(align) - 1) &^ (Addr(align) - 1)
	}
	if int64(base)+size > int64(len(m.data)) {
		panic(fmt.Sprintf("vmem: out of memory: need %d at %d, have %d", size, base, len(m.data)))
	}
	m.brk = base + Addr(size)
	return base
}

// AllocOffset reserves size bytes such that the returned address is
// congruent to offset modulo align. It is used by alignment experiments
// to place a region at a chosen position within a cache line.
func (m *Memory) AllocOffset(size, align, offset int64) Addr {
	if align <= 1 {
		return m.Alloc(size, 1)
	}
	base := m.Alloc(size+align, align)
	return base + Addr(offset%align)
}

// Reset discards all allocations and zeroes the space. Observers stay
// installed; access counters are cleared.
func (m *Memory) Reset() {
	for i := range m.data {
		m.data[i] = 0
	}
	m.brk = 0
	m.accesses = 0
}

func (m *Memory) observe(addr Addr, size int64, write bool) {
	m.accesses++
	if m.observer != nil {
		m.observer.OnAccess(Access{Addr: addr, Size: size, Write: write})
	}
}

func (m *Memory) check(addr Addr, size int64) {
	if addr < 0 || int64(addr)+size > int64(len(m.data)) {
		panic(fmt.Sprintf("vmem: access [%d,%d) out of bounds (size %d)", addr, int64(addr)+size, len(m.data)))
	}
}

// Load8 reads one byte.
func (m *Memory) Load8(addr Addr) byte {
	m.check(addr, 1)
	m.observe(addr, 1, false)
	return m.data[addr]
}

// Store8 writes one byte.
func (m *Memory) Store8(addr Addr, v byte) {
	m.check(addr, 1)
	m.observe(addr, 1, true)
	m.data[addr] = v
}

// Load32 reads a little-endian uint32.
func (m *Memory) Load32(addr Addr) uint32 {
	m.check(addr, 4)
	m.observe(addr, 4, false)
	return binary.LittleEndian.Uint32(m.data[addr:])
}

// Store32 writes a little-endian uint32.
func (m *Memory) Store32(addr Addr, v uint32) {
	m.check(addr, 4)
	m.observe(addr, 4, true)
	binary.LittleEndian.PutUint32(m.data[addr:], v)
}

// Load64 reads a little-endian uint64.
func (m *Memory) Load64(addr Addr) uint64 {
	m.check(addr, 8)
	m.observe(addr, 8, false)
	return binary.LittleEndian.Uint64(m.data[addr:])
}

// Store64 writes a little-endian uint64.
func (m *Memory) Store64(addr Addr, v uint64) {
	m.check(addr, 8)
	m.observe(addr, 8, true)
	binary.LittleEndian.PutUint64(m.data[addr:], v)
}

// LoadBytes reads size bytes starting at addr into dst (one observed
// access covering the whole range, as a wide load).
func (m *Memory) LoadBytes(addr Addr, dst []byte) {
	size := int64(len(dst))
	m.check(addr, size)
	m.observe(addr, size, false)
	copy(dst, m.data[addr:int64(addr)+size])
}

// StoreBytes writes src starting at addr (one observed access).
func (m *Memory) StoreBytes(addr Addr, src []byte) {
	size := int64(len(src))
	m.check(addr, size)
	m.observe(addr, size, true)
	copy(m.data[addr:int64(addr)+size], src)
}

// Touch observes a read of size bytes at addr without copying data. It is
// what pattern drivers use when only the access trace matters.
func (m *Memory) Touch(addr Addr, size int64) {
	m.check(addr, size)
	m.observe(addr, size, false)
}

// TouchWrite observes a write of size bytes at addr without copying data.
func (m *Memory) TouchWrite(addr Addr, size int64) {
	m.check(addr, size)
	m.observe(addr, size, true)
}

// Raw exposes the backing bytes for checked non-observed bulk setup
// (e.g. workload generation before an experiment starts measuring).
func (m *Memory) Raw(addr Addr, size int64) []byte {
	m.check(addr, size)
	return m.data[addr : int64(addr)+size]
}
