package vmem

import "testing"

func TestAllocAlignment(t *testing.T) {
	m := New(1 << 16)
	a := m.Alloc(10, 1)
	if a != 0 {
		t.Errorf("first alloc at %d, want 0", a)
	}
	b := m.Alloc(8, 64)
	if b%64 != 0 {
		t.Errorf("aligned alloc at %d, want multiple of 64", b)
	}
	if b < a+10 {
		t.Errorf("allocations overlap: %d after [%d,%d)", b, a, a+10)
	}
}

func TestAllocOffset(t *testing.T) {
	m := New(1 << 16)
	for _, off := range []int64{0, 1, 7, 31, 63} {
		a := m.AllocOffset(100, 64, off)
		if int64(a)%64 != off {
			t.Errorf("AllocOffset(...,%d): base %d mod 64 = %d", off, a, int64(a)%64)
		}
	}
}

func TestAllocPanics(t *testing.T) {
	m := New(128)
	assertPanics(t, "oversized", func() { m.Alloc(256, 1) })
	assertPanics(t, "negative", func() { m.Alloc(-1, 1) })
	assertPanics(t, "bad align", func() { m.Alloc(8, 3) })
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(1 << 12)
	a := m.Alloc(64, 8)
	m.Store64(a, 0xdeadbeefcafef00d)
	if got := m.Load64(a); got != 0xdeadbeefcafef00d {
		t.Errorf("Load64 = %#x", got)
	}
	m.Store32(a+8, 0x01020304)
	if got := m.Load32(a + 8); got != 0x01020304 {
		t.Errorf("Load32 = %#x", got)
	}
	m.Store8(a+12, 0xab)
	if got := m.Load8(a + 12); got != 0xab {
		t.Errorf("Load8 = %#x", got)
	}
}

func TestLoadStoreBytes(t *testing.T) {
	m := New(1 << 12)
	a := m.Alloc(16, 1)
	src := []byte{1, 2, 3, 4, 5}
	m.StoreBytes(a, src)
	dst := make([]byte, 5)
	m.LoadBytes(a, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d: got %d want %d", i, dst[i], src[i])
		}
	}
}

func TestObserverSeesAccesses(t *testing.T) {
	m := New(1 << 12)
	var log []Access
	m.SetObserver(ObserverFunc(func(a Access) { log = append(log, a) }))
	a := m.Alloc(64, 8)
	m.Store64(a, 1)
	m.Load64(a)
	m.Touch(a+16, 4)
	m.TouchWrite(a+32, 8)
	want := []Access{
		{Addr: a, Size: 8, Write: true},
		{Addr: a, Size: 8, Write: false},
		{Addr: a + 16, Size: 4, Write: false},
		{Addr: a + 32, Size: 8, Write: true},
	}
	if len(log) != len(want) {
		t.Fatalf("observed %d accesses, want %d", len(log), len(want))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("access %d = %+v, want %+v", i, log[i], want[i])
		}
	}
	if m.Accesses() != uint64(len(want)) {
		t.Errorf("Accesses() = %d, want %d", m.Accesses(), len(want))
	}
}

func TestRawIsUnobserved(t *testing.T) {
	m := New(1 << 12)
	count := 0
	m.SetObserver(ObserverFunc(func(Access) { count++ }))
	a := m.Alloc(16, 1)
	raw := m.Raw(a, 16)
	raw[0] = 42
	if count != 0 {
		t.Errorf("Raw access was observed (%d events)", count)
	}
	if m.Load8(a) != 42 {
		t.Error("Raw write not visible to Load8")
	}
}

func TestBoundsChecks(t *testing.T) {
	m := New(64)
	assertPanics(t, "load past end", func() { m.Load64(60) })
	assertPanics(t, "negative addr", func() { m.Load8(-1) })
	assertPanics(t, "touch past end", func() { m.Touch(0, 65) })
}

func TestReset(t *testing.T) {
	m := New(128)
	a := m.Alloc(8, 1)
	m.Store64(a, 7)
	m.Reset()
	if m.Allocated() != 0 {
		t.Errorf("Allocated() = %d after Reset", m.Allocated())
	}
	if m.Accesses() != 0 {
		t.Errorf("Accesses() = %d after Reset", m.Accesses())
	}
	b := m.Alloc(8, 1)
	if m.Load64(b) != 0 {
		t.Error("memory not zeroed by Reset")
	}
}

func TestSizeAndAllocated(t *testing.T) {
	m := New(256)
	if m.Size() != 256 {
		t.Errorf("Size() = %d", m.Size())
	}
	m.Alloc(100, 1)
	if m.Allocated() != 100 {
		t.Errorf("Allocated() = %d, want 100", m.Allocated())
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
