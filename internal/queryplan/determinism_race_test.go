//go:build race

package queryplan_test

// Under the race detector every rep runs an order of magnitude slower
// and the extra repeats add no race coverage beyond the first few, so
// the race build trades repetition for wall-clock. The full 50-rep
// bit-identity check runs in the standard (non-race) CI job.
func init() { determinismReps = 3 }
