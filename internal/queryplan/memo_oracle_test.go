package queryplan

// A test-only port of the retired map-memo DP search (the pointer-based
// implementation the arena memo replaced; see git history of dp.go).
// The oracle keeps the old shape — heap-allocated *Plan nodes per
// candidate, per-subset map-free buckets of scored structs, a global
// insertion counter, join nodes drawn from the exhaustive enumerator's
// joinNodes — but prices every candidate with the CURRENT bounder, so
// its bounds match the arena engine bit-for-bit and any divergence is a
// memo-mechanics bug (insertion order, compaction, ranking, child
// references), not a costing difference.
//
// TestDPMatchesMapMemoOracle drives both engines over randomly
// generated ≤8-relation join graphs across top-k, left-deep and
// parallelism settings and requires identical ordered plan lists.

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/hardware"
)

// oracleScored is one memoized subplan with its context-free bound and
// the global insertion number that breaks bound ties.
type oracleScored struct {
	plan  *Plan
	bound float64
	seq   int
}

// oracleEntry holds one subset's survivors split by output order.
type oracleEntry struct {
	unsorted, sorted []oracleScored
}

func (m *oracleEntry) empty() bool { return len(m.unsorted) == 0 && len(m.sorted) == 0 }

// ranked returns the entry's subplans merged across both order classes,
// cheapest (bound, seq) first.
func (m *oracleEntry) ranked() []oracleScored {
	all := make([]oracleScored, 0, len(m.unsorted)+len(m.sorted))
	all = append(all, m.unsorted...)
	all = append(all, m.sorted...)
	sort.Slice(all, func(i, j int) bool {
		if all[i].bound != all[j].bound {
			return all[i].bound < all[j].bound
		}
		return all[i].seq < all[j].seq
	})
	return all
}

// oracleDP carries one oracle run: the retired engine's state, with the
// bounder swapped in as the pricing primitive.
type oracleDP struct {
	e        *enumerator
	b        *bounder
	topK     int
	leftDeep bool
	adj      []uint32
	memo     []oracleEntry
	seq      int
}

// oracleSearch mirrors the retired dpSearch: memo built in numeric
// subset order (so every proper subset precedes its supersets), then
// the full set's ranked survivors expanded with the shared
// aggregate/distinct/order-by variants.
func oracleSearch(q Query, opts Options, so SearchOptions, hier *hardware.Hierarchy) ([]*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	opts = opts.normalized()
	e := enumerator{q: q, opts: opts}
	n := len(q.Relations)

	d := &oracleDP{
		e:        &e,
		b:        newBounder(hier, opts.PruneBytes, opts.CPU),
		topK:     so.topK(),
		leftDeep: so.LeftDeepOnly,
		adj:      adjacency(q),
		memo:     make([]oracleEntry, 1<<n),
	}
	for i := 0; i < n; i++ {
		leaf := e.scanPlan(i)
		b, err := d.b.leafBound(leaf)
		if err != nil {
			return nil, err
		}
		d.insert(uint32(1)<<i, oracleScored{plan: leaf, bound: b, seq: d.next()})
	}
	full := uint32(1)<<n - 1
	for s := uint32(3); s <= full; s++ {
		if bits.OnesCount32(s) < 2 {
			continue
		}
		if err := d.buildSubset(s); err != nil {
			return nil, err
		}
	}

	ranked := d.memo[full].ranked()
	plans := make([]*Plan, len(ranked))
	for i, r := range ranked {
		plans[i] = r.plan
	}
	if q.GroupBy > 0 {
		plans = e.aggVariants(plans, OpAggregate, q.GroupBy)
	}
	if q.Distinct > 0 {
		plans = e.aggVariants(plans, OpDistinct, q.Distinct)
	}
	if q.SortBy {
		plans = e.sortVariants(plans)
	}
	if so.TopK >= 0 && len(plans) > opts.MaxPlans {
		return nil, fmt.Errorf("oracle: %d plans exceed the cap of %d", len(plans), opts.MaxPlans)
	}
	return plans, nil
}

func (d *oracleDP) next() int {
	d.seq++
	return d.seq
}

func (d *oracleDP) insert(s uint32, sc oracleScored) {
	entry := &d.memo[s]
	bucket := &entry.unsorted
	if sc.plan.Out.Sorted {
		bucket = &entry.sorted
	}
	*bucket = append(*bucket, sc)
	if d.topK < math.MaxInt/2 && len(*bucket) >= 2*d.topK+16 {
		*bucket = oracleCut(*bucket, d.topK)
	}
}

func oracleCut(b []oracleScored, k int) []oracleScored {
	sort.SliceStable(b, func(i, j int) bool { return b[i].bound < b[j].bound })
	if len(b) > k {
		b = b[:k]
	}
	return b
}

func (d *oracleDP) buildSubset(s uint32) error {
	for _, s1 := range oracleSplits(s) {
		s2 := s ^ s1
		if d.leftDeep && bits.OnesCount32(s2) != 1 {
			continue
		}
		e1, e2 := &d.memo[s1], &d.memo[s2]
		if e1.empty() || e2.empty() || !d.crossEdge(s1, s2) {
			continue
		}
		for _, p1 := range e1.ranked() {
			for _, p2 := range e2.ranked() {
				out := d.pairOutput(p1.plan, p2.plan, s1, s2, s)
				for _, node := range d.e.joinNodes(p1.plan, p2.plan, out) {
					op, err := d.b.joinBound(opKey{
						alg: node.Algorithm, fanout: node.Fanout,
						n1: p1.plan.Out.Tuples, w1: p1.plan.Out.Width, sorted1: p1.plan.Out.Sorted,
						n2: p2.plan.Out.Tuples, w2: p2.plan.Out.Width, sorted2: p2.plan.Out.Sorted,
						nOut: node.Out.Tuples, wOut: node.Out.Width,
					})
					if err != nil {
						return err
					}
					d.insert(s, oracleScored{plan: node, bound: p1.bound + p2.bound + op, seq: d.next()})
				}
			}
		}
	}
	entry := &d.memo[s]
	if d.topK < math.MaxInt/2 {
		entry.unsorted = oracleCut(entry.unsorted, d.topK)
		entry.sorted = oracleCut(entry.sorted, d.topK)
	}
	return nil
}

// oracleSplits enumerates the proper non-empty subsets of s ascending.
func oracleSplits(s uint32) []uint32 {
	subs := make([]uint32, 0, 16)
	for s1 := (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s {
		subs = append(subs, s1)
	}
	for i, j := 0, len(subs)-1; i < j; i, j = i+1, j-1 {
		subs[i], subs[j] = subs[j], subs[i]
	}
	return subs
}

func (d *oracleDP) crossEdge(s1, s2 uint32) bool {
	for f := s1; f != 0; f &= f - 1 {
		if d.adj[bits.TrailingZeros32(f)]&s2 != 0 {
			return true
		}
	}
	return false
}

// pairOutput reproduces the retired engine's join-output estimate,
// including the subset-based T<size>.<mask> naming that the arena
// engine's materializeNode re-creates.
func (d *oracleDP) pairOutput(p1, p2 *Plan, s1, s2, s uint32) Relation {
	card := float64(p1.Out.Tuples) * float64(p2.Out.Tuples)
	for _, edge := range d.e.q.Joins {
		l, r := uint32(1)<<edge.Left, uint32(1)<<edge.Right
		if (l&s1 != 0 && r&s2 != 0) || (l&s2 != 0 && r&s1 != 0) {
			card *= edge.Selectivity
		}
	}
	width := p1.Out.Width + p2.Out.Width - engine.KeyWidth
	if width < engine.KeyWidth {
		width = engine.KeyWidth
	}
	return Relation{
		Name:   fmt.Sprintf("T%d.%x", bits.OnesCount32(s)-1, s),
		Tuples: clampTuples(card),
		Width:  width,
	}
}

// planFingerprint renders a plan tree with every field the memo decides
// — stronger than Signature, which elides output geometry and names.
func planFingerprint(p *Plan) string {
	var b strings.Builder
	var walk func(p *Plan)
	walk = func(p *Plan) {
		fmt.Fprintf(&b, "%d:%s:%d:%s:%g:%d:%d:{%s,%d,%d,%t}(",
			p.Kind, p.Algorithm, p.Fanout, p.Rel.Name, p.Filter, p.Proj, p.Groups,
			p.Out.Name, p.Out.Tuples, p.Out.Width, p.Out.Sorted)
		for _, c := range p.Children {
			walk(c)
		}
		b.WriteString(")")
	}
	walk(p)
	return b.String()
}

// randomJoinQuery draws a connected join graph over 2–8 relations with
// varied cardinalities, widths, sort flags, filters, projections and an
// occasional aggregate / distinct / order-by.
func randomJoinQuery(rng *rand.Rand) Query {
	n := 2 + rng.Intn(7)
	rels := make([]Relation, n)
	for i := range rels {
		rels[i] = Relation{
			Name:   fmt.Sprintf("R%d", i),
			Tuples: int64(50 * math.Pow(10, rng.Float64()*2)), // 50 .. 5k
			Width:  engine.KeyWidth * int64(1+rng.Intn(4)),
			Sorted: rng.Intn(3) == 0,
		}
	}
	q := Query{Relations: rels}
	seen := map[[2]int]bool{}
	addEdge := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if a == b || seen[[2]int{a, b}] {
			return
		}
		seen[[2]int{a, b}] = true
		// FK-style selectivity, scaled by the larger input: keeps every
		// intermediate near its inputs' size. Uniform (1e-4, 1]
		// selectivities let an 8-relation chain of near-1 edges compound
		// into ~1e20-tuple intermediates, whose sort lowerings recurse to
		// the prune bound and blow both the test timeout and memory.
		maxN := rels[a].Tuples
		if rels[b].Tuples > maxN {
			maxN = rels[b].Tuples
		}
		q.Joins = append(q.Joins, JoinEdge{
			Left: a, Right: b,
			Selectivity: math.Pow(10, -rng.Float64()) / float64(maxN),
		})
	}
	for i := 1; i < n; i++ {
		addEdge(rng.Intn(i), i) // spanning tree: always connected
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.1 {
				addEdge(i, j)
			}
		}
	}
	if rng.Intn(2) == 0 {
		q.Filters = make([]float64, n)
		for i := range q.Filters {
			if rng.Intn(3) == 0 {
				q.Filters[i] = 0.05 + 0.9*rng.Float64()
			}
		}
	}
	if rng.Intn(3) == 0 {
		q.Projections = make([]int64, n)
		for i := range q.Projections {
			if rels[i].Width > engine.KeyWidth && rng.Intn(3) == 0 {
				q.Projections[i] = engine.KeyWidth
			}
		}
	}
	switch rng.Intn(5) {
	case 0:
		q.GroupBy = int64(1 + rng.Intn(500))
	case 1:
		q.Distinct = int64(1 + rng.Intn(500))
	case 2:
		q.SortBy = true
	}
	return q
}

// TestDPMatchesMapMemoOracle is the arena-memo regression property: on
// random join graphs the arena/dense-memo engine must return exactly
// the plan lists of the retired map-memo implementation — same plans,
// same order, same geometry — across top-k, left-deep and parallelism
// settings. Both engines share the bounder, so this isolates the memo
// mechanics (slab storage, slot references, per-subset tie-breaking,
// stratum scheduling) as the only thing under test.
func TestDPMatchesMapMemoOracle(t *testing.T) {
	h := hardware.Origin2000()
	prune := h.Levels[0].Capacity
	for _, l := range h.Levels {
		if l.Capacity < prune {
			prune = l.Capacity
		}
	}
	queries := 12
	if testing.Short() {
		queries = 4
	}
	rng := rand.New(rand.NewSource(20260808))
	for qi := 0; qi < queries; qi++ {
		q := randomJoinQuery(rng)
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", qi, err)
		}
		configs := []SearchOptions{
			{TopK: 1},
			{TopK: 3, Parallelism: 8},
			{TopK: 2, LeftDeepOnly: true},
		}
		// Unpruned runs explode combinatorially; keep them to small graphs.
		if len(q.Relations) <= 5 {
			configs = append(configs,
				SearchOptions{TopK: -1, Parallelism: 2},
				SearchOptions{TopK: -1, LeftDeepOnly: true})
		}
		for ci, so := range configs {
			// Two fan-outs keep multiple partitioned-hash-join candidates
			// per pair in the inventory without paying a cold m=256 IR
			// evaluation for every distinct random geometry — the memo
			// mechanics under test do not depend on the fan-out inventory.
			opts := Options{PruneBytes: prune, Fanouts: []int64{16, 64}, Search: so}
			got, err := Search(q, opts, h)
			if err != nil {
				t.Fatalf("query %d config %d: arena search: %v", qi, ci, err)
			}
			want, err := oracleSearch(q, opts, so, h)
			if err != nil {
				t.Fatalf("query %d config %d: oracle search: %v", qi, ci, err)
			}
			if len(got) != len(want) {
				t.Errorf("query %d config %d (topK=%d leftdeep=%t par=%d): %d plans, oracle %d",
					qi, ci, so.TopK, so.LeftDeepOnly, so.Parallelism, len(got), len(want))
				continue
			}
			for i := range got {
				g, w := planFingerprint(got[i]), planFingerprint(want[i])
				if g != w {
					t.Errorf("query %d config %d plan %d diverged:\n  arena:  %s\n  oracle: %s",
						qi, ci, i, g, w)
					break
				}
			}
		}
	}
}
