package queryplan

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/costir"
	"repro/internal/hardware"
)

// permuteQuery relabels q's relations by perm (new index i holds old
// relation perm[i]) and rewrites every index-carrying field. With
// rename set, relations are also renamed to fresh names — the
// fingerprint must not care either way.
func permuteQuery(q Query, perm []int, rename bool) Query {
	inv := make([]int, len(perm))
	for newIdx, oldIdx := range perm {
		inv[oldIdx] = newIdx
	}
	out := Query{GroupBy: q.GroupBy, Distinct: q.Distinct, SortBy: q.SortBy}
	out.Relations = make([]Relation, len(q.Relations))
	for newIdx, oldIdx := range perm {
		r := q.Relations[oldIdx]
		if rename {
			r.Name = "perm" + string(rune('A'+newIdx%26)) + r.Name
		}
		out.Relations[newIdx] = r
	}
	if q.Filters != nil {
		out.Filters = make([]float64, len(q.Filters))
		for newIdx, oldIdx := range perm {
			out.Filters[newIdx] = q.Filters[oldIdx]
		}
	}
	if q.Projections != nil {
		out.Projections = make([]int64, len(q.Projections))
		for newIdx, oldIdx := range perm {
			out.Projections[newIdx] = q.Projections[oldIdx]
		}
	}
	for _, e := range q.Joins {
		out.Joins = append(out.Joins, JoinEdge{Left: inv[e.Left], Right: inv[e.Right], Selectivity: e.Selectivity})
	}
	return out
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestFingerprintPermutationInvariant is the tentpole property test:
// for every catalog scenario and a pile of random permutations (with
// and without renaming), the fingerprint's shape key AND canonical
// parameter vector are identical — inline queries that differ only in
// relation naming or ordering map to one cache entry.
func TestFingerprintPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sc := range Catalog() {
		base, err := sc.Query.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if len(base.Perm) != len(sc.Query.Relations) {
			t.Fatalf("%s: perm covers %d of %d relations", sc.Name, len(base.Perm), len(sc.Query.Relations))
		}
		for trial := 0; trial < 20; trial++ {
			perm := rng.Perm(len(sc.Query.Relations))
			pq := permuteQuery(sc.Query, perm, trial%2 == 0)
			fp, err := pq.Fingerprint()
			if err != nil {
				t.Fatalf("%s trial %d: %v", sc.Name, trial, err)
			}
			if fp.Key != base.Key || fp.Canonical != base.Canonical {
				t.Fatalf("%s trial %d (perm %v): shape key diverged\n  base: %s\n  perm: %s",
					sc.Name, trial, perm, base.Canonical, fp.Canonical)
			}
			if !equalF64(fp.Params, base.Params) {
				t.Fatalf("%s trial %d (perm %v): canonical params diverged\n  base: %v\n  perm: %v",
					sc.Name, trial, perm, base.Params, fp.Params)
			}
		}
	}
}

// TestFingerprintCatalogCollisions locks the catalog's shape-class
// partition: exactly the pairs that really are isomorphic shapes
// collide (they differ only in parameters), and every other pair is
// distinct.
func TestFingerprintCatalogCollisions(t *testing.T) {
	sameShape := map[string]string{
		// 1 relation + distinct, no filters: same shape, different
		// distinct targets (a parameter).
		"distinct-sparse": "distinct-dense",
		// 2 unsorted relations, 1 edge, no filters: same shape,
		// different cardinalities and selectivity.
		"join2-large": "join2-fk",
	}
	keys := map[string]string{}
	for _, sc := range Catalog() {
		fp, err := sc.Query.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		keys[sc.Name] = fp.Key
	}
	for _, sc := range Catalog() {
		for _, other := range Catalog() {
			if sc.Name >= other.Name {
				continue
			}
			want := sameShape[sc.Name] == other.Name || sameShape[other.Name] == sc.Name
			got := keys[sc.Name] == keys[other.Name]
			if got != want {
				t.Errorf("%s vs %s: shape keys equal=%t, want %t", sc.Name, other.Name, got, want)
			}
		}
	}
}

// TestFingerprintDriftKeepsShape: scaling cardinalities and
// selectivities (parameter drift) must keep the shape key and change
// only the parameter vector — the precondition for the plan cache's
// re-validation path.
func TestFingerprintDriftKeepsShape(t *testing.T) {
	for _, sc := range Catalog() {
		base, err := sc.Query.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		drifted := sc.Query
		drifted.Relations = append([]Relation(nil), sc.Query.Relations...)
		for i := range drifted.Relations {
			drifted.Relations[i].Tuples = drifted.Relations[i].Tuples*13/10 + 1
		}
		drifted.Joins = append([]JoinEdge(nil), sc.Query.Joins...)
		for i := range drifted.Joins {
			drifted.Joins[i].Selectivity *= 0.9
		}
		fp, err := drifted.Fingerprint()
		if err != nil {
			t.Fatalf("%s drifted: %v", sc.Name, err)
		}
		if fp.Key != base.Key {
			t.Errorf("%s: drift re-keyed the shape\n  base: %s\n  drift: %s", sc.Name, base.Canonical, fp.Canonical)
		}
		if equalF64(fp.Params, base.Params) {
			t.Errorf("%s: drifted params compare equal to the base", sc.Name)
		}
	}
}

// TestFingerprintStructureChangesKey: structural edits — adding a
// filter, toggling sortedness, adding an edge — must change the key.
func TestFingerprintStructureChangesKey(t *testing.T) {
	q := Query{
		Relations: []Relation{
			{Name: "A", Tuples: 1000, Width: 16},
			{Name: "B", Tuples: 2000, Width: 16},
			{Name: "C", Tuples: 4000, Width: 16},
		},
		Joins: []JoinEdge{
			{Left: 0, Right: 1, Selectivity: 1e-3},
			{Left: 1, Right: 2, Selectivity: 1e-3},
		},
	}
	base, err := q.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	edit := func(name string, f func(Query) Query) {
		fp, err := f(q).Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp.Key == base.Key {
			t.Errorf("%s: structural edit did not change the shape key", name)
		}
	}
	edit("filter", func(q Query) Query {
		q.Filters = []float64{0.5, 0, 0}
		return q
	})
	edit("sorted", func(q Query) Query {
		q.Relations = append([]Relation(nil), q.Relations...)
		q.Relations[0].Sorted = true
		return q
	})
	edit("extra edge", func(q Query) Query {
		q.Joins = append(append([]JoinEdge(nil), q.Joins...), JoinEdge{Left: 0, Right: 2, Selectivity: 0.5})
		return q
	})
	edit("group-by", func(q Query) Query {
		q.GroupBy = 10
		return q
	})
	edit("sort-by", func(q Query) Query {
		q.SortBy = true
		return q
	})
	// Distinct vs group-by of the same target count: different shape.
	ga := q
	ga.GroupBy = 10
	gb := q
	gb.Distinct = 10
	fa, err := ga.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := gb.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa.Key == fb.Key {
		t.Error("group-by and distinct share a shape key")
	}
}

// TestFingerprintEdgeParamsCanonical: automorphic structures whose
// edge selectivities differ must still fingerprint
// permutation-invariantly — the parameter vector breaks the tie, and
// the min-leaf selection must pick the same labeling from any input
// order. A star with parameter-identical leaves but distinct edge
// selectivities is the adversarial case (the leaves are structurally
// and parameter-equivalent until edges are considered).
func TestFingerprintEdgeParamsCanonical(t *testing.T) {
	mk := func(perm []int, sels []float64) Query {
		q := Query{Relations: []Relation{{Name: "hub", Tuples: 100000, Width: 16}}}
		for i := 0; i < len(sels); i++ {
			q.Relations = append(q.Relations, Relation{Name: "leaf" + string(rune('a'+i)), Tuples: 5000, Width: 16})
			q.Joins = append(q.Joins, JoinEdge{Left: 0, Right: i + 1, Selectivity: sels[i]})
		}
		full := make([]int, 0, len(perm)+1)
		full = append(full, 0)
		for _, p := range perm {
			full = append(full, p+1)
		}
		return permuteQuery(q, full, true)
	}
	sels := []float64{3e-4, 1e-4, 2e-4, 5e-4}
	base, err := mk([]int{0, 1, 2, 3}, sels).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		fp, err := mk(rng.Perm(len(sels)), sels).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp.Key != base.Key || !equalF64(fp.Params, base.Params) {
			t.Fatalf("trial %d: star with distinct edge selectivities not canonical:\n  base: %v\n  perm: %v",
				trial, base.Params, fp.Params)
		}
	}
}

// lowerKey returns the canonical IR form + CPU estimate of a plan —
// equality implies bit-identical cost on every hierarchy.
func lowerKey(t *testing.T, p *Plan, prune int64) (string, float64) {
	t.Helper()
	pat, cpuNS, err := p.Lower(DefaultCPU(), prune)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := costir.CanonicalKey(pat)
	if err != nil {
		t.Fatal(err)
	}
	return canon, cpuNS
}

// TestRecipeBindRoundTrip: extracting a recipe from every searched
// plan and binding it back to the same query must reproduce the plan
// exactly — same signature, same canonical lowered pattern, same CPU
// estimate — for both search strategies.
func TestRecipeBindRoundTrip(t *testing.T) {
	h := hardware.SmallTest()
	prune := int64(1 << 62)
	for _, l := range h.Levels {
		if l.Capacity < prune {
			prune = l.Capacity
		}
	}
	for _, name := range []string{"join2-fk", "join3-chain-q3", "join4-chain", "join5-cycle", "groupby-few", "sort-unsorted"} {
		sc, ok := ScenarioByName(name)
		if !ok {
			t.Fatalf("unknown scenario %s", name)
		}
		fp, err := sc.Query.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		plans, err := Search(sc.Query, Options{}, h)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, p := range plans {
			r, err := NewRecipe(p, sc.Query, fp)
			if err != nil {
				t.Fatalf("%s %s: extract: %v", name, p.Signature(), err)
			}
			bound, err := r.Bind(sc.Query, fp)
			if err != nil {
				t.Fatalf("%s %s: bind: %v", name, p.Signature(), err)
			}
			if bound.Signature() != p.Signature() {
				t.Fatalf("%s: bound signature %s != %s", name, bound.Signature(), p.Signature())
			}
			wantCanon, wantCPU := lowerKey(t, p, prune)
			gotCanon, gotCPU := lowerKey(t, bound, prune)
			if gotCanon != wantCanon || math.Float64bits(gotCPU) != math.Float64bits(wantCPU) {
				t.Fatalf("%s %s: bound plan does not lower identically", name, p.Signature())
			}
		}
	}
}

// TestRecipeBindPermuted: a recipe extracted from one query binds to a
// permuted+renamed isomorph and prices bit-identically to searching
// that isomorph directly (winner vs winner).
func TestRecipeBindPermuted(t *testing.T) {
	h := hardware.SmallTest()
	sc, _ := ScenarioByName("join4-chain")
	fp, err := sc.Query.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	plans, err := Search(sc.Query, Options{}, h)
	if err != nil {
		t.Fatal(err)
	}
	winner := plans[0]
	recipe, err := NewRecipe(winner, sc.Query, fp)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		pq := permuteQuery(sc.Query, rng.Perm(len(sc.Query.Relations)), true)
		pfp, err := pq.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if pfp.Key != fp.Key {
			t.Fatalf("trial %d: isomorph re-keyed", trial)
		}
		bound, err := recipe.Bind(pq, pfp)
		if err != nil {
			t.Fatalf("trial %d: bind: %v", trial, err)
		}
		pplans, err := Search(pq, Options{}, h)
		if err != nil {
			t.Fatal(err)
		}
		wantCanon, wantCPU := lowerKey(t, pplans[0], smallestCapacity(h))
		gotCanon, gotCPU := lowerKey(t, bound, smallestCapacity(h))
		if gotCanon != wantCanon || math.Float64bits(gotCPU) != math.Float64bits(wantCPU) {
			t.Fatalf("trial %d: bound winner does not match the isomorph's searched winner\n  bound:    %s\n  searched: %s",
				trial, bound.Signature(), pplans[0].Signature())
		}
	}
}

func smallestCapacity(h *hardware.Hierarchy) int64 {
	min := h.Levels[0].Capacity
	for _, l := range h.Levels {
		if l.Capacity < min {
			min = l.Capacity
		}
	}
	return min
}

// TestRecipeCoverageErrors: structurally broken recipes fail loudly at
// bind time instead of producing a wrong plan.
func TestRecipeCoverageErrors(t *testing.T) {
	sc, _ := ScenarioByName("join2-fk")
	fp, err := sc.Query.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	// A recipe scanning only one relation does not cover the query.
	if _, err := (&Recipe{Kind: OpScan, Pos: 0}).Bind(sc.Query, fp); err == nil {
		t.Error("partial-coverage recipe bound without error")
	}
	// Duplicated leaves overlap.
	dup := &Recipe{Kind: OpJoin, Algorithm: HashJoin, Children: []*Recipe{
		{Kind: OpScan, Pos: 0}, {Kind: OpScan, Pos: 0},
	}}
	if _, err := dup.Bind(sc.Query, fp); err == nil {
		t.Error("overlapping recipe bound without error")
	}
	// Scan position outside the query.
	far := &Recipe{Kind: OpScan, Pos: 9}
	if _, err := far.Bind(sc.Query, fp); err == nil {
		t.Error("out-of-range scan position bound without error")
	}
	// A grouping operator the query does not ask for.
	agg := &Recipe{Kind: OpAggregate, Algorithm: HashAggregate, Children: []*Recipe{
		{Kind: OpJoin, Algorithm: HashJoin, Children: []*Recipe{
			{Kind: OpScan, Pos: 0}, {Kind: OpScan, Pos: 1},
		}},
	}}
	if _, err := agg.Bind(sc.Query, fp); err == nil {
		t.Error("phantom grouping recipe bound without error")
	}
}

// TestFingerprintPermIsPermutation guards the Perm contract on random
// connected graphs: every relation index appears exactly once.
func TestFingerprintPermIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		q := randomConnectedQuery(rng, n)
		fp, err := q.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		for _, i := range fp.Perm {
			if i < 0 || i >= n {
				t.Fatalf("perm entry %d outside [0, %d)", i, n)
			}
			seen |= 1 << i
		}
		if seen != 1<<n-1 {
			t.Fatalf("perm %v is not a permutation of %d relations (%d set)", fp.Perm, n, bits.OnesCount(uint(seen)))
		}
	}
}

// randomConnectedQuery builds a random tree-plus-extra-edges join
// graph with varied parameters.
func randomConnectedQuery(rng *rand.Rand, n int) Query {
	q := Query{}
	for i := 0; i < n; i++ {
		q.Relations = append(q.Relations, Relation{
			Name:   "R" + string(rune('0'+i)),
			Tuples: int64(1000 * (1 + rng.Intn(50))),
			Width:  int64(8 * (1 + rng.Intn(4))),
			Sorted: rng.Intn(4) == 0,
		})
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		q.Joins = append(q.Joins, JoinEdge{Left: j, Right: i, Selectivity: 1 / float64(1+rng.Intn(10000))})
	}
	// Sprinkle extra edges (skip duplicates).
	have := map[[2]int]bool{}
	for _, e := range q.Joins {
		lo, hi := e.Left, e.Right
		if lo > hi {
			lo, hi = hi, lo
		}
		have[[2]int{lo, hi}] = true
	}
	for k := 0; k < n/2; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if have[[2]int{lo, hi}] {
			continue
		}
		have[[2]int{lo, hi}] = true
		q.Joins = append(q.Joins, JoinEdge{Left: a, Right: b, Selectivity: 1 / float64(1+rng.Intn(100))})
	}
	return q
}
