package queryplan_test

// The race suite drives the parallel DP memo through its most
// contended shapes — the largest catalog scenarios, a worker pool per
// stratum, several whole searches in flight at once sharing the
// process-global step cache — so `go test -race ./...` (the CI race
// matrix job) observes the memo's synchronization under real load, not
// just the single-threaded paths the rest of the suite mostly takes.

import (
	"sync"
	"testing"

	"repro/internal/hardware"
	"repro/internal/planner"
	"repro/internal/queryplan"
)

// raceScenarios are the catalog's largest join graphs — the deepest
// strata, the widest subsets-per-stratum fan-out.
var raceScenarios = []string{"join7-star", "join8-chain", "join10-star", "join12-chain"}

func TestDPParallelSearchRace(t *testing.T) {
	byName := make(map[string]queryplan.Scenario)
	for _, sc := range queryplan.Catalog() {
		byName[sc.Name] = sc
	}
	pl, err := planner.New(hardware.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, name := range raceScenarios {
		sc, ok := byName[name]
		if !ok {
			t.Fatalf("scenario %q missing from the catalog", name)
		}
		// Two concurrent searches per scenario: workers of independent
		// searches race on the shared step cache, workers within one
		// search race on its memo and bounder tables.
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(sc queryplan.Scenario) {
				defer wg.Done()
				plans, err := pl.QueryPlansSearch(sc.Query, planner.SearchOptions{Parallelism: 8})
				if err != nil {
					t.Errorf("%s: %v", sc.Name, err)
					return
				}
				if len(plans) == 0 {
					t.Errorf("%s: no plans", sc.Name)
				}
			}(sc)
		}
	}
	wg.Wait()
}
