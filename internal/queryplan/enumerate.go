package queryplan

import (
	"fmt"
	"math/bits"

	"repro/internal/engine"
)

// Options parameterize plan enumeration.
type Options struct {
	// CPU holds the per-tuple CPU cost constants; the zero value means
	// DefaultCPU.
	CPU CPUCosts
	// PruneBytes bounds quick-sort pattern recursion (pass the smallest
	// cache capacity; 0 forces full recursion — tests only).
	PruneBytes int64
	// Fanouts are the candidate partition counts for partitioned hash
	// joins; nil means DefaultFanouts.
	Fanouts []int64
	// NLJMaxInner enumerates a nested-loop join only when either input
	// has at most this many tuples (quadratic CPU makes larger inner
	// relations pointless); 0 means DefaultNLJMaxInner, negative
	// disables nested-loop candidates entirely.
	NLJMaxInner int64
	// MaxPlans caps the number of enumerated plans; exceeding it is an
	// error (never a silent truncation). 0 means DefaultMaxPlans.
	MaxPlans int
	// Search selects and tunes the plan-space search strategy. Only
	// Search (dp.go) honours it; Enumerate always runs the exhaustive
	// left-deep path.
	Search SearchOptions
}

// Enumeration defaults.
const (
	DefaultNLJMaxInner = 1024
	DefaultMaxPlans    = 4096
)

// DefaultFanouts mirrors the planner's partitioned-hash-join fan-outs.
func DefaultFanouts() []int64 { return []int64{16, 64, 256} }

func (o Options) normalized() Options {
	if o.CPU == (CPUCosts{}) {
		o.CPU = DefaultCPU()
	}
	if o.Fanouts == nil {
		o.Fanouts = DefaultFanouts()
	}
	if o.NLJMaxInner == 0 {
		o.NLJMaxInner = DefaultNLJMaxInner
	}
	if o.NLJMaxInner < 0 {
		o.NLJMaxInner = 0
	}
	if o.MaxPlans == 0 {
		o.MaxPlans = DefaultMaxPlans
	}
	return o
}

// Enumerate expands a query into its physical alternatives: every
// left-deep, cross-product-free join order over the join graph, every
// join-algorithm assignment (merge join when both inputs arrive sorted,
// sort-merge and hash joins always, partitioned hash joins per eligible
// fan-out, nested-loop joins for small inputs), and hash- vs sort-based
// variants of the query's aggregate or distinct. Plans arrive in a
// deterministic order; score them with internal/planner.ScoreOn.
//
// Enumerate is the exhaustive path: complete for small queries but
// factorial in the relation count, so larger join graphs trip the
// MaxPlans cap. Production callers go through Search, which defaults to
// the memoized DP search (dp.go) and keeps this enumerator available as
// the SearchExhaustive test oracle.
func Enumerate(q Query, opts Options) ([]*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	opts = opts.normalized()

	e := enumerator{q: q, opts: opts}
	leaves := make([]*Plan, len(q.Relations))
	for i := range q.Relations {
		leaves[i] = e.scanPlan(i)
	}

	var joined []*Plan
	if len(q.Relations) == 1 {
		joined = leaves
	} else {
		for i := range leaves {
			if err := e.extend(leaves[i], 1<<i, leaves, &joined); err != nil {
				return nil, err
			}
		}
	}

	plans := joined
	if q.GroupBy > 0 {
		plans = e.aggVariants(plans, OpAggregate, q.GroupBy)
	}
	if q.Distinct > 0 {
		plans = e.aggVariants(plans, OpDistinct, q.Distinct)
	}
	if q.SortBy {
		plans = e.sortVariants(plans)
	}
	if len(plans) > opts.MaxPlans {
		return nil, fmt.Errorf("queryplan: %d candidate plans exceed the cap of %d (shrink the query or raise Options.MaxPlans)",
			len(plans), opts.MaxPlans)
	}
	return plans, nil
}

type enumerator struct {
	q    Query
	opts Options
}

// scanPlan builds the leaf for relation i, folding in its filter and
// projection.
func (e *enumerator) scanPlan(i int) *Plan {
	rel := e.q.Relations[i]
	sel := e.q.filter(i)
	proj := e.q.projection(i)
	out := rel
	if sel < 1 || proj > 0 {
		width := rel.Width
		if proj > 0 {
			width = proj
		}
		if width < engine.KeyWidth {
			width = engine.KeyWidth
		}
		out = Relation{
			Name:   "σ" + rel.Name,
			Tuples: clampTuples(sel * float64(rel.Tuples)),
			Width:  width,
			Sorted: rel.Sorted, // a filter preserves the input order
		}
	}
	return &Plan{Kind: OpScan, Rel: rel, Filter: sel, Proj: proj, Out: out}
}

// extend grows a left-deep prefix by every connected relation and every
// algorithm choice, collecting complete plans into acc.
func (e *enumerator) extend(cur *Plan, mask int, leaves []*Plan, acc *[]*Plan) error {
	if mask == 1<<len(leaves)-1 {
		*acc = append(*acc, cur)
		if len(*acc) > e.opts.MaxPlans {
			return fmt.Errorf("queryplan: join-order enumeration exceeds the cap of %d plans (shrink the query or raise Options.MaxPlans)",
				e.opts.MaxPlans)
		}
		return nil
	}
	for j := range leaves {
		if mask&(1<<j) != 0 || !e.connectedTo(mask, j) {
			continue
		}
		out := e.joinOutput(cur, mask, j)
		for _, node := range e.joinNodes(cur, leaves[j], out) {
			if err := e.extend(node, mask|1<<j, leaves, acc); err != nil {
				return err
			}
		}
	}
	return nil
}

// connectedTo reports whether relation j shares a join edge with the
// set of relations in mask.
func (e *enumerator) connectedTo(mask, j int) bool {
	for _, edge := range e.q.Joins {
		if edge.Left == j && mask&(1<<edge.Right) != 0 {
			return true
		}
		if edge.Right == j && mask&(1<<edge.Left) != 0 {
			return true
		}
	}
	return false
}

// joinOutput estimates the output relation of joining the prefix (over
// mask) with relation j: |cur|·|R_j| scaled by every edge connecting j
// into the prefix, widths concatenated minus the shared key.
func (e *enumerator) joinOutput(cur *Plan, mask, j int) Relation {
	card := float64(cur.Out.Tuples) * float64(e.leafTuples(j))
	for _, edge := range e.q.Joins {
		if edge.Left == j && mask&(1<<edge.Right) != 0 {
			card *= edge.Selectivity
		}
		if edge.Right == j && mask&(1<<edge.Left) != 0 {
			card *= edge.Selectivity
		}
	}
	width := cur.Out.Width + e.leafWidth(j) - engine.KeyWidth
	if width < engine.KeyWidth {
		width = engine.KeyWidth
	}
	return Relation{
		Name:   fmt.Sprintf("T%d", bits.OnesCount(uint(mask))),
		Tuples: clampTuples(card),
		Width:  width,
	}
}

func (e *enumerator) leafTuples(j int) int64 {
	return clampTuples(e.q.filter(j) * float64(e.q.Relations[j].Tuples))
}

func (e *enumerator) leafWidth(j int) int64 {
	if u := e.q.projection(j); u > 0 {
		if u < engine.KeyWidth {
			return engine.KeyWidth
		}
		return u
	}
	return e.q.Relations[j].Width
}

// joinNodes builds one join node per applicable algorithm.
func (e *enumerator) joinNodes(left, right *Plan, out Relation) []*Plan {
	var nodes []*Plan
	add := func(alg Algorithm, fanout int64, sorted bool) {
		o := out
		o.Sorted = sorted
		nodes = append(nodes, &Plan{
			Kind: OpJoin, Algorithm: alg, Fanout: fanout,
			Children: []*Plan{left, right}, Out: o,
		})
	}

	nl, nr := left.Out.Tuples, right.Out.Tuples
	if left.Out.Sorted && right.Out.Sorted {
		// Both inputs already key-ordered: a sort-merge join would sort
		// nothing, so only the plain merge join is emitted.
		add(MergeJoin, 0, true)
	} else {
		add(SortMergeJoin, 0, true)
	}
	add(HashJoin, 0, false)
	for _, m := range e.opts.Fanouts {
		if m*8 > nl || m*8 > nr {
			continue // degenerate clusters
		}
		add(PartitionedHashJoin, m, false)
	}
	if e.opts.NLJMaxInner > 0 && (nl <= e.opts.NLJMaxInner || nr <= e.opts.NLJMaxInner) {
		// The outer relation's order survives a nested-loop join.
		add(NestedLoopJoin, 0, left.Out.Sorted)
	}
	return nodes
}

// aggVariants wraps every plan in the hash- and sort-based variant of
// the grouping operator (OpAggregate or OpDistinct).
func (e *enumerator) aggVariants(plans []*Plan, kind OpKind, groups int64) []*Plan {
	hashAlg, sortAlg := HashAggregate, SortAggregate
	outName := "A"
	if kind == OpDistinct {
		hashAlg, sortAlg = HashDistinct, SortDistinct
		outName = "D"
	}
	out := make([]*Plan, 0, 2*len(plans))
	for _, p := range plans {
		hashOut := Relation{Name: outName, Tuples: groups, Width: p.Out.Width}
		if kind == OpAggregate {
			// The hash-aggregate's result is its aggregation table.
			agg := engine.AggRegionFor(outName, groups)
			hashOut = Relation{Name: outName, Tuples: agg.N, Width: agg.W}
		}
		out = append(out, &Plan{
			Kind: kind, Algorithm: hashAlg, Groups: groups,
			Children: []*Plan{p}, Out: hashOut,
		})
		sortName := "G"
		if kind == OpDistinct {
			sortName = outName
		}
		out = append(out, &Plan{
			Kind: kind, Algorithm: sortAlg, Groups: groups,
			Children: []*Plan{p},
			Out:      Relation{Name: sortName, Tuples: groups, Width: p.Out.Width, Sorted: true},
		})
	}
	return out
}

// sortVariants adds the final order-by: plans whose output is already
// sorted pass through unchanged, the rest gain an in-place sort node.
func (e *enumerator) sortVariants(plans []*Plan) []*Plan {
	out := make([]*Plan, 0, len(plans))
	for _, p := range plans {
		if p.Out.Sorted {
			out = append(out, p)
			continue
		}
		sorted := p.Out
		sorted.Sorted = true
		out = append(out, &Plan{Kind: OpSort, Algorithm: QuickSort, Children: []*Plan{p}, Out: sorted})
	}
	return out
}
