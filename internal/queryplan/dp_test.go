package queryplan

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/hardware"
)

func dpOptions(so SearchOptions) Options {
	return Options{PruneBytes: 8 << 10, Search: so}
}

func TestSearchDPRequiresHierarchy(t *testing.T) {
	_, err := Search(chainQuery(2), dpOptions(SearchOptions{}), nil)
	if err == nil || !strings.Contains(err.Error(), "hardware hierarchy") {
		t.Fatalf("DP search without a hierarchy: err = %v", err)
	}
}

func TestSearchUnknownStrategy(t *testing.T) {
	_, err := Search(chainQuery(2), dpOptions(SearchOptions{Strategy: "genetic"}), hardware.SmallTest())
	if err == nil || !strings.Contains(err.Error(), `unknown search strategy "genetic"`) {
		t.Fatalf("unknown strategy: err = %v", err)
	}
}

func TestSearchExhaustiveIgnoresHierarchy(t *testing.T) {
	plans, err := Search(chainQuery(3), dpOptions(SearchOptions{Strategy: SearchExhaustive}), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Enumerate(chainQuery(3), dpOptions(SearchOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(want) {
		t.Fatalf("Search(exhaustive) returned %d plans, Enumerate %d", len(plans), len(want))
	}
}

func signatures(plans []*Plan) []string {
	sigs := make([]string, len(plans))
	for i, p := range plans {
		sigs[i] = p.Signature()
	}
	sort.Strings(sigs)
	return sigs
}

// TestSearchDPLeftDeepCoversExhaustiveSpace locks the DP search's
// completeness: with pruning disabled and bushy trees off, phase 1 must
// generate exactly the signature set of the exhaustive left-deep
// enumerator.
func TestSearchDPLeftDeepCoversExhaustiveSpace(t *testing.T) {
	h := hardware.SmallTest()
	for _, n := range []int{2, 3, 4} {
		q := chainQuery(n)
		ex, err := Enumerate(q, dpOptions(SearchOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		dp, err := Search(q, dpOptions(SearchOptions{TopK: -1, LeftDeepOnly: true}), h)
		if err != nil {
			t.Fatal(err)
		}
		exSigs, dpSigs := signatures(ex), signatures(dp)
		if len(exSigs) != len(dpSigs) {
			t.Fatalf("chain(%d): exhaustive %d plans, DP left-deep k=∞ %d", n, len(exSigs), len(dpSigs))
		}
		for i := range exSigs {
			if exSigs[i] != dpSigs[i] {
				t.Fatalf("chain(%d): signature sets diverge at %d:\n  exhaustive: %s\n  dp:         %s",
					n, i, exSigs[i], dpSigs[i])
			}
		}
	}
}

func islandsQuery() Query {
	return Query{
		Relations: []Relation{
			{Name: "A1", Tuples: 5_000, Width: 16},
			{Name: "A2", Tuples: 6_000, Width: 16},
			{Name: "B1", Tuples: 4_000, Width: 16},
			{Name: "B2", Tuples: 4_500, Width: 16},
		},
		Joins: []JoinEdge{
			{Left: 0, Right: 1, Selectivity: 1.0 / 6_000},
			{Left: 2, Right: 3, Selectivity: 1.0 / 4_500},
			{Left: 1, Right: 2, Selectivity: 1.0 / 4_000},
		},
	}
}

// bushy reports whether any join of the plan has two multi-relation
// inputs.
func bushy(p *Plan) bool {
	if p.Kind == OpJoin && p.Children[0].Kind == OpJoin && p.Children[1].Kind == OpJoin {
		return true
	}
	for _, c := range p.Children {
		if bushy(c) {
			return true
		}
	}
	return false
}

func TestSearchDPBushyPlans(t *testing.T) {
	h := hardware.SmallTest()
	q := islandsQuery()
	plans, err := Search(q, dpOptions(SearchOptions{TopK: -1}), h)
	if err != nil {
		t.Fatal(err)
	}
	var sawBushy bool
	for _, p := range plans {
		sawBushy = sawBushy || bushy(p)
	}
	if !sawBushy {
		t.Error("two-island query: DP search with bushy trees enabled produced no bushy plan")
	}

	leftDeep, err := Search(q, dpOptions(SearchOptions{TopK: -1, LeftDeepOnly: true}), h)
	if err != nil {
		t.Fatal(err)
	}
	// Left-deep means every join's right input is a scan leaf — this
	// also rejects right-deep/zigzag shapes, which bushy() alone would
	// miss.
	var assertLeftDeep func(p *Plan) bool
	assertLeftDeep = func(p *Plan) bool {
		if p.Kind == OpJoin && p.Children[1].Kind != OpScan {
			return false
		}
		for _, c := range p.Children {
			if !assertLeftDeep(c) {
				return false
			}
		}
		return true
	}
	for _, p := range leftDeep {
		if !assertLeftDeep(p) {
			t.Errorf("LeftDeepOnly produced a non-left-deep plan: %s", p.Signature())
		}
	}
	if len(plans) <= len(leftDeep) {
		t.Errorf("bushy space (%d plans) not larger than left-deep space (%d)", len(plans), len(leftDeep))
	}
}

func TestSearchDPTopKPrunes(t *testing.T) {
	h := hardware.SmallTest()
	q := chainQuery(4)
	narrow, err := Search(q, dpOptions(SearchOptions{TopK: 1}), h)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Search(q, dpOptions(SearchOptions{TopK: -1}), h)
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow) == 0 || len(narrow) >= len(wide) {
		t.Errorf("TopK=1 kept %d plans, TopK=∞ %d — pruning had no effect", len(narrow), len(wide))
	}
	// Every pruned-search survivor must exist in the unpruned space.
	all := map[string]bool{}
	for _, p := range wide {
		all[p.Signature()] = true
	}
	for _, p := range narrow {
		if !all[p.Signature()] {
			t.Errorf("pruned search invented plan %s", p.Signature())
		}
	}
}

// TestSearchDPLargeJoinGraphs locks the tentpole capability: the DP
// search handles relation counts the exhaustive enumerator cannot
// reach (it trips its MaxPlans cap), including cyclic graphs, and
// respects the raised MaxRelations bound.
func TestSearchDPLargeJoinGraphs(t *testing.T) {
	h := hardware.SmallTest()
	chain := func(n int) Query {
		q := Query{}
		for i := 0; i < n; i++ {
			q.Relations = append(q.Relations, Relation{Name: string(rune('A' + i)), Tuples: int64(1000 * (i + 1)), Width: 16})
			if i > 0 {
				q.Joins = append(q.Joins, JoinEdge{Left: i - 1, Right: i, Selectivity: 1 / float64(1000*(i+1))})
			}
		}
		return q
	}
	for _, n := range []int{8, 10} {
		plans, err := Search(chain(n), dpOptions(SearchOptions{}), h)
		if err != nil {
			t.Fatalf("DP on %d-chain: %v", n, err)
		}
		if len(plans) == 0 {
			t.Fatalf("DP on %d-chain: no plans", n)
		}
	}
	if _, err := Search(chain(8), dpOptions(SearchOptions{Strategy: SearchExhaustive}), h); err == nil ||
		!strings.Contains(err.Error(), "cap") {
		t.Errorf("exhaustive on the 8-chain should trip the MaxPlans cap, got err = %v", err)
	}

	sc, ok := ScenarioByName("join5-cycle")
	if !ok {
		t.Fatal("join5-cycle missing from the catalog")
	}
	plans, err := Search(sc.Query, dpOptions(SearchOptions{}), h)
	if err != nil || len(plans) == 0 {
		t.Fatalf("DP on the cyclic scenario: %d plans, err %v", len(plans), err)
	}
}
