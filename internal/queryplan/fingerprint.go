package queryplan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Canonical query fingerprinting: the identity a serving-tier plan
// cache keys on. Two inline queries that differ only in relation
// naming or edge order describe the same optimization problem, and a
// query whose cardinalities or selectivities drifted still has the
// same *shape* — the same join graph, the same operator freedoms — so
// a cached plan skeleton for the shape can be re-bound and re-scored
// in microseconds instead of re-running the DP search (docs/serving.md).
//
// Fingerprint therefore splits a query into:
//
//   - Canonical: a rendering of the pure structure — per-relation flag
//     digits (sorted, has-filter, has-projection), the join graph's
//     edge list under a canonical relabeling, and the presence of
//     group-by / distinct / order-by. Key is its sha256.
//   - Params: the numeric parameter vector in canonical order —
//     per-relation tuples/width/filter/projection, per-edge
//     selectivity, and the group or distinct count. Equal Params (and
//     equal Key) mean the queries are identical up to relation names.
//   - Perm: the canonical relabeling itself, mapping canonical
//     positions back to Query.Relations indices, so a cached Recipe
//     (recipe.go) can be re-bound to any query of the same shape.
//
// The relabeling is computed by iterative partition refinement
// (1-dimensional Weisfeiler–Leman seeded with the structural flags and
// degrees), a parameter split that orders refinement-equivalent
// relations by their parameter vectors, and bounded
// individualization-refinement branching over the remaining clone
// classes, choosing the lexicographically smallest (Canonical, Params)
// leaf. Correctness is one-sided by construction: the canonical string
// fully determines the join graph under its labeling, so two
// non-isomorphic shapes can never collide. The converse — isomorphic
// queries always colliding, and drift never re-keying a shape — holds
// on every graph 1-WL distinguishes (all trees, chains, stars, cycles,
// and the entire catalog); on WL-hard regular graphs the branching cap
// may split an isomorphism class, which degrades to a plan-cache miss,
// never a wrong plan.

// Fingerprint is a query's canonical identity, shape and parameters
// split (see the package comment above).
type Fingerprint struct {
	// Canonical renders the query's structure under the canonical
	// relabeling, e.g. "qp1|n=3|f=021|e=0-2,1-2|g=1|d=0|s=0".
	Canonical string
	// Key is the hex sha256 of Canonical — the shape cache key.
	Key string
	// Params is the parameter vector in canonical order: per canonical
	// position tuples, width, effective filter selectivity and
	// projection bytes; then one selectivity per canonical edge; then
	// the group-by or distinct target cardinality.
	Params []float64
	// Perm maps canonical positions to Query.Relations indices:
	// Perm[pos] is the relation canonical position pos refers to.
	Perm []int
}

// SameShape reports whether two fingerprints share a shape key.
func (f Fingerprint) SameShape(g Fingerprint) bool { return f.Key == g.Key }

// maxFingerprintLeaves caps individualization-refinement branching.
// Refinement discretizes every catalog shape (and everything else
// 1-WL handles) with at most a handful of leaves; the cap only binds
// on adversarial regular graphs, where exceeding it can split an
// isomorphism class across keys — a missed cache hit, never a
// collision.
const maxFingerprintLeaves = 512

// Fingerprint computes the query's canonical fingerprint. It validates
// the query first and returns any validation error unchanged.
func (q Query) Fingerprint() (Fingerprint, error) {
	if err := q.Validate(); err != nil {
		return Fingerprint{}, err
	}
	g := newFPGraph(q)
	cells := g.refine(g.initialPartition())
	cells = g.paramSplit(cells)
	s := fpSearch{g: g}
	s.search(cells)
	sum := sha256.Sum256([]byte(s.bestRender))
	return Fingerprint{
		Canonical: s.bestRender,
		Key:       hex.EncodeToString(sum[:]),
		Params:    s.bestParams,
		Perm:      s.bestPerm,
	}, nil
}

// fpEdge is one join edge in original relation indices.
type fpEdge struct {
	l, r int
	sel  float64
}

// fpGraph is the refinement view of a query: structure-only flags and
// adjacency (which decide the canonical string) plus per-node
// parameter vectors (which order otherwise-equivalent nodes).
type fpGraph struct {
	n     int
	adj   [][]int
	edges []fpEdge
	// flags is the structural digit per node: sorted<<2 | hasFilter<<1
	// | hasProj.
	flags []int
	// base is the 4-entry parameter vector per node (tuples, width,
	// filter, projection bytes); params appends the sorted incident
	// edge selectivities, so the parameter split separates nodes whose
	// edge weights differ even when their base parameters agree.
	base   [][]float64
	params [][]float64

	hasGroup, hasDistinct, sortBy bool
	groupVal                      float64
}

func newFPGraph(q Query) *fpGraph {
	n := len(q.Relations)
	g := &fpGraph{
		n:           n,
		adj:         make([][]int, n),
		flags:       make([]int, n),
		base:        make([][]float64, n),
		params:      make([][]float64, n),
		hasGroup:    q.GroupBy > 0,
		hasDistinct: q.Distinct > 0,
		sortBy:      q.SortBy,
		groupVal:    float64(q.GroupBy + q.Distinct),
	}
	for _, e := range q.Joins {
		g.edges = append(g.edges, fpEdge{l: e.Left, r: e.Right, sel: e.Selectivity})
		g.adj[e.Left] = append(g.adj[e.Left], e.Right)
		g.adj[e.Right] = append(g.adj[e.Right], e.Left)
	}
	for i, r := range q.Relations {
		f := 0
		if r.Sorted {
			f |= 4
		}
		if q.filter(i) < 1 {
			f |= 2
		}
		if q.projection(i) > 0 {
			f |= 1
		}
		g.flags[i] = f
		g.base[i] = []float64{float64(r.Tuples), float64(r.Width), q.filter(i), float64(q.projection(i))}
		p := append([]float64(nil), g.base[i]...)
		var sels []float64
		for _, e := range g.edges {
			if e.l == i || e.r == i {
				sels = append(sels, e.sel)
			}
		}
		sort.Float64s(sels)
		g.params[i] = append(p, sels...)
	}
	return g
}

// initialPartition groups nodes by (flags, degree), cells ordered by
// that pair ascending — an input-order-independent seeding.
func (g *fpGraph) initialPartition() [][]int {
	byColor := map[[2]int][]int{}
	for v := 0; v < g.n; v++ {
		c := [2]int{g.flags[v], len(g.adj[v])}
		byColor[c] = append(byColor[c], v)
	}
	colors := make([][2]int, 0, len(byColor))
	for c := range byColor {
		colors = append(colors, c)
	}
	sort.Slice(colors, func(i, j int) bool {
		if colors[i][0] != colors[j][0] {
			return colors[i][0] < colors[j][0]
		}
		return colors[i][1] < colors[j][1]
	})
	cells := make([][]int, 0, len(colors))
	for _, c := range colors {
		cells = append(cells, byColor[c])
	}
	return cells
}

// refine runs structural partition refinement to a fixpoint: each cell
// splits by its members' neighbor counts per cell, sub-cells ordered by
// signature. The result is the coarsest equitable partition refining
// the input — a function of the graph and the input partition only,
// never of relation order.
func (g *fpGraph) refine(cells [][]int) [][]int {
	for {
		id := make([]int, g.n)
		for ci, cell := range cells {
			for _, v := range cell {
				id[v] = ci
			}
		}
		split := false
		next := make([][]int, 0, len(cells))
		for _, cell := range cells {
			if len(cell) == 1 {
				next = append(next, cell)
				continue
			}
			groups := map[string][]int{}
			var keys []string
			for _, v := range cell {
				cnt := make([]int, len(cells))
				for _, u := range g.adj[v] {
					cnt[id[u]]++
				}
				k := fmt.Sprint(cnt)
				if _, ok := groups[k]; !ok {
					keys = append(keys, k)
				}
				groups[k] = append(groups[k], v)
			}
			if len(keys) > 1 {
				split = true
			}
			sort.Strings(keys)
			for _, k := range keys {
				next = append(next, groups[k])
			}
		}
		cells = next
		if !split {
			return cells
		}
	}
}

// paramSplit orders each refinement-equivalent cell by its members'
// parameter vectors and splits it at every distinct vector,
// re-refining structurally after each round. Nodes that remain
// together afterwards are both structurally equivalent under
// refinement and parameter-identical, which keeps the subsequent
// branching cheap — and keeps the *order* of structurally
// distinguishable cells independent of parameters, so drift cannot
// re-key a shape refinement alone discretizes.
func (g *fpGraph) paramSplit(cells [][]int) [][]int {
	for {
		split := false
		next := make([][]int, 0, len(cells))
		for _, cell := range cells {
			if len(cell) == 1 {
				next = append(next, cell)
				continue
			}
			ordered := append([]int(nil), cell...)
			sort.SliceStable(ordered, func(i, j int) bool {
				return lessFloats(g.params[ordered[i]], g.params[ordered[j]])
			})
			start := 0
			for i := 1; i <= len(ordered); i++ {
				if i == len(ordered) || !equalFloats(g.params[ordered[i]], g.params[ordered[start]]) {
					next = append(next, ordered[start:i])
					if i-start < len(cell) {
						split = true
					}
					start = i
				}
			}
		}
		cells = next
		if !split {
			return cells
		}
		cells = g.refine(cells)
	}
}

// fpSearch holds the individualization-refinement state: the best
// (render, params) leaf seen and the leaf budget.
type fpSearch struct {
	g          *fpGraph
	leaves     int
	bestRender string
	bestParams []float64
	bestPerm   []int
}

// search explores discrete partitions: refinement-stable cells with
// more than one member (true clone classes — parameter-identical and
// refinement-equivalent) are broken by individualizing each member in
// turn. Every leaf of a clone-only search tree renders identically
// when the clones are automorphic, so the cap almost never changes the
// answer; when it does (WL-hard graphs) the key merely splits an
// isomorphism class.
func (s *fpSearch) search(cells [][]int) {
	if s.leaves >= maxFingerprintLeaves {
		return
	}
	target := -1
	for i, c := range cells {
		if len(c) > 1 {
			target = i
			break
		}
	}
	if target < 0 {
		s.leaves++
		perm := make([]int, 0, s.g.n)
		for _, c := range cells {
			perm = append(perm, c[0])
		}
		render, params := s.g.render(perm)
		if s.bestPerm == nil || render < s.bestRender ||
			(render == s.bestRender && lessFloats(params, s.bestParams)) {
			s.bestRender, s.bestParams, s.bestPerm = render, params, perm
		}
		return
	}
	cell := cells[target]
	for k := range cell {
		next := make([][]int, 0, len(cells)+1)
		next = append(next, cells[:target]...)
		next = append(next, []int{cell[k]})
		rest := make([]int, 0, len(cell)-1)
		for j, v := range cell {
			if j != k {
				rest = append(rest, v)
			}
		}
		next = append(next, rest)
		next = append(next, cells[target+1:]...)
		s.search(s.g.refine(next))
		if s.leaves >= maxFingerprintLeaves {
			return
		}
	}
}

// render produces the canonical structure string and the parameter
// vector for one complete relabeling (perm[pos] = original index).
func (g *fpGraph) render(perm []int) (string, []float64) {
	inv := make([]int, g.n)
	for pos, v := range perm {
		inv[v] = pos
	}
	type cEdge struct {
		a, b int
		sel  float64
	}
	edges := make([]cEdge, 0, len(g.edges))
	for _, e := range g.edges {
		a, b := inv[e.l], inv[e.r]
		if a > b {
			a, b = b, a
		}
		edges = append(edges, cEdge{a: a, b: b, sel: e.sel})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	var b strings.Builder
	fmt.Fprintf(&b, "qp1|n=%d|f=", g.n)
	for _, v := range perm {
		b.WriteByte('0' + byte(g.flags[v]))
	}
	b.WriteString("|e=")
	for i, e := range edges {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d-%d", e.a, e.b)
	}
	fmt.Fprintf(&b, "|g=%d|d=%d|s=%d", b2i(g.hasGroup), b2i(g.hasDistinct), b2i(g.sortBy))

	params := make([]float64, 0, 4*g.n+len(edges)+1)
	for _, v := range perm {
		params = append(params, g.base[v]...)
	}
	for _, e := range edges {
		params = append(params, e.sel)
	}
	params = append(params, g.groupVal)
	return b.String(), params
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

func lessFloats(a, b []float64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
