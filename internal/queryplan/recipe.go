package queryplan

import (
	"fmt"
	"math/bits"

	"repro/internal/engine"
)

// Recipe is the relabelable skeleton of one physical plan: the
// operator tree with every algorithm choice kept and every
// query-specific value dropped — scan leaves hold canonical relation
// positions (per Fingerprint.Perm) instead of names, and output
// estimates are omitted entirely. Bind re-attaches a recipe to any
// query of the same shape, recomputing estimates under that query's
// parameters, which is what lets a plan cache serve a renamed or
// parameter-drifted query from a cached search result (docs/serving.md).
type Recipe struct {
	Kind      OpKind
	Algorithm Algorithm
	// Fanout is the partition count of a partitioned hash join.
	Fanout int64
	// Pos is the canonical relation position of an OpScan leaf.
	Pos      int
	Children []*Recipe
}

// NewRecipe extracts p's skeleton relative to the query (and
// fingerprint) it was searched for, rewriting scan leaves to canonical
// positions. Relation names identify scan leaves, so q must name its
// relations uniquely (Validate enforces this).
func NewRecipe(p *Plan, q Query, fp Fingerprint) (*Recipe, error) {
	if len(fp.Perm) != len(q.Relations) {
		return nil, fmt.Errorf("queryplan: fingerprint covers %d relations, query has %d", len(fp.Perm), len(q.Relations))
	}
	idx := make(map[string]int, len(q.Relations))
	for i, r := range q.Relations {
		idx[r.Name] = i
	}
	inv := make([]int, len(fp.Perm))
	for pos, i := range fp.Perm {
		inv[i] = pos
	}
	return newRecipeNode(p, idx, inv)
}

func newRecipeNode(p *Plan, idx map[string]int, inv []int) (*Recipe, error) {
	r := &Recipe{Kind: p.Kind, Algorithm: p.Algorithm, Fanout: p.Fanout}
	if p.Kind == OpScan {
		i, ok := idx[p.Rel.Name]
		if !ok {
			return nil, fmt.Errorf("queryplan: plan scans relation %q the query does not declare", p.Rel.Name)
		}
		r.Pos = inv[i]
		return r, nil
	}
	for _, c := range p.Children {
		cr, err := newRecipeNode(c, idx, inv)
		if err != nil {
			return nil, err
		}
		r.Children = append(r.Children, cr)
	}
	return r, nil
}

// Bind rebuilds the physical plan tree for q, a query of the recipe's
// shape: scan leaves resolve through fp.Perm, and every output
// estimate (cardinality, width, sortedness) is recomputed bottom-up
// under q's parameters exactly as the DP search's materialization
// computes them — including the subset-mask intermediate names the IR
// canonicalizer dedups regions by — so binding a recipe back to the
// query it was extracted from reproduces the searched plan
// node-for-node, and its lowered pattern prices bit-identically.
func (r *Recipe) Bind(q Query, fp Fingerprint) (*Plan, error) {
	if len(fp.Perm) != len(q.Relations) {
		return nil, fmt.Errorf("queryplan: fingerprint covers %d relations, query has %d", len(fp.Perm), len(q.Relations))
	}
	b := binder{q: q, e: &enumerator{q: q}, perm: fp.Perm}
	p, mask, err := b.bind(r)
	if err != nil {
		return nil, err
	}
	if full := uint32(1)<<len(q.Relations) - 1; mask != full {
		return nil, fmt.Errorf("queryplan: recipe covers %d of %d relations", bits.OnesCount32(mask), len(q.Relations))
	}
	return p, nil
}

type binder struct {
	q    Query
	e    *enumerator
	perm []int
}

// bind rebuilds one recipe node, returning the plan subtree and the
// bitmask of original relation indices it covers.
func (b *binder) bind(r *Recipe) (*Plan, uint32, error) {
	switch r.Kind {
	case OpScan:
		if r.Pos < 0 || r.Pos >= len(b.perm) {
			return nil, 0, fmt.Errorf("queryplan: recipe scan position %d outside %d relations", r.Pos, len(b.perm))
		}
		i := b.perm[r.Pos]
		return b.e.scanPlan(i), uint32(1) << i, nil

	case OpJoin:
		if len(r.Children) != 2 {
			return nil, 0, fmt.Errorf("queryplan: recipe join with %d children", len(r.Children))
		}
		left, lm, err := b.bind(r.Children[0])
		if err != nil {
			return nil, 0, err
		}
		right, rm, err := b.bind(r.Children[1])
		if err != nil {
			return nil, 0, err
		}
		if lm&rm != 0 {
			return nil, 0, fmt.Errorf("queryplan: recipe joins overlapping relation sets")
		}
		var sorted bool
		switch r.Algorithm {
		case MergeJoin, SortMergeJoin:
			sorted = true
		case NestedLoopJoin:
			// The outer relation's order survives a nested-loop join.
			sorted = left.Out.Sorted
		case HashJoin, PartitionedHashJoin:
			sorted = false
		default:
			return nil, 0, fmt.Errorf("queryplan: recipe with unknown join algorithm %q", r.Algorithm)
		}
		mask := lm | rm
		outN, outW := joinGeometry(b.q, left.Out, right.Out, lm, rm)
		return &Plan{
			Kind: OpJoin, Algorithm: r.Algorithm, Fanout: r.Fanout,
			Children: []*Plan{left, right},
			Out: Relation{
				// The subset-mask name the DP search materializes with
				// (collision-free within any tree; see materializeNode).
				Name:   fmt.Sprintf("T%d.%x", bits.OnesCount32(mask)-1, mask),
				Tuples: outN, Width: outW, Sorted: sorted,
			},
		}, mask, nil

	case OpAggregate, OpDistinct:
		if len(r.Children) != 1 {
			return nil, 0, fmt.Errorf("queryplan: recipe grouping with %d children", len(r.Children))
		}
		child, cm, err := b.bind(r.Children[0])
		if err != nil {
			return nil, 0, err
		}
		groups := b.q.GroupBy
		outName := "A"
		if r.Kind == OpDistinct {
			groups = b.q.Distinct
			outName = "D"
		}
		if groups <= 0 {
			return nil, 0, fmt.Errorf("queryplan: recipe has a grouping operator the query does not ask for")
		}
		var out Relation
		switch r.Algorithm {
		case HashAggregate:
			// The hash-aggregate's result is its aggregation table.
			agg := engine.AggRegionFor(outName, groups)
			out = Relation{Name: outName, Tuples: agg.N, Width: agg.W}
		case HashDistinct:
			out = Relation{Name: outName, Tuples: groups, Width: child.Out.Width}
		case SortAggregate:
			out = Relation{Name: "G", Tuples: groups, Width: child.Out.Width, Sorted: true}
		case SortDistinct:
			out = Relation{Name: outName, Tuples: groups, Width: child.Out.Width, Sorted: true}
		default:
			return nil, 0, fmt.Errorf("queryplan: recipe with unknown grouping algorithm %q", r.Algorithm)
		}
		return &Plan{Kind: r.Kind, Algorithm: r.Algorithm, Groups: groups,
			Children: []*Plan{child}, Out: out}, cm, nil

	case OpSort:
		if len(r.Children) != 1 {
			return nil, 0, fmt.Errorf("queryplan: recipe sort with %d children", len(r.Children))
		}
		child, cm, err := b.bind(r.Children[0])
		if err != nil {
			return nil, 0, err
		}
		out := child.Out
		out.Sorted = true
		return &Plan{Kind: OpSort, Algorithm: QuickSort, Children: []*Plan{child}, Out: out}, cm, nil
	}
	return nil, 0, fmt.Errorf("queryplan: unknown recipe operator kind %d", r.Kind)
}

// joinGeometry estimates the output of joining two bound subtrees —
// the recipe-side twin of the DP search's pairGeometry: cardinalities
// multiplied and scaled by every edge bridging the two relation
// subsets, widths concatenated minus the shared key.
func joinGeometry(q Query, left, right Relation, lm, rm uint32) (outN, outW int64) {
	card := float64(left.Tuples) * float64(right.Tuples)
	for _, e := range q.Joins {
		l, r := uint32(1)<<e.Left, uint32(1)<<e.Right
		if (l&lm != 0 && r&rm != 0) || (l&rm != 0 && r&lm != 0) {
			card *= e.Selectivity
		}
	}
	width := left.Width + right.Width - engine.KeyWidth
	if width < engine.KeyWidth {
		width = engine.KeyWidth
	}
	return clampTuples(card), width
}
