package queryplan_test

// The exhaustive-oracle parity harness (see docs/optimizer.md): with
// pruning disabled (TopK = ∞) and bushy trees off, the DP search
// explores exactly the exhaustive enumerator's plan space, so after the
// planner's exact phase-2 re-cost the two engines must agree — same
// winner, same top-5 ranking, costs within 1e-9 relative — on every
// small catalog scenario. This bounds what top-k pruning can ever
// break: the engines share phase 2, so any disagreement under pruning
// is a pruning decision, never a costing bug.
//
// Parity runs on one profile: the phase-2 scoring both engines share is
// profile-parameterized but identical code, and cross-profile coverage
// is the golden corpus's job.

import (
	"testing"

	"repro/internal/hardware"
	"repro/internal/planner"
	"repro/internal/queryplan"
)

// parityRelations is the scenario size the exhaustive oracle handles
// comfortably; every catalog scenario at or below it is checked.
const parityRelations = 4

// parityParallelism is checked at every level: the DP side of the
// parity harness must match the exhaustive oracle whether the memo is
// built single-threaded or by a worker pool.
var parityParallelism = []int{1, 2, 8}

func TestDPMatchesExhaustiveOracle(t *testing.T) {
	h := hardware.Origin2000()
	pl, err := planner.New(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range queryplan.Catalog() {
		if len(sc.Query.Relations) > parityRelations {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			ex, err := pl.QueryPlansSearch(sc.Query, planner.SearchOptions{Strategy: planner.SearchExhaustive})
			if err != nil {
				t.Fatalf("exhaustive: %v", err)
			}
			for _, par := range parityParallelism {
				dp, err := pl.QueryPlansSearch(sc.Query, planner.SearchOptions{TopK: -1, LeftDeepOnly: true, Parallelism: par})
				if err != nil {
					t.Fatalf("dp par=%d: %v", par, err)
				}
				if len(ex) == 0 || len(dp) != len(ex) {
					t.Fatalf("par=%d plan count: exhaustive %d, DP k=∞ left-deep %d", par, len(ex), len(dp))
				}
				if ex[0].Algorithm != dp[0].Algorithm {
					t.Errorf("par=%d winner diverged:\n  exhaustive: %s\n  dp:         %s", par, ex[0].Algorithm, dp[0].Algorithm)
				}
				top := 5
				if top > len(ex) {
					top = len(ex)
				}
				for i := 0; i < top; i++ {
					if ex[i].Algorithm != dp[i].Algorithm {
						t.Errorf("par=%d ranking[%d] diverged:\n  exhaustive: %s\n  dp:         %s",
							par, i, ex[i].Algorithm, dp[i].Algorithm)
					}
					if d := relDiff(ex[i].TotalNS(), dp[i].TotalNS()); d > 1e-9 {
						t.Errorf("par=%d ranking[%d] cost diverged: exhaustive %g, dp %g (rel %g)",
							par, i, ex[i].TotalNS(), dp[i].TotalNS(), d)
					}
				}
			}
		})
	}
}

// TestDPBushyNeverWorseThanOracle: bushy trees only widen the plan
// space, so on a query where the space stays small the unrestricted DP
// winner must cost at most the exhaustive left-deep oracle's winner.
// The two-island shape is where bushy plans actually win (see the
// join6-islands catalog scenario for the full-size version).
func TestDPBushyNeverWorseThanOracle(t *testing.T) {
	q := queryplan.Query{
		Relations: []queryplan.Relation{
			{Name: "A1", Tuples: 1_500, Width: 16},
			{Name: "A2", Tuples: 1_800, Width: 16},
			{Name: "B1", Tuples: 1_200, Width: 16},
			{Name: "B2", Tuples: 1_350, Width: 16},
		},
		Joins: []queryplan.JoinEdge{
			{Left: 0, Right: 1, Selectivity: 1.0 / 1_800},
			{Left: 2, Right: 3, Selectivity: 1.0 / 1_350},
			{Left: 1, Right: 2, Selectivity: 1.0 / 1_200},
		},
	}
	pl, err := planner.New(hardware.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := pl.BestQueryPlanSearch(q, planner.SearchOptions{Strategy: planner.SearchExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	bushy, err := pl.BestQueryPlanSearch(q, planner.SearchOptions{TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	if bushy.TotalNS() > oracle.TotalNS()*(1+1e-9) {
		t.Errorf("bushy DP winner %s (%g) worse than the left-deep oracle winner %s (%g)",
			bushy.Algorithm, bushy.TotalNS(), oracle.Algorithm, oracle.TotalNS())
	}
}
