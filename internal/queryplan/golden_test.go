package queryplan_test

// The golden-corpus regression harness: every catalog scenario is
// planned on every golden profile, and the winning plan's identity,
// canonical pattern, per-level misses and costs — plus the top of the
// ranking — are locked in testdata/golden/*.json. Any drift in the
// cost formulas, the canonicalizer, the enumerator or the planner
// surfaces as a diff here before it silently changes production plan
// choices.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/queryplan -run TestGolden -update
//
// and review the diff like any other code change (CI fails if the
// committed corpus does not match a fresh regeneration).

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cost"
	"repro/internal/hardware"
	"repro/internal/planner"
	"repro/internal/queryplan"
)

var update = flag.Bool("update", false, "rewrite the golden corpus instead of diffing against it")

// goldenProfiles are the hardware profiles the corpus locks. Adding a
// profile here and running -update extends the corpus.
var goldenProfiles = []string{"origin2000", "modern-x86"}

// rankingDepth is how many plans (from cheapest) each golden file
// records beyond the winner's full detail.
const rankingDepth = 5

type goldenLevel struct {
	Level     string  `json:"level"`
	SeqMisses float64 `json:"seq_misses"`
	RndMisses float64 `json:"rnd_misses"`
}

type goldenWinner struct {
	Plan      string        `json:"plan"`
	Canonical string        `json:"canonical"`
	MemoryNS  float64       `json:"memory_ns"`
	CPUNS     float64       `json:"cpu_ns"`
	TotalNS   float64       `json:"total_ns"`
	Levels    []goldenLevel `json:"levels"`
}

type goldenRank struct {
	Plan    string  `json:"plan"`
	TotalNS float64 `json:"total_ns"`
}

type goldenFile struct {
	Scenario string       `json:"scenario"`
	Profile  string       `json:"profile"`
	Plans    int          `json:"plans"`
	Winner   goldenWinner `json:"winner"`
	Ranking  []goldenRank `json:"ranking"`
}

func computeGolden(t *testing.T, profile string, sc queryplan.Scenario) goldenFile {
	t.Helper()
	h := hardware.Profiles()[profile]()
	pl, err := planner.New(h)
	if err != nil {
		t.Fatalf("planner.New(%s): %v", profile, err)
	}
	plans, err := pl.QueryPlans(sc.Query)
	if err != nil {
		t.Fatalf("QueryPlans(%s): %v", sc.Name, err)
	}
	if len(plans) == 0 {
		t.Fatalf("QueryPlans(%s): no plans", sc.Name)
	}
	best := plans[0]
	g := goldenFile{Scenario: sc.Name, Profile: profile, Plans: len(plans)}
	g.Winner = goldenWinner{
		Plan:      string(best.Algorithm),
		Canonical: best.Compiled.Canonical(),
		MemoryNS:  best.MemNS,
		CPUNS:     best.CPUNS,
		TotalNS:   best.TotalNS(),
	}
	res := cost.MustNew(h).EvaluateCompiled(best.Compiled)
	for _, lr := range res.PerLevel {
		g.Winner.Levels = append(g.Winner.Levels, goldenLevel{
			Level:     lr.Level.Name,
			SeqMisses: lr.Misses.Seq,
			RndMisses: lr.Misses.Rnd,
		})
	}
	for i, p := range plans {
		if i >= rankingDepth {
			break
		}
		g.Ranking = append(g.Ranking, goldenRank{Plan: string(p.Algorithm), TotalNS: p.TotalNS()})
	}
	return g
}

func goldenPath(sc, profile string) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s.%s.json", sc, profile))
}

// TestGolden locks every catalog scenario × profile against the
// committed corpus: the winning plan must match exactly, every cost
// and miss count within 1e-9 relative. The corpus directory must also
// contain exactly the catalog × profile set — an orphaned file left
// behind by a removed or renamed scenario fails the test (and is
// deleted by -update).
func TestGolden(t *testing.T) {
	if len(queryplan.Catalog()) < 16 {
		t.Fatalf("catalog has %d scenarios, want ≥ 16", len(queryplan.Catalog()))
	}
	t.Run("corpus-files", func(t *testing.T) {
		expected := map[string]bool{}
		for _, profile := range goldenProfiles {
			for _, sc := range queryplan.Catalog() {
				expected[fmt.Sprintf("%s.%s.json", sc.Name, profile)] = true
			}
		}
		entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
		if err != nil {
			t.Fatalf("reading the golden corpus dir: %v", err)
		}
		for _, e := range entries {
			if expected[e.Name()] {
				continue
			}
			if *update {
				if err := os.Remove(filepath.Join("testdata", "golden", e.Name())); err != nil {
					t.Fatal(err)
				}
				continue
			}
			t.Errorf("orphaned golden file %s (no matching catalog scenario × profile; -update removes it)", e.Name())
		}
	})
	for _, profile := range goldenProfiles {
		for _, sc := range queryplan.Catalog() {
			t.Run(sc.Name+"/"+profile, func(t *testing.T) {
				t.Parallel()
				got := computeGolden(t, profile, sc)
				path := goldenPath(sc.Name, profile)
				if *update {
					buf, err := json.MarshalIndent(got, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				buf, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update to create): %v", err)
				}
				var want goldenFile
				if err := json.Unmarshal(buf, &want); err != nil {
					t.Fatalf("corrupt golden file %s: %v", path, err)
				}
				diffGolden(t, want, got)
			})
		}
	}
}

func diffGolden(t *testing.T, want, got goldenFile) {
	t.Helper()
	if got.Plans != want.Plans {
		t.Errorf("plan count drifted: golden %d, got %d", want.Plans, got.Plans)
	}
	if got.Winner.Plan != want.Winner.Plan {
		t.Errorf("plan choice drifted:\n  golden: %s\n  got:    %s", want.Winner.Plan, got.Winner.Plan)
	}
	if got.Winner.Canonical != want.Winner.Canonical {
		t.Errorf("winner's canonical pattern drifted (golden %d bytes, got %d bytes)",
			len(want.Winner.Canonical), len(got.Winner.Canonical))
	}
	checkNS := func(what string, want, got float64) {
		if !approxEqual(want, got) {
			t.Errorf("%s drifted: golden %.6g, got %.6g (rel %.3g)", what, want, got, relDiff(want, got))
		}
	}
	checkNS("winner memory_ns", want.Winner.MemoryNS, got.Winner.MemoryNS)
	checkNS("winner cpu_ns", want.Winner.CPUNS, got.Winner.CPUNS)
	checkNS("winner total_ns", want.Winner.TotalNS, got.Winner.TotalNS)
	if len(got.Winner.Levels) != len(want.Winner.Levels) {
		t.Fatalf("level count drifted: golden %d, got %d", len(want.Winner.Levels), len(got.Winner.Levels))
	}
	for i, wl := range want.Winner.Levels {
		gl := got.Winner.Levels[i]
		if gl.Level != wl.Level {
			t.Errorf("level %d name drifted: golden %s, got %s", i, wl.Level, gl.Level)
		}
		checkNS(fmt.Sprintf("level %s seq_misses", wl.Level), wl.SeqMisses, gl.SeqMisses)
		checkNS(fmt.Sprintf("level %s rnd_misses", wl.Level), wl.RndMisses, gl.RndMisses)
	}
	if len(got.Ranking) != len(want.Ranking) {
		t.Fatalf("ranking depth drifted: golden %d, got %d", len(want.Ranking), len(got.Ranking))
	}
	for i, wr := range want.Ranking {
		gr := got.Ranking[i]
		if gr.Plan != wr.Plan {
			t.Errorf("ranking[%d] drifted:\n  golden: %s\n  got:    %s", i, wr.Plan, gr.Plan)
		}
		checkNS(fmt.Sprintf("ranking[%d] total_ns", i), wr.TotalNS, gr.TotalNS)
	}
}

// approxEqual compares within 1e-9 relative tolerance: golden files
// must survive harmless float-formatting and platform rounding, while
// any real formula change (always ≫ 1e-9) still fails.
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return relDiff(a, b) <= 1e-9
}

func relDiff(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}
