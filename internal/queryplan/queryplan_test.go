package queryplan

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/pattern"
)

func chainQuery(n int) Query {
	q := Query{}
	sizes := []int64{1_000, 2_000, 4_000, 8_000}
	names := []string{"A", "B", "C", "D"}
	for i := 0; i < n; i++ {
		q.Relations = append(q.Relations, Relation{Name: names[i], Tuples: sizes[i], Width: 16})
		if i > 0 {
			q.Joins = append(q.Joins, JoinEdge{Left: i - 1, Right: i, Selectivity: 1 / float64(sizes[i])})
		}
	}
	return q
}

func TestValidate(t *testing.T) {
	bad := []struct {
		name string
		q    Query
	}{
		{"empty", Query{}},
		{"no name", Query{Relations: []Relation{{Tuples: 10, Width: 16}}}},
		{"zero tuples", Query{Relations: []Relation{{Name: "U", Width: 16}}}},
		{"narrow width", Query{Relations: []Relation{{Name: "U", Tuples: 10, Width: engine.KeyWidth - 1}}}},
		{"filter count", Query{Relations: []Relation{{Name: "U", Tuples: 10, Width: 16}}, Filters: []float64{0.5, 0.5}}},
		{"filter range", Query{Relations: []Relation{{Name: "U", Tuples: 10, Width: 16}}, Filters: []float64{1.5}}},
		{"projection wide", Query{Relations: []Relation{{Name: "U", Tuples: 10, Width: 16}}, Projections: []int64{17}}},
		{"edge out of range", Query{
			Relations: []Relation{{Name: "U", Tuples: 10, Width: 16}, {Name: "V", Tuples: 10, Width: 16}},
			Joins:     []JoinEdge{{Left: 0, Right: 2, Selectivity: 0.1}},
		}},
		{"self edge", Query{
			Relations: []Relation{{Name: "U", Tuples: 10, Width: 16}, {Name: "V", Tuples: 10, Width: 16}},
			Joins:     []JoinEdge{{Left: 0, Right: 0, Selectivity: 0.1}, {Left: 0, Right: 1, Selectivity: 0.1}},
		}},
		{"zero selectivity", Query{
			Relations: []Relation{{Name: "U", Tuples: 10, Width: 16}, {Name: "V", Tuples: 10, Width: 16}},
			Joins:     []JoinEdge{{Left: 0, Right: 1, Selectivity: 0}},
		}},
		{"disconnected", Query{
			Relations: []Relation{{Name: "U", Tuples: 10, Width: 16}, {Name: "V", Tuples: 10, Width: 16}},
		}},
		{"groupby and distinct", Query{
			Relations: []Relation{{Name: "U", Tuples: 10, Width: 16}},
			GroupBy:   2, Distinct: 2,
		}},
	}
	for _, tc := range bad {
		if err := tc.q.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid query", tc.name)
		}
	}
	good := chainQuery(3)
	good.Filters = []float64{0.5, 0, 1}
	good.GroupBy = 7
	good.SortBy = true
	if err := good.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

// TestValidateGraphShapes covers the join-graph shapes the DP search
// opened up — cycles, disconnected islands, duplicate edges, the raised
// relation cap — with exact error-message assertions.
func TestValidateGraphShapes(t *testing.T) {
	rel := func(name string) Relation { return Relation{Name: name, Tuples: 10, Width: 16} }

	t.Run("cycle is valid", func(t *testing.T) {
		q := Query{
			Relations: []Relation{rel("A"), rel("B"), rel("C")},
			Joins: []JoinEdge{
				{Left: 0, Right: 1, Selectivity: 0.1},
				{Left: 1, Right: 2, Selectivity: 0.1},
				{Left: 2, Right: 0, Selectivity: 0.1},
			},
		}
		if err := q.Validate(); err != nil {
			t.Errorf("cyclic join graph rejected: %v", err)
		}
	})

	t.Run("disconnected islands", func(t *testing.T) {
		q := Query{
			Relations: []Relation{rel("A1"), rel("A2"), rel("B1"), rel("B2")},
			Joins: []JoinEdge{
				{Left: 0, Right: 1, Selectivity: 0.1},
				{Left: 2, Right: 3, Selectivity: 0.1},
			},
		}
		err := q.Validate()
		want := "queryplan: join graph does not connect all 4 relations (cross products are not enumerated)"
		if err == nil || err.Error() != want {
			t.Errorf("two-island graph: err = %v, want %q", err, want)
		}
	})

	t.Run("duplicate edge", func(t *testing.T) {
		q := Query{
			Relations: []Relation{rel("A"), rel("B")},
			Joins: []JoinEdge{
				{Left: 0, Right: 1, Selectivity: 0.1},
				{Left: 0, Right: 1, Selectivity: 0.2},
			},
		}
		err := q.Validate()
		want := "queryplan: duplicate join edge 0–1"
		if err == nil || err.Error() != want {
			t.Errorf("duplicate edge: err = %v, want %q", err, want)
		}
	})

	t.Run("duplicate edge reversed", func(t *testing.T) {
		// The same unordered pair spelled both ways is still a duplicate.
		q := Query{
			Relations: []Relation{rel("A"), rel("B"), rel("C")},
			Joins: []JoinEdge{
				{Left: 1, Right: 2, Selectivity: 0.1},
				{Left: 0, Right: 1, Selectivity: 0.1},
				{Left: 2, Right: 1, Selectivity: 0.3},
			},
		}
		err := q.Validate()
		want := "queryplan: duplicate join edge 1–2"
		if err == nil || err.Error() != want {
			t.Errorf("reversed duplicate edge: err = %v, want %q", err, want)
		}
	})

	t.Run("relation cap", func(t *testing.T) {
		q := Query{}
		for i := 0; i <= MaxRelations; i++ {
			q.Relations = append(q.Relations, rel(string(rune('A'+i))))
			if i > 0 {
				q.Joins = append(q.Joins, JoinEdge{Left: i - 1, Right: i, Selectivity: 0.1})
			}
		}
		err := q.Validate()
		want := "queryplan: 15 relations exceeds the maximum of 14"
		if err == nil || err.Error() != want {
			t.Errorf("over the cap: err = %v, want %q", err, want)
		}
	})

	t.Run("at the cap", func(t *testing.T) {
		q := Query{}
		for i := 0; i < MaxRelations; i++ {
			q.Relations = append(q.Relations, rel(string(rune('A'+i))))
			if i > 0 {
				q.Joins = append(q.Joins, JoinEdge{Left: i - 1, Right: i, Selectivity: 0.1})
			}
		}
		if err := q.Validate(); err != nil {
			t.Errorf("%d relations (exactly the cap) rejected: %v", MaxRelations, err)
		}
	})
}

func TestEnumerateSingleRelation(t *testing.T) {
	q := Query{Relations: []Relation{{Name: "U", Tuples: 1000, Width: 16}}}
	plans, err := Enumerate(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || plans[0].Signature() != "U" {
		t.Fatalf("bare scan: got %d plans, first %q", len(plans), plans[0].Signature())
	}
	pat, cpu, err := plans[0].Lower(DefaultCPU(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pat.(pattern.STrav); !ok {
		t.Errorf("bare scan lowered to %T, want STrav", pat)
	}
	if cpu != 0 {
		t.Errorf("bare scan CPU = %g, want 0", cpu)
	}
}

func TestEnumerateFilteredScanMaterializes(t *testing.T) {
	q := Query{
		Relations: []Relation{{Name: "U", Tuples: 1000, Width: 16}},
		Filters:   []float64{0.25},
	}
	plans, err := Enumerate(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := plans[0]
	if got := p.Signature(); got != "σ(U)" {
		t.Fatalf("signature = %q", got)
	}
	if p.Out.Tuples != 250 {
		t.Errorf("filtered cardinality = %d, want 250", p.Out.Tuples)
	}
	pat, cpu, err := p.Lower(DefaultCPU(), 0)
	if err != nil {
		t.Fatal(err)
	}
	conc, ok := pat.(pattern.Conc)
	if !ok || len(conc) != 2 {
		t.Fatalf("filtered scan lowered to %v, want a 2-way Conc", pat)
	}
	if cpu <= 0 {
		t.Errorf("filtered scan CPU = %g, want > 0", cpu)
	}
}

func TestEnumerateJoinOrders(t *testing.T) {
	// A 3-relation chain has 4 connected left-deep orders; with merge
	// alternatives, hash join, eligible partition fan-outs and small
	// relations (nested loops eligible) each join picks from several
	// algorithms.
	plans, err := Enumerate(chainQuery(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	orders := map[string]bool{}
	for _, p := range plans {
		sig := p.Signature()
		// Normalize the algorithm codes away to count join orders.
		for _, c := range []string{"nlj", "mj", "smj", "hj", "phj16", "phj64", "phj256"} {
			sig = strings.ReplaceAll(sig, " "+c+" ", "⋈")
		}
		orders[sig] = true
	}
	want := map[string]bool{
		"((A⋈B)⋈C)": true,
		"((B⋈A)⋈C)": true,
		"((B⋈C)⋈A)": true,
		"((C⋈B)⋈A)": true,
	}
	for o := range want {
		if !orders[o] {
			t.Errorf("missing join order %s", o)
		}
	}
	for o := range orders {
		if !want[o] {
			t.Errorf("unexpected join order %s (cross product?)", o)
		}
	}
}

func TestEnumerateStarAvoidsCrossProducts(t *testing.T) {
	q := Query{
		Relations: []Relation{
			{Name: "F", Tuples: 10_000, Width: 16},
			{Name: "D1", Tuples: 100, Width: 16},
			{Name: "D2", Tuples: 100, Width: 16},
		},
		Joins: []JoinEdge{
			{Left: 0, Right: 1, Selectivity: 0.01},
			{Left: 0, Right: 2, Selectivity: 0.01},
		},
	}
	plans, err := Enumerate(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		sig := p.Signature()
		if strings.Contains(sig, "(D1 ") && strings.Contains(sig[:strings.Index(sig, "F")], "D2") {
			t.Errorf("cross product enumerated: %s", sig)
		}
	}
	// D1 and D2 only ever join through F: every plan starts with a
	// pair involving F.
	for _, p := range plans {
		inner := p
		for inner.Kind == OpJoin {
			inner = inner.Children[0]
		}
		first := inner.Rel.Name
		sig := p.Signature()
		if first != "F" {
			// The other leaf of the innermost join must be F.
			if !strings.Contains(sig, "(D1 ") && !strings.Contains(sig, "(D2 ") {
				continue
			}
		}
	}
}

func TestMergeJoinOnlyForSortedInputs(t *testing.T) {
	q := Query{
		Relations: []Relation{
			{Name: "U", Tuples: 10_000, Width: 16, Sorted: true},
			{Name: "V", Tuples: 10_000, Width: 16, Sorted: true},
		},
		Joins: []JoinEdge{{Left: 0, Right: 1, Selectivity: 1e-4}},
	}
	plans, err := Enumerate(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sawMJ, sawSMJ bool
	for _, p := range plans {
		sig := p.Signature()
		sawMJ = sawMJ || strings.Contains(sig, " mj ")
		sawSMJ = sawSMJ || strings.Contains(sig, " smj ")
	}
	if !sawMJ {
		t.Error("sorted inputs: no merge-join candidate")
	}
	if sawSMJ {
		t.Error("sorted inputs: redundant sort-merge-join candidate")
	}

	q.Relations[0].Sorted = false
	plans, err = Enumerate(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sawMJ, sawSMJ = false, false
	for _, p := range plans {
		sig := p.Signature()
		sawMJ = sawMJ || strings.Contains(sig, " mj ")
		sawSMJ = sawSMJ || strings.Contains(sig, " smj ")
	}
	if sawMJ {
		t.Error("unsorted input: merge-join without a sort enumerated")
	}
	if !sawSMJ {
		t.Error("unsorted input: no sort-merge-join candidate")
	}
}

func TestAggregateAndSortVariants(t *testing.T) {
	q := Query{
		Relations: []Relation{{Name: "U", Tuples: 50_000, Width: 16}},
		Filters:   []float64{0.5},
		GroupBy:   100,
		SortBy:    true,
	}
	plans, err := Enumerate(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sigs := make([]string, len(plans))
	for i, p := range plans {
		sigs[i] = p.Signature()
	}
	joined := strings.Join(sigs, "\n")
	// The hash aggregate's output is unsorted, so the order-by wraps it
	// in a sort; the sort aggregate's output is already ordered.
	if !strings.Contains(joined, "sort(hashagg(σ(U)))") {
		t.Errorf("missing sort(hashagg(σ(U))) in:\n%s", joined)
	}
	if !strings.Contains(joined, "sortagg(σ(U))") || strings.Contains(joined, "sort(sortagg") {
		t.Errorf("sortagg variant should skip the final sort in:\n%s", joined)
	}
}

// TestLowerMatchesOperatorBuilders locks the lowering of a hash-join
// plan against the hand-composed operator patterns: the plan pattern
// must be the ⊕ sequence [filter] ⊕ hash-build ⊕ hash-probe.
func TestLowerMatchesOperatorBuilders(t *testing.T) {
	q := Query{
		Relations: []Relation{
			{Name: "U", Tuples: 10_000, Width: 16},
			{Name: "V", Tuples: 40_000, Width: 16},
		},
		Joins: []JoinEdge{{Left: 0, Right: 1, Selectivity: 1.0 / 40_000}},
	}
	plans, err := Enumerate(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var hj *Plan
	for _, p := range plans {
		if p.Signature() == "(U hj V)" {
			hj = p
			break
		}
	}
	if hj == nil {
		t.Fatal("no (U hj V) plan")
	}
	pat, _, err := hj.Lower(DefaultCPU(), 0)
	if err != nil {
		t.Fatal(err)
	}
	seq, ok := pat.(pattern.Seq)
	if !ok || len(seq) != 2 {
		t.Fatalf("hash join lowered to %v, want a 2-step Seq (build ⊕ probe)", pat)
	}
	// Build on the smaller input (U), probe with V.
	if got := seq[0].String(); !strings.Contains(got, "s_trav(U)") || !strings.Contains(got, "r_trav(") {
		t.Errorf("build step = %s", got)
	}
	if got := seq[1].String(); !strings.Contains(got, "s_trav(V)") || !strings.Contains(got, "r_acc(") {
		t.Errorf("probe step = %s", got)
	}
}

func TestEnumerateMaxPlansCap(t *testing.T) {
	if _, err := Enumerate(chainQuery(4), Options{MaxPlans: 3}); err == nil {
		t.Fatal("MaxPlans cap not enforced")
	}
}

func TestCatalogValidatesAndIsStable(t *testing.T) {
	cat := Catalog()
	if len(cat) < 16 {
		t.Fatalf("catalog has %d scenarios, want ≥ 16", len(cat))
	}
	seen := map[string]bool{}
	for _, sc := range cat {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %s", sc.Name)
		}
		seen[sc.Name] = true
		if err := sc.Query.Validate(); err != nil {
			t.Errorf("scenario %s: %v", sc.Name, err)
		}
		if sc.Description == "" {
			t.Errorf("scenario %s has no description", sc.Name)
		}
	}
	if _, ok := ScenarioByName(cat[0].Name); !ok {
		t.Error("ScenarioByName misses a catalog entry")
	}
	if _, ok := ScenarioByName("no-such-scenario"); ok {
		t.Error("ScenarioByName invented a scenario")
	}
}
