package queryplan

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/pattern"
	"repro/internal/region"
)

// OpKind discriminates physical plan nodes.
type OpKind int

const (
	// OpScan reads a base relation, applying the query's filter and
	// projection for that relation (materializing the result if either
	// narrows it).
	OpScan OpKind = iota
	// OpJoin joins its two children with Algorithm.
	OpJoin
	// OpAggregate groups its child into Groups result groups.
	OpAggregate
	// OpDistinct eliminates duplicates down to Groups rows.
	OpDistinct
	// OpSort sorts its child's output in place.
	OpSort
)

// Plan is one physical plan: a tree of operators with algorithm choices
// made and output estimates (cardinality, width, sortedness) filled in
// by the enumerator. Plans share subtrees; nodes are immutable after
// enumeration.
type Plan struct {
	Kind      OpKind
	Algorithm Algorithm
	// Fanout is the partition count of a partitioned hash join.
	Fanout int64
	// Rel is the base relation of an OpScan leaf.
	Rel Relation
	// Filter is the scan's selectivity (1 = none); Proj its bytes-used
	// projection (0 = full width).
	Filter float64
	Proj   int64
	// Groups is the target cardinality of OpAggregate / OpDistinct.
	Groups int64
	// Children are the operator inputs (two for OpJoin, one for
	// OpAggregate / OpDistinct / OpSort, none for OpScan).
	Children []*Plan
	// Out is the operator's estimated output: the relation downstream
	// operators consume.
	Out Relation
}

// Signature renders the plan's physical shape as a compact,
// deterministic string — the identity golden files and plan rankings
// key on: join order and algorithms in infix form, unary operators as
// prefixes.
//
//	sort(hashagg((σ(C) hj O) smj L))
func (p *Plan) Signature() string {
	var b strings.Builder
	p.signature(&b)
	return b.String()
}

func (p *Plan) signature(b *strings.Builder) {
	switch p.Kind {
	case OpScan:
		if p.Filter < 1 || p.Proj > 0 {
			b.WriteString("σ(")
			b.WriteString(p.Rel.Name)
			b.WriteString(")")
		} else {
			b.WriteString(p.Rel.Name)
		}
	case OpJoin:
		b.WriteString("(")
		p.Children[0].signature(b)
		b.WriteString(" ")
		b.WriteString(code(p.Algorithm, p.Fanout))
		b.WriteString(" ")
		p.Children[1].signature(b)
		b.WriteString(")")
	case OpAggregate:
		if p.Algorithm == HashAggregate {
			b.WriteString("hashagg(")
		} else {
			b.WriteString("sortagg(")
		}
		p.Children[0].signature(b)
		b.WriteString(")")
	case OpDistinct:
		if p.Algorithm == HashDistinct {
			b.WriteString("hashdistinct(")
		} else {
			b.WriteString("sortdistinct(")
		}
		p.Children[0].signature(b)
		b.WriteString(")")
	case OpSort:
		b.WriteString("sort(")
		p.Children[0].signature(b)
		b.WriteString(")")
	}
}

// Lower composes the plan into one compound pattern plus its estimated
// CPU time: every operator contributes its Table-2 pattern (built by
// internal/engine) over its input and output regions, and operators are
// sequenced with ⊕ in execution order (full materialization), so
// Eq. 5.2 threads cache state from each operator into the next. An
// unfiltered scan contributes no pattern of its own unless it is the
// whole plan — its consumer reads the base region directly.
//
// pruneBytes bounds quick-sort recursion exactly as in
// engine.QuickSortPattern (callers pass the smallest cache capacity).
func (p *Plan) Lower(cpu CPUCosts, pruneBytes int64) (pattern.Pattern, float64, error) {
	l := lowerer{cpu: cpu, prune: pruneBytes}
	out, err := l.lower(p)
	if err != nil {
		return nil, 0, err
	}
	if len(l.steps) == 0 {
		// A bare unfiltered scan: the plan is the traversal itself.
		l.steps = append(l.steps, engine.ScanPattern(out, 0))
	}
	if len(l.steps) == 1 {
		return l.steps[0], l.cpuNS, nil
	}
	return pattern.Seq(l.steps), l.cpuNS, nil
}

// lowerer accumulates the ⊕ step list and CPU estimate of one plan.
type lowerer struct {
	cpu   CPUCosts
	prune int64
	steps []pattern.Pattern
	cpuNS float64
}

// lower emits the steps of p's subtree and returns the region holding
// p's (materialized) output.
func (l *lowerer) lower(p *Plan) (*region.Region, error) {
	switch p.Kind {
	case OpScan:
		base := p.Rel.Region()
		if p.Filter >= 1 && p.Proj <= 0 {
			return base, nil // consumed in place, no materialization
		}
		out := p.Out.Region()
		l.steps = append(l.steps, engine.ProjectPattern(base, out, p.Proj))
		l.cpuNS += l.cpu.Compare*float64(base.N) + l.cpu.Move*float64(out.N)
		return out, nil

	case OpJoin:
		lr, err := l.lower(p.Children[0])
		if err != nil {
			return nil, err
		}
		rr, err := l.lower(p.Children[1])
		if err != nil {
			return nil, err
		}
		out := p.Out.Region()
		nl, nr, no := float64(lr.N), float64(rr.N), float64(out.N)
		switch p.Algorithm {
		case NestedLoopJoin:
			l.steps = append(l.steps, engine.NestedLoopJoinPattern(lr, rr, out))
			l.cpuNS += l.cpu.Compare*nl*nr + l.cpu.Move*no
		case MergeJoin:
			l.steps = append(l.steps, engine.MergeJoinPattern(lr, rr, out))
			l.cpuNS += l.cpu.Compare*(nl+nr) + l.cpu.Move*no
		case SortMergeJoin:
			if !p.Children[0].Out.Sorted {
				l.steps = append(l.steps, engine.QuickSortPattern(lr, l.prune))
				l.cpuNS += l.cpu.sortNS(nl)
			}
			if !p.Children[1].Out.Sorted {
				l.steps = append(l.steps, engine.QuickSortPattern(rr, l.prune))
				l.cpuNS += l.cpu.sortNS(nr)
			}
			l.steps = append(l.steps, engine.MergeJoinPattern(lr, rr, out))
			l.cpuNS += l.cpu.Compare*(nl+nr) + l.cpu.Move*no
		case HashJoin:
			build, probe := rr, lr
			if lr.N < rr.N {
				build, probe = lr, rr
			}
			h := engine.HashRegionFor(out.Name+".h", build.N)
			l.steps = append(l.steps, engine.HashJoinPattern(probe, build, h, out).(pattern.Seq)...)
			l.cpuNS += l.cpu.Hash*(nl+nr) + l.cpu.Move*no
		case PartitionedHashJoin:
			l.steps = append(l.steps, engine.PartitionedHashJoinPattern(lr, rr, out, p.Fanout).(pattern.Seq)...)
			l.cpuNS += l.cpu.Partition*(nl+nr) + l.cpu.Hash*(nl+nr) + l.cpu.Move*no
		default:
			return nil, fmt.Errorf("queryplan: unknown join algorithm %q", p.Algorithm)
		}
		return out, nil

	case OpAggregate:
		in, err := l.lower(p.Children[0])
		if err != nil {
			return nil, err
		}
		n := float64(in.N)
		if p.Algorithm == HashAggregate {
			// The aggregation table is the materialized result.
			agg := engine.AggRegionFor(p.Out.Name, p.Groups)
			l.steps = append(l.steps, engine.HashAggregatePattern(in, agg))
			l.cpuNS += l.cpu.Hash * n
			return agg, nil
		}
		// Sort-based grouping: sort (unless already key-ordered), then
		// one merged pass writing the group rows.
		out := p.Out.Region()
		if !p.Children[0].Out.Sorted {
			l.steps = append(l.steps, engine.QuickSortPattern(in, l.prune))
			l.cpuNS += l.cpu.sortNS(n)
		}
		l.steps = append(l.steps, pattern.Conc{pattern.STrav{R: in}, pattern.STrav{R: out}})
		l.cpuNS += l.cpu.Compare * n
		return out, nil

	case OpDistinct:
		in, err := l.lower(p.Children[0])
		if err != nil {
			return nil, err
		}
		out := p.Out.Region()
		n := float64(in.N)
		if p.Algorithm == HashDistinct {
			h := engine.HashRegionFor(out.Name+".h", in.N)
			l.steps = append(l.steps, engine.HashDedupPattern(in, h, out))
			l.cpuNS += l.cpu.Hash * n
			return out, nil
		}
		if !p.Children[0].Out.Sorted {
			l.steps = append(l.steps, engine.QuickSortPattern(in, l.prune))
			l.cpuNS += l.cpu.sortNS(n)
		}
		l.steps = append(l.steps, pattern.Conc{pattern.STrav{R: in}, pattern.STrav{R: out}})
		l.cpuNS += l.cpu.Compare * n
		return out, nil

	case OpSort:
		in, err := l.lower(p.Children[0])
		if err != nil {
			return nil, err
		}
		l.steps = append(l.steps, engine.QuickSortPattern(in, l.prune))
		l.cpuNS += l.cpu.sortNS(float64(in.N))
		return in, nil
	}
	return nil, fmt.Errorf("queryplan: unknown operator kind %d", p.Kind)
}
