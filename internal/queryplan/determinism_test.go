package queryplan_test

// The determinism suite locks the tentpole guarantee of the parallel DP
// memo (docs/optimizer.md): the search result is a pure function of
// (query, options, hierarchy) — bit-identical winner signature, top-k
// ranking and costs at every Parallelism setting and on every repeat,
// regardless of goroutine scheduling, work-stealing order, or what the
// process-global step cache happens to contain. Costs are compared by
// their exact float64 bit patterns, not a tolerance: the memo's
// tie-breaking is defined to be schedule-independent, so even 1-ulp
// drift is a bug.

import (
	"math"
	"testing"

	"repro/internal/hardware"
	"repro/internal/planner"
	"repro/internal/queryplan"
)

// determinismReps is how many times each (scenario, parallelism) pair
// is re-run; the race build (see determinism_race_test.go) and -short
// dial it down because every rep still re-runs phase 2 in full.
var determinismReps = 50

// planTrace is the comparable image of one search result: every ranked
// plan's signature plus the raw bits of its cost split.
type planTrace struct {
	sig     string
	memBits uint64
	cpuBits uint64
}

func traceOf(plans []planner.Plan) []planTrace {
	tr := make([]planTrace, len(plans))
	for i, p := range plans {
		tr[i] = planTrace{
			sig:     string(p.Algorithm),
			memBits: math.Float64bits(p.MemNS),
			cpuBits: math.Float64bits(p.CPUNS),
		}
	}
	return tr
}

func TestDPDeterministicAcrossParallelismAndRepeats(t *testing.T) {
	reps := determinismReps
	if testing.Short() {
		reps = 3
	}
	h := hardware.Origin2000()
	pl, err := planner.New(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range queryplan.Catalog() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			baseline, err := pl.QueryPlansSearch(sc.Query, planner.SearchOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(baseline) == 0 {
				t.Fatal("no plans")
			}
			want := traceOf(baseline)
			for _, par := range []int{1, 2, 8} {
				for rep := 0; rep < reps; rep++ {
					plans, err := pl.QueryPlansSearch(sc.Query, planner.SearchOptions{Parallelism: par})
					if err != nil {
						t.Fatalf("par=%d rep=%d: %v", par, rep, err)
					}
					got := traceOf(plans)
					if len(got) != len(want) {
						t.Fatalf("par=%d rep=%d: %d plans, baseline %d", par, rep, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("par=%d rep=%d: ranking[%d] diverged from the par=1 baseline:\n  got:      %s (mem %016x cpu %016x)\n  baseline: %s (mem %016x cpu %016x)",
								par, rep, i,
								got[i].sig, got[i].memBits, got[i].cpuBits,
								want[i].sig, want[i].memBits, want[i].cpuBits)
						}
					}
				}
			}
		})
	}
}
