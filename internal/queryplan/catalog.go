package queryplan

// Scenario is one named, ready-made query of the catalog: a logical
// query shape with concrete relation sizes and selectivities, so the
// same plan-pricing question can be asked reproducibly across hardware
// profiles. The golden-corpus regression harness (golden_test.go) locks
// every scenario's winning plan and cost per profile.
type Scenario struct {
	Name        string
	Description string
	Query       Query
}

// Catalog returns the built-in scenarios: single-operator shapes, hash-
// vs sort-alternative decisions, 2–4 relation join-order problems,
// TPC-H Q1/Q3-shaped analytical pipelines, and — reachable only by the
// DP search — a 7-relation snowflake star, 8- and 12-relation chains, a
// 10-relation star, a cyclic join graph and a bushy-favouring
// two-island query. Every scenario's join graph is connected.
func Catalog() []Scenario {
	return []Scenario{
		{
			Name:        "scan-filter",
			Description: "selective predicate scan over a 1M-row table (single-plan baseline)",
			Query: Query{
				Relations: []Relation{{Name: "L", Tuples: 1_000_000, Width: 32}},
				Filters:   []float64{0.02},
			},
		},
		{
			Name:        "scan-project",
			Description: "narrow 16-byte projection of a wide 128-byte table",
			Query: Query{
				Relations:   []Relation{{Name: "W", Tuples: 500_000, Width: 128}},
				Projections: []int64{16},
			},
		},
		{
			Name:        "sort-unsorted",
			Description: "order-by over an unsorted 500k-row table",
			Query: Query{
				Relations: []Relation{{Name: "U", Tuples: 500_000, Width: 32}},
				SortBy:    true,
			},
		},
		{
			Name:        "distinct-dense",
			Description: "duplicate elimination with few distinct values (hash table stays cache-resident)",
			Query: Query{
				Relations: []Relation{{Name: "U", Tuples: 400_000, Width: 16}},
				Distinct:  1_000,
			},
		},
		{
			Name:        "distinct-sparse",
			Description: "duplicate elimination with mostly-unique values (hash table exceeds the caches)",
			Query: Query{
				Relations: []Relation{{Name: "U", Tuples: 400_000, Width: 16}},
				Distinct:  300_000,
			},
		},
		{
			Name:        "groupby-few",
			Description: "TPC-H Q1 shape: near-full scan aggregated into a handful of groups",
			Query: Query{
				Relations: []Relation{{Name: "L", Tuples: 1_000_000, Width: 32}},
				Filters:   []float64{0.95},
				GroupBy:   4,
			},
		},
		{
			Name:        "groupby-many",
			Description: "aggregation into 200k groups (aggregate table larger than the caches)",
			Query: Query{
				Relations: []Relation{{Name: "L", Tuples: 1_000_000, Width: 32}},
				GroupBy:   200_000,
			},
		},
		{
			Name:        "groupby-sorted-input",
			Description: "aggregation over a key-ordered table (sort-based grouping needs no sort)",
			Query: Query{
				Relations: []Relation{{Name: "S", Tuples: 300_000, Width: 16, Sorted: true}},
				GroupBy:   1_000,
			},
		},
		{
			Name:        "join2-fk",
			Description: "foreign-key join of orders against a small customer dimension",
			Query: Query{
				Relations: []Relation{
					{Name: "O", Tuples: 150_000, Width: 32},
					{Name: "C", Tuples: 15_000, Width: 32},
				},
				Joins: []JoinEdge{{Left: 0, Right: 1, Selectivity: 1.0 / 15_000}},
			},
		},
		{
			Name:        "join2-sorted",
			Description: "equi-join of two key-ordered tables (merge join without sorting)",
			Query: Query{
				Relations: []Relation{
					{Name: "U", Tuples: 200_000, Width: 16, Sorted: true},
					{Name: "V", Tuples: 100_000, Width: 16, Sorted: true},
				},
				Joins: []JoinEdge{{Left: 0, Right: 1, Selectivity: 1.0 / 200_000}},
			},
		},
		{
			Name:        "join2-large",
			Description: "two 1M-row tables joined 1:1 (partitioning pays for itself)",
			Query: Query{
				Relations: []Relation{
					{Name: "U", Tuples: 1_000_000, Width: 32},
					{Name: "V", Tuples: 1_000_000, Width: 32},
				},
				Joins: []JoinEdge{{Left: 0, Right: 1, Selectivity: 1.0 / 1_000_000}},
			},
		},
		{
			Name:        "join3-chain-q3",
			Description: "TPC-H Q3 shape: customer ⋈ orders ⋈ lineitem with filters, top-group aggregate, ordered result",
			Query: Query{
				Relations: []Relation{
					{Name: "C", Tuples: 15_000, Width: 32},
					{Name: "O", Tuples: 150_000, Width: 32},
					{Name: "L", Tuples: 600_000, Width: 32},
				},
				Joins: []JoinEdge{
					{Left: 0, Right: 1, Selectivity: 1.0 / 15_000},
					{Left: 1, Right: 2, Selectivity: 1.0 / 150_000},
				},
				Filters: []float64{0.2, 0.5, 0},
				GroupBy: 10_000,
				SortBy:  true,
			},
		},
		{
			Name:        "join3-star",
			Description: "star join: a 500k-row fact table against two small dimensions",
			Query: Query{
				Relations: []Relation{
					{Name: "F", Tuples: 500_000, Width: 32},
					{Name: "D1", Tuples: 1_000, Width: 16},
					{Name: "D2", Tuples: 5_000, Width: 16},
				},
				Joins: []JoinEdge{
					{Left: 0, Right: 1, Selectivity: 1.0 / 1_000},
					{Left: 0, Right: 2, Selectivity: 1.0 / 5_000},
				},
			},
		},
		{
			Name:        "join4-chain",
			Description: "four-relation chain join (join-order search over connected left-deep orders; partition fan-outs degenerate on the small end of the chain)",
			Query: Query{
				Relations: []Relation{
					{Name: "A", Tuples: 1_500, Width: 16},
					{Name: "B", Tuples: 3_000, Width: 16},
					{Name: "C", Tuples: 12_000, Width: 16},
					{Name: "D", Tuples: 48_000, Width: 16},
				},
				Joins: []JoinEdge{
					{Left: 0, Right: 1, Selectivity: 1.0 / 3_000},
					{Left: 1, Right: 2, Selectivity: 1.0 / 12_000},
					{Left: 2, Right: 3, Selectivity: 1.0 / 48_000},
				},
			},
		},
		{
			Name:        "join7-star",
			Description: "snowflake: a 400k-row fact table against four dimensions, two of them with their own sub-dimension (7 relations — DP search only)",
			Query: Query{
				Relations: []Relation{
					{Name: "F", Tuples: 400_000, Width: 32},
					{Name: "D1", Tuples: 20_000, Width: 16},
					{Name: "D2", Tuples: 5_000, Width: 16},
					{Name: "D3", Tuples: 2_000, Width: 16},
					{Name: "D4", Tuples: 500, Width: 16},
					{Name: "S1", Tuples: 400, Width: 16},
					{Name: "S2", Tuples: 100, Width: 16},
				},
				Joins: []JoinEdge{
					{Left: 0, Right: 1, Selectivity: 1.0 / 20_000},
					{Left: 0, Right: 2, Selectivity: 1.0 / 5_000},
					{Left: 0, Right: 3, Selectivity: 1.0 / 2_000},
					{Left: 0, Right: 4, Selectivity: 1.0 / 500},
					{Left: 1, Right: 5, Selectivity: 1.0 / 400},
					{Left: 2, Right: 6, Selectivity: 1.0 / 100},
				},
			},
		},
		{
			Name:        "join8-chain",
			Description: "eight-relation chain join, sizes doubling along the chain (8 relations — DP search only)",
			Query: Query{
				Relations: []Relation{
					{Name: "R1", Tuples: 1_000, Width: 16},
					{Name: "R2", Tuples: 2_000, Width: 16},
					{Name: "R3", Tuples: 4_000, Width: 16},
					{Name: "R4", Tuples: 8_000, Width: 16},
					{Name: "R5", Tuples: 16_000, Width: 16},
					{Name: "R6", Tuples: 32_000, Width: 16},
					{Name: "R7", Tuples: 64_000, Width: 16},
					{Name: "R8", Tuples: 128_000, Width: 16},
				},
				Joins: []JoinEdge{
					{Left: 0, Right: 1, Selectivity: 1.0 / 2_000},
					{Left: 1, Right: 2, Selectivity: 1.0 / 4_000},
					{Left: 2, Right: 3, Selectivity: 1.0 / 8_000},
					{Left: 3, Right: 4, Selectivity: 1.0 / 16_000},
					{Left: 4, Right: 5, Selectivity: 1.0 / 32_000},
					{Left: 5, Right: 6, Selectivity: 1.0 / 64_000},
					{Left: 6, Right: 7, Selectivity: 1.0 / 128_000},
				},
			},
		},
		{
			Name:        "join5-cycle",
			Description: "five-relation cyclic join graph (the closing edge tightens every full plan's cardinality)",
			Query: Query{
				Relations: []Relation{
					{Name: "A", Tuples: 2_000, Width: 16},
					{Name: "B", Tuples: 4_000, Width: 16},
					{Name: "C", Tuples: 8_000, Width: 16},
					{Name: "D", Tuples: 16_000, Width: 16},
					{Name: "E", Tuples: 32_000, Width: 16},
				},
				Joins: []JoinEdge{
					{Left: 0, Right: 1, Selectivity: 1.0 / 4_000},
					{Left: 1, Right: 2, Selectivity: 1.0 / 8_000},
					{Left: 2, Right: 3, Selectivity: 1.0 / 16_000},
					{Left: 3, Right: 4, Selectivity: 1.0 / 32_000},
					{Left: 0, Right: 4, Selectivity: 1.0 / 32_000},
				},
			},
		},
		{
			Name:        "join6-islands",
			Description: "two selective three-relation islands bridged by one loose edge — the shape where a bushy plan (join each island, then bridge) beats every left-deep order",
			Query: Query{
				Relations: []Relation{
					{Name: "A1", Tuples: 50_000, Width: 16},
					{Name: "A2", Tuples: 60_000, Width: 16},
					{Name: "A3", Tuples: 100_000, Width: 16},
					{Name: "B1", Tuples: 40_000, Width: 16},
					{Name: "B2", Tuples: 45_000, Width: 16},
					{Name: "B3", Tuples: 80_000, Width: 16},
				},
				Joins: []JoinEdge{
					{Left: 0, Right: 1, Selectivity: 1.0 / 60_000},
					{Left: 1, Right: 2, Selectivity: 1.0 / 100_000},
					{Left: 3, Right: 4, Selectivity: 1.0 / 45_000},
					{Left: 4, Right: 5, Selectivity: 1.0 / 80_000},
					{Left: 2, Right: 3, Selectivity: 1.0 / 40_000},
				},
			},
		},
		{
			Name:        "join12-chain",
			Description: "twelve-relation chain join, sizes doubling from 500 to 1M rows (12 relations — exercises the MaxRelations 14 DP ceiling)",
			Query: Query{
				Relations: []Relation{
					{Name: "R1", Tuples: 500, Width: 16},
					{Name: "R2", Tuples: 1_000, Width: 16},
					{Name: "R3", Tuples: 2_000, Width: 16},
					{Name: "R4", Tuples: 4_000, Width: 16},
					{Name: "R5", Tuples: 8_000, Width: 16},
					{Name: "R6", Tuples: 16_000, Width: 16},
					{Name: "R7", Tuples: 32_000, Width: 16},
					{Name: "R8", Tuples: 64_000, Width: 16},
					{Name: "R9", Tuples: 128_000, Width: 16},
					{Name: "R10", Tuples: 256_000, Width: 16},
					{Name: "R11", Tuples: 512_000, Width: 16},
					{Name: "R12", Tuples: 1_024_000, Width: 16},
				},
				Joins: []JoinEdge{
					{Left: 0, Right: 1, Selectivity: 1.0 / 1_000},
					{Left: 1, Right: 2, Selectivity: 1.0 / 2_000},
					{Left: 2, Right: 3, Selectivity: 1.0 / 4_000},
					{Left: 3, Right: 4, Selectivity: 1.0 / 8_000},
					{Left: 4, Right: 5, Selectivity: 1.0 / 16_000},
					{Left: 5, Right: 6, Selectivity: 1.0 / 32_000},
					{Left: 6, Right: 7, Selectivity: 1.0 / 64_000},
					{Left: 7, Right: 8, Selectivity: 1.0 / 128_000},
					{Left: 8, Right: 9, Selectivity: 1.0 / 256_000},
					{Left: 9, Right: 10, Selectivity: 1.0 / 512_000},
					{Left: 10, Right: 11, Selectivity: 1.0 / 1_024_000},
				},
			},
		},
		{
			Name:        "join10-star",
			Description: "a 600k-row fact table against nine dimensions of shrinking size (10 relations — the widest star the DP search prices; every subset of dimensions is a connected subgraph)",
			Query: Query{
				Relations: []Relation{
					{Name: "F", Tuples: 600_000, Width: 32},
					{Name: "D1", Tuples: 30_000, Width: 16},
					{Name: "D2", Tuples: 15_000, Width: 16},
					{Name: "D3", Tuples: 8_000, Width: 16},
					{Name: "D4", Tuples: 4_000, Width: 16},
					{Name: "D5", Tuples: 2_000, Width: 16},
					{Name: "D6", Tuples: 1_000, Width: 16},
					{Name: "D7", Tuples: 500, Width: 16},
					{Name: "D8", Tuples: 250, Width: 16},
					{Name: "D9", Tuples: 100, Width: 16},
				},
				Joins: []JoinEdge{
					{Left: 0, Right: 1, Selectivity: 1.0 / 30_000},
					{Left: 0, Right: 2, Selectivity: 1.0 / 15_000},
					{Left: 0, Right: 3, Selectivity: 1.0 / 8_000},
					{Left: 0, Right: 4, Selectivity: 1.0 / 4_000},
					{Left: 0, Right: 5, Selectivity: 1.0 / 2_000},
					{Left: 0, Right: 6, Selectivity: 1.0 / 1_000},
					{Left: 0, Right: 7, Selectivity: 1.0 / 500},
					{Left: 0, Right: 8, Selectivity: 1.0 / 250},
					{Left: 0, Right: 9, Selectivity: 1.0 / 100},
				},
			},
		},
	}
}

// ScenarioNames returns the catalog's scenario names in catalog order.
func ScenarioNames() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, s := range cat {
		names[i] = s.Name
	}
	return names
}

// ScenarioByName looks a scenario up in the catalog.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
