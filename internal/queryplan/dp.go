package queryplan

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/costir"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
)

// The two-phase DP optimizer (phase 1 lives here). Phase 1 runs a
// dynamic program over the connected subgraphs of the join graph
// (DPccp-style, bushy trees allowed, cross-product-free): a memo table
// keyed by relation subset holds, per subset, the top-k subplans ranked
// by a context-free cost bound — every operator of the subplan priced
// in isolation against a cold cache, summed. The bound has to be
// context-free because the paper's Eq. 5.2 threads cache state through
// the ⊕ sequence, which makes a subplan's exact cost depend on
// everything that ran before it; pricing each operator as if it ran
// alone is the pruning metric, not the final answer. Phase 2
// (internal/planner) re-costs every surviving full plan exactly as the
// exhaustive path does — one ⊕-sequenced compound pattern,
// paper-faithful IR evaluation — so final rankings remain
// bit-compatible with the algebra.
//
// The memo is built for an optimizer's inner loop (docs/optimizer.md):
//
//   - Subplans live inline in per-subset slabs of plain structs (child
//     links are (subset, slot) indices, not pointers); *Plan trees are
//     materialized only for the full set's survivors, so the memo
//     allocates O(subsets × k) structs instead of one heap node per
//     candidate.
//   - The memo itself is a dense table indexed by subset bitmask — no
//     hashing on the hot path.
//   - The cost bound is priced from interned operator-step geometries:
//     each primitive step (sort, merge, hash join, partition, …) is
//     lowered, compiled and cold-evaluated once per distinct geometry
//     across the whole search, and compound operators price as sums of
//     interned steps — a partitioned hash join prices its m symmetric
//     cluster joins as one interned eval, not m.
//   - Phase 1 is parallelized across subset-size strata: every size-k
//     subset reads only finalized entries of sizes < k, so a bounded
//     worker pool per stratum is race-free by construction, and
//     per-subset insertion counters keep tie-breaking independent of
//     goroutine scheduling — results are bit-identical at every
//     Parallelism setting.
//
// docs/optimizer.md discusses why the bound is safe-ish and how the
// exhaustive oracle test bounds the risk.

// SearchStrategy selects the plan-space search engine.
type SearchStrategy string

const (
	// SearchDP is the memoized dynamic-programming search over
	// connected subgraphs (the default; handles up to MaxRelations).
	SearchDP SearchStrategy = "dp"
	// SearchExhaustive is the exhaustive left-deep enumerator — the
	// complete-but-factorial test oracle for small queries.
	SearchExhaustive SearchStrategy = "exhaustive"
)

// SearchOptions tune the plan-space search. The zero value means the
// DP search with DefaultTopK, bushy trees enabled, and one memo worker
// per available CPU.
type SearchOptions struct {
	// Strategy picks the engine; "" means SearchDP.
	Strategy SearchStrategy
	// TopK bounds the subplans kept per memo bucket in the DP search
	// (pruned by the context-free cost bound). 0 means DefaultTopK;
	// negative disables pruning entirely (every subplan survives — the
	// configuration the exhaustive-oracle parity test runs).
	TopK int
	// LeftDeepOnly restricts the DP search to left-deep join trees
	// (bushy off), matching the exhaustive enumerator's plan space.
	LeftDeepOnly bool
	// Parallelism bounds the worker pool that builds each subset-size
	// stratum of the DP memo. 0 means GOMAXPROCS, 1 runs
	// single-threaded, negative is clamped to 1. The search result is
	// bit-identical at every setting — tie-breaking never depends on
	// goroutine scheduling (see docs/optimizer.md).
	Parallelism int
}

// DefaultTopK is the per-bucket memo width used when TopK is 0.
const DefaultTopK = 3

// normalized resolves defaults; topK and parallelism return the
// effective knob values.
func (so SearchOptions) normalized() SearchOptions {
	if so.Strategy == "" {
		so.Strategy = SearchDP
	}
	return so
}

func (so SearchOptions) topK() int {
	switch {
	case so.TopK == 0:
		return DefaultTopK
	case so.TopK < 0:
		return math.MaxInt
	}
	return so.TopK
}

func (so SearchOptions) parallelism() int {
	if so.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if so.Parallelism < 1 {
		return 1
	}
	return so.Parallelism
}

// Search expands a query into physical plan trees with the configured
// strategy (opts.Search). SearchDP prices its pruning bounds on hier,
// which must be non-nil; SearchExhaustive ignores hier and delegates to
// Enumerate. Score the result with internal/planner.ScoreOn — that
// exact re-cost is phase 2 of the DP optimizer.
func Search(q Query, opts Options, hier *hardware.Hierarchy) ([]*Plan, error) {
	so := opts.Search.normalized()
	switch so.Strategy {
	case SearchExhaustive:
		return Enumerate(q, opts)
	case SearchDP:
		return dpSearch(q, opts, so, hier)
	default:
		return nil, fmt.Errorf("queryplan: unknown search strategy %q (want %q or %q)",
			so.Strategy, SearchDP, SearchExhaustive)
	}
}

// ---------------------------------------------------------------------
// Interned operator-step pricing (the context-free cost bound).

// stepKind discriminates the primitive operator steps the bound prices.
// Every step cost is the cold IR evaluation of the step's Table-2
// pattern plus nothing else; compound operators are priced as sums of
// steps.
type stepKind uint8

const (
	stepProject stepKind = iota // filtered/projecting scan: s_trav(U,u) ⊙ s_trav(W)
	stepSort                    // in-place quick-sort of one region
	stepMerge                   // merge join: three concurrent s_trav
	stepHash                    // hash join: build ⊕ probe (one unit, state threads inside)
	stepNLJ                     // nested-loop join
	stepPhj                     // whole partitioned hash join (partitions ⊕ clusters)
)

// stepKey is the geometry of one primitive step — everything its cold
// cost depends on. n3/w3 hold the output region where present; m holds
// the partition fan-out or the projection's bytes-used.
type stepKey struct {
	kind           stepKind
	m              int64
	n1, w1, n2, w2 int64
	n3, w3         int64
}

// bounder prices the context-free cost bound: step costs interned by
// geometry across every search in the process (see stepCache), operator
// costs interned per search on top (a join operator's geometry includes
// sortedness and algorithm, which select its steps). Both tables are
// shared by every memo worker; the values are pure functions of their
// keys, so concurrent duplicate computation is benign and the cached
// values are scheduling-independent.
type bounder struct {
	hier  *hardware.Hierarchy
	prune int64
	cpu   CPUCosts

	// env fingerprints everything besides the step geometry that a step
	// cost depends on, making cached costs shareable across searches.
	env envKey

	opMu sync.RWMutex
	ops  map[opKey]float64
}

// envKey is the pricing environment of a search: the hardware hierarchy
// (fingerprinted by its level parameters), the sort-recursion prune
// bound, and the CPU cost constants.
type envKey struct {
	hw    string
	prune int64
	cpu   CPUCosts
}

// stepCache interns step costs process-wide, keyed by (environment,
// geometry). A serving process prices a stream of queries against the
// same one or two hardware profiles, and distinct queries over one
// catalog share most operator geometries, so steady-state searches hit
// this table for nearly every bound. Entries are pure functions of
// their key (a cold IR evaluation), so sharing them across goroutines
// and searches cannot change any result. The count cap is a safety
// valve for adversarial geometry streams: past it, costs are computed
// uncached rather than evicted, keeping behavior simple and
// deterministic.
var (
	stepCache     sync.Map // stepCacheKey -> float64
	stepCacheSize atomic.Int64
)

const maxStepCacheEntries = 1 << 20

type stepCacheKey struct {
	env  envKey
	step stepKey
}

// ResetStepCache empties the process-global step-cost cache. Cached
// entries are pure functions of their keys, so the only observable
// effect is timing — benchmarks call this to measure a cold search
// after earlier runs have already interned every geometry.
func ResetStepCache() {
	stepCache.Range(func(k, _ any) bool {
		stepCache.Delete(k)
		return true
	})
	stepCacheSize.Store(0)
}

// opKey is the geometry of one join operator — everything its bound
// (selected steps + CPU estimate) depends on.
type opKey struct {
	alg        Algorithm
	fanout     int64
	n1, w1     int64
	sorted1    bool
	n2, w2     int64
	sorted2    bool
	nOut, wOut int64
}

func newBounder(hier *hardware.Hierarchy, prune int64, cpu CPUCosts) *bounder {
	return &bounder{
		hier:  hier,
		prune: prune,
		cpu:   cpu,
		env:   envKey{hw: hier.Fingerprint(), prune: prune, cpu: cpu},
		ops:   make(map[opKey]float64),
	}
}

// step returns the interned cold cost of one primitive step.
func (b *bounder) step(k stepKey) (float64, error) {
	ck := stepCacheKey{env: b.env, step: k}
	if c, ok := stepCache.Load(ck); ok {
		return c.(float64), nil
	}
	prog, err := costir.Compile(b.stepPattern(k))
	if err != nil {
		return 0, err
	}
	c := prog.MemoryTimeNS(b.hier)
	if stepCacheSize.Load() < maxStepCacheEntries {
		if _, loaded := stepCache.LoadOrStore(ck, c); !loaded {
			stepCacheSize.Add(1)
		}
	}
	return c, nil
}

// stepPattern builds the step's Table-2 pattern from its geometry.
// Region names are fixed placeholders: a step is always evaluated in
// isolation, so only geometry (and intra-step pointer identity, which
// the engine builders preserve) matters.
func (b *bounder) stepPattern(k stepKey) pattern.Pattern {
	switch k.kind {
	case stepProject:
		return engine.ProjectPattern(region.New("i", k.n1, k.w1), region.New("o", k.n3, k.w3), k.m)
	case stepSort:
		return engine.QuickSortPattern(region.New("s", k.n1, k.w1), b.prune)
	case stepMerge:
		return engine.MergeJoinPattern(
			region.New("l", k.n1, k.w1), region.New("r", k.n2, k.w2), region.New("o", k.n3, k.w3))
	case stepHash:
		// n1/w1 is the probe side, n2/w2 the build side (callers decide).
		build := region.New("b", k.n2, k.w2)
		return engine.HashJoinPattern(
			region.New("p", k.n1, k.w1), build, engine.HashRegionFor("h", build.N),
			region.New("o", k.n3, k.w3))
	case stepNLJ:
		return engine.NestedLoopJoinPattern(
			region.New("l", k.n1, k.w1), region.New("r", k.n2, k.w2), region.New("o", k.n3, k.w3))
	case stepPhj:
		// Priced as one whole pattern: the Seq state threading across
		// partition passes and clusters (resident-parent discounts,
		// steady-state cluster effects) shifts the cost by up to ~10%
		// in either direction versus a per-step sum, enough to reorder
		// survivors, so this is the one compound the bound cannot
		// decompose. Sortedness is irrelevant to its cost, so the
		// geometry key keeps one entry per (m, inputs, output).
		return engine.PartitionedHashJoinPattern(
			region.New("u", k.n1, k.w1), region.New("v", k.n2, k.w2),
			region.New("o", k.n3, k.w3), k.m)
	default:
		panic(fmt.Sprintf("queryplan: unknown step kind %d", k.kind))
	}
}

// joinBound prices one join operator in isolation: its primitive steps
// cold-evaluated (each interned by geometry) plus the
// hardware-independent CPU estimate — the additive, context-free
// decomposition that keeps phase 1 linear in distinct step geometries.
// The per-operator result is interned too, so the common case is one
// map hit.
func (b *bounder) joinBound(k opKey) (float64, error) {
	b.opMu.RLock()
	c, ok := b.ops[k]
	b.opMu.RUnlock()
	if ok {
		return c, nil
	}
	mem, err := b.joinMem(k)
	if err != nil {
		return 0, err
	}
	c = mem + b.joinCPU(k)
	b.opMu.Lock()
	b.ops[k] = c
	b.opMu.Unlock()
	return c, nil
}

// joinMem sums the operator's cold step costs, mirroring the step list
// Plan.Lower emits for the same node.
func (b *bounder) joinMem(k opKey) (float64, error) {
	switch k.alg {
	case MergeJoin:
		return b.step(stepKey{kind: stepMerge, n1: k.n1, w1: k.w1, n2: k.n2, w2: k.w2, n3: k.nOut, w3: k.wOut})
	case SortMergeJoin:
		var sum float64
		if !k.sorted1 {
			c, err := b.step(stepKey{kind: stepSort, n1: k.n1, w1: k.w1})
			if err != nil {
				return 0, err
			}
			sum += c
		}
		if !k.sorted2 {
			c, err := b.step(stepKey{kind: stepSort, n1: k.n2, w1: k.w2})
			if err != nil {
				return 0, err
			}
			sum += c
		}
		c, err := b.step(stepKey{kind: stepMerge, n1: k.n1, w1: k.w1, n2: k.n2, w2: k.w2, n3: k.nOut, w3: k.wOut})
		if err != nil {
			return 0, err
		}
		return sum + c, nil
	case HashJoin:
		// Build on the smaller input, exactly as Plan.Lower does.
		np, wp, nb, wb := k.n1, k.w1, k.n2, k.w2
		if k.n1 < k.n2 {
			np, wp, nb, wb = k.n2, k.w2, k.n1, k.w1
		}
		return b.step(stepKey{kind: stepHash, n1: np, w1: wp, n2: nb, w2: wb, n3: k.nOut, w3: k.wOut})
	case PartitionedHashJoin:
		return b.step(stepKey{kind: stepPhj, m: k.fanout, n1: k.n1, w1: k.w1, n2: k.n2, w2: k.w2, n3: k.nOut, w3: k.wOut})
	case NestedLoopJoin:
		return b.step(stepKey{kind: stepNLJ, n1: k.n1, w1: k.w1, n2: k.n2, w2: k.w2, n3: k.nOut, w3: k.wOut})
	default:
		return 0, fmt.Errorf("queryplan: unknown join algorithm %q", k.alg)
	}
}

// joinCPU mirrors the lowerer's per-algorithm CPU estimates (Eq. 6.1's
// hardware-independent component).
func (b *bounder) joinCPU(k opKey) float64 {
	nl, nr, no := float64(k.n1), float64(k.n2), float64(k.nOut)
	switch k.alg {
	case NestedLoopJoin:
		return b.cpu.Compare*nl*nr + b.cpu.Move*no
	case MergeJoin:
		return b.cpu.Compare*(nl+nr) + b.cpu.Move*no
	case SortMergeJoin:
		var cpu float64
		if !k.sorted1 {
			cpu += b.cpu.sortNS(nl)
		}
		if !k.sorted2 {
			cpu += b.cpu.sortNS(nr)
		}
		return cpu + b.cpu.Compare*(nl+nr) + b.cpu.Move*no
	case HashJoin:
		return b.cpu.Hash*(nl+nr) + b.cpu.Move*no
	case PartitionedHashJoin:
		return b.cpu.Partition*(nl+nr) + b.cpu.Hash*(nl+nr) + b.cpu.Move*no
	}
	return 0
}

// leafBound prices a scan leaf's own materialization step. A bare
// unfiltered scan contributes no step of its own (its consumer reads
// the base region directly), so it bounds to zero; a filtered or
// projecting scan is priced cold like any other step.
func (b *bounder) leafBound(leaf *Plan) (float64, error) {
	if leaf.Filter >= 1 && leaf.Proj <= 0 {
		return 0, nil
	}
	mem, err := b.step(stepKey{
		kind: stepProject, m: leaf.Proj,
		n1: leaf.Rel.Tuples, w1: leaf.Rel.Width,
		n3: leaf.Out.Tuples, w3: leaf.Out.Width,
	})
	if err != nil {
		return 0, err
	}
	return mem + b.cpu.Compare*float64(leaf.Rel.Tuples) + b.cpu.Move*float64(leaf.Out.Tuples), nil
}

// ---------------------------------------------------------------------
// The dense, arena-style memo.

// cand is one memoized subplan, stored inline in its subset's slab: the
// node payload (algorithm, child references, output geometry) plus its
// context-free bound and the per-subset insertion number that breaks
// bound ties deterministically. Child references point into finalized
// smaller subsets, so they stay valid while this subset's slab is
// compacted.
type cand struct {
	bound float64
	// seq is the subset-local insertion number — the deterministic
	// tie-break that keeps memo pruning and final ordering stable and
	// independent of which worker built which subset.
	seq         int32
	alg         int8 // index into joinAlgs; algLeaf for scan leaves
	fanout      int32
	left, right subRef
	outN, outW  int64
	outSorted   bool
	rel         int32 // relation index of a scan leaf
}

// algLeaf marks a scan-leaf candidate.
const algLeaf = int8(-1)

// joinAlgs maps the cand.alg index back to the algorithm inventory.
var joinAlgs = [...]Algorithm{
	MergeJoin, SortMergeJoin, HashJoin, PartitionedHashJoin, NestedLoopJoin,
}

func algIndex(a Algorithm) int8 {
	for i, x := range joinAlgs {
		if x == a {
			return int8(i)
		}
	}
	panic(fmt.Sprintf("queryplan: unknown join algorithm %q", a))
}

// subRef addresses one candidate: the subset's bitmask plus a slot
// packing (bucket index, class) as idx*2 + class.
type subRef struct {
	mask uint32
	slot int32
}

// memoEntry holds one subset's surviving subplans, split by output
// order (the classic "interesting orders" refinement): a sorted-output
// subplan can lose on the context-free bound yet win the full query by
// feeding a downstream merge join, sort-aggregate or order-by for free,
// so each order class keeps its own top-k. ranked is the finalized
// merge of both classes, cheapest bound first — computed once when the
// subset's stratum completes, then read-only for every larger subset.
type memoEntry struct {
	buckets [2][]cand // [0] unsorted output, [1] sorted output
	ranked  []int32   // slots, cheapest (bound, seq) first
	seq     int32
}

func (m *memoEntry) at(slot int32) *cand { return &m.buckets[slot&1][slot>>1] }

// dp carries the state of one phase-1 run.
type dp struct {
	e    *enumerator
	b    *bounder
	topK int
	par  int
	full uint32
	// leftDeep restricts joins to a single relation on the right side.
	leftDeep bool
	// adj[i] is the bitmask of relations sharing a join edge with i.
	adj []uint32
	// memo[s] holds the surviving subplans for relation subset s — a
	// dense table indexed by bitmask, so only connected subsets ever
	// become non-empty: singletons are seeded directly, and a larger
	// subset gains plans only from a split into two non-empty (hence
	// connected) halves bridged by a join edge — connectivity propagates
	// inductively and cross products are never built.
	memo []memoEntry
}

// dpSearch is phase 1: build the memo bottom-up across subset-size
// strata (in parallel when allowed), then materialize the full set's
// survivors as *Plan trees and expand them with the aggregate /
// distinct / order-by variants exactly as the exhaustive enumerator
// does.
func dpSearch(q Query, opts Options, so SearchOptions, hier *hardware.Hierarchy) ([]*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if hier == nil {
		return nil, fmt.Errorf("queryplan: DP search needs a hardware hierarchy to price its context-free cost bounds (pass one to Search, or use SearchExhaustive)")
	}
	opts = opts.normalized()
	e := enumerator{q: q, opts: opts}
	n := len(q.Relations)

	d := &dp{
		e:        &e,
		b:        newBounder(hier, opts.PruneBytes, opts.CPU),
		topK:     so.topK(),
		par:      so.parallelism(),
		full:     uint32(1)<<n - 1,
		leftDeep: so.LeftDeepOnly,
		adj:      adjacency(q),
		memo:     make([]memoEntry, uint32(1)<<n),
	}
	for i := 0; i < n; i++ {
		leaf := e.scanPlan(i)
		bound, err := d.b.leafBound(leaf)
		if err != nil {
			return nil, err
		}
		entry := &d.memo[uint32(1)<<i]
		entry.insert(cand{
			bound: bound, alg: algLeaf, rel: int32(i),
			outN: leaf.Out.Tuples, outW: leaf.Out.Width, outSorted: leaf.Out.Sorted,
		}, d.topK)
		entry.finalize(d.topK)
	}
	if err := d.runStrata(n); err != nil {
		return nil, err
	}

	plans := d.materialize()
	if q.GroupBy > 0 {
		plans = e.aggVariants(plans, OpAggregate, q.GroupBy)
	}
	if q.Distinct > 0 {
		plans = e.aggVariants(plans, OpDistinct, q.Distinct)
	}
	if q.SortBy {
		plans = e.sortVariants(plans)
	}
	// A negative TopK is an explicit "give me everything" oracle run, so
	// the cap — a guard against unintentionally unbounded plan lists —
	// does not apply.
	if so.TopK >= 0 && len(plans) > opts.MaxPlans {
		return nil, fmt.Errorf("queryplan: %d candidate plans exceed the cap of %d (shrink TopK or raise Options.MaxPlans)",
			len(plans), opts.MaxPlans)
	}
	return plans, nil
}

// runStrata drives the dynamic program one subset size at a time. Every
// size-k subset reads only finalized entries of sizes < k and writes
// only its own memo slot, so the subsets of one stratum are independent
// — a bounded worker pool drains each stratum, with a plain atomic
// cursor handing out subsets. Determinism does not depend on the
// schedule: each subset's candidates, pruning and ranking are computed
// from finalized smaller strata and subset-local counters only.
func (d *dp) runStrata(n int) error {
	bySize := make([][]uint32, n+1)
	for s := uint32(3); s <= d.full; s++ {
		if k := bits.OnesCount32(s); k >= 2 {
			bySize[k] = append(bySize[k], s)
		}
	}
	for k := 2; k <= n; k++ {
		subs := bySize[k]
		workers := d.par
		if workers > len(subs) {
			workers = len(subs)
		}
		if workers <= 1 {
			for _, s := range subs {
				if err := d.buildSubset(s); err != nil {
					return err
				}
			}
			continue
		}
		var (
			next     atomic.Int64
			failed   atomic.Bool
			errOnce  sync.Once
			firstErr error
			wg       sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !failed.Load() {
					i := next.Add(1) - 1
					if i >= int64(len(subs)) {
						return
					}
					if err := d.buildSubset(subs[i]); err != nil {
						errOnce.Do(func() { firstErr = err })
						failed.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
		if failed.Load() {
			return firstErr
		}
	}
	return nil
}

// buildSubset fills memo[s] from every (S1, S2) split of s: both halves
// connected (non-empty memo), joined by at least one edge, every
// surviving subplan pair, every applicable join algorithm. Ordered
// pairs are enumerated with S1 ascending, which makes the left-deep
// restriction of the DP search visit extensions in the same relation
// order as the exhaustive enumerator.
func (d *dp) buildSubset(s uint32) error {
	entry := &d.memo[s]
	// (s1-s)&s enumerates the proper non-empty submasks of s in
	// ascending numeric order without allocating.
	for s1 := (0 - s) & s; s1 != s; s1 = (s1 - s) & s {
		s2 := s ^ s1
		if d.leftDeep && bits.OnesCount32(s2) != 1 {
			continue
		}
		e1, e2 := &d.memo[s1], &d.memo[s2]
		if len(e1.ranked) == 0 || len(e2.ranked) == 0 || !d.crossEdge(s1, s2) {
			continue
		}
		for _, sl1 := range e1.ranked {
			c1 := e1.at(sl1)
			r1 := subRef{mask: s1, slot: sl1}
			for _, sl2 := range e2.ranked {
				c2 := e2.at(sl2)
				outN, outW := d.pairGeometry(c1, c2, s1, s2)
				if err := d.addJoins(entry, r1, c1, subRef{mask: s2, slot: sl2}, c2, outN, outW); err != nil {
					return err
				}
			}
		}
	}
	entry.finalize(d.topK)
	return nil
}

// addJoins files one join candidate per applicable algorithm — the same
// inventory, eligibility rules and emission order as the exhaustive
// enumerator's joinNodes.
func (d *dp) addJoins(entry *memoEntry, r1 subRef, c1 *cand, r2 subRef, c2 *cand, outN, outW int64) error {
	nl, nr := c1.outN, c2.outN
	childBound := c1.bound + c2.bound
	emit := func(alg Algorithm, fanout int64, sorted bool) error {
		op, err := d.b.joinBound(opKey{
			alg: alg, fanout: fanout,
			n1: nl, w1: c1.outW, sorted1: c1.outSorted,
			n2: nr, w2: c2.outW, sorted2: c2.outSorted,
			nOut: outN, wOut: outW,
		})
		if err != nil {
			return err
		}
		entry.insert(cand{
			bound: childBound + op,
			alg:   algIndex(alg), fanout: int32(fanout),
			left: r1, right: r2,
			outN: outN, outW: outW, outSorted: sorted,
		}, d.topK)
		return nil
	}

	if c1.outSorted && c2.outSorted {
		// Both inputs already key-ordered: a sort-merge join would sort
		// nothing, so only the plain merge join is emitted.
		if err := emit(MergeJoin, 0, true); err != nil {
			return err
		}
	} else if err := emit(SortMergeJoin, 0, true); err != nil {
		return err
	}
	if err := emit(HashJoin, 0, false); err != nil {
		return err
	}
	for _, m := range d.e.opts.Fanouts {
		if m*8 > nl || m*8 > nr {
			continue // degenerate clusters
		}
		if err := emit(PartitionedHashJoin, m, false); err != nil {
			return err
		}
	}
	if d.e.opts.NLJMaxInner > 0 && (nl <= d.e.opts.NLJMaxInner || nr <= d.e.opts.NLJMaxInner) {
		// The outer relation's order survives a nested-loop join.
		if err := emit(NestedLoopJoin, 0, c1.outSorted); err != nil {
			return err
		}
	}
	return nil
}

// pairGeometry estimates the output of joining two memoized subplans:
// cardinalities multiplied and scaled by every edge bridging the two
// subsets, widths concatenated minus the shared key — the set-split
// generalization of the exhaustive enumerator's joinOutput, and
// identical to it (including the per-step rounding cascade) on
// left-deep splits.
func (d *dp) pairGeometry(c1, c2 *cand, s1, s2 uint32) (outN, outW int64) {
	card := float64(c1.outN) * float64(c2.outN)
	for _, edge := range d.e.q.Joins {
		l, r := uint32(1)<<edge.Left, uint32(1)<<edge.Right
		if (l&s1 != 0 && r&s2 != 0) || (l&s2 != 0 && r&s1 != 0) {
			card *= edge.Selectivity
		}
	}
	width := c1.outW + c2.outW - engine.KeyWidth
	if width < engine.KeyWidth {
		width = engine.KeyWidth
	}
	return clampTuples(card), width
}

// insert files a candidate into its order-class bucket, compacting the
// bucket back to the top-k whenever it doubles — online top-k selection
// is prefix-composable (an element dropped here had k
// better-or-equal-and-earlier entries, which only ever get displaced by
// still better ones), so mid-stream compaction yields exactly the same
// survivors as pruning once at the end while keeping memo memory
// O(subsets × k) instead of O(candidates).
func (m *memoEntry) insert(c cand, topK int) {
	c.seq = m.seq
	m.seq++
	bucket := &m.buckets[0]
	if c.outSorted {
		bucket = &m.buckets[1]
	}
	*bucket = append(*bucket, c)
	if topK < math.MaxInt/2 && len(*bucket) >= 2*topK+16 {
		*bucket = cutTopK(*bucket, topK)
	}
}

// cutTopK sorts a bucket by (bound, insertion order) and truncates it
// to k entries. The stable sort preserves insertion order among equal
// bounds, so the cut is deterministic.
func cutTopK(b []cand, k int) []cand {
	sort.SliceStable(b, func(i, j int) bool { return b[i].bound < b[j].bound })
	if len(b) > k {
		b = b[:k]
	}
	return b
}

// finalize prunes both order-class buckets to the top-k and computes
// the entry's cross-class ranking once, cheapest (bound, seq) first.
// After finalize the entry is read-only — every larger subset iterates
// the precomputed ranking instead of re-sorting per split.
func (m *memoEntry) finalize(topK int) {
	if topK < math.MaxInt/2 {
		m.buckets[0] = cutTopK(m.buckets[0], topK)
		m.buckets[1] = cutTopK(m.buckets[1], topK)
	} else {
		// Pruning disabled (the oracle configuration): order each bucket
		// without truncating.
		m.buckets[0] = cutTopK(m.buckets[0], len(m.buckets[0]))
		m.buckets[1] = cutTopK(m.buckets[1], len(m.buckets[1]))
	}
	n := len(m.buckets[0]) + len(m.buckets[1])
	if n == 0 {
		return
	}
	m.ranked = make([]int32, 0, n)
	for cls := int32(0); cls < 2; cls++ {
		for i := range m.buckets[cls] {
			m.ranked = append(m.ranked, int32(i)<<1|cls)
		}
	}
	sort.SliceStable(m.ranked, func(i, j int) bool {
		a, b := m.at(m.ranked[i]), m.at(m.ranked[j])
		if a.bound != b.bound {
			return a.bound < b.bound
		}
		return a.seq < b.seq
	})
}

// materialize rebuilds *Plan trees for the full set's survivors — the
// only point where heap nodes are allocated. Shared subtrees are
// materialized once (the memo cache below), preserving the node sharing
// the pointer-based memo used to produce.
func (d *dp) materialize() []*Plan {
	ranked := d.memo[d.full].ranked
	cache := make(map[subRef]*Plan)
	plans := make([]*Plan, len(ranked))
	for i, slot := range ranked {
		plans[i] = d.materializeNode(subRef{mask: d.full, slot: slot}, cache)
	}
	return plans
}

func (d *dp) materializeNode(r subRef, cache map[subRef]*Plan) *Plan {
	if p, ok := cache[r]; ok {
		return p
	}
	c := d.memo[r.mask].at(r.slot)
	var p *Plan
	if c.alg == algLeaf {
		p = d.e.scanPlan(int(c.rel))
	} else {
		// Every join output is named by its relation subset. A subset
		// occurs at most once per plan tree, so the name is collision-free
		// within any plan a memoized subplan can end up in — essential
		// because the IR canonicalizer dedups regions by name and
		// geometry, and a bushy plan's disjoint subtrees (e.g. two
		// symmetric islands) routinely materialize same-sized
		// intermediates that must stay distinct regions. The exhaustive
		// enumerator's bare T%d names are safe only because left-deep
		// plans have one intermediate per size; costs are unaffected
		// either way (no collision under either scheme for left-deep
		// plans), which the parity harness locks.
		p = &Plan{
			Kind:      OpJoin,
			Algorithm: joinAlgs[c.alg],
			Fanout:    int64(c.fanout),
			Children:  []*Plan{d.materializeNode(c.left, cache), d.materializeNode(c.right, cache)},
			Out: Relation{
				Name:   fmt.Sprintf("T%d.%x", bits.OnesCount32(r.mask)-1, r.mask),
				Tuples: c.outN, Width: c.outW, Sorted: c.outSorted,
			},
		}
	}
	cache[r] = p
	return p
}

// adjacency builds the per-relation neighbour bitmasks.
func adjacency(q Query) []uint32 {
	adj := make([]uint32, len(q.Relations))
	for _, e := range q.Joins {
		adj[e.Left] |= uint32(1) << e.Right
		adj[e.Right] |= uint32(1) << e.Left
	}
	return adj
}

// crossEdge reports whether any join edge bridges the two halves.
func (d *dp) crossEdge(s1, s2 uint32) bool {
	for f := s1; f != 0; f &= f - 1 {
		if d.adj[bits.TrailingZeros32(f)]&s2 != 0 {
			return true
		}
	}
	return false
}
