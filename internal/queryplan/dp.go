package queryplan

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/costir"
	"repro/internal/engine"
	"repro/internal/hardware"
)

// The two-phase DP optimizer (phase 1 lives here). Phase 1 runs a
// dynamic program over the connected subgraphs of the join graph
// (DPccp-style, bushy trees allowed, cross-product-free): a memo table
// keyed by relation subset holds, per subset, the top-k subplans ranked
// by a context-free cost bound — every operator of the subplan lowered
// and IR-costed in isolation against a cold cache, summed. The bound
// has to be context-free because the paper's Eq. 5.2 threads cache
// state through the ⊕ sequence, which makes a subplan's exact cost
// depend on everything that ran before it; pricing each operator as if
// it ran alone is the pruning metric, not the final answer. The
// additive form makes phase 1 cheap: a candidate's bound is its
// children's memoized bounds plus a per-operator cold cost that is
// itself memoized by operator geometry, so the dynamic program never
// re-evaluates a subtree. Phase 2 (internal/planner) re-costs every
// surviving full plan exactly as the exhaustive path does — one
// ⊕-sequenced compound pattern, paper-faithful IR evaluation — so
// final rankings remain bit-compatible with the algebra.
// docs/optimizer.md discusses why the bound is safe-ish and how the
// exhaustive oracle test bounds the risk.

// SearchStrategy selects the plan-space search engine.
type SearchStrategy string

const (
	// SearchDP is the memoized dynamic-programming search over
	// connected subgraphs (the default; handles up to MaxRelations).
	SearchDP SearchStrategy = "dp"
	// SearchExhaustive is the exhaustive left-deep enumerator — the
	// complete-but-factorial test oracle for small queries.
	SearchExhaustive SearchStrategy = "exhaustive"
)

// SearchOptions tune the plan-space search. The zero value means the
// DP search with DefaultTopK and bushy trees enabled.
type SearchOptions struct {
	// Strategy picks the engine; "" means SearchDP.
	Strategy SearchStrategy
	// TopK bounds the subplans kept per memo bucket in the DP search
	// (pruned by the context-free cost bound). 0 means DefaultTopK;
	// negative disables pruning entirely (every subplan survives — the
	// configuration the exhaustive-oracle parity test runs).
	TopK int
	// LeftDeepOnly restricts the DP search to left-deep join trees
	// (bushy off), matching the exhaustive enumerator's plan space.
	LeftDeepOnly bool
}

// DefaultTopK is the per-bucket memo width used when TopK is 0.
const DefaultTopK = 3

// normalized resolves defaults; topK returns the effective bucket cap.
func (so SearchOptions) normalized() SearchOptions {
	if so.Strategy == "" {
		so.Strategy = SearchDP
	}
	return so
}

func (so SearchOptions) topK() int {
	switch {
	case so.TopK == 0:
		return DefaultTopK
	case so.TopK < 0:
		return math.MaxInt
	}
	return so.TopK
}

// Search expands a query into physical plan trees with the configured
// strategy (opts.Search). SearchDP prices its pruning bounds on hier,
// which must be non-nil; SearchExhaustive ignores hier and delegates to
// Enumerate. Score the result with internal/planner.ScoreOn — that
// exact re-cost is phase 2 of the DP optimizer.
func Search(q Query, opts Options, hier *hardware.Hierarchy) ([]*Plan, error) {
	so := opts.Search.normalized()
	switch so.Strategy {
	case SearchExhaustive:
		return Enumerate(q, opts)
	case SearchDP:
		return dpSearch(q, opts, so, hier)
	default:
		return nil, fmt.Errorf("queryplan: unknown search strategy %q (want %q or %q)",
			so.Strategy, SearchDP, SearchExhaustive)
	}
}

// scored is one memoized subplan with its context-free cost bound.
type scored struct {
	plan  *Plan
	bound float64
	// seq is the global insertion number — the deterministic tie-break
	// that keeps memo pruning and final ordering stable.
	seq int
}

// memoEntry holds one subset's surviving subplans, split by output
// order (the classic "interesting orders" refinement): a sorted-output
// subplan can lose on the context-free bound yet win the full query by
// feeding a downstream merge join, sort-aggregate or order-by for free,
// so each order class keeps its own top-k.
type memoEntry struct {
	unsorted, sorted []scored
}

func (m *memoEntry) empty() bool { return len(m.unsorted) == 0 && len(m.sorted) == 0 }

// ranked returns the entry's subplans merged across both order classes,
// cheapest bound first.
func (m *memoEntry) ranked() []scored {
	all := make([]scored, 0, len(m.unsorted)+len(m.sorted))
	all = append(all, m.unsorted...)
	all = append(all, m.sorted...)
	sort.Slice(all, func(i, j int) bool {
		if all[i].bound != all[j].bound {
			return all[i].bound < all[j].bound
		}
		return all[i].seq < all[j].seq
	})
	return all
}

// dp carries the state of one phase-1 run.
type dp struct {
	e    *enumerator
	hier *hardware.Hierarchy
	topK int
	// leftDeep restricts joins to a single relation on the right side.
	leftDeep bool
	// adj[i] is the bitmask of relations sharing a join edge with i.
	adj []uint32
	// memo[s] holds the surviving subplans for relation subset s. Only
	// connected subsets ever become non-empty: singletons are seeded
	// directly, and a larger subset gains plans only from a split into
	// two non-empty (hence connected) halves bridged by a join edge —
	// so connectivity propagates inductively and cross products are
	// never built.
	memo []memoEntry
	seq  int
	// opCost memoizes the cold cost of a single join operator by its
	// geometry: pairs drawn from the same memo buckets overwhelmingly
	// share input/output shapes, so the dynamic program prices each
	// distinct operator shape once instead of once per candidate.
	opCost map[opKey]float64
}

// opKey is the geometry of one join operator — everything its isolated
// lowering (and hence its cold cost) depends on.
type opKey struct {
	alg        Algorithm
	fanout     int64
	n1, w1     int64
	sorted1    bool
	n2, w2     int64
	sorted2    bool
	nOut, wOut int64
}

// dpSearch is phase 1: build the memo bottom-up over all subsets, then
// expand the full set's survivors with the aggregate/distinct/order-by
// variants exactly as the exhaustive enumerator does.
func dpSearch(q Query, opts Options, so SearchOptions, hier *hardware.Hierarchy) ([]*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if hier == nil {
		return nil, fmt.Errorf("queryplan: DP search needs a hardware hierarchy to price its context-free cost bounds (pass one to Search, or use SearchExhaustive)")
	}
	opts = opts.normalized()
	e := enumerator{q: q, opts: opts}
	n := len(q.Relations)

	d := &dp{
		e:        &e,
		hier:     hier,
		topK:     so.topK(),
		leftDeep: so.LeftDeepOnly,
		adj:      adjacency(q),
		memo:     make([]memoEntry, 1<<n),
		opCost:   make(map[opKey]float64),
	}
	for i := 0; i < n; i++ {
		leaf := e.scanPlan(i)
		b, err := d.leafBound(leaf)
		if err != nil {
			return nil, err
		}
		d.insert(uint32(1)<<i, scored{plan: leaf, bound: b, seq: d.next()})
	}
	full := uint32(1)<<n - 1
	// Numeric order visits every proper subset of s before s itself, so
	// each buildSubset sees final (pruned) child entries.
	for s := uint32(3); s <= full; s++ {
		if bits.OnesCount32(s) < 2 {
			continue
		}
		if err := d.buildSubset(s); err != nil {
			return nil, err
		}
	}

	ranked := d.memo[full].ranked()
	plans := make([]*Plan, len(ranked))
	for i, r := range ranked {
		plans[i] = r.plan
	}
	if q.GroupBy > 0 {
		plans = e.aggVariants(plans, OpAggregate, q.GroupBy)
	}
	if q.Distinct > 0 {
		plans = e.aggVariants(plans, OpDistinct, q.Distinct)
	}
	if q.SortBy {
		plans = e.sortVariants(plans)
	}
	// A negative TopK is an explicit "give me everything" oracle run, so
	// the cap — a guard against unintentionally unbounded plan lists —
	// does not apply.
	if so.TopK >= 0 && len(plans) > opts.MaxPlans {
		return nil, fmt.Errorf("queryplan: %d candidate plans exceed the cap of %d (shrink TopK or raise Options.MaxPlans)",
			len(plans), opts.MaxPlans)
	}
	return plans, nil
}

// adjacency builds the per-relation neighbour bitmasks.
func adjacency(q Query) []uint32 {
	adj := make([]uint32, len(q.Relations))
	for _, e := range q.Joins {
		adj[e.Left] |= uint32(1) << e.Right
		adj[e.Right] |= uint32(1) << e.Left
	}
	return adj
}

// next returns the next insertion number.
func (d *dp) next() int {
	d.seq++
	return d.seq
}

// insert files a subplan into its subset's order-class bucket,
// compacting the bucket back to the top-k whenever it doubles — online
// top-k selection is prefix-composable (an element dropped here had k
// better-or-equal-and-earlier entries, which only ever get displaced by
// still better ones), so mid-stream compaction yields exactly the same
// survivors as pruning once at the end while keeping memo memory
// O(subsets × k) instead of O(candidates).
func (d *dp) insert(s uint32, sc scored) {
	entry := &d.memo[s]
	bucket := &entry.unsorted
	if sc.plan.Out.Sorted {
		bucket = &entry.sorted
	}
	*bucket = append(*bucket, sc)
	if d.topK < math.MaxInt/2 && len(*bucket) >= 2*d.topK+16 {
		*bucket = cutTopK(*bucket, d.topK)
	}
}

// cutTopK sorts a bucket by (bound, insertion order) and truncates it
// to k entries.
func cutTopK(b []scored, k int) []scored {
	sort.SliceStable(b, func(i, j int) bool { return b[i].bound < b[j].bound })
	if len(b) > k {
		b = b[:k]
	}
	return b
}

// buildSubset fills memo[s] from every (S1, S2) split of s: both halves
// connected (non-empty memo), joined by at least one edge, every
// surviving subplan pair, every applicable join algorithm. Ordered
// pairs are enumerated with S1 ascending, which makes the left-deep
// restriction of the DP search visit extensions in the same relation
// order as the exhaustive enumerator.
func (d *dp) buildSubset(s uint32) error {
	for _, s1 := range splitsAscending(s) {
		s2 := s ^ s1
		if d.leftDeep && bits.OnesCount32(s2) != 1 {
			continue
		}
		e1, e2 := &d.memo[s1], &d.memo[s2]
		if e1.empty() || e2.empty() || !d.crossEdge(s1, s2) {
			continue
		}
		r1, r2 := e1.ranked(), e2.ranked()
		for _, p1 := range r1 {
			for _, p2 := range r2 {
				out := d.e.pairOutput(p1.plan, p2.plan, s1, s2, s)
				for _, node := range d.e.joinNodes(p1.plan, p2.plan, out) {
					op, err := d.opBound(node)
					if err != nil {
						return err
					}
					d.insert(s, scored{plan: node, bound: p1.bound + p2.bound + op, seq: d.next()})
				}
			}
		}
	}
	d.prune(s)
	return nil
}

// splitsAscending enumerates the proper non-empty subsets of s in
// ascending numeric order.
func splitsAscending(s uint32) []uint32 {
	subs := make([]uint32, 0, 16)
	for s1 := (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s {
		subs = append(subs, s1)
	}
	for i, j := 0, len(subs)-1; i < j; i, j = i+1, j-1 {
		subs[i], subs[j] = subs[j], subs[i]
	}
	return subs
}

// crossEdge reports whether any join edge bridges the two halves.
func (d *dp) crossEdge(s1, s2 uint32) bool {
	for f := s1; f != 0; f &= f - 1 {
		if d.adj[bits.TrailingZeros32(f)]&s2 != 0 {
			return true
		}
	}
	return false
}

// prune cuts each order-class bucket of memo[s] down to the top-k by
// bound (ties broken by insertion order, so the result is
// deterministic).
func (d *dp) prune(s uint32) {
	entry := &d.memo[s]
	entry.unsorted = cutTopK(entry.unsorted, d.topK)
	entry.sorted = cutTopK(entry.sorted, d.topK)
}

// coldCost lowers a plan to its compound pattern, compiles it, and
// evaluates it against a cold cache on the search's hierarchy, plus the
// hardware-independent CPU estimate. This is the context-free pricing
// primitive of the pruning bound — exact cost is context-dependent
// under Eq. 5.2's state threading, so the bound deliberately ignores
// whatever cache state would surround the priced steps.
func (d *dp) coldCost(p *Plan) (float64, error) {
	pat, cpuNS, err := p.Lower(d.e.opts.CPU, d.e.opts.PruneBytes)
	if err != nil {
		return 0, err
	}
	prog, err := costir.Compile(pat)
	if err != nil {
		return 0, err
	}
	return prog.MemoryTimeNS(d.hier) + cpuNS, nil
}

// leafBound prices a scan leaf's own materialization steps. A bare
// unfiltered scan contributes no step of its own (its consumer reads
// the base region directly), so it bounds to zero; a filtered or
// projecting scan is priced cold like any other operator.
func (d *dp) leafBound(leaf *Plan) (float64, error) {
	if leaf.Filter >= 1 && leaf.Proj <= 0 {
		return 0, nil
	}
	return d.coldCost(leaf)
}

// opBound prices one join operator in isolation: the node's own steps
// (including any sorts a sort-merge join adds), with its children
// replaced by already-materialized inputs so no subtree is
// re-evaluated. The result is memoized by operator geometry, and a
// candidate's full bound is its children's bounds plus this — the
// additive, context-free decomposition that keeps phase 1 linear in
// distinct operator shapes rather than quadratic in subplan sizes.
func (d *dp) opBound(node *Plan) (float64, error) {
	l, r := node.Children[0], node.Children[1]
	key := opKey{
		alg: node.Algorithm, fanout: node.Fanout,
		n1: l.Out.Tuples, w1: l.Out.Width, sorted1: l.Out.Sorted,
		n2: r.Out.Tuples, w2: r.Out.Width, sorted2: r.Out.Sorted,
		nOut: node.Out.Tuples, wOut: node.Out.Width,
	}
	if c, ok := d.opCost[key]; ok {
		return c, nil
	}
	iso := &Plan{
		Kind: OpJoin, Algorithm: node.Algorithm, Fanout: node.Fanout,
		Children: []*Plan{materializedLeaf(l.Out), materializedLeaf(r.Out)},
		Out:      node.Out,
	}
	c, err := d.coldCost(iso)
	if err != nil {
		return 0, err
	}
	d.opCost[key] = c
	return c, nil
}

// materializedLeaf wraps a relation as a bare scan: lowering it
// contributes no steps, so the operator above prices only its own
// traversals of the (assumed materialized) input.
func materializedLeaf(rel Relation) *Plan {
	return &Plan{Kind: OpScan, Rel: rel, Filter: 1, Out: rel}
}

// pairOutput estimates the output of joining two memoized subplans:
// cardinalities multiplied and scaled by every edge bridging the two
// subsets, widths concatenated minus the shared key — the set-split
// generalization of the exhaustive enumerator's joinOutput, and
// identical to it (including the per-step rounding cascade) on
// left-deep splits.
func (e *enumerator) pairOutput(p1, p2 *Plan, s1, s2, s uint32) Relation {
	card := float64(p1.Out.Tuples) * float64(p2.Out.Tuples)
	for _, edge := range e.q.Joins {
		l, r := uint32(1)<<edge.Left, uint32(1)<<edge.Right
		if (l&s1 != 0 && r&s2 != 0) || (l&s2 != 0 && r&s1 != 0) {
			card *= edge.Selectivity
		}
	}
	width := p1.Out.Width + p2.Out.Width - engine.KeyWidth
	if width < engine.KeyWidth {
		width = engine.KeyWidth
	}
	// Every join output is named by its relation subset. A subset occurs
	// at most once per plan tree, so the name is collision-free within
	// any plan a memoized subplan can end up in — essential because the
	// IR canonicalizer dedups regions by name and geometry, and a bushy
	// plan's disjoint subtrees (e.g. two symmetric islands) routinely
	// materialize same-sized intermediates that must stay distinct
	// regions. The exhaustive enumerator's bare T%d names are safe only
	// because left-deep plans have one intermediate per size; costs are
	// unaffected either way (no collision under either scheme for
	// left-deep plans), which the parity harness locks.
	name := fmt.Sprintf("T%d.%x", bits.OnesCount32(s)-1, s)
	return Relation{Name: name, Tuples: clampTuples(card), Width: width}
}
