package queryplan_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hardware"
	"repro/internal/planner"
	"repro/internal/queryplan"
)

// FuzzQueryFingerprint fuzzes the canonical-fingerprint contract the
// serving plan cache stands on: for a random join graph and a random
// relabeling (relations renamed and reordered, edges flipped and
// reordered), the two spellings must produce the same shape key and
// the same canonical parameter vector, and the DP search must price
// both to the same winning cost — fingerprint equality really does
// mean "the cached plan ranking is the right answer".
func FuzzQueryFingerprint(f *testing.F) {
	f.Add([]byte{2, 10, 1, 0, 50, 2, 1, 3}, int64(1))
	f.Add([]byte{7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, int64(42))
	f.Add([]byte{3, 200, 2, 1, 9, 0, 3, 77, 77, 77, 5}, int64(7))
	f.Add([]byte{9, 255, 128, 64, 32, 16, 8, 4, 2, 1}, int64(-3))
	f.Add([]byte{4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4}, int64(1 << 40))

	h := hardware.SmallTest()
	pl, err := planner.New(h)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		q, ok := queryFromFuzz(data)
		if !ok {
			t.Skip()
		}
		if err := q.Validate(); err != nil {
			t.Skip() // fuzzed parameters outside the domain
		}
		base, err := q.Fingerprint()
		if err != nil {
			t.Fatalf("valid query failed to fingerprint: %v", err)
		}

		rng := rand.New(rand.NewSource(seed))
		pq := relabelQuery(q, rng)
		fp, err := pq.Fingerprint()
		if err != nil {
			t.Fatalf("relabeled query failed to fingerprint: %v", err)
		}
		if fp.Key != base.Key || fp.Canonical != base.Canonical {
			t.Fatalf("relabeling changed the shape key:\n  base: %s\n  perm: %s", base.Canonical, fp.Canonical)
		}
		if len(fp.Params) != len(base.Params) {
			t.Fatalf("param vectors differ in length: %d vs %d", len(base.Params), len(fp.Params))
		}
		for i := range fp.Params {
			if math.Float64bits(fp.Params[i]) != math.Float64bits(base.Params[i]) {
				t.Fatalf("relabeling changed canonical params[%d]: %g vs %g", i, base.Params[i], fp.Params[i])
			}
		}

		// Fingerprint equality must imply identical DP answers: both
		// spellings search to the same winning cost (signatures differ
		// only by relation names). TopK: -1 disables memo pruning so the
		// comparison is over the complete bushy plan space.
		so := queryplan.SearchOptions{TopK: -1}
		basePlans, err := pl.QueryPlansSearch(q, so)
		if err != nil {
			t.Skip() // e.g. plan-cap errors on dense fuzzed graphs
		}
		permPlans, err := pl.QueryPlansSearch(pq, so)
		if err != nil {
			t.Fatalf("base searched but relabeled failed: %v", err)
		}
		if len(basePlans) != len(permPlans) {
			t.Fatalf("plan counts diverged: %d vs %d", len(basePlans), len(permPlans))
		}
		bw, pw := basePlans[0].TotalNS(), permPlans[0].TotalNS()
		if math.Float64bits(bw) != math.Float64bits(pw) {
			t.Fatalf("winning costs diverged under relabeling: %g (%s) vs %g (%s)",
				bw, basePlans[0].Algorithm, pw, permPlans[0].Algorithm)
		}
	})
}

// queryFromFuzz decodes a small join query from fuzz bytes: 2–3
// relations with fuzz-chosen cardinalities, widths, sortedness and
// flags, connected by a spanning tree plus (for 3 relations) up to one
// cycle-closing edge. The domain is kept small on purpose — the target
// searches the COMPLETE plan space (TopK -1) per iteration, and an
// uncapped cardinality would make a single quick-sort lowering explode
// into a multi-million-node IR tree.
func queryFromFuzz(data []byte) (queryplan.Query, bool) {
	if len(data) < 2 {
		return queryplan.Query{}, false
	}
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	n := 2 + int(next())%2
	var q queryplan.Query
	for i := 0; i < n; i++ {
		q.Relations = append(q.Relations, queryplan.Relation{
			Name:   "R" + string(rune('a'+i)),
			Tuples: 1 + int64(next()),
			Width:  8 * (1 + int64(next())%4),
			Sorted: next()%4 == 0,
		})
	}
	for i := 1; i < n; i++ {
		q.Joins = append(q.Joins, queryplan.JoinEdge{
			Left: int(next()) % i, Right: i,
			Selectivity: 1 / float64(16+4*int(next())),
		})
	}
	if n > 2 && next()%2 == 0 {
		e := queryplan.JoinEdge{Left: 0, Right: n - 1, Selectivity: 1 / float64(16+4*int(next()))}
		dup := false
		for _, have := range q.Joins {
			if (have.Left == e.Left && have.Right == e.Right) || (have.Left == e.Right && have.Right == e.Left) {
				dup = true
			}
		}
		if !dup {
			q.Joins = append(q.Joins, e)
		}
	}
	switch next() % 4 {
	case 1:
		q.GroupBy = 1 + int64(next())
	case 2:
		q.Distinct = 1 + int64(next())
	case 3:
		q.SortBy = true
	}
	if next()%3 == 0 {
		q.Filters = make([]float64, n)
		for i := range q.Filters {
			q.Filters[i] = float64(int(next())%10) / 10 // 0 = no filter
		}
	}
	// Belt and braces: skip inputs whose worst-case intermediate would
	// still be large (cyclic selectivities can only shrink it further).
	card := 1.0
	for _, r := range q.Relations {
		card *= float64(r.Tuples)
	}
	for i := 1; i < n; i++ {
		card *= q.Joins[i-1].Selectivity
	}
	if card > 1e4 {
		return queryplan.Query{}, false
	}
	return q, true
}

// relabelQuery returns q with relations renamed and reordered, edges
// reordered and endpoint-flipped — everything the fingerprint must be
// blind to.
func relabelQuery(q queryplan.Query, rng *rand.Rand) queryplan.Query {
	perm := rng.Perm(len(q.Relations))
	inv := make([]int, len(perm))
	for newIdx, oldIdx := range perm {
		inv[oldIdx] = newIdx
	}
	out := queryplan.Query{GroupBy: q.GroupBy, Distinct: q.Distinct, SortBy: q.SortBy}
	out.Relations = make([]queryplan.Relation, len(q.Relations))
	for newIdx, oldIdx := range perm {
		r := q.Relations[oldIdx]
		r.Name = "X" + string(rune('a'+newIdx))
		out.Relations[newIdx] = r
	}
	if q.Filters != nil {
		out.Filters = make([]float64, len(q.Filters))
		for newIdx, oldIdx := range perm {
			out.Filters[newIdx] = q.Filters[oldIdx]
		}
	}
	if q.Projections != nil {
		out.Projections = make([]int64, len(q.Projections))
		for newIdx, oldIdx := range perm {
			out.Projections[newIdx] = q.Projections[oldIdx]
		}
	}
	for _, e := range q.Joins {
		ne := queryplan.JoinEdge{Left: inv[e.Left], Right: inv[e.Right], Selectivity: e.Selectivity}
		if rng.Intn(2) == 0 {
			ne.Left, ne.Right = ne.Right, ne.Left
		}
		out.Joins = append(out.Joins, ne)
	}
	rng.Shuffle(len(out.Joins), func(i, j int) {
		out.Joins[i], out.Joins[j] = out.Joins[j], out.Joins[i]
	})
	return out
}
