// Package queryplan composes the paper's operator access patterns
// (Table 2, built by internal/engine) into whole query plans — the
// compound-pattern algebra of Section 5 applied at plan granularity.
//
// A Query describes the logical shape the paper assumes an oracle
// provides: base relations with cardinalities and widths, a join graph
// with per-edge selectivities, optional per-relation filters and
// projections, and an optional aggregate / distinct / order-by on top.
// Search expands a Query into physical alternatives — by default a
// dynamic program over the connected subgraphs of the join graph
// (dp.go: memoized subplans, bushy trees, top-k pruning per subset by a
// context-free cost bound), or the exhaustive left-deep enumerator
// (enumerate.go, kept as the small-query test oracle) — choosing an
// algorithm per join and hash- vs sort-based grouping and duplicate
// elimination. Each physical Plan lowers to a single compound pattern:
// operators execute one after another (⊕, MonetDB-style full
// materialization, which is exactly the execution model the paper's
// system uses), each operator's own concurrent region traversals
// combined with ⊙. Eq. 5.2's state threading then prices cross-operator
// cache reuse — the intermediate a join leaves in the cache discounts
// the aggregate that consumes it.
//
// The package sits below internal/planner (which re-exports Relation
// and Algorithm from here and scores enumerated plans across hardware
// profiles) and is exposed publicly as repro/pkg/costmodel/scenario
// together with a catalog of ready-made scenarios (catalog.go).
package queryplan

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/region"
)

// Relation describes an input's logical properties.
type Relation struct {
	Name   string
	Tuples int64
	Width  int64 // bytes per tuple, ≥ engine.KeyWidth
	Sorted bool  // key-sorted, enabling merge algorithms without a sort
}

// Region returns the relation's data-region descriptor.
func (r Relation) Region() *region.Region {
	return region.New(r.Name, r.Tuples, r.Width)
}

// Algorithm identifies a physical operator implementation.
type Algorithm string

// The physical algorithm inventory (shared with internal/planner).
const (
	NestedLoopJoin      Algorithm = "nested-loop-join"
	MergeJoin           Algorithm = "merge-join"
	SortMergeJoin       Algorithm = "sort-merge-join"
	HashJoin            Algorithm = "hash-join"
	PartitionedHashJoin Algorithm = "partitioned-hash-join"
	QuickSort           Algorithm = "quick-sort"
	HashAggregate       Algorithm = "hash-aggregate"
	SortAggregate       Algorithm = "sort-aggregate"
	HashDistinct        Algorithm = "hash-distinct"
	SortDistinct        Algorithm = "sort-distinct"
)

// code returns the compact signature code of a join algorithm.
func code(a Algorithm, fanout int64) string {
	switch a {
	case NestedLoopJoin:
		return "nlj"
	case MergeJoin:
		return "mj"
	case SortMergeJoin:
		return "smj"
	case HashJoin:
		return "hj"
	case PartitionedHashJoin:
		return fmt.Sprintf("phj%d", fanout)
	default:
		return string(a)
	}
}

// CPUCosts are the per-tuple T_cpu constants per algorithm step
// (Eq. 6.1's hardware-independent component).
type CPUCosts struct {
	Compare   float64 // one key comparison + cursor advance
	Hash      float64 // hash + bucket access
	Move      float64 // copy one tuple
	Partition float64 // hash + cluster append
}

// DefaultCPU returns constants in line with the experiments package.
func DefaultCPU() CPUCosts {
	return CPUCosts{Compare: 20, Hash: 100, Move: 20, Partition: 50}
}

// sortNS estimates the CPU time of quick-sorting n tuples.
func (c CPUCosts) sortNS(n float64) float64 {
	if n < 2 {
		return 0
	}
	return c.Compare * 2 * n * math.Ceil(math.Log2(n))
}

// JoinEdge is one equi-join predicate of the join graph, connecting two
// relations (by index into Query.Relations) with a selectivity: the
// join produces |L|·|R|·Selectivity tuples.
type JoinEdge struct {
	Left, Right int
	Selectivity float64
}

// Query is a logical query over one to MaxRelations base relations: a
// join graph plus optional per-relation filters/projections and an
// optional aggregate, distinct or order-by on top. It carries no
// physical choices — Enumerate makes those.
type Query struct {
	Relations []Relation
	// Joins is the join graph; it must connect all relations (no cross
	// products). Empty for single-relation queries.
	Joins []JoinEdge
	// Filters holds one scan selectivity per relation in (0, 1]; nil or
	// 0 entries mean "no filter". A filtered scan materializes its
	// qualifying tuples before the consumer runs.
	Filters []float64
	// Projections holds one bytes-used value per relation; 0 means the
	// full width. A narrowing projection materializes the narrowed
	// column slice.
	Projections []int64
	// GroupBy > 0 aggregates the join result into that many groups.
	GroupBy int64
	// Distinct > 0 eliminates duplicates down to that many rows.
	// Mutually exclusive with GroupBy.
	Distinct int64
	// SortBy asks for a sorted result (order-by on the key).
	SortBy bool
}

// MaxRelations bounds the plan-space search. The DP search (dp.go)
// memoizes connected subgraphs over dense bitset-indexed strata, so it
// handles this many relations comfortably (the memo is 2^n entries; at
// 14 relations that is 16384 slots, and only connected subsets are ever
// populated); the exhaustive left-deep enumerator (enumerate.go) grows
// factorially and hits Options.MaxPlans well before the cap.
const MaxRelations = 14

// Validate checks the query's structural invariants.
func (q Query) Validate() error {
	if len(q.Relations) == 0 {
		return fmt.Errorf("queryplan: query with no relations")
	}
	if len(q.Relations) > MaxRelations {
		return fmt.Errorf("queryplan: %d relations exceeds the maximum of %d", len(q.Relations), MaxRelations)
	}
	names := make(map[string]bool, len(q.Relations))
	for i, r := range q.Relations {
		if r.Name == "" {
			return fmt.Errorf("queryplan: relation %d has no name", i)
		}
		if names[r.Name] {
			// Regions are deduplicated by name during canonicalization, so
			// two same-named relations would silently alias one region —
			// and name-keyed plan recipes could not tell them apart.
			return fmt.Errorf("queryplan: duplicate relation name %q", r.Name)
		}
		names[r.Name] = true
		if r.Tuples <= 0 || r.Width < engine.KeyWidth {
			return fmt.Errorf("queryplan: relation %s: want tuples > 0 and width ≥ %d, got %d×%d",
				r.Name, engine.KeyWidth, r.Tuples, r.Width)
		}
	}
	if q.Filters != nil && len(q.Filters) != len(q.Relations) {
		return fmt.Errorf("queryplan: %d filters for %d relations", len(q.Filters), len(q.Relations))
	}
	for i, f := range q.Filters {
		if f < 0 || f > 1 {
			return fmt.Errorf("queryplan: filter %d selectivity %g outside [0, 1]", i, f)
		}
	}
	if q.Projections != nil && len(q.Projections) != len(q.Relations) {
		return fmt.Errorf("queryplan: %d projections for %d relations", len(q.Projections), len(q.Relations))
	}
	for i, u := range q.Projections {
		if u < 0 || u > q.Relations[i].Width {
			return fmt.Errorf("queryplan: projection %d bytes-used %d outside [0, %d]",
				i, u, q.Relations[i].Width)
		}
	}
	edges := make(map[[2]int]bool, len(q.Joins))
	for _, e := range q.Joins {
		if e.Left < 0 || e.Left >= len(q.Relations) || e.Right < 0 || e.Right >= len(q.Relations) || e.Left == e.Right {
			return fmt.Errorf("queryplan: join edge %d–%d outside the relation list", e.Left, e.Right)
		}
		if e.Selectivity <= 0 || e.Selectivity > 1 {
			return fmt.Errorf("queryplan: join edge %d–%d selectivity %g outside (0, 1]", e.Left, e.Right, e.Selectivity)
		}
		lo, hi := e.Left, e.Right
		if lo > hi {
			lo, hi = hi, lo
		}
		if edges[[2]int{lo, hi}] {
			return fmt.Errorf("queryplan: duplicate join edge %d–%d", lo, hi)
		}
		edges[[2]int{lo, hi}] = true
	}
	if len(q.Relations) > 1 && !q.connected() {
		return fmt.Errorf("queryplan: join graph does not connect all %d relations (cross products are not enumerated)", len(q.Relations))
	}
	if q.GroupBy < 0 || q.Distinct < 0 {
		return fmt.Errorf("queryplan: negative group/distinct count")
	}
	if q.GroupBy > 0 && q.Distinct > 0 {
		return fmt.Errorf("queryplan: GroupBy and Distinct are mutually exclusive")
	}
	return nil
}

// connected reports whether the join graph spans every relation.
func (q Query) connected() bool {
	n := len(q.Relations)
	seen := make([]bool, n)
	seen[0] = true
	frontier := []int{0}
	for len(frontier) > 0 {
		i := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, e := range q.Joins {
			j := -1
			if e.Left == i && !seen[e.Right] {
				j = e.Right
			} else if e.Right == i && !seen[e.Left] {
				j = e.Left
			}
			if j >= 0 {
				seen[j] = true
				frontier = append(frontier, j)
			}
		}
	}
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}

// filter returns relation i's scan selectivity (1 = none).
func (q Query) filter(i int) float64 {
	if q.Filters == nil || q.Filters[i] == 0 {
		return 1
	}
	return q.Filters[i]
}

// projection returns relation i's bytes-used (0 = full width).
func (q Query) projection(i int) int64 {
	if q.Projections == nil {
		return 0
	}
	u := q.Projections[i]
	if u >= q.Relations[i].Width {
		return 0
	}
	return u
}

// clampTuples rounds a cardinality estimate to at least one tuple.
func clampTuples(card float64) int64 {
	if card < 1 {
		return 1
	}
	if card > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(math.Round(card))
}
