//go:build race

package sweep

// raceEnabled reports that the race detector is active: the cost-IR
// evaluator's sync.Pool deliberately drops entries under -race, so
// zero-allocation assertions cannot hold there.
const raceEnabled = true
