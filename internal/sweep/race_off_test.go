//go:build !race

package sweep

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
