package sweep

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/cachemodel"
	"repro/internal/cost"
	"repro/internal/hardware"
	"repro/internal/pattern"
	"repro/internal/region"
	"repro/internal/workload"
)

// quickSortShape mirrors engine.QuickSortPattern's recursive structure:
// the sweep's main dedup beneficiary.
func quickSortShape(r *region.Region, pruneBytes int64) pattern.Pattern {
	a, b := r.Halves()
	p := pattern.Seq{pattern.Conc{pattern.STrav{R: a}, pattern.STrav{R: b}}}
	if a.Size() > pruneBytes {
		p = append(p, quickSortShape(a, pruneBytes), quickSortShape(b, pruneBytes))
	}
	return p
}

// randGridPoints draws a randomized operator × size grid.
func randGridPoints(rng *workload.RNG) []Point {
	var pts []Point
	sizes := []int64{32 << 10, 128 << 10, 512 << 10}
	for _, sz := range sizes {
		n := sz / 8
		u := region.New("U", n, 8)
		v := region.New("V", n, 8)
		pts = append(pts,
			Point{Key: fmt.Sprintf("scan/%d", sz), Pattern: pattern.STrav{R: u}},
			Point{Key: fmt.Sprintf("sort/%d", sz), Pattern: quickSortShape(region.New("S", n, 8), 16<<10)},
			Point{Key: fmt.Sprintf("join/%d", sz), Pattern: pattern.Conc{
				pattern.STrav{R: u}, pattern.STrav{R: v},
				pattern.RAcc{R: region.New("H", n, 16), Count: n},
			}},
			Point{Key: fmt.Sprintf("rep/%d", sz), Pattern: pattern.Seq{
				pattern.RSTrav{R: u, Repeats: 2 + rng.Intn(3), Dir: pattern.Bi},
				pattern.RRTrav{R: v, Repeats: 2},
				pattern.Nest{R: u, M: 16, Inner: pattern.InnerSTrav, Order: pattern.OrderUni},
			}},
		)
	}
	return pts
}

// TestSweepMatchesPointLoop pins the sweep path to the point-at-a-time
// loop, bit for bit: predicted times against a per-point
// cost.Model.Evaluate (fresh compile per point), measured times
// against a per-point cachemodel.Model.Price, at several parallelism
// levels including repeated warm runs.
func TestSweepMatchesPointLoop(t *testing.T) {
	rng := workload.NewRNG(20260808)
	pts := randGridPoints(rng)
	grid, err := Prepare(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*hardware.Hierarchy{hardware.Origin2000(), hardware.ModernX86()} {
		model := cost.MustNew(h)
		ana := cachemodel.MustNew(h)
		wantPred := make([]float64, len(pts))
		wantMeas := make([]float64, len(pts))
		for i, pt := range pts {
			res, err := model.Evaluate(pt.Pattern)
			if err != nil {
				t.Fatal(err)
			}
			wantPred[i] = res.MemoryTimeNS()
			priced, err := ana.Price(pt.Pattern)
			if err != nil {
				t.Fatal(err)
			}
			wantMeas[i] = priced.MemoryTimeNS()
		}
		s, err := grid.On(h)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 7, 0} {
			for run := 0; run < 2; run++ { // cold memo, then warm
				got, err := s.Run(context.Background(), Options{Workers: workers, Predict: true, Price: true})
				if err != nil {
					t.Fatal(err)
				}
				for i := range pts {
					if got[i].Key != pts[i].Key {
						t.Fatalf("%s workers=%d: result %d keyed %q, want %q", h.Name, workers, i, got[i].Key, pts[i].Key)
					}
					if math.Float64bits(got[i].PredictedNS) != math.Float64bits(wantPred[i]) {
						t.Fatalf("%s workers=%d run=%d %s: predicted %v != point loop %v",
							h.Name, workers, run, pts[i].Key, got[i].PredictedNS, wantPred[i])
					}
					if math.Float64bits(got[i].MeasuredNS) != math.Float64bits(wantMeas[i]) {
						t.Fatalf("%s workers=%d run=%d %s: measured %v != point loop %v",
							h.Name, workers, run, pts[i].Key, got[i].MeasuredNS, wantMeas[i])
					}
				}
			}
		}
	}
}

// TestSweepZeroAllocSteadyState pins the allocation contract of the
// sequential sweep: once buffers and memos are warm, a full Run
// allocates nothing.
func TestSweepZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops entries under -race")
	}
	grid, err := Prepare(randGridPoints(workload.NewRNG(7)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := grid.On(hardware.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := Options{Workers: 1, Predict: true, Price: true}
	if _, err := s.Run(ctx, opts); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Run(ctx, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm sequential Run allocates %.1f times per run, want 0", allocs)
	}
}

// TestSweepCancellation verifies a canceled context aborts the run.
func TestSweepCancellation(t *testing.T) {
	grid, err := Prepare(randGridPoints(workload.NewRNG(7)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := grid.On(hardware.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, Options{Workers: 1, Predict: true}); err == nil {
		t.Fatal("Run on canceled context succeeded, want error")
	}
}

// TestPrepareRejectsInvalid verifies Prepare surfaces validation errors
// with the point's key.
func TestPrepareRejectsInvalid(t *testing.T) {
	_, err := Prepare([]Point{{Key: "bad", Pattern: pattern.Seq{}}})
	if err == nil {
		t.Fatal("Prepare accepted an invalid pattern")
	}
}
