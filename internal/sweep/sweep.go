// Package sweep evaluates a set of access patterns — a parameter grid:
// operator × size, one pattern per cell — on a hardware hierarchy in a
// single prepared pass, instead of re-running the full per-point
// pipeline (validate, flatten, compile, re-derive every per-level
// analysis) for each cell.
//
// The grid machinery splits per-point work into a swept-parameter-
// invariant part, hoisted out of the per-point loop, and a dependent
// part that genuinely differs per point:
//
//   - Prepare compiles each pattern to its flat cost-IR program and
//     flattens it for the analytical backend once; both are profile-
//     independent, so one Grid serves any number of hierarchies.
//   - Grid.On binds a hierarchy; Sweep.Run walks the points, reusing
//     pooled cost-IR evaluator buffers (internal/costir) and per-worker
//     analytical pricers (internal/cachemodel.Pricer) whose scratch
//     buffers and stack-distance scaffolding persist across points.
//     The pricers memoize the pure per-level sub-computations (atom
//     profiles, distance-mass integrals) by the exact values of their
//     inputs, so the exponentially repeated sub-structures of the
//     recursive operator patterns are derived once per distinct
//     geometry instead of once per occurrence.
//
// A memo hit returns the identical float64 a fresh computation would,
// so sweep results are bit-identical to the point-at-a-time loop —
// at every parallelism level: points are sharded dynamically across a
// worker pool, every point's computation is independent of the shard
// assignment, and results land in slots indexed by point, making the
// merge deterministic and order-independent (the same discipline as
// the DP plan search's parallel strata). In steady state (warm
// buffers, warm memos) a Run performs zero heap allocations per point.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cachemodel"
	"repro/internal/costir"
	"repro/internal/hardware"
	"repro/internal/pattern"
)

// Point is one grid cell: a label and the access pattern to cost.
type Point struct {
	// Key labels the point in results (e.g. "sort/2097152").
	Key string
	// Pattern is the access pattern of the cell.
	Pattern pattern.Pattern
}

// gridPoint is one prepared cell.
type gridPoint struct {
	key  string
	prog *costir.Program
	prep *cachemodel.PreparedPattern
}

// Grid holds prepared (compiled + flattened) grid points. It is
// profile-independent and immutable: one Grid serves any number of
// hierarchies and concurrent sweeps.
type Grid struct {
	points []gridPoint
}

// Prepare validates, compiles, and flattens every point once. This is
// the swept-parameter-invariant prefix of the per-point pipeline.
func Prepare(points []Point) (*Grid, error) {
	g := &Grid{points: make([]gridPoint, len(points))}
	for i, pt := range points {
		prog, err := costir.Compile(pt.Pattern)
		if err != nil {
			return nil, fmt.Errorf("sweep: point %q: %w", pt.Key, err)
		}
		prep, err := cachemodel.Prepare(pt.Pattern)
		if err != nil {
			return nil, fmt.Errorf("sweep: point %q: %w", pt.Key, err)
		}
		g.points[i] = gridPoint{key: pt.Key, prog: prog, prep: prep}
	}
	return g, nil
}

// Len returns the number of grid points.
func (g *Grid) Len() int { return len(g.points) }

// On binds the grid to a hierarchy, returning a reusable Sweep. The
// Sweep owns per-worker pricers whose memos warm up across Runs; it is
// safe for concurrent Runs only through separate Sweeps.
func (g *Grid) On(h *hardware.Hierarchy) (*Sweep, error) {
	ana, err := cachemodel.New(h)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return &Sweep{grid: g, hier: h, ana: ana}, nil
}

// Sweep evaluates one prepared grid on one hierarchy.
type Sweep struct {
	grid    *Grid
	hier    *hardware.Hierarchy
	ana     *cachemodel.Model
	workers []*workerCtx
	results []Result
}

// workerCtx is one worker's private reusable state.
type workerCtx struct {
	pricer *cachemodel.Pricer
	priced cachemodel.Result
}

// Options configures one Run.
type Options struct {
	// Workers bounds the concurrent point evaluations; 0 means
	// GOMAXPROCS, 1 runs the grid inline without goroutines. Results
	// are bit-identical at every parallelism level.
	Workers int
	// Predict computes each point's cost-model T_mem (Eq. 3.1) via the
	// compiled program.
	Predict bool
	// Price computes each point's analytical measured T_mem via the
	// stack-distance backend.
	Price bool
}

// Result is one evaluated grid point.
type Result struct {
	// Key echoes the point's label.
	Key string
	// PredictedNS is the cost model's T_mem (Options.Predict).
	PredictedNS float64
	// MeasuredNS is the analytical backend's latency-scored memory
	// time (Options.Price).
	MeasuredNS float64
}

// Hierarchy returns the bound hierarchy.
func (s *Sweep) Hierarchy() *hardware.Hierarchy { return s.hier }

// worker returns worker w's context, creating it on first use.
func (s *Sweep) worker(w int) *workerCtx {
	for len(s.workers) <= w {
		s.workers = append(s.workers, nil)
	}
	if s.workers[w] == nil {
		s.workers[w] = &workerCtx{pricer: s.ana.NewPricer()}
	}
	return s.workers[w]
}

// Run evaluates every grid point and returns one Result per point, in
// grid order. The returned slice is reused by the next Run on this
// Sweep. The context cancels the sweep between points.
func (s *Sweep) Run(ctx context.Context, opts Options) ([]Result, error) {
	n := len(s.grid.points)
	if cap(s.results) < n {
		s.results = make([]Result, n)
	}
	results := s.results[:n]

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	if workers <= 1 {
		wc := s.worker(0)
		for i := range s.grid.points {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s.runPoint(wc, i, opts, results)
		}
		return results, nil
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wc := s.worker(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				s.runPoint(wc, i, opts, results)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// runPoint evaluates one grid point into its result slot. Every output
// is a deterministic function of the point and the hierarchy alone —
// worker identity, shard order, and memo state never change a bit.
func (s *Sweep) runPoint(wc *workerCtx, i int, opts Options, results []Result) {
	pt := &s.grid.points[i]
	res := Result{Key: pt.key}
	if opts.Predict {
		res.PredictedNS = pt.prog.MemoryTimeNS(s.hier)
	}
	if opts.Price {
		wc.pricer.PriceInto(pt.prep, &wc.priced)
		res.MeasuredNS = wc.priced.MemoryTimeNS()
	}
	results[i] = res
}
